package envirotrack

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"envirotrack/internal/obs"
	"envirotrack/internal/trace"
)

// runTracked drives one deterministic tracking scenario and returns the
// network; sinks (may be empty) are attached via an event bus.
func runTracked(t *testing.T, sinks ...EventSink) *Network {
	t.Helper()
	n := buildNet(t, WithEventBus(NewEventBus(sinks...)), WithDirectory())
	var reports []Point
	if err := n.AttachContextAll(trackerContext(100, &reports)); err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{
		Name: "tank", Kind: "vehicle",
		Traj:            Line{Start: Pt(0.5, 1), Dir: Vec(1, 0), Speed: 0.4},
		SignatureRadius: 1.6,
	})
	if err := n.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTracingDoesNotPerturbRun pins the core observability guarantee:
// attaching sinks must not change a seeded run's protocol behaviour.
func TestTracingDoesNotPerturbRun(t *testing.T) {
	bare := runTracked(t)

	var buf bytes.Buffer
	jsonl := NewJSONLSink(&buf)
	reg := NewMetricsRegistry()
	traced := runTracked(t, jsonl, NewRingSink(64), NewMetricsSink(reg), NewCounterSink())
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}

	if got, want := traced.Stats().Summary(), bare.Stats().Summary(); got != want {
		t.Errorf("radio stats diverged with sinks attached:\n--- traced\n%s--- bare\n%s", got, want)
	}
	gotSum := traced.Ledger().Summarize("tracker")
	wantSum := bare.Ledger().Summarize("tracker")
	if !reflect.DeepEqual(gotSum, wantSum) {
		t.Errorf("ledger diverged with sinks attached: %+v vs %+v", gotSum, wantSum)
	}
	if buf.Len() == 0 {
		t.Fatal("JSONL sink captured nothing from a tracked run")
	}
}

// TestStatsSinkMatchesMedium proves the event stream carries the full
// radio accounting: a trace.Stats rebuilt purely from frame events must
// equal the one the medium and motes record directly.
func TestStatsSinkMatchesMedium(t *testing.T) {
	var rebuilt trace.Stats
	n := runTracked(t, obs.NewStatsSink(&rebuilt))
	direct := n.Stats()
	if direct.BitsSent == 0 {
		t.Fatal("scenario produced no traffic")
	}
	if got, want := rebuilt.Summary(), direct.Summary(); got != want {
		t.Errorf("stats rebuilt from events diverge from the medium's:\n--- rebuilt\n%s--- direct\n%s", got, want)
	}
}

func TestEventStreamCoversProtocolLayers(t *testing.T) {
	cs := NewCounterSink()
	runTracked(t, cs)
	counts := cs.Counts()
	for _, et := range []TraceEventType{
		obs.EvHeartbeatSent, obs.EvLabelCreated, obs.EvLabelJoined,
		obs.EvFrameSent, obs.EvFrameReceived, obs.EvDirectoryUpdated,
	} {
		if counts[et] == 0 {
			t.Errorf("no %v events from a tracked run (got %v)", et, counts)
		}
	}
}

func TestStartSeriesSamplesHealth(t *testing.T) {
	n := buildNet(t)
	var reports []Point
	if err := n.AttachContextAll(trackerContext(100, &reports)); err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{
		Name: "tank", Kind: "vehicle",
		Traj:            Stationary{At: Pt(3.5, 1)},
		SignatureRadius: 1.6,
	})
	extra := SeriesProbe{Name: "now_s", Sample: func() float64 { return n.Now().Seconds() }}
	series := n.StartSeries(time.Second, extra)
	if err := n.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := series.Len(); got != 11 { // t=0 plus one per second
		t.Fatalf("series has %d samples, want 11", got)
	}
	if got, want := series.Columns(), []string{"live_labels", "group_size", "cpu_queue", "link_util", "now_s"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("columns = %v, want %v", got, want)
	}
	live := series.Column("live_labels")
	if live[len(live)-1] < 1 {
		t.Errorf("no live label at end of tracked run: %v", live)
	}
	group := series.Column("group_size")
	if group[len(group)-1] < 2 {
		t.Errorf("tracked group never formed: %v", group)
	}
	if nowCol := series.Column("now_s"); nowCol[10] != 10 {
		t.Errorf("extra probe column wrong: %v", nowCol)
	}
	if util := series.Column("link_util"); util[10] <= 0 {
		t.Errorf("link utilization never positive: %v", util)
	}
	// The table renders with a header and one row per sample.
	if rows := strings.Count(series.Render(), "\n"); rows != 12 {
		t.Errorf("rendered table has %d lines, want 12", rows)
	}
	if _, err := json.Marshal(series); err != nil {
		t.Fatalf("series JSON: %v", err)
	}
}
