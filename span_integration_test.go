package envirotrack_test

// End-to-end span contract, per the observability acceptance criteria:
// a nominal run yields a complete causal span for every delivered
// report, the chaos suite yields a root cause for every undelivered
// one, and a span set rebuilt offline from the JSONL trace matches the
// one assembled live.

import (
	"bytes"
	"testing"

	"envirotrack"
	"envirotrack/internal/eval"
)

// multiSink fans one event out to several sinks (the CLI composes sinks
// through a bus; tests need the raw fan-out without re-stamping runs).
type multiSink []envirotrack.EventSink

func (m multiSink) Emit(ev envirotrack.TraceEvent) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// validRootCauses is the full attribution vocabulary of SpanSink.
var validRootCauses = map[string]bool{
	"no_route": true, "ttl": true, "stale_leader": true, "cpu_overload": true,
	"collision": true, "random": true, "crashed_mote": true, "in_flight": true,
}

// checkSpans asserts the span contract over a set of reports: delivered
// spans are causally complete, undelivered spans are attributed.
func checkSpans(t *testing.T, reports []envirotrack.ReportSpan) (delivered, undelivered int) {
	t.Helper()
	for _, sp := range reports {
		if sp.Delivered {
			delivered++
			if sp.RootCause != "" {
				t.Errorf("delivered span %s/%d/%d has root cause %q", sp.Label, sp.Origin, sp.Seq, sp.RootCause)
			}
			if sp.Latency < 0 || sp.DeliveredAt < sp.SentAt {
				t.Errorf("span %s/%d/%d has negative latency: sent %v delivered %v", sp.Label, sp.Origin, sp.Seq, sp.SentAt, sp.DeliveredAt)
			}
			if len(sp.Hops) == 0 {
				t.Errorf("delivered span %s/%d/%d has no radio hops", sp.Label, sp.Origin, sp.Seq)
				continue
			}
			received := 0
			for _, h := range sp.Hops {
				if h.Outcome == "received" {
					received++
				}
			}
			if received == 0 {
				t.Errorf("delivered span %s/%d/%d has no received hop: %+v", sp.Label, sp.Origin, sp.Seq, sp.Hops)
			}
		} else {
			undelivered++
			if !validRootCauses[sp.RootCause] {
				t.Errorf("undelivered span %s/%d/%d has root cause %q, want one of %v",
					sp.Label, sp.Origin, sp.Seq, sp.RootCause, validRootCauses)
			}
		}
	}
	return delivered, undelivered
}

// TestSpansNominalRunCompleteAndMatchOffline runs the Figure 3 scenario
// with a live SpanSink and a JSONL trace attached, then rebuilds the
// spans offline from the trace (the ettrace path) and requires the two
// views to agree span for span.
func TestSpansNominalRunCompleteAndMatchOffline(t *testing.T) {
	live := envirotrack.NewSpanSink()
	var buf bytes.Buffer
	jsonl := envirotrack.NewJSONLSink(&buf)
	eval.SetEventSink(multiSink{live, jsonl})
	defer eval.SetEventSink(nil)
	if _, err := eval.Run(eval.Scenario{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}

	reports := live.Reports()
	if len(reports) == 0 {
		t.Fatal("nominal run produced no report spans")
	}
	delivered, _ := checkSpans(t, reports)
	if delivered == 0 {
		t.Fatal("nominal run delivered no reports")
	}

	// Offline reconstruction from the trace bytes.
	offline := envirotrack.NewSpanSink()
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		ev, err := envirotrack.ParseTraceEvent(line)
		if err != nil {
			t.Fatal(err)
		}
		offline.Emit(ev)
	}
	off := offline.Reports()
	if len(off) != len(reports) {
		t.Fatalf("offline rebuilt %d spans, live saw %d", len(off), len(reports))
	}
	for i := range reports {
		l, o := reports[i], off[i]
		if l.Label != o.Label || l.Origin != o.Origin || l.Seq != o.Seq ||
			l.Delivered != o.Delivered || l.RootCause != o.RootCause ||
			l.DeliveredTo != o.DeliveredTo || len(l.Hops) != len(o.Hops) ||
			l.Forwards != o.Forwards {
			t.Errorf("span %d diverges offline:\n live %+v\n file %+v", i, l, o)
		}
	}
	if lh, oh := live.Handovers(), offline.Handovers(); len(lh) != len(oh) {
		t.Errorf("offline rebuilt %d handovers, live saw %d", len(oh), len(lh))
	}
}

// TestChaosSpansAttributeEveryUndelivered runs the fault-matrix suite
// and requires a root-cause attribution for every report that did not
// make it.
func TestChaosSpansAttributeEveryUndelivered(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite in -short mode")
	}
	sink := envirotrack.NewSpanSink()
	eval.SetEventSink(sink)
	defer eval.SetEventSink(nil)
	if _, err := eval.RunChaosSuite(1); err != nil {
		t.Fatal(err)
	}
	reports := sink.Reports()
	if len(reports) == 0 {
		t.Fatal("chaos suite produced no report spans")
	}
	delivered, undelivered := checkSpans(t, reports)
	if delivered == 0 {
		t.Error("chaos suite delivered nothing at all")
	}
	if undelivered == 0 {
		t.Error("chaos suite lost nothing — fault injection had no visible effect")
	}
}
