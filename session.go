package envirotrack

import (
	"errors"
	"sync"
	"time"
)

// Event is one message observed by a subscribed node during a Session.
type Event struct {
	At   time.Duration
	Node NodeID
	Msg  NodeMessage
}

// ErrSessionStopped is returned by Wait when the session was stopped
// before reaching its deadline.
var ErrSessionStopped = errors.New("envirotrack: session stopped")

// Session runs a network on a background goroutine and streams the
// NodeMessages received by subscribed nodes. It owns the goroutine's
// lifetime: Stop signals it, Wait blocks until it exits, and the event
// channel is closed when the run completes.
type Session struct {
	events chan Event

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	err      error
}

// RunSession starts the simulation in the background for d of virtual
// time, streaming messages received by the subscribed nodes. The network
// must not be used directly while the session runs; the event channel is
// closed when the session finishes.
func (n *Network) RunSession(d time.Duration, subscribe ...NodeID) *Session {
	s := &Session{
		events: make(chan Event, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, id := range subscribe {
		if node, ok := n.nodes[id]; ok {
			nodeID := id
			nd := node
			nd.OnMessage(func(msg NodeMessage) {
				// Runs on the delivering scheduler goroutine (the node's
				// shard goroutine in parallel mode); blocking here paces the
				// simulation to the consumer. The timestamp is the node's
				// local clock — identical to the global clock outside
				// parallel runs.
				select {
				case s.events <- Event{At: nd.Now(), Node: nodeID, Msg: msg}:
				case <-s.stop:
				}
			})
		}
	}
	n.start()
	if n.parallel() {
		deadline := n.Now() + d
		// The free-running executor owns its shard goroutines; Stop requests
		// arrive asynchronously through the group's atomic stop flag, which
		// a watcher trips when the consumer calls Session.Stop.
		go func() {
			select {
			case <-s.stop:
				n.group.Stop()
			case <-s.done:
			}
		}()
		go func() {
			defer close(s.done)
			defer close(s.events)
			err := n.runParallel(deadline)
			select {
			case <-s.stop:
				s.err = ErrSessionStopped
			default:
				s.err = err
			}
		}()
		return s
	}
	deadline := n.sched.Now() + d
	go func() {
		defer close(s.done)
		defer close(s.events)
		for {
			select {
			case <-s.stop:
				s.err = ErrSessionStopped
				return
			default:
			}
			if n.sched.Now() >= deadline || !n.sched.Step() {
				// Advance the clock to the deadline for consistency with
				// Network.Run semantics.
				if err := n.sched.RunUntil(deadline); err != nil {
					s.err = err
				}
				return
			}
		}
	}()
	return s
}

// Events returns the stream of subscribed messages. It is closed when the
// session ends.
func (s *Session) Events() <-chan Event {
	return s.events
}

// Stop asks the session to end early. It is safe to call multiple times
// and from any goroutine.
func (s *Session) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Wait blocks until the session goroutine exits and returns its error
// (nil on a completed run, ErrSessionStopped after Stop).
func (s *Session) Wait() error {
	<-s.done
	return s.err
}
