package envirotrack

import (
	"testing"
	"time"
)

func TestWithBitRateSlowsDelivery(t *testing.T) {
	// At a very low bit rate the same scenario puts many more bits-worth
	// of airtime on the channel; verify runs complete and differ.
	build := func(bps float64) uint64 {
		n, err := New(
			WithGrid(6, 2),
			WithCommRadius(2.5),
			WithBitRate(bps),
			WithSensing(VehicleSensing("vehicle")),
			WithSeed(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AttachContextAll(trackerContext(99, nil)); err != nil {
			t.Fatal(err)
		}
		n.AddTarget(&Target{Kind: "vehicle", Traj: Stationary{At: Pt(2.5, 0.5)}, SignatureRadius: 1.6})
		if err := n.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return n.Stats().BitsSent
	}
	fast := build(250_000)
	slow := build(10_000)
	if fast == 0 || slow == 0 {
		t.Error("no traffic recorded")
	}
}

func TestWithPropDelayAndBounds(t *testing.T) {
	n, err := New(
		WithGrid(4, 2),
		WithCommRadius(2.5),
		WithPropDelay(2*time.Millisecond),
		WithBounds(Rect{Min: Pt(-5, -5), Max: Pt(20, 20)}),
		WithSensing(VehicleSensing("vehicle")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if n.Bounds().Max != Pt(20, 20) {
		t.Errorf("Bounds = %v", n.Bounds())
	}
	if err := n.Run(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestWithSensingFuncPerMote(t *testing.T) {
	// Only even motes get sensors; odd motes are relays.
	n, err := New(
		WithGrid(6, 1),
		WithCommRadius(2.5),
		WithSensingFunc(func(id NodeID, _ Point) *SensorModel {
			if id%2 == 0 {
				return VehicleSensing("vehicle")
			}
			return nil
		}),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachContextAll(trackerContext(99, nil)); err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{Kind: "vehicle", Traj: Stationary{At: Pt(2, 0)}, SignatureRadius: 1.4})
	if err := n.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// A label forms from the sensing motes only.
	labels := n.Ledger().LiveLabels("tracker")
	if len(labels) != 1 {
		t.Errorf("live labels = %v, want 1", labels)
	}
	for _, id := range n.Nodes() {
		node, _ := n.Node(id)
		if id%2 == 1 && node.Leading("tracker") {
			t.Errorf("sensor-less mote %d became leader", id)
		}
	}
}

func TestWithoutCollisionsAndCSMA(t *testing.T) {
	n, err := New(
		WithGrid(4, 2),
		WithCommRadius(2.5),
		WithoutCollisions(),
		WithoutCSMA(),
		WithSensing(VehicleSensing("vehicle")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachContextAll(trackerContext(99, nil)); err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{Kind: "vehicle", Traj: Stationary{At: Pt(1.5, 0.5)}, SignatureRadius: 1.6})
	if err := n.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	hb := n.Stats().Kind("heartbeat")
	if hb.LostCollision != 0 {
		t.Errorf("collisions recorded with the model disabled: %d", hb.LostCollision)
	}
}

func TestAddCrossTraffic(t *testing.T) {
	n := buildNet(t)
	if err := n.AddCrossTraffic(0, 1, 100*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddCrossTraffic(0, 1, 0, 0); err == nil {
		t.Error("expected error for zero period")
	}
	if err := n.AddCrossTraffic(12345, 1, time.Second, 0); err == nil {
		t.Error("expected error for unknown source")
	}
	if err := n.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Kind("cross-traffic").Sent == 0 {
		t.Error("no cross traffic transmitted")
	}
}

func TestTargetPosition(t *testing.T) {
	n := buildNet(t)
	tg := &Target{Kind: "vehicle", Traj: Line{Start: Pt(0, 0), Dir: Vec(1, 0), Speed: 1}}
	n.AddTarget(tg)
	if err := n.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := n.TargetPosition(tg)
	if got.Dist(Pt(3, 0)) > 1e-9 {
		t.Errorf("TargetPosition = %v, want (3,0)", got)
	}
}

func TestPublicConstructorsExist(t *testing.T) {
	if NewSensorModel() == nil || NewSenseRegistry() == nil || NewAggRegistry() == nil {
		t.Error("constructors returned nil")
	}
	m := NewSensorModel()
	m.SetChannel("x", ConstantChannel(5))
	m.SetChannel("d", DetectionChannel("vehicle"))
	m.SetChannel("i", IntensityChannel("vehicle", 2))
	if len(m.Channels()) != 3 {
		t.Errorf("channels = %v", m.Channels())
	}
	if v := Vec(3, 4); v.Len() != 5 {
		t.Errorf("Vec/Len = %v", v.Len())
	}
	fs := FireSensing("fire", 20)
	if fs == nil {
		t.Error("FireSensing returned nil")
	}
}
