// Package envirotrack is a Go implementation of EnviroTrack (Abdelzaher et
// al., ICDCS 2004): an object-based distributed middleware for sensor
// networks that raises the level of programming abstraction by attaching
// computation to *tracked entities in the physical environment* rather
// than to individual nodes.
//
// Applications declare context types — an activation condition (the
// sensee() predicate), aggregate state variables with freshness and
// critical-mass QoS, and attached tracking objects. The middleware then
// discovers matching entities in the environment, forms a sensor group
// around each, maintains a persistent context label as the entity moves,
// collects the aggregate state, and runs object methods on the group
// leader.
//
// The package bundles a complete discrete-event sensor-network simulator
// (radio medium with collisions and loss, constrained mote CPUs, moving
// targets) so that tracking applications run on a laptop exactly as they
// would be structured on motes:
//
//	net, _ := envirotrack.New(
//	    envirotrack.WithGrid(10, 10),
//	    envirotrack.WithCommRadius(2.5),
//	    envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
//	)
//	net.AddTarget(&envirotrack.Target{
//	    Name: "tank", Kind: "vehicle",
//	    Traj:            envirotrack.Line{Start: envirotrack.Pt(0, 5), Dir: envirotrack.Vec(1, 0), Speed: 0.1},
//	    SignatureRadius: 1.5,
//	})
//	... attach a context type, run, and receive tracking reports.
//
// See the examples directory for complete programs and DESIGN.md for the
// system architecture.
package envirotrack

import (
	"io"

	"envirotrack/internal/aggregate"
	"envirotrack/internal/chaos"
	"envirotrack/internal/core"
	"envirotrack/internal/directory"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/invariant"
	"envirotrack/internal/obs"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
	"envirotrack/internal/track"
	"envirotrack/internal/transport"
)

// Geometry.
type (
	// Point is a location in the field, in grid units.
	Point = geom.Point
	// Vector is a displacement in the field.
	Vector = geom.Vector
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Vec constructs a Vector.
func Vec(dx, dy float64) Vector { return geom.Vec(dx, dy) }

// Environment modeling.
type (
	// Target is a physical entity moving through the field.
	Target = phenomena.Target
	// Trajectory yields a target position over time.
	Trajectory = phenomena.Trajectory
	// Stationary is a trajectory that never moves.
	Stationary = phenomena.Stationary
	// Line moves at constant speed in a fixed direction.
	Line = phenomena.Line
	// Waypoints moves through an ordered point list.
	Waypoints = phenomena.Waypoints
)

// NewWaypoints builds a waypoint trajectory at the given speed (grid units
// per second).
func NewWaypoints(pts []Point, speed float64) (*Waypoints, error) {
	return phenomena.NewWaypoints(pts, speed)
}

// Sensing.
type (
	// Reading is one sample of a mote's local environment.
	Reading = sensor.Reading
	// SenseFunc is a boolean sensing condition (the paper's sensee()).
	SenseFunc = sensor.Func
	// SensorModel is a mote's sensing suite.
	SensorModel = sensor.Model
	// ChannelFunc computes one sensor channel from the environment.
	ChannelFunc = sensor.ChannelFunc
	// SenseRegistry resolves named sensing functions (for the declaration
	// language).
	SenseRegistry = sensor.Registry
)

// NewSensorModel returns an empty sensing suite.
func NewSensorModel() *SensorModel { return sensor.NewModel() }

// NewSenseRegistry returns the library of common sensing functions.
func NewSenseRegistry() *SenseRegistry { return sensor.NewRegistry() }

// VehicleSensing returns the magnetometer preset detecting the given
// target kind.
func VehicleSensing(kind string) *SensorModel { return sensor.VehicleModel(kind) }

// FireSensing returns the temperature+light preset detecting the given
// target kind over the ambient temperature.
func FireSensing(kind string, ambient float64) *SensorModel { return sensor.FireModel(kind, ambient) }

// DetectionChannel is a 0/1 channel that fires within a target's signature
// radius.
func DetectionChannel(kind string) ChannelFunc { return sensor.DetectionChannel(kind) }

// IntensityChannel is an inverse-cube intensity channel.
func IntensityChannel(kind string, scale float64) ChannelFunc {
	return sensor.IntensityChannel(kind, scale)
}

// ConstantChannel is a fixed ambient value.
func ConstantChannel(v float64) ChannelFunc { return sensor.ConstantChannel(v) }

// Aggregation.
type (
	// AggFunc is a named aggregation function.
	AggFunc = aggregate.Func
	// Value is an aggregation result (scalar or position).
	Value = aggregate.Value
	// AggRegistry resolves named aggregation functions.
	AggRegistry = aggregate.Registry
)

// Builtin aggregation functions.
var (
	Avg              = aggregate.Avg
	Sum              = aggregate.Sum
	Min              = aggregate.Min
	Max              = aggregate.Max
	Count            = aggregate.Count
	Centroid         = aggregate.Centroid
	WeightedCentroid = aggregate.WeightedCentroid
)

// NewAggRegistry returns the builtin aggregation-function registry.
func NewAggRegistry() *AggRegistry { return aggregate.NewRegistry() }

// Programming model.
type (
	// ContextType declares a tracked-entity type: activation condition,
	// aggregate state variables, and attached objects.
	ContextType = core.ContextType
	// AggVar declares one aggregate state variable with its QoS.
	AggVar = core.AggVarSpec
	// Object declares a tracking object.
	Object = core.ObjectSpec
	// Method declares one object method and its invocation.
	Method = core.MethodSpec
	// Ctx is the enclosing-context API available to method bodies.
	Ctx = core.Ctx
	// Trigger tells a method body why it was invoked.
	Trigger = core.Trigger
	// Label is a context label: the persistent logical address of a
	// tracked entity.
	Label = group.Label
	// GroupConfig tunes the group-management protocol per context type.
	GroupConfig = group.Config
	// NodeMessage is a payload delivered to a mote-addressed receiver.
	NodeMessage = core.NodeMessage
	// PortID identifies a method endpoint within a label.
	PortID = transport.PortID
	// Datagram is a transport-layer message between (label, port)
	// endpoints.
	Datagram = transport.Datagram
	// DirectoryEntry is a directory record for an active label.
	DirectoryEntry = directory.Entry
	// NodeID identifies a mote.
	NodeID = radio.NodeID
)

// PositionInput is the distinguished aggregation input meaning the
// reporting mote's position.
const PositionInput = core.PositionInput

// Tracking backend names, for ContextType.Backend and WithBackend.
const (
	// BackendLeader is the paper's group-management protocol: heartbeat
	// flooding, leader election, and member reports (the default).
	BackendLeader = track.BackendLeader
	// BackendPassive is the passive-traces protocol: trace deposition,
	// one-hop gossip, and a local estimator — no leaders, no heartbeats.
	BackendPassive = track.BackendPassive
)

// TrackingBackends returns the registered tracking backend names.
func TrackingBackends() []string { return track.Names() }

// Trigger kinds.
const (
	TriggerTimer     = core.TriggerTimer
	TriggerCondition = core.TriggerCondition
	TriggerMessage   = core.TriggerMessage
)

// Statistics.
type (
	// Stats is the radio/message accounting of a run.
	Stats = trace.Stats
	// Ledger is the context-label coherence monitor.
	Ledger = trace.Ledger
	// HandoverSummary summarizes label handovers for one context type.
	HandoverSummary = trace.HandoverSummary
	// Trajectory records actual-vs-reported target tracks.
	TrackLog = trace.Trajectory
)

// Observability. (The name Event is taken by the session API, so the
// structured trace record is exported as TraceEvent.)
type (
	// EventBus fans structured protocol events out to sinks; attach one
	// with WithEventBus.
	EventBus = obs.Bus
	// EventSink consumes structured events.
	EventSink = obs.Sink
	// TraceEvent is one structured protocol observation.
	TraceEvent = obs.Event
	// TraceEventType classifies a TraceEvent.
	TraceEventType = obs.EventType
	// MetricsRegistry holds counters, gauges, and histograms with
	// Prometheus text-format and expvar exposition.
	MetricsRegistry = obs.Registry
	// Series is a columnar sim-time series produced by StartSeries.
	Series = obs.Series
	// SeriesProbe adds a custom column to StartSeries.
	SeriesProbe = obs.Probe
	// JSONLSink streams events as JSON lines.
	JSONLSink = obs.JSONLSink
	// RingSink retains the last N events for post-mortem dumps.
	RingSink = obs.RingSink
	// CounterSink tallies events by type.
	CounterSink = obs.CounterSink
	// MetricsSink derives handover-latency and leader-tenure histograms
	// (and per-type event counts) from the event stream.
	MetricsSink = obs.MetricsSink
)

// NewEventBus builds an event bus over the given sinks; pass it to a
// network via WithEventBus. A bus with no sinks is inactive and free.
func NewEventBus(sinks ...EventSink) *EventBus { return obs.NewBus(sinks...) }

// NewJSONLSink streams events to w as JSON lines; call Flush when done.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewRingSink retains the last capacity events.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewCounterSink tallies events by type.
func NewCounterSink() *CounterSink { return obs.NewCounterSink() }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsSink registers protocol metrics on reg and returns the sink
// feeding them.
func NewMetricsSink(reg *MetricsRegistry) *MetricsSink { return obs.NewMetricsSink(reg) }

// Causal span assembly.
type (
	// SpanSink is an EventSink assembling end-to-end report spans (per-hop
	// waterfalls with delivery latency or an attributed drop root cause)
	// and leadership-handover spans from the event stream. It works both
	// live on a bus and offline over a parsed JSONL trace (cmd/ettrace).
	SpanSink = obs.SpanSink
	// ReportSpan is the assembled life of one correlated message.
	ReportSpan = obs.ReportSpan
	// SpanHop is one radio transmission within a report span.
	SpanHop = obs.Hop
	// HandoverSpan is one leadership takeover with its causal chain.
	HandoverSpan = obs.HandoverSpan
	// SpanEvent is one entry of a handover span's causal chain.
	SpanEvent = obs.SpanEvent
)

// NewSpanSink returns an empty span assembler.
func NewSpanSink() *SpanSink { return obs.NewSpanSink() }

// ParseTraceEvent decodes one JSONL trace line (as written by a JSONLSink)
// back into a TraceEvent.
func ParseTraceEvent(line []byte) (TraceEvent, error) { return obs.ParseEvent(line) }

// RegisterRuntimeGauges adds Go runtime health gauges (goroutines, heap
// bytes, p99 GC pause, p99 scheduler latency) to the registry; they
// refresh at scrape time.
func RegisterRuntimeGauges(reg *MetricsRegistry) { obs.RegisterRuntimeGauges(reg) }

// Scheduler self-profiling.
type (
	// SelfProfile accumulates per-subsystem event counts and wall time for
	// every simulation event the scheduler dispatches; attach one with
	// WithSelfProfile. One profile may be shared by several networks (the
	// counters are atomic), aggregating a parallel sweep.
	SelfProfile = simtime.Profile
	// SubsystemStat is one row of a SelfProfile snapshot.
	SubsystemStat = simtime.OwnerStat
)

// NewSelfProfile builds an empty scheduler self-profile.
func NewSelfProfile() *SelfProfile { return simtime.NewProfile() }

// ExportSelfProfile publishes a profile snapshot into a metrics registry
// as envirotrack_sched_events_total and
// envirotrack_sched_wall_nanos_total, labeled by subsystem. It is
// idempotent: repeated calls advance the (monotonic) counters to the
// latest snapshot.
func ExportSelfProfile(reg *MetricsRegistry, p *SelfProfile) {
	events := reg.CounterVec("envirotrack_sched_events_total",
		"Simulation events dispatched, by owning subsystem.", "subsystem")
	wall := reg.CounterVec("envirotrack_sched_wall_nanos_total",
		"Wall-clock nanoseconds spent in simulation event callbacks, by owning subsystem.", "subsystem")
	for _, st := range p.Snapshot() {
		if st.Events == 0 && st.WallNanos == 0 {
			continue
		}
		if c := events.With(st.Name); st.Events > c.Value() {
			c.Add(st.Events - c.Value())
		}
		if c := wall.With(st.Name); uint64(st.WallNanos) > c.Value() {
			c.Add(uint64(st.WallNanos) - c.Value())
		}
	}
}

// Fault injection and invariant checking.
type (
	// ChaosSchedule is a declarative fault plan (node crashes, loss steps
	// and ramps, partitions, message duplication) replayed
	// deterministically on the virtual clock; install one with
	// Network.InjectFaults.
	ChaosSchedule = chaos.Schedule
	// InvariantChecker is an EventSink that checks protocol safety
	// invariants (single leader per label, takeover silence, teardown
	// quiescence, directory consistency, report cadence) over a run's
	// event stream.
	InvariantChecker = invariant.Checker
	// InvariantConfig parameterizes an InvariantChecker with the run's
	// protocol timing.
	InvariantConfig = invariant.Config
	// InvariantViolation is one proven invariant breach.
	InvariantViolation = invariant.Violation
	// InvariantPartition tells an InvariantChecker about a scheduled
	// network partition so split-brain leadership during it is exempt.
	InvariantPartition = invariant.PartitionWindow
)

// ParseChaosSchedule parses the textual chaos spec format, e.g.
// "crash:node=17,at=10s,for=5s;loss:at=20s,for=10s,p=0.5".
func ParseChaosSchedule(spec string) (ChaosSchedule, error) { return chaos.ParseSchedule(spec) }

// NewInvariantChecker builds an invariant checker for one run; attach it
// to the run's event bus and inspect Violations() afterwards.
func NewInvariantChecker(cfg InvariantConfig) *InvariantChecker { return invariant.New(cfg) }
