package envirotrack

import (
	"testing"
	"time"
)

// trackerContext builds the Figure 2 vehicle-tracking context for tests.
func trackerContext(pursuer NodeID, reports *[]Point) ContextType {
	return ContextType{
		Name: "tracker",
		Activation: func(rd Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Vars: []AggVar{{
			Name:         "location",
			Func:         Centroid,
			Input:        PositionInput,
			Freshness:    time.Second,
			CriticalMass: 2,
		}},
		Objects: []Object{{
			Name: "reporter",
			Methods: []Method{{
				Name:   "report_function",
				Period: time.Second,
				Body: func(ctx *Ctx, _ Trigger) {
					if loc, ok := ctx.ReadPosition("location"); ok {
						ctx.SendNode(pursuer, loc)
					}
				},
			}},
		}},
		Group: GroupConfig{
			HeartbeatPeriod: 250 * time.Millisecond,
			HopsPast:        1,
		},
	}
}

func buildNet(t *testing.T, opts ...Option) *Network {
	t.Helper()
	base := []Option{
		WithGrid(8, 3),
		WithCommRadius(2.5),
		WithSensing(VehicleSensing("vehicle")),
		WithSeed(7),
	}
	n, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEndToEndTracking(t *testing.T) {
	n := buildNet(t)
	var reports []Point
	spec := trackerContext(100, &reports)
	if err := n.AttachContextAll(spec); err != nil {
		t.Fatal(err)
	}
	pursuer, err := n.AddMote(100, Pt(7, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	pursuer.OnMessage(func(m NodeMessage) {
		if p, ok := m.Payload.(Point); ok {
			reports = append(reports, p)
		}
	})
	target := &Target{
		Name: "tank", Kind: "vehicle",
		Traj:            Stationary{At: Pt(3.5, 1)},
		SignatureRadius: 1.6,
	}
	n.AddTarget(target)

	if err := n.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no tracking reports received")
	}
	for _, p := range reports {
		if p.Dist(Pt(3.5, 1)) > 1.2 {
			t.Errorf("report %v too far from target", p)
		}
	}
	sum := n.Ledger().Summarize("tracker")
	if sum.CoherenceViolations() != 0 {
		t.Errorf("coherence violations = %d", sum.CoherenceViolations())
	}
}

func TestRunIsIncremental(t *testing.T) {
	n := buildNet(t)
	if err := n.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Now() != time.Second {
		t.Errorf("Now = %v, want 1s", n.Now())
	}
	if err := n.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", n.Now())
	}
}

func TestAddMoteAfterStartFails(t *testing.T) {
	n := buildNet(t)
	if err := n.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddMote(200, Pt(0, 0), nil); err == nil {
		t.Error("expected error adding mote after start")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(WithCommRadius(-1)); err == nil {
		t.Error("expected error for negative radius")
	}
}

func TestDuplicateMoteID(t *testing.T) {
	n := buildNet(t)
	if _, err := n.AddMote(0, Pt(0, 0), nil); err == nil {
		t.Error("expected duplicate-id error (grid already uses id 0)")
	}
}

func TestNodeAccessors(t *testing.T) {
	n := buildNet(t)
	node, ok := n.Node(5)
	if !ok {
		t.Fatal("grid node 5 missing")
	}
	if node.ID() != 5 {
		t.Errorf("ID = %v", node.ID())
	}
	if node.Pos() != Pt(5, 0) {
		t.Errorf("Pos = %v", node.Pos())
	}
	if len(n.Nodes()) != 24 {
		t.Errorf("Nodes = %d, want 24", len(n.Nodes()))
	}
	if _, ok := n.Node(999); ok {
		t.Error("unknown node found")
	}
}

func TestFaultInjectionThroughPublicAPI(t *testing.T) {
	n := buildNet(t)
	spec := trackerContext(100, nil)
	if err := n.AttachContextAll(spec); err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{
		Name: "tank", Kind: "vehicle",
		Traj: Stationary{At: Pt(3.5, 1)}, SignatureRadius: 1.6,
	})
	if err := n.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Find the leader, kill it, and verify the label survives by takeover.
	var leader *Node
	for _, id := range n.Nodes() {
		node, _ := n.Node(id)
		if node.Leading("tracker") {
			leader = node
			break
		}
	}
	if leader == nil {
		t.Fatal("no leader after 3s")
	}
	label := leader.CurrentLabel("tracker")
	leader.Fail()
	if !leader.Failed() {
		t.Error("Failed() = false")
	}
	if err := n.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	var successor *Node
	for _, id := range n.Nodes() {
		node, _ := n.Node(id)
		if node != leader && node.Leading("tracker") {
			successor = node
			break
		}
	}
	if successor == nil {
		t.Fatal("no successor leader emerged")
	}
	if successor.CurrentLabel("tracker") != label {
		t.Errorf("label changed: %q -> %q", label, successor.CurrentLabel("tracker"))
	}
}

func TestDirectoryThroughPublicAPI(t *testing.T) {
	n := buildNet(t, WithDirectory())
	spec := trackerContext(100, nil)
	if err := n.AttachContextAll(spec); err != nil {
		t.Fatal(err)
	}
	base, err := n.AddMote(100, Pt(7, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{
		Name: "tank", Kind: "vehicle",
		Traj: Stationary{At: Pt(3.5, 1)}, SignatureRadius: 1.6,
	})
	if err := n.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	var got []DirectoryEntry
	base.QueryDirectory("tracker", func(es []DirectoryEntry) { got = es })
	if err := n.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("directory entries = %d, want 1", len(got))
	}
	if got[0].Location.Dist(Pt(3.5, 1)) > 2.5 {
		t.Errorf("directory location %v far from target", got[0].Location)
	}
}

func TestStaticObjectThroughPublicAPI(t *testing.T) {
	n := buildNet(t, WithDirectory())
	base, err := n.AddMote(100, Pt(7, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	if _, err := base.AttachStatic("sink/100.1", []Object{{
		Name: "sink",
		Methods: []Method{{
			Name:   "tick",
			Period: time.Second,
			Body:   func(*Ctx, Trigger) { ticks++ },
		}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(4500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 4 {
		t.Errorf("static ticks = %d, want 4", ticks)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() (int, uint64) {
		n := buildNet(t)
		var count int
		spec := trackerContext(100, nil)
		if err := n.AttachContextAll(spec); err != nil {
			t.Fatal(err)
		}
		pursuer, err := n.AddMote(100, Pt(7, 3), nil)
		if err != nil {
			t.Fatal(err)
		}
		pursuer.OnMessage(func(NodeMessage) { count++ })
		traj, err := NewWaypoints([]Point{Pt(0.5, 1), Pt(7, 1)}, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		n.AddTarget(&Target{Name: "t", Kind: "vehicle", Traj: traj, SignatureRadius: 1.6})
		if err := n.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		return count, n.Stats().BitsSent
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Errorf("runs differ under the same seed: (%d,%d) vs (%d,%d)", c1, b1, c2, b2)
	}
	if c1 == 0 {
		t.Error("no reports in determinism run")
	}
}
