module envirotrack

go 1.24
