// Multitarget: two vehicles, persistent per-entity state, and fault
// injection.
//
// Two vehicles cross the field in opposite directions. Each gets its own
// context label whose tracking object counts its own reports in
// *persistent label state* (the EnviroTrack setState() mechanism of
// Section 5.2): the count survives leadership handovers, including a
// leader that is killed mid-run. The base station's output shows each
// label's monotonically increasing sequence numbers across handovers.
//
//	go run ./examples/multitarget
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"envirotrack"
)

const base envirotrack.NodeID = 7_000

type update struct {
	Label  envirotrack.Label
	Seq    int
	Loc    envirotrack.Point
	Leader envirotrack.NodeID
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := envirotrack.New(
		envirotrack.WithGrid(16, 3),
		envirotrack.WithCommRadius(2.5),
		envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
		envirotrack.WithLossProb(0.05),
		envirotrack.WithSeed(23),
	)
	if err != nil {
		return err
	}

	tracker := envirotrack.ContextType{
		Name: "tracker",
		Activation: func(rd envirotrack.Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Vars: []envirotrack.AggVar{{
			Name: "location", Func: envirotrack.Centroid, Input: envirotrack.PositionInput,
			Freshness: time.Second, CriticalMass: 2,
		}},
		Objects: []envirotrack.Object{{
			Name: "sequencer",
			Methods: []envirotrack.Method{{
				Name:   "report",
				Period: 2 * time.Second,
				Body: func(ctx *envirotrack.Ctx, _ envirotrack.Trigger) {
					loc, ok := ctx.ReadPosition("location")
					if !ok {
						return
					}
					// The report sequence number lives in the label's
					// persistent state and survives handover.
					seq, _ := strconv.Atoi(string(ctx.State()))
					seq++
					ctx.SetState([]byte(strconv.Itoa(seq)))
					ctx.SendNode(base, update{
						Label: ctx.Label(), Seq: seq, Loc: loc, Leader: ctx.MoteID(),
					})
				},
			}},
		}},
		Group: envirotrack.GroupConfig{
			HeartbeatPeriod: 400 * time.Millisecond,
			HopsPast:        1,
		},
	}
	if err := net.AttachContextAll(tracker); err != nil {
		return err
	}
	sink, err := net.AddMote(base, envirotrack.Pt(8, 3), nil)
	if err != nil {
		return err
	}

	// Eastbound and westbound vehicles, far enough apart to stay distinct.
	east := &envirotrack.Target{
		Name: "eastbound", Kind: "vehicle",
		Traj: envirotrack.Line{
			Start: envirotrack.Pt(-1.5, 1), Dir: envirotrack.Vec(1, 0), Speed: 0.25,
		},
		SignatureRadius: 1.5,
	}
	west := &envirotrack.Target{
		Name: "westbound", Kind: "vehicle",
		Traj: envirotrack.Line{
			Start: envirotrack.Pt(16.5, 1), Dir: envirotrack.Vec(-1, 0), Speed: 0.25,
		},
		SignatureRadius: 1.5,
	}
	net.AddTarget(east)
	net.AddTarget(west)

	perLabel := make(map[envirotrack.Label][]update)
	leaders := make(map[envirotrack.Label]map[envirotrack.NodeID]bool)
	sink.OnMessage(func(nm envirotrack.NodeMessage) {
		u, ok := nm.Payload.(update)
		if !ok {
			return
		}
		perLabel[u.Label] = append(perLabel[u.Label], u)
		if leaders[u.Label] == nil {
			leaders[u.Label] = make(map[envirotrack.NodeID]bool)
		}
		leaders[u.Label][u.Leader] = true
		fmt.Printf("%6.1fs  %-16s seq=%-3d at %v (leader %d)\n",
			net.Now().Seconds(), u.Label, u.Seq, u.Loc, u.Leader)
	})

	// Mid-run fault injection: kill whichever mote leads the eastbound
	// label at t = 20 s; the successor resumes the sequence.
	if err := net.Run(20 * time.Second); err != nil {
		return err
	}
	for _, id := range net.Nodes() {
		node, _ := net.Node(id)
		if node.Leading("tracker") && node.Pos().Dist(net.TargetPosition(east)) < 2 {
			fmt.Printf("-- killing leader mote %d --\n", id)
			node.Fail()
			break
		}
	}
	if err := net.Run(25 * time.Second); err != nil {
		return err
	}

	fmt.Printf("\n%d distinct labels tracked (want 2, one per vehicle)\n", len(perLabel))
	for label, ups := range perLabel {
		monotonic := true
		for i := 1; i < len(ups); i++ {
			if ups[i].Seq <= ups[i-1].Seq {
				monotonic = false
			}
		}
		fmt.Printf("  %-16s %d reports, %d distinct leaders, sequence monotonic: %v\n",
			label, len(ups), len(leaders[label]), monotonic)
	}
	return nil
}
