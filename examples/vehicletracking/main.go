// Vehicle tracking: the paper's Section 6.1 case study.
//
// A T-72 tank (44 tons, detectable by magnetometers at ~100 m) crosses a
// border deployment of motes spaced 140 m apart (one grid unit). The tank
// moves at 50 km/h — 10 seconds per hop. The tracking context is written
// in the EnviroTrack declaration language (Figure 2) and compiled by the
// embedded preprocessor; the pursuer receives position reports every 5
// seconds and prints the real-vs-estimated track, reproducing Figure 3.
//
//	go run ./examples/vehicletracking
package main

import (
	"fmt"
	"log"
	"time"

	"envirotrack"
)

const program = `
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            send(pursuer, self:label, location);
        }
    end
end context
`

const (
	pursuerID    envirotrack.NodeID = 10_000
	metersPerHop                    = 140.0
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	specs, err := envirotrack.CompileContexts(program, envirotrack.CompileEnv{
		Destinations: map[string]envirotrack.NodeID{"pursuer": pursuerID},
		Group: envirotrack.GroupConfig{
			HeartbeatPeriod: 500 * time.Millisecond,
			HopsPast:        1, // propagate heartbeats past the sensing radius (Figure 4's winning setting)
		},
	})
	if err != nil {
		return err
	}

	net, err := envirotrack.New(
		envirotrack.WithGrid(11, 2),
		envirotrack.WithCommRadius(2.0),
		envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
		envirotrack.WithLossProb(0.05), // the unreliable MICA medium
		envirotrack.WithSeed(7),
	)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		if err := net.AttachContextAll(spec); err != nil {
			return err
		}
	}
	if _, err := net.AddMote(pursuerID, envirotrack.Pt(10, 2), nil); err != nil {
		return err
	}

	// 50 km/h over 140 m hops = 0.0992 hops/s; the tank drives along
	// y = 0.5, between the two mote rows, as in Figure 3.
	const speedHops = 50.0 * 1000 / 3600 / metersPerHop
	tank := &envirotrack.Target{
		Name: "t72", Kind: "vehicle",
		Traj: envirotrack.Line{
			Start: envirotrack.Pt(-1.5, 0.5),
			Dir:   envirotrack.Vec(1, 0),
			Speed: speedHops,
		},
		SignatureRadius: 1.5, // scaled 100 m magnetic signature
	}
	net.AddTarget(tank)

	fmt.Println("T-72 at 50 km/h over a 140 m grid; reports every 5 s (Figure 3)")
	fmt.Printf("%8s %10s %10s %10s %10s %8s\n", "t(s)", "x_true", "y_true", "x_est", "y_est", "err(m)")

	duration := 120 * time.Second
	session := net.RunSession(duration, pursuerID)
	var worst float64
	for ev := range session.Events() {
		m, ok := ev.Msg.Payload.(envirotrack.LangMessage)
		if !ok || len(m.Values) != 2 {
			continue
		}
		est, ok := m.Values[1].(envirotrack.Point)
		if !ok {
			continue
		}
		truth := tank.PositionAt(ev.At)
		errM := truth.Dist(est) * metersPerHop
		if errM > worst {
			worst = errM
		}
		fmt.Printf("%8.1f %10.3f %10.3f %10.3f %10.3f %8.1f\n",
			ev.At.Seconds(), truth.X, truth.Y, est.X, est.Y, errM)
	}
	if err := session.Wait(); err != nil {
		return err
	}

	sum := net.Ledger().Summarize("tracker")
	fmt.Printf("\nworst position error: %.0f m (sensing radius is %.0f m)\n", worst, 1.5*metersPerHop)
	fmt.Printf("context label coherence: %d label(s), %d handovers, %d violations\n",
		sum.Created, sum.Successful, sum.CoherenceViolations())
	fmt.Printf("heartbeat loss %.1f%%, link utilization %.2f%% of 50 kb/s\n",
		100*net.Stats().LossFraction("heartbeat"),
		100*net.Stats().LinkUtilization(duration, 50_000))
	return nil
}
