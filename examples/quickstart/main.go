// Quickstart: track a single moving vehicle with EnviroTrack.
//
// A 10x3 grid of simulated motes watches for magnetic disturbances. When
// the vehicle appears, the middleware forms a sensor group around it,
// elects a leader, and attaches the tracking object declared below, which
// reports the vehicle's estimated position to a base station once a
// second. The context label stays the same as the vehicle moves across
// the field, even though the motes executing the object keep changing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"envirotrack"
)

const baseStation envirotrack.NodeID = 999

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10x3 grid of motes with magnetometers, radios reaching 2.5 grid
	// units, and a seeded (reproducible) medium.
	net, err := envirotrack.New(
		envirotrack.WithGrid(10, 3),
		envirotrack.WithCommRadius(2.5),
		envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
		envirotrack.WithLossProb(0.05),
		envirotrack.WithSeed(42),
	)
	if err != nil {
		return err
	}

	// The Figure 2 context: track anything the magnetometers detect,
	// maintain avg(position) with freshness 1s and critical mass 2, and
	// report it to the base station every second.
	tracker := envirotrack.ContextType{
		Name: "tracker",
		Activation: func(rd envirotrack.Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Vars: []envirotrack.AggVar{{
			Name:         "location",
			Func:         envirotrack.Centroid,
			Input:        envirotrack.PositionInput,
			Freshness:    time.Second,
			CriticalMass: 2,
		}},
		Objects: []envirotrack.Object{{
			Name: "reporter",
			Methods: []envirotrack.Method{{
				Name:   "report_function",
				Period: time.Second,
				Body: func(ctx *envirotrack.Ctx, _ envirotrack.Trigger) {
					if loc, ok := ctx.ReadPosition("location"); ok {
						ctx.SendNode(baseStation, loc)
					}
				},
			}},
		}},
		Group: envirotrack.GroupConfig{
			HeartbeatPeriod: 500 * time.Millisecond,
			HopsPast:        1,
		},
	}
	if err := net.AttachContextAll(tracker); err != nil {
		return err
	}

	// The base station sits at the field edge and prints reports.
	base, err := net.AddMote(baseStation, envirotrack.Pt(9, 3), nil)
	if err != nil {
		return err
	}

	// A vehicle drives across the field at 0.2 grid units per second.
	vehicle := &envirotrack.Target{
		Name: "car-1", Kind: "vehicle",
		Traj: envirotrack.Line{
			Start: envirotrack.Pt(-1.5, 1),
			Dir:   envirotrack.Vec(1, 0),
			Speed: 0.2,
		},
		SignatureRadius: 1.6,
	}
	net.AddTarget(vehicle)

	// Run for 50 simulated seconds, streaming reports as they arrive.
	fmt.Println("time     label              estimated position   true position")
	session := net.RunSession(50*time.Second, baseStation)
	for ev := range session.Events() {
		loc, ok := ev.Msg.Payload.(envirotrack.Point)
		if !ok {
			continue
		}
		truth := vehicle.PositionAt(ev.At)
		fmt.Printf("%6.1fs  %-18s %-20s %s\n",
			ev.At.Seconds(), ev.Msg.FromLabel, loc, truth)
	}
	if err := session.Wait(); err != nil {
		return err
	}
	_ = base

	sum := net.Ledger().Summarize("tracker")
	fmt.Printf("\none vehicle, one label: %d label(s) created, %d leadership handovers, %d coherence violations\n",
		sum.Created, sum.Successful, sum.CoherenceViolations())
	return nil
}
