package main

import "testing"

// TestRunCompletes is the example's smoke test: the program must run its
// full simulated scenario to completion without error. It executes in
// well under a second of wall time (the simulator runs on a virtual
// clock), so it doubles as a compile-and-run check in CI.
func TestRunCompletes(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
