// Fire tracking: multiple simultaneous phenomena and directory queries.
//
// The fire-sensing scenario of Section 3.1: a context activates where
// sense_fire() = (temperature > 180) and (light), with critical mass 5
// and freshness 3 s, as the paper's example QoS. Two separate fires burn
// in a 12x12 field; each gets its own context label. A command post uses
// the object naming and directory services to ask "where are all the
// fires?" (Section 5.3) and then invokes a method on each fire's tracking
// object over the MTP transport to request a detailed heat report.
//
//	go run ./examples/firetracking
package main

import (
	"fmt"
	"log"
	"time"

	"envirotrack"
)

const commandPost envirotrack.NodeID = 5_000

type heatReport struct {
	Label    envirotrack.Label
	AvgTemp  float64
	Location envirotrack.Point
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := envirotrack.New(
		envirotrack.WithGrid(12, 12),
		envirotrack.WithCommRadius(2.5),
		envirotrack.WithSensing(envirotrack.FireSensing("fire", 20 /* ambient C */)),
		envirotrack.WithDirectory(),
		envirotrack.WithSeed(11),
	)
	if err != nil {
		return err
	}

	// sense_fire() = (temperature > 180) and (light), N=5, L=3s.
	fire := envirotrack.ContextType{
		Name: "fire",
		Activation: func(rd envirotrack.Reading) bool {
			temp, _ := rd.Value("temperature")
			light, _ := rd.Value("light")
			return temp > 180 && light > 0.5
		},
		Vars: []envirotrack.AggVar{
			{
				Name: "heat", Func: envirotrack.Avg, Input: "temperature",
				Freshness: 3 * time.Second, CriticalMass: 5,
			},
			{
				Name: "where", Func: envirotrack.Centroid, Input: envirotrack.PositionInput,
				Freshness: 3 * time.Second, CriticalMass: 5,
			},
		},
		Objects: []envirotrack.Object{{
			Name: "firewatch",
			Methods: []envirotrack.Method{{
				// Message-triggered method: the command post invokes it
				// remotely through the fire's context label.
				Name: "report_heat",
				Port: 4,
				Body: func(ctx *envirotrack.Ctx, trig envirotrack.Trigger) {
					heat, okH := ctx.ReadScalar("heat")
					loc, okW := ctx.ReadPosition("where")
					if !okH || !okW {
						return // critical mass not met: unconfirmed siting
					}
					ctx.SendNode(commandPost, heatReport{
						Label: ctx.Label(), AvgTemp: heat, Location: loc,
					})
				},
			}},
		}},
		Group: envirotrack.GroupConfig{
			HeartbeatPeriod: 500 * time.Millisecond,
			HopsPast:        1,
		},
	}
	if err := net.AttachContextAll(fire); err != nil {
		return err
	}

	post, err := net.AddMote(commandPost, envirotrack.Pt(0, 12), nil)
	if err != nil {
		return err
	}
	var reports []heatReport
	post.OnMessage(func(nm envirotrack.NodeMessage) {
		if r, ok := nm.Payload.(heatReport); ok {
			reports = append(reports, r)
		}
	})

	// Two fires, far apart; the second ignites later.
	// Amplitude scales the fires' heat output so that the 180 C activation
	// threshold is exceeded throughout the 2.2-unit flame signature —
	// enough sensors to satisfy the critical mass of 5.
	net.AddTarget(&envirotrack.Target{
		Name: "fire-north", Kind: "fire",
		Traj:            envirotrack.Stationary{At: envirotrack.Pt(2.5, 9.5)},
		SignatureRadius: 2.2,
		Amplitude:       6,
	})
	net.AddTarget(&envirotrack.Target{
		Name: "fire-south", Kind: "fire",
		Traj:            envirotrack.Stationary{At: envirotrack.Pt(9.5, 2.5)},
		SignatureRadius: 2.2,
		Amplitude:       6,
		AppearsAt:       5 * time.Second,
	})

	// Let the labels form and register with the directory.
	if err := net.Run(12 * time.Second); err != nil {
		return err
	}

	// "Where are all the fires?" The query crosses many radio hops with no
	// MAC-layer reliability, so the directory layer retransmits on timeout;
	// give it time to converge.
	var entries []envirotrack.DirectoryEntry
	post.QueryDirectory("fire", func(es []envirotrack.DirectoryEntry) { entries = es })
	if err := net.Run(8 * time.Second); err != nil {
		return err
	}
	fmt.Printf("directory: %d active fire label(s)\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  %-14s near %v (leader mote %d)\n", e.Label, e.Location, e.Leader)
	}

	// Invoke report_heat on each fire's tracking object via the transport.
	// Method invocations are one-shot datagrams on a lossy multi-hop
	// network: the client retries until it has a report per fire.
	for attempt := 1; attempt <= 5 && len(reports) < len(entries); attempt++ {
		for _, e := range entries {
			post.Send(envirotrack.Datagram{
				SrcLabel: "post/1",
				DstLabel: e.Label,
				DstPort:  4,
				Payload:  "report",
			})
		}
		if err := net.Run(5 * time.Second); err != nil {
			return err
		}
	}

	fmt.Printf("\nheat reports received: %d\n", len(reports))
	for _, r := range reports {
		fmt.Printf("  %-14s avg temperature %.0f C at %v\n", r.Label, r.AvgTemp, r.Location)
	}
	live := net.Ledger().LiveLabels("fire")
	fmt.Printf("\nlive fire labels: %v\n", live)
	return nil
}
