package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"envirotrack"
)

// TestRunCompletes is the example's smoke test: the walkthrough must run
// its scenario to completion and leave behind a JSONL trace the offline
// span assembler (the ettrace path) can rebuild spans from.
func TestRunCompletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := envirotrack.NewSpanSink()
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		ev, err := envirotrack.ParseTraceEvent(line)
		if err != nil {
			t.Fatal(err)
		}
		sink.Emit(ev)
	}
	if len(sink.Reports()) == 0 {
		t.Fatal("trace rebuilt no report spans")
	}
}
