// Trace analysis walkthrough: capture a causal trace of a tracking
// scenario, assemble report spans live, and leave a JSONL trace behind
// for the offline analyzer.
//
// The scenario is the quickstart's vehicle chase with lossier radios, so
// some member readings and base-station reports die on the air. Three
// observability tools watch the same run:
//
//   - a SpanSink assembles every correlated message's end-to-end life —
//     per-hop waterfall, delivery latency, or a root cause for the loss;
//
//   - a JSONLSink streams the raw event stream to trace.jsonl, which
//     `go run ./cmd/ettrace trace.jsonl` analyzes offline (same spans,
//     rebuilt from the file);
//
//   - a scheduler SelfProfile attributes simulation work (event counts
//     and wall time) to the subsystem that scheduled it.
//
//     go run ./examples/traceanalysis
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"envirotrack"
)

const baseStation envirotrack.NodeID = 999

func main() {
	if err := run("trace.jsonl"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote trace.jsonl — analyze it offline with:")
	fmt.Println("  go run ./cmd/ettrace trace.jsonl")
	fmt.Println("  go run ./cmd/ettrace -format json -top 3 trace.jsonl")
}

func run(tracePath string) error {
	traceFile, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer traceFile.Close()

	// One bus fans the event stream out to both consumers; the self-profile
	// hooks the scheduler directly.
	spans := envirotrack.NewSpanSink()
	jsonl := envirotrack.NewJSONLSink(traceFile)
	profile := envirotrack.NewSelfProfile()

	net, err := envirotrack.New(
		envirotrack.WithGrid(10, 3),
		envirotrack.WithCommRadius(2.5),
		envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
		envirotrack.WithLossProb(0.15), // lossy on purpose: we want root causes
		envirotrack.WithSeed(7),
		envirotrack.WithEventBus(envirotrack.NewEventBus(spans, jsonl)),
		envirotrack.WithSelfProfile(profile),
	)
	if err != nil {
		return err
	}

	tracker := envirotrack.ContextType{
		Name: "tracker",
		Activation: func(rd envirotrack.Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Vars: []envirotrack.AggVar{{
			Name:         "location",
			Func:         envirotrack.Centroid,
			Input:        envirotrack.PositionInput,
			Freshness:    time.Second,
			CriticalMass: 2,
		}},
		Objects: []envirotrack.Object{{
			Name: "reporter",
			Methods: []envirotrack.Method{{
				Name:   "report_function",
				Period: time.Second,
				Body: func(ctx *envirotrack.Ctx, _ envirotrack.Trigger) {
					if loc, ok := ctx.ReadPosition("location"); ok {
						ctx.SendNode(baseStation, loc)
					}
				},
			}},
		}},
		Group: envirotrack.GroupConfig{
			HeartbeatPeriod: 500 * time.Millisecond,
			HopsPast:        1,
		},
	}
	if err := net.AttachContextAll(tracker); err != nil {
		return err
	}
	if _, err := net.AddMote(baseStation, envirotrack.Pt(9, 3), nil); err != nil {
		return err
	}
	net.AddTarget(&envirotrack.Target{
		Name: "car-1", Kind: "vehicle",
		Traj: envirotrack.Line{
			Start: envirotrack.Pt(-1.5, 1),
			Dir:   envirotrack.Vec(1, 0),
			Speed: 0.2,
		},
		SignatureRadius: 1.6,
	})

	session := net.RunSession(30*time.Second, baseStation)
	received := 0
	for range session.Events() {
		received++
	}
	if err := session.Wait(); err != nil {
		return err
	}
	if err := jsonl.Flush(); err != nil {
		return err
	}

	// --- Span analysis: what happened to every message this run sent? ---
	reports := spans.Reports()
	delivered, undelivered := 0, map[string]int{}
	var worst envirotrack.ReportSpan
	for _, sp := range reports {
		if sp.Delivered {
			delivered++
			if sp.Latency > worst.Latency {
				worst = sp
			}
		} else {
			undelivered[sp.RootCause]++
		}
	}
	fmt.Printf("base station received %d reports\n", received)
	fmt.Printf("%d correlated messages traced: %d delivered, %d lost\n",
		len(reports), delivered, len(reports)-delivered)

	causes := make([]string, 0, len(undelivered))
	for c := range undelivered {
		causes = append(causes, c)
	}
	sort.Slice(causes, func(i, j int) bool {
		if undelivered[causes[i]] != undelivered[causes[j]] {
			return undelivered[causes[i]] > undelivered[causes[j]]
		}
		return causes[i] < causes[j]
	})
	fmt.Println("\nwhy messages were lost:")
	for _, c := range causes {
		fmt.Printf("  %-14s %d\n", c, undelivered[c])
	}

	// The slowest delivery, hop by hop — the span's radio waterfall.
	if worst.Delivered {
		fmt.Printf("\nslowest delivery: %s from mote %d, %d hop(s), %v end to end\n",
			worst.Kind, worst.Src, len(worst.Hops), worst.Latency)
		for _, h := range worst.Hops {
			to := fmt.Sprint(h.To)
			if h.To < 0 {
				to = "-"
			}
			fmt.Printf("  t=%-8v %d -> %-4s %s\n", h.SentAt, h.From, to, h.Outcome)
		}
	}

	for _, h := range spans.Handovers() {
		fmt.Printf("\nleadership handover on %q: leader %d -> %d after %v of silence\n",
			h.Label, h.OldLeader, h.NewLeader, h.Gap)
	}

	// --- Self-profile: where did the simulator spend its time? ---
	fmt.Println("\nscheduler self-profile (events per subsystem):")
	for _, st := range profile.Snapshot() {
		if st.Events == 0 {
			continue
		}
		fmt.Printf("  %-10s %7d events  %v\n",
			st.Name, st.Events, time.Duration(st.WallNanos).Round(time.Microsecond))
	}
	return nil
}
