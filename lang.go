package envirotrack

import (
	"envirotrack/internal/core"
	"envirotrack/internal/lang"
)

// LangMessage is the payload produced by the declaration language's
// send()/MySend() builtin: the originating context label followed by the
// evaluated arguments.
type LangMessage = lang.Message

// CompileEnv binds the names an EnviroTrack program references to the
// runtime world: send() destinations, custom actions, and the group
// configuration applied to compiled context types.
type CompileEnv struct {
	// Destinations binds send() target identifiers ("pursuer") to motes.
	Destinations map[string]NodeID
	// Actions binds custom body-call names to implementations.
	Actions map[string]func(ctx *Ctx, args []any)
	// Logf receives log() output; nil discards it.
	Logf func(format string, args ...any)
	// Senses resolves activation-condition function names (defaults to
	// the builtin library).
	Senses *SenseRegistry
	// Aggs resolves aggregation function names (defaults to the builtin
	// library).
	Aggs *AggRegistry
	// Group configures group management for the compiled contexts.
	Group GroupConfig
	// AllowUnbound makes unknown destinations and actions compile to
	// no-ops instead of errors (syntax/semantic checking without runtime
	// bindings).
	AllowUnbound bool
}

// CompileContexts parses and compiles an EnviroTrack program (the Section
// 4 declaration language) into context types ready for AttachContext —
// the run-time role of the paper's preprocessor.
func CompileContexts(src string, env CompileEnv) ([]ContextType, error) {
	actions := make(map[string]lang.ActionFunc, len(env.Actions))
	for name, fn := range env.Actions {
		actions[name] = lang.ActionFunc(fn)
	}
	return lang.CompileSource(src, lang.Env{
		Senses:       env.Senses,
		Aggs:         env.Aggs,
		Destinations: env.Destinations,
		Actions:      actions,
		Logf:         env.Logf,
		AllowUnbound: env.AllowUnbound,
		Group:        env.Group,
	})
}

// GenerateGo translates an EnviroTrack program into Go source against this
// package's API — the code-emitting role of the paper's preprocessor
// (which emitted NesC). pkg is the generated package name ("main" if
// empty).
func GenerateGo(src, pkg string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	return lang.GenerateGo(prog, pkg)
}

// FormatSource parses a program and renders it back in canonical form.
func FormatSource(src string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	return prog.Format(), nil
}

var _ = core.PositionInput // anchor: core is the compile target
