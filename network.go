package envirotrack

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"envirotrack/internal/chaos"
	"envirotrack/internal/core"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// ModelFunc assigns a sensing model to each deployed mote; returning nil
// deploys a pure relay node.
type ModelFunc func(id NodeID, pos Point) *SensorModel

// networkConfig collects the options of New.
type networkConfig struct {
	cols, rows  int
	commRadius  float64
	bitRate     float64
	lossProb    float64
	propDelay   time.Duration
	noCollision bool
	noCSMA      bool
	perReceiver bool
	seed        int64
	moteCfg     mote.Config
	bounds      Rect
	boundsSet   bool
	modelFn     ModelFunc
	directory   bool
	bus         *obs.Bus
	selfProfile *simtime.Profile
	shards      int
}

// Option configures New.
type Option interface {
	apply(*networkConfig)
}

type optionFunc func(*networkConfig)

func (f optionFunc) apply(c *networkConfig) { f(c) }

// WithGrid deploys a cols x rows grid of motes at unit spacing, with ids
// assigned row-major starting at 0.
func WithGrid(cols, rows int) Option {
	return optionFunc(func(c *networkConfig) { c.cols, c.rows = cols, rows })
}

// WithCommRadius sets the communication radius in grid units (default 2).
func WithCommRadius(r float64) Option {
	return optionFunc(func(c *networkConfig) { c.commRadius = r })
}

// WithBitRate sets the channel capacity in bits/second (default 50 kb/s,
// the MICA mote radio).
func WithBitRate(bps float64) Option {
	return optionFunc(func(c *networkConfig) { c.bitRate = bps })
}

// WithLossProb sets the iid per-receiver frame loss probability.
func WithLossProb(p float64) Option {
	return optionFunc(func(c *networkConfig) { c.lossProb = p })
}

// WithPropDelay sets the fixed per-frame propagation delay.
func WithPropDelay(d time.Duration) Option {
	return optionFunc(func(c *networkConfig) { c.propDelay = d })
}

// WithoutCollisions disables the receiver-side collision model.
func WithoutCollisions() Option {
	return optionFunc(func(c *networkConfig) { c.noCollision = true })
}

// WithoutCSMA disables carrier sensing: senders transmit immediately even
// when the channel around them is busy (an ablation of the MAC layer).
func WithoutCSMA() Option {
	return optionFunc(func(c *networkConfig) { c.noCSMA = true })
}

// WithPerReceiverDelivery switches the radio medium to the pre-batching
// reference path: one scheduler event per target receiver instead of one
// pooled delivery batch per frame. Traces are byte-identical either way
// (the equivalence tests pin this); the option exists for differential
// testing, not tuning.
func WithPerReceiverDelivery() Option {
	return optionFunc(func(c *networkConfig) { c.perReceiver = true })
}

// WithSeed makes the run deterministic under the given seed (default 1).
func WithSeed(seed int64) Option {
	return optionFunc(func(c *networkConfig) { c.seed = seed })
}

// WithMoteCPU sets the per-message CPU service time and queue capacity,
// modeling the constrained mote processor.
func WithMoteCPU(serviceTime time.Duration, queueCap int) Option {
	return optionFunc(func(c *networkConfig) {
		c.moteCfg.ServiceTime = serviceTime
		c.moteCfg.QueueCap = queueCap
	})
}

// WithSensePeriod sets the sensor scan period (default 100 ms).
func WithSensePeriod(d time.Duration) Option {
	return optionFunc(func(c *networkConfig) { c.moteCfg.SensePeriod = d })
}

// WithSensing assigns the same sensing model constructor to every grid
// mote.
func WithSensing(model *SensorModel) Option {
	return optionFunc(func(c *networkConfig) {
		c.modelFn = func(NodeID, Point) *SensorModel { return model }
	})
}

// WithSensingFunc assigns sensing models per mote.
func WithSensingFunc(fn ModelFunc) Option {
	return optionFunc(func(c *networkConfig) { c.modelFn = fn })
}

// WithBounds overrides the field bounds used for directory hashing
// (default: the grid bounds).
func WithBounds(r Rect) Option {
	return optionFunc(func(c *networkConfig) { c.bounds, c.boundsSet = r, true })
}

// WithDirectory enables the object naming and directory services.
func WithDirectory() Option {
	return optionFunc(func(c *networkConfig) { c.directory = true })
}

// WithEventBus attaches an observability event bus: every protocol layer
// (group, mote CPU, radio, transport, directory) emits structured events
// through it. A nil or sink-less bus costs one nil check per emission
// site; sinks only observe, so attaching one cannot perturb a seeded run.
func WithEventBus(bus *EventBus) Option {
	return optionFunc(func(c *networkConfig) { c.bus = bus })
}

// WithShards splits the run's event engine into n spatially sharded
// scheduler clones: the field bounds are tiled into a near-square grid of
// n regions, every mote's protocol timers and its outbound radio traffic
// run on the scheduler shard owning its region, and the shards are merged
// deterministically in global (at, seq) order. Results and traces are
// byte-identical to serial (-shards 1, the default) at any shard count —
// the differential battery in internal/eval pins this — while per-shard
// heaps stay small and boundary traffic is classified and accounted
// (Network.BoundaryFrames, Network.LookaheadViolations). n < 2 keeps the
// serial engine.
func WithShards(n int) Option {
	return optionFunc(func(c *networkConfig) { c.shards = n })
}

// WithSelfProfile attaches a scheduler self-profile: every simulation
// event is timed and attributed to its owning subsystem (radio, group,
// routing, ...), and callbacks run under pprof labels so CPU profiles
// break down the same way. Profiling adds wall-clock measurement around
// each event but never feeds wall time into the simulation, so traces
// and results are unchanged.
func WithSelfProfile(p *SelfProfile) Option {
	return optionFunc(func(c *networkConfig) { c.selfProfile = p })
}

// Network is a simulated EnviroTrack deployment: a radio medium, a field
// of targets, and a set of motes running the middleware stack. It is
// driven by a virtual clock; use Run/RunSession to advance it. A Network
// is not safe for concurrent use except through a Session.
type Network struct {
	cfg   networkConfig
	sched *simtime.Scheduler
	// group is the sharded executor when WithShards(n>1) is in effect
	// (sched is then its shard 0, the home of run-global events); shardOf
	// maps a position to its owning shard. Both nil/unset in serial runs.
	group   *simtime.ShardGroup
	shardOf func(geom.Point) int32
	medium  *radio.Medium
	field   *phenomena.Field
	stats   *trace.Stats
	ledger  *trace.Ledger
	rng     *rand.Rand
	bus     *obs.Bus

	nodes   map[NodeID]*Node
	started bool

	// hot is the struct-of-arrays mirror of the per-mote hot fields
	// (position, failure, CPU queue, membership/sensing words); every
	// deployed mote is registered into it, so the sensing sweep and the
	// series probes walk dense slices instead of the nodes map.
	hot *mote.HotState

	// ctxTypes are the attached context type names in attach order, for
	// the built-in series probes.
	ctxTypes []string
}

// Node is one deployed mote with its middleware stack.
type Node struct {
	net   *Network
	mote  *mote.Mote
	stack *core.Stack
}

// New builds a network. With WithGrid, motes 0..cols*rows-1 are deployed
// immediately; additional motes (base stations, pursuers) can be added
// with AddMote.
func New(opts ...Option) (*Network, error) {
	cfg := networkConfig{
		commRadius: 2,
		seed:       1,
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.commRadius <= 0 {
		return nil, fmt.Errorf("envirotrack: communication radius must be positive")
	}
	if !cfg.boundsSet {
		cfg.bounds = geom.Grid{Cols: cfg.cols, Rows: cfg.rows}.Bounds()
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}

	sched := simtime.NewScheduler()
	var shardGroup *simtime.ShardGroup
	var shardOf func(geom.Point) int32
	if cfg.shards > 1 {
		shardGroup = simtime.NewShardGroup(cfg.shards)
		sched = shardGroup.Shard(0)
		shardOf = shardMapper(cfg.bounds, cfg.shards)
	}
	if cfg.selfProfile != nil {
		if shardGroup != nil {
			shardGroup.SetProfile(cfg.selfProfile)
		} else {
			sched.SetProfile(cfg.selfProfile)
		}
	}
	var stats trace.Stats
	rng := rand.New(rand.NewSource(cfg.seed))
	medium := radio.New(sched, radio.Params{
		CommRadius:          cfg.commRadius,
		BitRate:             cfg.bitRate,
		PropDelay:           cfg.propDelay,
		LossProb:            cfg.lossProb,
		DisableCollisions:   cfg.noCollision,
		DisableCSMA:         cfg.noCSMA,
		PerReceiverDelivery: cfg.perReceiver,
	}, rng, &stats)
	medium.SetObserver(cfg.bus)
	if shardGroup != nil {
		medium.SetSharding(shardGroup.Schedulers(), shardOf)
	}

	n := &Network{
		cfg:     cfg,
		sched:   sched,
		group:   shardGroup,
		shardOf: shardOf,
		medium:  medium,
		field:   phenomena.NewField(),
		stats:   &stats,
		ledger:  &trace.Ledger{},
		rng:     rng,
		bus:     cfg.bus,
		nodes:   make(map[NodeID]*Node),
		hot:     mote.NewHotState(),
	}

	if cfg.cols > 0 && cfg.rows > 0 {
		for y := 0; y < cfg.rows; y++ {
			for x := 0; x < cfg.cols; x++ {
				id := NodeID(y*cfg.cols + x)
				pos := Pt(float64(x), float64(y))
				var model *SensorModel
				if cfg.modelFn != nil {
					model = cfg.modelFn(id, pos)
				}
				if _, err := n.AddMote(id, pos, model); err != nil {
					return nil, err
				}
			}
		}
	}
	return n, nil
}

// shardMapper returns a function mapping positions to one of k shard
// regions tiling bounds in a near-square gx x gy grid (gx*gy = k, with
// the longer field dimension getting the larger factor). Positions
// outside the bounds — pursuers, off-field base stations — clamp to the
// nearest region, so every mote has an owner.
func shardMapper(bounds geom.Rect, k int) func(geom.Point) int32 {
	gy := int(math.Sqrt(float64(k)))
	for k%gy != 0 {
		gy--
	}
	gx := k / gy
	if bounds.Height() > bounds.Width() {
		gx, gy = gy, gx
	}
	w, h := bounds.Width(), bounds.Height()
	return func(p geom.Point) int32 {
		p = bounds.Clamp(p)
		col, row := 0, 0
		if w > 0 {
			col = int(float64(gx) * (p.X - bounds.Min.X) / w)
			if col >= gx {
				col = gx - 1
			}
		}
		if h > 0 {
			row = int(float64(gy) * (p.Y - bounds.Min.Y) / h)
			if row >= gy {
				row = gy - 1
			}
		}
		return int32(row*gx + col)
	}
}

// AddMote deploys an additional mote (e.g. a base station). It must be
// called before Run. Under sharded execution the mote's scheduler is the
// shard owning its region: every protocol timer it ever arms lands on
// that shard's heap.
func (n *Network) AddMote(id NodeID, pos Point, model *SensorModel) (*Node, error) {
	if n.started {
		return nil, fmt.Errorf("envirotrack: cannot add motes after the network started")
	}
	sched := n.sched
	var shard int32
	if n.group != nil {
		shard = n.shardOf(pos)
		sched = n.group.Shard(int(shard))
	}
	m, err := mote.New(id, pos, sched, n.medium, n.field, model, n.cfg.moteCfg, n.rng, n.stats)
	if err != nil {
		return nil, fmt.Errorf("envirotrack: %w", err)
	}
	idx := m.BindHot(n.hot)
	n.hot.SetShard(idx, shard)
	m.SetObserver(n.bus)
	stack := core.NewStack(m, n.medium, core.StackConfig{
		Bounds:       n.cfg.bounds,
		UseDirectory: n.cfg.directory,
	}, n.ledger)
	node := &Node{net: n, mote: m, stack: stack}
	n.nodes[id] = node
	return node, nil
}

// AddTarget places a physical entity in the environment.
func (n *Network) AddTarget(t *Target) {
	n.field.Add(t)
}

// Node returns a deployed mote by id.
func (n *Network) Node(id NodeID) (*Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// Nodes returns all deployed node ids in ascending order.
func (n *Network) Nodes() []NodeID {
	return n.medium.NodeIDs()
}

// AttachContextAll attaches a context type to every sensing mote.
func (n *Network) AttachContextAll(spec ContextType) error {
	for _, id := range n.medium.NodeIDs() {
		node := n.nodes[id]
		if node.mote == nil {
			continue
		}
		if _, err := node.stack.AttachContext(spec); err != nil {
			return err
		}
	}
	n.noteCtxType(spec.Name)
	return nil
}

// noteCtxType records an attached context type name (once) for the series
// probes.
func (n *Network) noteCtxType(name string) {
	for _, ct := range n.ctxTypes {
		if ct == name {
			return
		}
	}
	n.ctxTypes = append(n.ctxTypes, name)
}

// EventBus returns the bus attached via WithEventBus (nil when absent).
func (n *Network) EventBus() *EventBus {
	return n.bus
}

// StartSeries samples simulation health every `every` of sim time into a
// columnar Series and returns it. The built-in columns are live_labels
// (labels created but not yet deleted, over all attached context types),
// group_size (motes currently participating in any label), cpu_queue
// (frames waiting in mote CPU queues), and link_util (cumulative channel
// utilization in [0,1]). Extra probes append their own columns. Sampling
// only reads protocol state, so it does not perturb a seeded run.
func (n *Network) StartSeries(every time.Duration, extra ...SeriesProbe) *Series {
	probes := append([]obs.Probe{
		{Name: "live_labels", Sample: func() float64 {
			total := 0
			for _, ct := range n.ctxTypes {
				total += len(n.ledger.LiveLabels(ct))
			}
			return float64(total)
		}},
		{Name: "group_size", Sample: func() float64 {
			// Fast path: membership bits live in the hot-state word slice,
			// so the probe is one scan over []uint32. The pointer walk
			// remains for the (unreachable in practice) >32-context case.
			var mask uint32
			ok := true
			for _, ct := range n.ctxTypes {
				m, found := n.hot.CtxMask(ct)
				if !found {
					ok = false
					break
				}
				mask |= m
			}
			if ok && !n.hot.Overflowed() {
				return float64(n.hot.MemberCountMask(mask))
			}
			total := 0
			for _, id := range n.medium.NodeIDs() {
				node := n.nodes[id]
				for _, ct := range n.ctxTypes {
					if rt, ok := node.stack.Runtime(ct); ok && rt.Manager().Role() != group.RoleNone {
						total++
						break
					}
				}
			}
			return float64(total)
		}},
		{Name: "cpu_queue", Sample: func() float64 {
			return float64(n.hot.QueuedTotal())
		}},
		{Name: "link_util", Sample: func() float64 {
			return n.stats.LinkUtilization(n.sched.Now(), n.medium.Params().BitRate)
		}},
	}, extra...)
	sampler := obs.NewSampler(probes...)
	sampler.Sample(n.sched.Now())
	simtime.NewTickerOwned(n.sched, every, simtime.OwnerSeries, func() {
		sampler.Sample(n.sched.Now())
	})
	return sampler.Series()
}

// InjectFaults installs a chaos fault schedule on the network: node
// crashes/restores become scheduler events driving Mote.Fail/Restore,
// and loss, ramp, partition, and duplication faults are wired into the
// radio medium. Call it before Run; the schedule replays deterministically
// on the virtual clock, so the same seed plus the same schedule always
// reproduces the same run. An empty schedule is a no-op.
func (n *Network) InjectFaults(sc chaos.Schedule) error {
	if sc.Empty() {
		return nil
	}
	for _, c := range sc.Crashes {
		if _, ok := n.nodes[NodeID(c.Node)]; !ok {
			return fmt.Errorf("envirotrack: chaos schedule crashes unknown node %d", c.Node)
		}
	}
	inj, err := chaos.NewInjector(n.sched, sc, chaos.Hooks{
		Fail: func(node int) {
			if nd, ok := n.nodes[NodeID(node)]; ok {
				nd.Fail()
			}
		},
		Restore: func(node int) {
			if nd, ok := n.nodes[NodeID(node)]; ok {
				nd.Restore()
			}
		},
		Position: n.medium.Position,
	})
	if err != nil {
		return fmt.Errorf("envirotrack: %w", err)
	}
	n.medium.SetFaultInjector(inj)
	return nil
}

// start launches the sensing scans once. All sensing motes share the one
// SensePeriod from the network config, so instead of one ticker per mote
// the network arms a single sweep ticker that scans every sensing mote in
// ascending id order — the same scan order and timestamps the per-mote
// tickers produced (motes started in id order fire back-to-back each
// period), at one scheduler event per period instead of one per mote.
func (n *Network) start() {
	if n.started {
		return
	}
	n.started = true
	// Deterministic sweep order: map iteration order would leak into the
	// scheduler's same-instant FIFO ordering.
	var sweep []*mote.Mote
	var period time.Duration
	for _, id := range n.medium.NodeIDs() {
		m := n.nodes[id].mote
		m.StartManaged()
		if m.HasModel() {
			sweep = append(sweep, m)
			period = m.Config().SensePeriod
		}
	}
	if len(sweep) > 0 {
		simtime.NewTickerOwned(n.sched, period, simtime.OwnerSense, func() {
			for _, m := range sweep {
				m.ScanOnce()
			}
		})
	}
}

// AddCrossTraffic schedules periodic background frames from src to dst
// that do not participate in any protocol ("background noise", used by the
// Section 6.2 bottleneck experiment). Bits <= 0 uses the default frame
// size.
func (n *Network) AddCrossTraffic(src, dst NodeID, period time.Duration, bits int) error {
	if period <= 0 {
		return fmt.Errorf("envirotrack: cross-traffic period must be positive")
	}
	node, ok := n.nodes[src]
	if !ok {
		return fmt.Errorf("envirotrack: unknown cross-traffic source %d", src)
	}
	simtime.NewTickerOwned(n.sched, period, simtime.OwnerApp, func() {
		if node.mote.Failed() {
			return
		}
		n.medium.Send(radio.Frame{
			Kind: trace.KindCross,
			Src:  src,
			Dst:  dst,
			Bits: bits,
		})
	})
	return nil
}

// Run advances the simulation by d of virtual time (synchronously, on the
// calling goroutine). It can be called repeatedly.
func (n *Network) Run(d time.Duration) error {
	n.start()
	return n.sched.RunUntil(n.sched.Now() + d)
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration {
	return n.sched.Now()
}

// Stats returns the run's radio accounting.
func (n *Network) Stats() *Stats {
	return n.stats
}

// Ledger returns the context-label coherence ledger.
func (n *Network) Ledger() *Ledger {
	return n.ledger
}

// TargetPosition returns a target's position at the current virtual time.
func (n *Network) TargetPosition(t *Target) Point {
	return t.PositionAt(n.sched.Now())
}

// Bounds returns the field bounds.
func (n *Network) Bounds() Rect {
	return n.cfg.bounds
}

// Shards returns the number of scheduler shards executing the run (1 for
// the serial engine).
func (n *Network) Shards() int {
	if n.group != nil {
		return n.group.Shards()
	}
	return 1
}

// ShardOf returns the shard owning a position (always 0 in serial runs).
func (n *Network) ShardOf(p Point) int {
	if n.shardOf != nil {
		return int(n.shardOf(p))
	}
	return 0
}

// ShardHorizon returns shard i's committed horizon — the timestamp of
// the last event it executed (the group clock itself in serial runs).
func (n *Network) ShardHorizon(i int) time.Duration {
	if n.group != nil {
		return n.group.Horizon(i)
	}
	return n.sched.Now()
}

// CrossShardEvents counts scheduler events placed on a different shard
// than the one executing (0 in serial runs).
func (n *Network) CrossShardEvents() uint64 {
	if n.group != nil {
		return n.group.CrossEvents()
	}
	return 0
}

// BoundaryFrames counts radio target receptions whose sender and
// receiver live in different shards (0 in serial runs).
func (n *Network) BoundaryFrames() uint64 {
	return n.medium.BoundaryFrames()
}

// LookaheadViolations counts cross-shard deliveries that landed closer
// to the sending shard's committed horizon than one packet time. Always
// zero outside the shardmut mutation build.
func (n *Network) LookaheadViolations() uint64 {
	return n.medium.LookaheadViolations()
}

// --- Node methods ---

// ID returns the node id.
func (nd *Node) ID() NodeID { return nd.mote.ID() }

// Pos returns the node position.
func (nd *Node) Pos() Point { return nd.mote.Pos() }

// AttachContext installs a context type on this mote.
func (nd *Node) AttachContext(spec ContextType) error {
	_, err := nd.stack.AttachContext(spec)
	if err == nil {
		nd.net.noteCtxType(spec.Name)
	}
	return err
}

// AttachStatic installs a static object under the given label on this
// mote (base stations, sinks, command posts).
func (nd *Node) AttachStatic(label Label, objects []Object) (*Ctx, error) {
	return nd.stack.AttachStatic(label, objects)
}

// OnMessage registers a handler for NodeMessages addressed to this mote
// by object code (Ctx.SendNode).
func (nd *Node) OnMessage(fn func(NodeMessage)) {
	nd.stack.OnNodeMessage(fn)
}

// Send transmits a transport datagram from this node (for base stations
// invoking methods on tracking objects).
func (nd *Node) Send(d Datagram) {
	nd.stack.Endpoint().Send(d)
}

// QueryDirectory asks the directory for all labels of a context type.
func (nd *Node) QueryDirectory(ctxType string, cb func([]DirectoryEntry)) {
	nd.stack.Directory().Query(ctxType, cb)
}

// Leading reports whether this node currently leads a label of the given
// context type.
func (nd *Node) Leading(ctxType string) bool {
	rt, ok := nd.stack.Runtime(ctxType)
	return ok && rt.Leading()
}

// CurrentLabel returns the label this node participates in for a context
// type (empty when none).
func (nd *Node) CurrentLabel(ctxType string) Label {
	rt, ok := nd.stack.Runtime(ctxType)
	if !ok {
		return ""
	}
	return rt.Manager().Label()
}

// Fail kills the mote (fault injection); Restore revives it.
func (nd *Node) Fail() { nd.mote.Fail() }

// Restore revives a failed mote.
func (nd *Node) Restore() { nd.mote.Restore() }

// Failed reports whether the mote is failed.
func (nd *Node) Failed() bool { return nd.mote.Failed() }
