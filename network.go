package envirotrack

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"envirotrack/internal/chaos"
	"envirotrack/internal/core"
	"envirotrack/internal/geom"
	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
	"envirotrack/internal/track"
)

// ModelFunc assigns a sensing model to each deployed mote; returning nil
// deploys a pure relay node.
type ModelFunc func(id NodeID, pos Point) *SensorModel

// networkConfig collects the options of New.
type networkConfig struct {
	cols, rows  int
	commRadius  float64
	bitRate     float64
	lossProb    float64
	propDelay   time.Duration
	noCollision bool
	noCSMA      bool
	perReceiver bool
	seed        int64
	moteCfg     mote.Config
	bounds      Rect
	boundsSet   bool
	modelFn     ModelFunc
	directory   bool
	bus         *obs.Bus
	selfProfile *simtime.Profile
	shards      int
	parallel    bool
	backend     string
}

// Option configures New.
type Option interface {
	apply(*networkConfig)
}

type optionFunc func(*networkConfig)

func (f optionFunc) apply(c *networkConfig) { f(c) }

// WithGrid deploys a cols x rows grid of motes at unit spacing, with ids
// assigned row-major starting at 0.
func WithGrid(cols, rows int) Option {
	return optionFunc(func(c *networkConfig) { c.cols, c.rows = cols, rows })
}

// WithCommRadius sets the communication radius in grid units (default 2).
func WithCommRadius(r float64) Option {
	return optionFunc(func(c *networkConfig) { c.commRadius = r })
}

// WithBitRate sets the channel capacity in bits/second (default 50 kb/s,
// the MICA mote radio).
func WithBitRate(bps float64) Option {
	return optionFunc(func(c *networkConfig) { c.bitRate = bps })
}

// WithLossProb sets the iid per-receiver frame loss probability.
func WithLossProb(p float64) Option {
	return optionFunc(func(c *networkConfig) { c.lossProb = p })
}

// WithPropDelay sets the fixed per-frame propagation delay.
func WithPropDelay(d time.Duration) Option {
	return optionFunc(func(c *networkConfig) { c.propDelay = d })
}

// WithoutCollisions disables the receiver-side collision model.
func WithoutCollisions() Option {
	return optionFunc(func(c *networkConfig) { c.noCollision = true })
}

// WithoutCSMA disables carrier sensing: senders transmit immediately even
// when the channel around them is busy (an ablation of the MAC layer).
func WithoutCSMA() Option {
	return optionFunc(func(c *networkConfig) { c.noCSMA = true })
}

// WithPerReceiverDelivery switches the radio medium to the pre-batching
// reference path: one scheduler event per target receiver instead of one
// pooled delivery batch per frame. Traces are byte-identical either way
// (the equivalence tests pin this); the option exists for differential
// testing, not tuning.
func WithPerReceiverDelivery() Option {
	return optionFunc(func(c *networkConfig) { c.perReceiver = true })
}

// WithSeed makes the run deterministic under the given seed (default 1).
func WithSeed(seed int64) Option {
	return optionFunc(func(c *networkConfig) { c.seed = seed })
}

// WithMoteCPU sets the per-message CPU service time and queue capacity,
// modeling the constrained mote processor.
func WithMoteCPU(serviceTime time.Duration, queueCap int) Option {
	return optionFunc(func(c *networkConfig) {
		c.moteCfg.ServiceTime = serviceTime
		c.moteCfg.QueueCap = queueCap
	})
}

// WithSensePeriod sets the sensor scan period (default 100 ms).
func WithSensePeriod(d time.Duration) Option {
	return optionFunc(func(c *networkConfig) { c.moteCfg.SensePeriod = d })
}

// WithSensing assigns the same sensing model constructor to every grid
// mote.
func WithSensing(model *SensorModel) Option {
	return optionFunc(func(c *networkConfig) {
		c.modelFn = func(NodeID, Point) *SensorModel { return model }
	})
}

// WithSensingFunc assigns sensing models per mote.
func WithSensingFunc(fn ModelFunc) Option {
	return optionFunc(func(c *networkConfig) { c.modelFn = fn })
}

// WithBounds overrides the field bounds used for directory hashing
// (default: the grid bounds).
func WithBounds(r Rect) Option {
	return optionFunc(func(c *networkConfig) { c.bounds, c.boundsSet = r, true })
}

// WithDirectory enables the object naming and directory services.
func WithDirectory() Option {
	return optionFunc(func(c *networkConfig) { c.directory = true })
}

// WithBackend selects the default tracking backend for context types
// attached without an explicit one (a ContextType.Backend set by the
// language's backend clause or by hand still wins). Known backends:
// BackendLeader (the default) and BackendPassive.
func WithBackend(name string) Option {
	return optionFunc(func(c *networkConfig) { c.backend = name })
}

// WithEventBus attaches an observability event bus: every protocol layer
// (group, mote CPU, radio, transport, directory) emits structured events
// through it. A nil or sink-less bus costs one nil check per emission
// site; sinks only observe, so attaching one cannot perturb a seeded run.
func WithEventBus(bus *EventBus) Option {
	return optionFunc(func(c *networkConfig) { c.bus = bus })
}

// WithShards splits the run's event engine into n spatially sharded
// scheduler clones: the field bounds are tiled into a near-square grid of
// n regions, every mote's protocol timers and its outbound radio traffic
// run on the scheduler shard owning its region, and the shards are merged
// deterministically in global (at, seq) order. Results and traces are
// byte-identical to serial (-shards 1, the default) at any shard count —
// the differential battery in internal/eval pins this — while per-shard
// heaps stay small and boundary traffic is classified and accounted
// (Network.BoundaryFrames, Network.LookaheadViolations). n < 2 keeps the
// serial engine.
func WithShards(n int) Option {
	return optionFunc(func(c *networkConfig) { c.shards = n })
}

// WithParallelShards splits the run into k spatially sharded schedulers
// like WithShards, then executes them on separate goroutines with the
// free-running conservative-lookahead (LBTS) engine: each shard fires its
// events inside lookahead windows of one minimum packet time
// (airtime + PropDelay), a barrier drains the cross-shard radio
// mailboxes, merges the buffered observability lanes, and samples series,
// and the window advances. Each shard owns a deterministic RNG stream
// derived from the run seed (simtime.ShardSeed) and CSMA occupancy is
// shard-local, so results are no longer byte-identical to serial — they
// are statistically equivalent (the internal/eval equivalence battery
// pins the distributions) and deterministic per (seed, shard count):
// rerunning the same configuration reproduces the run byte-for-byte.
// Violations of the lookahead bound make Run fail with an error — a
// violated bound means the run is invalid. k < 2 keeps the serial engine.
func WithParallelShards(k int) Option {
	return optionFunc(func(c *networkConfig) {
		c.shards = k
		c.parallel = k > 1
	})
}

// WithSelfProfile attaches a scheduler self-profile: every simulation
// event is timed and attributed to its owning subsystem (radio, group,
// routing, ...), and callbacks run under pprof labels so CPU profiles
// break down the same way. Profiling adds wall-clock measurement around
// each event but never feeds wall time into the simulation, so traces
// and results are unchanged.
func WithSelfProfile(p *SelfProfile) Option {
	return optionFunc(func(c *networkConfig) { c.selfProfile = p })
}

// Network is a simulated EnviroTrack deployment: a radio medium, a field
// of targets, and a set of motes running the middleware stack. It is
// driven by a virtual clock; use Run/RunSession to advance it. A Network
// is not safe for concurrent use except through a Session.
type Network struct {
	cfg   networkConfig
	sched *simtime.Scheduler
	// group is the sharded executor when WithShards(n>1) is in effect
	// (sched is then its shard 0, the home of run-global events); shardOf
	// maps a position to its owning shard. Both nil/unset in serial runs.
	group   *simtime.ShardGroup
	shardOf func(geom.Point) int32
	medium  *radio.Medium
	field   *phenomena.Field
	stats   *trace.Stats
	ledger  *trace.Ledger
	rng     *rand.Rand
	bus     *obs.Bus

	nodes   map[NodeID]*Node
	started bool

	// Free-running parallel state (WithParallelShards): per-shard RNG
	// streams and stats accumulators, the buffered observability lanes
	// merged at each window barrier, the barrier-driven series samplers,
	// and the smallest cross-traffic frame size (which can lower the
	// lookahead window below the default frame's packet time). All nil or
	// zero outside parallel mode.
	shardRngs    []*rand.Rand
	shardStats   []*trace.Stats
	lanes        *obs.LaneSet
	parSamplers  []*parSampler
	minCrossBits int

	// hot is the struct-of-arrays mirror of the per-mote hot fields
	// (position, failure, CPU queue, membership/sensing words); every
	// deployed mote is registered into it, so the sensing sweep and the
	// series probes walk dense slices instead of the nodes map.
	hot *mote.HotState

	// ctxTypes are the attached context type names in attach order, for
	// the built-in series probes.
	ctxTypes []string
}

// Node is one deployed mote with its middleware stack.
type Node struct {
	net   *Network
	mote  *mote.Mote
	stack *core.Stack
}

// New builds a network. With WithGrid, motes 0..cols*rows-1 are deployed
// immediately; additional motes (base stations, pursuers) can be added
// with AddMote.
func New(opts ...Option) (*Network, error) {
	cfg := networkConfig{
		commRadius: 2,
		seed:       1,
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.commRadius <= 0 {
		return nil, fmt.Errorf("envirotrack: communication radius must be positive")
	}
	if cfg.backend != "" && !track.Known(cfg.backend) {
		return nil, fmt.Errorf("envirotrack: unknown tracking backend %q (known: %s)",
			cfg.backend, strings.Join(track.Names(), ", "))
	}
	if !cfg.boundsSet {
		cfg.bounds = geom.Grid{Cols: cfg.cols, Rows: cfg.rows}.Bounds()
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}

	sched := simtime.NewScheduler()
	var shardGroup *simtime.ShardGroup
	var shardOf func(geom.Point) int32
	if cfg.shards > 1 {
		shardGroup = simtime.NewShardGroup(cfg.shards)
		sched = shardGroup.Shard(0)
		shardOf = shardMapper(cfg.bounds, cfg.shards)
		if cfg.parallel {
			// Before any event is scheduled: parallel mode switches the
			// shards to local clocks and sequence counters.
			shardGroup.EnableParallel()
		}
	}
	if cfg.selfProfile != nil {
		if shardGroup != nil {
			shardGroup.SetProfile(cfg.selfProfile)
		} else {
			sched.SetProfile(cfg.selfProfile)
		}
	}
	var stats trace.Stats
	rng := rand.New(rand.NewSource(cfg.seed))
	medium := radio.New(sched, radio.Params{
		CommRadius:          cfg.commRadius,
		BitRate:             cfg.bitRate,
		PropDelay:           cfg.propDelay,
		LossProb:            cfg.lossProb,
		DisableCollisions:   cfg.noCollision,
		DisableCSMA:         cfg.noCSMA,
		PerReceiverDelivery: cfg.perReceiver,
	}, rng, &stats)
	medium.SetObserver(cfg.bus)
	if shardGroup != nil {
		medium.SetSharding(shardGroup.Schedulers(), shardOf)
	}

	n := &Network{
		cfg:     cfg,
		sched:   sched,
		group:   shardGroup,
		shardOf: shardOf,
		medium:  medium,
		field:   phenomena.NewField(),
		stats:   &stats,
		ledger:  &trace.Ledger{},
		rng:     rng,
		bus:     cfg.bus,
		nodes:   make(map[NodeID]*Node),
		hot:     mote.NewHotState(),
	}

	if n.parallel() {
		k := cfg.shards
		n.shardRngs = make([]*rand.Rand, k)
		n.shardStats = make([]*trace.Stats, k)
		rts := make([]radio.ShardRuntime, k)
		n.lanes = obs.NewLaneSet(cfg.bus, k)
		for i := 0; i < k; i++ {
			n.shardRngs[i] = rand.New(rand.NewSource(simtime.ShardSeed(cfg.seed, i)))
			n.shardStats[i] = &trace.Stats{}
			rts[i] = radio.ShardRuntime{RNG: n.shardRngs[i], Stats: n.shardStats[i], Bus: n.laneBus(i)}
		}
		medium.EnableParallel(rts)
	}

	if cfg.cols > 0 && cfg.rows > 0 {
		for y := 0; y < cfg.rows; y++ {
			for x := 0; x < cfg.cols; x++ {
				id := NodeID(y*cfg.cols + x)
				pos := Pt(float64(x), float64(y))
				var model *SensorModel
				if cfg.modelFn != nil {
					model = cfg.modelFn(id, pos)
				}
				if _, err := n.AddMote(id, pos, model); err != nil {
					return nil, err
				}
			}
		}
	}
	return n, nil
}

// shardMapper returns a function mapping positions to one of k shard
// regions tiling bounds in a near-square gx x gy grid (gx*gy = k, with
// the longer field dimension getting the larger factor). Positions
// outside the bounds — pursuers, off-field base stations — clamp to the
// nearest region, so every mote has an owner.
func shardMapper(bounds geom.Rect, k int) func(geom.Point) int32 {
	gy := int(math.Sqrt(float64(k)))
	for k%gy != 0 {
		gy--
	}
	gx := k / gy
	if bounds.Height() > bounds.Width() {
		gx, gy = gy, gx
	}
	w, h := bounds.Width(), bounds.Height()
	return func(p geom.Point) int32 {
		p = bounds.Clamp(p)
		col, row := 0, 0
		if w > 0 {
			col = int(float64(gx) * (p.X - bounds.Min.X) / w)
			if col >= gx {
				col = gx - 1
			}
		}
		if h > 0 {
			row = int(float64(gy) * (p.Y - bounds.Min.Y) / h)
			if row >= gy {
				row = gy - 1
			}
		}
		return int32(row*gx + col)
	}
}

// AddMote deploys an additional mote (e.g. a base station). It must be
// called before Run. Under sharded execution the mote's scheduler is the
// shard owning its region: every protocol timer it ever arms lands on
// that shard's heap.
func (n *Network) AddMote(id NodeID, pos Point, model *SensorModel) (*Node, error) {
	if n.started {
		return nil, fmt.Errorf("envirotrack: cannot add motes after the network started")
	}
	sched := n.sched
	var shard int32
	if n.group != nil {
		shard = n.shardOf(pos)
		sched = n.group.Shard(int(shard))
	}
	rng, stats, bus := n.rng, n.stats, n.bus
	if n.parallel() {
		// The mote draws from its shard's RNG stream, accounts into its
		// shard's stats, and emits through its shard's buffered lane — no
		// mutable state shared across shard goroutines.
		rng = n.shardRngs[shard]
		stats = n.shardStats[shard]
		bus = n.laneBus(int(shard))
	}
	m, err := mote.New(id, pos, sched, n.medium, n.field, model, n.cfg.moteCfg, rng, stats)
	if err != nil {
		return nil, fmt.Errorf("envirotrack: %w", err)
	}
	idx := m.BindHot(n.hot)
	n.hot.SetShard(idx, shard)
	m.SetObserver(bus)
	stack := core.NewStack(m, n.medium, core.StackConfig{
		Bounds:       n.cfg.bounds,
		UseDirectory: n.cfg.directory,
	}, n.ledger)
	node := &Node{net: n, mote: m, stack: stack}
	n.nodes[id] = node
	return node, nil
}

// AddTarget places a physical entity in the environment.
func (n *Network) AddTarget(t *Target) {
	n.field.Add(t)
}

// Node returns a deployed mote by id.
func (n *Network) Node(id NodeID) (*Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// Nodes returns all deployed node ids in ascending order.
func (n *Network) Nodes() []NodeID {
	return n.medium.NodeIDs()
}

// AttachContextAll attaches a context type to every sensing mote. A
// spec without an explicit Backend gets the network's default (see
// WithBackend).
func (n *Network) AttachContextAll(spec ContextType) error {
	if spec.Backend == "" {
		spec.Backend = n.cfg.backend
	}
	for _, id := range n.medium.NodeIDs() {
		node := n.nodes[id]
		if node.mote == nil {
			continue
		}
		if _, err := node.stack.AttachContext(spec); err != nil {
			return err
		}
	}
	n.noteCtxType(spec.Name)
	return nil
}

// noteCtxType records an attached context type name (once) for the series
// probes.
func (n *Network) noteCtxType(name string) {
	// Intern the type's hot-state bit now, at setup: the first SetMember /
	// SetSensing otherwise inserts it lazily mid-run, which under the
	// free-running parallel engine would mutate the shared intern map from
	// whichever shard goroutine touches the type first.
	n.hot.CtxMask(name)
	for _, ct := range n.ctxTypes {
		if ct == name {
			return
		}
	}
	n.ctxTypes = append(n.ctxTypes, name)
}

// EventBus returns the bus attached via WithEventBus (nil when absent).
func (n *Network) EventBus() *EventBus {
	return n.bus
}

// StartSeries samples simulation health every `every` of sim time into a
// columnar Series and returns it. The built-in columns are live_labels
// (labels created but not yet deleted, over all attached context types),
// group_size (motes currently participating in any label), cpu_queue
// (frames waiting in mote CPU queues), and link_util (cumulative channel
// utilization in [0,1]). Extra probes append their own columns. Sampling
// only reads protocol state, so it does not perturb a seeded run.
func (n *Network) StartSeries(every time.Duration, extra ...SeriesProbe) *Series {
	probes := append([]obs.Probe{
		{Name: "live_labels", Sample: func() float64 {
			total := 0
			for _, ct := range n.ctxTypes {
				total += len(n.ledger.LiveLabels(ct))
			}
			return float64(total)
		}},
		{Name: "group_size", Sample: func() float64 {
			// Fast path: membership bits live in the hot-state word slice,
			// so the probe is one scan over []uint32. The pointer walk
			// remains for the (unreachable in practice) >32-context case.
			var mask uint32
			ok := true
			for _, ct := range n.ctxTypes {
				m, found := n.hot.CtxMask(ct)
				if !found {
					ok = false
					break
				}
				mask |= m
			}
			if ok && !n.hot.Overflowed() {
				return float64(n.hot.MemberCountMask(mask))
			}
			total := 0
			for _, id := range n.medium.NodeIDs() {
				node := n.nodes[id]
				for _, ct := range n.ctxTypes {
					if rt, ok := node.stack.Runtime(ct); ok && rt.Participating() {
						total++
						break
					}
				}
			}
			return float64(total)
		}},
		{Name: "cpu_queue", Sample: func() float64 {
			return float64(n.hot.QueuedTotal())
		}},
		{Name: "link_util", Sample: func() float64 {
			return n.Stats().LinkUtilization(n.Now(), n.medium.Params().BitRate)
		}},
	}, extra...)
	sampler := obs.NewSampler(probes...)
	sampler.Sample(n.Now())
	if n.parallel() {
		// No scheduler ticker in parallel mode: the probes read run-global
		// state (ledger, hot slices, merged stats), so they sample at the
		// window barriers, where every shard worker is parked. Each due
		// instant in a window gets one row stamped with its due time, so
		// the cadence matches serial; the values are the protocol state at
		// the enclosing barrier — within one lookahead window of the due
		// time.
		n.parSamplers = append(n.parSamplers, &parSampler{
			sampler: sampler,
			every:   every,
			next:    n.Now() + every,
		})
		return sampler.Series()
	}
	simtime.NewTickerOwned(n.sched, every, simtime.OwnerSeries, func() {
		sampler.Sample(n.sched.Now())
	})
	return sampler.Series()
}

// parSampler is one barrier-driven series sampler of a parallel run.
type parSampler struct {
	sampler *obs.Sampler
	every   time.Duration
	next    time.Duration
}

// InjectFaults installs a chaos fault schedule on the network: node
// crashes/restores become scheduler events driving Mote.Fail/Restore,
// and loss, ramp, partition, and duplication faults are wired into the
// radio medium. Call it before Run; the schedule replays deterministically
// on the virtual clock, so the same seed plus the same schedule always
// reproduces the same run. An empty schedule is a no-op.
func (n *Network) InjectFaults(sc chaos.Schedule) error {
	if sc.Empty() {
		return nil
	}
	for _, c := range sc.Crashes {
		if _, ok := n.nodes[NodeID(c.Node)]; !ok {
			return fmt.Errorf("envirotrack: chaos schedule crashes unknown node %d", c.Node)
		}
	}
	inj, err := chaos.NewInjectorRouted(n.chaosSchedFor, sc, chaos.Hooks{
		Fail: func(node int) {
			if nd, ok := n.nodes[NodeID(node)]; ok {
				nd.Fail()
			}
		},
		Restore: func(node int) {
			if nd, ok := n.nodes[NodeID(node)]; ok {
				nd.Restore()
			}
		},
		Position: n.medium.Position,
	})
	if err != nil {
		return fmt.Errorf("envirotrack: %w", err)
	}
	n.medium.SetFaultInjector(inj)
	return nil
}

// chaosSchedFor routes a chaos victim's crash/restore events onto the
// scheduler shard owning the victim, so in a free-running parallel run
// the callback executes on the goroutine that owns the mote's state.
// Routing is resolved at setup time, so in deterministic mode the global
// (at, seq) firing order is unchanged.
func (n *Network) chaosSchedFor(node int) *simtime.Scheduler {
	if n.group != nil {
		if nd, ok := n.nodes[NodeID(node)]; ok {
			return nd.mote.Scheduler()
		}
	}
	return n.sched
}

// start launches the sensing scans once. All sensing motes share the one
// SensePeriod from the network config, so instead of one ticker per mote
// the network arms a single sweep ticker that scans every sensing mote in
// ascending id order — the same scan order and timestamps the per-mote
// tickers produced (motes started in id order fire back-to-back each
// period), at one scheduler event per period instead of one per mote.
func (n *Network) start() {
	if n.started {
		return
	}
	n.started = true
	// Deterministic sweep order: map iteration order would leak into the
	// scheduler's same-instant FIFO ordering.
	var sweep []*mote.Mote
	var period time.Duration
	for _, id := range n.medium.NodeIDs() {
		m := n.nodes[id].mote
		m.StartManaged()
		if m.HasModel() {
			sweep = append(sweep, m)
			period = m.Config().SensePeriod
		}
	}
	if len(sweep) > 0 && n.parallel() {
		// One sweep ticker per shard over that shard's sensing motes (still
		// in ascending id order), so every scan runs on the goroutine that
		// owns the mote's state.
		byShard := make([][]*mote.Mote, n.group.Shards())
		for _, m := range sweep {
			s := int(n.medium.NodeShard(m.ID()))
			byShard[s] = append(byShard[s], m)
		}
		for i, motes := range byShard {
			if len(motes) == 0 {
				continue
			}
			motes := motes
			simtime.NewTickerOwned(n.group.Shard(i), period, simtime.OwnerSense, func() {
				for _, m := range motes {
					m.ScanOnce()
				}
			})
		}
	} else if len(sweep) > 0 {
		simtime.NewTickerOwned(n.sched, period, simtime.OwnerSense, func() {
			for _, m := range sweep {
				m.ScanOnce()
			}
		})
	}
	if n.parallel() {
		// Topology is frozen now: resolve every neighbor list so spatial
		// lookups are pure map reads while shard goroutines execute, and
		// force any lazily-built trajectory tables (waypoint legs) so field
		// reads from shard goroutines are pure.
		n.medium.PrebuildNeighbors()
		for _, tg := range n.field.Targets() {
			tg.PositionAt(0)
		}
	}
}

// AddCrossTraffic schedules periodic background frames from src to dst
// that do not participate in any protocol ("background noise", used by the
// Section 6.2 bottleneck experiment). Bits <= 0 uses the default frame
// size.
func (n *Network) AddCrossTraffic(src, dst NodeID, period time.Duration, bits int) error {
	if period <= 0 {
		return fmt.Errorf("envirotrack: cross-traffic period must be positive")
	}
	node, ok := n.nodes[src]
	if !ok {
		return fmt.Errorf("envirotrack: unknown cross-traffic source %d", src)
	}
	if bits > 0 && bits < radio.DefaultFrameBits && (n.minCrossBits == 0 || bits < n.minCrossBits) {
		// Sub-default frames shrink the minimum packet time, and with it
		// the conservative lookahead window of a parallel run.
		n.minCrossBits = bits
	}
	// The ticker lives on the source mote's shard (its own scheduler in
	// serial runs), so in parallel mode the send runs on the goroutine
	// owning the source. Setup-time routing: the deterministic (at, seq)
	// order is unchanged.
	simtime.NewTickerOwned(node.mote.Scheduler(), period, simtime.OwnerApp, func() {
		if node.mote.Failed() {
			return
		}
		n.medium.Send(radio.Frame{
			Kind: trace.KindCross,
			Src:  src,
			Dst:  dst,
			Bits: bits,
		})
	})
	return nil
}

// Run advances the simulation by d of virtual time (synchronously, on the
// calling goroutine). It can be called repeatedly. In parallel mode
// (WithParallelShards) it drives the free-running LBTS executor and
// returns an error if any cross-shard delivery violated the conservative
// lookahead bound — a violated bound means the run is invalid.
func (n *Network) Run(d time.Duration) error {
	n.start()
	if n.parallel() {
		return n.runParallel(n.group.Now() + d)
	}
	return n.sched.RunUntil(n.sched.Now() + d)
}

// parallel reports whether the run uses the free-running parallel engine.
func (n *Network) parallel() bool {
	return n.group != nil && n.group.Parallel()
}

// laneBus returns shard i's buffered observability lane (nil when the run
// is unobserved).
func (n *Network) laneBus(i int) *obs.Bus {
	if n.lanes == nil {
		return nil
	}
	return n.lanes.Bus(i)
}

// lookaheadDelta is the parallel window width: the conservative lower
// bound on any cross-shard interaction latency — the airtime of the
// smallest frame a run can put on the air, plus propagation delay.
func (n *Network) lookaheadDelta() time.Duration {
	bits := radio.DefaultFrameBits
	if n.minCrossBits > 0 && n.minCrossBits < bits {
		bits = n.minCrossBits
	}
	return n.medium.Airtime(bits) + n.medium.Params().PropDelay
}

// runParallel drives the free-running executor to the deadline. After the
// shards stop it canonicalizes the ledger order (the event multiset is
// deterministic per configuration; the append interleaving is not) and
// hard-fails on any conservative-lookahead violation.
func (n *Network) runParallel(deadline time.Duration) error {
	// Cap the executor's idle skip at the next series-sample due time so
	// samplers keep their exact cadence: a sample taken at a barrier in
	// an event-free gap reads the same state it would have read under
	// per-delta windows. Samplers advance only inside parBarrier, on the
	// coordinator, so the closure reads race-free.
	if len(n.parSamplers) > 0 {
		n.group.SetWindowCap(func(time.Duration) (time.Duration, bool) {
			var c time.Duration
			ok := false
			for _, ps := range n.parSamplers {
				if !ok || ps.next < c {
					c, ok = ps.next, true
				}
			}
			return c, ok
		})
	}
	err := n.group.RunParallel(deadline, n.lookaheadDelta(), n.parBarrier)
	n.ledger.SortDeterministic()
	if err != nil {
		return err
	}
	if v := n.medium.LookaheadViolations(); v > 0 {
		return fmt.Errorf("envirotrack: parallel run invalid: %d cross-shard deliveries violated the conservative lookahead bound", v)
	}
	return nil
}

// parBarrier runs at every parallel window edge with all shard workers
// parked: it drains the cross-shard radio outboxes onto the receiver
// shards (failing the run on lookahead violations), merges the buffered
// observability lanes into the real bus in timestamp order, and takes the
// series samples that came due inside the window.
func (n *Network) parBarrier(w time.Duration) error {
	v := n.medium.FlushBoundary(w)
	if n.lanes != nil {
		n.lanes.Flush()
	}
	if v > 0 {
		return fmt.Errorf("envirotrack: parallel run invalid at %v: %d cross-shard deliveries violated the conservative lookahead bound", w, v)
	}
	for _, ps := range n.parSamplers {
		for ps.next <= w {
			ps.sampler.Sample(ps.next)
			ps.next += ps.every
		}
	}
	return nil
}

// Now returns the current virtual time. In parallel mode this is the
// group clock (the committed window edge); event callbacks needing their
// shard's local time use Node.Now.
func (n *Network) Now() time.Duration {
	if n.group != nil {
		return n.group.Now()
	}
	return n.sched.Now()
}

// Stats returns the run's radio accounting. In parallel mode the
// per-shard accumulators are merged into a fresh snapshot; call it after
// (or between) Run calls, not from event callbacks.
func (n *Network) Stats() *Stats {
	if n.parallel() {
		merged := &trace.Stats{}
		for _, s := range n.shardStats {
			merged.AddFrom(s)
		}
		return merged
	}
	return n.stats
}

// Ledger returns the context-label coherence ledger.
func (n *Network) Ledger() *Ledger {
	return n.ledger
}

// TargetPosition returns a target's position at the current virtual time.
func (n *Network) TargetPosition(t *Target) Point {
	return t.PositionAt(n.Now())
}

// Bounds returns the field bounds.
func (n *Network) Bounds() Rect {
	return n.cfg.bounds
}

// Shards returns the number of scheduler shards executing the run (1 for
// the serial engine).
func (n *Network) Shards() int {
	if n.group != nil {
		return n.group.Shards()
	}
	return 1
}

// ShardOf returns the shard owning a position (always 0 in serial runs).
func (n *Network) ShardOf(p Point) int {
	if n.shardOf != nil {
		return int(n.shardOf(p))
	}
	return 0
}

// ShardHorizon returns shard i's committed horizon — the timestamp of
// the last event it executed (the group clock itself in serial runs).
func (n *Network) ShardHorizon(i int) time.Duration {
	if n.group != nil {
		return n.group.Horizon(i)
	}
	return n.sched.Now()
}

// CrossShardEvents counts scheduler events placed on a different shard
// than the one executing (0 in serial runs).
func (n *Network) CrossShardEvents() uint64 {
	if n.group != nil {
		return n.group.CrossEvents()
	}
	return 0
}

// BoundaryFrames counts radio target receptions whose sender and
// receiver live in different shards (0 in serial runs).
func (n *Network) BoundaryFrames() uint64 {
	return n.medium.BoundaryFrames()
}

// LookaheadViolations counts cross-shard deliveries that landed closer
// to the sending shard's committed horizon than one packet time. Always
// zero outside the shardmut mutation build.
func (n *Network) LookaheadViolations() uint64 {
	return n.medium.LookaheadViolations()
}

// ParallelShards returns the number of free-running shard goroutines (0
// when the run uses the serial or deterministic-sharded engine).
func (n *Network) ParallelShards() int {
	if n.parallel() {
		return n.group.Shards()
	}
	return 0
}

// ShardPairStat is one ordered shard pair's boundary-traffic accounting.
type ShardPairStat struct {
	From, To int
	Frames   uint64        // boundary target receptions From -> To
	MinSlack time.Duration // tightest margin over the sender's horizon
}

// ShardPairStats lists every shard pair that exchanged boundary frames,
// in (From, To) order. Empty in serial runs.
func (n *Network) ShardPairStats() []ShardPairStat {
	k := n.Shards()
	if k <= 1 {
		return nil
	}
	var out []ShardPairStat
	for from := 0; from < k; from++ {
		for to := 0; to < k; to++ {
			mb := n.medium.ShardMailboxStat(from, to)
			if mb.Frames == 0 {
				continue
			}
			out = append(out, ShardPairStat{From: from, To: to, Frames: mb.Frames, MinSlack: mb.MinSlack})
		}
	}
	return out
}

// --- Node methods ---

// ID returns the node id.
func (nd *Node) ID() NodeID { return nd.mote.ID() }

// Pos returns the node position.
func (nd *Node) Pos() Point { return nd.mote.Pos() }

// Now returns the node's local virtual time: its shard's clock in a
// free-running parallel run, the global clock otherwise. Event callbacks
// (OnMessage, sensing hooks) must timestamp with this, not Network.Now —
// the group clock only shows the last committed window edge while shards
// free-run ahead of it.
func (nd *Node) Now() time.Duration { return nd.mote.Scheduler().Now() }

// AttachContext installs a context type on this mote.
func (nd *Node) AttachContext(spec ContextType) error {
	_, err := nd.stack.AttachContext(spec)
	if err == nil {
		nd.net.noteCtxType(spec.Name)
	}
	return err
}

// AttachStatic installs a static object under the given label on this
// mote (base stations, sinks, command posts).
func (nd *Node) AttachStatic(label Label, objects []Object) (*Ctx, error) {
	return nd.stack.AttachStatic(label, objects)
}

// OnMessage registers a handler for NodeMessages addressed to this mote
// by object code (Ctx.SendNode).
func (nd *Node) OnMessage(fn func(NodeMessage)) {
	nd.stack.OnNodeMessage(fn)
}

// Send transmits a transport datagram from this node (for base stations
// invoking methods on tracking objects).
func (nd *Node) Send(d Datagram) {
	nd.stack.Endpoint().Send(d)
}

// QueryDirectory asks the directory for all labels of a context type.
func (nd *Node) QueryDirectory(ctxType string, cb func([]DirectoryEntry)) {
	nd.stack.Directory().Query(ctxType, cb)
}

// Leading reports whether this node currently leads a label of the given
// context type.
func (nd *Node) Leading(ctxType string) bool {
	rt, ok := nd.stack.Runtime(ctxType)
	return ok && rt.Leading()
}

// CurrentLabel returns the label this node participates in for a context
// type (empty when none).
func (nd *Node) CurrentLabel(ctxType string) Label {
	rt, ok := nd.stack.Runtime(ctxType)
	if !ok {
		return ""
	}
	return rt.Label()
}

// Fail kills the mote (fault injection); Restore revives it.
func (nd *Node) Fail() { nd.mote.Fail() }

// Restore revives a failed mote.
func (nd *Node) Restore() { nd.mote.Restore() }

// Failed reports whether the mote is failed.
func (nd *Node) Failed() bool { return nd.mote.Failed() }
