package envirotrack_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 6), plus micro-benchmarks of the substrates and
// ablation benchmarks of the design choices called out in DESIGN.md.
//
// The experiment benchmarks report the headline numbers of each table or
// figure as custom metrics, so a `go test -bench=.` run regenerates the
// paper's results alongside the timing:
//
//	BenchmarkFigure3   ... mean_err_hops  max_err_hops
//	BenchmarkFigure4   ... h0_50kmh_pct   h1_50kmh_pct ...
//	BenchmarkTable1    ... hb_loss_50_pct msg_loss_50_pct util_50_pct
//	BenchmarkFigure5   ... peak_speed_r1  collapsed_speed_r2 ...
//	BenchmarkFigure6   ... speed_ratio3_r2 breakdown_ratio075 ...

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"envirotrack"
	"envirotrack/internal/eval"
	"envirotrack/internal/geom"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
)

// benchTrackerSource is the Figure 2 program used by the preprocessor
// benchmarks.
const benchTrackerSource = `
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(1s)
        report_function() {
            send(pursuer, self:label, location);
        }
    end
end context
`

// benchTrackerContext is the Figure 2 context in API form.
func benchTrackerContext(pursuer envirotrack.NodeID) envirotrack.ContextType {
	return envirotrack.ContextType{
		Name: "tracker",
		Activation: func(rd envirotrack.Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Vars: []envirotrack.AggVar{{
			Name:         "location",
			Func:         envirotrack.Centroid,
			Input:        envirotrack.PositionInput,
			Freshness:    time.Second,
			CriticalMass: 2,
		}},
		Objects: []envirotrack.Object{{
			Name: "reporter",
			Methods: []envirotrack.Method{{
				Name:   "report_function",
				Period: time.Second,
				Body: func(ctx *envirotrack.Ctx, _ envirotrack.Trigger) {
					if loc, ok := ctx.ReadPosition("location"); ok {
						ctx.SendNode(pursuer, loc)
					}
				},
			}},
		}},
		Group: envirotrack.GroupConfig{
			HeartbeatPeriod: 250 * time.Millisecond,
			HopsPast:        1,
		},
	}
}

func BenchmarkFigure3(b *testing.B) {
	var mean, max float64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure3(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		mean, max = res.MeanError, res.MaxError
	}
	b.ReportMetric(mean, "mean_err_hops")
	b.ReportMetric(max, "max_err_hops")
}

func BenchmarkFigure4(b *testing.B) {
	var rows []eval.Figure4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.RunFigure4(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := "h0"
		if r.HopsPast == 1 {
			name = "h1"
		}
		b.ReportMetric(r.SuccessPct, name+"_"+kmhName(r.SpeedKmh)+"_pct")
	}
}

func BenchmarkTable1(b *testing.B) {
	var rows []eval.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.RunTable1(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		suffix := kmhName(r.SpeedKmh)
		b.ReportMetric(r.HBLossPct, "hb_loss_"+suffix+"_pct")
		b.ReportMetric(r.MsgLossPct, "msg_loss_"+suffix+"_pct")
		b.ReportMetric(r.LinkUtilPct, "util_"+suffix+"_pct")
	}
}

func kmhName(kmh float64) string {
	if kmh == 33 {
		return "33kmh"
	}
	return "50kmh"
}

func BenchmarkFigure5(b *testing.B) {
	// Reduced sweep for benchmarking; `etsim -exp fig5` runs the full one.
	cfg := eval.Figure5Config{
		Heartbeats: []float64{0.0625, 0.5, 2},
		Radii:      []float64{1, 2},
		Seeds:      []int64{1},
	}
	var points []eval.Figure5Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = eval.RunFigure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Mode != "worst-case" {
			continue
		}
		switch {
		case p.HeartbeatSec == 0.5 && p.SensingRadius == 1:
			b.ReportMetric(p.MaxSpeedHops, "speed_hb0.5_r1")
		case p.HeartbeatSec == 2 && p.SensingRadius == 1:
			b.ReportMetric(p.MaxSpeedHops, "speed_hb2_r1")
		case p.HeartbeatSec == 0.0625 && p.SensingRadius == 2:
			b.ReportMetric(p.MaxSpeedHops, "collapsed_hb0.06_r2")
		case p.HeartbeatSec == 0.5 && p.SensingRadius == 2:
			b.ReportMetric(p.MaxSpeedHops, "speed_hb0.5_r2")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	cfg := eval.Figure6Config{
		Ratios: []float64{0.75, 1.5, 3},
		Radii:  []float64{1, 2},
		Seeds:  []int64{1},
	}
	var points []eval.Figure6Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = eval.RunFigure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		switch {
		case p.Ratio == 0.75 && p.SensingRadius == 2:
			b.ReportMetric(p.MaxSpeedHops, "breakdown_ratio0.75_r2")
		case p.Ratio == 3 && p.SensingRadius == 2:
			b.ReportMetric(p.MaxSpeedHops, "speed_ratio3_r2")
		case p.Ratio == 3 && p.SensingRadius == 1:
			b.ReportMetric(p.MaxSpeedHops, "speed_ratio3_r1")
		}
	}
}

// --- ablation benchmarks (design choices from DESIGN.md) ---

// BenchmarkAblationFloodSuppression measures heartbeat transmissions per
// simulated second with and without counter-based broadcast-storm
// suppression: the broadcast storm multiplies channel load.
func BenchmarkAblationFloodSuppression(b *testing.B) {
	run := func(off bool) float64 {
		sc := eval.Scenario{Seed: 1, HopsPast: 1, FloodSuppressOff: off}
		res, err := eval.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		return res.LinkUtil * 100
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(with, "util_suppressed_pct")
	b.ReportMetric(without, "util_storm_pct")
}

// BenchmarkAblationCSMA measures heartbeat loss with and without carrier
// sensing at the MAC.
func BenchmarkAblationCSMA(b *testing.B) {
	run := func(noCSMA bool) float64 {
		sc := eval.Scenario{Seed: 1, HopsPast: 1, DisableCSMA: noCSMA}
		res, err := eval.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		return res.HBLoss * 100
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(with, "hb_loss_csma_pct")
	b.ReportMetric(without, "hb_loss_nocsma_pct")
}

// BenchmarkAblationRelinquish measures handover counts with and without
// the explicit leadership-relinquish optimization at a fixed speed.
func BenchmarkAblationRelinquish(b *testing.B) {
	run := func(disable bool) float64 {
		sc := eval.Scenario{Seed: 1, SpeedHops: 1, HopsPast: 1, DisableRelinquish: disable}
		res, err := eval.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		return res.Handover.StrictSuccessRate() * 100
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(with, "handover_relinquish_pct")
	b.ReportMetric(without, "handover_takeover_pct")
}

// --- micro-benchmarks of the substrates ---

// BenchmarkSimulationThroughput measures simulated tracking on the Figure
// 3 scenario. Besides ns/op it reports the throughput metrics the ROADMAP
// tracks: sim_s_per_wall_s (simulated target-path seconds delivered per
// wall-clock second) and runs/s.
func BenchmarkSimulationThroughput(b *testing.B) {
	var simSeconds float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := eval.Run(eval.Scenario{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		simSeconds += res.Duration.Seconds()
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(simSeconds/wall, "sim_s_per_wall_s")
		b.ReportMetric(float64(b.N)/wall, "runs/s")
	}
}

// benchLargeField deploys a cols x rows unit grid with several concurrent
// targets crossing it on slanted lines, then advances the prebuilt network
// by simStep of virtual time per iteration. Construction and a one-second
// settling run (group formation, pool warm-up) happen outside the timer,
// so ns/op and allocs/op measure steady-state tracking only.
func benchLargeField(b *testing.B, cols, rows, targets int, simStep time.Duration, shards int, parallel bool, backend string) {
	b.Helper()
	opts := []envirotrack.Option{
		envirotrack.WithGrid(cols, rows),
		envirotrack.WithCommRadius(2.5),
		envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
		envirotrack.WithSeed(1),
	}
	if backend != "" {
		opts = append(opts, envirotrack.WithBackend(backend))
	}
	if parallel {
		opts = append(opts, envirotrack.WithParallelShards(shards))
	} else if shards > 1 {
		opts = append(opts, envirotrack.WithShards(shards))
	}
	n, err := envirotrack.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := n.AttachContextAll(benchTrackerContext(envirotrack.NodeID(cols*rows - 1))); err != nil {
		b.Fatal(err)
	}
	for j := 0; j < targets; j++ {
		slant := 0.2
		if j%2 == 1 {
			slant = -slant
		}
		n.AddTarget(&envirotrack.Target{
			Name: "t" + string(rune('0'+j)), Kind: "vehicle",
			Traj: envirotrack.Line{
				Start: envirotrack.Pt(0, float64(rows-1)*float64(j+1)/float64(targets+1)),
				Dir:   envirotrack.Vec(1, slant),
				Speed: 2,
			},
			SignatureRadius: 1.6,
		})
	}
	if err := n.Run(time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := n.Run(simStep); err != nil {
			b.Fatal(err)
		}
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simStep.Seconds()*float64(b.N)/wall, "sim_s_per_wall_s")
	}
}

// BenchmarkLargeField is the scale tier: 10k motes with four concurrent
// targets, reporting sim_s_per_wall_s and allocs/op on the prebuilt
// network. The smoke variant (900 motes, two targets) is small enough to
// run under -race in CI.
func BenchmarkLargeField(b *testing.B) {
	b.Run("10k", func(b *testing.B) {
		benchLargeField(b, 100, 100, 4, 2*time.Second, 1, false, "")
	})
	// Sharded variants of the same field: identical results and traces
	// (the differential battery pins that), with the event population
	// split across per-shard heaps merged deterministically.
	b.Run("10k-shards2", func(b *testing.B) {
		benchLargeField(b, 100, 100, 4, 2*time.Second, 2, false, "")
	})
	b.Run("10k-shards4", func(b *testing.B) {
		benchLargeField(b, 100, 100, 4, 2*time.Second, 4, false, "")
	})
	// Free-running variants: shard goroutines execute concurrently under
	// the conservative lookahead barrier. Results are statistically
	// equivalent to serial (the equivalence battery pins that), not
	// byte-identical; sim_s_per_wall_s is the headline scaling metric.
	b.Run("10k-par2", func(b *testing.B) {
		benchLargeField(b, 100, 100, 4, 2*time.Second, 2, true, "")
	})
	b.Run("10k-par4", func(b *testing.B) {
		benchLargeField(b, 100, 100, 4, 2*time.Second, 4, true, "")
	})
	// The same field tracked by the passive-traces backend: no leader
	// election, no heartbeats — gossip fan-out and estimator cost replace
	// heartbeat flooding as the protocol's radio/CPU profile.
	b.Run("10k-passive", func(b *testing.B) {
		benchLargeField(b, 100, 100, 4, 2*time.Second, 1, false, envirotrack.BackendPassive)
	})
	b.Run("smoke", func(b *testing.B) {
		benchLargeField(b, 30, 30, 2, time.Second, 1, false, "")
	})
}

// BenchmarkTracingOverhead measures the cost of the observability layer
// on the Figure 3 scenario (the same workload as
// BenchmarkSimulationThroughput, whose BENCH_1 numbers predate the event
// bus): "disabled" is a run with no sink attached — every emission site
// reduces to one nil check, so its ns/op must stay within 2% of the
// pre-observability baseline — "jsonl" streams every protocol event
// through the JSONL exporter, and "metrics" derives histograms and
// counters from the stream.
func BenchmarkTracingOverhead(b *testing.B) {
	run := func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := eval.Run(eval.Scenario{Seed: int64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
		if wall := time.Since(start).Seconds(); wall > 0 {
			b.ReportMetric(float64(b.N)/wall, "runs/s")
		}
	}
	b.Run("disabled", run)
	b.Run("jsonl", func(b *testing.B) {
		sink := envirotrack.NewJSONLSink(io.Discard)
		eval.SetEventSink(sink)
		defer eval.SetEventSink(nil)
		run(b)
	})
	b.Run("metrics", func(b *testing.B) {
		eval.SetMetricsRegistry(envirotrack.NewMetricsRegistry())
		defer eval.SetMetricsRegistry(nil)
		run(b)
	})
	b.Run("spans", func(b *testing.B) {
		eval.SetEventSink(envirotrack.NewSpanSink())
		defer eval.SetEventSink(nil)
		run(b)
	})
}

// BenchmarkSweepSerialVsParallel times the same Figure 4 sweep through the
// serial path (parallelism 1) and the worker pool (one worker per CPU) and
// reports the wall-clock speedup. The rows are identical either way (see
// TestParallelSweepsMatchSerial); only the elapsed time differs, and only
// when more than one CPU is available.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	defer eval.SetParallelism(0)
	const trials = 2
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		eval.SetParallelism(1)
		t0 := time.Now()
		if _, err := eval.RunFigure4(trials); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(t0)

		eval.SetParallelism(0)
		t0 = time.Now()
		if _, err := eval.RunFigure4(trials); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(t0)
	}
	if parallel > 0 {
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup_x")
		b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel_sweep_s")
		b.ReportMetric(serial.Seconds()/float64(b.N), "serial_sweep_s")
	}
}

// BenchmarkNeighborsLargeField compares the spatial-hash NodesNear against
// the brute-force full-field scan it replaced, on a 60x60 (3600-mote)
// field, reporting ns/lookup for each and the speedup.
func BenchmarkNeighborsLargeField(b *testing.B) {
	const cols, rows = 60, 60
	const radius = 2.5
	m := radio.New(simtime.NewScheduler(), radio.Params{CommRadius: radius},
		rand.New(rand.NewSource(1)), nil)
	pts := geom.Grid{Cols: cols, Rows: rows}.Points()
	for i, p := range pts {
		if err := m.AddNode(radio.NodeID(i), p, nil); err != nil {
			b.Fatal(err)
		}
	}
	brute := func(p geom.Point, r float64) []radio.NodeID {
		var out []radio.NodeID
		for i := range pts {
			if pts[i].Within(p, r) {
				out = append(out, radio.NodeID(i))
			}
		}
		return out
	}
	query := func(i int) geom.Point { return pts[(i*7919)%len(pts)] }

	var sink []radio.NodeID
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		sink = m.NodesNear(query(i), radius)
	}
	spatial := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < b.N; i++ {
		sink = brute(query(i), radius)
	}
	bruteTime := time.Since(t0)
	_ = sink

	b.ReportMetric(float64(spatial.Nanoseconds())/float64(b.N), "ns/lookup")
	b.ReportMetric(float64(bruteTime.Nanoseconds())/float64(b.N), "brute_ns/lookup")
	if spatial > 0 {
		b.ReportMetric(float64(bruteTime)/float64(spatial), "speedup_x")
	}
}

// BenchmarkEndToEndTrackingSetup measures network construction for a
// 20x20 field (radio registration, stacks, managers).
func BenchmarkEndToEndTrackingSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := envirotrack.New(
			envirotrack.WithGrid(20, 20),
			envirotrack.WithCommRadius(2.5),
			envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
		)
		if err != nil {
			b.Fatal(err)
		}
		spec := benchTrackerContext(999)
		if err := net.AttachContextAll(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileProgram measures the preprocessor (parse + semantic
// analysis) on the Figure 2 program.
func BenchmarkCompileProgram(b *testing.B) {
	env := envirotrack.CompileEnv{Destinations: map[string]envirotrack.NodeID{"pursuer": 1}}
	for i := 0; i < b.N; i++ {
		if _, err := envirotrack.CompileContexts(benchTrackerSource, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateGo measures the code-emitting path of the preprocessor.
func BenchmarkGenerateGo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := envirotrack.GenerateGo(benchTrackerSource, "gen"); err != nil {
			b.Fatal(err)
		}
	}
}

// calibrationSink defeats dead-code elimination of the calibration loop.
var calibrationSink uint64

// BenchmarkMachineCalibration measures the host, not the simulator: a
// fixed pure-arithmetic workload (xorshift64, no memory traffic) that
// MUST NEVER CHANGE. benchcmp compares this benchmark between two
// BENCH_N.json snapshots to estimate how much faster or slower the
// machine itself was, and normalizes the throughput comparison by that
// ratio — so CPU steal on a shared host between two `make bench` runs
// does not read as a simulator regression (or mask a real one behind a
// faster host).
func BenchmarkMachineCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(2463534242)
		for j := 0; j < 20_000_000; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibrationSink = x
	}
}

// BenchmarkSessionStreaming measures the goroutine-driven session API.
func BenchmarkSessionStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := mustNet(b)
		s := n.RunSession(10 * time.Second)
		for range s.Events() {
		}
		if err := s.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func mustNet(b *testing.B) *envirotrack.Network {
	b.Helper()
	n, err := envirotrack.New(
		envirotrack.WithGrid(8, 3),
		envirotrack.WithCommRadius(2.5),
		envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
	)
	if err != nil {
		b.Fatal(err)
	}
	spec := benchTrackerContext(999)
	if err := n.AttachContextAll(spec); err != nil {
		b.Fatal(err)
	}
	n.AddTarget(&envirotrack.Target{
		Name: "t", Kind: "vehicle",
		Traj: envirotrack.Stationary{At: envirotrack.Pt(3.5, 1)}, SignatureRadius: 1.6,
	})
	return n
}
