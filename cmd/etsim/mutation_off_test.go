//go:build !chaosmut

package main

// protocolMutated lets nominal-protocol assertions skip under the
// -tags chaosmut mutation build.
const protocolMutated = false
