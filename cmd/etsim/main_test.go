package main

import "testing"

func TestRunFig3(t *testing.T) {
	if err := run("fig3", 1, 1, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 1, 1, 1, true); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
