package main

import (
	"testing"

	"envirotrack/internal/eval"
)

func TestRunFig3(t *testing.T) {
	if err := run("fig3", 1, 1, 1, true); err != nil {
		t.Fatal(err)
	}
}

// TestRunFig4Parallel drives an experiment the way `-parallel 2` would.
func TestRunFig4Parallel(t *testing.T) {
	eval.SetParallelism(2)
	defer eval.SetParallelism(0)
	if err := run("fig4", 1, 1, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 1, 1, 1, true); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
