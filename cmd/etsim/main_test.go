package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"envirotrack/internal/eval"
)

func TestRunFig3(t *testing.T) {
	var out bytes.Buffer
	if err := run(config{exp: "fig3", seed: 1, quick: true, stdout: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3") {
		t.Error("text output missing Figure 3 header")
	}
}

// TestRunFig4Parallel drives an experiment the way `-parallel 2` would.
func TestRunFig4Parallel(t *testing.T) {
	if err := eval.SetParallelism(2); err != nil {
		t.Fatal(err)
	}
	defer eval.SetParallelism(0)
	if err := run(config{exp: "fig4", trials: 1, quick: true, stdout: new(bytes.Buffer)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(config{exp: "fig99", stdout: new(bytes.Buffer)}); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	if err := run(config{exp: "fig3", format: "yaml", stdout: new(bytes.Buffer)}); err == nil {
		t.Error("expected error for unknown format")
	}
}

// TestRunJSONFormat checks every experiment renders machine-readable
// output: one top-level object keyed by experiment name.
func TestRunJSONFormat(t *testing.T) {
	var out bytes.Buffer
	cfg := config{
		exp: "fig3", trials: 1, runs: 1, seed: 1, quick: true,
		format: "json", stdout: &out,
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	var fig3 struct {
		MeanError float64 `json:"mean_error"`
		Points    []struct {
			T float64 `json:"t_s"`
		} `json:"points"`
	}
	if err := json.Unmarshal(doc["fig3"], &fig3); err != nil {
		t.Fatalf("fig3 payload: %v", err)
	}
	if len(fig3.Points) == 0 {
		t.Error("fig3 JSON has no trajectory points")
	}

	out.Reset()
	cfg.exp = "fig4"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	var doc4 struct {
		Fig4 []struct {
			SpeedKmh   float64 `json:"speed_kmh"`
			SuccessPct float64 `json:"success_pct"`
		} `json:"fig4"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc4); err != nil {
		t.Fatalf("fig4 output: %v\n%s", err, out.String())
	}
	if len(doc4.Fig4) != 4 {
		t.Errorf("fig4 JSON has %d rows, want 4", len(doc4.Fig4))
	}
}

// TestRunObservabilityOutputs drives -trace-out, -metrics-out and
// -series-out together and validates each artifact parses.
func TestRunObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		exp: "fig3", seed: 1, quick: true,
		traceOut:   filepath.Join(dir, "trace.jsonl"),
		metricsOut: filepath.Join(dir, "metrics.prom"),
		seriesOut:  filepath.Join(dir, "series.json"),
		stdout:     new(bytes.Buffer),
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	trace, err := os.Open(cfg.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer trace.Close()
	lines := 0
	sc := bufio.NewScanner(trace)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", lines+1, err)
		}
		if _, ok := ev["ev"]; !ok {
			t.Fatalf("trace line %d has no event type: %s", lines+1, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("trace file is empty")
	}

	prom, err := os.ReadFile(cfg.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE envirotrack_events_total counter", "eval_runs_total 1"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics file missing %q:\n%s", want, prom)
		}
	}

	seriesData, err := os.ReadFile(cfg.seriesOut)
	if err != nil {
		t.Fatal(err)
	}
	var series []struct {
		Seed   int64 `json:"seed"`
		Series struct {
			T    []float64            `json:"t"`
			Cols map[string][]float64 `json:"cols"`
		} `json:"series"`
	}
	if err := json.Unmarshal(seriesData, &series); err != nil {
		t.Fatalf("series file is not JSON: %v", err)
	}
	if len(series) != 1 {
		t.Fatalf("series file has %d runs, want 1", len(series))
	}
	if len(series[0].Series.T) < 2 {
		t.Error("series has fewer than 2 samples")
	}
	if _, ok := series[0].Series.Cols["live_labels"]; !ok {
		t.Error("series missing live_labels column")
	}
}

// TestRunChaosExperiment drives -exp chaos with -check-invariants: the
// nominal protocol must hold every invariant, so the run succeeds and
// reports a fully-checked suite.
func TestRunChaosExperiment(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): violations are the expected outcome")
	}
	var out bytes.Buffer
	cfg := config{exp: "chaos", trials: 1, checkInv: true, stdout: &out}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Chaos suite") {
		t.Error("text output missing chaos suite header")
	}
	if !strings.Contains(text, "all protocol invariants held") {
		t.Errorf("nominal chaos suite did not report clean invariants:\n%s", text)
	}

	out.Reset()
	cfg.format = "json"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Chaos []struct {
			Case          string `json:"case"`
			CheckedEvents uint64 `json:"checked_events"`
		} `json:"chaos"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chaos JSON: %v\n%s", err, out.String())
	}
	if len(doc.Chaos) != 9 {
		t.Errorf("chaos JSON has %d cells, want 9", len(doc.Chaos))
	}
	for _, c := range doc.Chaos {
		if c.CheckedEvents == 0 {
			t.Errorf("case %q: checker saw no events", c.Case)
		}
	}
}

// TestRunFig3WithChaosSchedule applies a -chaos schedule to the Figure 3
// run under -check-invariants; the faults degrade tracking but must not
// break protocol safety.
func TestRunFig3WithChaosSchedule(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): violations are the expected outcome")
	}
	var out bytes.Buffer
	cfg := config{
		exp: "fig3", seed: 1,
		chaosSpec: "crash:node=5,at=300s,for=60s;loss:at=100s,for=60s,p=0.4",
		checkInv:  true,
		stdout:    &out,
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3") {
		t.Error("text output missing Figure 3 header")
	}
}

func TestRunRejectsMalformedChaosSpec(t *testing.T) {
	cfg := config{exp: "fig3", chaosSpec: "explode:at=1s", stdout: new(bytes.Buffer)}
	if err := run(cfg); err == nil {
		t.Error("expected error for malformed chaos spec")
	}
}
