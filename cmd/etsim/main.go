// Command etsim regenerates the paper's evaluation tables and figures on
// the simulated sensor network.
//
// Usage:
//
//	etsim -exp fig3            # tracked tank trajectory (Figure 3)
//	etsim -exp fig4 -trials 5  # handover success (Figure 4)
//	etsim -exp table1 -runs 3  # communication performance (Table 1)
//	etsim -exp fig5            # max trackable speed vs heartbeat (Figure 5)
//	etsim -exp fig6            # max trackable speed vs CR:SR (Figure 6)
//	etsim -exp all             # everything
//	etsim -exp all -parallel 8 # same results, sweeps fanned over 8 workers
package main

import (
	"flag"
	"fmt"
	"os"

	"envirotrack/internal/eval"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig3, fig4, table1, fig5, fig6, all")
		trials   = flag.Int("trials", 3, "trials per Figure 4 cell")
		runs     = flag.Int("runs", 3, "runs per Table 1 row")
		seed     = flag.Int64("seed", 1, "seed for Figure 3")
		quick    = flag.Bool("quick", false, "reduced sweeps for Figures 5 and 6")
		parallel = flag.Int("parallel", 0, "max concurrent simulation runs per sweep (0 = one per CPU, 1 = serial); results are identical at any setting")
	)
	flag.Parse()
	eval.SetParallelism(*parallel)
	if err := run(*exp, *trials, *runs, *seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "etsim:", err)
		os.Exit(1)
	}
}

func run(exp string, trials, runs int, seed int64, quick bool) error {
	all := exp == "all"
	ran := false

	if all || exp == "fig3" {
		ran = true
		res, err := eval.RunFigure3(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if all || exp == "fig4" {
		ran = true
		rows, err := eval.RunFigure4(trials)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderFigure4(rows))
	}
	if all || exp == "table1" {
		ran = true
		rows, err := eval.RunTable1(runs)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderTable1(rows))
	}
	if all || exp == "fig5" {
		ran = true
		cfg := eval.Figure5Config{IncludeRelinquish: true}
		if quick {
			cfg.Heartbeats = []float64{0.0625, 0.5, 2}
			cfg.Seeds = []int64{1}
		}
		points, err := eval.RunFigure5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderFigure5(points))
	}
	if all || exp == "fig6" {
		ran = true
		cfg := eval.Figure6Config{}
		if quick {
			cfg.Ratios = []float64{0.75, 1.5, 3}
			cfg.Radii = []float64{1, 2}
			cfg.Seeds = []int64{1}
		}
		points, err := eval.RunFigure6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderFigure6(points))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig3, fig4, table1, fig5, fig6, all)", exp)
	}
	return nil
}
