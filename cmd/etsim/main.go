// Command etsim regenerates the paper's evaluation tables and figures on
// the simulated sensor network.
//
// Usage:
//
//	etsim -exp fig3            # tracked tank trajectory (Figure 3)
//	etsim -exp fig4 -trials 5  # handover success (Figure 4)
//	etsim -exp table1 -runs 3  # communication performance (Table 1)
//	etsim -exp fig5            # max trackable speed vs heartbeat (Figure 5)
//	etsim -exp fig6            # max trackable speed vs CR:SR (Figure 6)
//	etsim -exp all             # everything
//	etsim -exp all -parallel 8 # same results, sweeps fanned over 8 workers
//
// Tracking backends (default is the paper's leader protocol):
//
//	etsim -exp fig3 -backend passive   # passive-traces backend, no leaders
//	etsim -exp compare -trials 2       # leader vs passive side by side,
//	                                   # each checked against its own invariants
//
// Engines (serial is the byte-identical reference):
//
//	etsim -exp fig4 -shards 4           # sharded engine, results identical to serial
//	etsim -exp fig4 -parallel-shards 4  # free-running shard goroutines: statistically
//	                                    # equivalent, deterministic per (seed, shards);
//	                                    # exits nonzero if any run violates lookahead
//
// Fault injection:
//
//	etsim -exp chaos                          # fault-matrix suite, invariant-checked
//	etsim -exp chaos -check-invariants        # same, nonzero exit on any violation
//	etsim -exp fig3 -chaos "crash:node=5,at=300s,for=60s" -check-invariants
//
// Observability:
//
//	etsim -exp fig4 -format json            # machine-readable results
//	etsim -exp fig4 -progress               # live sweep progress on stderr
//	etsim -exp fig4 -trace-out trace.jsonl  # structured protocol events
//	etsim -exp fig4 -metrics-out m.prom     # Prometheus text metrics
//	etsim -exp fig3 -series-out s.json      # per-run health time series
//	etsim -exp all -pprof localhost:6060    # live pprof + expvar server
//
// Profiling (see also `make profile`):
//
//	etsim -exp table1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	etsim -exp table1 -selfprofile          # per-subsystem scheduler attribution
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"envirotrack"
	"envirotrack/internal/eval"
)

// config carries the parsed flag set so tests can drive run directly.
type config struct {
	exp         string
	trials      int
	runs        int
	seed        int64
	quick       bool
	format      string
	traceOut    string
	seriesOut   string
	metricsOut  string
	seriesEvery time.Duration
	progress    bool
	chaosSpec   string
	checkInv    bool
	backend     string
	selfProfile bool
	shards      int
	parShards   int
	stdout      io.Writer
	stderr      io.Writer
}

func main() {
	var cfg config
	flag.StringVar(&cfg.exp, "exp", "all", "experiment: fig3, fig4, table1, fig5, fig6, chaos, compare, all")
	flag.IntVar(&cfg.trials, "trials", 3, "trials per Figure 4 cell")
	flag.IntVar(&cfg.runs, "runs", 3, "runs per Table 1 row")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for Figure 3")
	flag.BoolVar(&cfg.quick, "quick", false, "reduced sweeps for Figures 5 and 6")
	flag.StringVar(&cfg.format, "format", "text", "output format: text or json")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write structured protocol events (JSONL) to this file")
	flag.StringVar(&cfg.seriesOut, "series-out", "", "write per-run health time series (JSON) to this file")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write Prometheus text-format metrics to this file")
	flag.DurationVar(&cfg.seriesEvery, "series-every", 5*time.Second, "sim-time cadence of -series-out samples")
	flag.BoolVar(&cfg.progress, "progress", false, "report live sweep progress (done/total, rate, ETA) on stderr")
	flag.StringVar(&cfg.chaosSpec, "chaos", "", "fault schedule for the Figure 3 run, e.g. \"crash:node=5,at=300s,for=60s;loss:at=100s,for=60s,p=0.5\"")
	flag.BoolVar(&cfg.checkInv, "check-invariants", false, "attach the protocol invariant checker; exit nonzero on any proven violation")
	flag.StringVar(&cfg.backend, "backend", "", "tracking backend for every run: leader (default) or passive; -exp compare always runs both")
	flag.BoolVar(&cfg.selfProfile, "selfprofile", false, "profile the scheduler: per-subsystem event counts and wall time, printed after the run (and exported with -metrics-out)")
	flag.IntVar(&cfg.shards, "shards", 1, "scheduler shards per run: split each run's event engine into N spatial regions merged deterministically; results and traces are identical at any setting")
	flag.IntVar(&cfg.parShards, "parallel-shards", 0, "free-running parallel shard goroutines per run (0 = off): shards execute concurrently under a conservative lookahead barrier; results are statistically equivalent to serial (not byte-identical) and deterministic per (seed, shard count); takes precedence over -shards")
	parallel := flag.Int("parallel", 0, "max concurrent simulation runs per sweep (0 = one per CPU, 1 = serial); results are identical at any setting")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	flag.Parse()

	if err := eval.SetParallelism(*parallel); err != nil {
		fmt.Fprintln(os.Stderr, "etsim:", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "etsim: pprof server:", err)
			}
		}()
	}
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "etsim:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "etsim: cpu profile:", err)
			os.Exit(2)
		}
		cpuFile = f
	}
	runErr := run(cfg)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "etsim: cpu profile:", err)
			os.Exit(2)
		}
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "etsim:", err)
			os.Exit(2)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "etsim:", runErr)
		os.Exit(1)
	}
}

// writeHeapProfile snapshots the post-run heap, after a GC so the profile
// reflects live retention rather than transient garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("heap profile: %w", err)
	}
	return f.Close()
}

func run(cfg config) error {
	if cfg.stdout == nil {
		cfg.stdout = os.Stdout
	}
	if cfg.stderr == nil {
		cfg.stderr = os.Stderr
	}
	jsonOut := false
	switch cfg.format {
	case "", "text":
	case "json":
		jsonOut = true
	default:
		return fmt.Errorf("unknown format %q (want text or json)", cfg.format)
	}

	// Attach the requested observability to every eval.Run, and always put
	// the package-level configuration back so tests (and any embedding
	// process) do not leak sinks across calls.
	defer func() {
		eval.SetEventSink(nil)
		eval.SetMetricsRegistry(nil)
		eval.SetSeriesCadence(0)
		eval.DrainSeries()
		eval.SetProgressWriter(nil)
		eval.SetSelfProfile(nil)
		eval.SetShardHealth(nil)
		eval.SetParallelShards(0)
		eval.SetBackend("")
	}()
	if cfg.backend != "" {
		known := false
		for _, be := range envirotrack.TrackingBackends() {
			if be == cfg.backend {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown tracking backend %q (known: %s)",
				cfg.backend, strings.Join(envirotrack.TrackingBackends(), ", "))
		}
		eval.SetBackend(cfg.backend)
	}
	if cfg.progress {
		eval.SetProgressWriter(cfg.stderr)
	}
	var (
		traceFile *os.File
		traceSink *envirotrack.JSONLSink
	)
	if cfg.traceOut != "" {
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return err
		}
		traceFile, traceSink = f, envirotrack.NewJSONLSink(f)
		eval.SetEventSink(traceSink)
		defer traceFile.Close()
	}
	var reg *envirotrack.MetricsRegistry
	if cfg.metricsOut != "" {
		reg = envirotrack.NewMetricsRegistry()
		reg.Expvar("envirotrack")
		eval.SetMetricsRegistry(reg)
	}
	if cfg.seriesOut != "" {
		every := cfg.seriesEvery
		if every <= 0 {
			every = 5 * time.Second
		}
		eval.SetSeriesCadence(every)
	}
	var prof *envirotrack.SelfProfile
	if cfg.selfProfile {
		prof = envirotrack.NewSelfProfile()
		eval.SetSelfProfile(prof)
	}
	eval.SetShards(cfg.shards)
	eval.SetParallelShards(cfg.parShards)
	var shardHealth *envirotrack.ShardHealth
	if cfg.shards > 1 || cfg.parShards > 1 {
		shardHealth = envirotrack.NewShardHealth()
		eval.SetShardHealth(shardHealth)
	}

	chaosSched, err := envirotrack.ParseChaosSchedule(cfg.chaosSpec)
	if err != nil {
		return err
	}

	all := cfg.exp == "all"
	ran := false
	violations := 0
	results := map[string]any{}

	if all || cfg.exp == "fig3" {
		ran = true
		res, err := eval.RunFigure3Under(cfg.seed, chaosSched, cfg.checkInv)
		if err != nil {
			return err
		}
		violations += len(res.Run.Violations)
		if jsonOut {
			results["fig3"] = fig3View(res)
		} else {
			fmt.Fprintln(cfg.stdout, res.Render())
			for _, v := range res.Run.Violations {
				fmt.Fprintf(cfg.stdout, "invariant violation [%s] at %v: %s\n", v.Invariant, v.At, v.Detail)
			}
		}
	}
	if all || cfg.exp == "fig4" {
		ran = true
		rows, err := eval.RunFigure4(cfg.trials)
		if err != nil {
			return err
		}
		if jsonOut {
			results["fig4"] = fig4View(rows)
		} else {
			fmt.Fprintln(cfg.stdout, eval.RenderFigure4(rows))
		}
	}
	if all || cfg.exp == "table1" {
		ran = true
		rows, err := eval.RunTable1(cfg.runs)
		if err != nil {
			return err
		}
		if jsonOut {
			results["table1"] = table1View(rows)
		} else {
			fmt.Fprintln(cfg.stdout, eval.RenderTable1(rows))
		}
	}
	if all || cfg.exp == "fig5" {
		ran = true
		f5 := eval.Figure5Config{IncludeRelinquish: true}
		if cfg.quick {
			f5.Heartbeats = []float64{0.0625, 0.5, 2}
			f5.Seeds = []int64{1}
		}
		points, err := eval.RunFigure5(f5)
		if err != nil {
			return err
		}
		if jsonOut {
			results["fig5"] = fig5View(points)
		} else {
			fmt.Fprintln(cfg.stdout, eval.RenderFigure5(points))
		}
	}
	if all || cfg.exp == "fig6" {
		ran = true
		f6 := eval.Figure6Config{}
		if cfg.quick {
			f6.Ratios = []float64{0.75, 1.5, 3}
			f6.Radii = []float64{1, 2}
			f6.Seeds = []int64{1}
		}
		points, err := eval.RunFigure6(f6)
		if err != nil {
			return err
		}
		if jsonOut {
			results["fig6"] = fig6View(points)
		} else {
			fmt.Fprintln(cfg.stdout, eval.RenderFigure6(points))
		}
	}
	if all || cfg.exp == "chaos" {
		ran = true
		points, err := eval.RunChaosSuite(cfg.trials)
		if err != nil {
			return err
		}
		violations += eval.TotalViolations(points)
		if jsonOut {
			results["chaos"] = chaosView(points)
		} else {
			fmt.Fprintln(cfg.stdout, eval.RenderChaos(points))
		}
	}
	if cfg.exp == "compare" {
		ran = true
		points, err := eval.RunComparative(cfg.trials)
		if err != nil {
			return err
		}
		summary := eval.SummarizeComparison(points)
		for _, s := range summary {
			violations += s.Violations
		}
		if jsonOut {
			results["compare"] = compareView(points, summary)
		} else {
			fmt.Fprintln(cfg.stdout, eval.RenderComparative(points))
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig3, fig4, table1, fig5, fig6, chaos, compare, all)", cfg.exp)
	}

	if jsonOut {
		enc := json.NewEncoder(cfg.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			return fmt.Errorf("flush %s: %w", cfg.traceOut, err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("close %s: %w", cfg.traceOut, err)
		}
	}
	if cfg.seriesOut != "" {
		if err := writeSeries(cfg.seriesOut); err != nil {
			return err
		}
	}
	if prof != nil {
		if reg != nil {
			envirotrack.ExportSelfProfile(reg, prof)
		}
		printSelfProfile(cfg.stderr, prof)
	}
	if shardHealth != nil {
		if reg != nil {
			envirotrack.ExportShardHealth(reg, shardHealth)
		}
		if cfg.selfProfile {
			printShardHealth(cfg.stderr, shardHealth)
		}
	}
	if reg != nil {
		if err := writeMetrics(reg, cfg.metricsOut); err != nil {
			return err
		}
	}
	if cfg.checkInv && violations > 0 {
		return fmt.Errorf("%d protocol invariant violation(s) proven", violations)
	}
	return nil
}

// writeSeries drains the health series collected during the experiments
// and writes them as a JSON array tagged with each run's seed and speed.
func writeSeries(path string) error {
	type tagged struct {
		Seed      int64               `json:"seed"`
		SpeedHops float64             `json:"speed_hops"`
		Series    *envirotrack.Series `json:"series"`
	}
	collected := eval.DrainSeries()
	out := make([]tagged, 0, len(collected))
	for _, ts := range collected {
		out = append(out, tagged{Seed: ts.Seed, SpeedHops: ts.SpeedHops, Series: ts.Series})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printSelfProfile renders the scheduler self-profile as a table on w
// (stderr, so it composes with -format json on stdout). Wall time is
// real time spent inside event callbacks, attributed to the subsystem
// that scheduled each event; it aggregates every run of the sweep.
func printSelfProfile(w io.Writer, prof *envirotrack.SelfProfile) {
	totalEvents, totalNanos := prof.TotalEvents(), prof.TotalNanos()
	fmt.Fprintf(w, "\nscheduler self-profile (%d events, %v wall in callbacks):\n",
		totalEvents, time.Duration(totalNanos).Round(time.Millisecond))
	fmt.Fprintf(w, "%-10s %12s %12s %7s %10s\n", "subsystem", "events", "wall", "%wall", "ns/event")
	for _, st := range prof.Snapshot() {
		if st.Events == 0 {
			continue
		}
		pct := 0.0
		if totalNanos > 0 {
			pct = 100 * float64(st.WallNanos) / float64(totalNanos)
		}
		fmt.Fprintf(w, "%-10s %12d %12v %6.1f%% %10.0f\n",
			st.Name, st.Events, time.Duration(st.WallNanos).Round(time.Microsecond),
			pct, float64(st.WallNanos)/float64(st.Events))
	}
	// Sharded runs (-shards N) add a second attribution dimension: which
	// scheduler shard executed each event.
	shards := prof.ShardSnapshot()
	if len(shards) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s %12s %12s %7s\n", "shard", "events", "wall", "%wall")
	for _, st := range shards {
		if st.Events == 0 {
			continue
		}
		pct := 0.0
		if totalNanos > 0 {
			pct = 100 * float64(st.WallNanos) / float64(totalNanos)
		}
		fmt.Fprintf(w, "%-10d %12d %12v %6.1f%%\n",
			st.Shard, st.Events, time.Duration(st.WallNanos).Round(time.Microsecond), pct)
	}
}

// printShardHealth renders the sharded runs' boundary-protocol accounting
// on w (stderr, alongside the self-profile): per shard pair the mailbox
// frame count and the tightest delivery slack over the sending shard's
// committed horizon, plus the lookahead-violation total — which is always
// zero here, because a parallel run with violations already failed.
func printShardHealth(w io.Writer, h *envirotrack.ShardHealth) {
	snap := h.Snapshot()
	if snap.Runs == 0 {
		return
	}
	fmt.Fprintf(w, "\nshard boundary health (%d sharded runs, %d boundary frames, %d lookahead violations):\n",
		snap.Runs, snap.BoundaryFrames, snap.LookaheadViolations)
	if len(snap.Pairs) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s %12s %14s\n", "pair", "frames", "min slack")
	for _, p := range snap.Pairs {
		fmt.Fprintf(w, "%3d -> %-3d %12d %14v\n", p.From, p.To, p.Frames, p.MinSlack)
	}
}

// writeMetrics renders the registry in Prometheus text format.
func writeMetrics(reg *envirotrack.MetricsRegistry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteProm(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

// --- JSON views: stable lower-case keys, seconds instead of durations ---

func fig3View(res eval.Figure3Result) any {
	type point struct {
		T     float64 `json:"t_s"`
		XTrue float64 `json:"x_true"`
		YTrue float64 `json:"y_true"`
		XEst  float64 `json:"x_est"`
		YEst  float64 `json:"y_est"`
	}
	points := make([]point, 0, len(res.Run.Track.Points))
	for _, p := range res.Run.Track.Points {
		points = append(points, point{
			T:     p.At.Seconds(),
			XTrue: p.Actual.X, YTrue: p.Actual.Y,
			XEst: p.Reported.X, YEst: p.Reported.Y,
		})
	}
	return struct {
		MeanError float64 `json:"mean_error"`
		MaxError  float64 `json:"max_error"`
		Labels    int     `json:"labels"`
		Points    []point `json:"points"`
	}{res.MeanError, res.MaxError, res.Run.Labels, points}
}

func fig4View(rows []eval.Figure4Row) any {
	type row struct {
		SpeedKmh   float64 `json:"speed_kmh"`
		HopsPast   int     `json:"hops_past"`
		SuccessPct float64 `json:"success_pct"`
		Trials     int     `json:"trials"`
	}
	out := make([]row, 0, len(rows))
	for _, r := range rows {
		out = append(out, row{r.SpeedKmh, r.HopsPast, r.SuccessPct, r.Trials})
	}
	return out
}

func table1View(rows []eval.Table1Row) any {
	type row struct {
		SpeedKmh    float64 `json:"speed_kmh"`
		HBLossPct   float64 `json:"hb_loss_pct"`
		MsgLossPct  float64 `json:"msg_loss_pct"`
		LinkUtilPct float64 `json:"link_util_pct"`
		Runs        int     `json:"runs"`
	}
	out := make([]row, 0, len(rows))
	for _, r := range rows {
		out = append(out, row{r.SpeedKmh, r.HBLossPct, r.MsgLossPct, r.LinkUtilPct, r.Runs})
	}
	return out
}

func fig5View(points []eval.Figure5Point) any {
	type point struct {
		HeartbeatS    float64 `json:"heartbeat_s"`
		SensingRadius float64 `json:"sensing_radius"`
		Mode          string  `json:"mode"`
		MaxSpeedHops  float64 `json:"max_speed_hops"`
	}
	out := make([]point, 0, len(points))
	for _, p := range points {
		out = append(out, point{p.HeartbeatSec, p.SensingRadius, p.Mode, p.MaxSpeedHops})
	}
	return out
}

func chaosView(points []eval.ChaosPoint) any {
	type violation struct {
		At        float64 `json:"at_s"`
		Invariant string  `json:"invariant"`
		Label     string  `json:"label,omitempty"`
		Mote      int     `json:"mote"`
		Peer      int     `json:"peer,omitempty"`
		Detail    string  `json:"detail"`
	}
	type point struct {
		Case          string      `json:"case"`
		Seed          int64       `json:"seed"`
		Coherent      bool        `json:"coherent"`
		TrackedOK     bool        `json:"tracked_ok"`
		Labels        int         `json:"labels"`
		HBLossPct     float64     `json:"hb_loss_pct"`
		CheckedEvents uint64      `json:"checked_events"`
		Violations    []violation `json:"violations,omitempty"`
	}
	out := make([]point, 0, len(points))
	for _, p := range points {
		pt := point{
			Case: p.Case, Seed: p.Seed, Coherent: p.Coherent, TrackedOK: p.TrackedOK,
			Labels: p.Labels, HBLossPct: 100 * p.HBLoss, CheckedEvents: p.CheckedEvents,
		}
		for _, v := range p.Violations {
			pt.Violations = append(pt.Violations, violation{
				At: v.At.Seconds(), Invariant: v.Invariant, Label: v.Label,
				Mote: v.Mote, Peer: v.Peer, Detail: v.Detail,
			})
		}
		out = append(out, pt)
	}
	return out
}

// compareView keeps the comparative matrix's own JSON tags (they are the
// schema CI smoke-checks) and adds the per-backend summary.
func compareView(points []eval.ComparePoint, summary []eval.CompareSummary) any {
	return struct {
		Points  []eval.ComparePoint   `json:"points"`
		Summary []eval.CompareSummary `json:"summary"`
	}{points, summary}
}

func fig6View(points []eval.Figure6Point) any {
	type point struct {
		Ratio         float64 `json:"ratio"`
		SensingRadius float64 `json:"sensing_radius"`
		MaxSpeedHops  float64 `json:"max_speed_hops"`
	}
	out := make([]point, 0, len(points))
	for _, p := range points {
		out = append(out, point{p.Ratio, p.SensingRadius, p.MaxSpeedHops})
	}
	return out
}
