//go:build chaosmut

package main

const protocolMutated = true
