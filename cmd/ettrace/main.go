// Command ettrace analyzes JSONL protocol traces written by
// etsim -trace-out, reconstructing end-to-end report spans and leadership
// handover spans from the correlated event stream.
//
// Usage:
//
//	etsim -exp fig3 -trace-out trace.jsonl
//	ettrace trace.jsonl                  # text report
//	ettrace -format json trace.jsonl     # machine-readable report
//	ettrace -top 20 trace.jsonl          # 20 slowest delivered reports
//	ettrace -run 3 trace.jsonl           # only events tagged run=3
//	cat trace.jsonl | ettrace            # reads stdin without a file arg
//
// The text report shows delivery counts per message kind, a root-cause
// breakdown for every undelivered report, per-hop latency waterfalls for
// the slowest delivered reports, and the handover timeline. The JSON
// report carries the same data under stable keys (summary, kinds,
// root_causes, slowest, handovers) for scripted consumption.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"envirotrack"
)

type config struct {
	format string
	top    int
	run    int64
	input  io.Reader
	name   string // input name for error messages
	stdout io.Writer
}

func main() {
	var cfg config
	flag.StringVar(&cfg.format, "format", "text", "output format: text or json")
	flag.IntVar(&cfg.top, "top", 10, "number of slowest delivered reports to show")
	flag.Int64Var(&cfg.run, "run", 0, "only analyze events with this run tag (0 = all runs)")
	flag.Parse()

	cfg.input, cfg.name = os.Stdin, "stdin"
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ettrace:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.input, cfg.name = f, flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "ettrace: at most one trace file argument (default stdin)")
		os.Exit(2)
	}
	cfg.stdout = os.Stdout

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ettrace:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	jsonOut := false
	switch cfg.format {
	case "", "text":
	case "json":
		jsonOut = true
	default:
		return fmt.Errorf("unknown format %q (want text or json)", cfg.format)
	}
	if cfg.top < 0 {
		cfg.top = 0
	}

	sink := envirotrack.NewSpanSink()
	events, err := feed(cfg, sink)
	if err != nil {
		return err
	}
	rep := analyze(events, sink.Reports(), sink.Handovers(), cfg.top)

	if jsonOut {
		enc := json.NewEncoder(cfg.stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	renderText(cfg.stdout, rep)
	return nil
}

// feed parses the trace line by line into the sink, returning the number
// of events consumed. A malformed or unknown line is a hard error — a
// corrupted trace should fail loudly, not skew the analysis.
func feed(cfg config, sink *envirotrack.SpanSink) (int, error) {
	sc := bufio.NewScanner(cfg.input)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	events, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := envirotrack.ParseTraceEvent(line)
		if err != nil {
			return events, fmt.Errorf("%s:%d: %w", cfg.name, lineNo, err)
		}
		if cfg.run != 0 && ev.Run != cfg.run {
			continue
		}
		sink.Emit(ev)
		events++
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("read %s: %w", cfg.name, err)
	}
	return events, nil
}

// --- report model (doubles as the JSON schema) ---

type report struct {
	Events    int            `json:"events"`
	Summary   summary        `json:"summary"`
	Kinds     []kindRow      `json:"kinds"`
	Causes    []causeRow     `json:"root_causes"`
	Slowest   []spanView     `json:"slowest"`
	Handovers []handoverView `json:"handovers"`
}

type summary struct {
	Spans        int     `json:"spans"`
	Delivered    int     `json:"delivered"`
	Undelivered  int     `json:"undelivered"`
	DeliveryPct  float64 `json:"delivery_pct"`
	LatencyMeanS float64 `json:"latency_mean_s"`
	LatencyP50S  float64 `json:"latency_p50_s"`
	LatencyP99S  float64 `json:"latency_p99_s"`
	LatencyMaxS  float64 `json:"latency_max_s"`
	Handovers    int     `json:"handovers"`
}

type kindRow struct {
	Kind        string  `json:"kind"`
	Spans       int     `json:"spans"`
	Delivered   int     `json:"delivered"`
	MeanHops    float64 `json:"mean_hops"`
	LatencyMean float64 `json:"latency_mean_s"`
}

type causeRow struct {
	Cause string `json:"cause"`
	Count int    `json:"count"`
}

type spanView struct {
	Run       int64     `json:"run"`
	Label     string    `json:"label"`
	Origin    int       `json:"origin"`
	Seq       uint64    `json:"seq"`
	Kind      string    `json:"kind"`
	Src       int       `json:"src"`
	Dst       int       `json:"dst"`
	SentS     float64   `json:"sent_s"`
	Delivered bool      `json:"delivered"`
	LatencyS  float64   `json:"latency_s"`
	To        int       `json:"delivered_to"`
	RootCause string    `json:"root_cause,omitempty"`
	Forwards  int       `json:"forwards"`
	ChainHops int       `json:"chain_hops"`
	Hops      []hopView `json:"hops"`
}

type hopView struct {
	Frame   uint64  `json:"frame"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	SentS   float64 `json:"sent_s"`
	EndS    float64 `json:"end_s"`
	Outcome string  `json:"outcome"`
}

type handoverView struct {
	Run       int64       `json:"run"`
	Label     string      `json:"label"`
	OldLeader int         `json:"old_leader"`
	NewLeader int         `json:"new_leader"`
	TakeoverS float64     `json:"takeover_s"`
	GapS      float64     `json:"gap_s"`
	Chain     []chainView `json:"chain"`
}

type chainView struct {
	TS   float64 `json:"t_s"`
	Ev   string  `json:"ev"`
	Mote int     `json:"mote"`
}

func analyze(events int, spans []envirotrack.ReportSpan, handovers []envirotrack.HandoverSpan, top int) report {
	rep := report{Events: events}
	rep.Summary.Spans = len(spans)
	rep.Summary.Handovers = len(handovers)

	kinds := map[string]*kindRow{}
	causes := map[string]int{}
	var latencies []time.Duration
	var delivered []envirotrack.ReportSpan
	for _, sp := range spans {
		k := kinds[string(sp.Kind)]
		if k == nil {
			k = &kindRow{Kind: string(sp.Kind)}
			kinds[string(sp.Kind)] = k
		}
		k.Spans++
		k.MeanHops += float64(len(sp.Hops))
		if sp.Delivered {
			rep.Summary.Delivered++
			k.Delivered++
			k.LatencyMean += sp.Latency.Seconds()
			latencies = append(latencies, sp.Latency)
			delivered = append(delivered, sp)
		} else {
			rep.Summary.Undelivered++
			causes[sp.RootCause]++
		}
	}
	if rep.Summary.Spans > 0 {
		rep.Summary.DeliveryPct = 100 * float64(rep.Summary.Delivered) / float64(rep.Summary.Spans)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		rep.Summary.LatencyMeanS = sum.Seconds() / float64(len(latencies))
		rep.Summary.LatencyP50S = quantile(latencies, 0.50).Seconds()
		rep.Summary.LatencyP99S = quantile(latencies, 0.99).Seconds()
		rep.Summary.LatencyMaxS = latencies[len(latencies)-1].Seconds()
	}

	for _, k := range kinds {
		if k.Spans > 0 {
			k.MeanHops /= float64(k.Spans)
		}
		if k.Delivered > 0 {
			k.LatencyMean /= float64(k.Delivered)
		}
		rep.Kinds = append(rep.Kinds, *k)
	}
	sort.Slice(rep.Kinds, func(i, j int) bool { return rep.Kinds[i].Kind < rep.Kinds[j].Kind })

	rep.Causes = make([]causeRow, 0, len(causes))
	for c, n := range causes {
		rep.Causes = append(rep.Causes, causeRow{Cause: c, Count: n})
	}
	sort.Slice(rep.Causes, func(i, j int) bool {
		if rep.Causes[i].Count != rep.Causes[j].Count {
			return rep.Causes[i].Count > rep.Causes[j].Count
		}
		return rep.Causes[i].Cause < rep.Causes[j].Cause
	})

	sort.SliceStable(delivered, func(i, j int) bool { return delivered[i].Latency > delivered[j].Latency })
	if len(delivered) > top {
		delivered = delivered[:top]
	}
	rep.Slowest = make([]spanView, 0, len(delivered))
	for _, sp := range delivered {
		rep.Slowest = append(rep.Slowest, viewSpan(sp))
	}

	rep.Handovers = make([]handoverView, 0, len(handovers))
	for _, h := range handovers {
		hv := handoverView{
			Run: h.Run, Label: h.Label, OldLeader: h.OldLeader, NewLeader: h.NewLeader,
			TakeoverS: h.TakeoverAt.Seconds(), GapS: h.Gap.Seconds(),
			Chain: make([]chainView, 0, len(h.Chain)),
		}
		for _, c := range h.Chain {
			hv.Chain = append(hv.Chain, chainView{TS: c.At.Seconds(), Ev: c.Type.String(), Mote: c.Mote})
		}
		rep.Handovers = append(rep.Handovers, hv)
	}
	return rep
}

func viewSpan(sp envirotrack.ReportSpan) spanView {
	v := spanView{
		Run: sp.Run, Label: sp.Label, Origin: sp.Origin, Seq: sp.Seq,
		Kind: string(sp.Kind), Src: sp.Src, Dst: sp.Dst,
		SentS: sp.SentAt.Seconds(), Delivered: sp.Delivered,
		LatencyS: sp.Latency.Seconds(), To: sp.DeliveredTo,
		RootCause: sp.RootCause, Forwards: sp.Forwards, ChainHops: sp.ChainHops,
		Hops: make([]hopView, 0, len(sp.Hops)),
	}
	for _, h := range sp.Hops {
		v.Hops = append(v.Hops, hopView{
			Frame: h.Frame, From: h.From, To: h.To,
			SentS: h.SentAt.Seconds(), EndS: h.EndAt.Seconds(), Outcome: h.Outcome,
		})
	}
	return v
}

// quantile returns the q-th order statistic of a sorted slice (nearest
// rank; q in [0,1]).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// --- text rendering ---

func renderText(w io.Writer, rep report) {
	s := rep.Summary
	fmt.Fprintf(w, "trace: %d correlated events, %d report spans, %d handovers\n\n", rep.Events, s.Spans, s.Handovers)

	fmt.Fprintf(w, "delivery: %d/%d delivered (%.1f%%)\n", s.Delivered, s.Spans, s.DeliveryPct)
	if s.Delivered > 0 {
		fmt.Fprintf(w, "latency:  mean %s  p50 %s  p99 %s  max %s\n",
			fmtS(s.LatencyMeanS), fmtS(s.LatencyP50S), fmtS(s.LatencyP99S), fmtS(s.LatencyMaxS))
	}

	if len(rep.Kinds) > 0 {
		fmt.Fprintf(w, "\n%-12s %8s %10s %10s %12s\n", "kind", "spans", "delivered", "mean hops", "mean latency")
		for _, k := range rep.Kinds {
			fmt.Fprintf(w, "%-12s %8d %10d %10.1f %12s\n",
				k.Kind, k.Spans, k.Delivered, k.MeanHops, fmtS(k.LatencyMean))
		}
	}

	if len(rep.Causes) > 0 {
		fmt.Fprintf(w, "\nundelivered root causes:\n")
		for _, c := range rep.Causes {
			fmt.Fprintf(w, "  %-14s %6d\n", c.Cause, c.Count)
		}
	}

	if len(rep.Slowest) > 0 {
		fmt.Fprintf(w, "\nslowest delivered reports:\n")
		for i, sp := range rep.Slowest {
			fmt.Fprintf(w, "#%d %s %q origin=%d seq=%d run=%d: %s (%d->%d, %d hops, %d forwards",
				i+1, sp.Kind, sp.Label, sp.Origin, sp.Seq, sp.Run,
				fmtS(sp.LatencyS), sp.Src, sp.To, len(sp.Hops), sp.Forwards)
			if sp.ChainHops > 0 {
				fmt.Fprintf(w, ", %d chain hops", sp.ChainHops)
			}
			fmt.Fprintf(w, ")\n")
			for _, h := range sp.Hops {
				to := fmt.Sprintf("%d", h.To)
				if h.To < 0 {
					to = "-"
				}
				fmt.Fprintf(w, "    t=%-10s +%-10s %4d -> %-4s %s\n",
					fmtS(h.SentS), fmtS(h.EndS-sp.SentS), h.From, to, h.Outcome)
			}
		}
	}

	if len(rep.Handovers) > 0 {
		fmt.Fprintf(w, "\nhandovers:\n")
		for _, h := range rep.Handovers {
			old := fmt.Sprintf("%d", h.OldLeader)
			if h.OldLeader < 0 {
				old = "?"
			}
			fmt.Fprintf(w, "  t=%-10s %q run=%d: leader %s -> %d (gap %s, %d chain events)\n",
				fmtS(h.TakeoverS), h.Label, h.Run, old, h.NewLeader, fmtS(h.GapS), len(h.Chain))
		}
	}
}

// fmtS renders seconds compactly (µs under 1ms, ms under 1s).
func fmtS(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d == 0:
		return "0s"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
