package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"envirotrack"
	"envirotrack/internal/obs"
	"envirotrack/internal/trace"
)

// synthTrace builds a small JSONL trace: one delivered two-hop report,
// one report lost to collision, and a leadership takeover, across two
// runs.
func synthTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := envirotrack.NewJSONLSink(&buf)
	at := func(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }
	ev := func(sec float64, typ obs.EventType, mote int, mut func(*obs.Event)) {
		e := obs.Event{At: at(sec), Type: typ, Mote: mote, Run: 1, Label: "L1", Origin: 7, Kind: trace.KindReading}
		if mut != nil {
			mut(&e)
		}
		sink.Emit(e)
	}
	// Delivered span (run 1, seq 1): 7 -> 8 -> 9.
	ev(1.0, obs.EvReportSent, 7, func(e *obs.Event) { e.Seq = 1; e.Peer = 9 })
	ev(1.0, obs.EvFrameSent, 7, func(e *obs.Event) { e.Seq = 1; e.Frame = 100 })
	ev(1.1, obs.EvFrameReceived, 8, func(e *obs.Event) { e.Seq = 1; e.Frame = 100; e.Peer = 7 })
	ev(1.1, obs.EvRouteForward, 8, func(e *obs.Event) { e.Seq = 1 })
	ev(1.1, obs.EvFrameSent, 8, func(e *obs.Event) { e.Seq = 1; e.Frame = 101 })
	ev(1.2, obs.EvFrameReceived, 9, func(e *obs.Event) { e.Seq = 1; e.Frame = 101; e.Peer = 8 })
	ev(1.2, obs.EvRouteDelivered, 9, func(e *obs.Event) { e.Seq = 1; e.Peer = 7 })
	// Lost span (run 1, seq 2): collision on the only hop.
	ev(2.0, obs.EvReportSent, 7, func(e *obs.Event) { e.Seq = 2; e.Peer = 9 })
	ev(2.0, obs.EvFrameSent, 7, func(e *obs.Event) { e.Seq = 2; e.Frame = 102 })
	ev(2.1, obs.EvFrameLost, 9, func(e *obs.Event) { e.Seq = 2; e.Frame = 102; e.Peer = 7; e.Cause = "collision" })
	// Handover (run 1).
	ev(3.0, obs.EvHeartbeatSent, 7, func(e *obs.Event) { e.Seq = 5 })
	ev(5.0, obs.EvLabelTakeover, 8, nil)
	// A second run with its own delivered span, for -run filtering.
	ev(1.0, obs.EvReportSent, 3, func(e *obs.Event) { e.Run = 2; e.Origin = 3; e.Seq = 1; e.Peer = 4 })
	ev(1.5, obs.EvRouteDelivered, 4, func(e *obs.Event) { e.Run = 2; e.Origin = 3; e.Seq = 1; e.Peer = 3 })
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunTextReport(t *testing.T) {
	var out bytes.Buffer
	err := run(config{
		format: "text", top: 5,
		input: bytes.NewReader(synthTrace(t)), name: "synth", stdout: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"3 report spans", "1 handovers",
		"2/3 delivered",
		"collision", // root-cause table
		"7 -> 8",    // waterfall hop
		"leader 7 -> 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestRunJSONReportAndRunFilter(t *testing.T) {
	var out bytes.Buffer
	err := run(config{
		format: "json", top: 5,
		input: bytes.NewReader(synthTrace(t)), name: "synth", stdout: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Summary.Spans != 3 || rep.Summary.Delivered != 2 || rep.Summary.Undelivered != 1 {
		t.Errorf("summary = %+v, want 3 spans, 2 delivered, 1 undelivered", rep.Summary)
	}
	if len(rep.Causes) != 1 || rep.Causes[0].Cause != "collision" || rep.Causes[0].Count != 1 {
		t.Errorf("root causes = %+v, want one collision", rep.Causes)
	}
	if len(rep.Slowest) != 2 {
		t.Fatalf("slowest = %+v, want the 2 delivered spans", rep.Slowest)
	}
	// Slowest first: run-2 span took 500ms, run-1 span 200ms.
	if rep.Slowest[0].Run != 2 || rep.Slowest[0].LatencyS != 0.5 {
		t.Errorf("slowest[0] = %+v, want run-2 span at 0.5s", rep.Slowest[0])
	}
	if len(rep.Slowest[1].Hops) != 2 || rep.Slowest[1].Hops[1].To != 9 {
		t.Errorf("waterfall hops = %+v, want 2 hops ending at 9", rep.Slowest[1].Hops)
	}
	if len(rep.Handovers) != 1 || rep.Handovers[0].GapS != 2 {
		t.Errorf("handovers = %+v, want one with a 2s gap", rep.Handovers)
	}

	// -run 2 restricts the analysis to the second run.
	out.Reset()
	err = run(config{
		format: "json", top: 5, run: 2,
		input: bytes.NewReader(synthTrace(t)), name: "synth", stdout: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Spans != 1 || rep.Summary.Delivered != 1 || rep.Summary.Handovers != 0 {
		t.Errorf("run-filtered summary = %+v, want exactly run 2's span", rep.Summary)
	}
}

func TestRunRejectsCorruptTrace(t *testing.T) {
	var out bytes.Buffer
	err := run(config{
		format: "text", top: 5,
		input: strings.NewReader("{\"t\":1,\"ev\":\"bogus_event\"}\n"), name: "bad", stdout: &out,
	})
	if err == nil || !strings.Contains(err.Error(), "bad:1") {
		t.Fatalf("corrupt trace error = %v, want line-numbered failure", err)
	}
	if err := run(config{format: "yaml", input: strings.NewReader(""), stdout: &out}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
