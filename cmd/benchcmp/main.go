// Command benchcmp compares two benchmark result files produced by
// `go test -json -bench` (the files `make bench` writes as BENCH_N.json)
// and fails when a watched metric regresses beyond a threshold. It is the
// repository's dependency-free stand-in for benchstat, used by `make
// bench-compare` and the CI bench-compare job to guard the simulator's
// throughput floor.
//
// Metric direction is inferred from the unit: */op units (ns/op, B/op,
// allocs/op) regress upward, rate units (runs/s, sim_s_per_wall_s, and
// anything else) regress downward.
//
// When both files contain the machine-calibration benchmark (a fixed
// arithmetic workload whose code never changes — see -calibration), the
// comparison is normalized by the host-speed ratio it measures: snapshots
// are taken at different times on a shared machine, and CPU steal between
// them would otherwise read as a simulator regression (or a faster host
// would mask a real one).
//
// -gate-zero-allocs adds an absolute check on top of the relative one:
// any benchmark that reported 0 allocs/op in the baseline must still
// report 0 in the new file. The zero-allocation core is a hard invariant,
// not a number that may drift 10% per release, so the fractional
// threshold does not apply to it (and could not: any regression from
// zero is an infinite relative change).
//
// Usage:
//
//	benchcmp -baseline BENCH_3.json -new BENCH_4.json \
//	  -metric sim_s_per_wall_s -max-regress 0.10 -gate-zero-allocs
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// results maps benchmark name -> metric unit -> value.
type results map[string]map[string]float64

// testEvent is the subset of the go test -json event stream we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// parseFile extracts benchmark measurements from a go test -json file.
// The benchmark name and its measurements usually arrive as separate
// output events (the testing package prints the name, runs the benchmark,
// then prints the numbers), so fragments are reassembled into full text
// lines per package/test stream before parsing. Plain `go test -bench`
// text output is accepted too: lines that are not JSON are scanned
// directly.
func parseFile(path string) (results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res := results{}
	pending := map[string]string{} // partial text line per package/test stream
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "{") {
			parseBenchLine(res, line)
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // tolerate foreign lines
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		buf := pending[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			parseBenchLine(res, buf[:nl])
			buf = buf[nl+1:]
		}
		if buf == "" {
			delete(pending, key)
		} else {
			pending[key] = buf
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, buf := range pending {
		parseBenchLine(res, buf)
	}
	return res, nil
}

// parseBenchLine folds one `BenchmarkName  N  v1 unit1  v2 unit2 ...`
// line into res. Non-benchmark lines are ignored. When a benchmark
// appears more than once (`-count` samples, or the steady-state
// micro-bench pass `make bench` appends), the best measurement wins —
// minimum for /op costs, maximum for rates. Scheduler noise on a shared
// machine is one-sided (contention only ever slows a benchmark down), so
// best-of-N estimates true capability and keeps the regression gate from
// tripping on a single unlucky sample; it also lets the steady-state
// pass's 0 allocs/op supersede the warm-up-polluted 1x figure.
func parseBenchLine(res results, line string) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	fields := strings.Fields(line)
	// Name, iteration count, then (value, unit) pairs.
	if len(fields) < 4 {
		return
	}
	name := fields[0]
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return
	}
	metrics := res[name]
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return
		}
		if metrics == nil {
			metrics = map[string]float64{}
			res[name] = metrics
		}
		unit := fields[i+1]
		if prev, ok := metrics[unit]; ok {
			if lowerIsBetter(unit) {
				v = math.Min(prev, v)
			} else {
				v = math.Max(prev, v)
			}
		}
		metrics[unit] = v
	}
}

// lowerIsBetter reports the regression direction for a metric unit.
func lowerIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/op")
}

// speedFactor estimates how fast the new file's machine was relative to
// the baseline's, from a calibration benchmark (a fixed workload whose
// code never changes, so its ns/op ratio measures the host alone).
// Returns 1 when either file lacks the benchmark — comparisons then run
// unnormalized, as before calibration existed.
func speedFactor(base, fresh results, calib string) float64 {
	b, f := base[calib]["ns/op"], fresh[calib]["ns/op"]
	if b <= 0 || f <= 0 {
		return 1
	}
	return b / f
}

// compare evaluates one metric across the benchmarks present in both
// files, normalizing the new file's values by the machine speed factor
// (rates divide by it, /op costs multiply). It returns the comparison
// report and whether any benchmark regressed beyond maxRegress (a
// fraction, e.g. 0.10 for 10%).
func compare(base, fresh results, metric string, maxRegress, speed float64) (string, bool) {
	var names []string
	for name, m := range base {
		if _, ok := m[metric]; !ok {
			continue
		}
		if fm, ok := fresh[name]; ok {
			if _, ok := fm[metric]; ok {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	regressed := false
	fmt.Fprintf(&sb, "%-40s %14s %14s %9s\n", "benchmark ("+metric+")", "baseline", "new", "delta")
	for _, name := range names {
		old, now := base[name][metric], fresh[name][metric]
		if lowerIsBetter(metric) {
			now *= speed
		} else {
			now /= speed
		}
		var delta float64
		if old != 0 {
			delta = (now - old) / old
		}
		bad := false
		if lowerIsBetter(metric) {
			bad = delta > maxRegress
		} else {
			bad = delta < -maxRegress
		}
		mark := ""
		if bad {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&sb, "%-40s %14.2f %14.2f %+8.1f%%%s\n", name, old, now, delta*100, mark)
	}
	if len(names) == 0 {
		fmt.Fprintf(&sb, "(no benchmark reports %q in both files)\n", metric)
	}
	return sb.String(), regressed
}

// compareZeroAllocs enforces the allocation-free invariant: every
// benchmark that reported 0 allocs/op in the baseline and appears in the
// new file must still report 0. It returns the violation report and
// whether any benchmark broke the invariant.
func compareZeroAllocs(base, fresh results) (string, bool) {
	const unit = "allocs/op"
	var names []string
	for name, m := range base {
		if v, ok := m[unit]; !ok || v != 0 {
			continue
		}
		if _, ok := fresh[name][unit]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	broken := false
	for _, name := range names {
		if now := fresh[name][unit]; now != 0 {
			fmt.Fprintf(&sb, "%s: was 0 allocs/op, now %g  ZERO-ALLOC REGRESSION\n", name, now)
			broken = true
		}
	}
	fmt.Fprintf(&sb, "zero-alloc gate: %d benchmark(s) checked\n", len(names))
	return sb.String(), broken
}

func main() {
	baseline := flag.String("baseline", "", "baseline results file (go test -json output)")
	freshPath := flag.String("new", "", "new results file to compare against the baseline")
	metric := flag.String("metric", "sim_s_per_wall_s", "comma-separated metric units to compare")
	maxRegress := flag.Float64("max-regress", 0.10, "failure threshold as a fraction (0.10 = 10%)")
	gateZeroAllocs := flag.Bool("gate-zero-allocs", false,
		"fail if any benchmark at 0 allocs/op in the baseline becomes nonzero")
	calibration := flag.String("calibration", "BenchmarkMachineCalibration",
		"fixed-workload benchmark used to normalize for machine speed; empty disables")
	flag.Parse()
	if *baseline == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	fresh, err := parseFile(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	speed := 1.0
	if *calibration != "" {
		if speed = speedFactor(base, fresh, *calibration); speed != 1 {
			fmt.Printf("calibration: machine ran at %.2fx baseline speed (%s); normalizing\n",
				speed, *calibration)
		}
	}
	anyRegressed := false
	for _, m := range strings.Split(*metric, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		report, regressed := compare(base, fresh, m, *maxRegress, speed)
		fmt.Print(report)
		anyRegressed = anyRegressed || regressed
	}
	if *gateZeroAllocs {
		report, broken := compareZeroAllocs(base, fresh)
		fmt.Print(report)
		anyRegressed = anyRegressed || broken
	}
	if anyRegressed {
		fmt.Fprintf(os.Stderr, "benchcmp: regression beyond %.0f%% detected\n", *maxRegress*100)
		os.Exit(1)
	}
}
