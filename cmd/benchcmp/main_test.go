package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	res := results{}
	parseBenchLine(res, "BenchmarkSimulationThroughput \t       3\t  12149500 ns/op\t        82.32 runs/s\t      9056 sim_s_per_wall_s\t  498221 B/op\t    3992 allocs/op")
	parseBenchLine(res, "ok  \tenvirotrack/internal/eval\t0.5s")
	parseBenchLine(res, "PASS")
	m := res["BenchmarkSimulationThroughput"]
	if m == nil {
		t.Fatal("benchmark line not parsed")
	}
	for unit, want := range map[string]float64{
		"ns/op": 12149500, "runs/s": 82.32, "sim_s_per_wall_s": 9056,
		"B/op": 498221, "allocs/op": 3992,
	} {
		if m[unit] != want {
			t.Fatalf("%s = %v, want %v", unit, m[unit], want)
		}
	}
	if len(res) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(res))
	}
}

func TestParseFileJSONStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	// The name and the measurements arrive as separate output events, the
	// way test2json frames real -bench output; a second package's events
	// interleave without corrupting the reassembly.
	content := `{"Action":"start","Package":"envirotrack"}
{"Action":"output","Package":"envirotrack","Test":"BenchmarkSimulationThroughput","Output":"BenchmarkSimulationThroughput\n"}
{"Action":"output","Package":"envirotrack","Test":"BenchmarkSimulationThroughput","Output":"BenchmarkSimulationThroughput     \t"}
{"Action":"output","Package":"envirotrack/internal/simtime","Test":"BenchmarkSchedulerChurn","Output":"BenchmarkSchedulerChurn \t"}
{"Action":"output","Package":"envirotrack","Test":"BenchmarkSimulationThroughput","Output":"       3\t  35000000 ns/op\t      3460 sim_s_per_wall_s\n"}
{"Action":"output","Package":"envirotrack/internal/simtime","Test":"BenchmarkSchedulerChurn","Output":"  100000\t        57.55 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"envirotrack","Output":"PASS\n"}
{"Action":"pass","Package":"envirotrack"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkSimulationThroughput"]["sim_s_per_wall_s"]; got != 3460 {
		t.Fatalf("sim_s_per_wall_s = %v, want 3460", got)
	}
	if got := res["BenchmarkSchedulerChurn"]["allocs/op"]; got != 0 {
		t.Fatalf("allocs/op = %v, want 0", got)
	}
	if got := res["BenchmarkSchedulerChurn"]["ns/op"]; got != 57.55 {
		t.Fatalf("ns/op = %v, want 57.55", got)
	}
}

func TestCompareDirections(t *testing.T) {
	base := results{
		"BenchmarkA": {"sim_s_per_wall_s": 1000, "allocs/op": 100},
		"BenchmarkB": {"sim_s_per_wall_s": 500},
	}

	// Higher-is-better metric: a drop beyond the threshold regresses.
	fresh := results{
		"BenchmarkA": {"sim_s_per_wall_s": 850, "allocs/op": 100},
		"BenchmarkB": {"sim_s_per_wall_s": 510},
	}
	report, regressed := compare(base, fresh, "sim_s_per_wall_s", 0.10, 1)
	if !regressed {
		t.Fatalf("15%% throughput drop not flagged; report:\n%s", report)
	}

	// Within threshold: no failure.
	fresh["BenchmarkA"]["sim_s_per_wall_s"] = 950
	if report, regressed = compare(base, fresh, "sim_s_per_wall_s", 0.10, 1); regressed {
		t.Fatalf("5%% drop flagged as regression; report:\n%s", report)
	}

	// Lower-is-better metric: an increase beyond the threshold regresses,
	// a decrease does not.
	fresh["BenchmarkA"]["allocs/op"] = 150
	if _, regressed = compare(base, fresh, "allocs/op", 0.10, 1); !regressed {
		t.Fatal("50% allocs/op increase not flagged")
	}
	fresh["BenchmarkA"]["allocs/op"] = 10
	if _, regressed = compare(base, fresh, "allocs/op", 0.10, 1); regressed {
		t.Fatal("allocs/op improvement flagged as regression")
	}

	// Benchmarks missing from either side are skipped, not regressions.
	if _, regressed = compare(base, results{}, "sim_s_per_wall_s", 0.10, 1); regressed {
		t.Fatal("empty new file flagged as regression")
	}
}

func TestParseBenchLineBestEntryWins(t *testing.T) {
	// make bench appends a steady-state micro-bench pass after the
	// -benchtime 1x sweep; the steady (cheaper) measurement must replace
	// the warm-up-polluted one so the zero-alloc gate sees the pooled
	// core's true steady state.
	res := results{}
	parseBenchLine(res, "BenchmarkSchedulerChurn \t       1\t     793.0 ns/op\t      48 B/op\t       1 allocs/op")
	parseBenchLine(res, "BenchmarkSchedulerChurn \t  100000\t      23.0 ns/op\t       0 B/op\t       0 allocs/op")
	if got := res["BenchmarkSchedulerChurn"]["allocs/op"]; got != 0 {
		t.Fatalf("allocs/op = %v, want steady-state 0", got)
	}
	if got := res["BenchmarkSchedulerChurn"]["ns/op"]; got != 23.0 {
		t.Fatalf("ns/op = %v, want steady-state 23", got)
	}

	// -count samples fold best-of: max for rate metrics (noise only ever
	// slows a run down), min for /op costs — regardless of sample order.
	res = results{}
	parseBenchLine(res, "BenchmarkLargeField/10k \t 3\t 60000000 ns/op\t 33.10 sim_s_per_wall_s")
	parseBenchLine(res, "BenchmarkLargeField/10k \t 3\t 90000000 ns/op\t 22.40 sim_s_per_wall_s")
	parseBenchLine(res, "BenchmarkLargeField/10k \t 3\t 70000000 ns/op\t 28.70 sim_s_per_wall_s")
	if got := res["BenchmarkLargeField/10k"]["sim_s_per_wall_s"]; got != 33.10 {
		t.Fatalf("sim_s_per_wall_s = %v, want best sample 33.10", got)
	}
	if got := res["BenchmarkLargeField/10k"]["ns/op"]; got != 60000000 {
		t.Fatalf("ns/op = %v, want best sample 60000000", got)
	}
}

func TestCalibrationNormalization(t *testing.T) {
	base := results{
		"BenchmarkMachineCalibration": {"ns/op": 30_000_000},
		"BenchmarkA":                  {"sim_s_per_wall_s": 1000},
	}
	// The host ran 25% slower for the new snapshot: the calibration
	// workload took a third longer, and the simulator's rate dropped in
	// proportion. Unnormalized this reads as a 25% regression;
	// normalized it is parity.
	fresh := results{
		"BenchmarkMachineCalibration": {"ns/op": 40_000_000},
		"BenchmarkA":                  {"sim_s_per_wall_s": 750},
	}
	speed := speedFactor(base, fresh, "BenchmarkMachineCalibration")
	if speed != 0.75 {
		t.Fatalf("speed factor = %v, want 0.75", speed)
	}
	if report, regressed := compare(base, fresh, "sim_s_per_wall_s", 0.10, speed); regressed {
		t.Fatalf("machine slowdown flagged as regression:\n%s", report)
	}
	if _, regressed := compare(base, fresh, "sim_s_per_wall_s", 0.10, 1); !regressed {
		t.Fatal("sanity: the same numbers unnormalized must regress")
	}

	// A real regression is still caught under normalization: the host got
	// faster, masking a throughput drop in the raw numbers.
	fresh = results{
		"BenchmarkMachineCalibration": {"ns/op": 15_000_000}, // host 2x faster
		"BenchmarkA":                  {"sim_s_per_wall_s": 1100},
	}
	speed = speedFactor(base, fresh, "BenchmarkMachineCalibration")
	if speed != 2 {
		t.Fatalf("speed factor = %v, want 2", speed)
	}
	if _, regressed := compare(base, fresh, "sim_s_per_wall_s", 0.10, speed); !regressed {
		t.Fatal("host speedup masked a real throughput regression")
	}

	// Missing calibration in either file degrades to unnormalized.
	if got := speedFactor(base, results{}, "BenchmarkMachineCalibration"); got != 1 {
		t.Fatalf("speed factor without calibration = %v, want 1", got)
	}
}

func TestCompareZeroAllocs(t *testing.T) {
	base := results{
		"BenchmarkPooled":  {"allocs/op": 0},
		"BenchmarkHeapy":   {"allocs/op": 12},
		"BenchmarkRemoved": {"allocs/op": 0}, // absent from every fresh file below
		"BenchmarkNoAlloc": {"ns/op": 5},     // no allocs/op metric at all
	}

	// Invariant holds: pooled benchmark still at zero; a nonzero baseline
	// getting worse is the relative gate's business, not this one's.
	fresh := results{
		"BenchmarkPooled": {"allocs/op": 0},
		"BenchmarkHeapy":  {"allocs/op": 40},
	}
	report, broken := compareZeroAllocs(base, fresh)
	if broken {
		t.Fatalf("gate fired with no zero-alloc regression:\n%s", report)
	}

	// Invariant broken: a 0 allocs/op baseline became nonzero.
	fresh["BenchmarkPooled"]["allocs/op"] = 2
	report, broken = compareZeroAllocs(base, fresh)
	if !broken {
		t.Fatal("gate must fire when a 0 allocs/op baseline becomes nonzero")
	}
	if !strings.Contains(report, "BenchmarkPooled") || !strings.Contains(report, "ZERO-ALLOC REGRESSION") {
		t.Fatalf("report should name the offender:\n%s", report)
	}

	// A benchmark dropped from the new file is skipped, not a failure
	// (intersection semantics, matching compare).
	if report, broken = compareZeroAllocs(base, results{}); broken {
		t.Fatalf("absent benchmark tripped the gate:\n%s", report)
	}
}
