// Command etrack runs an EnviroTrack program (the Section 4 declaration
// language) on a simulated sensor field with a moving target, streaming
// every message the program sends to the base station.
//
// The identifiers "base" and "pursuer" in send() statements are bound to a
// base-station mote placed at the field corner.
//
// Usage:
//
//	etrack -grid 12x3 -radius 2.5 -speed 0.1 -duration 60s program.et
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"envirotrack"
)

func main() {
	var (
		grid     = flag.String("grid", "12x3", "mote grid as COLSxROWS")
		radius   = flag.Float64("radius", 2.5, "communication radius (grid units)")
		sense    = flag.Float64("sense", 1.6, "target signature radius (grid units)")
		speed    = flag.Float64("speed", 0.1, "target speed (hops/second)")
		kind     = flag.String("kind", "vehicle", "target phenomenon kind")
		duration = flag.Duration("duration", 60*time.Second, "simulated run time")
		seed     = flag.Int64("seed", 1, "simulation seed")
		hb       = flag.Duration("heartbeat", 500*time.Millisecond, "group heartbeat period")
	)
	flag.Parse()
	if err := run(flag.Args(), *grid, *radius, *sense, *speed, *kind, *duration, *seed, *hb); err != nil {
		fmt.Fprintln(os.Stderr, "etrack:", err)
		os.Exit(1)
	}
}

func run(args []string, grid string, radius, sense, speed float64, kind string, duration time.Duration, seed int64, hb time.Duration) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: etrack [flags] <program.et>")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var cols, rows int
	if _, err := fmt.Sscanf(strings.ToLower(grid), "%dx%d", &cols, &rows); err != nil || cols < 2 || rows < 1 {
		return fmt.Errorf("malformed -grid %q (want COLSxROWS)", grid)
	}

	const baseID envirotrack.NodeID = 100_000
	specs, err := envirotrack.CompileContexts(string(src), envirotrack.CompileEnv{
		Destinations: map[string]envirotrack.NodeID{
			"base":    baseID,
			"pursuer": baseID,
		},
		Logf:  func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
		Group: envirotrack.GroupConfig{HeartbeatPeriod: hb, HopsPast: 1},
	})
	if err != nil {
		return err
	}

	net, err := envirotrack.New(
		envirotrack.WithGrid(cols, rows),
		envirotrack.WithCommRadius(radius),
		envirotrack.WithSensing(envirotrack.VehicleSensing(kind)),
		envirotrack.WithSeed(seed),
		envirotrack.WithLossProb(0.05),
	)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		if err := net.AttachContextAll(spec); err != nil {
			return err
		}
	}
	base, err := net.AddMote(baseID, envirotrack.Pt(float64(cols-1), float64(rows)), nil)
	if err != nil {
		return err
	}

	midY := float64(rows-1) / 2
	traj := envirotrack.Line{
		Start: envirotrack.Pt(-sense, midY),
		Dir:   envirotrack.Vec(1, 0),
		Speed: speed,
	}
	target := &envirotrack.Target{
		Name: "target-1", Kind: kind,
		Traj: traj, SignatureRadius: sense,
	}
	net.AddTarget(target)

	fmt.Printf("field %dx%d, CR=%.1f SR=%.1f, target %.2f hops/s, %v simulated\n",
		cols, rows, radius, sense, speed, duration)

	session := net.RunSession(duration, baseID)
	for ev := range session.Events() {
		if m, ok := ev.Msg.Payload.(envirotrack.LangMessage); ok {
			fmt.Printf("%8.1fs  %-18s %v\n", ev.At.Seconds(), m.From, m.Values)
		}
	}
	if err := session.Wait(); err != nil {
		return err
	}
	_ = base

	sum := net.Ledger().Summarize(specs[0].Name)
	fmt.Printf("\nlabels created=%d takeovers=%d relinquishes=%d coherence violations=%d\n",
		sum.Created, sum.Takeovers, sum.Relinquish, sum.CoherenceViolations())
	fmt.Printf("link utilization %.2f%% of 50 kb/s\n",
		100*net.Stats().LinkUtilization(duration, 50_000))
	return nil
}
