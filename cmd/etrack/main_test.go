package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.et")
	src := `
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(2s)
        report_function() {
            send(base, self:label, location);
        }
    end
end context
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{path}, "8x2", 2.5, 1.6, 0.2, "vehicle", 15*time.Second, 1, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, "8x2", 2.5, 1.6, 0.2, "vehicle", time.Second, 1, time.Second); err == nil {
		t.Error("expected usage error")
	}
	path := filepath.Join(t.TempDir(), "prog.et")
	if err := os.WriteFile(path, []byte("begin context x activation: f() end context"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, "bogus", 2.5, 1.6, 0.2, "vehicle", time.Second, 1, time.Second); err == nil {
		t.Error("expected grid parse error")
	}
	if err := run([]string{path}, "8x2", 2.5, 1.6, 0.2, "vehicle", time.Second, 1, time.Second); err == nil {
		t.Error("expected compile error for unknown sensing function")
	}
}
