// Command etpre is the EnviroTrack preprocessor: it parses a context
// description file (the Section 4 declaration language) and either emits
// Go source that reconstructs the declared context types against the
// envirotrack API (the analogue of the paper's NesC emitter), checks the
// program, or pretty-prints it.
//
// Usage:
//
//	etpre program.et                  # emit Go to stdout
//	etpre -pkg tracker program.et     # choose the generated package name
//	etpre -o gen.go program.et        # write to a file
//	etpre -check program.et           # parse + semantic check only
//	etpre -fmt program.et             # canonical formatting to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"envirotrack"
)

func main() {
	var (
		pkg   = flag.String("pkg", "main", "generated package name")
		out   = flag.String("o", "", "output file (default stdout)")
		check = flag.Bool("check", false, "parse and semantically check only")
		doFmt = flag.Bool("fmt", false, "pretty-print the program instead of generating code")
	)
	flag.Parse()
	if err := run(flag.Args(), *pkg, *out, *check, *doFmt); err != nil {
		fmt.Fprintln(os.Stderr, "etpre:", err)
		os.Exit(1)
	}
}

func run(args []string, pkg, out string, check, doFmt bool) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: etpre [flags] <program.et>")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}

	switch {
	case check:
		// Semantic check against the builtin registries; destinations and
		// actions are checked for form only (bindings are runtime concerns).
		_, err := envirotrack.CompileContexts(string(src), envirotrack.CompileEnv{AllowUnbound: true})
		if err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case doFmt:
		formatted, err := envirotrack.FormatSource(string(src))
		if err != nil {
			return err
		}
		return emit(out, formatted)
	default:
		code, err := envirotrack.GenerateGo(string(src), pkg)
		if err != nil {
			return err
		}
		return emit(out, code)
	}
}

func emit(path, content string) error {
	if path == "" {
		fmt.Print(content)
		return nil
	}
	return os.WriteFile(path, []byte(content), 0o644)
}
