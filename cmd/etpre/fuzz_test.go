package main

import (
	"testing"

	"envirotrack"
)

// FuzzPreprocess drives the three preprocessor stages etpre exposes
// (-check semantic compilation, -fmt canonical formatting, and Go code
// generation) over arbitrary input. Malformed programs — unterminated
// begin context blocks above all — must come back as errors, never
// panics.
func FuzzPreprocess(f *testing.F) {
	seeds := []string{
		"",
		"begin context tracker\n    activation: magnetic_sensor_reading()\n    location : avg(position) confidence=2, freshness=1s\n    begin object reporter\n        invocation: TIMER(5s)\n        report_function() {\n            send(pursuer, self:label, location);\n        }\n    end\nend context\n",
		"begin context x",
		"begin context x\nactivation: unknown_sense()\nend context",
		"begin context x\nlocation : bogus_agg(position)\nend context",
		"begin context x\nbegin object o\ninvocation: CHANGE(location)\nm() { set_timer(1s); }\nend\nend context",
		"end context",
		"begin context a\nend context\nbegin context a\nend context",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	env := envirotrack.CompileEnv{AllowUnbound: true}
	f.Fuzz(func(t *testing.T, src string) {
		// -check path: permissive bindings, so only syntactic/semantic
		// errors in the program itself surface.
		if _, err := envirotrack.CompileContexts(src, env); err != nil {
			return // rejected cleanly; the other stages would reject too
		}
		// A compilable program must survive -fmt and code generation.
		if _, err := envirotrack.FormatSource(src); err != nil {
			t.Fatalf("compilable program fails FormatSource: %v\n%s", err, src)
		}
		if _, err := envirotrack.GenerateGo(src, "fuzz"); err != nil {
			t.Fatalf("compilable program fails GenerateGo: %v\n%s", err, src)
		}
	})
}
