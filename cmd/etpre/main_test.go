package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            send(pursuer, self:label, location);
        }
    end
end context
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.et")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGenerate(t *testing.T) {
	path := writeSample(t)
	out := filepath.Join(t.TempDir(), "gen.go")
	if err := run([]string{path}, "gen", out, false, false); err != nil {
		t.Fatal(err)
	}
	code, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "package gen") || !strings.Contains(string(code), "BuildContexts") {
		t.Errorf("generated code malformed:\n%s", code)
	}
}

func TestRunCheck(t *testing.T) {
	path := writeSample(t)
	if err := run([]string{path}, "main", "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckRejectsBadProgram(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.et")
	if err := os.WriteFile(path, []byte("begin context x activation: nope() end context"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, "main", "", true, false); err == nil {
		t.Error("expected semantic error")
	}
}

func TestRunFormat(t *testing.T) {
	path := writeSample(t)
	out := filepath.Join(t.TempDir(), "fmt.et")
	if err := run([]string{path}, "main", out, false, true); err != nil {
		t.Fatal(err)
	}
	formatted, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(formatted), "begin context tracker") {
		t.Errorf("formatted output malformed:\n%s", formatted)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil, "main", "", false, false); err == nil {
		t.Error("expected usage error with no arguments")
	}
	if err := run([]string{"/does/not/exist.et"}, "main", "", false, false); err == nil {
		t.Error("expected error for missing file")
	}
}
