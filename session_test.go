package envirotrack

import (
	"errors"
	"testing"
	"time"
)

func sessionNet(t *testing.T) *Network {
	t.Helper()
	n := buildNet(t)
	spec := trackerContext(100, nil)
	if err := n.AttachContextAll(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddMote(100, Pt(7, 3), nil); err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{
		Name: "tank", Kind: "vehicle",
		Traj: Stationary{At: Pt(3.5, 1)}, SignatureRadius: 1.6,
	})
	return n
}

func TestSessionStreamsEvents(t *testing.T) {
	n := sessionNet(t)
	s := n.RunSession(10*time.Second, 100)
	var events []Event
	for ev := range s.Events() {
		events = append(events, ev)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	for _, ev := range events {
		if ev.Node != 100 {
			t.Errorf("event from node %d, want 100", ev.Node)
		}
		if ev.At <= 0 || ev.At > 10*time.Second {
			t.Errorf("event at %v outside the run window", ev.At)
		}
	}
	// Events arrive in nondecreasing time order.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Error("events out of order")
		}
	}
	if n.Now() != 10*time.Second {
		t.Errorf("clock = %v, want 10s after session", n.Now())
	}
}

func TestSessionStop(t *testing.T) {
	n := sessionNet(t)
	s := n.RunSession(time.Hour, 100)
	got := 0
	for range s.Events() {
		got++
		if got == 3 {
			s.Stop()
		}
	}
	err := s.Wait()
	if !errors.Is(err, ErrSessionStopped) {
		t.Errorf("Wait = %v, want ErrSessionStopped", err)
	}
	if got < 3 {
		t.Errorf("events before stop = %d, want >= 3", got)
	}
	// Stop is idempotent and safe afterwards.
	s.Stop()
}

func TestSessionWithoutSubscribers(t *testing.T) {
	n := sessionNet(t)
	s := n.RunSession(2 * time.Second)
	for range s.Events() {
		t.Error("unexpected event with no subscribers")
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionBackpressure(t *testing.T) {
	// A slow consumer must not lose events: the simulation blocks on the
	// channel send.
	n := sessionNet(t)
	s := n.RunSession(10*time.Second, 100)
	var events []Event
	for ev := range s.Events() {
		events = append(events, ev)
		time.Sleep(time.Millisecond) // slow consumer
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 5 {
		t.Errorf("events = %d, want the full report stream", len(events))
	}
}
