package group

import (
	"envirotrack/internal/geom"
	"envirotrack/internal/radio"
)

// Label identifies a context label: the persistent logical address of a
// tracked entity. Labels are unique strings minted by the creating mote.
type Label string

// Heartbeat is the leader's periodic announcement (Section 5.2). It floods
// the sensor group and propagates HopsPast hops beyond the perimeter to
// warn nearby nodes that the context label exists. Weight is the number of
// member messages the leadership has received to date and suppresses
// spurious labels. State carries the label's persistent application state
// so a new leader can resume the computation of a failed one.
type Heartbeat struct {
	CtxType   string
	Label     Label
	Leader    radio.NodeID
	LeaderLoc geom.Point // the leader's position (nodes are location-aware)
	Weight    uint64
	Seq       uint64
	HopsPast  int
	State     []byte
}

// Report is a member's periodic measurement message to its leader, sent at
// the data-collection period Pe = Le - d. Payload is owned by the
// middleware layer (sensor samples for the aggregate state variables).
type Report struct {
	CtxType  string
	Label    Label
	Reporter radio.NodeID
	Payload  any
}

// Relinquish is broadcast by a leader that no longer senses the tracked
// event, explicitly handing leadership to a recently reporting member.
type Relinquish struct {
	CtxType   string
	Label     Label
	OldLeader radio.NodeID
	NewLeader radio.NodeID
	Weight    uint64
	State     []byte
}
