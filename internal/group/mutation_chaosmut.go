//go:build chaosmut

package group

// mutationSuppressYield: under the chaosmut build tag the same-label
// yield rule is suppressed, so dual leadership created by a takeover
// never resolves. This build exists solely to prove the invariant
// checker trips (TestMutationTripsDualLeader); it must never ship in a
// nominal binary.
const mutationSuppressYield = true
