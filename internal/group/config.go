package group

import (
	"time"

	"envirotrack/internal/radio"
)

// Default protocol timing, following Section 6.2: "best results are
// achieved when the receive and wait timers are set to 2.1 and 4.2 times
// the leader heartbeat period respectively".
const (
	DefaultHeartbeatPeriod = 500 * time.Millisecond
	DefaultReceiveFactor   = 2.1
	DefaultWaitFactor      = 4.2
	DefaultHopsPast        = 1
	DefaultHeartbeatBits   = 48 * 8
	DefaultReportBits      = 40 * 8
)

// Config parameterizes the group-management protocol for one context type.
type Config struct {
	// HeartbeatPeriod is the leader's announcement period.
	HeartbeatPeriod time.Duration
	// ReceiveFactor scales the member receive timer that triggers
	// leadership takeover (default 2.1: two missed heartbeats).
	ReceiveFactor float64
	// WaitFactor scales the non-member wait timer that decides between
	// joining an existing label and spawning a new one (default 4.2).
	WaitFactor float64
	// HopsPast is h: how many hops beyond the group perimeter heartbeats
	// are flooded. Zero relies on the communication radius alone.
	HopsPast int
	// ReportPeriod is the member data-collection period Pe. Zero means
	// the heartbeat period.
	ReportPeriod time.Duration
	// DisableRelinquish turns off the explicit leadership-relinquish
	// optimization; recovery then relies on receive-timer takeover alone
	// (the "worst case" mode of Figure 5).
	DisableRelinquish bool
	// CreationBackoff is the random delay before a freshly sensing node
	// with no known label creates one, giving in-flight heartbeats a
	// chance to arrive. Zero means half the heartbeat period.
	CreationBackoff time.Duration
	// JitterFrac randomizes the receive timer by up to this fraction to
	// desynchronize simultaneous takeovers (default 0.1).
	JitterFrac float64
	// FloodJitter is the maximum random delay a node waits before
	// re-broadcasting a flooded heartbeat. Without it, all members
	// rebroadcast at the same instant and the copies collide at every
	// receiver (a broadcast storm). The window is sized to fit several
	// frame airtimes so suppression can observe earlier copies.
	// Default 100ms.
	FloodJitter time.Duration
	// FloodSuppress is the counter-based broadcast-storm suppression
	// threshold: a node cancels its pending rebroadcast after overhearing
	// this many copies of the same heartbeat during its jitter window
	// ("a single message transmission may be enough to flood the group").
	// Default 1: one overheard relay proves the neighborhood is covered.
	FloodSuppress int
	// WeightSlack is the tolerance band for comparing leader weights of
	// *different* labels of the same type. Weights are observed through
	// heartbeats and hence stale; two groups tracking the same entity can
	// leapfrog each other's weight forever. Within the band the label
	// identity breaks the tie globally consistently, guaranteeing merge.
	// Default 4.
	WeightSlack int
	// HeartbeatBits and ReportBits size the frames on the air.
	HeartbeatBits int
	ReportBits    int
}

func (c Config) withDefaults() Config {
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = DefaultHeartbeatPeriod
	}
	if c.ReceiveFactor <= 0 {
		c.ReceiveFactor = DefaultReceiveFactor
	}
	if c.WaitFactor <= 0 {
		c.WaitFactor = DefaultWaitFactor
	}
	if c.HopsPast < 0 {
		c.HopsPast = 0
	}
	if c.ReportPeriod <= 0 {
		c.ReportPeriod = c.HeartbeatPeriod
	}
	if c.CreationBackoff <= 0 {
		c.CreationBackoff = c.HeartbeatPeriod / 2
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.1
	}
	if c.WeightSlack <= 0 {
		c.WeightSlack = 4
	}
	if c.FloodJitter <= 0 {
		c.FloodJitter = 100 * time.Millisecond
	}
	if c.FloodSuppress <= 0 {
		c.FloodSuppress = 1
	}
	if c.HeartbeatBits <= 0 {
		c.HeartbeatBits = DefaultHeartbeatBits
	}
	if c.ReportBits <= 0 {
		c.ReportBits = DefaultReportBits
	}
	return c
}

// receiveTimeout returns the member receive-timer duration with jitter
// drawn from r in [0, JitterFrac).
func (c Config) receiveTimeout(jitter float64) time.Duration {
	d := float64(c.HeartbeatPeriod) * c.ReceiveFactor * (1 + c.JitterFrac*jitter)
	return time.Duration(d)
}

// waitTimeout returns the non-member wait-timer duration.
func (c Config) waitTimeout() time.Duration {
	return time.Duration(float64(c.HeartbeatPeriod) * c.WaitFactor)
}

// Role describes a mote's relationship to a context type's group.
type Role int

// Roles a mote can hold for a context type.
const (
	RoleNone Role = iota + 1
	RoleMember
	RoleLeader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleMember:
		return "member"
	case RoleLeader:
		return "leader"
	default:
		return "invalid"
	}
}

// Callbacks connect the group manager to the middleware layer above it.
// Any field may be nil.
type Callbacks struct {
	// ReportPayload supplies the member's current measurements for the
	// periodic report to the leader.
	ReportPayload func() any
	// OnReport delivers a member report to the leader's aggregation logic.
	OnReport func(from radio.NodeID, payload any)
	// OnBecomeLeader fires when this mote assumes leadership of a label,
	// with the label's persistent state (nil for a fresh label).
	OnBecomeLeader func(label Label, state []byte)
	// OnLoseLeadership fires when this mote stops leading a label for any
	// reason (yield, deletion, relinquish, leaving).
	OnLoseLeadership func(label Label)
	// OnLabelDeleted fires when this mote deletes its own spurious label
	// after hearing a heavier same-type leader (weight suppression). The
	// middleware uses it to withdraw directory registrations.
	OnLabelDeleted func(label Label)
}
