// Package group implements EnviroTrack's group management protocol
// (Section 5.2): the lightweight, consistency-free maintenance of context
// labels over a dynamic sensor group. Leaders send periodic heartbeats that
// flood the group and propagate h hops past its perimeter; members arm
// receive timers that trigger leadership takeover; non-members arm wait
// timers that make them join existing labels instead of spawning new ones;
// leader weights (member messages received to date) suppress spurious
// labels; and an explicit relinquish mechanism hands leadership over when
// the leader stops sensing the tracked event.
//
// The manager is heartbeat-churn heavy (every heartbeat heard re-arms the
// member receive timer and may schedule a jittered rebroadcast), so the
// per-heartbeat path is allocation-free: timer callbacks are precomputed
// once at construction, dedup keys are built in a scratch buffer and only
// materialized as map keys on first sight of a (label, leader) pair, and
// pending rebroadcast records are pooled on a per-manager free list.
package group

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// Manager runs the group-management protocol for one context type on one
// mote. It is driven by the simulation scheduler via the mote's frame
// handlers and its own timers.
type Manager struct {
	m       *mote.Mote
	ctxType string
	cfg     Config
	cb      Callbacks
	ledger  *trace.Ledger

	sensing bool
	role    Role
	label   Label

	// Leader state.
	weight    uint64
	state     []byte
	hbSeq     uint64
	hbTimer   simtime.Timer
	reporters map[radio.NodeID]time.Duration // member -> last report time

	// Member state.
	leaderID     radio.NodeID
	lastWeight   uint64
	lastState    []byte
	receiveTimer simtime.Timer
	reportTicker *simtime.Ticker
	reportDelay  simtime.Timer

	// Non-member state: memory of a nearby label.
	waitTimer  simtime.Timer
	waitLabel  Label
	waitLeader radio.NodeID
	waitWeight uint64
	waitState  []byte

	// Label-creation backoff.
	creationTimer simtime.Timer
	labelSeq      int

	// seen tracks, per (label, leader) flood key, the highest heartbeat Seq
	// received and any pending jittered rebroadcast awaiting its timer.
	seen map[string]*hbState
	// keyBuf is the scratch buffer flood keys are assembled in, so the map
	// lookup on the heartbeat hot path allocates nothing; the key string is
	// materialized only when a (label, leader) pair is first seen.
	keyBuf []byte

	// pfFree is the pendingForward free list (intrusive via next).
	pfFree *pendingForward

	// Timer callbacks are constructed once here rather than per arm, so the
	// steady-state heartbeat/report/creation cycles schedule without
	// allocating closures.
	hbFire       simtime.Callback
	recvFire     simtime.Callback
	creationFire simtime.Callback
	reportFirst  simtime.Callback
	reportTick   simtime.Callback
}

// hbState is the per-(label, leader) flood bookkeeping.
type hbState struct {
	seq uint64          // highest heartbeat Seq received
	pf  *pendingForward // scheduled rebroadcast, nil when none pending
}

// pendingForward is a jittered heartbeat rebroadcast awaiting its timer;
// duplicate receptions during the wait increment dups and may suppress it.
// Records are pooled: fired or superseded forwards return to the manager's
// free list.
type pendingForward struct {
	g     *Manager
	st    *hbState
	seq   uint64
	dups  int
	hb    Heartbeat  // copy to rebroadcast, HopsPast already decremented
	corr  radio.Corr // original correlation header, preserved verbatim
	timer simtime.Timer
	next  *pendingForward
}

// noopFire backs the wait timer, which only needs Pending() observation.
var noopFire simtime.Callback = func() {}

// NewManager attaches a group manager for ctxType to the mote. The ledger
// may be nil to disable coherence tracing.
func NewManager(m *mote.Mote, ctxType string, cfg Config, cb Callbacks, ledger *trace.Ledger) *Manager {
	g := &Manager{
		m:         m,
		ctxType:   ctxType,
		cfg:       cfg.withDefaults(),
		cb:        cb,
		ledger:    ledger,
		role:      RoleNone,
		reporters: make(map[radio.NodeID]time.Duration),
		seen:      make(map[string]*hbState),
	}
	g.hbFire = func() {
		if g.m.Failed() || g.role != RoleLeader {
			return
		}
		g.sendHeartbeat()
		g.scheduleNextHeartbeat()
	}
	g.recvFire = g.onReceiveTimeout
	g.creationFire = func() {
		if g.m.Failed() || !g.sensing || g.role != RoleNone {
			return
		}
		if g.waitTimer.Pending() {
			g.joinWaitedLabel()
			return
		}
		g.createLabel()
	}
	g.reportFirst = func() {
		if g.m.Failed() || g.role != RoleMember {
			return
		}
		g.sendReport()
		g.startReportTicker()
	}
	g.reportTick = func() {
		if g.m.Failed() || g.role != RoleMember {
			return
		}
		g.sendReport()
	}
	m.AddFrameHandler(g.handleFrame)
	return g
}

// Role returns the mote's current role for this context type.
func (g *Manager) Role() Role { return g.role }

// Label returns the context label the mote currently participates in
// (empty when RoleNone).
func (g *Manager) Label() Label { return g.label }

// LeaderID returns the last known leader of the mote's label.
func (g *Manager) LeaderID() radio.NodeID {
	if g.role == RoleLeader {
		return g.m.ID()
	}
	return g.leaderID
}

// Weight returns the leader weight (meaningful when leading).
func (g *Manager) Weight() uint64 { return g.weight }

// Sensing returns the last sensing state supplied via SetSensing.
func (g *Manager) Sensing() bool { return g.sensing }

// CtxType returns the context type this manager maintains.
func (g *Manager) CtxType() string { return g.ctxType }

// SetState updates the label's persistent state; it is piggybacked on
// subsequent heartbeats so that a successor leader resumes from it. Only a
// leader may set state; other calls are ignored.
func (g *Manager) SetState(state []byte) {
	if g.role != RoleLeader {
		return
	}
	g.state = append([]byte(nil), state...)
}

// State returns the current persistent state known for the label.
func (g *Manager) State() []byte {
	switch g.role {
	case RoleLeader:
		return g.state
	case RoleMember:
		return g.lastState
	default:
		return nil
	}
}

// Stop tears down all timers (end of simulation cleanup).
func (g *Manager) Stop() {
	g.stopLeaderDuties()
	g.stopMemberDuties()
	g.stopTimer(&g.waitTimer)
	g.stopTimer(&g.creationTimer)
}

// SetSensing informs the manager of the mote's current sensee() evaluation.
// The middleware calls it on every sensing scan; no-change calls are cheap.
func (g *Manager) SetSensing(sensing bool) {
	if g.m.Failed() || sensing == g.sensing {
		return
	}
	g.sensing = sensing
	if h, i := g.m.Hot(); h != nil {
		h.SetSensing(i, g.ctxType, sensing)
	}
	if sensing {
		g.onStartSensing()
	} else {
		g.onStopSensing()
	}
}

func (g *Manager) onStartSensing() {
	if g.role != RoleNone {
		return
	}
	// A nearby label is remembered: join it rather than spawning a new one.
	if g.waitTimer.Pending() {
		g.joinWaitedLabel()
		return
	}
	// Otherwise back off briefly in case a heartbeat is in flight, then
	// create a fresh label.
	if g.creationTimer.Pending() {
		return
	}
	backoff := time.Duration(g.m.Rand().Float64() * float64(g.cfg.CreationBackoff))
	g.creationTimer = g.m.Scheduler().AfterOwned(backoff, simtime.OwnerGroup, g.creationFire)
}

func (g *Manager) onStopSensing() {
	switch g.role {
	case RoleLeader:
		g.leaderStepDown()
	case RoleMember:
		g.leaveMembership()
	default:
		g.stopTimer(&g.creationTimer)
	}
}

// --- label creation and leadership ---

func (g *Manager) createLabel() {
	g.labelSeq++
	label := Label(fmt.Sprintf("%s/%d.%d", g.ctxType, g.m.ID(), g.labelSeq))
	g.recordEvent(trace.LabelCreated, label)
	g.becomeLeader(label, 0, nil)
}

func (g *Manager) becomeLeader(label Label, weight uint64, state []byte) {
	g.stopMemberDuties()
	g.stopTimer(&g.waitTimer)
	g.stopTimer(&g.creationTimer)

	g.setRole(RoleLeader)
	g.label = label
	g.weight = weight
	g.state = state
	g.reporters = make(map[radio.NodeID]time.Duration)

	if g.cb.OnBecomeLeader != nil {
		g.cb.OnBecomeLeader(label, state)
	}
	g.sendHeartbeat()
	g.scheduleNextHeartbeat()
}

// scheduleNextHeartbeat arms the next heartbeat with a small symmetric
// jitter so that leaders created at the same instant (a target appearing
// over several motes at once) do not collide in lockstep forever.
func (g *Manager) scheduleNextHeartbeat() {
	jitter := 1 + g.cfg.JitterFrac*(g.m.Rand().Float64()-0.5)
	d := time.Duration(float64(g.cfg.HeartbeatPeriod) * jitter)
	g.hbTimer = g.m.Scheduler().AfterOwned(d, simtime.OwnerGroup, g.hbFire)
}

func (g *Manager) sendHeartbeat() {
	g.hbSeq++
	hb := Heartbeat{
		CtxType:   g.ctxType,
		Label:     g.label,
		Leader:    g.m.ID(),
		LeaderLoc: g.m.Pos(),
		Weight:    g.weight,
		Seq:       g.hbSeq,
		HopsPast:  g.cfg.HopsPast,
		State:     g.state,
	}
	corr := radio.Corr{Origin: int32(g.m.ID()), Seq: g.m.NextCorrSeq()}
	g.m.BroadcastTraced(trace.KindHeartbeat, g.cfg.HeartbeatBits+len(g.state)*8, hb, corr)
	g.emit(obs.EvHeartbeatSent, g.label, radio.Broadcast, g.hbSeq)
}

// leaderStepDown handles a leader that stopped sensing: explicit
// relinquish when enabled, silent departure otherwise.
func (g *Manager) leaderStepDown() {
	label, weight, state := g.label, g.weight, g.state
	successor := radio.Broadcast
	if !g.cfg.DisableRelinquish {
		if s, ok := g.pickSuccessor(); ok {
			successor = s
			g.m.Broadcast(trace.KindRelinquish, g.cfg.HeartbeatBits+len(state)*8, Relinquish{
				CtxType:   g.ctxType,
				Label:     label,
				OldLeader: g.m.ID(),
				NewLeader: successor,
				Weight:    weight,
				State:     state,
			})
		}
	}
	g.emit(obs.EvLeaderStepDown, label, successor, 0)
	g.loseLeadership()
	// Remember the label so that re-sensing rejoins rather than respawns.
	g.rememberLabel(label, radio.Broadcast, weight, state)
}

// pickSuccessor chooses the member with the most recent report (ties broken
// by lowest id) that reported within two report periods.
func (g *Manager) pickSuccessor() (radio.NodeID, bool) {
	horizon := g.m.Scheduler().Now() - 2*g.cfg.ReportPeriod
	best := radio.NodeID(-1)
	var bestAt time.Duration = -1
	for id, at := range g.reporters {
		if at < horizon {
			continue
		}
		if at > bestAt || (at == bestAt && (best < 0 || id < best)) {
			best, bestAt = id, at
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func (g *Manager) loseLeadership() {
	label := g.label
	g.stopLeaderDuties()
	g.setRole(RoleNone)
	g.label = ""
	if g.cb.OnLoseLeadership != nil {
		g.cb.OnLoseLeadership(label)
	}
}

func (g *Manager) stopLeaderDuties() {
	g.stopTimer(&g.hbTimer)
}

// --- membership ---

func (g *Manager) joinWaitedLabel() {
	g.stopTimer(&g.creationTimer)
	label, leader, weight, state := g.waitLabel, g.waitLeader, g.waitWeight, g.waitState
	g.stopTimer(&g.waitTimer)
	g.becomeMember(label, leader, weight, state)
}

func (g *Manager) becomeMember(label Label, leader radio.NodeID, weight uint64, state []byte) {
	wasLeader := g.role == RoleLeader
	if wasLeader {
		oldLabel := g.label
		g.stopLeaderDuties()
		if g.cb.OnLoseLeadership != nil {
			g.cb.OnLoseLeadership(oldLabel)
		}
	}
	g.stopTimer(&g.waitTimer)
	g.stopTimer(&g.creationTimer)

	g.setRole(RoleMember)
	g.label = label
	g.leaderID = leader
	g.lastWeight = weight
	g.lastState = state
	g.emit(obs.EvLabelJoined, label, leader, 0)
	g.armReceiveTimer()
	g.startReporting()
}

func (g *Manager) armReceiveTimer() {
	g.receiveTimer.Stop()
	d := g.cfg.receiveTimeout(g.m.Rand().Float64())
	g.receiveTimer = g.m.Scheduler().AfterOwned(d, simtime.OwnerGroup, g.recvFire)
}

func (g *Manager) onReceiveTimeout() {
	if g.m.Failed() || g.role != RoleMember {
		return
	}
	g.emit(obs.EvReceiveTimerFired, g.label, g.leaderID, 0)
	label, weight, state := g.label, g.lastWeight, g.lastState
	if !g.sensing {
		g.leaveMembership()
		return
	}
	// Leadership takeover: continue the same label with the inherited
	// weight and persistent state.
	g.stopMemberDuties()
	g.recordEvent(trace.LabelTakeover, label)
	g.becomeLeader(label, weight, state)
}

func (g *Manager) startReporting() {
	g.stopReporting()
	// Desynchronize members: first report after a random fraction of the
	// report period, then periodic.
	first := time.Duration(g.m.Rand().Float64() * float64(g.cfg.ReportPeriod))
	g.reportDelay = g.m.Scheduler().AfterOwned(first, simtime.OwnerGroup, g.reportFirst)
}

// startReportTicker begins the periodic report cycle, reusing the ticker
// object across membership episodes.
func (g *Manager) startReportTicker() {
	if g.reportTicker == nil {
		g.reportTicker = simtime.NewTickerOwned(g.m.Scheduler(), g.cfg.ReportPeriod, simtime.OwnerGroup, g.reportTick)
	} else {
		g.reportTicker.Reset(g.cfg.ReportPeriod)
	}
}

func (g *Manager) sendReport() {
	var payload any
	if g.cb.ReportPayload != nil {
		payload = g.cb.ReportPayload()
	}
	rep := Report{CtxType: g.ctxType, Label: g.label, Reporter: g.m.ID(), Payload: payload}
	// Member readings are single-hop (no router involved), so the manager
	// opens the report span itself; the leader's accept/reject closes it.
	corr := radio.Corr{Origin: int32(g.m.ID()), Seq: g.m.NextCorrSeq()}
	g.emitCorr(obs.EvReportSent, g.leaderID, g.label, corr, "")
	g.m.SendTraced(trace.KindReading, g.leaderID, g.cfg.ReportBits, rep, corr)
}

func (g *Manager) stopReporting() {
	g.stopTimer(&g.reportDelay)
	if g.reportTicker != nil {
		g.reportTicker.Stop()
	}
}

func (g *Manager) leaveMembership() {
	label, weight, state := g.label, g.lastWeight, g.lastState
	g.stopMemberDuties()
	g.setRole(RoleNone)
	g.label = ""
	// Keep memory of the label so a quick re-sense rejoins it.
	g.rememberLabel(label, g.leaderID, weight, state)
}

func (g *Manager) stopMemberDuties() {
	g.stopTimer(&g.receiveTimer)
	g.stopReporting()
}

// rememberLabel stores wait-timer memory of a nearby label.
func (g *Manager) rememberLabel(label Label, leader radio.NodeID, weight uint64, state []byte) {
	g.emit(obs.EvWaitTimerArmed, label, leader, 0)
	g.waitLabel = label
	g.waitLeader = leader
	g.waitWeight = weight
	g.waitState = state
	g.waitTimer.Stop()
	g.waitTimer = g.m.Scheduler().AfterOwned(g.cfg.waitTimeout(), simtime.OwnerGroup, noopFire)
}

// setRole records a role transition, mirroring it into the mote's
// hot-state membership word (the bit is set whenever the manager holds any
// role, which is what the group_size series probe counts).
func (g *Manager) setRole(r Role) {
	g.role = r
	if h, i := g.m.Hot(); h != nil {
		h.SetMember(i, g.ctxType, r != RoleNone)
	}
}

// stopTimer cancels a timer and resets the handle to the inert zero value.
func (g *Manager) stopTimer(t *simtime.Timer) {
	t.Stop()
	*t = simtime.Timer{}
}

// --- frame handling ---

func (g *Manager) handleFrame(f radio.Frame) bool {
	switch msg := f.Payload.(type) {
	case Heartbeat:
		if msg.CtxType != g.ctxType {
			return false
		}
		g.onHeartbeat(msg, f.Corr)
		return true
	case Report:
		if msg.CtxType != g.ctxType {
			return false
		}
		g.onReport(msg, f.Corr)
		return true
	case Relinquish:
		if msg.CtxType != g.ctxType {
			return false
		}
		g.onRelinquish(msg)
		return true
	default:
		return false
	}
}

func (g *Manager) onHeartbeat(hb Heartbeat, corr radio.Corr) {
	// Deduplicate flood copies; duplicates feed the broadcast-storm
	// suppression counter of a pending rebroadcast. The flood key
	// "<label>/<leader>" is assembled in the scratch buffer; Go's
	// map-lookup-by-converted-byte-slice idiom keeps the common
	// already-seen path allocation-free.
	b := append(g.keyBuf[:0], hb.Label...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(hb.Leader), 10)
	g.keyBuf = b
	st, ok := g.seen[string(b)]
	if ok && hb.Seq <= st.seq {
		if st.pf != nil && st.pf.seq == hb.Seq {
			st.pf.dups++
		}
		return
	}
	if !ok {
		st = &hbState{}
		g.seen[string(b)] = st
	}
	st.seq = hb.Seq

	g.forwardHeartbeat(st, hb, corr)

	switch g.role {
	case RoleLeader:
		g.leaderOnHeartbeat(hb)
	case RoleMember:
		g.memberOnHeartbeat(hb)
	default:
		g.idleOnHeartbeat(hb)
	}
}

// forwardHeartbeat implements the h-hop heartbeat propagation: the
// leader's single broadcast is normally enough to flood the group (the
// sensors in a group are physically close), and each additional hop of
// propagation past that consumes one unit of the HopsPast budget — h=0
// means no relaying at all, which is exactly the Figure 4 setting where
// handovers start to fail. Rebroadcasts are jittered, and counter-based
// broadcast-storm suppression cancels a pending rebroadcast when enough
// copies are overheard first.
func (g *Manager) forwardHeartbeat(st *hbState, hb Heartbeat, corr radio.Corr) {
	if hb.Leader == g.m.ID() {
		return
	}
	if hb.HopsPast <= 0 {
		return
	}
	if old := st.pf; old != nil {
		// A newer heartbeat supersedes the older pending rebroadcast.
		old.timer.Stop()
		st.pf = nil
		g.recyclePF(old)
	}
	pf := g.acquirePF()
	pf.g = g
	pf.st = st
	pf.seq = hb.Seq
	pf.dups = 0
	pf.hb = hb
	pf.hb.HopsPast = hb.HopsPast - 1
	pf.corr = corr
	delay := time.Duration(g.m.Rand().Float64() * float64(g.cfg.FloodJitter))
	pf.timer = g.m.Scheduler().AfterEventTimerOwned(delay, simtime.OwnerGroup, pendingForwardFire, pf)
	st.pf = pf
}

// pendingForwardFire runs a jittered rebroadcast when its timer expires.
// It is a package-level EventFunc so scheduling it captures nothing.
func pendingForwardFire(arg any) {
	pf := arg.(*pendingForward)
	g := pf.g
	pf.st.pf = nil
	if g.m.Failed() {
		g.recyclePF(pf)
		return
	}
	if pf.dups >= g.cfg.FloodSuppress {
		g.emit(obs.EvHeartbeatSuppressed, pf.hb.Label, pf.hb.Leader, pf.hb.Seq)
		g.recyclePF(pf)
		return
	}
	label, leader, seq := pf.hb.Label, pf.hb.Leader, pf.hb.Seq
	bits := g.cfg.HeartbeatBits + len(pf.hb.State)*8
	fwd, corr := pf.hb, pf.corr
	g.recyclePF(pf)
	g.m.BroadcastTraced(trace.KindHeartbeat, bits, fwd, corr)
	g.emit(obs.EvHeartbeatForwarded, label, leader, seq)
}

func (g *Manager) acquirePF() *pendingForward {
	if pf := g.pfFree; pf != nil {
		g.pfFree = pf.next
		pf.next = nil
		return pf
	}
	return &pendingForward{}
}

func (g *Manager) recyclePF(pf *pendingForward) {
	pf.st = nil
	pf.hb = Heartbeat{}
	pf.corr = radio.Corr{}
	pf.timer = simtime.Timer{}
	pf.next = g.pfFree
	g.pfFree = pf
}

// outranks reports whether the (weight, id) pair of a foreign leadership
// beats ours. Equal weights are broken by comparing the decimal string
// renderings of the ids — the protocol's historical lexical tiebreak —
// without materializing the strings.
func outranks(otherWeight, myWeight uint64, other, mine radio.NodeID) bool {
	if otherWeight != myWeight {
		return otherWeight > myWeight
	}
	var ob, mb [20]byte
	return bytes.Compare(strconv.AppendInt(ob[:0], int64(other), 10),
		strconv.AppendInt(mb[:0], int64(mine), 10)) > 0
}

// foreignOutranks decides between two *different* labels of the same
// context type. Weights observed via heartbeats are stale, so two groups
// around the same entity can leapfrog each other's weight indefinitely;
// within a slack band the label identity breaks the tie, which is a
// globally consistent order and therefore guarantees the groups merge.
func (g *Manager) foreignOutranks(otherWeight, myWeight uint64, otherLabel, myLabel Label) bool {
	slack := uint64(g.cfg.WeightSlack)
	switch {
	case otherWeight > myWeight+slack:
		return true
	case myWeight > otherWeight+slack:
		return false
	default:
		return otherLabel > myLabel
	}
}

func (g *Manager) leaderOnHeartbeat(hb Heartbeat) {
	if hb.Label == g.label {
		if hb.Leader == g.m.ID() {
			return
		}
		// Two leaders within one context label: the lower-priority one
		// yields immediately to prevent redundant behavior. (The chaosmut
		// build suppresses the yield to prove the invariant checker.)
		if !mutationSuppressYield && outranks(hb.Weight, g.weight, hb.Leader, g.m.ID()) {
			g.recordEvent(trace.LabelYield, g.label)
			g.becomeMember(hb.Label, hb.Leader, hb.Weight, hb.State)
		}
		return
	}
	// A different label of the same type: the smaller-weight label is
	// spurious — delete it and join the heavier group.
	if g.foreignOutranks(hb.Weight, g.weight, hb.Label, g.label) {
		g.recordEvent(trace.LabelDeleted, g.label)
		if g.cb.OnLabelDeleted != nil {
			g.cb.OnLabelDeleted(g.label)
		}
		if g.sensing {
			g.becomeMember(hb.Label, hb.Leader, hb.Weight, hb.State)
		} else {
			g.loseLeadership()
			g.rememberLabel(hb.Label, hb.Leader, hb.Weight, hb.State)
		}
	}
}

func (g *Manager) memberOnHeartbeat(hb Heartbeat) {
	if hb.Label == g.label {
		g.leaderID = hb.Leader
		g.lastWeight = hb.Weight
		g.lastState = hb.State
		g.armReceiveTimer()
		return
	}
	// Prefer the heavier label (ignore leaders with smaller weight).
	if g.foreignOutranks(hb.Weight, g.lastWeight, hb.Label, g.label) {
		g.becomeMember(hb.Label, hb.Leader, hb.Weight, hb.State)
	}
}

func (g *Manager) idleOnHeartbeat(hb Heartbeat) {
	// Remember the nearest (heaviest) label; if we sense the condition
	// before the wait timer expires we join instead of spawning.
	if g.waitTimer.Pending() && hb.Label != g.waitLabel &&
		!g.foreignOutranks(hb.Weight, g.waitWeight, hb.Label, g.waitLabel) {
		return
	}
	g.rememberLabel(hb.Label, hb.Leader, hb.Weight, hb.State)
	if g.sensing {
		// Sensing during creation backoff: join right away.
		g.joinWaitedLabel()
	}
}

func (g *Manager) onReport(rep Report, corr radio.Corr) {
	if g.role != RoleLeader || rep.Label != g.label {
		// The reading reached a mote that is not (or no longer) the leader
		// of its label — a handover or step-down raced the report cycle.
		if corr.Seq != 0 {
			g.emitCorr(obs.EvRouteDropped, rep.Reporter, rep.Label, corr, "stale_leader")
		}
		return
	}
	if corr.Seq != 0 {
		g.emitCorr(obs.EvRouteDelivered, rep.Reporter, rep.Label, corr, "")
	}
	g.weight++
	g.reporters[rep.Reporter] = g.m.Scheduler().Now()
	if g.cb.OnReport != nil {
		g.cb.OnReport(rep.Reporter, rep.Payload)
	}
}

func (g *Manager) onRelinquish(rel Relinquish) {
	if rel.NewLeader == g.m.ID() && g.sensing && g.role != RoleLeader {
		g.recordEvent(trace.LabelRelinquish, rel.Label)
		g.becomeLeader(rel.Label, rel.Weight, rel.State)
		return
	}
	if g.role == RoleMember && rel.Label == g.label {
		// Expect the successor's heartbeat shortly; refresh our view.
		g.leaderID = rel.NewLeader
		g.lastWeight = rel.Weight
		g.lastState = rel.State
		g.armReceiveTimer()
	}
}

func (g *Manager) recordEvent(ty trace.LabelEventType, label Label) {
	if ev, ok := labelObsEvents[ty]; ok {
		g.emit(ev, label, radio.Broadcast, 0)
	}
	if g.ledger == nil {
		return
	}
	g.ledger.Record(trace.LabelEvent{
		At:      g.m.Scheduler().Now(),
		Type:    ty,
		Label:   string(label),
		CtxType: g.ctxType,
		Mote:    int(g.m.ID()),
	})
}

// labelObsEvents maps ledger label events onto the observability taxonomy,
// so every coherence-relevant transition also reaches the event bus.
var labelObsEvents = map[trace.LabelEventType]obs.EventType{
	trace.LabelCreated:    obs.EvLabelCreated,
	trace.LabelTakeover:   obs.EvLabelTakeover,
	trace.LabelRelinquish: obs.EvLabelRelinquish,
	trace.LabelYield:      obs.EvLabelYield,
	trace.LabelDeleted:    obs.EvLabelDeleted,
}

// emitCorr publishes one report-lifecycle event for a member reading,
// carrying the reading's correlation key so the span assembler can stitch
// it to the radio frames.
func (g *Manager) emitCorr(ev obs.EventType, peer radio.NodeID, label Label, corr radio.Corr, cause string) {
	if bus := g.m.Obs(); bus.Active() {
		bus.Emit(obs.Event{
			At:      g.m.Scheduler().Now(),
			Type:    ev,
			Mote:    int(g.m.ID()),
			Peer:    int(peer),
			CtxType: g.ctxType,
			Pos:     g.m.Pos(),
			Kind:    trace.KindReading,
			Cause:   cause,
			Label:   string(label),
			Origin:  int(corr.Origin),
			Seq:     uint64(corr.Seq),
		})
	}
}

// emit publishes one group-protocol event. peer is the other mote involved
// (heartbeat origin, known leader, chosen successor) or radio.Broadcast
// when there is none.
func (g *Manager) emit(ev obs.EventType, label Label, peer radio.NodeID, seq uint64) {
	if bus := g.m.Obs(); bus.Active() {
		bus.Emit(obs.Event{
			At:      g.m.Scheduler().Now(),
			Type:    ev,
			Mote:    int(g.m.ID()),
			Peer:    int(peer),
			Label:   string(label),
			CtxType: g.ctxType,
			Pos:     g.m.Pos(),
			Seq:     seq,
		})
	}
}
