//go:build !chaosmut

package group

// protocolMutated lets nominal-protocol assertions skip under the
// -tags chaosmut mutation build (where the same-label yield rule is
// deliberately disabled).
const protocolMutated = false
