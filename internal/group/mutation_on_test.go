//go:build chaosmut

package group

const protocolMutated = true
