package group

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/mote"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// testNet wires motes with group managers on a loss-free medium.
type testNet struct {
	sched  *simtime.Scheduler
	medium *radio.Medium
	stats  *trace.Stats
	ledger *trace.Ledger
	rng    *rand.Rand
	motes  map[radio.NodeID]*mote.Mote
	mgrs   map[radio.NodeID]*Manager
}

func newTestNet(t *testing.T, commRadius float64) *testNet {
	t.Helper()
	sched := simtime.NewScheduler()
	var stats trace.Stats
	rng := rand.New(rand.NewSource(11))
	return &testNet{
		sched:  sched,
		medium: radio.New(sched, radio.Params{CommRadius: commRadius}, rng, &stats),
		stats:  &stats,
		ledger: &trace.Ledger{},
		rng:    rng,
		motes:  make(map[radio.NodeID]*mote.Mote),
		mgrs:   make(map[radio.NodeID]*Manager),
	}
}

func (n *testNet) add(t *testing.T, id radio.NodeID, pos geom.Point, cfg Config, cb Callbacks) *Manager {
	t.Helper()
	m, err := mote.New(id, pos, n.sched, n.medium, phenomena.NewField(), nil, mote.Config{}, n.rng, n.stats)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(m, "tracker", cfg, cb, n.ledger)
	n.motes[id] = m
	n.mgrs[id] = mgr
	return mgr
}

// senseAt schedules a SetSensing call at virtual time at.
func (n *testNet) senseAt(id radio.NodeID, at time.Duration, sensing bool) {
	n.sched.At(at, func() { n.mgrs[id].SetSensing(sensing) })
}

func (n *testNet) runUntil(t *testing.T, d time.Duration) {
	t.Helper()
	if err := n.sched.RunUntil(d); err != nil {
		t.Fatal(err)
	}
}

var fastCfg = Config{
	HeartbeatPeriod: 100 * time.Millisecond,
	CreationBackoff: 10 * time.Millisecond,
}

func TestSingleNodeCreatesLabelAndLeads(t *testing.T) {
	n := newTestNet(t, 2)
	var gotLabel Label
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{
		OnBecomeLeader: func(l Label, _ []byte) { gotLabel = l },
	})
	n.senseAt(1, 0, true)
	n.runUntil(t, time.Second)

	mgr := n.mgrs[1]
	if mgr.Role() != RoleLeader {
		t.Fatalf("role = %v, want leader", mgr.Role())
	}
	if mgr.Label() == "" || mgr.Label() != gotLabel {
		t.Errorf("label = %q, callback got %q", mgr.Label(), gotLabel)
	}
	if mgr.LeaderID() != 1 {
		t.Errorf("LeaderID = %v, want self", mgr.LeaderID())
	}
	if got := n.ledger.Summarize("tracker"); got.Created != 1 {
		t.Errorf("ledger created = %d, want 1", got.Created)
	}
	if hb := n.stats.Kind(trace.KindHeartbeat); hb.Sent < 5 {
		t.Errorf("heartbeats sent = %d, want several", hb.Sent)
	}
}

func TestSecondSensorJoinsExistingLabel(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.senseAt(2, 500*time.Millisecond, true)
	n.runUntil(t, 2*time.Second)

	if n.mgrs[1].Role() != RoleLeader {
		t.Fatalf("node1 role = %v, want leader", n.mgrs[1].Role())
	}
	if n.mgrs[2].Role() != RoleMember {
		t.Fatalf("node2 role = %v, want member", n.mgrs[2].Role())
	}
	if n.mgrs[1].Label() != n.mgrs[2].Label() {
		t.Errorf("labels differ: %q vs %q", n.mgrs[1].Label(), n.mgrs[2].Label())
	}
	if n.ledger.DistinctLabels("tracker") != 1 {
		t.Errorf("distinct labels = %d, want 1 (coherence)", n.ledger.DistinctLabels("tracker"))
	}
	if n.mgrs[2].LeaderID() != 1 {
		t.Errorf("member's leader = %v, want 1", n.mgrs[2].LeaderID())
	}
}

func TestSimultaneousSensingConvergesToOneLabel(t *testing.T) {
	n := newTestNet(t, 3)
	for i := radio.NodeID(1); i <= 4; i++ {
		n.add(t, i, geom.Pt(float64(i)*0.5, 0), fastCfg, Callbacks{})
		n.senseAt(i, 0, true)
	}
	n.runUntil(t, 3*time.Second)

	leaders := 0
	labels := make(map[Label]bool)
	for _, mgr := range n.mgrs {
		if mgr.Role() == RoleLeader {
			leaders++
		}
		if mgr.Label() != "" {
			labels[mgr.Label()] = true
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want exactly 1", leaders)
	}
	if len(labels) != 1 {
		t.Errorf("distinct live labels = %d, want 1", len(labels))
	}
	if v := n.ledger.Summarize("tracker").CoherenceViolations(); v != 0 {
		t.Errorf("coherence violations = %d, want 0", v)
	}
}

func TestMemberReportsReachLeaderAndIncreaseWeight(t *testing.T) {
	n := newTestNet(t, 2)
	var reports []radio.NodeID
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{
		OnReport: func(from radio.NodeID, payload any) {
			reports = append(reports, from)
			if payload != "data-2" {
				t.Errorf("payload = %v, want data-2", payload)
			}
		},
	})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{
		ReportPayload: func() any { return "data-2" },
	})
	n.senseAt(1, 0, true)
	n.senseAt(2, 300*time.Millisecond, true)
	n.runUntil(t, 2*time.Second)

	if len(reports) == 0 {
		t.Fatal("leader received no reports")
	}
	if n.mgrs[1].Weight() == 0 {
		t.Error("leader weight did not increase with reports")
	}
}

func TestLeaderFailureTriggersTakeoverSameLabel(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.runUntil(t, time.Second)
	label := n.mgrs[1].Label()

	n.sched.At(time.Second, func() { n.motes[1].Fail() })
	n.runUntil(t, 3*time.Second)

	if n.mgrs[2].Role() != RoleLeader {
		t.Fatalf("node2 role = %v, want leader after takeover", n.mgrs[2].Role())
	}
	if n.mgrs[2].Label() != label {
		t.Errorf("takeover changed label: %q -> %q", label, n.mgrs[2].Label())
	}
	sum := n.ledger.Summarize("tracker")
	if sum.Takeovers != 1 {
		t.Errorf("takeovers = %d, want 1", sum.Takeovers)
	}
	if sum.Created != 1 {
		t.Errorf("created = %d, want 1 (no spurious label)", sum.Created)
	}
}

func TestTakeoverHappensAfterRoughlyTwoHeartbeats(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	var leadAt time.Duration
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{
		OnBecomeLeader: func(Label, []byte) { leadAt = n.sched.Now() },
	})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.sched.At(time.Second, func() { n.motes[1].Fail() })
	n.runUntil(t, 3*time.Second)

	if leadAt == 0 {
		t.Fatal("no takeover happened")
	}
	// Receive timer is 2.1x the 100 ms heartbeat (plus <=10% jitter),
	// armed at the last heartbeat before the failure at t=1s.
	min := time.Second + 110*time.Millisecond
	max := time.Second + 400*time.Millisecond
	if leadAt < min || leadAt > max {
		t.Errorf("takeover at %v, want within [%v, %v]", leadAt, min, max)
	}
}

func TestRelinquishHandsLeadershipToReporter(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.runUntil(t, time.Second)
	label := n.mgrs[1].Label()

	// Leader stops sensing (target moved on) while the member still senses.
	n.senseAt(1, time.Second, false)
	n.runUntil(t, 2*time.Second)

	if n.mgrs[2].Role() != RoleLeader {
		t.Fatalf("node2 role = %v, want leader after relinquish", n.mgrs[2].Role())
	}
	if n.mgrs[2].Label() != label {
		t.Errorf("relinquish changed label: %q -> %q", label, n.mgrs[2].Label())
	}
	sum := n.ledger.Summarize("tracker")
	if sum.Relinquish != 1 {
		t.Errorf("relinquishes = %d, want 1", sum.Relinquish)
	}
	if sum.Takeovers != 0 {
		t.Errorf("takeovers = %d, want 0 (explicit handoff should win)", sum.Takeovers)
	}
}

func TestRelinquishDisabledFallsBackToTakeover(t *testing.T) {
	cfg := fastCfg
	cfg.DisableRelinquish = true
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), cfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), cfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.runUntil(t, time.Second)

	n.senseAt(1, time.Second, false)
	n.runUntil(t, 3*time.Second)

	if n.mgrs[2].Role() != RoleLeader {
		t.Fatalf("node2 role = %v, want leader via takeover", n.mgrs[2].Role())
	}
	sum := n.ledger.Summarize("tracker")
	if sum.Relinquish != 0 || sum.Takeovers != 1 {
		t.Errorf("relinquish/takeover = %d/%d, want 0/1", sum.Relinquish, sum.Takeovers)
	}
}

func TestWeightSuppressionDeletesSpuriousLabel(t *testing.T) {
	// Two isolated groups form; then a bridge node lets them hear each
	// other. The lighter label must be deleted.
	n := newTestNet(t, 1.5)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{ReportPayload: func() any { return "x" }})
	n.add(t, 3, geom.Pt(4, 0), fastCfg, Callbacks{})

	// Group A (nodes 1,2) accumulates weight via reports; group B (node 3)
	// stays weight 0.
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.senseAt(3, 0, true)
	n.runUntil(t, 2*time.Second)

	if n.mgrs[1].Weight() == 0 {
		t.Fatal("group A accumulated no weight")
	}
	labelA := n.mgrs[1].Label()
	labelB := n.mgrs[3].Label()
	if labelA == labelB {
		t.Fatal("expected two distinct labels before bridging")
	}

	// Bridge: node 4 in range of both 3 and the A group, sensing, so it
	// floods heartbeats across.
	n.add(t, 4, geom.Pt(2.5, 0), fastCfg, Callbacks{})
	n.senseAt(4, 2*time.Second, true)
	n.runUntil(t, 5*time.Second)

	if n.mgrs[3].Role() == RoleLeader && n.mgrs[3].Label() == labelB {
		t.Errorf("lighter label %q still led by node 3", labelB)
	}
	sum := n.ledger.Summarize("tracker")
	if sum.Deleted == 0 {
		t.Error("no label deletion recorded")
	}
	live := n.ledger.LiveLabels("tracker")
	if len(live) != 1 || live[0] != string(labelA) {
		t.Errorf("live labels = %v, want [%s]", live, labelA)
	}
}

func TestLeaderYieldsToSameLabelHigherPriority(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): yield rule is off")
	}
	n := newTestNet(t, 2)
	mgr := n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	// Node 2 is a raw mote used to inject a crafted heartbeat.
	m2, err := mote.New(2, geom.Pt(1, 0), n.sched, n.medium, phenomena.NewField(), nil, mote.Config{}, n.rng, n.stats)
	if err != nil {
		t.Fatal(err)
	}
	n.senseAt(1, 0, true)
	n.runUntil(t, 500*time.Millisecond)
	label := mgr.Label()

	// A same-label heartbeat with a higher weight arrives: node 1 yields.
	n.sched.At(500*time.Millisecond, func() {
		m2.Broadcast(trace.KindHeartbeat, 0, Heartbeat{
			CtxType: "tracker", Label: label, Leader: 2, Weight: 50, Seq: 1,
		})
	})
	// Check shortly after the yield but before the receive timer fires
	// (2.1 x 100 ms after the yield): the impostor never heartbeats again,
	// so node 1 is entitled to take leadership back later.
	n.runUntil(t, 650*time.Millisecond)
	if mgr.Role() != RoleMember {
		t.Fatalf("role = %v, want member after yield", mgr.Role())
	}
	if n.ledger.Summarize("tracker").Yields != 1 {
		t.Error("yield not recorded")
	}

	// After the silent impostor times out, node 1 recovers leadership of
	// the same label via takeover.
	n.runUntil(t, 2*time.Second)
	if mgr.Role() != RoleLeader || mgr.Label() != label {
		t.Errorf("after impostor timeout: role=%v label=%q, want leader of %q",
			mgr.Role(), mgr.Label(), label)
	}
}

func TestLeaderKeepsLeadingAgainstLowerPrioritySameLabel(t *testing.T) {
	n := newTestNet(t, 2)
	mgr := n.add(t, 5, geom.Pt(0, 0), fastCfg, Callbacks{})
	m2, err := mote.New(2, geom.Pt(1, 0), n.sched, n.medium, phenomena.NewField(), nil, mote.Config{}, n.rng, n.stats)
	if err != nil {
		t.Fatal(err)
	}
	n.senseAt(5, 0, true)
	n.runUntil(t, 500*time.Millisecond)
	label := mgr.Label()
	// Give the leader some weight so the intruder is lower priority.
	n.sched.At(500*time.Millisecond, func() {
		m2.Send(trace.KindReading, 5, 0, Report{CtxType: "tracker", Label: label, Reporter: 2, Payload: "x"})
	})
	n.runUntil(t, 600*time.Millisecond)
	n.sched.At(600*time.Millisecond, func() {
		m2.Broadcast(trace.KindHeartbeat, 0, Heartbeat{
			CtxType: "tracker", Label: label, Leader: 2, Weight: 0, Seq: 1,
		})
	})
	n.runUntil(t, time.Second)
	if mgr.Role() != RoleLeader {
		t.Errorf("role = %v, want still leader", mgr.Role())
	}
}

func TestWaitTimerJoinPreventsNewLabel(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	// Node 2 hears heartbeats while not sensing; it senses within the wait
	// window (4.2 x 100 ms) of the last heartbeat and must join.
	n.senseAt(2, 300*time.Millisecond, true)
	// Node 1 stops sensing just before, so no fresh heartbeat arrives after
	// node 2 starts sensing; only the wait-timer memory links them.
	n.runUntil(t, 2*time.Second)

	if n.ledger.DistinctLabels("tracker") != 1 {
		t.Errorf("distinct labels = %d, want 1", n.ledger.DistinctLabels("tracker"))
	}
	if n.mgrs[2].Label() != n.mgrs[1].Label() {
		t.Error("node 2 did not join node 1's label")
	}
}

func TestNewLabelAfterWaitTimerExpiry(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.senseAt(1, 200*time.Millisecond, false) // label dies with its only sensor
	// Node 2 senses long after the 420 ms wait timer expired.
	n.senseAt(2, 5*time.Second, true)
	n.runUntil(t, 7*time.Second)

	if n.ledger.DistinctLabels("tracker") != 2 {
		t.Errorf("distinct labels = %d, want 2 (memory expired)", n.ledger.DistinctLabels("tracker"))
	}
	if n.mgrs[2].Role() != RoleLeader {
		t.Errorf("node 2 role = %v, want leader of fresh label", n.mgrs[2].Role())
	}
}

func TestHeartbeatPropagationPastPerimeter(t *testing.T) {
	// Line topology: leader(0) - relay(1) - distant(2); the relay does not
	// sense. With h=1 the distant node hears the label and joins when it
	// senses; with h=0 it spawns its own label.
	run := func(h int) int {
		cfg := fastCfg
		cfg.HopsPast = h
		n := newTestNet(t, 1.2)
		n.add(t, 0, geom.Pt(0, 0), cfg, Callbacks{})
		n.add(t, 1, geom.Pt(1, 0), cfg, Callbacks{}) // relay, never senses
		n.add(t, 2, geom.Pt(2, 0), cfg, Callbacks{})
		n.senseAt(0, 0, true)
		n.senseAt(2, 300*time.Millisecond, true)
		if err := n.sched.RunUntil(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return n.ledger.DistinctLabels("tracker")
	}
	if got := run(1); got != 1 {
		t.Errorf("h=1: distinct labels = %d, want 1", got)
	}
	if got := run(0); got != 2 {
		t.Errorf("h=0: distinct labels = %d, want 2", got)
	}
}

func TestGroupFloodingReachesMultiHopMembers(t *testing.T) {
	// All three nodes sense; node 2 is out of direct range of node 0 but
	// node 1 (a member) relays heartbeats using the h-hop budget, keeping
	// the multi-hop group under a single label.
	cfg := fastCfg
	cfg.HopsPast = 1
	n := newTestNet(t, 1.2)
	n.add(t, 0, geom.Pt(0, 0), cfg, Callbacks{})
	n.add(t, 1, geom.Pt(1, 0), cfg, Callbacks{})
	n.add(t, 2, geom.Pt(2, 0), cfg, Callbacks{})
	n.senseAt(0, 0, true)
	n.senseAt(1, 300*time.Millisecond, true)
	n.senseAt(2, 600*time.Millisecond, true)
	n.runUntil(t, 2*time.Second)

	if n.ledger.DistinctLabels("tracker") != 1 {
		t.Errorf("distinct labels = %d, want 1 (group flood)", n.ledger.DistinctLabels("tracker"))
	}
	if n.mgrs[2].Label() != n.mgrs[0].Label() {
		t.Error("multi-hop member not in the leader's group")
	}
}

func TestPersistentStateSurvivesTakeover(t *testing.T) {
	n := newTestNet(t, 2)
	var inherited []byte
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{
		OnBecomeLeader: func(_ Label, state []byte) { inherited = state },
	})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.sched.At(500*time.Millisecond, func() { n.mgrs[1].SetState([]byte("committed")) })
	n.sched.At(time.Second, func() { n.motes[1].Fail() })
	n.runUntil(t, 3*time.Second)

	if string(inherited) != "committed" {
		t.Errorf("inherited state = %q, want %q", inherited, "committed")
	}
	if string(n.mgrs[2].State()) != "committed" {
		t.Errorf("State() = %q, want committed", n.mgrs[2].State())
	}
}

func TestSetStateIgnoredForNonLeader(t *testing.T) {
	n := newTestNet(t, 2)
	mgr := n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	mgr.SetState([]byte("nope"))
	if mgr.State() != nil {
		t.Error("non-leader SetState should be ignored")
	}
}

func TestOnLoseLeadershipFires(t *testing.T) {
	n := newTestNet(t, 2)
	lost := 0
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{
		OnLoseLeadership: func(Label) { lost++ },
	})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.senseAt(1, time.Second, false)
	n.runUntil(t, 2*time.Second)
	if lost != 1 {
		t.Errorf("OnLoseLeadership fired %d times, want 1", lost)
	}
}

func TestMemberLeavesWhenSensingStops(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.runUntil(t, time.Second)
	if n.mgrs[2].Role() != RoleMember {
		t.Fatal("setup: node 2 should be a member")
	}
	n.senseAt(2, time.Second, false)
	n.runUntil(t, 2*time.Second)
	if n.mgrs[2].Role() != RoleNone {
		t.Errorf("role = %v, want none after sensing stops", n.mgrs[2].Role())
	}
	// The leader continues undisturbed.
	if n.mgrs[1].Role() != RoleLeader {
		t.Errorf("leader role = %v, want leader", n.mgrs[1].Role())
	}
}

func TestRoleString(t *testing.T) {
	tests := []struct {
		r    Role
		want string
	}{
		{RoleNone, "none"},
		{RoleMember, "member"},
		{RoleLeader, "leader"},
		{Role(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestManagerStopCancelsTimers(t *testing.T) {
	n := newTestNet(t, 2)
	mgr := n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.runUntil(t, 500*time.Millisecond)
	mgr.Stop()
	sent := n.stats.Kind(trace.KindHeartbeat).Sent
	n.runUntil(t, 2*time.Second)
	if got := n.stats.Kind(trace.KindHeartbeat).Sent; got != sent {
		t.Errorf("heartbeats continued after Stop: %d -> %d", sent, got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.HeartbeatPeriod != DefaultHeartbeatPeriod {
		t.Errorf("HeartbeatPeriod = %v", c.HeartbeatPeriod)
	}
	if c.ReceiveFactor != DefaultReceiveFactor || c.WaitFactor != DefaultWaitFactor {
		t.Errorf("factors = %v/%v", c.ReceiveFactor, c.WaitFactor)
	}
	if c.ReportPeriod != c.HeartbeatPeriod {
		t.Errorf("ReportPeriod = %v, want heartbeat period", c.ReportPeriod)
	}
	if c.CreationBackoff != c.HeartbeatPeriod/2 {
		t.Errorf("CreationBackoff = %v", c.CreationBackoff)
	}
	if got := c.waitTimeout(); got != time.Duration(4.2*float64(c.HeartbeatPeriod)) {
		t.Errorf("waitTimeout = %v", got)
	}
	lo := c.receiveTimeout(0)
	hi := c.receiveTimeout(1)
	if lo != time.Duration(2.1*float64(c.HeartbeatPeriod)) {
		t.Errorf("receiveTimeout(0) = %v", lo)
	}
	if hi <= lo {
		t.Error("jitter should increase the receive timeout")
	}
}

func TestManagerAccessors(t *testing.T) {
	n := newTestNet(t, 2)
	mgr := n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	if mgr.CtxType() != "tracker" {
		t.Errorf("CtxType = %q", mgr.CtxType())
	}
	if mgr.Sensing() {
		t.Error("Sensing true before any SetSensing")
	}
	n.senseAt(1, 0, true)
	n.runUntil(t, time.Second)
	if !mgr.Sensing() {
		t.Error("Sensing false after SetSensing(true)")
	}
	if mgr.State() == nil {
		mgr.SetState([]byte("s"))
		if string(mgr.State()) != "s" {
			t.Errorf("leader State = %q", mgr.State())
		}
	}
}

func TestMemberLeaderIDAndState(t *testing.T) {
	n := newTestNet(t, 2)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	member := n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{})
	n.senseAt(1, 0, true)
	n.sched.At(100*time.Millisecond, func() { n.mgrs[1].SetState([]byte("committed")) })
	n.senseAt(2, 300*time.Millisecond, true)
	n.runUntil(t, 2*time.Second)
	if member.Role() != RoleMember {
		t.Fatalf("role = %v", member.Role())
	}
	if member.LeaderID() != 1 {
		t.Errorf("member LeaderID = %v, want 1", member.LeaderID())
	}
	if string(member.State()) != "committed" {
		t.Errorf("member State = %q, want heartbeat-carried state", member.State())
	}
}
