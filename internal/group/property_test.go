package group

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/radio"
)

// checkInvariants asserts per-manager state consistency: a role always
// agrees with the label and duty state.
func checkInvariants(t *testing.T, n *testNet) {
	t.Helper()
	for id, g := range n.mgrs {
		switch g.Role() {
		case RoleNone:
			if g.Label() != "" {
				t.Errorf("mote %d: RoleNone with label %q", id, g.Label())
			}
		case RoleLeader:
			if g.Label() == "" {
				t.Errorf("mote %d: leader without a label", id)
			}
			if g.LeaderID() != id {
				t.Errorf("mote %d: leader's LeaderID = %v", id, g.LeaderID())
			}
		case RoleMember:
			if g.Label() == "" {
				t.Errorf("mote %d: member without a label", id)
			}
		default:
			t.Errorf("mote %d: invalid role %v", id, g.Role())
		}
	}
}

// TestPropertyRandomSensingChurn drives random sensing on/off transitions
// across a clique of motes and checks state invariants plus eventual
// convergence: once churn stops with a stable sensing set, exactly one
// leader serves all sensing motes.
func TestPropertyRandomSensingChurn(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): single-leader convergence is off")
	}
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial + 100)))
			n := newTestNet(t, 10) // clique: everyone hears everyone
			const motes = 6
			for i := 0; i < motes; i++ {
				n.add(t, radio.NodeID(i), geom.Pt(float64(i), 0), fastCfg, Callbacks{})
			}
			// Random churn for 10 virtual seconds.
			for i := 0; i < 60; i++ {
				at := time.Duration(rng.Intn(10000)) * time.Millisecond
				id := radio.NodeID(rng.Intn(motes))
				sensing := rng.Intn(2) == 0
				n.senseAt(id, at, sensing)
			}
			// Then a stable phase: motes 0..2 sense, the rest do not.
			for i := 0; i < motes; i++ {
				n.senseAt(radio.NodeID(i), 11*time.Second, i < 3)
			}
			n.runUntil(t, 20*time.Second)
			checkInvariants(t, n)

			leaders := 0
			labels := make(map[Label]bool)
			for i := 0; i < 3; i++ {
				g := n.mgrs[radio.NodeID(i)]
				if g.Role() == RoleLeader {
					leaders++
				}
				if g.Role() == RoleNone {
					t.Errorf("sensing mote %d has no role after convergence", i)
				}
				labels[g.Label()] = true
			}
			if leaders != 1 {
				t.Errorf("leaders = %d, want exactly 1 after convergence", leaders)
			}
			if len(labels) != 1 {
				t.Errorf("labels across sensing motes = %v, want a single label", labels)
			}
			for i := 3; i < motes; i++ {
				if got := n.mgrs[radio.NodeID(i)].Role(); got != RoleNone {
					t.Errorf("non-sensing mote %d role = %v, want none", i, got)
				}
			}
		})
	}
}

// TestPropertyLeaderUniquenessOverTime samples a loss-free run frequently
// and asserts that whenever two motes both lead, they lead *different*
// labels (duplicate same-label leaderships must resolve within a couple of
// heartbeat periods, enforced here by sampling between protocol rounds).
func TestPropertyLeaderUniquenessOverTime(t *testing.T) {
	n := newTestNet(t, 10)
	const motes = 5
	for i := 0; i < motes; i++ {
		n.add(t, radio.NodeID(i), geom.Pt(float64(i)*0.5, 0), fastCfg, Callbacks{})
		n.senseAt(radio.NodeID(i), 0, true)
	}
	// Sample every 350ms (between heartbeats; transient duels span at most
	// one heartbeat exchange in a clique).
	violations := 0
	for at := 2 * time.Second; at <= 12*time.Second; at += 350 * time.Millisecond {
		at := at
		n.sched.At(at, func() {
			byLabel := make(map[Label][]radio.NodeID)
			for id, g := range n.mgrs {
				if g.Role() == RoleLeader {
					byLabel[g.Label()] = append(byLabel[g.Label()], id)
				}
			}
			for label, ids := range byLabel {
				if len(ids) > 1 {
					violations++
					t.Logf("t=%v: label %q led by %v", at, label, ids)
				}
			}
		})
	}
	n.runUntil(t, 13*time.Second)
	// Transient duels are permitted (the protocol resolves them by yield);
	// persistent duplication is not.
	if violations > 2 {
		t.Errorf("same-label leader duplication observed in %d samples", violations)
	}
}

// TestPropertyWeightMonotonicWithinLeadership checks the leader weight
// never decreases while a single mote holds leadership.
func TestPropertyWeightMonotonicWithinLeadership(t *testing.T) {
	n := newTestNet(t, 10)
	n.add(t, 1, geom.Pt(0, 0), fastCfg, Callbacks{})
	n.add(t, 2, geom.Pt(1, 0), fastCfg, Callbacks{ReportPayload: func() any { return "x" }})
	n.add(t, 3, geom.Pt(0.5, 0.5), fastCfg, Callbacks{ReportPayload: func() any { return "y" }})
	n.senseAt(1, 0, true)
	n.senseAt(2, 200*time.Millisecond, true)
	n.senseAt(3, 300*time.Millisecond, true)

	var last uint64
	for at := time.Second; at <= 10*time.Second; at += 200 * time.Millisecond {
		n.sched.At(at, func() {
			g := n.mgrs[1]
			if g.Role() != RoleLeader {
				return
			}
			if g.Weight() < last {
				t.Errorf("weight decreased: %d -> %d", last, g.Weight())
			}
			last = g.Weight()
		})
	}
	n.runUntil(t, 11*time.Second)
	if last == 0 {
		t.Error("weight never grew despite member reports")
	}
}

// TestManyTargetsManyGroups forms several physically separated groups and
// checks they neither merge nor interfere.
func TestManyTargetsManyGroups(t *testing.T) {
	n := newTestNet(t, 1.5)
	// Three clusters, 10 units apart (far beyond comm radius).
	clusterAt := []float64{0, 10, 20}
	id := radio.NodeID(0)
	for _, base := range clusterAt {
		for i := 0; i < 3; i++ {
			n.add(t, id, geom.Pt(base+float64(i)*0.5, 0), fastCfg, Callbacks{})
			n.senseAt(id, 0, true)
			id++
		}
	}
	n.runUntil(t, 5*time.Second)

	live := n.ledger.LiveLabels("tracker")
	if len(live) != 3 {
		t.Errorf("live labels = %v, want 3 (one per cluster)", live)
	}
	leaders := 0
	for _, g := range n.mgrs {
		if g.Role() == RoleLeader {
			leaders++
		}
	}
	if leaders != 3 {
		t.Errorf("leaders = %d, want 3", leaders)
	}
	if v := n.ledger.Summarize("tracker").CoherenceViolations(); v != 2 {
		// Three live labels minus one baseline = 2 "violations" in the
		// single-target accounting: Summarize is explicitly single-target.
		t.Logf("multi-target summarize violations = %d (single-target metric, informational)", v)
	}
}
