//go:build !chaosmut

package group

// mutationSuppressYield is the invariant-checker self-test switch: the
// chaosmut build tag flips it on, disabling the same-label yield rule so
// that a receive-timer takeover leaves two live leaders on one label —
// exactly the dual-leader violation internal/invariant must detect. The
// nominal build compiles the protocol unchanged.
const mutationSuppressYield = false
