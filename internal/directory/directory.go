// Package directory implements EnviroTrack's object naming and directory
// services (Section 5.3). A context type name is hashed to an (x, y)
// coordinate in the sensor field; the nodes nearest that coordinate hold
// the directory object, a mapping from context label to the label's current
// location and leader. Labels register when first created, refresh with
// occasional updates, and queries such as "where are all the fires?" are
// answered from the directory's fresh entries.
package directory

import (
	"hash/fnv"
	"sort"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/radio"
	"envirotrack/internal/routing"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// DefaultEntryTTL is how long a registration stays valid without a refresh.
const DefaultEntryTTL = 30 * time.Second

// Query reliability: there are no MAC acknowledgements, so queries are
// retransmitted on a timeout until a reply arrives or the attempts are
// exhausted (the callback then receives nil).
const (
	DefaultQueryTimeout = 2 * time.Second
	DefaultQueryRetries = 3
)

// Entry is one directory record: the location of an active context label.
type Entry struct {
	CtxType   string
	Label     group.Label
	Location  geom.Point
	Leader    radio.NodeID
	UpdatedAt time.Duration
}

// HashPoint deterministically maps a context type name to a coordinate
// inside the field bounds (FNV-1a, like the content-hashing schemes the
// paper cites).
func HashPoint(name string, bounds geom.Rect) geom.Point {
	h := fnv.New64a()
	h.Write([]byte(name))
	v := h.Sum64()
	// Split into two 32-bit halves for x and y.
	fx := float64(uint32(v)) / float64(1<<32)
	fy := float64(uint32(v>>32)) / float64(1<<32)
	return geom.Pt(
		bounds.Min.X+fx*bounds.Width(),
		bounds.Min.Y+fy*bounds.Height(),
	)
}

// Routed message payloads.
type registerMsg struct {
	Entry Entry
}

type unregisterMsg struct {
	CtxType string
	Label   group.Label
	// At orders the unregistration against registrations: registrations
	// not newer than At stay dead (tombstone semantics).
	At time.Duration
}

type queryMsg struct {
	CtxType   string
	QueryID   uint64
	ReplyTo   geom.Point
	ReplyNode radio.NodeID
}

type replyMsg struct {
	QueryID uint64
	Entries []Entry
}

// Config parameterizes the directory service.
type Config struct {
	// Bounds is the sensor field extent used for type-name hashing.
	Bounds geom.Rect
	// EntryTTL is the registration lifetime (DefaultEntryTTL if zero).
	EntryTTL time.Duration
	// QueryTimeout is the per-attempt reply deadline (DefaultQueryTimeout
	// if zero) and QueryRetries the number of retransmissions
	// (DefaultQueryRetries if zero).
	QueryTimeout time.Duration
	QueryRetries int
	// MessageBits sizes directory frames on the air.
	MessageBits int
}

func (c Config) withDefaults() Config {
	if c.EntryTTL <= 0 {
		c.EntryTTL = DefaultEntryTTL
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = DefaultQueryTimeout
	}
	if c.QueryRetries <= 0 {
		c.QueryRetries = DefaultQueryRetries
	}
	if c.MessageBits <= 0 {
		c.MessageBits = 48 * 8
	}
	return c
}

// Service is the per-mote directory component. Any mote may issue Register
// and Query; motes that happen to sit nearest a type's hash coordinate
// store that type's entries.
type Service struct {
	m      *mote.Mote
	router *routing.Router
	cfg    Config

	// entries is this node's replica of directory state (non-empty only on
	// directory nodes): ctxType -> label -> entry.
	entries map[string]map[group.Label]Entry
	// tombstones record unregistered labels so that in-flight or stale
	// registrations cannot resurrect them: ctxType -> label -> time.
	tombstones map[string]map[group.Label]time.Duration
	// pending holds in-flight queries issued from this node.
	pending     map[uint64]*pendingQuery
	nextQueryID uint64
}

// pendingQuery tracks one outstanding query and its retransmissions.
type pendingQuery struct {
	cb       func([]Entry)
	attempts int
	timer    simtime.Timer
	// corr is minted once per query; retransmissions share it, so every
	// attempt's frames land in one span.
	corr radio.Corr
}

// NewService attaches a directory service to the mote's router.
func NewService(m *mote.Mote, router *routing.Router, cfg Config) *Service {
	s := &Service{
		m:          m,
		router:     router,
		cfg:        cfg.withDefaults(),
		entries:    make(map[string]map[group.Label]Entry),
		tombstones: make(map[string]map[group.Label]time.Duration),
		pending:    make(map[uint64]*pendingQuery),
	}
	router.AddHandler(s.handle)
	return s
}

// Register announces (or refreshes) a context label's location to the
// directory object for its type. Called by the label's leader when the
// label comes alive and periodically afterwards.
func (s *Service) Register(ctxType string, label group.Label, location geom.Point, leader radio.NodeID) {
	e := Entry{
		CtxType:   ctxType,
		Label:     label,
		Location:  location,
		Leader:    leader,
		UpdatedAt: s.m.Scheduler().Now(),
	}
	s.router.Send(routing.Message{
		Kind:      trace.KindDirectory,
		Dest:      HashPoint(ctxType, s.cfg.Bounds),
		DestNode:  routing.AnyNode,
		Bits:      s.cfg.MessageBits,
		Payload:   registerMsg{Entry: e},
		Corr:      radio.Corr{Origin: int32(s.m.ID()), Seq: s.m.NextCorrSeq()},
		CorrLabel: string(label),
	})
}

// unregisterRepeats is how many copies of an unregistration are sent.
// There are no MAC-layer acknowledgements, and unregistrations typically
// happen amid the collision-heavy churn of label formation, so sender-side
// redundancy keeps ghost entries out of the directory.
const unregisterRepeats = 3

// Unregister removes a label from its type's directory object (sent by a
// leader that deleted a spurious label, Section 5.2). The message is
// repeated a few times with spacing to survive collisions.
func (s *Service) Unregister(ctxType string, label group.Label) {
	msg := unregisterMsg{CtxType: ctxType, Label: label, At: s.m.Scheduler().Now()}
	corr := radio.Corr{Origin: int32(s.m.ID()), Seq: s.m.NextCorrSeq()}
	send := func() {
		if s.m.Failed() {
			return
		}
		s.router.Send(routing.Message{
			Kind:      trace.KindDirectory,
			Dest:      HashPoint(ctxType, s.cfg.Bounds),
			DestNode:  routing.AnyNode,
			Bits:      s.cfg.MessageBits,
			Payload:   msg,
			Corr:      corr,
			CorrLabel: string(label),
		})
	}
	send()
	for i := 1; i < unregisterRepeats; i++ {
		delay := time.Duration(float64(i)*150+s.m.Rand().Float64()*100) * time.Millisecond
		s.m.Scheduler().AfterOwned(delay, simtime.OwnerDirectory, send)
	}
}

// Query asks the directory object for all fresh labels of a context type;
// the callback is invoked with the reply (possibly empty, nil when every
// attempt timed out). The reply arrives asynchronously; the callback runs
// on the scheduler thread. Lost queries or replies are retransmitted.
func (s *Service) Query(ctxType string, cb func([]Entry)) {
	s.nextQueryID++
	id := s.nextQueryID
	s.pending[id] = &pendingQuery{cb: cb, corr: radio.Corr{Origin: int32(s.m.ID()), Seq: s.m.NextCorrSeq()}}
	s.sendQuery(ctxType, id)
}

func (s *Service) sendQuery(ctxType string, id uint64) {
	pq, ok := s.pending[id]
	if !ok {
		return
	}
	pq.attempts++
	s.router.Send(routing.Message{
		Kind:     trace.KindDirectory,
		Dest:     HashPoint(ctxType, s.cfg.Bounds),
		DestNode: routing.AnyNode,
		Bits:     s.cfg.MessageBits,
		Payload: queryMsg{
			CtxType:   ctxType,
			QueryID:   id,
			ReplyTo:   s.m.Pos(),
			ReplyNode: s.m.ID(),
		},
		Corr:      pq.corr,
		CorrLabel: ctxType,
	})
	pq.timer = s.m.Scheduler().AfterOwned(s.cfg.QueryTimeout, simtime.OwnerDirectory, func() {
		cur, ok := s.pending[id]
		if !ok || cur != pq {
			return
		}
		if pq.attempts >= s.cfg.QueryRetries || s.m.Failed() {
			delete(s.pending, id)
			pq.cb(nil)
			return
		}
		s.sendQuery(ctxType, id)
	})
}

// Entries returns this node's fresh replica entries for a type, sorted by
// label (useful for inspection and tests).
func (s *Service) Entries(ctxType string) []Entry {
	return s.freshEntries(ctxType)
}

func (s *Service) handle(msg routing.Message) bool {
	switch p := msg.Payload.(type) {
	case registerMsg:
		s.store(p.Entry)
		return true
	case unregisterMsg:
		s.remove(p)
		return true
	case queryMsg:
		s.answer(p)
		return true
	case replyMsg:
		if pq, ok := s.pending[p.QueryID]; ok {
			delete(s.pending, p.QueryID)
			pq.timer.Stop()
			pq.cb(p.Entries)
		}
		return true
	default:
		return false
	}
}

func (s *Service) store(e Entry) {
	if ts, ok := s.tombstones[e.CtxType][e.Label]; ok && e.UpdatedAt <= ts {
		return // the label was unregistered after this registration was made
	}
	byLabel, ok := s.entries[e.CtxType]
	if !ok {
		byLabel = make(map[group.Label]Entry)
		s.entries[e.CtxType] = byLabel
	}
	if prev, ok := byLabel[e.Label]; ok && prev.UpdatedAt > e.UpdatedAt {
		return // out-of-order refresh
	}
	byLabel[e.Label] = e
	s.emit(obs.EvDirectoryUpdated, e.CtxType, string(e.Label), int(e.Leader), "register")
}

func (s *Service) remove(p unregisterMsg) {
	if byLabel, ok := s.entries[p.CtxType]; ok {
		if e, ok := byLabel[p.Label]; !ok || e.UpdatedAt <= p.At {
			delete(byLabel, p.Label)
		}
	}
	byLabel, ok := s.tombstones[p.CtxType]
	if !ok {
		byLabel = make(map[group.Label]time.Duration)
		s.tombstones[p.CtxType] = byLabel
	}
	if ts, ok := byLabel[p.Label]; !ok || ts < p.At {
		byLabel[p.Label] = p.At
	}
	s.emit(obs.EvDirectoryUpdated, p.CtxType, string(p.Label), -1, "unregister")
}

func (s *Service) answer(q queryMsg) {
	entries := s.freshEntries(q.CtxType)
	s.emit(obs.EvDirectoryQuery, q.CtxType, "", int(q.ReplyNode), "")
	s.router.Send(routing.Message{
		Kind:      trace.KindDirectory,
		Dest:      q.ReplyTo,
		DestNode:  q.ReplyNode,
		Bits:      s.cfg.MessageBits + 32*len(entries),
		Payload:   replyMsg{QueryID: q.QueryID, Entries: entries},
		Corr:      radio.Corr{Origin: int32(s.m.ID()), Seq: s.m.NextCorrSeq()},
		CorrLabel: q.CtxType,
	})
}

// emit publishes one directory event: peer is the registering leader, the
// querying node, or -1 for an unregister; cause says which mutation it was.
func (s *Service) emit(ev obs.EventType, ctxType, label string, peer int, cause string) {
	if bus := s.m.Obs(); bus.Active() {
		bus.Emit(obs.Event{
			At:      s.m.Scheduler().Now(),
			Type:    ev,
			Mote:    int(s.m.ID()),
			Peer:    peer,
			Label:   label,
			CtxType: ctxType,
			Pos:     s.m.Pos(),
			Kind:    trace.KindDirectory,
			Cause:   cause,
		})
	}
}

// freshEntries returns unexpired entries for the type, pruning stale ones.
func (s *Service) freshEntries(ctxType string) []Entry {
	byLabel := s.entries[ctxType]
	if len(byLabel) == 0 {
		return nil
	}
	cutoff := s.m.Scheduler().Now() - s.cfg.EntryTTL
	var out []Entry
	for label, e := range byLabel {
		if e.UpdatedAt < cutoff {
			delete(byLabel, label)
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
