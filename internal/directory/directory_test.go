package directory

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/routing"
	"envirotrack/internal/simtime"
)

type net struct {
	sched    *simtime.Scheduler
	medium   *radio.Medium
	services map[radio.NodeID]*Service
	bounds   geom.Rect
}

func newNet(t *testing.T, cols, rows int, commRadius float64) *net {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := rand.New(rand.NewSource(5))
	// Collisions are disabled: these tests exercise directory semantics,
	// not channel contention (covered in radio's own tests).
	medium := radio.New(sched, radio.Params{CommRadius: commRadius, DisableCollisions: true}, rng, nil)
	bounds := geom.Grid{Cols: cols, Rows: rows}.Bounds()
	n := &net{
		sched:    sched,
		medium:   medium,
		services: make(map[radio.NodeID]*Service),
		bounds:   bounds,
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			id := radio.NodeID(y*cols + x)
			m, err := mote.New(id, geom.Pt(float64(x), float64(y)), sched, medium, phenomena.NewField(), nil, mote.Config{}, rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			r := routing.NewRouter(m, medium)
			n.services[id] = NewService(m, r, Config{Bounds: bounds})
		}
	}
	return n
}

func TestHashPointInBounds(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 5)}
	f := func(name string) bool {
		return bounds.Contains(HashPoint(name, bounds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashPointDeterministic(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}
	a := HashPoint("fire", bounds)
	b := HashPoint("fire", bounds)
	if a != b {
		t.Errorf("HashPoint not deterministic: %v vs %v", a, b)
	}
	c := HashPoint("tracker", bounds)
	if a == c {
		t.Error("different names hashed to the same point (extremely unlikely)")
	}
}

func TestRegisterThenQuery(t *testing.T) {
	n := newNet(t, 6, 6, 1.5)
	n.services[0].Register("fire", "fire/1.1", geom.Pt(2, 3), 7)
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}

	var got []Entry
	n.services[35].Query("fire", func(es []Entry) { got = es })
	if err := n.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("query returned %d entries, want 1", len(got))
	}
	e := got[0]
	if e.Label != "fire/1.1" || e.Location != geom.Pt(2, 3) || e.Leader != 7 {
		t.Errorf("entry = %+v", e)
	}
}

func TestQueryEmptyType(t *testing.T) {
	n := newNet(t, 4, 4, 1.5)
	called := false
	n.services[0].Query("nothing", func(es []Entry) {
		called = true
		if len(es) != 0 {
			t.Errorf("entries = %v, want empty", es)
		}
	})
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("query callback never invoked")
	}
}

func TestMultipleLabelsOfSameType(t *testing.T) {
	n := newNet(t, 6, 6, 1.5)
	n.services[0].Register("car", "car/1.1", geom.Pt(1, 1), 1)
	n.services[10].Register("car", "car/9.1", geom.Pt(4, 1), 9)
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	n.services[20].Query("car", func(es []Entry) { got = es })
	if err := n.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2", len(got))
	}
	if got[0].Label >= got[1].Label {
		t.Error("entries not sorted by label")
	}
}

func TestUpdateRefreshesLocation(t *testing.T) {
	n := newNet(t, 6, 6, 1.5)
	n.services[0].Register("car", "car/1.1", geom.Pt(1, 1), 1)
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	// The tracked entity moved; a later update must win.
	n.services[7].Register("car", "car/1.1", geom.Pt(5, 5), 8)
	if err := n.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	n.services[30].Query("car", func(es []Entry) { got = es })
	if err := n.sched.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("entries = %d, want 1 (update, not new entry)", len(got))
	}
	if got[0].Location != geom.Pt(5, 5) || got[0].Leader != 8 {
		t.Errorf("entry not refreshed: %+v", got[0])
	}
}

func TestEntriesExpireAfterTTL(t *testing.T) {
	n := newNet(t, 6, 6, 1.5)
	n.services[0].Register("car", "car/1.1", geom.Pt(1, 1), 1)
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	// Query long after the 30 s TTL.
	var got []Entry
	called := false
	n.sched.At(40*time.Second, func() {
		n.services[30].Query("car", func(es []Entry) { got, called = es, true })
	})
	if err := n.sched.RunUntil(50 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("query callback not invoked")
	}
	if len(got) != 0 {
		t.Errorf("expired entries returned: %v", got)
	}
}

func TestDirectoryStoredNearHashPoint(t *testing.T) {
	n := newNet(t, 8, 8, 1.5)
	n.services[0].Register("fire", "fire/1.1", geom.Pt(0, 0), 1)
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	hp := HashPoint("fire", n.bounds)
	// Find the node nearest the hash point: it must hold the entry.
	best := radio.NodeID(-1)
	bestD := 1e18
	for _, id := range n.medium.NodeIDs() {
		pos, _ := n.medium.Position(id)
		if d := pos.Dist2(hp); d < bestD {
			bestD, best = d, id
		}
	}
	if got := n.services[best].Entries("fire"); len(got) != 1 {
		t.Errorf("nearest node to hash point holds %d entries, want 1", len(got))
	}
	// A node far from the hash point holds nothing.
	farthest := radio.NodeID(-1)
	farD := -1.0
	for _, id := range n.medium.NodeIDs() {
		pos, _ := n.medium.Position(id)
		if d := pos.Dist2(hp); d > farD {
			farD, farthest = d, id
		}
	}
	if got := n.services[farthest].Entries("fire"); len(got) != 0 {
		t.Errorf("far node holds %d entries, want 0", len(got))
	}
}

func TestQueriesFromDifferentTypesAreIsolated(t *testing.T) {
	n := newNet(t, 6, 6, 1.5)
	n.services[0].Register("car", "car/1.1", geom.Pt(1, 1), 1)
	n.services[0].Register("fire", "fire/2.1", geom.Pt(3, 3), 2)
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	var cars, fires []Entry
	n.services[12].Query("car", func(es []Entry) { cars = es })
	n.services[12].Query("fire", func(es []Entry) { fires = es })
	if err := n.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(cars) != 1 || cars[0].CtxType != "car" {
		t.Errorf("car query = %v", cars)
	}
	if len(fires) != 1 || fires[0].CtxType != "fire" {
		t.Errorf("fire query = %v", fires)
	}
}

func TestOutOfOrderRefreshIgnored(t *testing.T) {
	n := newNet(t, 4, 4, 1.5)
	svc := n.services[0]
	svc.store(Entry{CtxType: "x", Label: group.Label("x/1"), UpdatedAt: 10 * time.Second, Location: geom.Pt(2, 2)})
	svc.store(Entry{CtxType: "x", Label: group.Label("x/1"), UpdatedAt: 5 * time.Second, Location: geom.Pt(9, 9)})
	es := svc.entries["x"]
	if es[group.Label("x/1")].Location != geom.Pt(2, 2) {
		t.Error("older update overwrote newer entry")
	}
}
