package directory

import (
	"maps"
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/radio"
)

func TestUnregisterRemovesEntry(t *testing.T) {
	n := newNet(t, 6, 6, 1.5)
	n.services[0].Register("car", "car/1.1", geom.Pt(1, 1), 1)
	if err := n.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	n.sched.At(2*time.Second, func() {
		n.services[0].Unregister("car", "car/1.1")
	})
	if err := n.sched.RunUntil(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	n.services[30].Query("car", func(es []Entry) { got = es })
	if err := n.sched.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("entries after unregister = %v, want none", got)
	}
}

func TestTombstoneBlocksStaleRegistration(t *testing.T) {
	n := newNet(t, 4, 4, 1.5)
	svc := n.services[0]
	// Unregister at t=10s arrives before a registration stamped t=5s.
	svc.remove(unregisterMsg{CtxType: "x", Label: "x/1", At: 10 * time.Second})
	svc.store(Entry{CtxType: "x", Label: "x/1", UpdatedAt: 5 * time.Second})
	if es := svc.Entries("x"); len(es) != 0 {
		t.Errorf("stale registration resurrected a tombstoned label: %v", es)
	}
	// A genuinely newer registration (a reborn label) is accepted.
	svc.store(Entry{CtxType: "x", Label: "x/1", UpdatedAt: 15 * time.Second})
	if es := svc.Entries("x"); len(es) != 1 {
		t.Errorf("fresh registration rejected after tombstone: %v", es)
	}
}

func TestUnregisterOlderThanEntryKeepsEntry(t *testing.T) {
	n := newNet(t, 4, 4, 1.5)
	svc := n.services[0]
	svc.store(Entry{CtxType: "x", Label: "x/1", UpdatedAt: 20 * time.Second})
	// An unregister stamped before the entry's refresh must not delete it.
	svc.remove(unregisterMsg{CtxType: "x", Label: "x/1", At: 10 * time.Second})
	if es := svc.Entries("x"); len(es) != 1 {
		t.Errorf("older unregister deleted a fresher entry: %v", es)
	}
}

func TestQueryTimeoutInvokesNilCallback(t *testing.T) {
	// A network of one isolated node: queries can never reach a directory
	// for a far-away hash point... with a single node the anycast
	// terminates locally, so instead test the retry machinery by querying
	// from a node that is partitioned from the rest.
	n := newNet(t, 4, 4, 1.5)
	// Give the querier's pending entry no chance: drop by querying a type
	// whose hash point the local node serves but through a *failed* mote.
	called := false
	var result []Entry
	n.services[0].Query("anything", func(es []Entry) { called, result = true, es })
	if err := n.sched.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("query callback never invoked")
	}
	if len(result) != 0 {
		t.Errorf("result = %v, want empty", result)
	}
}

func TestUnregisterRepeatsOnAir(t *testing.T) {
	n := newNet(t, 4, 4, 1.5)
	n.services[5].Unregister("car", "car/9.9")
	if err := n.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The repetition policy sends several copies (resilience without acks);
	// verify more than one distinct send happened by checking that every
	// replica of the directory region saw the tombstone.
	hp := HashPoint("car", n.bounds)
	nearest := n.services[radio.NodeID(nearestTo(n, hp))]
	if ts := nearest.tombstones["car"]; len(ts) != 1 {
		t.Errorf("tombstones at directory node = %v, want 1", ts)
	}
}

func nearestTo(n *net, p geom.Point) (best int) {
	bestD := 1e18
	for _, id := range n.medium.NodeIDs() {
		pos, _ := n.medium.Position(id)
		if d := pos.Dist2(p); d < bestD {
			bestD, best = d, int(id)
		}
	}
	return best
}

// TestTombstonePropertyUnderChurn drives a directory service through
// random register/unregister churn (out-of-order timestamps included,
// as relayed messages genuinely arrive) and checks it against a
// reference model after every operation: the entry table must match the
// model exactly, and tombstones must only move forward in time.
func TestTombstonePropertyUnderChurn(t *testing.T) {
	labels := []group.Label{"x/1", "x/2", "x/3", "x/4", "x/5", "x/6", "x/7", "x/8"}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := newNet(t, 4, 4, 1.5)
		svc := n.services[0]

		oracle := map[group.Label]time.Duration{}
		tombs := map[group.Label]time.Duration{}

		for op := 0; op < 400; op++ {
			label := labels[rng.Intn(len(labels))]
			at := time.Duration(rng.Intn(100)) * time.Second
			if rng.Intn(2) == 0 {
				svc.store(Entry{CtxType: "x", Label: label, UpdatedAt: at})
				ts, dead := tombs[label]
				if prev, live := oracle[label]; (!dead || at > ts) && (!live || prev <= at) {
					oracle[label] = at
				}
			} else {
				svc.remove(unregisterMsg{CtxType: "x", Label: label, At: at})
				if prev, live := oracle[label]; live && prev <= at {
					delete(oracle, label)
				}
				if ts, ok := tombs[label]; !ok || ts < at {
					tombs[label] = at
				}
			}

			got := map[group.Label]time.Duration{}
			for _, e := range svc.Entries("x") {
				got[e.Label] = e.UpdatedAt
			}
			if !maps.Equal(got, oracle) {
				t.Fatalf("seed %d op %d: entries diverge from model\nservice = %v\nmodel   = %v",
					seed, op, got, oracle)
			}
			for label, want := range tombs {
				if ts, ok := svc.tombstones["x"][label]; !ok || ts != want {
					t.Fatalf("seed %d op %d: tombstone[%s] = %v (present=%t), model %v — tombstones must be monotone",
						seed, op, label, ts, ok, want)
				}
			}
		}
	}
}
