// Package simtime implements the discrete-event scheduler that drives the
// simulated sensor network. All protocol timing (heartbeat periods, receive
// and wait timers, message airtime, CPU service times) is expressed as
// events on a single virtual clock, which makes runs deterministic and lets
// experiments cover minutes of simulated time in milliseconds of wall time.
//
// The scheduler is built to be allocation-free in steady state, because the
// group protocol is timer-dominated: every heartbeat a member hears stops
// and re-arms its receive timer, so a sweep-scale run cycles through tens of
// thousands of timers. Four design choices make that churn cheap:
//
//   - Events are stored by value in a 4-ary min-heap keyed on (at, seq);
//     nothing is allocated per scheduled event once the heap has grown to
//     the run's working size.
//   - Heap entries are 24-byte plain-old-data records (time, sequence, slot
//     index, generation) with no pointers. The callback, typed handler, and
//     payload of every event live in its pooled slot, which never moves, so
//     sift operations copy small scalar records with no write barriers and
//     the heap array stays dense in cache. The slots slice doubles as a
//     contiguous arena for event payloads: a run's entire timer population
//     occupies a handful of allocations.
//   - Timer handles are value types that reference a pooled slot inside the
//     scheduler. Slots are recycled through an intrusive free list, and a
//     generation counter guards against ABA: a handle that has fired or
//     been stopped can never fire, stop, or observe the slot's next tenant.
//   - Cancellation is lazy. Stop marks the slot released in O(1) and leaves
//     a tombstone in the heap, which is discarded when it reaches the top.
//     The heartbeat-churn Stop+After cycle is therefore O(1) amortized
//     instead of an O(log n) heap removal, and a tombstone lives at most
//     until its original deadline (or until a compaction sweep reclaims it
//     early when tombstones outnumber live events).
//
// Because tombstones are invisible to Step/RunUntil, the total firing order
// of live events is exactly the (at, seq) order the previous eager-removal
// scheduler produced, bit for bit — the determinism guarantees of seeded
// runs are unaffected. TestSchedulerMatchesReferenceModel pins this against
// a sorted-slice reference model.
package simtime

import (
	"context"
	"errors"
	"time"
)

// ErrStopped is returned by run methods when the scheduler was stopped
// explicitly via Stop.
var ErrStopped = errors.New("simtime: scheduler stopped")

// Callback is a function invoked when its event fires. It runs on the
// scheduler's (single) execution thread.
type Callback func()

// EventFunc is the handler of a typed-payload event scheduled with AtEvent
// and friends. The hot paths of the radio medium, the mote CPU, and the
// group protocol use it to schedule work without capturing closures: the
// handler is a package-level function and arg is a pooled record, so the
// schedule site allocates nothing. arg must be a pointer-shaped value —
// storing a pointer in an interface does not allocate.
type EventFunc func(arg any)

// Timer is a handle to a scheduled event. It is a small value: copying it
// is cheap and the zero value is inert (Stop and Pending return false).
// Handles reference a pooled slot in the scheduler; once the timer fires or
// is stopped the slot is recycled, and a generation counter makes every
// outstanding copy of the old handle permanently dead — a stale handle can
// never stop or observe the slot's next occupant.
type Timer struct {
	s    *Scheduler
	at   time.Duration
	slot int32 // slot index + 1; 0 marks the inert zero value
	gen  uint32
}

// Stop cancels the timer. It reports whether the timer was still pending:
// false means it already fired, was already stopped, or is the zero Timer.
func (t Timer) Stop() bool {
	if t.s == nil || t.slot == 0 {
		return false
	}
	s := t.s
	sl := &s.slots[t.slot-1]
	if sl.gen != t.gen || !sl.pending {
		return false
	}
	// Lazy cancellation: release the slot (invalidating the heap entry and
	// every copy of this handle via the generation bump) and leave the heap
	// entry behind as a tombstone.
	s.releaseSlot(t.slot - 1)
	s.live--
	s.tomb++
	s.maybeCompact()
	return true
}

// Pending reports whether the timer has not yet fired or been stopped.
func (t Timer) Pending() bool {
	if t.s == nil || t.slot == 0 {
		return false
	}
	sl := &t.s.slots[t.slot-1]
	return sl.gen == t.gen && sl.pending
}

// When returns the virtual time at which the timer fires (or fired).
func (t Timer) When() time.Duration {
	return t.at
}

// event is one heap entry, stored by value. It is a pointer-free 24-byte
// record: sift operations copy it with no write barriers, which is what
// keeps the heap hot path cache-dense. The event's callback and payload
// live in the slot it references.
type event struct {
	at  time.Duration
	seq uint64
	// slot is the pooled slot holding this event's callback and payload.
	slot int32
	// gen snapshots the slot generation at scheduling time; a mismatch at
	// pop time identifies the entry as a tombstone.
	gen uint32
}

// slotState is one pooled event slot: the stable home of an event's
// callback, typed handler, and payload while its heap entry migrates
// through sift operations. Exactly one of fn/pfn is set.
type slotState struct {
	gen      uint32
	pending  bool
	owner    Owner // scheduling subsystem, for the self-profiler
	nextFree int32
	fn       Callback
	pfn      EventFunc
	arg      any
}

// Scheduler is a deterministic discrete-event executor. It is not safe for
// concurrent use: protocol code runs exclusively inside event callbacks.
type Scheduler struct {
	heap     []event
	slots    []slotState
	freeHead int32 // head of the intrusive slot free list, -1 when empty
	live     int   // scheduled events that have not fired or been stopped
	tomb     int   // cancelled events still occupying heap entries
	now      time.Duration
	seq      uint64
	stopped  bool
	// executed counts events that have fired; useful for sanity checks and
	// run-length accounting in tests.
	executed uint64
	// prof, when non-nil, receives per-owner event counts and callback
	// wall time (see profile.go). labelCtxs holds the prebuilt pprof
	// label contexts, one per owner.
	prof      *Profile
	labelCtxs *[NumOwners]context.Context

	// group, when non-nil, makes this scheduler one spatial shard of a
	// ShardGroup (see shard.go): the sequence counter, the clock, and the
	// stop flag live on the group so that the merged firing order across
	// every shard heap is the same (at, seq) total order a single heap
	// produces. shardID is this scheduler's index within the group and
	// tags cross-shard scheduling and the self-profiler.
	group   *ShardGroup
	shardID int32
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{freeHead: -1}
}

// Now returns the current virtual time. Shards of a deterministic-merge
// ShardGroup share one clock, so every shard observes the same "now"
// regardless of which shard executed the last event. Shards of a parallel
// group keep local clocks: a callback sees its own shard's event time,
// which may differ from other shards' by up to the lookahead window.
func (s *Scheduler) Now() time.Duration {
	if g := s.group; g != nil && !g.par {
		return g.now
	}
	return s.now
}

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 {
	return s.executed
}

// Len returns the number of pending events (cancelled tombstones that have
// not yet been drained from the heap are not counted).
func (s *Scheduler) Len() int {
	return s.live
}

// acquireSlot pops a slot from the free list (or grows the pool) and marks
// it pending. It returns the slot index and its current generation.
func (s *Scheduler) acquireSlot() (int32, uint32) {
	var idx int32
	if s.freeHead >= 0 {
		idx = s.freeHead
		s.freeHead = s.slots[idx].nextFree
	} else {
		idx = int32(len(s.slots))
		s.slots = append(s.slots, slotState{})
	}
	sl := &s.slots[idx]
	sl.pending = true
	return idx, sl.gen
}

// releaseSlot retires a slot: the generation bump invalidates the heap
// entry and every outstanding handle, the payload is dropped so the slot
// pins neither closures nor pooled records, and the slot joins the free
// list.
func (s *Scheduler) releaseSlot(idx int32) {
	sl := &s.slots[idx]
	sl.pending = false
	sl.gen++
	sl.fn = nil
	sl.pfn = nil
	sl.arg = nil
	sl.nextFree = s.freeHead
	s.freeHead = idx
}

// push appends ev and restores the heap invariant.
func (s *Scheduler) push(ev event) {
	s.heap = append(s.heap, ev)
	s.siftUp(len(s.heap) - 1)
	s.live++
}

// schedule is the single scheduling core behind every At/After variant:
// clamp the deadline, draw a sequence number, fill a pooled slot (owner
// tag, callback or typed handler + payload), and push the heap entry. It
// returns what a Timer handle needs; handle-less callers discard it.
func (s *Scheduler) schedule(at time.Duration, owner Owner, fn Callback, pfn EventFunc, arg any) (int32, uint32, time.Duration) {
	var seq uint64
	if g := s.group; g != nil && !g.par {
		// Group-shared sequence numbers keep (at, seq) a total order over
		// the union of every shard heap: the merge executor pops exactly
		// the sequence a single heap would.
		if at < g.now {
			at = g.now
		}
		g.seq++
		seq = g.seq
		if g.executing >= 0 && g.executing != s.shardID {
			g.noteCross(g.executing, s.shardID, at)
		}
	} else {
		// Serial scheduler, or a shard of a parallel group: shard-local
		// clock and sequence counter. In parallel mode every schedule call
		// on this shard happens on its own window goroutine (or on the
		// coordinator at a barrier, when no window runs), so the per-shard
		// (at, seq) order is deterministic without any shared state.
		if at < s.now {
			at = s.now
		}
		s.seq++
		seq = s.seq
	}
	idx, gen := s.acquireSlot()
	sl := &s.slots[idx]
	sl.owner = owner
	sl.fn = fn
	sl.pfn = pfn
	sl.arg = arg
	s.push(event{at: at, seq: seq, slot: idx, gen: gen})
	return idx, gen, at
}

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to "now" (the event fires on the next step). Events scheduled for
// the same instant fire in scheduling order.
func (s *Scheduler) At(at time.Duration, fn Callback) Timer {
	return s.AtOwned(at, OwnerNone, fn)
}

// AtOwned is At with a subsystem owner tag for the self-profiler.
func (s *Scheduler) AtOwned(at time.Duration, owner Owner, fn Callback) Timer {
	idx, gen, at := s.schedule(at, owner, fn, nil, nil)
	return Timer{s: s, at: at, slot: idx + 1, gen: gen}
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (s *Scheduler) After(d time.Duration, fn Callback) Timer {
	return s.AfterOwned(d, OwnerNone, fn)
}

// AfterOwned is After with a subsystem owner tag for the self-profiler.
func (s *Scheduler) AfterOwned(d time.Duration, owner Owner, fn Callback) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtOwned(s.Now()+d, owner, fn)
}

// AtEvent schedules a typed-payload event with no cancellation handle: fn
// is invoked with arg at virtual time at. With a package-level fn and a
// pooled pointer arg the call is allocation-free, which is why the radio
// and mote hot paths use it for delivery batches, CPU completions, and
// CSMA retries — none of which are ever cancelled.
func (s *Scheduler) AtEvent(at time.Duration, fn EventFunc, arg any) {
	s.schedule(at, OwnerNone, nil, fn, arg)
}

// AtEventOwned is AtEvent with a subsystem owner tag for the self-profiler.
func (s *Scheduler) AtEventOwned(at time.Duration, owner Owner, fn EventFunc, arg any) {
	s.schedule(at, owner, nil, fn, arg)
}

// AfterEvent is AtEvent relative to the current time. Negative durations
// are treated as zero.
func (s *Scheduler) AfterEvent(d time.Duration, fn EventFunc, arg any) {
	s.AfterEventOwned(d, OwnerNone, fn, arg)
}

// AfterEventOwned is AfterEvent with a subsystem owner tag.
func (s *Scheduler) AfterEventOwned(d time.Duration, owner Owner, fn EventFunc, arg any) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.Now()+d, owner, nil, fn, arg)
}

// AtEventTimer is AtEvent with a cancellation handle, for hot-path timers
// that need Stop (e.g. the group protocol's pending heartbeat rebroadcast).
func (s *Scheduler) AtEventTimer(at time.Duration, fn EventFunc, arg any) Timer {
	return s.AtEventTimerOwned(at, OwnerNone, fn, arg)
}

// AtEventTimerOwned is AtEventTimer with a subsystem owner tag.
func (s *Scheduler) AtEventTimerOwned(at time.Duration, owner Owner, fn EventFunc, arg any) Timer {
	idx, gen, at := s.schedule(at, owner, nil, fn, arg)
	return Timer{s: s, at: at, slot: idx + 1, gen: gen}
}

// AfterEventTimer is AtEventTimer relative to the current time. Negative
// durations are treated as zero.
func (s *Scheduler) AfterEventTimer(d time.Duration, fn EventFunc, arg any) Timer {
	return s.AfterEventTimerOwned(d, OwnerNone, fn, arg)
}

// AfterEventTimerOwned is AfterEventTimer with a subsystem owner tag.
func (s *Scheduler) AfterEventTimerOwned(d time.Duration, owner Owner, fn EventFunc, arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtEventTimerOwned(s.Now()+d, owner, fn, arg)
}

// drainTop discards tombstones at the heap top and reports whether a live
// event remains. Tombstones are only ever reclaimed here (and in compact),
// so the cost of a cancellation is paid at most once.
func (s *Scheduler) drainTop() bool {
	for len(s.heap) > 0 {
		ev := &s.heap[0]
		if s.slots[ev.slot].gen != ev.gen {
			s.popTop()
			s.tomb--
			continue
		}
		return true
	}
	return false
}

// popTop removes the heap top by value. Entries are pointer-free, so the
// vacated tail needs no clearing.
func (s *Scheduler) popTop() event {
	ev := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return ev
}

// peek returns the shard's earliest live event without popping it, after
// draining tombstones off the top. The merge executor uses it to pick the
// globally earliest head across shards.
func (s *Scheduler) peek() (event, bool) {
	if !s.drainTop() {
		return event{}, false
	}
	return s.heap[0], true
}

// fire executes one popped event: the slot payload is read and the slot
// released before the callback runs, so a callback that schedules new
// events observes a consistent pool. The caller has already advanced the
// clock to ev.at.
func (s *Scheduler) fire(ev event) {
	sl := &s.slots[ev.slot]
	fn, pfn, arg, owner := sl.fn, sl.pfn, sl.arg, sl.owner
	s.releaseSlot(ev.slot)
	s.live--
	s.executed++
	if s.prof != nil {
		s.runProfiled(owner, fn, pfn, arg)
	} else if fn != nil {
		fn()
	} else if pfn != nil {
		pfn(arg)
	}
}

// runWindow fires this shard's events with at < limit (at <= limit when
// inclusive), advancing the shard-local clock, and leaves the clock at
// the window end. It is the per-shard half of the parallel executor
// (ShardGroup.RunParallel) and runs on the shard's window goroutine; the
// shard must belong to a parallel-mode group. Events scheduled during
// the window for times inside it fire in the same window.
func (s *Scheduler) runWindow(limit time.Duration, inclusive bool) {
	for !s.stopped {
		if !s.drainTop() {
			break
		}
		ev := s.heap[0]
		if ev.at > limit || (!inclusive && ev.at == limit) {
			break
		}
		s.popTop()
		s.now = ev.at
		s.fire(ev)
	}
	if !s.stopped && s.now < limit {
		s.now = limit
	}
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed. On a sharded
// scheduler it fires the earliest event of the whole group, whichever
// shard holds it, preserving the global order.
func (s *Scheduler) Step() bool {
	if g := s.group; g != nil {
		return g.Step()
	}
	if s.stopped || !s.drainTop() {
		return false
	}
	ev := s.popTop()
	s.now = ev.at
	s.fire(ev)
	return true
}

// RunUntil executes events in order until the clock would pass the deadline
// or no events remain. On return the clock is set to the deadline (unless
// stopped earlier), so subsequent After calls measure from the deadline.
// On a sharded scheduler it drives the whole group.
func (s *Scheduler) RunUntil(deadline time.Duration) error {
	if g := s.group; g != nil {
		return g.RunUntil(deadline)
	}
	for {
		if s.stopped {
			return ErrStopped
		}
		if !s.drainTop() || s.heap[0].at > deadline {
			break
		}
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// Run executes events until none remain or the scheduler is stopped. On a
// sharded scheduler it drives the whole group.
func (s *Scheduler) Run() error {
	if g := s.group; g != nil {
		return g.Run()
	}
	for s.Step() {
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// Stop halts the scheduler: no further events fire from RunUntil/Run/Step.
// It is intended to be called from within an event callback (e.g. when an
// experiment has observed the condition it was waiting for). Stopping any
// shard of a group stops the whole group. Under the parallel executor the
// stop is window-granular: this shard halts immediately, sibling shards
// finish the current lookahead window first.
func (s *Scheduler) Stop() {
	s.stopped = true
	if g := s.group; g != nil {
		if g.par {
			g.parStop.Store(true)
		} else {
			g.stopped = true
		}
	}
}

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool {
	if g := s.group; g != nil {
		return g.Stopped()
	}
	return s.stopped
}

// maybeCompact sweeps tombstones out of the heap when they outnumber live
// events. Cancelled far-future timers otherwise occupy heap entries until
// their original deadline; the sweep bounds heap growth at 2x the live set
// for any Stop pattern. Rebuilding the heap array does not perturb the pop
// order: (at, seq) is a total order, so any valid heap yields the same
// firing sequence.
func (s *Scheduler) maybeCompact() {
	if s.tomb <= 64 || s.tomb <= s.live {
		return
	}
	kept := s.heap[:0]
	for _, ev := range s.heap {
		if s.slots[ev.slot].gen != ev.gen {
			continue
		}
		kept = append(kept, ev)
	}
	s.heap = kept
	s.tomb = 0
	for i := (len(s.heap) - 2) / 4; i >= 0; i-- {
		s.siftDown(i)
	}
}

// eventLess orders events by (at, seq): time first, scheduling order for
// ties. This is the total order every determinism guarantee leans on.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the 4-ary heap invariant after appending at index i.
func (s *Scheduler) siftUp(i int) {
	ev := s.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&ev, &s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = ev
}

// siftDown restores the 4-ary heap invariant below index i. A 4-ary layout
// halves the tree depth of the binary heap, trading slightly more sibling
// comparisons (cache-friendly: the four children are adjacent) for fewer
// levels moved per push/pop.
func (s *Scheduler) siftDown(i int) {
	n := len(s.heap)
	ev := s.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&s.heap[c], &s.heap[min]) {
				min = c
			}
		}
		if !eventLess(&s.heap[min], &ev) {
			break
		}
		s.heap[i] = s.heap[min]
		i = min
	}
	s.heap[i] = ev
}

// Ticker repeatedly invokes a callback at a fixed period until stopped. It
// is the virtual-time analogue of time.Ticker and is used for heartbeats,
// sensing scans, and report periods. The re-arm closure is created once at
// construction, so a running ticker allocates nothing per tick.
type Ticker struct {
	s      *Scheduler
	period time.Duration
	owner  Owner
	fn     Callback
	fire   Callback
	timer  Timer
	done   bool
}

// NewTicker schedules fn every period, with the first invocation one period
// from now. A non-positive period is rejected with a nil Ticker.
func NewTicker(s *Scheduler, period time.Duration, fn Callback) *Ticker {
	return NewTickerOwned(s, period, OwnerNone, fn)
}

// NewTickerOwned is NewTicker with a subsystem owner tag: every tick is
// attributed to owner by the self-profiler.
func NewTickerOwned(s *Scheduler, period time.Duration, owner Owner, fn Callback) *Ticker {
	if period <= 0 {
		return nil
	}
	t := &Ticker{s: s, period: period, owner: owner, fn: fn}
	t.fire = func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done { // fn may have stopped the ticker
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.s.AfterOwned(t.period, t.owner, t.fire)
}

// Stop cancels future invocations. It is idempotent.
func (t *Ticker) Stop() {
	if t == nil || t.done {
		return
	}
	t.done = true
	t.timer.Stop()
}

// Reset changes the period and restarts the ticker, with the next invocation
// one new period from now.
func (t *Ticker) Reset(period time.Duration) {
	if t == nil || period <= 0 {
		return
	}
	t.timer.Stop()
	t.done = false
	t.period = period
	t.arm()
}
