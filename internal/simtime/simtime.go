// Package simtime implements the discrete-event scheduler that drives the
// simulated sensor network. All protocol timing (heartbeat periods, receive
// and wait timers, message airtime, CPU service times) is expressed as
// events on a single virtual clock, which makes runs deterministic and lets
// experiments cover minutes of simulated time in milliseconds of wall time.
package simtime

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by run methods when the scheduler was stopped
// explicitly via Stop.
var ErrStopped = errors.New("simtime: scheduler stopped")

// Callback is a function invoked when its event fires. It runs on the
// scheduler's (single) execution thread.
type Callback func()

// Timer is a handle to a scheduled event. The zero value is not usable;
// timers are created by Scheduler.At and Scheduler.After.
type Timer struct {
	s     *Scheduler
	index int // index in the heap, -1 when fired or cancelled
	at    time.Duration
	seq   uint64
	fn    Callback
}

// Stop cancels the timer. It reports whether the timer was still pending:
// false means it already fired or was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.index < 0 {
		return false
	}
	heap.Remove(&t.s.queue, t.index)
	t.index = -1
	return true
}

// Pending reports whether the timer has not yet fired or been stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.index >= 0
}

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() time.Duration {
	return t.at
}

// Scheduler is a deterministic discrete-event executor. It is not safe for
// concurrent use: protocol code runs exclusively inside event callbacks.
type Scheduler struct {
	queue   eventQueue
	now     time.Duration
	seq     uint64
	stopped bool
	// Executed counts events that have fired; useful for sanity checks and
	// run-length accounting in tests.
	executed uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration {
	return s.now
}

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 {
	return s.executed
}

// Len returns the number of pending events.
func (s *Scheduler) Len() int {
	return s.queue.Len()
}

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to "now" (the event fires on the next step). Events scheduled for
// the same instant fire in scheduling order.
func (s *Scheduler) At(at time.Duration, fn Callback) *Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	t := &Timer{s: s, at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, t)
	return t
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (s *Scheduler) After(d time.Duration, fn Callback) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if s.stopped || s.queue.Len() == 0 {
		return false
	}
	t := heap.Pop(&s.queue).(*Timer)
	t.index = -1
	s.now = t.at
	s.executed++
	t.fn()
	return true
}

// RunUntil executes events in order until the clock would pass the deadline
// or no events remain. On return the clock is set to the deadline (unless
// stopped earlier), so subsequent After calls measure from the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) error {
	for {
		if s.stopped {
			return ErrStopped
		}
		if s.queue.Len() == 0 || s.queue.peek().at > deadline {
			break
		}
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// Run executes events until none remain or the scheduler is stopped.
func (s *Scheduler) Run() error {
	for s.Step() {
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// Stop halts the scheduler: no further events fire from RunUntil/Run/Step.
// It is intended to be called from within an event callback (e.g. when an
// experiment has observed the condition it was waiting for).
func (s *Scheduler) Stop() {
	s.stopped = true
}

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool {
	return s.stopped
}

// eventQueue is a min-heap on (at, seq) implementing heap.Interface.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

func (q eventQueue) peek() *Timer {
	return q[0]
}

// Ticker repeatedly invokes a callback at a fixed period until stopped. It
// is the virtual-time analogue of time.Ticker and is used for heartbeats,
// sensing scans, and report periods.
type Ticker struct {
	s      *Scheduler
	period time.Duration
	fn     Callback
	timer  *Timer
	done   bool
}

// NewTicker schedules fn every period, with the first invocation one period
// from now. A non-positive period is rejected with a nil Ticker.
func NewTicker(s *Scheduler, period time.Duration, fn Callback) *Ticker {
	if period <= 0 {
		return nil
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.s.After(t.period, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done { // fn may have stopped the ticker
			t.arm()
		}
	})
}

// Stop cancels future invocations. It is idempotent.
func (t *Ticker) Stop() {
	if t == nil || t.done {
		return
	}
	t.done = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Reset changes the period and restarts the ticker, with the next invocation
// one new period from now.
func (t *Ticker) Reset(period time.Duration) {
	if t == nil || period <= 0 {
		return
	}
	if t.timer != nil {
		t.timer.Stop()
	}
	t.done = false
	t.period = period
	t.arm()
}
