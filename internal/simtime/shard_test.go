package simtime

import (
	"math/rand"
	"testing"
	"time"
)

// TestShardGroupMatchesReferenceModel drives a ShardGroup and the PR 4
// sorted-slice reference model through independently seeded random
// schedules of interleaved At/Stop/Step operations, with every event
// placed on a randomly drawn shard (including events that re-schedule
// onto other shards and stop timers from inside their callbacks). The
// merge executor must reproduce the reference's firing order, firing
// timestamps, executed counts, and pending-length bookkeeping exactly:
// sharding is a partition of the heap, never a reordering.
func TestShardGroupMatchesReferenceModel(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		for schedule := 0; schedule < 250; schedule++ {
			rng := rand.New(rand.NewSource(int64(k*10_000+schedule) + 1))
			g := NewShardGroup(k)
			ref := &refModel{}

			var got []firing
			nextID := 0
			live := map[int]Timer{}
			ids := []int{}

			removeID := func(id int) {
				delete(live, id)
				for i, v := range ids {
					if v == id {
						ids = append(ids[:i], ids[i+1:]...)
						break
					}
				}
			}

			var schedOne func(at time.Duration, rearm int)
			schedOne = func(at time.Duration, rearm int) {
				id := nextID
				nextID++
				shard := g.Shard(rng.Intn(k))
				tm := shard.At(at, func() {
					got = append(got, firing{id: id, at: g.Now()})
					removeID(id)
					if rearm > 0 {
						// Callback churn across shards: the successor lands
						// on a random shard, possibly not the firing one.
						schedOne(g.Now()+time.Duration(rng.Intn(50))*time.Millisecond, rearm-1)
						if len(ids) > 0 {
							victim := ids[rng.Intn(len(ids))]
							sGot := live[victim].Stop()
							refGot := ref.stop(victim)
							if sGot != refGot {
								t.Fatalf("k=%d schedule %d: nested Stop(%d) = %v, ref %v", k, schedule, victim, sGot, refGot)
							}
							if sGot {
								removeID(victim)
							}
						}
					}
				})
				live[id] = tm
				ids = append(ids, id)
				ref.schedule(at, id)
			}

			ops := 30 + rng.Intn(120)
			for op := 0; op < ops; op++ {
				switch r := rng.Float64(); {
				case r < 0.45:
					rearm := 0
					if rng.Float64() < 0.2 {
						rearm = 1 + rng.Intn(2)
					}
					at := g.Now() + time.Duration(rng.Intn(200))*time.Millisecond
					schedOne(at, rearm)
				case r < 0.70:
					if len(ids) == 0 {
						continue
					}
					victim := ids[rng.Intn(len(ids))]
					sGot := live[victim].Stop()
					refGot := ref.stop(victim)
					if sGot != refGot {
						t.Fatalf("k=%d schedule %d op %d: Stop(%d) = %v, ref %v", k, schedule, op, victim, sGot, refGot)
					}
					if sGot {
						removeID(victim)
					}
				default:
					before := len(got)
					stepped := g.Step()
					refID, refAt, refStepped := ref.step()
					if stepped != refStepped {
						t.Fatalf("k=%d schedule %d op %d: Step() = %v, ref %v", k, schedule, op, stepped, refStepped)
					}
					if stepped {
						if len(got) != before+1 {
							t.Fatalf("k=%d schedule %d op %d: Step fired %d events, want 1", k, schedule, op, len(got)-before)
						}
						f := got[len(got)-1]
						if f.id != refID || f.at != refAt {
							t.Fatalf("k=%d schedule %d op %d: fired (%d, %v), ref (%d, %v)", k, schedule, op, f.id, f.at, refID, refAt)
						}
						if g.Now() != ref.now {
							t.Fatalf("k=%d schedule %d op %d: Now() = %v, ref %v", k, schedule, op, g.Now(), ref.now)
						}
					}
				}
				if g.Len() != len(ref.events) {
					t.Fatalf("k=%d schedule %d op %d: Len() = %d, ref %d", k, schedule, op, g.Len(), len(ref.events))
				}
			}

			for {
				stepped := g.Step()
				refID, refAt, refStepped := ref.step()
				if stepped != refStepped {
					t.Fatalf("k=%d schedule %d drain: Step() = %v, ref %v", k, schedule, stepped, refStepped)
				}
				if !stepped {
					break
				}
				f := got[len(got)-1]
				if f.id != refID || f.at != refAt {
					t.Fatalf("k=%d schedule %d drain: fired (%d, %v), ref (%d, %v)", k, schedule, f.id, f.at, refID, refAt)
				}
			}
			if g.Executed() != ref.executed {
				t.Fatalf("k=%d schedule %d: Executed() = %d, ref %d", k, schedule, g.Executed(), ref.executed)
			}
		}
	}
}

// TestShardClockIsShared checks every shard observes the group clock:
// after an event fires on one shard, Now() on every other shard has
// advanced with it, and relative (After) scheduling on any shard is
// anchored to the shared clock, not a stale local one.
func TestShardClockIsShared(t *testing.T) {
	g := NewShardGroup(3)
	var order []string
	g.Shard(1).At(10*time.Millisecond, func() {
		order = append(order, "a")
		// Relative scheduling from inside a shard-1 callback onto shard 2
		// must be anchored at the shared now (10ms), not shard 2's last
		// executed time (never).
		g.Shard(2).After(5*time.Millisecond, func() {
			order = append(order, "b")
			if g.Now() != 15*time.Millisecond {
				t.Errorf("cross-shard After fired at %v, want 15ms", g.Now())
			}
		})
		for i := 0; i < g.Shards(); i++ {
			if got := g.Shard(i).Now(); got != 10*time.Millisecond {
				t.Errorf("shard %d Now() = %v during shard 1 callback, want 10ms", i, got)
			}
		}
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

// TestShardHorizonsMonotonic checks each shard's committed horizon only
// advances, never exceeds the group clock, and that the group clock
// equals the max horizon while events are flowing.
func TestShardHorizonsMonotonic(t *testing.T) {
	const k = 4
	g := NewShardGroup(k)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		g.Shard(rng.Intn(k)).At(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
	}
	prev := make([]time.Duration, k)
	for g.Step() {
		maxH := time.Duration(0)
		for i := 0; i < k; i++ {
			h := g.Horizon(i)
			if h < prev[i] {
				t.Fatalf("shard %d horizon regressed: %v -> %v", i, prev[i], h)
			}
			if h > g.Now() {
				t.Fatalf("shard %d horizon %v ahead of group clock %v", i, h, g.Now())
			}
			prev[i] = h
			if h > maxH {
				maxH = h
			}
		}
		if maxH != g.Now() {
			t.Fatalf("max horizon %v != group clock %v", maxH, g.Now())
		}
	}
}

// TestShardMailboxAccounting checks cross-shard schedulings are counted
// on the right (from, to) pair with the right minimum slack, and that
// same-shard scheduling stays out of the mailboxes.
func TestShardMailboxAccounting(t *testing.T) {
	g := NewShardGroup(3)
	g.Shard(0).At(10*time.Millisecond, func() {
		g.Shard(1).After(7*time.Millisecond, func() {})  // 0 -> 1, slack 7ms
		g.Shard(1).After(3*time.Millisecond, func() {})  // 0 -> 1, slack 3ms
		g.Shard(2).After(20*time.Millisecond, func() {}) // 0 -> 2, slack 20ms
		g.Shard(0).After(time.Millisecond, func() {})    // same shard: unaccounted
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if st := g.Mailbox(0, 1); st.Events != 2 || st.MinSlack != 3*time.Millisecond {
		t.Fatalf("Mailbox(0,1) = %+v, want {2 3ms}", st)
	}
	if st := g.Mailbox(0, 2); st.Events != 1 || st.MinSlack != 20*time.Millisecond {
		t.Fatalf("Mailbox(0,2) = %+v, want {1 20ms}", st)
	}
	if st := g.Mailbox(1, 0); st.Events != 0 {
		t.Fatalf("Mailbox(1,0) = %+v, want empty", st)
	}
	if got := g.CrossEvents(); got != 3 {
		t.Fatalf("CrossEvents() = %d, want 3", got)
	}
	// Scheduling from outside any callback (executing == -1) is run setup,
	// not cross-shard traffic.
	g2 := NewShardGroup(2)
	g2.Shard(1).At(time.Millisecond, func() {})
	if got := g2.CrossEvents(); got != 0 {
		t.Fatalf("setup scheduling counted as cross-shard: %d", got)
	}
}

// TestShardGroupRunUntilAndStop checks the group run loop mirrors
// Scheduler.RunUntil semantics: the clock rests at the deadline, later
// events stay pending, and Stop from inside a callback (on the shard or
// the group) halts the run with ErrStopped from every shard's RunUntil.
func TestShardGroupRunUntilAndStop(t *testing.T) {
	g := NewShardGroup(2)
	fired := 0
	g.Shard(0).At(10*time.Millisecond, func() { fired++ })
	g.Shard(1).At(30*time.Millisecond, func() { fired++ })
	// Driving through a shard's RunUntil must drive the whole group.
	if err := g.Shard(1).RunUntil(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after RunUntil(20ms), want 1", fired)
	}
	if g.Now() != 20*time.Millisecond || g.Shard(0).Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v/%v, want 20ms", g.Now(), g.Shard(0).Now())
	}
	if g.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 pending", g.Len())
	}

	g.Shard(0).At(25*time.Millisecond, func() { g.Shard(1).Stop() })
	if err := g.RunUntil(time.Second); err != ErrStopped {
		t.Fatalf("RunUntil after Stop = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("events fired after Stop: %d", fired)
	}
	if !g.Stopped() || !g.Shard(0).Stopped() {
		t.Fatal("Stopped() not visible group-wide")
	}
}

// TestShardGroupProfileAttribution checks per-shard profile attribution:
// every executed event is tallied under the shard that ran it.
func TestShardGroupProfileAttribution(t *testing.T) {
	g := NewShardGroup(3)
	p := NewProfile()
	g.SetProfile(p)
	for i := 0; i < 3; i++ {
		shard := g.Shard(i)
		for j := 0; j <= i; j++ {
			shard.At(time.Duration(j+1)*time.Millisecond, func() {})
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	stats := p.ShardSnapshot()
	if len(stats) != 3 {
		t.Fatalf("ShardSnapshot len = %d, want 3", len(stats))
	}
	for i, st := range stats {
		if st.Events != uint64(i+1) {
			t.Fatalf("shard %d events = %d, want %d", i, st.Events, i+1)
		}
	}
	if p.TotalEvents() != 6 {
		t.Fatalf("TotalEvents = %d, want 6", p.TotalEvents())
	}
}

// TestShardSeedStreams pins the per-shard RNG stream derivation: the
// mapping is a pure function of (seed, shard) — invariant across shard
// counts by construction, so shard 0 of a 2-way run and shard 0 of an
// 8-way run draw the same stream — distinct across shards of one run,
// distinct from the raw run seed, and decorrelated enough that the
// leading draws of neighboring streams share no prefix.
func TestShardSeedStreams(t *testing.T) {
	seen := map[int64]int{}
	for shard := 0; shard < 16; shard++ {
		s := ShardSeed(42, shard)
		if s == 42 {
			t.Errorf("shard %d stream seed equals the run seed", shard)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("shards %d and %d derive the same stream seed %d", prev, shard, s)
		}
		seen[s] = shard
		if again := ShardSeed(42, shard); again != s {
			t.Errorf("shard %d seed not stable: %d then %d", shard, s, again)
		}
	}
	// Different run seeds must move every shard's stream.
	for shard := 0; shard < 16; shard++ {
		if ShardSeed(42, shard) == ShardSeed(43, shard) {
			t.Errorf("shard %d stream identical across run seeds 42 and 43", shard)
		}
	}
	// Stream independence smoke: adjacent shards' generators must not
	// track each other over their first draws.
	a := rand.New(rand.NewSource(ShardSeed(7, 0)))
	b := rand.New(rand.NewSource(ShardSeed(7, 1)))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("adjacent shard streams collided on %d of 64 draws", same)
	}
}
