// Spatially sharded execution: a ShardGroup partitions one run's event
// population across k scheduler shards — each a full clone of the pooled
// 4-ary heap, its timer slots, and its free list — and executes them with
// a deterministic k-way merge. The three pieces of state that define the
// serial semantics are group-shared:
//
//   - the sequence counter, so (at, seq) stays a total order over the
//     union of the shard heaps;
//   - the clock, so every shard observes the same "now" no matter which
//     shard fired the last event;
//   - the stop flag, so stopping any shard stops the run.
//
// Because the merge executor always fires the globally least (at, seq)
// head, the execution (and therefore every RNG draw, stats update, and
// observability emission) is byte-for-byte the single-heap order: a
// sharded run's trace is identical to serial at any shard count. That is
// the determinism contract the differential battery in internal/eval
// pins.
//
// Why a deterministic merge rather than free-running shards behind a
// conservative-lookahead barrier: the radio model gives cross-shard
// *deliveries* a natural lookahead of one packet time (airtime plus
// propagation — see internal/radio's mailbox accounting), but two
// couplings have zero lookahead and pin the commit granularity to a
// single event. First, a frame transmitted at time t occupies the channel
// at every in-range receiver from t onward, so a boundary mote's CSMA
// busy check or collision overlap in a neighboring shard can observe an
// effect at the very timestamp it was caused. Second, the medium draws
// loss and backoff randomness from one seeded stream in global event
// order; any reordering of draws across shards changes their values, not
// just their order. The shard layer therefore keeps the heaps, ownership,
// horizons, and mailbox protocol of the distributed design — per-shard
// heaps stay small and cache-dense, and cross-shard traffic is classified
// and bounded — while the executor interleaves shards deterministically.
// Free-running windows become possible once randomness is partitioned
// per shard (counter-based, mote-keyed draws); the horizon bookkeeping
// here is written so that executor can slot in without changing the
// scheduling API.
package simtime

import "time"

// ShardMailboxStat accounts one ordered shard pair's cross-shard
// scheduling traffic: events scheduled onto shard `to` while shard `from`
// was executing.
type ShardMailboxStat struct {
	// Events counts cross-shard schedulings on this pair.
	Events uint64
	// MinSlack is the smallest (at - now) over those schedulings: how far
	// ahead of the sending shard's committed horizon the earliest-landing
	// cross-shard event was placed. Zero-valued (and meaningless) while
	// Events is 0.
	MinSlack time.Duration
}

// ShardGroup is a deterministic sharded discrete-event executor: k
// scheduler shards sharing one sequence counter, one clock, and one stop
// flag, merged in (at, seq) order. It is not safe for concurrent use;
// like the Scheduler, all protocol code runs inside event callbacks on
// the executor's goroutine.
type ShardGroup struct {
	shards  []*Scheduler
	seq     uint64
	now     time.Duration
	stopped bool
	// executing is the shard whose event callback is currently running
	// (-1 between events); schedule() uses it to classify cross-shard
	// scheduling.
	executing int32
	// executed counts events fired through the group executor.
	executed uint64
	// horizons[i] is shard i's committed horizon: the timestamp of the
	// last event it executed. A conservative free-running executor may
	// safely advance shard i to min over neighbor horizons plus the
	// cross-shard lookahead; the merge executor maintains the horizons so
	// the invariant is observable and testable.
	horizons []time.Duration
	// mail is the k x k cross-shard mailbox accounting matrix, indexed
	// from*k + to.
	mail []ShardMailboxStat
}

// NewShardGroup returns a group of k empty scheduler shards (k >= 1)
// sharing one clock and sequence source. Shard 0 is the conventional home
// of run-global events (sensing sweep, series sampler, chaos schedule).
func NewShardGroup(k int) *ShardGroup {
	if k < 1 {
		k = 1
	}
	g := &ShardGroup{
		shards:    make([]*Scheduler, k),
		executing: -1,
		horizons:  make([]time.Duration, k),
		mail:      make([]ShardMailboxStat, k*k),
	}
	for i := range g.shards {
		s := NewScheduler()
		s.group = g
		s.shardID = int32(i)
		g.shards[i] = s
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's scheduler. Motes owned by region i schedule all
// their protocol timers through it.
func (g *ShardGroup) Shard(i int) *Scheduler { return g.shards[i] }

// Schedulers returns the shard schedulers in shard order. The slice is
// shared; callers must not mutate it.
func (g *ShardGroup) Schedulers() []*Scheduler { return g.shards }

// Now returns the group's (shared) virtual clock.
func (g *ShardGroup) Now() time.Duration { return g.now }

// Executed returns the number of events fired through the group.
func (g *ShardGroup) Executed() uint64 { return g.executed }

// Len returns the number of pending events across all shards.
func (g *ShardGroup) Len() int {
	total := 0
	for _, s := range g.shards {
		total += s.live
	}
	return total
}

// Horizon returns shard i's committed horizon: the timestamp of the last
// event it executed (zero before its first event).
func (g *ShardGroup) Horizon(i int) time.Duration { return g.horizons[i] }

// Mailbox returns the cross-shard accounting for the ordered pair
// (from, to).
func (g *ShardGroup) Mailbox(from, to int) ShardMailboxStat {
	return g.mail[from*len(g.shards)+to]
}

// CrossEvents sums cross-shard scheduling counts over all pairs.
func (g *ShardGroup) CrossEvents() uint64 {
	var total uint64
	for i := range g.mail {
		total += g.mail[i].Events
	}
	return total
}

// noteCross records one cross-shard scheduling: an event placed on shard
// `to` at timestamp `at` while shard `from` was executing.
func (g *ShardGroup) noteCross(from, to int32, at time.Duration) {
	st := &g.mail[int(from)*len(g.shards)+int(to)]
	slack := at - g.now
	if st.Events == 0 || slack < st.MinSlack {
		st.MinSlack = slack
	}
	st.Events++
}

// pickMin returns the shard holding the globally least (at, seq) head, or
// -1 when every shard is drained. Tombstones are discarded during the
// scan.
func (g *ShardGroup) pickMin() (int, event) {
	best := -1
	var bestEv event
	for i, s := range g.shards {
		ev, ok := s.peek()
		if !ok {
			continue
		}
		if best < 0 || eventLess(&ev, &bestEv) {
			best, bestEv = i, ev
		}
	}
	return best, bestEv
}

// stepShard pops and fires the head event of shard i, advancing the
// shared clock and the shard's committed horizon.
func (g *ShardGroup) stepShard(i int, ev event) {
	s := g.shards[i]
	s.popTop()
	g.now = ev.at
	g.horizons[i] = ev.at
	g.executed++
	g.executing = int32(i)
	s.fire(ev)
	g.executing = -1
}

// Step fires the globally earliest pending event across all shards. It
// reports whether an event was executed.
func (g *ShardGroup) Step() bool {
	if g.stopped {
		return false
	}
	i, ev := g.pickMin()
	if i < 0 {
		return false
	}
	g.stepShard(i, ev)
	return true
}

// RunUntil executes events in global (at, seq) order until the clock
// would pass the deadline or no events remain, mirroring
// Scheduler.RunUntil: on return the clock rests at the deadline unless
// the group was stopped.
func (g *ShardGroup) RunUntil(deadline time.Duration) error {
	for {
		if g.stopped {
			return ErrStopped
		}
		i, ev := g.pickMin()
		if i < 0 || ev.at > deadline {
			break
		}
		g.stepShard(i, ev)
	}
	if g.stopped {
		return ErrStopped
	}
	if g.now < deadline {
		g.now = deadline
	}
	return nil
}

// Run executes events until none remain or the group is stopped.
func (g *ShardGroup) Run() error {
	for g.Step() {
	}
	if g.stopped {
		return ErrStopped
	}
	return nil
}

// Stop halts the group: no further events fire.
func (g *ShardGroup) Stop() { g.stopped = true }

// Stopped reports whether Stop has been called (on the group or any of
// its shards).
func (g *ShardGroup) Stopped() bool { return g.stopped }

// SetProfile attaches a self-profile to every shard (nil detaches). When
// the profile has a shard dimension (EnsureShards), each shard's events
// are additionally tallied under its shard index.
func (g *ShardGroup) SetProfile(p *Profile) {
	if p != nil {
		p.EnsureShards(len(g.shards))
	}
	for _, s := range g.shards {
		s.SetProfile(p)
	}
}
