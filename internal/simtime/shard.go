// Spatially sharded execution: a ShardGroup partitions one run's event
// population across k scheduler shards — each a full clone of the pooled
// 4-ary heap, its timer slots, and its free list — and executes them with
// a deterministic k-way merge. The three pieces of state that define the
// serial semantics are group-shared:
//
//   - the sequence counter, so (at, seq) stays a total order over the
//     union of the shard heaps;
//   - the clock, so every shard observes the same "now" no matter which
//     shard fired the last event;
//   - the stop flag, so stopping any shard stops the run.
//
// Because the merge executor always fires the globally least (at, seq)
// head, the execution (and therefore every RNG draw, stats update, and
// observability emission) is byte-for-byte the single-heap order: a
// sharded run's trace is identical to serial at any shard count. That is
// the determinism contract the differential battery in internal/eval
// pins.
//
// Why a deterministic merge rather than free-running shards behind a
// conservative-lookahead barrier: the radio model gives cross-shard
// *deliveries* a natural lookahead of one packet time (airtime plus
// propagation — see internal/radio's mailbox accounting), but two
// couplings have zero lookahead and pin the commit granularity to a
// single event. First, a frame transmitted at time t occupies the channel
// at every in-range receiver from t onward, so a boundary mote's CSMA
// busy check or collision overlap in a neighboring shard can observe an
// effect at the very timestamp it was caused. Second, the medium draws
// loss and backoff randomness from one seeded stream in global event
// order; any reordering of draws across shards changes their values, not
// just their order. The shard layer therefore keeps the heaps, ownership,
// horizons, and mailbox protocol of the distributed design — per-shard
// heaps stay small and cache-dense, and cross-shard traffic is classified
// and bounded — while the executor interleaves shards deterministically.
// Free-running windows become possible once randomness is partitioned
// per shard; EnableParallel switches the group into exactly that mode.
// In parallel mode each shard owns a local clock, sequence counter, and
// (via the network layer) RNG stream, and RunParallel executes the shards
// on separate goroutines in conservative lookahead windows: every shard
// fires all of its events inside [T, T+delta), a barrier drains the
// cross-shard mailboxes (whose entries are guaranteed to land at or after
// T+delta by the radio lookahead bound), and the window advances. This is
// a lower-bound-on-timestamp (LBTS) protocol with a constant lookahead:
// results are no longer byte-identical to serial — they are statistically
// equivalent, which the internal/eval equivalence battery asserts at the
// distribution level.
package simtime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardMailboxStat accounts one ordered shard pair's cross-shard
// scheduling traffic: events scheduled onto shard `to` while shard `from`
// was executing.
type ShardMailboxStat struct {
	// Events counts cross-shard schedulings on this pair.
	Events uint64
	// MinSlack is the smallest (at - now) over those schedulings: how far
	// ahead of the sending shard's committed horizon the earliest-landing
	// cross-shard event was placed. Zero-valued (and meaningless) while
	// Events is 0.
	MinSlack time.Duration
}

// ShardGroup is a deterministic sharded discrete-event executor: k
// scheduler shards sharing one sequence counter, one clock, and one stop
// flag, merged in (at, seq) order. It is not safe for concurrent use;
// like the Scheduler, all protocol code runs inside event callbacks on
// the executor's goroutine.
type ShardGroup struct {
	shards  []*Scheduler
	seq     uint64
	now     time.Duration
	stopped bool
	// executing is the shard whose event callback is currently running
	// (-1 between events); schedule() uses it to classify cross-shard
	// scheduling.
	executing int32
	// executed counts events fired through the group executor.
	executed uint64
	// horizons[i] is shard i's committed horizon: the timestamp of the
	// last event it executed. A conservative free-running executor may
	// safely advance shard i to min over neighbor horizons plus the
	// cross-shard lookahead; the merge executor maintains the horizons so
	// the invariant is observable and testable.
	horizons []time.Duration
	// mail is the k x k cross-shard mailbox accounting matrix, indexed
	// from*k + to.
	mail []ShardMailboxStat

	// par marks the group as free-running parallel: shards keep local
	// clocks and sequence counters, and RunParallel executes them on
	// separate goroutines in conservative lookahead windows. parStop is
	// the parallel-mode stop flag (atomic, because any shard goroutine
	// may request a stop while others are mid-window).
	par     bool
	parStop atomic.Bool
	// windowCap, when set, bounds RunParallel's idle skip: a window never
	// extends past the earliest cap time at or after its start (barrier
	// work such as series sampling stays on cadence). Called only on the
	// coordinator between windows.
	windowCap func(after time.Duration) (time.Duration, bool)
}

// NewShardGroup returns a group of k empty scheduler shards (k >= 1)
// sharing one clock and sequence source. Shard 0 is the conventional home
// of run-global events (sensing sweep, series sampler, chaos schedule).
func NewShardGroup(k int) *ShardGroup {
	if k < 1 {
		k = 1
	}
	g := &ShardGroup{
		shards:    make([]*Scheduler, k),
		executing: -1,
		horizons:  make([]time.Duration, k),
		mail:      make([]ShardMailboxStat, k*k),
	}
	for i := range g.shards {
		s := NewScheduler()
		s.group = g
		s.shardID = int32(i)
		g.shards[i] = s
	}
	return g
}

// EnableParallel switches the group into free-running parallel mode:
// shards keep local clocks and sequence counters, and RunParallel
// executes them on separate goroutines. It must be called before any
// event is scheduled on any shard — mixing group-sequenced and
// shard-sequenced events would leave the per-shard (at, seq) order
// inconsistent with scheduling order.
func (g *ShardGroup) EnableParallel() { g.par = true }

// Parallel reports whether the group runs the free-running parallel
// executor rather than the deterministic single-threaded merge.
func (g *ShardGroup) Parallel() bool { return g.par }

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's scheduler. Motes owned by region i schedule all
// their protocol timers through it.
func (g *ShardGroup) Shard(i int) *Scheduler { return g.shards[i] }

// Schedulers returns the shard schedulers in shard order. The slice is
// shared; callers must not mutate it.
func (g *ShardGroup) Schedulers() []*Scheduler { return g.shards }

// Now returns the group's (shared) virtual clock.
func (g *ShardGroup) Now() time.Duration { return g.now }

// Executed returns the number of events fired through the group. In
// parallel mode the count is per-shard and summed here; call it only
// between windows (e.g. after a run), not while shards are executing.
func (g *ShardGroup) Executed() uint64 {
	if g.par {
		var total uint64
		for _, s := range g.shards {
			total += s.executed
		}
		return total
	}
	return g.executed
}

// Len returns the number of pending events across all shards.
func (g *ShardGroup) Len() int {
	total := 0
	for _, s := range g.shards {
		total += s.live
	}
	return total
}

// Horizon returns shard i's committed horizon: the timestamp of the last
// event it executed (zero before its first event).
func (g *ShardGroup) Horizon(i int) time.Duration { return g.horizons[i] }

// Mailbox returns the cross-shard accounting for the ordered pair
// (from, to).
func (g *ShardGroup) Mailbox(from, to int) ShardMailboxStat {
	return g.mail[from*len(g.shards)+to]
}

// CrossEvents sums cross-shard scheduling counts over all pairs.
func (g *ShardGroup) CrossEvents() uint64 {
	var total uint64
	for i := range g.mail {
		total += g.mail[i].Events
	}
	return total
}

// noteCross records one cross-shard scheduling: an event placed on shard
// `to` at timestamp `at` while shard `from` was executing.
func (g *ShardGroup) noteCross(from, to int32, at time.Duration) {
	st := &g.mail[int(from)*len(g.shards)+int(to)]
	slack := at - g.now
	if st.Events == 0 || slack < st.MinSlack {
		st.MinSlack = slack
	}
	st.Events++
}

// pickMin returns the shard holding the globally least (at, seq) head, or
// -1 when every shard is drained. Tombstones are discarded during the
// scan.
func (g *ShardGroup) pickMin() (int, event) {
	best := -1
	var bestEv event
	for i, s := range g.shards {
		ev, ok := s.peek()
		if !ok {
			continue
		}
		if best < 0 || eventLess(&ev, &bestEv) {
			best, bestEv = i, ev
		}
	}
	return best, bestEv
}

// stepShard pops and fires the head event of shard i, advancing the
// shared clock and the shard's committed horizon. The shard-local clock
// is kept in sync so that a parallel-mode group driven through the
// single-threaded merge (Step from a Session, say) still gives callbacks
// a correct local Now.
func (g *ShardGroup) stepShard(i int, ev event) {
	s := g.shards[i]
	s.popTop()
	g.now = ev.at
	s.now = ev.at
	g.horizons[i] = ev.at
	g.executed++
	g.executing = int32(i)
	s.fire(ev)
	g.executing = -1
}

// Step fires the globally earliest pending event across all shards. It
// reports whether an event was executed.
func (g *ShardGroup) Step() bool {
	if g.Stopped() {
		return false
	}
	i, ev := g.pickMin()
	if i < 0 {
		return false
	}
	g.stepShard(i, ev)
	return true
}

// RunUntil executes events in global (at, seq) order until the clock
// would pass the deadline or no events remain, mirroring
// Scheduler.RunUntil: on return the clock rests at the deadline unless
// the group was stopped.
func (g *ShardGroup) RunUntil(deadline time.Duration) error {
	for {
		if g.Stopped() {
			return ErrStopped
		}
		i, ev := g.pickMin()
		if i < 0 || ev.at > deadline {
			break
		}
		g.stepShard(i, ev)
	}
	if g.Stopped() {
		return ErrStopped
	}
	if g.now < deadline {
		g.now = deadline
	}
	if g.par {
		for _, s := range g.shards {
			if s.now < deadline {
				s.now = deadline
			}
		}
	}
	return nil
}

// Run executes events until none remain or the group is stopped.
func (g *ShardGroup) Run() error {
	for g.Step() {
	}
	if g.Stopped() {
		return ErrStopped
	}
	return nil
}

// windowJob is one lookahead window's work order for a shard worker.
type windowJob struct {
	limit     time.Duration
	inclusive bool
}

// RunParallel executes the group's shards on separate goroutines in
// conservative lookahead windows of width delta until the clock reaches
// deadline: every shard fires all of its events inside the current
// window, then the coordinator runs barrier (draining cross-shard
// mailboxes, merging buffered observability lanes, sampling series) and
// the window advances. delta must be a lower bound on the latency of any
// cross-shard interaction — the radio's airtime+PropDelay bound — or the
// barrier will observe already-late deliveries. A non-nil barrier error
// aborts the run. The group must be in parallel mode (EnableParallel).
//
// The final window is inclusive of the deadline, matching RunUntil's
// "fire events at <= deadline" semantics; barrier-drained deliveries
// that land at exactly the deadline get cleanup windows of their own
// until no shard holds an event at or before it.
func (g *ShardGroup) RunParallel(deadline, delta time.Duration, barrier func(window time.Duration) error) error {
	if !g.par {
		panic("simtime: RunParallel on a group without EnableParallel")
	}
	if delta <= 0 {
		panic("simtime: RunParallel needs a positive lookahead window")
	}

	// Within a window the shards are independent — cross-shard effects
	// only materialize at the barrier — so any execution interleaving of
	// the shard windows yields identical results (the byte-identical
	// rerun test pins this). With one schedulable CPU there is no
	// parallelism to buy, only preemption noise to pay: a worker
	// goroutine descheduled mid-window stalls the whole barrier. Degrade
	// gracefully to running every shard's window inline on the
	// coordinator.
	inline := runtime.GOMAXPROCS(0) == 1 || len(g.shards) == 1

	// Persistent shard workers: one goroutine per shard beyond shard 0
	// (which the coordinator runs inline), fed one windowJob per window.
	// A run at the 10k-mote tier executes thousands of windows, so the
	// per-window synchronization is two channel hops and a WaitGroup
	// instead of fresh goroutine spawns.
	var wg sync.WaitGroup
	jobs := make([]chan windowJob, len(g.shards))
	if !inline {
		for i := 1; i < len(g.shards); i++ {
			ch := make(chan windowJob, 1)
			jobs[i] = ch
			s := g.shards[i]
			go func() {
				for job := range ch {
					s.runWindow(job.limit, job.inclusive)
					wg.Done()
				}
			}()
		}
		defer func() {
			for _, ch := range jobs {
				if ch != nil {
					close(ch)
				}
			}
		}()
	}

	T := g.now
	for {
		if g.Stopped() {
			return ErrStopped
		}
		W := T + delta
		// Idle skip: at the window edge every mailbox is drained, so the
		// globally earliest pending event M is a hard floor — no shard
		// fires anything before it, and events fired from M onward cannot
		// deliver across shards before M+delta. Advancing the window
		// straight to M+delta (or the deadline when the heaps are empty)
		// therefore preserves the conservative bound while skipping the
		// empty windows whose barrier wakeups otherwise dominate sparse
		// workloads — the 10k sweep fires once per SensePeriod, not once
		// per delta.
		if m, ok := g.minEventTime(); !ok {
			W = deadline
		} else if m > T {
			W = m + delta
		}
		if g.windowCap != nil {
			if c, ok := g.windowCap(T); ok && c < W {
				if c < T+delta {
					c = T + delta
				}
				W = c
			}
		}
		last := false
		if W >= deadline {
			W, last = deadline, true
		}
		if inline {
			for _, s := range g.shards {
				s.runWindow(W, last)
			}
		} else {
			wg.Add(len(g.shards) - 1)
			for i := 1; i < len(g.shards); i++ {
				jobs[i] <- windowJob{limit: W, inclusive: last}
			}
			g.shards[0].runWindow(W, last)
			wg.Wait()
		}
		g.now = W
		for i := range g.horizons {
			g.horizons[i] = W
		}
		if barrier != nil {
			if err := barrier(W); err != nil {
				g.parStop.Store(true)
				return err
			}
		}
		if g.Stopped() {
			return ErrStopped
		}
		if last && !g.anyEventAtOrBefore(deadline) {
			return nil
		}
		T = W
	}
}

// ShardSeed derives the RNG stream seed for one shard of a parallel run
// from the run seed: the shard index advances a SplitMix64 counter
// (golden-gamma increments) and the SplitMix64 finalizer mixes it, so
// streams for different shards of the same run are decorrelated, every
// (seed, shard) pair maps to the same stream at any shard count, and
// shard 0 of a 2-way run draws the same stream as shard 0 of an 8-way
// run. The serial engine keeps using the raw seed.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// SetWindowCap bounds the parallel executor's idle skip: no window ends
// later than the earliest cap time at or after the window's start. The
// network layer uses it to keep barrier-driven series samplers on their
// exact cadence; nil removes the cap. Set it before RunParallel.
func (g *ShardGroup) SetWindowCap(f func(after time.Duration) (time.Duration, bool)) {
	g.windowCap = f
}

// minEventTime returns the earliest live event time across shards.
// Coordinator-only (it drains tombstones).
func (g *ShardGroup) minEventTime() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, s := range g.shards {
		if ev, ok := s.peek(); ok && (!found || ev.at < min) {
			min, found = ev.at, true
		}
	}
	return min, found
}

// anyEventAtOrBefore reports whether any shard still holds a live event
// at or before t. Coordinator-only (it drains tombstones).
func (g *ShardGroup) anyEventAtOrBefore(t time.Duration) bool {
	for _, s := range g.shards {
		if ev, ok := s.peek(); ok && ev.at <= t {
			return true
		}
	}
	return false
}

// Stop halts the group: no further events fire. In parallel mode it only
// sets the atomic stop flag, so any goroutine (a shard callback, or a
// session watcher reacting to an external stop request) may call it while
// workers are mid-window; in deterministic mode it must be called from
// the executing thread, like Scheduler.Stop.
func (g *ShardGroup) Stop() {
	if g.par {
		g.parStop.Store(true)
		return
	}
	g.stopped = true
}

// Stopped reports whether Stop has been called (on the group or any of
// its shards).
func (g *ShardGroup) Stopped() bool { return g.stopped || g.parStop.Load() }

// SetProfile attaches a self-profile to every shard (nil detaches). When
// the profile has a shard dimension (EnsureShards), each shard's events
// are additionally tallied under its shard index.
func (g *ShardGroup) SetProfile(p *Profile) {
	if p != nil {
		p.EnsureShards(len(g.shards))
	}
	for _, s := range g.shards {
		s.SetProfile(p)
	}
}
