// Scheduler self-profiling: every scheduled event carries the Owner of
// the subsystem that scheduled it, and an optional Profile accumulates
// per-subsystem event counts and wall-clock nanoseconds spent inside
// callbacks. The hook is designed to cost nothing when disabled — Step
// checks a single nil pointer — and the owner tag itself is a byte that
// rides in padding the slot already had, so tagging is free even in
// profiled-off runs. When profiling is on, callbacks additionally run
// under runtime/pprof goroutine labels (subsystem=<owner>), so CPU
// profiles captured with -cpuprofile can be grouped by subsystem.
//
// Wall-clock measurement never feeds back into the simulation (the
// virtual clock is untouched), so profiling cannot perturb a run's
// event order or its RNG stream.
package simtime

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// Owner identifies the subsystem that scheduled an event. It is the
// self-profiler's attribution taxonomy; OwnerNone covers test harnesses
// and callers that predate tagging. The transport layer is purely
// reactive (it never schedules events of its own), so it has no owner.
type Owner uint8

const (
	OwnerNone      Owner = iota // untagged callers, test harnesses
	OwnerRadio                  // frame delivery batches, receptions, CSMA retries, tx-done
	OwnerMote                   // CPU service-time completions
	OwnerGroup                  // heartbeat/creation/receive/wait/report timers, flood forwards
	OwnerRouting                // pooled local deliveries
	OwnerDirectory              // registration retransmits, query timeouts
	OwnerApp                    // context-object method timers, cross traffic
	OwnerSense                  // the consolidated sensing sweep
	OwnerSeries                 // the time-series sampler tick
	OwnerChaos                  // fault-schedule crash/restore callbacks

	// NumOwners sizes per-owner accumulator arrays.
	NumOwners = int(OwnerChaos) + 1
)

var ownerNames = [NumOwners]string{
	"other", "radio", "mote", "group", "routing",
	"directory", "app", "sense", "series", "chaos",
}

// String returns the owner's subsystem name as used in metrics labels,
// pprof labels, and the -selfprofile table.
func (o Owner) String() string {
	if int(o) < len(ownerNames) {
		return ownerNames[o]
	}
	return "other"
}

// Owners returns every owner in taxonomy order.
func Owners() []Owner {
	out := make([]Owner, NumOwners)
	for i := range out {
		out[i] = Owner(i)
	}
	return out
}

// Profile accumulates per-subsystem event counts and wall-clock time.
// Counters are atomic so one Profile may be shared by many schedulers
// running on different goroutines (e.g. every run of a parallel sweep),
// merging their attribution into a single table.
type Profile struct {
	counts [NumOwners]atomic.Uint64
	nanos  [NumOwners]atomic.Int64

	// shardCounts/shardNanos, when non-empty, additionally attribute
	// every event to the scheduler shard that executed it (EnsureShards
	// sizes them; sharded runs tag their profiles this way). Serial
	// schedulers report as shard 0.
	shardCounts []atomic.Uint64
	shardNanos  []atomic.Int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

func (p *Profile) add(o Owner, d time.Duration) {
	p.counts[o].Add(1)
	p.nanos[o].Add(int64(d))
}

// EnsureShards sizes the per-shard attribution dimension to at least k
// shards. It must be called before the profile is shared across running
// schedulers (growing the slices concurrently with addShard would race).
func (p *Profile) EnsureShards(k int) {
	if k > len(p.shardCounts) {
		counts := make([]atomic.Uint64, k)
		nanos := make([]atomic.Int64, k)
		for i := range p.shardCounts {
			counts[i].Store(p.shardCounts[i].Load())
			nanos[i].Store(p.shardNanos[i].Load())
		}
		p.shardCounts, p.shardNanos = counts, nanos
	}
}

func (p *Profile) addShard(shard int32, d time.Duration) {
	if int(shard) < len(p.shardCounts) {
		p.shardCounts[shard].Add(1)
		p.shardNanos[shard].Add(int64(d))
	}
}

// ShardStat is one scheduler shard's accumulated attribution.
type ShardStat struct {
	Shard     int
	Events    uint64
	WallNanos int64
}

// ShardSnapshot returns per-shard totals in shard order, or nil when the
// profile has no shard dimension (EnsureShards was never called).
func (p *Profile) ShardSnapshot() []ShardStat {
	if len(p.shardCounts) == 0 {
		return nil
	}
	out := make([]ShardStat, len(p.shardCounts))
	for i := range out {
		out[i] = ShardStat{
			Shard:     i,
			Events:    p.shardCounts[i].Load(),
			WallNanos: p.shardNanos[i].Load(),
		}
	}
	return out
}

// OwnerStat is one subsystem's accumulated attribution.
type OwnerStat struct {
	Owner     Owner
	Name      string
	Events    uint64
	WallNanos int64
}

// Snapshot returns per-subsystem totals in taxonomy order, including
// subsystems that executed nothing (Events == 0).
func (p *Profile) Snapshot() []OwnerStat {
	out := make([]OwnerStat, NumOwners)
	for i := range out {
		o := Owner(i)
		out[i] = OwnerStat{
			Owner:     o,
			Name:      o.String(),
			Events:    p.counts[i].Load(),
			WallNanos: p.nanos[i].Load(),
		}
	}
	return out
}

// TotalEvents sums event counts across all subsystems.
func (p *Profile) TotalEvents() uint64 {
	var t uint64
	for i := range p.counts {
		t += p.counts[i].Load()
	}
	return t
}

// TotalNanos sums wall-clock nanoseconds across all subsystems.
func (p *Profile) TotalNanos() int64 {
	var t int64
	for i := range p.nanos {
		t += p.nanos[i].Load()
	}
	return t
}

// Reset zeroes every accumulator (the shard dimension keeps its size).
func (p *Profile) Reset() {
	for i := range p.counts {
		p.counts[i].Store(0)
		p.nanos[i].Store(0)
	}
	for i := range p.shardCounts {
		p.shardCounts[i].Store(0)
		p.shardNanos[i].Store(0)
	}
}

// SetProfile attaches (or, with nil, detaches) a profile. While
// attached, Step times every callback with the wall clock, charges it to
// the event's owner, and runs it under a pprof goroutine label
// subsystem=<owner>. The label contexts are prebuilt here so the per-
// event cost is two label swaps and one clock read.
func (s *Scheduler) SetProfile(p *Profile) {
	s.prof = p
	if p == nil {
		s.labelCtxs = nil
		return
	}
	ctxs := new([NumOwners]context.Context)
	for i := range ctxs {
		ctxs[i] = pprof.WithLabels(context.Background(),
			pprof.Labels("subsystem", Owner(i).String()))
	}
	s.labelCtxs = ctxs
}

// Profile returns the attached profile, or nil.
func (s *Scheduler) Profile() *Profile { return s.prof }

// runProfiled executes one event under timing and pprof labels. It is
// kept out of Step so the unprofiled path stays small.
func (s *Scheduler) runProfiled(owner Owner, fn Callback, pfn EventFunc, arg any) {
	pprof.SetGoroutineLabels(s.labelCtxs[owner])
	start := time.Now()
	if fn != nil {
		fn()
	} else if pfn != nil {
		pfn(arg)
	}
	d := time.Since(start)
	s.prof.add(owner, d)
	s.prof.addShard(s.shardID, d)
	pprof.SetGoroutineLabels(context.Background())
}
