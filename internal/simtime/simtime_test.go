package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d * time.Second
		s.At(d, func() { got = append(got, d) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{1, 2, 3, 4, 5}
	for i, w := range want {
		if got[i] != w*time.Second {
			t.Fatalf("fired order %v, want seconds 1..5", got)
		}
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", got)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(7*time.Second, func() { at = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7*time.Second {
		t.Errorf("Now() inside event = %v, want 7s", at)
	}
	if s.Now() != 7*time.Second {
		t.Errorf("final Now() = %v, want 7s", s.Now())
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(5*time.Second, func() {
		// Schedule an event "in the past"; it must fire at the current time,
		// not move the clock backwards.
		s.At(time.Second, func() {
			fired = true
			if s.Now() != 5*time.Second {
				t.Errorf("past event fired at %v, want 5s", s.Now())
			}
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("past-scheduled event never fired")
	}
}

func TestSchedulerNegativeAfterClamped(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-time.Second, func() { fired = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || s.Now() != 0 {
		t.Errorf("negative After: fired=%v now=%v", fired, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		s.At(d, func() { fired = append(fired, d) })
	}
	if err := s.RunUntil(2500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", len(fired))
	}
	if s.Now() != 2500*time.Millisecond {
		t.Errorf("Now() = %v, want 2.5s", s.Now())
	}
	if s.Len() != 2 {
		t.Errorf("pending = %d, want 2", s.Len())
	}
	// Continue to the end.
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("total fired = %d, want 4", len(fired))
	}
}

func TestRunUntilInclusiveOfDeadline(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(2*time.Second, func() { fired = true })
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event exactly at the deadline did not fire")
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(time.Second, func() { fired = true })
	if !tm.Pending() {
		t.Error("timer should be pending before firing")
	}
	if !tm.Stop() {
		t.Error("Stop on pending timer should return true")
	}
	if tm.Stop() {
		t.Error("second Stop should return false")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(time.Second, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
	if tm.Stop() {
		t.Error("Stop after fire should return false")
	}
}

func TestTimerStopFromOtherEvent(t *testing.T) {
	s := NewScheduler()
	fired := false
	victim := s.At(2*time.Second, func() { fired = true })
	s.At(time.Second, func() { victim.Stop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("timer stopped by earlier event still fired")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	err := s.Run()
	if err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestTickerPeriodic(t *testing.T) {
	s := NewScheduler()
	var times []time.Duration
	tk := NewTicker(s, time.Second, func() { times = append(times, s.Now()) })
	if tk == nil {
		t.Fatal("NewTicker returned nil for valid period")
	}
	if err := s.RunUntil(5500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 {
		t.Fatalf("ticker fired %d times, want 5: %v", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * time.Second
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tk *Ticker
	tk = NewTicker(s, time.Second, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("ticker fired %d times after Stop at 2, want 2", count)
	}
	tk.Stop() // idempotent
}

func TestTickerReset(t *testing.T) {
	s := NewScheduler()
	var times []time.Duration
	tk := NewTicker(s, time.Second, func() { times = append(times, s.Now()) })
	s.At(2500*time.Millisecond, func() { tk.Reset(2 * time.Second) })
	if err := s.RunUntil(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Ticks at 1s, 2s, then reset at 2.5s -> 4.5s, 6.5s.
	want := []time.Duration{
		1 * time.Second,
		2 * time.Second,
		4500 * time.Millisecond,
		6500 * time.Millisecond,
	}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
}

func TestTickerInvalidPeriod(t *testing.T) {
	s := NewScheduler()
	if tk := NewTicker(s, 0, func() {}); tk != nil {
		t.Error("NewTicker with zero period should return nil")
	}
	if tk := NewTicker(s, -time.Second, func() {}); tk != nil {
		t.Error("NewTicker with negative period should return nil")
	}
}

func TestExecutedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 17; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 17 {
		t.Errorf("Executed = %d, want 17", s.Executed())
	}
}

// Property: regardless of insertion order, events fire sorted by time, and
// equal times fire in insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		type rec struct {
			at  time.Duration
			seq int
		}
		var fired []rec
		for i, r := range raw {
			at := time.Duration(r%50) * time.Millisecond
			i := i
			s.At(at, func() { fired = append(fired, rec{at: at, seq: i}) })
			// Randomly interleave some cancelled timers to exercise heap removal.
			if rng.Intn(3) == 0 {
				tm := s.At(time.Duration(rng.Intn(50))*time.Millisecond, func() {
					fired = append(fired, rec{at: -1, seq: -1})
				})
				tm.Stop()
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		sorted := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
