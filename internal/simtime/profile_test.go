package simtime

import (
	"testing"
	"time"
)

// TestProfileAttributesOwners: every Owned scheduling form charges its
// callback to the right subsystem, untagged forms land in "other", and
// wall time accumulates without touching the virtual clock.
func TestProfileAttributesOwners(t *testing.T) {
	s := NewScheduler()
	p := NewProfile()
	s.SetProfile(p)
	if s.Profile() != p {
		t.Fatal("Profile() did not return the attached profile")
	}

	s.AtOwned(time.Second, OwnerRadio, func() {})
	s.AfterOwned(2*time.Second, OwnerRadio, func() {})
	s.AtEventOwned(3*time.Second, OwnerMote, func(any) {}, nil)
	s.AfterEventOwned(4*time.Second, OwnerGroup, func(any) {}, nil)
	s.AtEventTimerOwned(5*time.Second, OwnerDirectory, func(any) {}, nil)
	s.AfterEventTimerOwned(6*time.Second, OwnerChaos, func(any) {}, nil)
	s.At(7*time.Second, func() {}) // untagged

	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	want := map[Owner]uint64{
		OwnerRadio: 2, OwnerMote: 1, OwnerGroup: 1,
		OwnerDirectory: 1, OwnerChaos: 1, OwnerNone: 1,
	}
	for _, st := range p.Snapshot() {
		if st.Events != want[st.Owner] {
			t.Errorf("%s events = %d, want %d", st.Name, st.Events, want[st.Owner])
		}
		if st.WallNanos < 0 {
			t.Errorf("%s wall = %d, want >= 0", st.Name, st.WallNanos)
		}
	}
	if got := p.TotalEvents(); got != 7 {
		t.Errorf("total events = %d, want 7", got)
	}
	if s.Now() != 7*time.Second {
		t.Errorf("virtual clock = %v, want 7s (profiling must not touch it)", s.Now())
	}

	p.Reset()
	if p.TotalEvents() != 0 || p.TotalNanos() != 0 {
		t.Error("Reset did not zero the profile")
	}
}

// TestProfileDetachAndTickers: tickers charge their owner every tick,
// and detaching the profile stops accumulation.
func TestProfileDetachAndTickers(t *testing.T) {
	s := NewScheduler()
	p := NewProfile()
	s.SetProfile(p)

	ticks := 0
	tk := NewTickerOwned(s, time.Second, OwnerSense, func() {
		ticks++
		if ticks == 3 {
			s.Stop()
		}
	})
	// Run ends via Stop, which reports as an error by design.
	_ = s.Run()
	tk.Stop()
	if got := p.Snapshot()[OwnerSense].Events; got != 3 {
		t.Errorf("sense events = %d, want 3 ticks", got)
	}

	s.SetProfile(nil)
	s.AtOwned(s.Now()+time.Second, OwnerSense, func() {})
	for s.Step() {
	}
	if got := p.Snapshot()[OwnerSense].Events; got != 3 {
		t.Errorf("detached profile still accumulated: %d events", got)
	}
}

// TestProfileIdenticalRunWithAndWithoutProfile: attaching a profile must
// not change event order or the virtual timeline.
func TestProfileIdenticalRunWithAndWithoutProfile(t *testing.T) {
	runOrder := func(prof bool) []int {
		s := NewScheduler()
		if prof {
			s.SetProfile(NewProfile())
		}
		var order []int
		s.AtOwned(2*time.Second, OwnerRadio, func() { order = append(order, 2) })
		s.AtOwned(time.Second, OwnerGroup, func() { order = append(order, 1) })
		s.AtEventOwned(time.Second, OwnerMote, func(any) { order = append(order, 10) }, nil)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := runOrder(false), runOrder(true)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverged with profile attached: %v vs %v", a, b)
		}
	}
}

func TestOwnerNamesUniqueAndStable(t *testing.T) {
	seen := map[string]Owner{}
	for _, o := range Owners() {
		n := o.String()
		if n == "" {
			t.Errorf("owner %d has empty name", o)
		}
		if prev, dup := seen[n]; dup {
			t.Errorf("owners %d and %d share name %q", prev, o, n)
		}
		seen[n] = o
	}
	if len(seen) != NumOwners {
		t.Errorf("%d distinct names for %d owners", len(seen), NumOwners)
	}
	if Owner(200).String() != "other" {
		t.Error("out-of-range owner does not fall back to other")
	}
}
