package simtime

import (
	"testing"
	"time"
)

// BenchmarkSchedulerChurn measures the heartbeat-reset pattern that
// dominates the group protocol: every received heartbeat stops the pending
// receive timer and arms a fresh one. With pooled slots and lazy
// cancellation both operations are allocation-free and the Stop is O(1).
func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	// A standing population of timers keeps the heap realistically deep.
	for i := 0; i < 256; i++ {
		s.After(time.Duration(i+1)*time.Millisecond, fn)
	}
	tm := s.After(time.Millisecond, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Stop()
		tm = s.After(time.Duration(1+i%7)*time.Millisecond, fn)
	}
}

// BenchmarkSchedulerStep measures the pop/fire cycle: schedule-ahead plus
// Step, the inner loop of every simulation run.
func BenchmarkSchedulerStep(b *testing.B) {
	s := NewScheduler()
	var fn EventFunc = func(any) {}
	for i := 0; i < 64; i++ {
		s.AfterEvent(time.Duration(i+1)*time.Microsecond, fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterEvent(65*time.Microsecond, fn, nil)
		s.Step()
	}
}
