package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refModel is the executable specification the pooled lazy-cancel
// scheduler is checked against: a plain sorted slice of (at, seq) events
// with eager removal on Stop. It is deliberately the simplest correct
// implementation — O(n) everywhere, one allocation per event.
type refModel struct {
	events   []refEvent
	now      time.Duration
	seq      uint64
	executed uint64
}

type refEvent struct {
	at  time.Duration
	seq uint64
	id  int
}

func (r *refModel) schedule(at time.Duration, id int) {
	if at < r.now {
		at = r.now
	}
	r.seq++
	r.events = append(r.events, refEvent{at: at, seq: r.seq, id: id})
	sort.Slice(r.events, func(i, j int) bool {
		if r.events[i].at != r.events[j].at {
			return r.events[i].at < r.events[j].at
		}
		return r.events[i].seq < r.events[j].seq
	})
}

func (r *refModel) stop(id int) bool {
	for i, ev := range r.events {
		if ev.id == id {
			r.events = append(r.events[:i], r.events[i+1:]...)
			return true
		}
	}
	return false
}

func (r *refModel) pending(id int) bool {
	for _, ev := range r.events {
		if ev.id == id {
			return true
		}
	}
	return false
}

// step pops the earliest event, returning its id (or -1 when empty).
func (r *refModel) step() (int, time.Duration, bool) {
	if len(r.events) == 0 {
		return -1, 0, false
	}
	ev := r.events[0]
	r.events = r.events[1:]
	r.now = ev.at
	r.executed++
	return ev.id, ev.at, true
}

// firing records one observed event execution.
type firing struct {
	id int
	at time.Duration
}

// TestSchedulerMatchesReferenceModel drives the scheduler and the
// reference model through 1000 independently seeded random schedules of
// interleaved At/After/Stop/Step operations (including events that
// re-schedule and stop other timers from inside their callbacks, the
// group protocol's churn pattern) and requires identical firing order,
// firing timestamps, executed counts, pending-event counts, and
// Stop/Pending results throughout.
func TestSchedulerMatchesReferenceModel(t *testing.T) {
	for schedule := 0; schedule < 1000; schedule++ {
		rng := rand.New(rand.NewSource(int64(schedule) + 1))
		s := NewScheduler()
		ref := &refModel{}

		var got []firing
		nextID := 0
		// live maps ref event ids to scheduler handles for Stop draws.
		live := map[int]Timer{}
		ids := []int{} // insertion-ordered keys of live, for deterministic draws

		removeID := func(id int) {
			delete(live, id)
			for i, v := range ids {
				if v == id {
					ids = append(ids[:i], ids[i+1:]...)
					break
				}
			}
		}

		var schedOne func(at time.Duration, rearm int)
		schedOne = func(at time.Duration, rearm int) {
			id := nextID
			nextID++
			tm := s.At(at, func() {
				got = append(got, firing{id: id, at: s.Now()})
				removeID(id)
				if rearm > 0 {
					// Callback-driven churn: re-schedule a successor and
					// stop a random other live timer, mirroring the
					// heartbeat-reset pattern.
					schedOne(s.Now()+time.Duration(rng.Intn(50))*time.Millisecond, rearm-1)
					if len(ids) > 0 {
						victim := ids[rng.Intn(len(ids))]
						sGot := live[victim].Stop()
						refGot := ref.stop(victim)
						if sGot != refGot {
							t.Fatalf("schedule %d: nested Stop(%d) = %v, ref %v", schedule, victim, sGot, refGot)
						}
						if sGot {
							removeID(victim)
						}
					}
				}
			})
			live[id] = tm
			ids = append(ids, id)
			ref.schedule(at, id)
		}

		ops := 30 + rng.Intn(120)
		for op := 0; op < ops; op++ {
			switch r := rng.Float64(); {
			case r < 0.45: // schedule, occasionally with callback churn
				rearm := 0
				if rng.Float64() < 0.2 {
					rearm = 1 + rng.Intn(2)
				}
				at := s.Now() + time.Duration(rng.Intn(200))*time.Millisecond
				schedOne(at, rearm)
			case r < 0.70: // stop a random live (or already-dead) handle
				if len(ids) == 0 {
					continue
				}
				victim := ids[rng.Intn(len(ids))]
				sGot := live[victim].Stop()
				refGot := ref.stop(victim)
				if sGot != refGot {
					t.Fatalf("schedule %d op %d: Stop(%d) = %v, ref %v", schedule, op, victim, sGot, refGot)
				}
				if sGot {
					removeID(victim)
				}
			case r < 0.80: // probe Pending on a random handle
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if got, want := live[id].Pending(), ref.pending(id); got != want {
					t.Fatalf("schedule %d op %d: Pending(%d) = %v, ref %v", schedule, op, id, got, want)
				}
			default: // step
				before := len(got)
				stepped := s.Step()
				refID, refAt, refStepped := ref.step()
				if stepped != refStepped {
					t.Fatalf("schedule %d op %d: Step() = %v, ref %v", schedule, op, stepped, refStepped)
				}
				if stepped {
					if len(got) != before+1 {
						t.Fatalf("schedule %d op %d: Step fired %d events, want 1", schedule, op, len(got)-before)
					}
					f := got[len(got)-1]
					if f.id != refID || f.at != refAt {
						t.Fatalf("schedule %d op %d: fired (%d, %v), ref (%d, %v)", schedule, op, f.id, f.at, refID, refAt)
					}
					if s.Now() != ref.now {
						t.Fatalf("schedule %d op %d: Now() = %v, ref %v", schedule, op, s.Now(), ref.now)
					}
				}
			}
			if s.Len() != len(ref.events) {
				t.Fatalf("schedule %d op %d: Len() = %d, ref %d", schedule, op, s.Len(), len(ref.events))
			}
		}

		// Drain both completely and compare the full tail.
		for {
			stepped := s.Step()
			refID, refAt, refStepped := ref.step()
			if stepped != refStepped {
				t.Fatalf("schedule %d drain: Step() = %v, ref %v", schedule, stepped, refStepped)
			}
			if !stepped {
				break
			}
			f := got[len(got)-1]
			if f.id != refID || f.at != refAt {
				t.Fatalf("schedule %d drain: fired (%d, %v), ref (%d, %v)", schedule, f.id, f.at, refID, refAt)
			}
		}
		if s.Executed() != ref.executed {
			t.Fatalf("schedule %d: Executed() = %d, ref %d", schedule, s.Executed(), ref.executed)
		}
		if s.Len() != 0 {
			t.Fatalf("schedule %d: Len() = %d after drain", schedule, s.Len())
		}
	}
}

// TestTimerPoolABAGuard proves a recycled Timer handle is permanently
// inert: after its slot is reused by a successor, the stale handle can
// neither stop nor observe the new tenant.
func TestTimerPoolABAGuard(t *testing.T) {
	s := NewScheduler()

	// Stop recycles the slot; the next At reuses it.
	stale := s.At(10*time.Millisecond, func() { t.Fatal("stopped timer fired") })
	if !stale.Stop() {
		t.Fatal("first Stop returned false")
	}
	fired := false
	successor := s.At(20*time.Millisecond, func() { fired = true })
	if stale.Stop() {
		t.Fatal("stale handle stopped its successor")
	}
	if stale.Pending() {
		t.Fatal("stale handle observes successor as its own")
	}
	if !successor.Pending() {
		t.Fatal("successor not pending")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("successor did not fire")
	}

	// Firing also recycles the slot: a kept handle of a fired timer must
	// not kill the slot's next tenant either.
	s2 := NewScheduler()
	kept := s2.At(time.Millisecond, func() {})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if kept.Stop() || kept.Pending() {
		t.Fatal("handle of fired timer still live")
	}
	count := 0
	for i := 0; i < 100; i++ {
		// Each iteration reuses the same pooled slot.
		tm := s2.After(time.Millisecond, func() { count++ })
		if kept.Stop() {
			t.Fatalf("iteration %d: stale handle stopped a recycled slot", i)
		}
		if !tm.Pending() {
			t.Fatalf("iteration %d: fresh timer not pending", i)
		}
		if err := s2.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if count != 100 {
		t.Fatalf("recycled-slot timers fired %d times, want 100", count)
	}
}

// TestTombstoneCompaction checks that a Stop-heavy burst does not leave
// the heap holding hundreds of tombstones, and that survivors still fire
// in exact (at, seq) order afterwards.
func TestTombstoneCompaction(t *testing.T) {
	s := NewScheduler()
	var timers []Timer
	for i := 0; i < 500; i++ {
		at := time.Duration(i+1) * time.Hour // far future: lazy drain never reaches them
		timers = append(timers, s.At(at, func() {}))
	}
	for i, tm := range timers {
		if i%5 != 0 {
			if !tm.Stop() {
				t.Fatalf("Stop(%d) failed", i)
			}
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100 live", s.Len())
	}
	// Compaction triggers once tombstones outnumber live events; the heap
	// should hold nothing close to the 400 cancelled entries.
	if len(s.heap) >= 200 {
		t.Fatalf("heap holds %d entries for 100 live events; compaction did not run", len(s.heap))
	}
	var fired []time.Duration
	prev := time.Duration(-1)
	for s.Step() {
		now := s.Now()
		if now <= prev {
			t.Fatalf("out-of-order firing: %v after %v", now, prev)
		}
		prev = now
		fired = append(fired, now)
	}
	if len(fired) != 100 {
		t.Fatalf("fired %d events, want 100", len(fired))
	}
}

// TestEventSchedulingInterleavesWithTimers checks the typed-payload
// variants share the same (at, seq) order as closure events.
func TestEventSchedulingInterleavesWithTimers(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(time.Millisecond, func() { order = append(order, 0) })
	s.AtEvent(time.Millisecond, func(arg any) { order = append(order, arg.(int)) }, 1)
	tm := s.AtEventTimer(time.Millisecond, func(arg any) { order = append(order, arg.(int)) }, 2)
	s.AfterEvent(time.Millisecond, func(arg any) { order = append(order, arg.(int)) }, 3)
	if !tm.Pending() {
		t.Fatal("AtEventTimer handle not pending")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want scheduling order", order)
		}
	}
	if tm.Stop() {
		t.Fatal("fired AtEventTimer handle still stoppable")
	}
}

// TestAtEventTimerStopPreventsFiring checks typed-payload timers cancel
// like closure timers (the pending-rebroadcast supersede path).
func TestAtEventTimerStopPreventsFiring(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.AfterEventTimer(time.Millisecond, func(any) { fired = true }, nil)
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending event timer")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped event timer fired")
	}
	if s.Executed() != 0 {
		t.Fatalf("Executed() = %d, want 0", s.Executed())
	}
}
