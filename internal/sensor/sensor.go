// Package sensor models the sensing hardware of a mote and the library of
// named boolean sensing functions (the paper's sensee() conditions) that
// context activation statements refer to. A mote periodically samples a
// Model, which derives named scalar channels ("magnetic", "temperature",
// "light", ...) from the phenomena field, and evaluates predicates over the
// resulting Reading.
package sensor

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/phenomena"
)

// Reading is one sample of a mote's local environment. Readings produced
// by Model.SampleInto are backed by the model's sorted name table and the
// caller's value scratch (valid until the caller's next scan); the public
// Values map remains as a construction convenience for tests and ad-hoc
// readings.
type Reading struct {
	At       time.Duration
	MoteID   int
	Position geom.Point
	Values   map[string]float64
	// Slice-backed representation used by the sampling hot path: parallel
	// name/value tables, names sorted ascending.
	names []string
	vals  []float64
}

// Value returns the named channel's sample.
func (r Reading) Value(name string) (float64, bool) {
	if r.Values != nil {
		v, ok := r.Values[name]
		return v, ok
	}
	// The name table is sorted but tiny (a handful of channels), so a
	// linear scan beats a binary search's branch overhead.
	for i, n := range r.names {
		if n == name {
			return r.vals[i], true
		}
	}
	return 0, false
}

// Channels returns the number of sampled channels.
func (r Reading) Channels() int {
	if r.Values != nil {
		return len(r.Values)
	}
	return len(r.names)
}

// ChannelFunc computes a scalar channel value at a position and time from
// the environment.
type ChannelFunc func(f *phenomena.Field, pos geom.Point, t time.Duration) float64

// DetectionChannel returns 1 when a kind-k target's signature covers the
// position and 0 otherwise — the idealized threshold detector used in the
// paper's testbed.
func DetectionChannel(kind string) ChannelFunc {
	return func(f *phenomena.Field, pos geom.Point, t time.Duration) float64 {
		if f.DetectsAny(kind, pos, t) {
			return 1
		}
		return 0
	}
}

// IntensityChannel returns the inverse-cube intensity of kind-k targets,
// scaled by scale (e.g. a magnetometer's gain).
func IntensityChannel(kind string, scale float64) ChannelFunc {
	return func(f *phenomena.Field, pos geom.Point, t time.Duration) float64 {
		return f.Intensity(kind, pos, t) * scale
	}
}

// ConstantChannel returns a fixed ambient value (e.g. background
// temperature).
func ConstantChannel(v float64) ChannelFunc {
	return func(*phenomena.Field, geom.Point, time.Duration) float64 { return v }
}

// SumChannels returns the sum of the given channels.
func SumChannels(fns ...ChannelFunc) ChannelFunc {
	return func(f *phenomena.Field, pos geom.Point, t time.Duration) float64 {
		var total float64
		for _, fn := range fns {
			total += fn(f, pos, t)
		}
		return total
	}
}

// WithNoise adds zero-mean Gaussian noise with the given standard deviation
// to a channel, drawn from rng.
func WithNoise(fn ChannelFunc, stddev float64, rng *rand.Rand) ChannelFunc {
	return func(f *phenomena.Field, pos geom.Point, t time.Duration) float64 {
		return fn(f, pos, t) + rng.NormFloat64()*stddev
	}
}

// Model is a mote's sensing suite: a set of named channels sampled
// together. Channels are stored as parallel sorted name/function tables so
// that sampling walks a slice instead of a map; a model may be shared by
// every mote in a network, so it owns no sampling scratch — callers pass
// their own via SampleInto.
type Model struct {
	names []string
	fns   []ChannelFunc
}

// NewModel returns an empty sensing model.
func NewModel() *Model {
	return &Model{}
}

// SetChannel installs or replaces a named channel.
func (m *Model) SetChannel(name string, fn ChannelFunc) {
	i := sort.SearchStrings(m.names, name)
	if i < len(m.names) && m.names[i] == name {
		m.fns[i] = fn
		return
	}
	m.names = append(m.names, "")
	copy(m.names[i+1:], m.names[i:])
	m.names[i] = name
	m.fns = append(m.fns, nil)
	copy(m.fns[i+1:], m.fns[i:])
	m.fns[i] = fn
}

// Channels returns the channel names in sorted order.
func (m *Model) Channels() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// NumChannels returns the number of installed channels (the capacity a
// SampleInto scratch buffer needs).
func (m *Model) NumChannels() int { return len(m.names) }

// Sample evaluates every channel at the given position and time into a
// freshly allocated reading.
func (m *Model) Sample(f *phenomena.Field, moteID int, pos geom.Point, t time.Duration) Reading {
	rd, _ := m.SampleInto(f, moteID, pos, t, nil)
	return rd
}

// SampleInto evaluates every channel at the given position and time,
// appending the values to buf (typically the previous scan's buffer
// re-sliced to [:0]) so steady-state sampling allocates nothing. It
// returns the reading and the extended buffer for reuse; the reading
// aliases the buffer and is valid until the buffer's next reuse. Channels
// are evaluated in sorted name order.
func (m *Model) SampleInto(f *phenomena.Field, moteID int, pos geom.Point, t time.Duration, buf []float64) (Reading, []float64) {
	for _, fn := range m.fns {
		buf = append(buf, fn(f, pos, t))
	}
	return Reading{At: t, MoteID: moteID, Position: pos, names: m.names, vals: buf}, buf
}

// VehicleModel is a convenience preset: a magnetometer suite detecting
// targets of the given phenomenon kind, exposing channels "magnetic"
// (intensity) and "magnetic_detect" (thresholded detection).
func VehicleModel(kind string) *Model {
	m := NewModel()
	m.SetChannel("magnetic", IntensityChannel(kind, 1))
	m.SetChannel("magnetic_detect", DetectionChannel(kind))
	return m
}

// FireModel is a preset for fire sensing: "temperature" is ambient plus a
// strong contribution from fire targets; "light" detects flame.
func FireModel(kind string, ambient float64) *Model {
	m := NewModel()
	m.SetChannel("temperature", SumChannels(
		ConstantChannel(ambient),
		IntensityChannel(kind, 500),
	))
	m.SetChannel("light", DetectionChannel(kind))
	return m
}

// Func is a named boolean sensing condition — the sensee() predicate of
// Section 3.1 — evaluated over a mote's local Reading.
type Func func(Reading) bool

// Registry maps sensing-function names (as they appear in EnviroTrack
// activation statements) to implementations. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	funcs map[string]Func
}

// NewRegistry returns a registry pre-populated with the library of common
// sensing functions the paper describes:
//
//	magnetic_sensor_reading  — magnetic detection channel fired
//	fire_sensor_reading      — temperature > 180 and light present
//	light_sensor_reading     — light channel above 0.5
//	motion_sensor_reading    — motion channel above 0.5
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]Func)}
	mustRegister := func(name string, fn Func) {
		if err := r.Register(name, fn); err != nil {
			panic(err) // unreachable: fresh registry, distinct names
		}
	}
	mustRegister("magnetic_sensor_reading", func(rd Reading) bool {
		v, ok := rd.Value("magnetic_detect")
		return ok && v > 0.5
	})
	mustRegister("fire_sensor_reading", func(rd Reading) bool {
		temp, okT := rd.Value("temperature")
		light, okL := rd.Value("light")
		return okT && okL && temp > 180 && light > 0.5
	})
	mustRegister("light_sensor_reading", func(rd Reading) bool {
		v, ok := rd.Value("light")
		return ok && v > 0.5
	})
	mustRegister("motion_sensor_reading", func(rd Reading) bool {
		v, ok := rd.Value("motion")
		return ok && v > 0.5
	})
	return r
}

// Register adds a user-defined sensing function. It returns an error if the
// name is already taken.
func (r *Registry) Register(name string, fn Func) error {
	if name == "" {
		return fmt.Errorf("sensor: empty function name")
	}
	if fn == nil {
		return fmt.Errorf("sensor: nil function for %q", name)
	}
	if _, ok := r.funcs[name]; ok {
		return fmt.Errorf("sensor: function %q already registered", name)
	}
	r.funcs[name] = fn
	return nil
}

// Lookup returns the named sensing function.
func (r *Registry) Lookup(name string) (Func, bool) {
	fn, ok := r.funcs[name]
	return fn, ok
}

// Names returns all registered function names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.funcs))
	for name := range r.funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
