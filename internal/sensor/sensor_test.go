package sensor

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/phenomena"
)

func vehicleField(pos geom.Point, radius float64) *phenomena.Field {
	return phenomena.NewField(&phenomena.Target{
		Name:            "tank",
		Kind:            "vehicle",
		Traj:            phenomena.Stationary{At: pos},
		SignatureRadius: radius,
	})
}

func TestDetectionChannel(t *testing.T) {
	f := vehicleField(geom.Pt(0, 0), 2)
	ch := DetectionChannel("vehicle")
	if got := ch(f, geom.Pt(1, 0), 0); got != 1 {
		t.Errorf("in-range detection = %v, want 1", got)
	}
	if got := ch(f, geom.Pt(3, 0), 0); got != 0 {
		t.Errorf("out-of-range detection = %v, want 0", got)
	}
	if got := ch(f, geom.Pt(1, 0), 0); got != 1 {
		t.Errorf("repeat detection = %v, want 1", got)
	}
	wrong := DetectionChannel("fire")
	if got := wrong(f, geom.Pt(1, 0), 0); got != 0 {
		t.Errorf("wrong-kind detection = %v, want 0", got)
	}
}

func TestIntensityChannelScale(t *testing.T) {
	f := vehicleField(geom.Pt(0, 0), 2)
	ch := IntensityChannel("vehicle", 10)
	// distance 2 => 1/8 * 10.
	if got := ch(f, geom.Pt(2, 0), 0); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("scaled intensity = %v, want 1.25", got)
	}
}

func TestConstantAndSumChannels(t *testing.T) {
	f := phenomena.NewField()
	c := SumChannels(ConstantChannel(20), ConstantChannel(5))
	if got := c(f, geom.Pt(0, 0), 0); got != 25 {
		t.Errorf("sum of constants = %v, want 25", got)
	}
}

func TestWithNoiseIsZeroMean(t *testing.T) {
	f := phenomena.NewField()
	rng := rand.New(rand.NewSource(7))
	ch := WithNoise(ConstantChannel(100), 1, rng)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += ch(f, geom.Pt(0, 0), 0)
	}
	mean := sum / n
	if math.Abs(mean-100) > 0.1 {
		t.Errorf("noisy mean = %v, want ~100", mean)
	}
}

func TestModelSample(t *testing.T) {
	f := vehicleField(geom.Pt(0, 0), 2)
	m := NewModel()
	m.SetChannel("magnetic_detect", DetectionChannel("vehicle"))
	m.SetChannel("ambient", ConstantChannel(20))
	rd := m.Sample(f, 7, geom.Pt(1, 0), 3*time.Second)
	if rd.MoteID != 7 || rd.At != 3*time.Second || rd.Position != geom.Pt(1, 0) {
		t.Errorf("reading metadata = %+v", rd)
	}
	if v, ok := rd.Value("magnetic_detect"); !ok || v != 1 {
		t.Errorf("magnetic_detect = %v, %v", v, ok)
	}
	if v, ok := rd.Value("ambient"); !ok || v != 20 {
		t.Errorf("ambient = %v, %v", v, ok)
	}
	if _, ok := rd.Value("missing"); ok {
		t.Error("missing channel reported present")
	}
}

func TestModelSetChannelReplaces(t *testing.T) {
	m := NewModel()
	m.SetChannel("x", ConstantChannel(1))
	m.SetChannel("x", ConstantChannel(2))
	if got := len(m.Channels()); got != 1 {
		t.Fatalf("channels = %d, want 1", got)
	}
	rd := m.Sample(phenomena.NewField(), 0, geom.Pt(0, 0), 0)
	if v, _ := rd.Value("x"); v != 2 {
		t.Errorf("replaced channel value = %v, want 2", v)
	}
}

func TestModelChannelsSorted(t *testing.T) {
	m := NewModel()
	m.SetChannel("zeta", ConstantChannel(0))
	m.SetChannel("alpha", ConstantChannel(0))
	ch := m.Channels()
	if len(ch) != 2 || ch[0] != "alpha" || ch[1] != "zeta" {
		t.Errorf("Channels = %v, want sorted", ch)
	}
}

func TestVehicleModelPreset(t *testing.T) {
	f := vehicleField(geom.Pt(0, 0), 2)
	m := VehicleModel("vehicle")
	rd := m.Sample(f, 0, geom.Pt(1, 0), 0)
	if v, _ := rd.Value("magnetic_detect"); v != 1 {
		t.Errorf("magnetic_detect = %v, want 1", v)
	}
	if v, _ := rd.Value("magnetic"); v <= 0 {
		t.Errorf("magnetic = %v, want > 0", v)
	}
}

func TestFireModelPreset(t *testing.T) {
	f := phenomena.NewField(&phenomena.Target{
		Kind:            "fire",
		Traj:            phenomena.Stationary{At: geom.Pt(0, 0)},
		SignatureRadius: 2,
	})
	m := FireModel("fire", 20)
	near := m.Sample(f, 0, geom.Pt(1, 0), 0)
	if v, _ := near.Value("temperature"); v <= 180 {
		t.Errorf("temperature near fire = %v, want > 180", v)
	}
	if v, _ := near.Value("light"); v != 1 {
		t.Errorf("light near fire = %v, want 1", v)
	}
	far := m.Sample(f, 0, geom.Pt(20, 0), 0)
	if v, _ := far.Value("temperature"); v > 180 {
		t.Errorf("temperature far from fire = %v, want ambient", v)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{
		"fire_sensor_reading",
		"light_sensor_reading",
		"magnetic_sensor_reading",
		"motion_sensor_reading",
	}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestRegistryMagneticFunc(t *testing.T) {
	r := NewRegistry()
	fn, ok := r.Lookup("magnetic_sensor_reading")
	if !ok {
		t.Fatal("magnetic_sensor_reading not found")
	}
	if !fn(Reading{Values: map[string]float64{"magnetic_detect": 1}}) {
		t.Error("should fire with detection = 1")
	}
	if fn(Reading{Values: map[string]float64{"magnetic_detect": 0}}) {
		t.Error("should not fire with detection = 0")
	}
	if fn(Reading{Values: map[string]float64{}}) {
		t.Error("should not fire with missing channel")
	}
}

func TestRegistryFireFunc(t *testing.T) {
	r := NewRegistry()
	fn, _ := r.Lookup("fire_sensor_reading")
	tests := []struct {
		name string
		vals map[string]float64
		want bool
	}{
		{name: "hot and bright", vals: map[string]float64{"temperature": 200, "light": 1}, want: true},
		{name: "hot only", vals: map[string]float64{"temperature": 200, "light": 0}, want: false},
		{name: "bright only", vals: map[string]float64{"temperature": 100, "light": 1}, want: false},
		{name: "boundary temp", vals: map[string]float64{"temperature": 180, "light": 1}, want: false},
		{name: "missing channels", vals: map[string]float64{}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := fn(Reading{Values: tt.vals}); got != tt.want {
				t.Errorf("fire_sensor_reading(%v) = %v, want %v", tt.vals, got, tt.want)
			}
		})
	}
}

func TestRegistryRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func(Reading) bool { return true }); err == nil {
		t.Error("expected error for empty name")
	}
	if err := r.Register("custom", nil); err == nil {
		t.Error("expected error for nil func")
	}
	if err := r.Register("custom", func(Reading) bool { return true }); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := r.Register("custom", func(Reading) bool { return false }); err == nil {
		t.Error("expected error for duplicate name")
	}
	if _, ok := r.Lookup("custom"); !ok {
		t.Error("registered function not found")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("unregistered function found")
	}
}
