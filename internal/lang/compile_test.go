package lang

import (
	"strings"
	"testing"
	"time"

	"envirotrack/internal/core"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
)

func compileOne(t *testing.T, src string, env Env) core.ContextType {
	t.Helper()
	specs, err := CompileSource(src, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs = %d, want 1", len(specs))
	}
	return specs[0]
}

func TestCompileFigure2(t *testing.T) {
	spec := compileOne(t, figure2, Env{
		Destinations: map[string]radio.NodeID{"pursuer": 100},
	})
	if spec.Name != "tracker" {
		t.Errorf("name = %q", spec.Name)
	}
	if spec.Activation == nil {
		t.Fatal("activation not compiled")
	}
	// The compiled activation is the registry's magnetic function.
	fire := sensor.Reading{Values: map[string]float64{"magnetic_detect": 1}}
	quiet := sensor.Reading{Values: map[string]float64{"magnetic_detect": 0}}
	if !spec.Activation(fire) || spec.Activation(quiet) {
		t.Error("compiled activation misbehaves")
	}
	// avg(position) resolved to the centroid.
	v, ok := spec.Var("location")
	if !ok {
		t.Fatal("location var missing")
	}
	if v.Func.Name != "centroid" || !v.Func.PosInput {
		t.Errorf("resolved func = %+v", v.Func)
	}
	if v.CriticalMass != 2 || v.Freshness != time.Second {
		t.Errorf("QoS = %d/%v", v.CriticalMass, v.Freshness)
	}
	if len(spec.Objects) != 1 || len(spec.Objects[0].Methods) != 1 {
		t.Fatalf("objects = %+v", spec.Objects)
	}
	m := spec.Objects[0].Methods[0]
	if m.Period != 5*time.Second || m.Body == nil {
		t.Errorf("method = %+v", m)
	}
}

func TestCompileChannelComparisonActivation(t *testing.T) {
	src := `
begin context fire
    activation: temperature > 180 and light > 0.5
    heat : avg(temperature) confidence=2, freshness=2s
end context
`
	spec := compileOne(t, src, Env{})
	hot := sensor.Reading{Values: map[string]float64{"temperature": 200, "light": 1}}
	cold := sensor.Reading{Values: map[string]float64{"temperature": 20, "light": 1}}
	dark := sensor.Reading{Values: map[string]float64{"temperature": 200, "light": 0}}
	if !spec.Activation(hot) {
		t.Error("hot+bright should activate")
	}
	if spec.Activation(cold) || spec.Activation(dark) {
		t.Error("cold or dark should not activate")
	}
}

func TestCompileNotOrExpressions(t *testing.T) {
	src := `
begin context x
    activation: not a > 1 or b > 5
end context
`
	spec := compileOne(t, src, Env{})
	mk := func(a, b float64) sensor.Reading {
		return sensor.Reading{Values: map[string]float64{"a": a, "b": b}}
	}
	if !spec.Activation(mk(0, 0)) { // not(a>1) = true
		t.Error("not-branch failed")
	}
	if spec.Activation(mk(2, 0)) { // not(a>1)=false, b>5=false
		t.Error("false or false should be false")
	}
	if !spec.Activation(mk(2, 6)) { // b>5
		t.Error("or-branch failed")
	}
}

func TestCompileMissingChannelIsFalse(t *testing.T) {
	src := `
begin context x
    activation: missing > 1
end context
`
	spec := compileOne(t, src, Env{})
	if spec.Activation(sensor.Reading{Values: map[string]float64{}}) {
		t.Error("comparison on a missing channel must be false")
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		env  Env
		want string
	}{
		{
			name: "unknown sensing function",
			src:  "begin context x activation: nope() end context",
			want: "unknown sensing function",
		},
		{
			name: "unknown aggregation",
			src:  "begin context x activation: a > 1 v : median(a) confidence=1, freshness=1s end context",
			want: "unknown aggregation",
		},
		{
			name: "position into scalar agg",
			src:  "begin context x activation: a > 1 v : sum(position) confidence=1, freshness=1s end context",
			want: "cannot aggregate positions",
		},
		{
			name: "scalar into centroid",
			src:  "begin context x activation: a > 1 v : centroid(a) confidence=1, freshness=1s end context",
			want: "requires the position input",
		},
		{
			name: "undeclared variable in condition",
			src: `begin context x activation: a > 1
				begin object o invocation: ghost > 1 m() { } end end context`,
			want: "undeclared variable",
		},
		{
			name: "position variable compared",
			src: `begin context x activation: a > 1
				loc : avg(position) confidence=1, freshness=1s
				begin object o invocation: loc > 1 m() { } end end context`,
			want: "position-valued",
		},
		{
			name: "unknown destination",
			src: `begin context x activation: a > 1
				begin object o invocation: TIMER(1s) m() { send(mars); } end end context`,
			want: "unknown destination",
		},
		{
			name: "unknown action",
			src: `begin context x activation: a > 1
				begin object o invocation: TIMER(1s) m() { explode(); } end end context`,
			want: "unknown action",
		},
		{
			name: "undeclared variable argument",
			src: `begin context x activation: a > 1
				begin object o invocation: TIMER(1s) m() { log(ghost); } end end context`,
			want: "undeclared variable",
		},
		{
			name: "duplicate context",
			src: `begin context x activation: a > 1 end context
				begin context x activation: a > 1 end context`,
			want: "declared twice",
		},
		{
			name: "duplicate variable",
			src: `begin context x activation: a > 1
				v : avg(a) confidence=1, freshness=1s
				v : avg(b) confidence=1, freshness=1s
				end context`,
			want: "declared twice",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := CompileSource(tt.src, tt.env)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %q, want it to contain %q", err, tt.want)
			}
		})
	}
}

func TestCompileConditionSemantics(t *testing.T) {
	src := `
begin context x
    activation: a > 1
    level : max(a) confidence=1, freshness=1s
    begin object o
        invocation: level >= 10 and level < 20
        m() { }
    end
end context
`
	spec := compileOne(t, src, Env{})
	cond := spec.Objects[0].Methods[0].Condition
	if cond == nil {
		t.Fatal("condition not compiled")
	}
	// A nil Ctx read path: condition on a context with no windows reads
	// invalid and must be false, not panic.
	if cond(nilCtx(t)) {
		t.Error("condition with null reads should be false")
	}
}

// nilCtx builds a Ctx with no aggregate windows (static-object style).
func nilCtx(t *testing.T) *core.Ctx {
	t.Helper()
	return &core.Ctx{}
}

func TestGenerateGoCompiles(t *testing.T) {
	prog, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateGo(prog, "generated")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package generated",
		"func BuildContexts",
		`Name: "tracker"`,
		"envirotrack.Centroid",
		"CriticalMass: 2",
		"ctx.SendNode",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateGoConditionAndBuiltins(t *testing.T) {
	src := `
begin context fire
    activation: temperature > 180
    heat : avg(temperature) confidence=2, freshness=2s
    begin object alarm
        invocation: heat > 300
        alarm_function() {
            log("hot", heat);
            setstate("alarmed");
        }
    end
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := GenerateGo(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Condition: func(ctx *envirotrack.Ctx) bool",
		"ctx.ReadScalar",
		"fmt.Println",
		"ctx.SetState",
	} {
		if !strings.Contains(gen, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestComparatorSemantics(t *testing.T) {
	tests := []struct {
		op   string
		a, b float64
		want bool
	}{
		{">", 2, 1, true},
		{">", 1, 2, false},
		{"<", 1, 2, true},
		{"<", 2, 1, false},
		{">=", 2, 2, true},
		{">=", 1, 2, false},
		{"<=", 2, 2, true},
		{"<=", 3, 2, false},
		{"==", 2, 2, true},
		{"==", 2, 3, false},
		{"!=", 2, 3, true},
		{"!=", 2, 2, false},
	}
	for _, tt := range tests {
		cmp, err := comparator(tt.op)
		if err != nil {
			t.Fatalf("comparator(%q): %v", tt.op, err)
		}
		if got := cmp(tt.a, tt.b); got != tt.want {
			t.Errorf("%v %s %v = %v, want %v", tt.a, tt.op, tt.b, got, tt.want)
		}
	}
	if _, err := comparator("~"); err == nil {
		t.Error("expected error for unknown operator")
	}
}

func TestCompileAllComparatorOpsInActivation(t *testing.T) {
	for _, op := range []string{">", "<", ">=", "<=", "==", "!="} {
		src := "begin context x activation: a " + op + " 5 end context"
		if _, err := CompileSource(src, Env{}); err != nil {
			t.Errorf("op %q: %v", op, err)
		}
	}
}

func TestCompileSetStateAndCustomAction(t *testing.T) {
	calls := 0
	src := `
begin context x
    activation: a > 1
    level : max(a) confidence=1, freshness=1s
    begin object o
        invocation: TIMER(1s)
        m() {
            setstate("checkpoint");
            custom(level, "tag", 3);
        }
    end
end context
`
	specs, err := CompileSource(src, Env{
		Actions: map[string]ActionFunc{
			"custom": func(_ *core.Ctx, args []any) { calls = len(args) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs[0].Objects[0].Methods) != 1 {
		t.Fatal("method missing")
	}
	// Executing the body against a window-less context aborts at the
	// variable read without invoking the action (null-read semantics).
	specs[0].Objects[0].Methods[0].Body(nilCtx(t), core.Trigger{})
	if calls != 0 {
		t.Error("action ran despite a null aggregate read")
	}
}

func TestCompileAllowUnbound(t *testing.T) {
	src := `
begin context x
    activation: a > 1
    begin object o
        invocation: TIMER(1s)
        m() { send(mars); explode(); }
    end
end context
`
	if _, err := CompileSource(src, Env{AllowUnbound: true}); err != nil {
		t.Fatalf("AllowUnbound compile failed: %v", err)
	}
	if _, err := CompileSource(src, Env{}); err == nil {
		t.Error("strict compile should fail")
	}
}

func TestCompileBackendClause(t *testing.T) {
	src := `
begin context tracker
    activation: magnetic_sensor_reading()
    backend: passive
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            send(pursuer, self:label, location);
        }
    end
end context
`
	spec := compileOne(t, src, Env{
		Destinations: map[string]radio.NodeID{"pursuer": 100},
	})
	if spec.Backend != "passive" {
		t.Errorf("spec backend = %q, want passive", spec.Backend)
	}
}

func TestCompileUnknownBackend(t *testing.T) {
	src := `
begin context tracker
    activation: magnetic_sensor_reading()
    backend: quantum
    location : avg(position) confidence=2, freshness=1s
end context
`
	_, err := CompileSource(src, Env{})
	if err == nil || !strings.Contains(err.Error(), `unknown tracking backend "quantum"`) {
		t.Errorf("err = %v, want unknown tracking backend", err)
	}
}
