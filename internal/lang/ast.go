package lang

import (
	"fmt"
	"strings"
	"time"
)

// Program is a parsed EnviroTrack source file: a list of context
// declarations.
type Program struct {
	Contexts []*ContextDecl
}

// ContextDecl is one `begin context ... end context` block.
type ContextDecl struct {
	Pos          Pos
	Name         string
	Activation   Expr
	Deactivation Expr   // nil: default inverse of activation
	Backend      string // tracking backend name; empty: the default (leader)
	Vars         []*VarDecl
	Objects      []*ObjectDecl
}

// VarDecl is an aggregate state variable declaration:
//
//	location : avg(position) confidence=2, freshness=1s
type VarDecl struct {
	Pos        Pos
	Name       string
	Func       string // aggregation function name
	Input      string // sensor name or "position"
	Confidence int    // critical mass Ne
	Freshness  time.Duration
}

// ObjectDecl is an attached tracking object.
type ObjectDecl struct {
	Pos     Pos
	Name    string
	Methods []*MethodDecl
}

// InvocationKind distinguishes method triggers.
type InvocationKind int

// Invocation kinds.
const (
	InvokeTimer InvocationKind = iota + 1
	InvokeCondition
	InvokeMessage
)

// Invocation is a method's `invocation:` clause.
type Invocation struct {
	Kind   InvocationKind
	Period time.Duration // InvokeTimer
	Cond   Expr          // InvokeCondition
	Port   int           // InvokeMessage
}

// MethodDecl is one method of an object: invocation clause plus body.
type MethodDecl struct {
	Pos        Pos
	Name       string
	Invocation Invocation
	Body       []*CallStmt
}

// CallStmt is a body statement: a call to a built-in action or a
// registered action function.
type CallStmt struct {
	Pos  Pos
	Name string
	Args []Arg
}

// ArgKind classifies a call argument.
type ArgKind int

// Argument kinds.
const (
	ArgIdent ArgKind = iota + 1 // variable reference or named destination
	ArgSelfLabel
	ArgNumber
	ArgString
)

// Arg is one call argument.
type Arg struct {
	Kind ArgKind
	Text string  // identifier or string text
	Num  float64 // ArgNumber
}

// Expr is a boolean expression: activation conditions reference sensing
// functions and sensor channels; invocation conditions reference aggregate
// variables.
type Expr interface {
	expr()
	String() string
}

// BinExpr is `l and r` / `l or r`.
type BinExpr struct {
	Op   string // "and" | "or"
	L, R Expr
}

func (*BinExpr) expr() {}

// String implements Expr.
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// NotExpr is `not e`.
type NotExpr struct {
	E Expr
}

func (*NotExpr) expr() {}

// String implements Expr.
func (e *NotExpr) String() string {
	return fmt.Sprintf("(not %s)", e.E)
}

// CallExpr is `name()` — a registered sensing function.
type CallExpr struct {
	Pos  Pos
	Name string
}

func (*CallExpr) expr() {}

// String implements Expr.
func (e *CallExpr) String() string {
	return e.Name + "()"
}

// CmpExpr is `name op number`: a comparison of a sensor channel (in an
// activation) or an aggregate variable (in an invocation condition).
type CmpExpr struct {
	Pos   Pos
	Name  string
	Op    string // > < >= <= == !=
	Value float64
}

func (*CmpExpr) expr() {}

// String implements Expr.
func (e *CmpExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.Name, e.Op, formatNumber(e.Value))
}

func formatNumber(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// formatDuration prints durations in source syntax (5s, 250ms).
func formatDuration(d time.Duration) string {
	switch {
	case d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	case d%time.Millisecond == 0:
		return fmt.Sprintf("%dms", d/time.Millisecond)
	default:
		return fmt.Sprintf("%dus", d/time.Microsecond)
	}
}

// Format renders the program back to canonical source text; Parse(Format(p))
// reproduces an equivalent AST (the round-trip property tested in the
// package tests).
func (p *Program) Format() string {
	var b strings.Builder
	for i, c := range p.Contexts {
		if i > 0 {
			b.WriteString("\n")
		}
		c.format(&b)
	}
	return b.String()
}

func (c *ContextDecl) format(b *strings.Builder) {
	fmt.Fprintf(b, "begin context %s\n", c.Name)
	fmt.Fprintf(b, "    activation: %s\n", c.Activation)
	if c.Deactivation != nil {
		fmt.Fprintf(b, "    deactivation: %s\n", c.Deactivation)
	}
	if c.Backend != "" {
		fmt.Fprintf(b, "    backend: %s\n", c.Backend)
	}
	for _, v := range c.Vars {
		fmt.Fprintf(b, "    %s : %s(%s) confidence=%d, freshness=%s\n",
			v.Name, v.Func, v.Input, v.Confidence, formatDuration(v.Freshness))
	}
	for _, o := range c.Objects {
		fmt.Fprintf(b, "    begin object %s\n", o.Name)
		for _, m := range o.Methods {
			fmt.Fprintf(b, "        invocation: %s\n", m.Invocation)
			fmt.Fprintf(b, "        %s() {\n", m.Name)
			for _, st := range m.Body {
				fmt.Fprintf(b, "            %s;\n", st)
			}
			fmt.Fprintf(b, "        }\n")
		}
		fmt.Fprintf(b, "    end\n")
	}
	fmt.Fprintf(b, "end context\n")
}

// String implements fmt.Stringer.
func (inv Invocation) String() string {
	switch inv.Kind {
	case InvokeTimer:
		return fmt.Sprintf("TIMER(%s)", formatDuration(inv.Period))
	case InvokeMessage:
		return fmt.Sprintf("MESSAGE(%d)", inv.Port)
	case InvokeCondition:
		return inv.Cond.String()
	default:
		return "?"
	}
}

// String implements fmt.Stringer.
func (s *CallStmt) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(parts, ", "))
}

// String implements fmt.Stringer.
func (a Arg) String() string {
	switch a.Kind {
	case ArgSelfLabel:
		return "self:label"
	case ArgNumber:
		return formatNumber(a.Num)
	case ArgString:
		return fmt.Sprintf("%q", a.Text)
	default:
		return a.Text
	}
}
