package lang

import (
	"fmt"
	"strings"

	"envirotrack/internal/aggregate"
	"envirotrack/internal/core"
	"envirotrack/internal/group"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
	"envirotrack/internal/track"
	"envirotrack/internal/transport"
)

// Message is the payload produced by the language's send()/MySend()
// builtin: the originating context label followed by the evaluated
// arguments (aggregate variable values, literals).
type Message struct {
	From   group.Label
	Values []any
}

// ActionFunc is a custom body action registered in the compile
// environment; it receives the enclosing context and the evaluated
// arguments.
type ActionFunc func(ctx *core.Ctx, args []any)

// Env provides the registries and bindings the compiler resolves names
// against — the compile-time world of the preprocessor.
type Env struct {
	// Senses resolves activation-condition function names.
	Senses *sensor.Registry
	// Aggs resolves aggregation function names.
	Aggs *aggregate.Registry
	// Destinations binds identifiers usable as send() targets ("pursuer")
	// to mote addresses, "known at compile time" as in Figure 2.
	Destinations map[string]radio.NodeID
	// Actions binds custom body-call names to implementations.
	Actions map[string]ActionFunc
	// Logf receives log() builtin output; nil discards it.
	Logf func(format string, args ...any)
	// AllowUnbound makes unknown send() destinations and actions compile
	// to no-ops instead of errors (used by the preprocessor's -check
	// mode, where runtime bindings are not yet known).
	AllowUnbound bool
	// Group is the group-management configuration applied to compiled
	// context types.
	Group group.Config
}

func (e Env) withDefaults() Env {
	if e.Senses == nil {
		e.Senses = sensor.NewRegistry()
	}
	if e.Aggs == nil {
		e.Aggs = aggregate.NewRegistry()
	}
	return e
}

// CompileError is a semantic-analysis failure.
type CompileError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *CompileError) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func cerrf(pos Pos, format string, args ...any) error {
	return &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Compile performs semantic analysis on a parsed program and produces one
// core.ContextType per declaration, ready for Stack.AttachContext.
func Compile(prog *Program, env Env) ([]core.ContextType, error) {
	env = env.withDefaults()
	seen := make(map[string]bool, len(prog.Contexts))
	var out []core.ContextType
	for _, decl := range prog.Contexts {
		if seen[decl.Name] {
			return nil, cerrf(decl.Pos, "context %q declared twice", decl.Name)
		}
		seen[decl.Name] = true
		spec, err := compileContext(decl, env)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// CompileSource parses and compiles in one step.
func CompileSource(src string, env Env) ([]core.ContextType, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, env)
}

func compileContext(decl *ContextDecl, env Env) (core.ContextType, error) {
	spec := core.ContextType{Name: decl.Name, Group: env.Group}

	if decl.Backend != "" {
		if !track.Known(decl.Backend) {
			return core.ContextType{}, cerrf(decl.Pos, "unknown tracking backend %q (known: %s)",
				decl.Backend, strings.Join(track.Names(), ", "))
		}
		spec.Backend = decl.Backend
	}

	act, err := compileSense(decl.Activation, env)
	if err != nil {
		return core.ContextType{}, err
	}
	spec.Activation = act
	if decl.Deactivation != nil {
		deact, err := compileSense(decl.Deactivation, env)
		if err != nil {
			return core.ContextType{}, err
		}
		spec.Deactivation = deact
	}

	vars := make(map[string]*VarDecl, len(decl.Vars))
	for _, v := range decl.Vars {
		if vars[v.Name] != nil {
			return core.ContextType{}, cerrf(v.Pos, "variable %q declared twice", v.Name)
		}
		vars[v.Name] = v
		av, err := compileVar(v, env)
		if err != nil {
			return core.ContextType{}, err
		}
		spec.Vars = append(spec.Vars, av)
	}

	for _, obj := range decl.Objects {
		o := core.ObjectSpec{Name: obj.Name}
		for _, m := range obj.Methods {
			ms, err := compileMethod(m, vars, env)
			if err != nil {
				return core.ContextType{}, err
			}
			o.Methods = append(o.Methods, ms)
		}
		spec.Objects = append(spec.Objects, o)
	}
	if err := spec.Validate(); err != nil {
		return core.ContextType{}, cerrf(decl.Pos, "%v", err)
	}
	return spec, nil
}

// compileSense turns an activation/deactivation expression into a sensing
// predicate over local readings.
func compileSense(e Expr, env Env) (sensor.Func, error) {
	switch ex := e.(type) {
	case *CallExpr:
		fn, ok := env.Senses.Lookup(ex.Name)
		if !ok {
			return nil, cerrf(ex.Pos, "unknown sensing function %q (known: %s)",
				ex.Name, strings.Join(env.Senses.Names(), ", "))
		}
		return fn, nil
	case *CmpExpr:
		cmp, err := comparator(ex.Op)
		if err != nil {
			return nil, cerrf(ex.Pos, "%v", err)
		}
		name, threshold := ex.Name, ex.Value
		return func(rd sensor.Reading) bool {
			v, ok := rd.Value(name)
			return ok && cmp(v, threshold)
		}, nil
	case *NotExpr:
		inner, err := compileSense(ex.E, env)
		if err != nil {
			return nil, err
		}
		return func(rd sensor.Reading) bool { return !inner(rd) }, nil
	case *BinExpr:
		l, err := compileSense(ex.L, env)
		if err != nil {
			return nil, err
		}
		r, err := compileSense(ex.R, env)
		if err != nil {
			return nil, err
		}
		if ex.Op == "and" {
			return func(rd sensor.Reading) bool { return l(rd) && r(rd) }, nil
		}
		return func(rd sensor.Reading) bool { return l(rd) || r(rd) }, nil
	default:
		return nil, fmt.Errorf("lang: unsupported activation expression %T", e)
	}
}

// compileVar resolves one aggregate variable declaration. The spelling
// `avg(position)` resolves to the centroid, as the preprocessor maps every
// (function, sensor) pair to a concrete middleware call.
func compileVar(v *VarDecl, env Env) (core.AggVarSpec, error) {
	name := v.Func
	if v.Input == core.PositionInput && name == "avg" {
		name = "centroid"
	}
	fn, ok := env.Aggs.Lookup(name)
	if !ok {
		return core.AggVarSpec{}, cerrf(v.Pos, "unknown aggregation function %q (known: %s)",
			v.Func, strings.Join(env.Aggs.Names(), ", "))
	}
	if fn.PosInput && v.Input != core.PositionInput {
		return core.AggVarSpec{}, cerrf(v.Pos, "aggregation %q requires the position input", name)
	}
	if !fn.PosInput && v.Input == core.PositionInput {
		return core.AggVarSpec{}, cerrf(v.Pos, "aggregation %q cannot aggregate positions", name)
	}
	return core.AggVarSpec{
		Name:         v.Name,
		Func:         fn,
		Input:        v.Input,
		Freshness:    v.Freshness,
		CriticalMass: v.Confidence,
	}, nil
}

func compileMethod(m *MethodDecl, vars map[string]*VarDecl, env Env) (core.MethodSpec, error) {
	spec := core.MethodSpec{Name: m.Name}
	switch m.Invocation.Kind {
	case InvokeTimer:
		spec.Period = m.Invocation.Period
	case InvokeMessage:
		spec.Port = transport.PortID(m.Invocation.Port)
	case InvokeCondition:
		cond, err := compileCondition(m.Invocation.Cond, vars)
		if err != nil {
			return core.MethodSpec{}, err
		}
		spec.Condition = cond
	default:
		return core.MethodSpec{}, cerrf(m.Pos, "method %q has no invocation", m.Name)
	}

	body, err := compileBody(m, vars, env)
	if err != nil {
		return core.MethodSpec{}, err
	}
	spec.Body = body
	return spec, nil
}

// compileCondition turns an invocation condition into a predicate over the
// enclosing context's aggregate state. References must name declared
// scalar variables; a null (invalid) read makes the condition false, per
// the approximate-state semantics.
func compileCondition(e Expr, vars map[string]*VarDecl) (func(*core.Ctx) bool, error) {
	switch ex := e.(type) {
	case *CmpExpr:
		v, ok := vars[ex.Name]
		if !ok {
			return nil, cerrf(ex.Pos, "invocation condition references undeclared variable %q", ex.Name)
		}
		if v.Input == core.PositionInput {
			return nil, cerrf(ex.Pos, "variable %q is position-valued and cannot be compared to a number", ex.Name)
		}
		cmp, err := comparator(ex.Op)
		if err != nil {
			return nil, cerrf(ex.Pos, "%v", err)
		}
		name, threshold := ex.Name, ex.Value
		return func(ctx *core.Ctx) bool {
			val, ok := ctx.ReadScalar(name)
			return ok && cmp(val, threshold)
		}, nil
	case *NotExpr:
		inner, err := compileCondition(ex.E, vars)
		if err != nil {
			return nil, err
		}
		return func(ctx *core.Ctx) bool { return !inner(ctx) }, nil
	case *BinExpr:
		l, err := compileCondition(ex.L, vars)
		if err != nil {
			return nil, err
		}
		r, err := compileCondition(ex.R, vars)
		if err != nil {
			return nil, err
		}
		if ex.Op == "and" {
			return func(ctx *core.Ctx) bool { return l(ctx) && r(ctx) }, nil
		}
		return func(ctx *core.Ctx) bool { return l(ctx) || r(ctx) }, nil
	case *CallExpr:
		return nil, cerrf(ex.Pos, "sensing functions cannot appear in invocation conditions")
	default:
		return nil, fmt.Errorf("lang: unsupported invocation condition %T", e)
	}
}

func comparator(op string) (func(a, b float64) bool, error) {
	switch op {
	case ">":
		return func(a, b float64) bool { return a > b }, nil
	case "<":
		return func(a, b float64) bool { return a < b }, nil
	case ">=":
		return func(a, b float64) bool { return a >= b }, nil
	case "<=":
		return func(a, b float64) bool { return a <= b }, nil
	case "==":
		return func(a, b float64) bool { return a == b }, nil
	case "!=":
		return func(a, b float64) bool { return a != b }, nil
	default:
		return nil, fmt.Errorf("unknown comparison operator %q", op)
	}
}

// compiledStmt is one executable body statement.
type compiledStmt func(ctx *core.Ctx) bool

// compileBody compiles each statement; at run time statements execute in
// order, and a statement that cannot complete (a null aggregate read)
// aborts the remainder of the body — the tracking object only acts on
// confirmed state.
func compileBody(m *MethodDecl, vars map[string]*VarDecl, env Env) (func(*core.Ctx, core.Trigger), error) {
	stmts := make([]compiledStmt, 0, len(m.Body))
	for _, st := range m.Body {
		cs, err := compileStmt(st, vars, env)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, cs)
	}
	return func(ctx *core.Ctx, _ core.Trigger) {
		for _, st := range stmts {
			if !st(ctx) {
				return
			}
		}
	}, nil
}

func compileStmt(st *CallStmt, vars map[string]*VarDecl, env Env) (compiledStmt, error) {
	switch strings.ToLower(st.Name) {
	case "send", "mysend":
		if len(st.Args) < 1 {
			return nil, cerrf(st.Pos, "%s needs a destination argument", st.Name)
		}
		dest := st.Args[0]
		if dest.Kind != ArgIdent {
			return nil, cerrf(st.Pos, "%s destination must be an identifier", st.Name)
		}
		node, ok := env.Destinations[dest.Text]
		if !ok {
			if env.AllowUnbound {
				return func(*core.Ctx) bool { return true }, nil
			}
			return nil, cerrf(st.Pos, "unknown destination %q (bind it in the compile environment)", dest.Text)
		}
		evalArgs, err := compileArgs(st.Args[1:], st.Pos, vars)
		if err != nil {
			return nil, err
		}
		return func(ctx *core.Ctx) bool {
			vals, ok := evalArgs(ctx)
			if !ok {
				return false
			}
			ctx.SendNode(node, Message{From: ctx.Label(), Values: vals})
			return true
		}, nil
	case "log":
		evalArgs, err := compileArgs(st.Args, st.Pos, vars)
		if err != nil {
			return nil, err
		}
		logf := env.Logf
		return func(ctx *core.Ctx) bool {
			vals, ok := evalArgs(ctx)
			if !ok {
				return false
			}
			if logf != nil {
				logf("[%s @%v] %v", ctx.Label(), ctx.Now(), vals)
			}
			return true
		}, nil
	case "setstate":
		evalArgs, err := compileArgs(st.Args, st.Pos, vars)
		if err != nil {
			return nil, err
		}
		return func(ctx *core.Ctx) bool {
			vals, ok := evalArgs(ctx)
			if !ok {
				return false
			}
			ctx.SetState([]byte(fmt.Sprint(vals...)))
			return true
		}, nil
	default:
		action, ok := env.Actions[st.Name]
		if !ok {
			if env.AllowUnbound {
				return func(*core.Ctx) bool { return true }, nil
			}
			return nil, cerrf(st.Pos, "unknown action %q (builtins: send, log, setstate)", st.Name)
		}
		evalArgs, err := compileArgs(st.Args, st.Pos, vars)
		if err != nil {
			return nil, err
		}
		return func(ctx *core.Ctx) bool {
			vals, ok := evalArgs(ctx)
			if !ok {
				return false
			}
			action(ctx, vals)
			return true
		}, nil
	}
}

// compileArgs builds an evaluator for statement arguments. Identifiers
// must name declared aggregate variables; their reads may be null at run
// time, which aborts the statement (ok=false).
func compileArgs(args []Arg, pos Pos, vars map[string]*VarDecl) (func(*core.Ctx) ([]any, bool), error) {
	type evalArg func(*core.Ctx) (any, bool)
	evals := make([]evalArg, 0, len(args))
	for _, a := range args {
		switch a.Kind {
		case ArgSelfLabel:
			evals = append(evals, func(ctx *core.Ctx) (any, bool) { return ctx.Label(), true })
		case ArgNumber:
			v := a.Num
			evals = append(evals, func(*core.Ctx) (any, bool) { return v, true })
		case ArgString:
			s := a.Text
			evals = append(evals, func(*core.Ctx) (any, bool) { return s, true })
		case ArgIdent:
			if _, ok := vars[a.Text]; !ok {
				return nil, cerrf(pos, "argument references undeclared variable %q", a.Text)
			}
			name := a.Text
			evals = append(evals, func(ctx *core.Ctx) (any, bool) {
				v, ok := ctx.Read(name)
				if !ok {
					return nil, false
				}
				if v.IsPos {
					return v.Pos, true
				}
				return v.Scalar, true
			})
		default:
			return nil, cerrf(pos, "unsupported argument kind")
		}
	}
	return func(ctx *core.Ctx) ([]any, bool) {
		out := make([]any, len(evals))
		for i, ev := range evals {
			v, ok := ev(ctx)
			if !ok {
				return nil, false
			}
			out[i] = v
		}
		return out, true
	}, nil
}
