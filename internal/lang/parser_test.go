package lang

import (
	"strings"
	"testing"
	"time"
)

// figure2 is the paper's example program (Figure 2), in this
// implementation's concrete syntax.
const figure2 = `
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            send(pursuer, self:label, location);
        }
    end
end context
`

func TestParseFigure2(t *testing.T) {
	prog, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Contexts) != 1 {
		t.Fatalf("contexts = %d, want 1", len(prog.Contexts))
	}
	ctx := prog.Contexts[0]
	if ctx.Name != "tracker" {
		t.Errorf("name = %q", ctx.Name)
	}
	call, ok := ctx.Activation.(*CallExpr)
	if !ok || call.Name != "magnetic_sensor_reading" {
		t.Errorf("activation = %v", ctx.Activation)
	}
	if len(ctx.Vars) != 1 {
		t.Fatalf("vars = %d, want 1", len(ctx.Vars))
	}
	v := ctx.Vars[0]
	if v.Name != "location" || v.Func != "avg" || v.Input != "position" {
		t.Errorf("var = %+v", v)
	}
	if v.Confidence != 2 || v.Freshness != time.Second {
		t.Errorf("QoS = %d/%v, want 2/1s", v.Confidence, v.Freshness)
	}
	if len(ctx.Objects) != 1 || ctx.Objects[0].Name != "reporter" {
		t.Fatalf("objects = %+v", ctx.Objects)
	}
	m := ctx.Objects[0].Methods[0]
	if m.Name != "report_function" {
		t.Errorf("method = %q", m.Name)
	}
	if m.Invocation.Kind != InvokeTimer || m.Invocation.Period != 5*time.Second {
		t.Errorf("invocation = %+v", m.Invocation)
	}
	if len(m.Body) != 1 {
		t.Fatalf("body = %d stmts", len(m.Body))
	}
	st := m.Body[0]
	if st.Name != "send" || len(st.Args) != 3 {
		t.Fatalf("stmt = %+v", st)
	}
	if st.Args[0].Kind != ArgIdent || st.Args[0].Text != "pursuer" {
		t.Errorf("arg0 = %+v", st.Args[0])
	}
	if st.Args[1].Kind != ArgSelfLabel {
		t.Errorf("arg1 = %+v", st.Args[1])
	}
	if st.Args[2].Kind != ArgIdent || st.Args[2].Text != "location" {
		t.Errorf("arg2 = %+v", st.Args[2])
	}
}

func TestParseBooleanActivation(t *testing.T) {
	src := `
begin context fire
    activation: temperature > 180 and light > 0.5
    heat : avg(temperature) confidence=5, freshness=3s
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bin, ok := prog.Contexts[0].Activation.(*BinExpr)
	if !ok || bin.Op != "and" {
		t.Fatalf("activation = %v", prog.Contexts[0].Activation)
	}
	l, ok := bin.L.(*CmpExpr)
	if !ok || l.Name != "temperature" || l.Op != ">" || l.Value != 180 {
		t.Errorf("left = %v", bin.L)
	}
}

func TestParseDeactivationAndConditionMethod(t *testing.T) {
	src := `
begin context fire
    activation: fire_sensor_reading()
    deactivation: temperature < 100
    heat : avg(temperature) confidence=2, freshness=2s
    begin object alarm
        invocation: heat > 300
        panic_function() {
            log(heat);
        }
    end
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ctx := prog.Contexts[0]
	if ctx.Deactivation == nil {
		t.Fatal("deactivation not parsed")
	}
	m := ctx.Objects[0].Methods[0]
	if m.Invocation.Kind != InvokeCondition {
		t.Fatalf("invocation kind = %v", m.Invocation.Kind)
	}
	cmp, ok := m.Invocation.Cond.(*CmpExpr)
	if !ok || cmp.Name != "heat" || cmp.Value != 300 {
		t.Errorf("condition = %v", m.Invocation.Cond)
	}
}

func TestParseMessageInvocation(t *testing.T) {
	src := `
begin context tracker
    activation: magnetic_sensor_reading()
    begin object listener
        invocation: MESSAGE(7)
        on_ping() {
            log("ping");
        }
    end
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Contexts[0].Objects[0].Methods[0]
	if m.Invocation.Kind != InvokeMessage || m.Invocation.Port != 7 {
		t.Errorf("invocation = %+v", m.Invocation)
	}
}

func TestParseMultipleContexts(t *testing.T) {
	src := figure2 + `
begin context fire
    activation: fire_sensor_reading()
    heat : max(temperature) confidence=1, freshness=2s
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Contexts) != 2 {
		t.Fatalf("contexts = %d, want 2", len(prog.Contexts))
	}
	if prog.Contexts[1].Name != "fire" {
		t.Errorf("second context = %q", prog.Contexts[1].Name)
	}
}

func TestParseNotAndParens(t *testing.T) {
	src := `
begin context x
    activation: not (a > 1 or b < 2)
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	not, ok := prog.Contexts[0].Activation.(*NotExpr)
	if !ok {
		t.Fatalf("activation = %v", prog.Contexts[0].Activation)
	}
	if _, ok := not.E.(*BinExpr); !ok {
		t.Errorf("inner = %v", not.E)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{name: "empty", src: "", want: "empty program"},
		{name: "missing activation", src: "begin context x end context", want: "expected 'activation'"},
		{name: "missing freshness", src: "begin context x activation: f() v : avg(a) confidence=2 end context", want: "freshness"},
		{name: "bad confidence", src: "begin context x activation: f() v : avg(a) confidence=0, freshness=1s end context", want: "positive integer"},
		{name: "object without methods", src: "begin context x activation: f() begin object o end end context", want: "no methods"},
		{name: "bad port", src: "begin context x activation: f() begin object o invocation: MESSAGE(0) m() { } end end context", want: "port"},
		{name: "bad self arg", src: "begin context x activation: f() begin object o invocation: TIMER(1s) m() { send(p, self:id); } end end context", want: "self:label"},
		{name: "unknown attribute", src: "begin context x activation: f() v : avg(a) weight=1, freshness=1s end context", want: "unknown attribute"},
		{name: "missing comparison", src: "begin context x activation: temperature end context", want: "comparison operator"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %q, want it to contain %q", err, tt.want)
			}
		})
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := Parse("begin context x\n  oops")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Pos.Line)
	}
}

// Round trip: Format then Parse reproduces an equivalent AST.
func TestFormatParseRoundTrip(t *testing.T) {
	sources := []string{
		figure2,
		`
begin context fire
    activation: temperature > 180 and light > 0.5
    deactivation: temperature < 100
    heat : avg(temperature) confidence=5, freshness=3s
    pos : avg(position) confidence=2, freshness=1500ms
    begin object alarm
        invocation: heat > 300
        alarm_function() {
            log("alarm", heat);
            setstate("alarmed");
        }
    end
    begin object responder
        invocation: MESSAGE(9)
        on_query() {
            send(base, self:label, heat, pos);
        }
    end
end context
`,
	}
	for i, src := range sources {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		formatted := p1.Format()
		p2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("source %d: reparse of formatted output failed: %v\n%s", i, err, formatted)
		}
		if got := p2.Format(); got != formatted {
			t.Errorf("source %d: format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", i, formatted, got)
		}
	}
}

func TestParseDurationUnits(t *testing.T) {
	tests := []struct {
		src  string
		want time.Duration
	}{
		{"TIMER(5s)", 5 * time.Second},
		{"TIMER(250ms)", 250 * time.Millisecond},
		{"TIMER(1.5s)", 1500 * time.Millisecond},
		{"TIMER(2m)", 2 * time.Minute},
		{"TIMER(3)", 3 * time.Second}, // bare number = seconds
	}
	for _, tt := range tests {
		src := "begin context x activation: f() begin object o invocation: " +
			tt.src + " m() { } end end context"
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", tt.src, err)
			continue
		}
		got := prog.Contexts[0].Objects[0].Methods[0].Invocation.Period
		if got != tt.want {
			t.Errorf("%s period = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestParseBackendClause(t *testing.T) {
	src := `
begin context tracker
    activation: sense()
    backend: passive
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            send(pursuer, self:label, location);
        }
    end
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ctx := prog.Contexts[0]
	if ctx.Backend != "passive" {
		t.Errorf("backend = %q, want passive", ctx.Backend)
	}
	if len(ctx.Vars) != 1 || ctx.Vars[0].Name != "location" {
		t.Errorf("vars = %+v", ctx.Vars)
	}
	// Round trip: Format emits the clause, Parse reads it back.
	p2, err := Parse(prog.Format())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, prog.Format())
	}
	if p2.Contexts[0].Backend != "passive" {
		t.Errorf("round-tripped backend = %q", p2.Contexts[0].Backend)
	}
}

func TestParseBackendIsContextual(t *testing.T) {
	// A variable named "backend" still parses as a var declaration: the
	// '(' after the function name disambiguates.
	src := `
begin context tracker
    activation: sense()
    backend : avg(temperature) confidence=1, freshness=1s
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ctx := prog.Contexts[0]
	if ctx.Backend != "" {
		t.Errorf("backend clause = %q, want none", ctx.Backend)
	}
	if len(ctx.Vars) != 1 || ctx.Vars[0].Name != "backend" {
		t.Errorf("vars = %+v, want one var named backend", ctx.Vars)
	}
}

func TestParseBackendDeclaredTwice(t *testing.T) {
	src := `
begin context tracker
    activation: sense()
    backend: passive
    backend: leader
end context
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "backend declared twice") {
		t.Errorf("err = %v, want backend declared twice", err)
	}
}
