// Package lang implements the EnviroTrack context-definition language of
// Section 4 and Appendix A: a lexer, parser, AST, semantic compiler that
// produces core.ContextType specifications against registries of sensing
// and aggregation functions, and a Go code generator (the analogue of the
// paper's NesC-emitting preprocessor).
//
// The concrete syntax follows Figure 2:
//
//	begin context tracker
//	    activation: magnetic_sensor_reading()
//	    location : avg(position) confidence=2, freshness=1s
//	    begin object reporter
//	        invocation: TIMER(5s)
//	        report_function() {
//	            send(pursuer, self:label, location);
//	        }
//	    end
//	end context
package lang

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota + 1
	IDENT
	NUMBER   // 42, 3.5
	DURATION // 5s, 250ms
	STRING   // "text"

	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	COLON  // :
	SEMI   // ;
	COMMA  // ,
	ASSIGN // =

	GT // >
	LT // <
	GE // >=
	LE // <=
	EQ // ==
	NE // !=

	// Keywords.
	KWBEGIN
	KWEND
	KWCONTEXT
	KWOBJECT
	KWACTIVATION
	KWDEACTIVATION
	KWINVOCATION
	KWAND
	KWOR
	KWNOT
	KWSELF
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of file"
	case IDENT:
		return "identifier"
	case NUMBER:
		return "number"
	case DURATION:
		return "duration"
	case STRING:
		return "string"
	case LPAREN:
		return "'('"
	case RPAREN:
		return "')'"
	case LBRACE:
		return "'{'"
	case RBRACE:
		return "'}'"
	case COLON:
		return "':'"
	case SEMI:
		return "';'"
	case COMMA:
		return "','"
	case ASSIGN:
		return "'='"
	case GT:
		return "'>'"
	case LT:
		return "'<'"
	case GE:
		return "'>='"
	case LE:
		return "'<='"
	case EQ:
		return "'=='"
	case NE:
		return "'!='"
	case KWBEGIN:
		return "'begin'"
	case KWEND:
		return "'end'"
	case KWCONTEXT:
		return "'context'"
	case KWOBJECT:
		return "'object'"
	case KWACTIVATION:
		return "'activation'"
	case KWDEACTIVATION:
		return "'deactivation'"
	case KWINVOCATION:
		return "'invocation'"
	case KWAND:
		return "'and'"
	case KWOR:
		return "'or'"
	case KWNOT:
		return "'not'"
	case KWSELF:
		return "'self'"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String implements fmt.Stringer.
func (p Pos) String() string {
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is one lexeme with its position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

var keywords = map[string]Kind{
	"begin":        KWBEGIN,
	"end":          KWEND,
	"context":      KWCONTEXT,
	"object":       KWOBJECT,
	"activation":   KWACTIVATION,
	"deactivation": KWDEACTIVATION,
	"invocation":   KWINVOCATION,
	"and":          KWAND,
	"or":           KWOR,
	"not":          KWNOT,
	"self":         KWSELF,
}

// SyntaxError is a lexing or parsing failure with its location.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
