package lang

import (
	goparser "go/parser"
	"go/token"
	"testing"
)

// parseGo verifies emitted code is syntactically valid Go.
func parseGo(t *testing.T, src string) {
	t.Helper()
	fset := token.NewFileSet()
	if _, err := goparser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
}

func TestGeneratedGoIsValid(t *testing.T) {
	sources := map[string]string{
		"figure2": figure2,
		"full": `
begin context fire
    activation: temperature > 180 and fire_sensor_reading()
    deactivation: temperature < 100
    heat : avg(temperature) confidence=5, freshness=3s
    where : avg(position) confidence=2, freshness=1s
    begin object alarm
        invocation: heat > 300 or heat < 0
        alarm_function() {
            log("alarm", heat);
            setstate("alarmed");
            send(base, self:label, where);
        }
    end
    begin object responder
        invocation: MESSAGE(9)
        on_query() {
            send(base, heat);
        }
    end
    begin object beacon
        invocation: TIMER(250ms)
        beep() {
        }
    end
end context
`,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			prog, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := GenerateGo(prog, "gen")
			if err != nil {
				t.Fatal(err)
			}
			parseGo(t, gen)
		})
	}
}

func TestGeneratedGoRejectsCustomActions(t *testing.T) {
	src := `
begin context x
    activation: a > 1
    begin object o
        invocation: TIMER(1s)
        m() { custom(); }
    end
end context
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateGo(prog, "gen"); err == nil {
		t.Error("expected error generating code for unknown action")
	}
}

func TestGeneratedGoDefaultPackage(t *testing.T) {
	prog, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := GenerateGo(prog, "")
	if err != nil {
		t.Fatal(err)
	}
	parseGo(t, gen)
}
