package lang

import (
	"strings"
	"unicode"
)

// Lexer tokenizes EnviroTrack source text. Comments run from "//" or "#"
// to end of line.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over the source text.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the whole input, ending with an EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos {
	return Pos{Line: lx.line, Col: lx.col}
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#', c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.ident(pos), nil
	case c >= '0' && c <= '9':
		return lx.number(pos)
	case c == '"':
		return lx.str(pos)
	}
	lx.advance()
	switch c {
	case '(':
		return Token{Kind: LPAREN, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: RPAREN, Text: ")", Pos: pos}, nil
	case '{':
		return Token{Kind: LBRACE, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: RBRACE, Text: "}", Pos: pos}, nil
	case ':':
		return Token{Kind: COLON, Text: ":", Pos: pos}, nil
	case ';':
		return Token{Kind: SEMI, Text: ";", Pos: pos}, nil
	case ',':
		return Token{Kind: COMMA, Text: ",", Pos: pos}, nil
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: EQ, Text: "==", Pos: pos}, nil
		}
		return Token{Kind: ASSIGN, Text: "=", Pos: pos}, nil
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: GE, Text: ">=", Pos: pos}, nil
		}
		return Token{Kind: GT, Text: ">", Pos: pos}, nil
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: LE, Text: "<=", Pos: pos}, nil
		}
		return Token{Kind: LT, Text: "<", Pos: pos}, nil
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: NE, Text: "!=", Pos: pos}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (lx *Lexer) ident(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := keywords[strings.ToLower(text)]; ok {
		return Token{Kind: kw, Text: text, Pos: pos}
	}
	return Token{Kind: IDENT, Text: text, Pos: pos}
}

// number scans a numeric literal, optionally suffixed with a duration
// unit (us, ms, s, m, h) — "5s", "250ms", "1.5s".
func (lx *Lexer) number(pos Pos) (Token, error) {
	start := lx.off
	seenDot := false
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '.' {
			if seenDot {
				return Token{}, errf(pos, "malformed number")
			}
			seenDot = true
			lx.advance()
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		lx.advance()
	}
	numEnd := lx.off
	// Optional unit suffix.
	for lx.off < len(lx.src) && isIdentStart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if lx.off > numEnd {
		unit := lx.src[numEnd:lx.off]
		switch unit {
		case "us", "ms", "s", "m", "h":
			return Token{Kind: DURATION, Text: text, Pos: pos}, nil
		default:
			return Token{}, errf(pos, "unknown duration unit %q", unit)
		}
	}
	return Token{Kind: NUMBER, Text: text, Pos: pos}, nil
}

func (lx *Lexer) str(pos Pos) (Token, error) {
	lx.advance() // opening quote
	start := lx.off
	for lx.off < len(lx.src) && lx.peek() != '"' && lx.peek() != '\n' {
		lx.advance()
	}
	if lx.off >= len(lx.src) || lx.peek() != '"' {
		return Token{}, errf(pos, "unterminated string")
	}
	text := lx.src[start:lx.off]
	lx.advance() // closing quote
	return Token{Kind: STRING, Text: text, Pos: pos}, nil
}
