package lang

import (
	"strconv"
	"strings"
	"time"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses EnviroTrack source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.program()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s %q", k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

func (p *Parser) program() (*Program, error) {
	prog := &Program{}
	for !p.at(EOF) {
		ctx, err := p.context()
		if err != nil {
			return nil, err
		}
		prog.Contexts = append(prog.Contexts, ctx)
	}
	if len(prog.Contexts) == 0 {
		return nil, errf(p.cur().Pos, "empty program: expected at least one context declaration")
	}
	return prog, nil
}

// context: 'begin' 'context' IDENT activation [deactivation] {var | object} 'end' 'context'
func (p *Parser) context() (*ContextDecl, error) {
	begin, err := p.expect(KWBEGIN)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWCONTEXT); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	ctx := &ContextDecl{Pos: begin.Pos, Name: name.Text}

	if _, err := p.expect(KWACTIVATION); err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	ctx.Activation, err = p.expr()
	if err != nil {
		return nil, err
	}
	p.accept(SEMI)

	if p.accept(KWDEACTIVATION) {
		if _, err := p.expect(COLON); err != nil {
			return nil, err
		}
		ctx.Deactivation, err = p.expr()
		if err != nil {
			return nil, err
		}
		p.accept(SEMI)
	}

	for {
		switch {
		case p.at(KWBEGIN):
			obj, err := p.object()
			if err != nil {
				return nil, err
			}
			ctx.Objects = append(ctx.Objects, obj)
		case p.atBackendClause():
			tok := p.next() // 'backend'
			p.next()        // ':'
			if ctx.Backend != "" {
				return nil, errf(tok.Pos, "backend declared twice")
			}
			ctx.Backend = p.next().Text
			p.accept(SEMI)
		case p.at(IDENT):
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			ctx.Vars = append(ctx.Vars, v)
		case p.at(KWEND):
			p.next()
			if _, err := p.expect(KWCONTEXT); err != nil {
				return nil, err
			}
			return ctx, nil
		default:
			return nil, errf(p.cur().Pos, "expected variable declaration, object, or 'end context', found %s %q",
				p.cur().Kind, p.cur().Text)
		}
	}
}

// atBackendClause reports whether the next tokens form the optional
// `backend: IDENT` clause. "backend" is a contextual keyword: a var
// declaration continues `name : func(input)`, so the absence of '('
// after the value identifier distinguishes the clause from a variable
// that happens to be named backend.
func (p *Parser) atBackendClause() bool {
	if !p.at(IDENT) || p.cur().Text != "backend" {
		return false
	}
	if p.pos+3 >= len(p.toks) {
		return false
	}
	return p.toks[p.pos+1].Kind == COLON &&
		p.toks[p.pos+2].Kind == IDENT &&
		p.toks[p.pos+3].Kind != LPAREN
}

// varDecl: IDENT ':' IDENT '(' IDENT ')' attributes [';']
func (p *Parser) varDecl() (*VarDecl, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	fn, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	input, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	v := &VarDecl{Pos: name.Pos, Name: name.Text, Func: fn.Text, Input: input.Text, Confidence: 1}

	// attributes: ident '=' value {',' ident '=' value}
	for p.at(IDENT) {
		attr := p.next()
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		switch strings.ToLower(attr.Text) {
		case "confidence":
			num, err := p.expect(NUMBER)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(num.Text)
			if err != nil || n < 1 {
				return nil, errf(num.Pos, "confidence must be a positive integer")
			}
			v.Confidence = n
		case "freshness":
			d, err := p.duration()
			if err != nil {
				return nil, err
			}
			v.Freshness = d
		default:
			return nil, errf(attr.Pos, "unknown attribute %q (want confidence or freshness)", attr.Text)
		}
		if !p.accept(COMMA) {
			break
		}
	}
	p.accept(SEMI)
	if v.Freshness <= 0 {
		return nil, errf(v.Pos, "variable %q needs a freshness attribute", v.Name)
	}
	return v, nil
}

// object: 'begin' 'object' IDENT {method} 'end'
func (p *Parser) object() (*ObjectDecl, error) {
	begin, err := p.expect(KWBEGIN)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWOBJECT); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	obj := &ObjectDecl{Pos: begin.Pos, Name: name.Text}
	for !p.at(KWEND) {
		m, err := p.method()
		if err != nil {
			return nil, err
		}
		obj.Methods = append(obj.Methods, m)
	}
	p.next() // end
	if len(obj.Methods) == 0 {
		return nil, errf(begin.Pos, "object %q has no methods", obj.Name)
	}
	return obj, nil
}

// method: 'invocation' ':' invocation IDENT '(' ')' '{' {stmt} '}'
func (p *Parser) method() (*MethodDecl, error) {
	if _, err := p.expect(KWINVOCATION); err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	inv, err := p.invocation()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	m := &MethodDecl{Pos: name.Pos, Name: name.Text, Invocation: inv}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	for !p.at(RBRACE) {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		m.Body = append(m.Body, st)
	}
	p.next() // }
	return m, nil
}

// invocation: TIMER '(' duration ')' | MESSAGE '(' number ')' | expr
func (p *Parser) invocation() (Invocation, error) {
	if p.at(IDENT) {
		switch strings.ToUpper(p.cur().Text) {
		case "TIMER":
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return Invocation{}, err
			}
			d, err := p.duration()
			if err != nil {
				return Invocation{}, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return Invocation{}, err
			}
			if d <= 0 {
				return Invocation{}, errf(p.cur().Pos, "timer period must be positive")
			}
			return Invocation{Kind: InvokeTimer, Period: d}, nil
		case "MESSAGE":
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return Invocation{}, err
			}
			num, err := p.expect(NUMBER)
			if err != nil {
				return Invocation{}, err
			}
			port, err := strconv.Atoi(num.Text)
			if err != nil || port < 1 || port > 65535 {
				return Invocation{}, errf(num.Pos, "message port must be in 1..65535")
			}
			if _, err := p.expect(RPAREN); err != nil {
				return Invocation{}, err
			}
			return Invocation{Kind: InvokeMessage, Port: port}, nil
		}
	}
	cond, err := p.expr()
	if err != nil {
		return Invocation{}, err
	}
	return Invocation{Kind: InvokeCondition, Cond: cond}, nil
}

// stmt: IDENT '(' [arg {',' arg}] ')' ';'
func (p *Parser) stmt() (*CallStmt, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	st := &CallStmt{Pos: name.Pos, Name: name.Text}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for !p.at(RPAREN) {
		arg, err := p.arg()
		if err != nil {
			return nil, err
		}
		st.Args = append(st.Args, arg)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) arg() (Arg, error) {
	switch p.cur().Kind {
	case KWSELF:
		p.next()
		if _, err := p.expect(COLON); err != nil {
			return Arg{}, err
		}
		label, err := p.expect(IDENT)
		if err != nil {
			return Arg{}, err
		}
		if label.Text != "label" {
			return Arg{}, errf(label.Pos, "expected self:label, found self:%s", label.Text)
		}
		return Arg{Kind: ArgSelfLabel}, nil
	case IDENT:
		return Arg{Kind: ArgIdent, Text: p.next().Text}, nil
	case NUMBER:
		tok := p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return Arg{}, errf(tok.Pos, "malformed number %q", tok.Text)
		}
		return Arg{Kind: ArgNumber, Num: v}, nil
	case STRING:
		return Arg{Kind: ArgString, Text: p.next().Text}, nil
	default:
		return Arg{}, errf(p.cur().Pos, "expected argument, found %s %q", p.cur().Kind, p.cur().Text)
	}
}

// expr: andExpr {'or' andExpr}
func (p *Parser) expr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(KWOR) {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

// andExpr: unary {'and' unary}
func (p *Parser) andExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(KWAND) {
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

// unary: 'not' unary | '(' expr ')' | IDENT '(' ')' | IDENT relop number
func (p *Parser) unaryExpr() (Expr, error) {
	if p.accept(KWNOT) {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.accept(LPAREN) {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	ident, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if p.accept(LPAREN) {
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &CallExpr{Pos: ident.Pos, Name: ident.Text}, nil
	}
	op := p.cur()
	switch op.Kind {
	case GT, LT, GE, LE, EQ, NE:
		p.next()
	default:
		return nil, errf(op.Pos, "expected comparison operator after %q, found %s", ident.Text, op.Kind)
	}
	num, err := p.expect(NUMBER)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseFloat(num.Text, 64)
	if err != nil {
		return nil, errf(num.Pos, "malformed number %q", num.Text)
	}
	return &CmpExpr{Pos: ident.Pos, Name: ident.Text, Op: op.Text, Value: v}, nil
}

// duration parses DURATION or a bare NUMBER interpreted as seconds.
func (p *Parser) duration() (time.Duration, error) {
	tok := p.cur()
	switch tok.Kind {
	case DURATION:
		p.next()
		return parseDuration(tok)
	case NUMBER:
		p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return 0, errf(tok.Pos, "malformed number %q", tok.Text)
		}
		return time.Duration(v * float64(time.Second)), nil
	default:
		return 0, errf(tok.Pos, "expected duration, found %s %q", tok.Kind, tok.Text)
	}
}

func parseDuration(tok Token) (time.Duration, error) {
	text := tok.Text
	i := len(text)
	for i > 0 && (text[i-1] < '0' || text[i-1] > '9') && text[i-1] != '.' {
		i--
	}
	num, unit := text[:i], text[i:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, errf(tok.Pos, "malformed duration %q", text)
	}
	var scale time.Duration
	switch unit {
	case "us":
		scale = time.Microsecond
	case "ms":
		scale = time.Millisecond
	case "s":
		scale = time.Second
	case "m":
		scale = time.Minute
	case "h":
		scale = time.Hour
	default:
		return 0, errf(tok.Pos, "unknown duration unit %q", unit)
	}
	return time.Duration(v * float64(scale)), nil
}
