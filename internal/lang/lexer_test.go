package lang

import (
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeFigure2(t *testing.T) {
	src := `begin context tracker
  activation: magnetic_sensor_reading()
  location : avg (position) confidence=2, freshness=1s
end context`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KWBEGIN, KWCONTEXT, IDENT,
		KWACTIVATION, COLON, IDENT, LPAREN, RPAREN,
		IDENT, COLON, IDENT, LPAREN, IDENT, RPAREN,
		IDENT, ASSIGN, NUMBER, COMMA, IDENT, ASSIGN, DURATION,
		KWEND, KWCONTEXT, EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token kinds = %v,\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (text %q)", i, got[i], want[i], toks[i].Text)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("> < >= <= == != = : ; , ( ) { }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{GT, LT, GE, LE, EQ, NE, ASSIGN, COLON, SEMI, COMMA, LPAREN, RPAREN, LBRACE, RBRACE, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("begin // a comment\n# another\ncontext")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KWBEGIN, KWCONTEXT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestTokenizeDurations(t *testing.T) {
	tests := []struct {
		src  string
		kind Kind
	}{
		{"5s", DURATION},
		{"250ms", DURATION},
		{"1.5s", DURATION},
		{"10us", DURATION},
		{"2h", DURATION},
		{"42", NUMBER},
		{"3.14", NUMBER},
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.src)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", tt.src, err)
			continue
		}
		if toks[0].Kind != tt.kind {
			t.Errorf("Tokenize(%q) kind = %v, want %v", tt.src, toks[0].Kind, tt.kind)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	tests := []string{
		"5q",      // unknown unit
		"3.1.4",   // double dot
		"@",       // stray character
		`"no end`, // unterminated string
	}
	for _, src := range tests {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestTokenizeString(t *testing.T) {
	toks, err := Tokenize(`"hello world"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != STRING || toks[0].Text != "hello world" {
		t.Errorf("string token = %+v", toks[0])
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("begin\n  context")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token pos = %v, want 2:3", toks[1].Pos)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("BEGIN Context")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KWBEGIN || toks[1].Kind != KWCONTEXT {
		t.Errorf("kinds = %v %v", toks[0].Kind, toks[1].Kind)
	}
}
