package lang

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's total-function contract: any input —
// malformed begin/end nesting, truncated QoS clauses, stray bytes — must
// return an error or a program, never panic. When a program parses, the
// downstream preprocessor stages (formatting, code generation) and the
// format/reparse round trip must hold up too.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		figure2,
		"begin context",
		"begin context x\nend",
		"begin context x\nactivation: f()\nend context",
		"begin context x\nactivation: f(\nend context",
		"begin context x\nactivation: f() and (g() or not h())\nend context",
		"begin context x\nlocation : avg(position) confidence=2, freshness=1s\nend context",
		"begin context x\nlocation : avg(position) confidence=, freshness=\nend context",
		"begin context x\nbegin object o\ninvocation: TIMER(5s)\nm() { send(a, b); }\nend\nend context",
		"begin object o\nend",
		"begin context x\nbegin object o\nm() { send(; }\nend\nend context",
		"begin context \xff\xfe\nend context",
		"# comment only\n",
		strings.Repeat("begin context x\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			if prog != nil {
				t.Fatalf("Parse returned both a program and error %v", err)
			}
			return
		}
		if prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
		// The stages the preprocessor runs on a parsed program must not
		// panic either.
		if _, err := GenerateGo(prog, "fuzz"); err != nil {
			// Semantic rejection is fine; crashing is not.
			_ = err
		}
		formatted := prog.Format()
		// Canonical form must stay parseable: Format output is what -fmt
		// writes back to the user's file.
		if _, err := Parse(formatted); err != nil {
			t.Fatalf("formatted program does not re-parse: %v\n--- formatted ---\n%s", err, formatted)
		}
	})
}
