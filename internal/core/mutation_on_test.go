//go:build chaosmut

package core

const protocolMutated = true
