// Package core implements the EnviroTrack middleware itself: context types,
// context labels, aggregate state variables, and tracking objects whose
// methods are invoked by the passage of time, by invocation conditions over
// aggregate state, or by the arrival of transport messages (Section 3.2).
// Object code executes on the sensor-group leader of the enclosing context;
// the distributed part of the computation (data collection, group
// maintenance) is delegated to the group and aggregate packages.
package core

import (
	"fmt"
	"time"

	"envirotrack/internal/aggregate"
	"envirotrack/internal/group"
	"envirotrack/internal/sensor"
	"envirotrack/internal/transport"
)

// PositionInput is the distinguished aggregation input meaning "the
// reporting mote's position" (as in `location : avg (position)`).
const PositionInput = "position"

// AggVarSpec declares one aggregate state variable of a context type.
type AggVarSpec struct {
	// Name is the variable name referenced by object code.
	Name string
	// Func is the aggregation function. For PositionInput inputs the
	// language layer resolves `avg` to the centroid.
	Func aggregate.Func
	// Input names the sensor channel aggregated, or PositionInput.
	Input string
	// Freshness is the QoS freshness horizon Le.
	Freshness time.Duration
	// CriticalMass is the QoS critical mass Ne (the "confidence"
	// attribute of Figure 2).
	CriticalMass int
}

// Validate reports an invalid variable declaration.
func (v AggVarSpec) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("core: aggregate variable with empty name")
	}
	if v.Func.Apply == nil {
		return fmt.Errorf("core: variable %q has no aggregation function", v.Name)
	}
	if v.Input == "" {
		return fmt.Errorf("core: variable %q has no input", v.Name)
	}
	if v.Freshness <= 0 {
		return fmt.Errorf("core: variable %q needs positive freshness", v.Name)
	}
	return nil
}

// TriggerKind distinguishes how a method invocation was triggered.
type TriggerKind int

// Trigger kinds.
const (
	TriggerTimer TriggerKind = iota + 1
	TriggerCondition
	TriggerMessage
)

// String implements fmt.Stringer.
func (k TriggerKind) String() string {
	switch k {
	case TriggerTimer:
		return "timer"
	case TriggerCondition:
		return "condition"
	case TriggerMessage:
		return "message"
	default:
		return "unknown"
	}
}

// Trigger carries the cause of a method invocation into the method body.
type Trigger struct {
	Kind TriggerKind
	// Msg is set for TriggerMessage invocations.
	Msg *transport.Datagram
}

// MethodSpec declares one method of a tracking object.
type MethodSpec struct {
	// Name identifies the method ("report_function").
	Name string
	// Period, when positive, invokes the method every Period (TIMER(p)).
	Period time.Duration
	// Condition, when non-nil, gates invocation: for timer methods it is
	// checked at each tick; for condition-only methods (Period == 0) it is
	// checked on every sensing scan of the leader.
	Condition func(ctx *Ctx) bool
	// Port, when non-zero, invokes the method on message arrival at this
	// port of the enclosing context label.
	Port transport.PortID
	// Body is the method code, executed on the group leader.
	Body func(ctx *Ctx, trig Trigger)
}

// Validate reports an invalid method declaration.
func (m MethodSpec) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("core: method with empty name")
	}
	if m.Body == nil {
		return fmt.Errorf("core: method %q has no body", m.Name)
	}
	if m.Period <= 0 && m.Condition == nil && m.Port == 0 {
		return fmt.Errorf("core: method %q has no invocation (timer, condition, or port)", m.Name)
	}
	return nil
}

// ObjectSpec declares a tracking object attached to a context type.
type ObjectSpec struct {
	Name    string
	Methods []MethodSpec
}

// Validate reports an invalid object declaration.
func (o ObjectSpec) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("core: object with empty name")
	}
	if len(o.Methods) == 0 {
		return fmt.Errorf("core: object %q has no methods", o.Name)
	}
	for _, m := range o.Methods {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("object %q: %w", o.Name, err)
		}
	}
	return nil
}

// ContextType is the compiled form of a `begin context ... end context`
// declaration: everything the middleware needs to discover entities of
// this type, maintain their aggregate state, and run their attached
// objects.
type ContextType struct {
	// Name is the context type name ("tracker", "fire").
	Name string
	// Activation is the sensee() condition creating and maintaining
	// membership.
	Activation sensor.Func
	// Deactivation optionally overrides the default "inverse of
	// activation" leave condition.
	Deactivation sensor.Func
	// Vars are the aggregate state variables.
	Vars []AggVarSpec
	// Objects are the attached tracking objects.
	Objects []ObjectSpec
	// Group overrides group-management parameters for this type. Non-leader
	// backends derive their protocol periods from the same knobs.
	Group group.Config
	// Backend names the tracking backend maintaining this type's labels
	// (see internal/track). Empty means the default leader-election
	// backend.
	Backend string
}

// Validate reports an invalid context type.
func (c ContextType) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: context type with empty name")
	}
	if c.Activation == nil {
		return fmt.Errorf("core: context type %q has no activation condition", c.Name)
	}
	seen := make(map[string]bool, len(c.Vars))
	for _, v := range c.Vars {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("context %q: %w", c.Name, err)
		}
		if seen[v.Name] {
			return fmt.Errorf("core: context %q declares variable %q twice", c.Name, v.Name)
		}
		seen[v.Name] = true
	}
	for _, o := range c.Objects {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("context %q: %w", c.Name, err)
		}
	}
	return nil
}

// Var returns the spec of a named aggregate variable.
func (c ContextType) Var(name string) (AggVarSpec, bool) {
	for _, v := range c.Vars {
		if v.Name == name {
			return v, true
		}
	}
	return AggVarSpec{}, false
}

// minFreshness returns the smallest freshness horizon across variables
// (used to derive the data-collection period Pe = Le - d), or 0 when the
// context has no variables.
func (c ContextType) minFreshness() time.Duration {
	var min time.Duration
	for _, v := range c.Vars {
		if min == 0 || v.Freshness < min {
			min = v.Freshness
		}
	}
	return min
}

// readingsPayload is the member report payload: one sample per aggregate
// variable, keyed by variable name.
type readingsPayload struct {
	Samples map[string]aggregate.Sample
}

// NodeMessage is the payload delivered when object code sends directly to
// a mote (the `MySend(pursuer, ...)` pattern: the base-station address is
// known at compile time).
type NodeMessage struct {
	From      int
	FromLabel group.Label
	Payload   any
}
