//go:build !chaosmut

package core

// protocolMutated lets nominal-protocol assertions skip under the
// -tags chaosmut mutation build (where the group yield rule is off and
// duplicate leaders are the expected outcome).
const protocolMutated = false
