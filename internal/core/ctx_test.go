package core

import (
	"testing"
	"time"

	"envirotrack/internal/aggregate"
	"envirotrack/internal/directory"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
	"envirotrack/internal/transport"
)

// TestContextToContextMessaging exercises Ctx.Send: a tracking object on
// one context label invokes a method on another label's object through
// the MTP transport (the paper's inter-object communication).
func TestContextToContextMessaging(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, -1), Max: geom.Pt(16, 2)}
	w := newWorld(t, 2.5, bounds)

	received := make(map[group.Label]int)
	// Context "watch" tracks vehicles and pings context "siren" labels.
	var sirenLabel group.Label

	sirenSpec := ContextType{
		Name: "siren",
		Activation: func(rd sensor.Reading) bool {
			v, _ := rd.Value("fire_detect")
			return v > 0.5
		},
		Objects: []ObjectSpec{{
			Name: "horn",
			Methods: []MethodSpec{{
				Name: "on_alert",
				Port: 2,
				Body: func(ctx *Ctx, trig Trigger) {
					received[ctx.Label()]++
				},
			}},
		}},
		Group: fastGroup,
	}
	watchSpec := ContextType{
		Name: "watch",
		Activation: func(rd sensor.Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Objects: []ObjectSpec{{
			Name: "alerter",
			Methods: []MethodSpec{{
				Name:   "alert",
				Period: 500 * time.Millisecond,
				Body: func(ctx *Ctx, _ Trigger) {
					if sirenLabel != "" {
						ctx.Send(sirenLabel, 2, "intruder")
					}
				},
			}},
		}},
		Group: fastGroup,
	}

	model := func() *sensor.Model {
		m := sensor.NewModel()
		m.SetChannel("magnetic_detect", sensor.DetectionChannel("vehicle"))
		m.SetChannel("fire_detect", sensor.DetectionChannel("fire"))
		return m
	}
	for x := 0; x < 12; x++ {
		st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), model(), StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})
		if _, err := st.AttachContext(sirenSpec); err != nil {
			t.Fatal(err)
		}
		if _, err := st.AttachContext(watchSpec); err != nil {
			t.Fatal(err)
		}
	}
	// A vehicle near one end, a "fire" (siren trigger) near the other.
	w.field.Add(&phenomena.Target{
		Kind: "vehicle", Traj: phenomena.Stationary{At: geom.Pt(1, 0)}, SignatureRadius: 1.4,
	})
	w.field.Add(&phenomena.Target{
		Kind: "fire", Traj: phenomena.Stationary{At: geom.Pt(9, 0)}, SignatureRadius: 1.4,
	})
	w.start()
	w.run(t, 4*time.Second)

	live := w.ledger.LiveLabels("siren")
	if len(live) != 1 {
		t.Fatalf("siren labels = %v", live)
	}
	sirenLabel = group.Label(live[0])
	w.run(t, 12*time.Second)

	if received[sirenLabel] == 0 {
		t.Error("siren never received cross-context alerts")
	}
}

func TestCtxAccessorsAndFreshCount(t *testing.T) {
	w, _ := buildTrackingWorld(t, 6)
	w.field.Add(&phenomena.Target{
		Kind: "vehicle", Traj: phenomena.Stationary{At: geom.Pt(2.5, 0)}, SignatureRadius: 1.6,
	})
	w.start()
	w.run(t, 3*time.Second)

	var ctx *Ctx
	for _, st := range w.stacks {
		if rt, ok := st.Runtime("tracker"); ok && rt.Leading() {
			ctx = rt.Ctx()
		}
	}
	if ctx == nil {
		t.Fatal("no leader")
	}
	if ctx.Now() != w.sched.Now() {
		t.Error("Now mismatch")
	}
	if int(ctx.MoteID()) < 0 {
		t.Error("MoteID invalid")
	}
	if ctx.MotePos().Dist(geom.Pt(2.5, 0)) > 3 {
		t.Errorf("leader position %v far from target", ctx.MotePos())
	}
	if got := ctx.FreshCount("location"); got < 2 {
		t.Errorf("FreshCount = %d, want >= 2", got)
	}
	if got := ctx.FreshCount("missing"); got != 0 {
		t.Errorf("FreshCount(missing) = %d, want 0", got)
	}
	if _, ok := ctx.Read("missing"); ok {
		t.Error("Read of unknown variable succeeded")
	}
	if _, ok := ctx.ReadScalar("location"); ok {
		t.Error("ReadScalar of a position variable succeeded")
	}
}

func TestCtxQueryDirectory(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, -1), Max: geom.Pt(6, 1)}
	w := newWorld(t, 2.5, bounds)
	spec := trackerSpec(100, fastGroup)
	for x := 0; x < 5; x++ {
		st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), sensor.VehicleModel("vehicle"), StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})
		if _, err := st.AttachContext(spec); err != nil {
			t.Fatal(err)
		}
	}
	w.field.Add(&phenomena.Target{
		Kind: "vehicle", Traj: phenomena.Stationary{At: geom.Pt(2, 0)}, SignatureRadius: 1.4,
	})
	w.start()
	w.run(t, 3*time.Second)

	var got []directory.Entry
	for _, st := range w.stacks {
		if rt, ok := st.Runtime("tracker"); ok && rt.Leading() {
			// A tracking object asks "where are all the trackers?" — and
			// finds itself.
			rt.Ctx().QueryDirectory("tracker", func(es []directory.Entry) { got = es })
		}
	}
	w.run(t, 8*time.Second)
	if len(got) != 1 {
		t.Fatalf("directory entries from Ctx query = %d, want 1", len(got))
	}
}

func TestStaticCtxReadsAreInvalid(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 1)}
	w := newWorld(t, 2, bounds)
	st := w.addMote(t, 0, geom.Pt(0, 0), nil, StackConfig{})
	ctx, err := st.AttachStatic("sink/0.1", []ObjectSpec{{
		Name:    "s",
		Methods: []MethodSpec{{Name: "m", Period: time.Second, Body: func(*Ctx, Trigger) {}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Read("anything"); ok {
		t.Error("static object read should be invalid")
	}
	if _, ok := ctx.ReadPosition("anything"); ok {
		t.Error("static ReadPosition should be invalid")
	}
	if ctx.FreshCount("anything") != 0 {
		t.Error("static FreshCount should be 0")
	}
	if ctx.State() != nil {
		t.Error("static State should be nil")
	}
	ctx.SetState([]byte("x")) // no-op, must not panic
	if ctx.Label() != "sink/0.1" {
		t.Errorf("Label = %q", ctx.Label())
	}
}

// TestTrackingDegradesGracefullyUnderLoss sweeps channel loss and checks
// the system never wedges: at modest loss tracking works; at extreme loss
// it degrades without panics or violated invariants (coherence is
// restored by the ledger's own accounting).
func TestTrackingDegradesGracefullyUnderLoss(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): single-leader convergence is off")
	}
	for _, loss := range []float64{0, 0.1, 0.3, 0.5} {
		loss := loss
		w := newWorldWithLoss(t, 2.5, geom.Rect{Min: geom.Pt(0, -1), Max: geom.Pt(8, 1)}, loss)
		spec := trackerSpec(100, fastGroup)
		for x := 0; x < 8; x++ {
			st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), sensor.VehicleModel("vehicle"), StackConfig{})
			if _, err := st.AttachContext(spec); err != nil {
				t.Fatal(err)
			}
		}
		w.field.Add(&phenomena.Target{
			Kind: "vehicle", Traj: phenomena.Stationary{At: geom.Pt(3.5, 0)}, SignatureRadius: 1.6,
		})
		w.start()
		w.run(t, 20*time.Second)

		leaders := 0
		for _, st := range w.stacks {
			if rt, ok := st.Runtime("tracker"); ok && rt.Leading() {
				leaders++
			}
		}
		if loss <= 0.1 && leaders != 1 {
			t.Errorf("loss=%.1f: leaders = %d, want 1", loss, leaders)
		}
		if leaders == 0 && loss < 0.5 {
			t.Errorf("loss=%.1f: tracking died entirely", loss)
		}
	}
}

// newWorldWithLoss is newWorld with a channel loss probability.
func newWorldWithLoss(t *testing.T, commRadius float64, bounds geom.Rect, loss float64) *world {
	t.Helper()
	return newWorldP(t, radio.Params{CommRadius: commRadius, LossProb: loss}, bounds)
}

// Compile-time checks that the public surface of core stays intact.
var (
	_ = aggregate.Avg
	_ transport.PortID
)
