package core

import (
	"fmt"
	"time"

	"envirotrack/internal/aggregate"
	"envirotrack/internal/directory"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/radio"
	"envirotrack/internal/routing"
	"envirotrack/internal/sensor"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
	"envirotrack/internal/track"
	_ "envirotrack/internal/track/passive" // register the passive-traces backend
	"envirotrack/internal/transport"
)

// StackConfig parameterizes the per-mote middleware stack.
type StackConfig struct {
	// Bounds is the sensor field extent (for directory hashing).
	Bounds geom.Rect
	// UseDirectory enables directory registration of led labels; the
	// stress experiments disable it to match the paper's traffic mix.
	UseDirectory bool
	// DirectoryRefresh is the registration refresh period (default 5s).
	DirectoryRefresh time.Duration
	// DelayEstimate is d in Pe = Le - d, the estimated in-group message
	// delay; when zero a conservative default derived from the medium's
	// airtime is used by the network assembly layer.
	DelayEstimate time.Duration
}

func (c StackConfig) withDefaults() StackConfig {
	if c.DirectoryRefresh <= 0 {
		c.DirectoryRefresh = 5 * time.Second
	}
	if c.DelayEstimate <= 0 {
		c.DelayEstimate = 100 * time.Millisecond
	}
	return c
}

// Stack is the EnviroTrack middleware instance on one mote. It wires the
// transport endpoint (which must snoop frames before the group managers),
// the directory service, and one context runtime per declared type.
type Stack struct {
	m      *mote.Mote
	medium *radio.Medium
	cfg    StackConfig
	router *routing.Router
	dir    *directory.Service
	ep     *transport.Endpoint
	ledger *trace.Ledger

	runtimes []*ctxRuntime

	nodeMsgHandlers []func(NodeMessage)
}

// NewStack builds the middleware on a mote. Context types are attached
// afterwards with AttachContext; the mote's sensing scan drives everything.
func NewStack(m *mote.Mote, medium *radio.Medium, cfg StackConfig, ledger *trace.Ledger) *Stack {
	cfg = cfg.withDefaults()
	router := routing.NewRouter(m, medium)
	dir := directory.NewService(m, router, directory.Config{Bounds: cfg.Bounds})
	ep := transport.NewEndpoint(m, router, dir, transport.Config{})
	s := &Stack{
		m:      m,
		medium: medium,
		cfg:    cfg,
		router: router,
		dir:    dir,
		ep:     ep,
		ledger: ledger,
	}
	router.AddHandler(s.handleNodeMessage)
	m.AddSenseListener(s.onScan)
	return s
}

// Mote returns the underlying mote.
func (s *Stack) Mote() *mote.Mote { return s.m }

// Endpoint returns the transport endpoint (for tests and advanced use).
func (s *Stack) Endpoint() *transport.Endpoint { return s.ep }

// Directory returns the directory service.
func (s *Stack) Directory() *directory.Service { return s.dir }

// Router returns the routing layer.
func (s *Stack) Router() *routing.Router { return s.router }

// OnNodeMessage registers a handler for messages sent directly to this
// mote by object code (Ctx.SendNode) — the pursuer/base-station pattern.
func (s *Stack) OnNodeMessage(fn func(NodeMessage)) {
	s.nodeMsgHandlers = append(s.nodeMsgHandlers, fn)
}

func (s *Stack) handleNodeMessage(msg routing.Message) bool {
	nm, ok := msg.Payload.(NodeMessage)
	if !ok {
		return false
	}
	for _, fn := range s.nodeMsgHandlers {
		fn(nm)
	}
	return true
}

// AttachContext installs a context type on this mote. The group
// data-collection period is derived as Pe = min(Le) - d unless the spec
// overrides it.
func (s *Stack) AttachContext(spec ContextType) (*ctxRuntime, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for _, rt := range s.runtimes {
		if rt.spec.Name == spec.Name {
			return nil, fmt.Errorf("core: context type %q already attached", spec.Name)
		}
	}

	gcfg := spec.Group
	if gcfg.ReportPeriod <= 0 {
		if le := spec.minFreshness(); le > 0 {
			pe := le - s.cfg.DelayEstimate
			if pe <= 0 {
				pe = le / 2
			}
			gcfg.ReportPeriod = pe
		}
	}

	rt := &ctxRuntime{stack: s, spec: spec}
	be, err := track.New(spec.Backend, track.Deps{
		Mote:    s.m,
		CtxType: spec.Name,
		Group:   gcfg,
		Callbacks: track.Callbacks{
			ReportPayload:  rt.reportPayload,
			OnReport:       rt.onMemberReport,
			OnActivate:     rt.onActivate,
			OnDeactivate:   rt.onDeactivate,
			OnLabelDeleted: rt.onLabelDeleted,
		},
		Ledger: s.ledger,
	})
	if err != nil {
		return nil, err
	}
	rt.be = be
	s.runtimes = append(s.runtimes, rt)
	return rt, nil
}

// Runtime returns the runtime of an attached context type.
func (s *Stack) Runtime(name string) (*ctxRuntime, bool) {
	for _, rt := range s.runtimes {
		if rt.spec.Name == name {
			return rt, true
		}
	}
	return nil, false
}

// onScan drives every context runtime from the mote's periodic sensing.
func (s *Stack) onScan(rd sensor.Reading) {
	for _, rt := range s.runtimes {
		rt.onScan(rd)
	}
}

// AttachStatic installs a static object (Section 3.2: "EnviroTrack also
// supports conventional static objects that are not attached to context
// labels"). The object lives permanently on this mote under the given
// label, serves its message ports, runs its timer methods, and is
// registered in the directory under its type so tracking objects can
// address it.
func (s *Stack) AttachStatic(label group.Label, objects []ObjectSpec) (*Ctx, error) {
	for _, o := range objects {
		if err := o.Validate(); err != nil {
			return nil, err
		}
	}
	ctx := &Ctx{stack: s, label: label, static: true}
	s.ep.SetLeading(label, true)
	for _, obj := range objects {
		for _, m := range obj.Methods {
			method := m
			if method.Port != 0 {
				s.ep.Handle(label, method.Port, func(d transport.Datagram) {
					method.Body(ctx, Trigger{Kind: TriggerMessage, Msg: &d})
				})
			}
			if method.Period > 0 {
				simtime.NewTickerOwned(s.m.Scheduler(), method.Period, simtime.OwnerApp, func() {
					if s.m.Failed() {
						return
					}
					if method.Condition != nil && !method.Condition(ctx) {
						return
					}
					method.Body(ctx, Trigger{Kind: TriggerTimer})
				})
			}
		}
	}
	if s.cfg.UseDirectory {
		register := func() {
			s.dir.Register(transportLabelType(label), label, s.m.Pos(), s.m.ID())
		}
		register()
		simtime.NewTickerOwned(s.m.Scheduler(), s.cfg.DirectoryRefresh, simtime.OwnerDirectory, func() {
			if !s.m.Failed() {
				register()
			}
		})
	}
	return ctx, nil
}

// transportLabelType mirrors transport's label-type derivation for static
// labels of the canonical "type/..." form.
func transportLabelType(l group.Label) string {
	s := string(l)
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i]
		}
	}
	return s
}

// ctxRuntime is the per-mote runtime state of one context type. It talks
// to the tracking protocol only through the track.Backend interface; the
// middleware concerns here (aggregate windows, object methods, directory
// registration) are backend-agnostic.
type ctxRuntime struct {
	stack *Stack
	spec  ContextType
	be    track.Backend

	// Latest local samples per variable, refreshed on every scan while
	// sensing (sent to the leader in reports / used directly when leading).
	samples map[string]aggregate.Sample

	// Leader-only state.
	ctx       *Ctx
	windows   map[string]*aggregate.Window
	tickers   []*simtime.Ticker
	dirTicker *simtime.Ticker
	ports     []transport.PortID
}

// Backend exposes the tracking backend driving this runtime.
func (rt *ctxRuntime) Backend() track.Backend { return rt.be }

// Manager exposes the group manager when the leader backend is in use
// (for tests and experiments); nil for other backends.
func (rt *ctxRuntime) Manager() *group.Manager {
	if lb, ok := rt.be.(interface{ Manager() *group.Manager }); ok {
		return lb.Manager()
	}
	return nil
}

// Label returns the context label this mote currently participates in.
func (rt *ctxRuntime) Label() group.Label { return rt.be.Label() }

// Participating reports whether this mote takes part in the tracking
// protocol for some label of the type.
func (rt *ctxRuntime) Participating() bool { return rt.be.Participating() }

// Leading reports whether this mote currently leads a label of the type.
func (rt *ctxRuntime) Leading() bool { return rt.ctx != nil }

// Ctx returns the object context while leading (nil otherwise).
func (rt *ctxRuntime) Ctx() *Ctx { return rt.ctx }

func (rt *ctxRuntime) onScan(rd sensor.Reading) {
	sensing := rt.spec.Activation(rd)
	if rt.be.Sensing() && rt.spec.Deactivation != nil {
		sensing = !rt.spec.Deactivation(rd)
	}
	rt.be.SetSensing(sensing)

	if sensing {
		rt.refreshSamples(rd)
	}

	if rt.ctx == nil {
		return
	}
	// Leader: contribute its own readings to the aggregate state and
	// check condition-driven methods (the outer timer loop of Section 5.1).
	if sensing {
		for name, smp := range rt.samples {
			if w, ok := rt.windows[name]; ok {
				w.Add(smp)
			}
		}
	}
	for _, obj := range rt.spec.Objects {
		for _, m := range obj.Methods {
			if m.Period == 0 && m.Port == 0 && m.Condition != nil && m.Condition(rt.ctx) {
				m.Body(rt.ctx, Trigger{Kind: TriggerCondition})
			}
		}
	}
}

func (rt *ctxRuntime) refreshSamples(rd sensor.Reading) {
	if rt.samples == nil {
		rt.samples = make(map[string]aggregate.Sample, len(rt.spec.Vars))
	}
	for _, v := range rt.spec.Vars {
		smp := aggregate.Sample{
			MoteID: rd.MoteID,
			At:     rd.At,
			Pos:    rd.Position,
		}
		if v.Input != PositionInput {
			val, ok := rd.Value(v.Input)
			if !ok {
				continue
			}
			smp.Scalar = val
		}
		rt.samples[v.Name] = smp
	}
}

// reportPayload is the member's periodic report content.
func (rt *ctxRuntime) reportPayload() any {
	if len(rt.samples) == 0 {
		return readingsPayload{}
	}
	out := make(map[string]aggregate.Sample, len(rt.samples))
	for k, v := range rt.samples {
		out[k] = v
	}
	return readingsPayload{Samples: out}
}

// onMemberReport folds a remote mote's samples into the active mote's
// windows. Full readings reports (the leader backend's member reports)
// carry one sample per variable; trace samples (the passive backend's
// gossiped observations) carry a position only and feed the
// position-input variables.
func (rt *ctxRuntime) onMemberReport(_ radio.NodeID, payload any) {
	if rt.windows == nil {
		return
	}
	switch rp := payload.(type) {
	case readingsPayload:
		for name, smp := range rp.Samples {
			if w, ok := rt.windows[name]; ok {
				w.Add(smp)
			}
		}
	case track.TraceSample:
		smp := aggregate.Sample{MoteID: int(rp.MoteID), At: rp.At, Pos: rp.Pos}
		for _, v := range rt.spec.Vars {
			if v.Input != PositionInput {
				continue
			}
			if w, ok := rt.windows[v.Name]; ok {
				w.Add(smp)
			}
		}
	}
}

func (rt *ctxRuntime) onActivate(label group.Label, state []byte) {
	rt.windows = make(map[string]*aggregate.Window, len(rt.spec.Vars))
	for _, v := range rt.spec.Vars {
		w, err := aggregate.NewWindow(v.Func, v.Freshness, v.CriticalMass)
		if err != nil {
			continue // validated at attach; defensive
		}
		rt.windows[v.Name] = w
	}
	rt.ctx = &Ctx{stack: rt.stack, rt: rt, label: label}
	rt.stack.ep.SetLeading(label, true)
	if state != nil {
		rt.be.SetState(state)
	}

	// Install message-triggered methods and timer methods.
	for _, obj := range rt.spec.Objects {
		for _, m := range obj.Methods {
			method := m
			if method.Port != 0 {
				rt.ports = append(rt.ports, method.Port)
				rt.stack.ep.Handle(label, method.Port, func(d transport.Datagram) {
					if rt.ctx == nil {
						return
					}
					method.Body(rt.ctx, Trigger{Kind: TriggerMessage, Msg: &d})
				})
			}
			if method.Period > 0 {
				tk := simtime.NewTickerOwned(rt.stack.m.Scheduler(), method.Period, simtime.OwnerApp, func() {
					if rt.ctx == nil || rt.stack.m.Failed() {
						return
					}
					if method.Condition != nil && !method.Condition(rt.ctx) {
						return
					}
					method.Body(rt.ctx, Trigger{Kind: TriggerTimer})
				})
				rt.tickers = append(rt.tickers, tk)
			}
		}
	}

	// Register the label with the directory and refresh periodically.
	if rt.stack.cfg.UseDirectory {
		register := func() {
			rt.stack.dir.Register(rt.spec.Name, label, rt.stack.m.Pos(), rt.stack.m.ID())
		}
		register()
		rt.dirTicker = simtime.NewTickerOwned(rt.stack.m.Scheduler(), rt.stack.cfg.DirectoryRefresh, simtime.OwnerDirectory, func() {
			if !rt.stack.m.Failed() && rt.ctx != nil {
				register()
			}
		})
	}
}

func (rt *ctxRuntime) onDeactivate(label group.Label) {
	for _, tk := range rt.tickers {
		tk.Stop()
	}
	rt.tickers = nil
	if rt.dirTicker != nil {
		rt.dirTicker.Stop()
		rt.dirTicker = nil
	}
	for _, p := range rt.ports {
		rt.stack.ep.Unhandle(label, p)
	}
	rt.ports = nil
	rt.stack.ep.SetLeading(label, false)
	rt.ctx = nil
	rt.windows = nil
}

// onLabelDeleted withdraws the directory registration of a label this
// mote deleted as spurious.
func (rt *ctxRuntime) onLabelDeleted(label group.Label) {
	if rt.stack.cfg.UseDirectory {
		rt.stack.dir.Unregister(rt.spec.Name, label)
	}
}
