package core

import (
	"time"

	"envirotrack/internal/aggregate"
	"envirotrack/internal/directory"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/radio"
	"envirotrack/internal/routing"
	"envirotrack/internal/trace"
	"envirotrack/internal/transport"
)

// Ctx is the enclosing-context API visible to object method bodies: reads
// of aggregate state variables (with the Section 3.2.3 validity
// semantics), the context's own label (`self:label`), message sending, and
// persistent state. Method bodies receive it as their first argument, the
// analogue of the implicit context access the preprocessor generates.
type Ctx struct {
	stack  *Stack
	rt     *ctxRuntime // nil for static objects
	label  group.Label
	static bool
}

// Label returns the enclosing context label (self:label).
func (c *Ctx) Label() group.Label { return c.label }

// Now returns the current virtual time.
func (c *Ctx) Now() time.Duration { return c.stack.m.Scheduler().Now() }

// MoteID returns the mote currently executing the object (the leader).
func (c *Ctx) MoteID() radio.NodeID { return c.stack.m.ID() }

// MotePos returns the executing mote's position.
func (c *Ctx) MotePos() geom.Point { return c.stack.m.Pos() }

// Read evaluates an aggregate state variable. The boolean is the valid
// flag: false when the critical mass of fresh readings is not met (the
// "null flag" of Section 3.2.3) or when the variable does not exist.
func (c *Ctx) Read(varName string) (aggregate.Value, bool) {
	if c.rt == nil || c.rt.windows == nil {
		return aggregate.Value{}, false
	}
	w, ok := c.rt.windows[varName]
	if !ok {
		return aggregate.Value{}, false
	}
	return w.Read(c.Now())
}

// ReadPosition reads a position-valued aggregate variable.
func (c *Ctx) ReadPosition(varName string) (geom.Point, bool) {
	v, ok := c.Read(varName)
	if !ok || !v.IsPos {
		return geom.Point{}, false
	}
	return v.Pos, true
}

// ReadScalar reads a scalar-valued aggregate variable.
func (c *Ctx) ReadScalar(varName string) (float64, bool) {
	v, ok := c.Read(varName)
	if !ok || v.IsPos {
		return 0, false
	}
	return v.Scalar, true
}

// FreshCount returns how many distinct sensors currently contribute fresh
// readings to a variable (0 for unknown variables).
func (c *Ctx) FreshCount(varName string) int {
	if c.rt == nil || c.rt.windows == nil {
		return 0
	}
	w, ok := c.rt.windows[varName]
	if !ok {
		return 0
	}
	return w.FreshCount(c.Now())
}

// Send delivers a payload to a (label, port) endpoint over the MTP
// transport — remote method invocation on another context's objects.
func (c *Ctx) Send(dst group.Label, port transport.PortID, payload any) {
	c.stack.ep.Send(transport.Datagram{
		SrcLabel: c.label,
		DstLabel: dst,
		DstPort:  port,
		Payload:  payload,
	})
}

// SendNode delivers a payload directly to a mote known at compile time —
// the `MySend(pursuer, self:label, location)` pattern of Figure 2. The
// message is geographically routed; the receiving mote's Stack delivers it
// to OnNodeMessage handlers.
func (c *Ctx) SendNode(dst radio.NodeID, payload any) {
	pos, ok := c.stack.medium.Position(dst)
	if !ok {
		return
	}
	c.stack.router.Send(routing.Message{
		Kind:     trace.KindReport,
		Dest:     pos,
		DestNode: dst,
		Payload: NodeMessage{
			From:      int(c.stack.m.ID()),
			FromLabel: c.label,
			Payload:   payload,
		},
		Corr:      radio.Corr{Origin: int32(c.stack.m.ID()), Seq: c.stack.m.NextCorrSeq()},
		CorrLabel: string(c.label),
	})
}

// SetState commits persistent state for the enclosing label; it survives
// leadership changes by piggybacking on heartbeats (the EnviroTrack
// setState() command of Section 5.2).
func (c *Ctx) SetState(state []byte) {
	if c.rt != nil {
		c.rt.be.SetState(state)
	}
}

// State returns the label's persistent state.
func (c *Ctx) State() []byte {
	if c.rt == nil {
		return nil
	}
	return c.rt.be.State()
}

// QueryDirectory asks "where are all the <ctxType>s?" (Section 5.3); the
// callback runs asynchronously with the directory entries.
func (c *Ctx) QueryDirectory(ctxType string, cb func([]directory.Entry)) {
	c.stack.dir.Query(ctxType, cb)
}
