package core

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/aggregate"
	"envirotrack/internal/directory"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
	"envirotrack/internal/transport"
)

// world is a full-middleware test network.
type world struct {
	sched  *simtime.Scheduler
	medium *radio.Medium
	field  *phenomena.Field
	stats  *trace.Stats
	ledger *trace.Ledger
	rng    *rand.Rand
	bounds geom.Rect
	stacks map[radio.NodeID]*Stack
	motes  map[radio.NodeID]*mote.Mote
}

func newWorld(t *testing.T, commRadius float64, bounds geom.Rect) *world {
	t.Helper()
	return newWorldP(t, radio.Params{CommRadius: commRadius}, bounds)
}

func newWorldP(t *testing.T, params radio.Params, bounds geom.Rect) *world {
	t.Helper()
	sched := simtime.NewScheduler()
	var stats trace.Stats
	rng := rand.New(rand.NewSource(21))
	return &world{
		sched:  sched,
		medium: radio.New(sched, params, rng, &stats),
		field:  phenomena.NewField(),
		stats:  &stats,
		ledger: &trace.Ledger{},
		rng:    rng,
		bounds: bounds,
		stacks: make(map[radio.NodeID]*Stack),
		motes:  make(map[radio.NodeID]*mote.Mote),
	}
}

func (w *world) addMote(t *testing.T, id radio.NodeID, pos geom.Point, model *sensor.Model, scfg StackConfig) *Stack {
	t.Helper()
	m, err := mote.New(id, pos, w.sched, w.medium, w.field, model, mote.Config{}, w.rng, w.stats)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Bounds = w.bounds
	st := NewStack(m, w.medium, scfg, w.ledger)
	w.stacks[id] = st
	w.motes[id] = m
	return st
}

func (w *world) start() {
	// Deterministic start order (map iteration order would leak into the
	// scheduler's same-instant FIFO ordering).
	for _, id := range w.medium.NodeIDs() {
		w.motes[id].Start()
	}
}

func (w *world) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := w.sched.RunUntil(until); err != nil {
		t.Fatal(err)
	}
}

// trackerSpec is the Figure 2 context: avg(position) with Ne=2, Le=1s, and
// a periodic reporter that sends (label, location) to the pursuer node.
func trackerSpec(pursuer radio.NodeID, gcfg group.Config) ContextType {
	reg := sensor.NewRegistry()
	magnetic, _ := reg.Lookup("magnetic_sensor_reading")
	return ContextType{
		Name:       "tracker",
		Activation: magnetic,
		Vars: []AggVarSpec{{
			Name:         "location",
			Func:         aggregate.Centroid,
			Input:        PositionInput,
			Freshness:    time.Second,
			CriticalMass: 2,
		}},
		Objects: []ObjectSpec{{
			Name: "reporter",
			Methods: []MethodSpec{{
				Name:   "report_function",
				Period: time.Second,
				Body: func(ctx *Ctx, _ Trigger) {
					if loc, ok := ctx.ReadPosition("location"); ok {
						ctx.SendNode(pursuer, trackReport{Label: ctx.Label(), Loc: loc})
					}
				},
			}},
		}},
		Group: gcfg,
	}
}

type trackReport struct {
	Label group.Label
	Loc   geom.Point
}

var fastGroup = group.Config{
	HeartbeatPeriod: 200 * time.Millisecond,
	CreationBackoff: 20 * time.Millisecond,
	HopsPast:        1,
}

// buildTrackingWorld creates a cols x 1 line of sensing motes plus a
// pursuer node (id 100) at the end of the line.
func buildTrackingWorld(t *testing.T, cols int) (*world, *[]trackReport) {
	t.Helper()
	bounds := geom.Rect{Min: geom.Pt(0, -1), Max: geom.Pt(float64(cols), 1)}
	w := newWorld(t, 2.5, bounds)
	spec := trackerSpec(100, fastGroup)
	for x := 0; x < cols; x++ {
		st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), sensor.VehicleModel("vehicle"), StackConfig{})
		if _, err := st.AttachContext(spec); err != nil {
			t.Fatal(err)
		}
	}
	base := w.addMote(t, 100, geom.Pt(float64(cols-1), 1), nil, StackConfig{})
	reports := &[]trackReport{}
	base.OnNodeMessage(func(nm NodeMessage) {
		if tr, ok := nm.Payload.(trackReport); ok {
			*reports = append(*reports, tr)
		}
	})
	return w, reports
}

func TestStationaryTargetTrackedAndReported(t *testing.T) {
	w, reports := buildTrackingWorld(t, 6)
	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj:            phenomena.Stationary{At: geom.Pt(2.5, 0)},
		SignatureRadius: 1.6,
	})
	w.start()
	w.run(t, 10*time.Second)

	if len(*reports) == 0 {
		t.Fatal("pursuer received no reports")
	}
	for _, r := range *reports {
		if r.Loc.Dist(geom.Pt(2.5, 0)) > 1.0 {
			t.Errorf("reported location %v too far from target (2.5, 0)", r.Loc)
		}
	}
	// All reports carry the same context label.
	label := (*reports)[0].Label
	for _, r := range *reports {
		if r.Label != label {
			t.Errorf("label changed mid-run: %q vs %q", label, r.Label)
		}
	}
}

func TestCriticalMassSuppressesInvalidReads(t *testing.T) {
	// Only one mote can sense the target (Ne=2): reads must stay invalid
	// and the reporter must stay silent.
	w, reports := buildTrackingWorld(t, 6)
	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj:            phenomena.Stationary{At: geom.Pt(0, 0)},
		SignatureRadius: 0.5, // covers only mote 0
	})
	w.start()
	w.run(t, 8*time.Second)

	if len(*reports) != 0 {
		t.Errorf("reports sent despite critical mass unmet: %v", *reports)
	}
	// A label still exists (activation fired), it just cannot read state.
	if w.ledger.DistinctLabels("tracker") != 1 {
		t.Errorf("labels = %d, want 1", w.ledger.DistinctLabels("tracker"))
	}
}

func TestMovingTargetKeepsLabelAndTracks(t *testing.T) {
	w, reports := buildTrackingWorld(t, 12)
	traj, err := phenomena.NewWaypoints([]geom.Point{geom.Pt(0.5, 0), geom.Pt(10.5, 0)}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj:            traj,
		SignatureRadius: 1.6,
	})
	w.start()
	w.run(t, 20*time.Second)

	if len(*reports) < 5 {
		t.Fatalf("too few reports: %d", len(*reports))
	}
	// Context-label coherence: all reports from one label.
	labels := make(map[group.Label]bool)
	for _, r := range *reports {
		labels[r.Label] = true
	}
	if len(labels) != 1 {
		t.Errorf("reports from %d labels, want 1 (coherence)", len(labels))
	}
	// Tracking error bounded by the sensing geometry.
	for _, r := range *reports {
		if r.Loc.Y < -1 || r.Loc.Y > 1 {
			t.Errorf("reported y = %v, want within the corridor", r.Loc.Y)
		}
	}
	// Handovers occurred (the target crossed many sensor neighborhoods).
	sum := w.ledger.Summarize("tracker")
	if sum.Successful == 0 {
		t.Error("no successful handovers recorded for a moving target")
	}
}

func TestTwoTargetsTwoLabels(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(20, 1)}
	w := newWorld(t, 2.0, bounds)
	spec := trackerSpec(100, fastGroup)
	for x := 0; x < 20; x++ {
		st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), sensor.VehicleModel("vehicle"), StackConfig{})
		if _, err := st.AttachContext(spec); err != nil {
			t.Fatal(err)
		}
	}
	w.addMote(t, 100, geom.Pt(19, 1), nil, StackConfig{})
	// Two tanks far apart: physically separated groups must get distinct
	// labels.
	w.field.Add(&phenomena.Target{
		Name: "t1", Kind: "vehicle",
		Traj: phenomena.Stationary{At: geom.Pt(2, 0)}, SignatureRadius: 1.5,
	})
	w.field.Add(&phenomena.Target{
		Name: "t2", Kind: "vehicle",
		Traj: phenomena.Stationary{At: geom.Pt(16, 0)}, SignatureRadius: 1.5,
	})
	w.start()
	w.run(t, 5*time.Second)

	live := w.ledger.LiveLabels("tracker")
	if len(live) != 2 {
		t.Errorf("live labels = %v, want 2 distinct labels", live)
	}
	leaders := 0
	for _, st := range w.stacks {
		if rt, ok := st.Runtime("tracker"); ok && rt.Leading() {
			leaders++
		}
	}
	if leaders != 2 {
		t.Errorf("leaders = %d, want 2", leaders)
	}
}

func TestMessageTriggeredMethod(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(6, 1)}
	w := newWorld(t, 2.5, bounds)
	var invoked []any
	spec := ContextType{
		Name:       "tracker",
		Activation: func(rd sensor.Reading) bool { v, _ := rd.Value("magnetic_detect"); return v > 0.5 },
		Objects: []ObjectSpec{{
			Name: "listener",
			Methods: []MethodSpec{{
				Name: "on_ping",
				Port: 7,
				Body: func(ctx *Ctx, trig Trigger) {
					if trig.Kind != TriggerMessage || trig.Msg == nil {
						t.Errorf("trigger = %+v, want message", trig)
						return
					}
					invoked = append(invoked, trig.Msg.Payload)
				},
			}},
		}},
		Group: fastGroup,
	}
	for x := 0; x < 4; x++ {
		st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), sensor.VehicleModel("vehicle"), StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})
		if _, err := st.AttachContext(spec); err != nil {
			t.Fatal(err)
		}
	}
	base := w.addMote(t, 100, geom.Pt(5, 0), nil, StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})

	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj: phenomena.Stationary{At: geom.Pt(1, 0)}, SignatureRadius: 1.4,
	})
	w.start()
	w.run(t, 3*time.Second)

	// Find the live label and invoke its port-7 method from the base via
	// MTP (first contact resolves through the directory).
	live := w.ledger.LiveLabels("tracker")
	if len(live) != 1 {
		t.Fatalf("live labels = %v, want 1", live)
	}
	label := group.Label(live[0])
	base.Endpoint().Send(transport.Datagram{
		SrcLabel: "base/100.1",
		DstLabel: label,
		DstPort:  7,
		Payload:  "ping",
	})
	w.run(t, 6*time.Second)

	if len(invoked) != 1 || invoked[0] != "ping" {
		t.Fatalf("invoked = %v, want [ping]", invoked)
	}
}

func TestConditionTriggeredMethod(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(6, 1)}
	w := newWorld(t, 2.5, bounds)
	fires := 0
	spec := ContextType{
		Name:       "tracker",
		Activation: func(rd sensor.Reading) bool { v, _ := rd.Value("magnetic_detect"); return v > 0.5 },
		Vars: []AggVarSpec{{
			Name: "strength", Func: aggregate.Max, Input: "magnetic",
			Freshness: time.Second, CriticalMass: 1,
		}},
		Objects: []ObjectSpec{{
			Name: "alarm",
			Methods: []MethodSpec{{
				Name: "on_strong_signal",
				Condition: func(ctx *Ctx) bool {
					v, ok := ctx.ReadScalar("strength")
					return ok && v > 0.5
				},
				Body: func(*Ctx, Trigger) { fires++ },
			}},
		}},
		Group: fastGroup,
	}
	for x := 0; x < 3; x++ {
		st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), sensor.VehicleModel("vehicle"), StackConfig{})
		if _, err := st.AttachContext(spec); err != nil {
			t.Fatal(err)
		}
	}
	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj: phenomena.Stationary{At: geom.Pt(1, 0)}, SignatureRadius: 1.2, Amplitude: 10,
	})
	w.start()
	w.run(t, 3*time.Second)

	if fires == 0 {
		t.Error("condition-triggered method never fired")
	}
}

func TestStaticObjectTimerAndPort(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(4, 1)}
	w := newWorld(t, 2.5, bounds)
	st0 := w.addMote(t, 0, geom.Pt(0, 0), nil, StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})
	st1 := w.addMote(t, 1, geom.Pt(1, 0), nil, StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})

	ticks := 0
	var pings []any
	_, err := st0.AttachStatic("sink/0.1", []ObjectSpec{{
		Name: "sink",
		Methods: []MethodSpec{
			{Name: "tick", Period: time.Second, Body: func(*Ctx, Trigger) { ticks++ }},
			{Name: "recv", Port: 3, Body: func(_ *Ctx, trig Trigger) { pings = append(pings, trig.Msg.Payload) }},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	w.start()
	w.run(t, 3500*time.Millisecond)
	if ticks != 3 {
		t.Errorf("static timer ticks = %d, want 3", ticks)
	}

	// Another node reaches the static object through the directory.
	st1.Endpoint().Send(transport.Datagram{DstLabel: "sink/0.1", DstPort: 3, Payload: "hello"})
	w.run(t, 6*time.Second)
	if len(pings) != 1 || pings[0] != "hello" {
		t.Errorf("pings = %v, want [hello]", pings)
	}
}

func TestDirectoryRegistrationOfTrackedLabel(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(6, 1)}
	w := newWorld(t, 2.5, bounds)
	spec := trackerSpec(100, fastGroup)
	for x := 0; x < 5; x++ {
		st := w.addMote(t, radio.NodeID(x), geom.Pt(float64(x), 0), sensor.VehicleModel("vehicle"), StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})
		if _, err := st.AttachContext(spec); err != nil {
			t.Fatal(err)
		}
	}
	base := w.addMote(t, 100, geom.Pt(5, 0), nil, StackConfig{UseDirectory: true, DirectoryRefresh: time.Second})
	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj: phenomena.Stationary{At: geom.Pt(2, 0)}, SignatureRadius: 1.4,
	})
	w.start()
	w.run(t, 3*time.Second)

	var got []directory.Entry
	base.Directory().Query("tracker", func(es []directory.Entry) { got = es })
	w.run(t, 5*time.Second)

	if len(got) != 1 {
		t.Fatalf("directory entries = %d, want 1", len(got))
	}
	live := w.ledger.LiveLabels("tracker")
	if len(live) != 1 || string(got[0].Label) != live[0] {
		t.Errorf("directory label %q, live labels %v", got[0].Label, live)
	}
	if got[0].Location.Dist(geom.Pt(2, 0)) > 2 {
		t.Errorf("directory location %v too far from target", got[0].Location)
	}
}

func TestAttachContextValidation(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 1)}
	w := newWorld(t, 2, bounds)
	st := w.addMote(t, 0, geom.Pt(0, 0), nil, StackConfig{})
	if _, err := st.AttachContext(ContextType{}); err == nil {
		t.Error("expected validation error for empty spec")
	}
	spec := ContextType{
		Name:       "x",
		Activation: func(sensor.Reading) bool { return false },
	}
	if _, err := st.AttachContext(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AttachContext(spec); err == nil {
		t.Error("expected error on duplicate context type")
	}
	if _, ok := st.Runtime("x"); !ok {
		t.Error("Runtime lookup failed")
	}
	if _, ok := st.Runtime("nope"); ok {
		t.Error("Runtime lookup of unknown type succeeded")
	}
}

func TestSpecValidation(t *testing.T) {
	act := func(sensor.Reading) bool { return true }
	body := func(*Ctx, Trigger) {}
	tests := []struct {
		name    string
		spec    ContextType
		wantErr bool
	}{
		{
			name:    "empty name",
			spec:    ContextType{Activation: act},
			wantErr: true,
		},
		{
			name:    "no activation",
			spec:    ContextType{Name: "x"},
			wantErr: true,
		},
		{
			name: "duplicate variable",
			spec: ContextType{Name: "x", Activation: act, Vars: []AggVarSpec{
				{Name: "v", Func: aggregate.Avg, Input: "a", Freshness: time.Second},
				{Name: "v", Func: aggregate.Avg, Input: "b", Freshness: time.Second},
			}},
			wantErr: true,
		},
		{
			name: "zero freshness",
			spec: ContextType{Name: "x", Activation: act, Vars: []AggVarSpec{
				{Name: "v", Func: aggregate.Avg, Input: "a"},
			}},
			wantErr: true,
		},
		{
			name: "method without invocation",
			spec: ContextType{Name: "x", Activation: act, Objects: []ObjectSpec{
				{Name: "o", Methods: []MethodSpec{{Name: "m", Body: body}}},
			}},
			wantErr: true,
		},
		{
			name: "object without methods",
			spec: ContextType{Name: "x", Activation: act, Objects: []ObjectSpec{
				{Name: "o"},
			}},
			wantErr: true,
		},
		{
			name: "valid full spec",
			spec: ContextType{Name: "x", Activation: act,
				Vars: []AggVarSpec{{Name: "v", Func: aggregate.Avg, Input: "a", Freshness: time.Second}},
				Objects: []ObjectSpec{{Name: "o", Methods: []MethodSpec{
					{Name: "m", Period: time.Second, Body: body},
				}}},
			},
			wantErr: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTriggerKindString(t *testing.T) {
	tests := []struct {
		k    TriggerKind
		want string
	}{
		{TriggerTimer, "timer"},
		{TriggerCondition, "condition"},
		{TriggerMessage, "message"},
		{TriggerKind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestPersistentStateThroughCtx(t *testing.T) {
	w, _ := buildTrackingWorld(t, 6)
	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj: phenomena.Stationary{At: geom.Pt(2.5, 0)}, SignatureRadius: 1.6,
	})
	w.start()
	w.run(t, 2*time.Second)

	// Find the leader and commit state through its Ctx.
	var leaderID radio.NodeID = -1
	for id, st := range w.stacks {
		if rt, ok := st.Runtime("tracker"); ok && rt.Leading() {
			leaderID = id
			rt.Ctx().SetState([]byte("count=5"))
		}
	}
	if leaderID < 0 {
		t.Fatal("no leader found")
	}
	w.run(t, 3*time.Second)

	// Kill the leader; the successor must inherit the state.
	w.motes[leaderID].Fail()
	w.run(t, 6*time.Second)
	for id, st := range w.stacks {
		if id == leaderID {
			continue
		}
		if rt, ok := st.Runtime("tracker"); ok && rt.Leading() {
			if got := string(rt.Ctx().State()); got != "count=5" {
				t.Errorf("successor state = %q, want count=5", got)
			}
			return
		}
	}
	t.Fatal("no successor leader emerged")
}

func TestVarLookup(t *testing.T) {
	spec := ContextType{
		Name:       "x",
		Activation: func(sensor.Reading) bool { return true },
		Vars: []AggVarSpec{{
			Name: "v", Func: aggregate.Avg, Input: "a", Freshness: time.Second,
		}},
	}
	if v, ok := spec.Var("v"); !ok || v.Input != "a" {
		t.Errorf("Var(v) = %+v, %v", v, ok)
	}
	if _, ok := spec.Var("w"); ok {
		t.Error("Var(w) should not exist")
	}
}

func TestDeactivationOverride(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(4, 1)}
	w := newWorld(t, 2.5, bounds)
	// Activation on magnetic detection; deactivation only when the strong
	// "hold" channel drops — hysteresis keeps membership sticky.
	spec := ContextType{
		Name: "sticky",
		Activation: func(rd sensor.Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Deactivation: func(rd sensor.Reading) bool {
			v, _ := rd.Value("magnetic")
			return v < 0.001 // much wider than the detection radius
		},
		Group: fastGroup,
	}
	st := w.addMote(t, 0, geom.Pt(0, 0), sensor.VehicleModel("vehicle"), StackConfig{})
	rt, err := st.AttachContext(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Target appears at t=0 within detection range, then moves just outside
	// the signature radius (activation false) but still close (magnetic
	// intensity above the deactivation floor).
	traj, err := phenomena.NewWaypoints([]geom.Point{geom.Pt(0.5, 0), geom.Pt(3, 0)}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w.field.Add(&phenomena.Target{
		Name: "tank", Kind: "vehicle",
		Traj: traj, SignatureRadius: 1.0, Amplitude: 5,
	})
	w.start()
	w.run(t, 8*time.Second)

	// Without the deactivation override, sensing would have flipped false
	// when the target passed 1.0 grid units; with it, the mote still
	// senses because the intensity remains above the floor.
	if !rt.Manager().Sensing() {
		t.Error("deactivation override did not hold sensing on")
	}
}
