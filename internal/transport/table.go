package transport

import (
	"container/list"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/radio"
)

// DefaultTableCap is the default capacity of the last-known-leader table.
// The paper notes leadership information is "retained for as long as
// possible, given limited table sizes" with LRU replacement.
const DefaultTableCap = 16

// LeaderInfo is the cached last-known leadership of a remote context label.
type LeaderInfo struct {
	Leader    radio.NodeID
	Loc       geom.Point
	UpdatedAt time.Duration
}

// LeaderTable is an LRU cache mapping context labels to their last-known
// leader and location.
type LeaderTable struct {
	capacity int
	order    *list.List // front = most recently used; values are *tableEntry
	byLabel  map[group.Label]*list.Element
}

type tableEntry struct {
	label group.Label
	info  LeaderInfo
}

// NewLeaderTable creates a table; capacity <= 0 means DefaultTableCap.
func NewLeaderTable(capacity int) *LeaderTable {
	if capacity <= 0 {
		capacity = DefaultTableCap
	}
	return &LeaderTable{
		capacity: capacity,
		order:    list.New(),
		byLabel:  make(map[group.Label]*list.Element, capacity),
	}
}

// Get returns the cached info for a label and marks it recently used.
func (t *LeaderTable) Get(label group.Label) (LeaderInfo, bool) {
	el, ok := t.byLabel[label]
	if !ok {
		return LeaderInfo{}, false
	}
	t.order.MoveToFront(el)
	return el.Value.(*tableEntry).info, true
}

// Put inserts or refreshes a label's leadership info. Older information
// (by UpdatedAt) never overwrites newer information. The least recently
// used entry is evicted at capacity.
func (t *LeaderTable) Put(label group.Label, info LeaderInfo) {
	if el, ok := t.byLabel[label]; ok {
		entry := el.Value.(*tableEntry)
		if info.UpdatedAt >= entry.info.UpdatedAt {
			entry.info = info
		}
		t.order.MoveToFront(el)
		return
	}
	if t.order.Len() >= t.capacity {
		oldest := t.order.Back()
		if oldest != nil {
			t.order.Remove(oldest)
			delete(t.byLabel, oldest.Value.(*tableEntry).label)
		}
	}
	t.byLabel[label] = t.order.PushFront(&tableEntry{label: label, info: info})
}

// Len returns the number of cached labels.
func (t *LeaderTable) Len() int {
	return t.order.Len()
}

// Labels returns the cached labels from most to least recently used.
func (t *LeaderTable) Labels() []group.Label {
	out := make([]group.Label, 0, t.order.Len())
	for el := t.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*tableEntry).label)
	}
	return out
}
