// Package transport implements MTP, EnviroTrack's transport layer
// (Section 5.4): remote method invocation between context labels.
// Connections are identified by (label, port) pairs; every outgoing
// datagram identifies the source's current leader in its header, so that
// endpoints keep per-label last-known-leader tables (LRU-replaced) up to
// date. Messages addressed to an out-of-date leader are forwarded along
// the chain of past leaders toward the label's current leader.
package transport

import (
	"strings"

	"envirotrack/internal/directory"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/radio"
	"envirotrack/internal/routing"
	"envirotrack/internal/trace"
)

// PortID identifies a method endpoint within a context label.
type PortID uint16

// MaxForwardChain bounds forwarding along past leaders.
const MaxForwardChain = 8

// Datagram is one MTP message between (label, port) endpoints.
type Datagram struct {
	SrcLabel group.Label
	SrcPort  PortID
	DstLabel group.Label
	DstPort  PortID
	// SrcLeader and SrcLoc identify the source's current leader, carried
	// in every message so receivers refresh their leader tables.
	SrcLeader radio.NodeID
	SrcLoc    geom.Point
	Payload   any
	// Chain counts forwarding steps along past leaders.
	Chain int
	// Corr is the datagram's causal-correlation header, minted once at the
	// originating endpoint and preserved verbatim across chain forwards, so
	// every frame and transport event of one datagram shares a span key.
	Corr radio.Corr
}

// Config parameterizes an endpoint.
type Config struct {
	// TableCap bounds the last-known-leader table (DefaultTableCap if 0).
	TableCap int
	// MessageBits sizes MTP frames on the air.
	MessageBits int
}

func (c Config) withDefaults() Config {
	if c.MessageBits <= 0 {
		c.MessageBits = 64 * 8
	}
	return c
}

// Stats counts endpoint-level outcomes.
type Stats struct {
	Delivered      uint64 // datagrams handed to a local port handler
	ChainForwarded uint64 // datagrams forwarded along past leaders
	NoRoute        uint64 // datagrams dropped: no leader known anywhere
	NoHandler      uint64 // datagrams that reached a leader without a handler
}

type portKey struct {
	label group.Label
	port  PortID
}

// Endpoint is the per-mote MTP component. IMPORTANT: because it snoops
// group heartbeats without consuming them, it must be attached to the mote
// *before* the group.Manager in frame-handler order.
type Endpoint struct {
	m      *mote.Mote
	router *routing.Router
	dir    *directory.Service
	cfg    Config

	table    *LeaderTable
	handlers map[portKey]func(Datagram)
	leading  map[group.Label]bool

	// Stats exposes delivery accounting for tests and experiments.
	Stats Stats
}

// NewEndpoint attaches an MTP endpoint to the mote. dir may be nil; then
// first-contact sends to unknown labels fail until a heartbeat or incoming
// datagram teaches the endpoint the label's leader.
func NewEndpoint(m *mote.Mote, router *routing.Router, dir *directory.Service, cfg Config) *Endpoint {
	e := &Endpoint{
		m:        m,
		router:   router,
		dir:      dir,
		cfg:      cfg.withDefaults(),
		table:    NewLeaderTable(cfg.TableCap),
		handlers: make(map[portKey]func(Datagram)),
		leading:  make(map[group.Label]bool),
	}
	m.AddFrameHandler(e.snoopHeartbeat)
	router.AddHandler(e.handleRouted)
	return e
}

// SetLeading tells the endpoint whether this mote currently leads a label.
// The middleware calls it from the group manager's leadership callbacks.
func (e *Endpoint) SetLeading(label group.Label, leading bool) {
	if leading {
		e.leading[label] = true
		return
	}
	delete(e.leading, label)
}

// Leading reports whether this mote leads the label.
func (e *Endpoint) Leading(label group.Label) bool {
	return e.leading[label]
}

// Handle installs the handler for a (label, port) connection endpoint.
func (e *Endpoint) Handle(label group.Label, port PortID, fn func(Datagram)) {
	e.handlers[portKey{label: label, port: port}] = fn
}

// Unhandle removes a port handler.
func (e *Endpoint) Unhandle(label group.Label, port PortID) {
	delete(e.handlers, portKey{label: label, port: port})
}

// Learn records leadership information for a label (also called by the
// heartbeat snoop).
func (e *Endpoint) Learn(label group.Label, info LeaderInfo) {
	e.table.Put(label, info)
}

// Table exposes the last-known-leader table (for inspection and tests).
func (e *Endpoint) Table() *LeaderTable {
	return e.table
}

// Send transmits a datagram from this mote toward the destination label's
// leader. The source header fields are stamped automatically. If the
// destination label is unknown, the directory is consulted first (the
// paper's "first contacted" path); later messages use the cached leader.
func (e *Endpoint) Send(d Datagram) {
	d.SrcLeader = e.m.ID()
	d.SrcLoc = e.m.Pos()
	if d.Corr.Seq == 0 {
		d.Corr = radio.Corr{Origin: int32(e.m.ID()), Seq: e.m.NextCorrSeq()}
	}
	if info, ok := e.table.Get(d.DstLabel); ok {
		e.routeTo(info, d)
		return
	}
	if e.dir == nil {
		e.Stats.NoRoute++
		e.emit(obs.EvTransportNoRoute, d, int(d.SrcLeader), "no_directory")
		return
	}
	ctxType := labelType(d.DstLabel)
	e.dir.Query(ctxType, func(entries []directory.Entry) {
		for _, ent := range entries {
			if ent.Label == d.DstLabel {
				info := LeaderInfo{Leader: ent.Leader, Loc: ent.Location, UpdatedAt: ent.UpdatedAt}
				e.table.Put(d.DstLabel, info)
				e.routeTo(info, d)
				return
			}
		}
		e.Stats.NoRoute++
		e.emit(obs.EvTransportNoRoute, d, int(d.SrcLeader), "label_unknown")
	})
}

func (e *Endpoint) routeTo(info LeaderInfo, d Datagram) {
	e.router.Send(routing.Message{
		Kind:      trace.KindTransport,
		Dest:      info.Loc,
		DestNode:  info.Leader,
		Bits:      e.cfg.MessageBits,
		Payload:   d,
		Corr:      d.Corr,
		CorrLabel: string(d.DstLabel),
	})
}

// handleRouted processes a datagram that terminated at this node.
func (e *Endpoint) handleRouted(msg routing.Message) bool {
	d, ok := msg.Payload.(Datagram)
	if !ok {
		return false
	}
	// Refresh our view of the source label's leadership from the header.
	if d.SrcLabel != "" {
		e.table.Put(d.SrcLabel, LeaderInfo{
			Leader:    d.SrcLeader,
			Loc:       d.SrcLoc,
			UpdatedAt: e.m.Scheduler().Now(),
		})
	}

	if e.leading[d.DstLabel] {
		if fn, ok := e.handlers[portKey{label: d.DstLabel, port: d.DstPort}]; ok {
			e.Stats.Delivered++
			e.emit(obs.EvTransportDelivered, d, int(d.SrcLeader), "")
			fn(d)
		} else {
			e.Stats.NoHandler++
		}
		return true
	}

	// Not the current leader: forward along the past-leader chain if we
	// know a fresher leader.
	if d.Chain >= MaxForwardChain {
		e.Stats.NoRoute++
		e.emit(obs.EvTransportNoRoute, d, int(d.SrcLeader), "chain_exhausted")
		return true
	}
	if info, ok := e.table.Get(d.DstLabel); ok && info.Leader != e.m.ID() {
		d.Chain++
		e.Stats.ChainForwarded++
		e.emit(obs.EvTransportHop, d, int(info.Leader), "")
		e.routeTo(info, d)
		return true
	}
	e.Stats.NoRoute++
	e.emit(obs.EvTransportNoRoute, d, int(d.SrcLeader), "no_leader_known")
	return true
}

// emit publishes one transport event: Label/Origin/Seq carry the
// datagram's correlation key (chain depth is recoverable as the number of
// preceding transport_hop events in the span) and peer is the other node
// involved (the source leader for delivery/drop, the next-hop leader for a
// chain hop).
func (e *Endpoint) emit(ev obs.EventType, d Datagram, peer int, cause string) {
	if bus := e.m.Obs(); bus.Active() {
		bus.Emit(obs.Event{
			At:      e.m.Scheduler().Now(),
			Type:    ev,
			Mote:    int(e.m.ID()),
			Peer:    peer,
			Label:   string(d.DstLabel),
			CtxType: labelType(d.DstLabel),
			Pos:     e.m.Pos(),
			Kind:    trace.KindTransport,
			Seq:     uint64(d.Corr.Seq),
			Origin:  int(d.Corr.Origin),
			Cause:   cause,
		})
	}
}

// snoopHeartbeat watches group heartbeats (without consuming them) to keep
// the leader table current; past leaders near a moving group keep fresh
// forwarding state this way.
func (e *Endpoint) snoopHeartbeat(f radio.Frame) bool {
	if hb, ok := f.Payload.(group.Heartbeat); ok {
		e.table.Put(hb.Label, LeaderInfo{
			Leader:    hb.Leader,
			Loc:       hb.LeaderLoc,
			UpdatedAt: e.m.Scheduler().Now(),
		})
	}
	return false // never consume: the group manager handles heartbeats
}

// labelType extracts the context type from a label of the canonical
// "type/mote.seq" form.
func labelType(l group.Label) string {
	s := string(l)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return s
}
