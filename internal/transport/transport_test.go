package transport

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/directory"
	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/routing"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

func TestLeaderTableLRUEviction(t *testing.T) {
	tbl := NewLeaderTable(2)
	tbl.Put("a", LeaderInfo{Leader: 1})
	tbl.Put("b", LeaderInfo{Leader: 2})
	tbl.Put("c", LeaderInfo{Leader: 3}) // evicts "a"
	if _, ok := tbl.Get("a"); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := tbl.Get("b"); !ok {
		t.Error("entry b missing")
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
}

func TestLeaderTableGetRefreshesRecency(t *testing.T) {
	tbl := NewLeaderTable(2)
	tbl.Put("a", LeaderInfo{Leader: 1})
	tbl.Put("b", LeaderInfo{Leader: 2})
	tbl.Get("a")                        // a becomes most recent
	tbl.Put("c", LeaderInfo{Leader: 3}) // evicts "b"
	if _, ok := tbl.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := tbl.Get("b"); ok {
		t.Error("least recently used entry kept")
	}
}

func TestLeaderTableNewerWins(t *testing.T) {
	tbl := NewLeaderTable(4)
	tbl.Put("a", LeaderInfo{Leader: 1, UpdatedAt: 10 * time.Second})
	tbl.Put("a", LeaderInfo{Leader: 2, UpdatedAt: 5 * time.Second}) // stale
	info, _ := tbl.Get("a")
	if info.Leader != 1 {
		t.Errorf("stale update overwrote newer entry: leader = %d", info.Leader)
	}
	tbl.Put("a", LeaderInfo{Leader: 3, UpdatedAt: 20 * time.Second})
	info, _ = tbl.Get("a")
	if info.Leader != 3 {
		t.Errorf("fresh update ignored: leader = %d", info.Leader)
	}
}

func TestLeaderTableLabelsOrder(t *testing.T) {
	tbl := NewLeaderTable(4)
	tbl.Put("a", LeaderInfo{})
	tbl.Put("b", LeaderInfo{})
	tbl.Get("a")
	labels := tbl.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Errorf("Labels = %v, want [a b]", labels)
	}
}

func TestLeaderTableDefaultCap(t *testing.T) {
	tbl := NewLeaderTable(0)
	for i := 0; i < DefaultTableCap+5; i++ {
		tbl.Put(group.Label(rune('a'+i)), LeaderInfo{})
	}
	if tbl.Len() != DefaultTableCap {
		t.Errorf("Len = %d, want %d", tbl.Len(), DefaultTableCap)
	}
}

// --- endpoint integration harness ---

type tnet struct {
	sched     *simtime.Scheduler
	medium    *radio.Medium
	endpoints map[radio.NodeID]*Endpoint
	motes     map[radio.NodeID]*mote.Mote
	bounds    geom.Rect
}

func newTnet(t *testing.T, cols, rows int) *tnet {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := rand.New(rand.NewSource(9))
	medium := radio.New(sched, radio.Params{CommRadius: 1.5, DisableCollisions: true}, rng, nil)
	bounds := geom.Grid{Cols: cols, Rows: rows}.Bounds()
	n := &tnet{
		sched:     sched,
		medium:    medium,
		endpoints: make(map[radio.NodeID]*Endpoint),
		motes:     make(map[radio.NodeID]*mote.Mote),
		bounds:    bounds,
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			id := radio.NodeID(y*cols + x)
			m, err := mote.New(id, geom.Pt(float64(x), float64(y)), sched, medium, phenomena.NewField(), nil, mote.Config{}, rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			r := routing.NewRouter(m, medium)
			dir := directory.NewService(m, r, directory.Config{Bounds: bounds})
			n.endpoints[id] = NewEndpoint(m, r, dir, Config{})
			n.motes[id] = m
		}
	}
	return n
}

func (n *tnet) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := n.sched.RunUntil(until); err != nil {
		t.Fatal(err)
	}
}

func TestSendViaLearnedLeader(t *testing.T) {
	n := newTnet(t, 5, 5)
	const label = group.Label("car/24.1")
	dst := n.endpoints[24]
	dst.SetLeading(label, true)
	var got []any
	dst.Handle(label, 7, func(d Datagram) { got = append(got, d.Payload) })

	src := n.endpoints[0]
	pos, _ := n.medium.Position(24)
	src.Learn(label, LeaderInfo{Leader: 24, Loc: pos})
	src.Send(Datagram{SrcLabel: "base/0.1", DstLabel: label, DstPort: 7, Payload: "invoke"})
	n.run(t, time.Second)

	if len(got) != 1 || got[0] != "invoke" {
		t.Fatalf("delivered = %v, want [invoke]", got)
	}
	if dst.Stats.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", dst.Stats.Delivered)
	}
}

func TestFirstContactViaDirectory(t *testing.T) {
	n := newTnet(t, 5, 5)
	const label = group.Label("car/24.1")
	dst := n.endpoints[24]
	dst.SetLeading(label, true)
	delivered := 0
	dst.Handle(label, 1, func(Datagram) { delivered++ })

	// The label registers itself in the directory (as a leader would).
	pos, _ := n.medium.Position(24)
	dirOnLeader := directory.NewService(n.motes[24], routing.NewRouter(n.motes[24], n.medium), directory.Config{Bounds: n.bounds})
	_ = dirOnLeader
	// Use node 24's existing directory registration path: register from any node.
	n.endpoints[24].dir.Register("car", label, pos, 24)
	n.run(t, time.Second)

	// Node 0 has never heard of the label: first contact goes through the
	// directory, then the datagram flows.
	n.endpoints[0].Send(Datagram{DstLabel: label, DstPort: 1, Payload: "x"})
	n.run(t, 3*time.Second)

	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (via directory lookup)", delivered)
	}
	if _, ok := n.endpoints[0].Table().Get(label); !ok {
		t.Error("sender did not cache the leader after directory lookup")
	}
}

func TestNoRouteWhenUnknownAndUnregistered(t *testing.T) {
	n := newTnet(t, 4, 4)
	src := n.endpoints[0]
	src.Send(Datagram{DstLabel: "ghost/9.9", DstPort: 1, Payload: "x"})
	n.run(t, 2*time.Second)
	if src.Stats.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", src.Stats.NoRoute)
	}
}

func TestForwardingAlongPastLeaderChain(t *testing.T) {
	n := newTnet(t, 6, 1)
	const label = group.Label("car/1.1")

	// Leadership has moved 1 -> 3 -> 5. Node 1 knows node 3 led later;
	// node 3 knows node 5 is current. The sender still believes node 1.
	pos := func(id radio.NodeID) geom.Point {
		p, _ := n.medium.Position(id)
		return p
	}
	n.endpoints[1].Learn(label, LeaderInfo{Leader: 3, Loc: pos(3), UpdatedAt: 1})
	n.endpoints[3].Learn(label, LeaderInfo{Leader: 5, Loc: pos(5), UpdatedAt: 2})
	n.endpoints[5].SetLeading(label, true)
	delivered := 0
	n.endpoints[5].Handle(label, 2, func(Datagram) { delivered++ })

	src := n.endpoints[0]
	src.Learn(label, LeaderInfo{Leader: 1, Loc: pos(1), UpdatedAt: 0})
	src.Send(Datagram{DstLabel: label, DstPort: 2, Payload: "chase"})
	n.run(t, 2*time.Second)

	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (via forwarding chain)", delivered)
	}
	if n.endpoints[1].Stats.ChainForwarded != 1 || n.endpoints[3].Stats.ChainForwarded != 1 {
		t.Errorf("chain forwards = %d/%d, want 1/1",
			n.endpoints[1].Stats.ChainForwarded, n.endpoints[3].Stats.ChainForwarded)
	}
}

func TestReceiverLearnsSourceLeaderFromHeader(t *testing.T) {
	n := newTnet(t, 5, 1)
	const srcLabel = group.Label("base/0.1")
	const dstLabel = group.Label("car/4.1")
	dst := n.endpoints[4]
	dst.SetLeading(dstLabel, true)
	dst.Handle(dstLabel, 1, func(Datagram) {})

	src := n.endpoints[0]
	pos, _ := n.medium.Position(4)
	src.SetLeading(srcLabel, true)
	src.Learn(dstLabel, LeaderInfo{Leader: 4, Loc: pos})
	src.Send(Datagram{SrcLabel: srcLabel, DstLabel: dstLabel, DstPort: 1, Payload: "hi"})
	n.run(t, time.Second)

	info, ok := dst.Table().Get(srcLabel)
	if !ok {
		t.Fatal("receiver did not learn the source label's leader")
	}
	if info.Leader != 0 {
		t.Errorf("learned leader = %d, want 0", info.Leader)
	}

	// The receiver can now reply without any directory traffic.
	replied := 0
	src.Handle(srcLabel, 9, func(Datagram) { replied++ })
	dst.Send(Datagram{SrcLabel: dstLabel, DstLabel: srcLabel, DstPort: 9, Payload: "re"})
	n.run(t, 2*time.Second)
	if replied != 1 {
		t.Errorf("replies delivered = %d, want 1", replied)
	}
}

func TestHeartbeatSnoopUpdatesTable(t *testing.T) {
	n := newTnet(t, 3, 1)
	// Node 0 broadcasts a heartbeat as a group leader would.
	hb := group.Heartbeat{
		CtxType:   "car",
		Label:     "car/0.1",
		Leader:    0,
		LeaderLoc: geom.Pt(0, 0),
		Weight:    3,
		Seq:       1,
	}
	n.motes[0].Broadcast(trace.KindHeartbeat, 0, hb)
	n.run(t, time.Second)

	info, ok := n.endpoints[1].Table().Get("car/0.1")
	if !ok {
		t.Fatal("neighbor did not snoop the heartbeat")
	}
	if info.Leader != 0 || info.Loc != geom.Pt(0, 0) {
		t.Errorf("snooped info = %+v", info)
	}
	// Out-of-range node learned nothing.
	if _, ok := n.endpoints[2].Table().Get("car/0.1"); !ok {
		// node 2 at distance 2 with radius 1.5 is out of range of node 0
		// but may have heard nothing; that's the expectation:
		t.Log("node 2 (out of range) has no entry, as expected")
	} else {
		t.Error("out-of-range node learned from a heartbeat it cannot hear")
	}
}

func TestNoHandlerCounted(t *testing.T) {
	n := newTnet(t, 3, 1)
	const label = group.Label("car/2.1")
	dst := n.endpoints[2]
	dst.SetLeading(label, true) // leads, but no handler for port 5

	src := n.endpoints[0]
	pos, _ := n.medium.Position(2)
	src.Learn(label, LeaderInfo{Leader: 2, Loc: pos})
	src.Send(Datagram{DstLabel: label, DstPort: 5, Payload: "x"})
	n.run(t, time.Second)

	if dst.Stats.NoHandler != 1 {
		t.Errorf("NoHandler = %d, want 1", dst.Stats.NoHandler)
	}
}

func TestChainLoopGuard(t *testing.T) {
	n := newTnet(t, 2, 1)
	const label = group.Label("car/9.9")
	// Nodes 0 and 1 each believe the other is the leader: a routing loop.
	p0, _ := n.medium.Position(0)
	p1, _ := n.medium.Position(1)
	n.endpoints[0].Learn(label, LeaderInfo{Leader: 1, Loc: p1})
	n.endpoints[1].Learn(label, LeaderInfo{Leader: 0, Loc: p0})

	n.endpoints[0].Send(Datagram{DstLabel: label, DstPort: 1, Payload: "loop"})
	n.run(t, 5*time.Second)

	total := n.endpoints[0].Stats.ChainForwarded + n.endpoints[1].Stats.ChainForwarded
	if total > MaxForwardChain {
		t.Errorf("chain forwards = %d, want <= %d (loop guard)", total, MaxForwardChain)
	}
	if n.endpoints[0].Stats.NoRoute+n.endpoints[1].Stats.NoRoute == 0 {
		t.Error("loop not terminated with a NoRoute drop")
	}
}

func TestSetLeadingToggle(t *testing.T) {
	n := newTnet(t, 2, 1)
	e := n.endpoints[0]
	e.SetLeading("x/1.1", true)
	if !e.Leading("x/1.1") {
		t.Error("Leading = false after SetLeading(true)")
	}
	e.SetLeading("x/1.1", false)
	if e.Leading("x/1.1") {
		t.Error("Leading = true after SetLeading(false)")
	}
}

func TestLabelType(t *testing.T) {
	tests := []struct {
		label group.Label
		want  string
	}{
		{"car/3.1", "car"},
		{"fire/12.7", "fire"},
		{"plain", "plain"},
	}
	for _, tt := range tests {
		if got := labelType(tt.label); got != tt.want {
			t.Errorf("labelType(%q) = %q, want %q", tt.label, got, tt.want)
		}
	}
}
