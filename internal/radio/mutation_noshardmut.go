//go:build !shardmut

package radio

// shardMutSkew is the deliberate fault the shardmut mutation build
// injects into cross-shard delivery scheduling: it shaves the delivery
// time of boundary receptions by one tick, violating the conservative
// lookahead bound (a frame arriving before it has finished its packet
// time) and reordering deliveries relative to the serial trace. In
// normal builds it is zero, the compiler folds the additions away, and
// sharded runs are byte-identical to serial — the differential battery
// in internal/eval pins that. Build with -tags shardmut to verify the
// battery actually notices the violation.
const shardMutSkew = 0
