// Package radio simulates the shared wireless medium of a mote network: a
// disk-connectivity broadcast channel with finite bit rate (50 kb/s for MICA
// motes), propagation delay, iid channel loss, and receiver-side collision
// corruption. There is no MAC-layer reliability, matching the paper's
// observation that "no reliability is implemented in the MAC layer of the
// MICA motes"; collisions therefore grow with offered traffic.
//
// The send/receive path is the hottest code in the simulator (every frame
// fans out to O(neighbors) receptions), so it is allocation-free in steady
// state: reception, transmission, and CSMA-retry records are pooled on
// intrusive free lists, their completion events are scheduled through the
// scheduler's typed-payload API (no closure captures), spatial queries
// append into reusable scratch, and cell buckets are kept id-sorted at
// insert so range queries merge instead of sorting per call.
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"envirotrack/internal/arena"
	"envirotrack/internal/geom"
	"envirotrack/internal/obs"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// NodeID identifies a mote on the medium.
type NodeID int

// Broadcast is the destination address for frames intended for every node
// in communication range.
const Broadcast NodeID = -1

// DefaultBitRate is the MICA mote channel capacity in bits per second.
const DefaultBitRate = 50_000.0

// DefaultFrameBits approximates a small TinyOS active message (36-byte
// frame) on the air.
const DefaultFrameBits = 36 * 8

// Corr is the causal-correlation header of a logical message: the mote
// that originated it and an origin-scoped sequence number. The pair
// identifies one logical message end to end — across routing hops, CSMA
// retries, and chaos duplications — and is carried into every obs event
// the message's frames produce, which is what lets the SpanSink and
// ettrace reassemble per-report lifecycles. The label a message concerns
// travels on the span-opening report_sent event, not here: Corr rides in
// every Frame copied per receiver on broadcast, so it is kept to eight
// bytes. The zero Corr marks uncorrelated traffic (sequence numbers are
// 1-based) and costs nothing.
type Corr struct {
	Origin int32
	Seq    uint32
}

// Frame is one transmission. Payload is an opaque protocol message owned by
// the upper layers.
type Frame struct {
	Kind    trace.Kind
	Src     NodeID
	Dst     NodeID // Broadcast or a specific node
	Bits    int    // size on the air; DefaultFrameBits if zero
	Payload any
	// Corr is the correlation header of the logical message this frame
	// carries (zero for uncorrelated traffic).
	Corr Corr
	// ID is the medium-stamped transmission id, assigned when the frame
	// actually goes on the air (CSMA-deferred copies are stamped at
	// retransmission, chaos duplicates get distinct ids). 1-based; 0
	// means not yet transmitted.
	ID uint64
}

// Params configures the medium.
type Params struct {
	// CommRadius is the communication radius in grid units.
	CommRadius float64
	// BitRate is the channel capacity in bits/second (DefaultBitRate if 0).
	BitRate float64
	// PropDelay is the fixed propagation + modem turnaround delay added to
	// each frame's airtime.
	PropDelay time.Duration
	// LossProb is the iid per-receiver frame loss probability in [0,1].
	LossProb float64
	// DisableCollisions turns off the receiver-side collision model.
	DisableCollisions bool
	// DisableCSMA turns off carrier sensing: senders then transmit
	// immediately even when the channel around them is busy. The MICA
	// radio stack carrier-senses (it lacks MAC *reliability*, not CSMA),
	// so CSMA is on by default; hidden terminals still collide.
	DisableCSMA bool
	// CSMASlot is the carrier-sense backoff slot (default 1ms).
	CSMASlot time.Duration
	// PerReceiverDelivery schedules one scheduler event per target receiver
	// (the pre-batching reference path) instead of one pooled delivery
	// batch per frame. The two paths produce byte-identical traces — the
	// equivalence tests pin this — so the flag exists only as the reference
	// implementation for differential testing.
	PerReceiverDelivery bool
}

func (p Params) withDefaults() Params {
	if p.BitRate <= 0 {
		p.BitRate = DefaultBitRate
	}
	if p.CSMASlot <= 0 {
		p.CSMASlot = time.Millisecond
	}
	return p
}

// maxCSMAAttempts bounds carrier-sense deferrals; after that the frame is
// transmitted regardless (bounded latency, like a saturated CSMA MAC).
const maxCSMAAttempts = 6

// Receiver is the callback invoked on successful frame reception. It runs
// on the scheduler thread at the frame's arrival time.
type Receiver func(Frame)

// FaultInjector lets a fault-injection harness perturb the medium while a
// run executes. All methods are consulted on the scheduler thread. The
// contract that keeps nominal runs bit-identical: with no injector
// attached the medium draws exactly the same RNG sequence as before the
// hook existed, and an attached injector only adds draws when
// DuplicateProb returns > 0.
type FaultInjector interface {
	// LossProb returns the effective iid per-receiver loss probability at
	// sim time now, given the configured base probability.
	LossProb(now time.Duration, base float64) float64
	// Linked reports whether a frame from src can reach dst at sim time
	// now; false models a network partition severing the link.
	Linked(now time.Duration, src, dst NodeID) bool
	// DuplicateProb returns the probability that a frame transmission is
	// duplicated (sent twice) at sim time now. Zero disables duplication
	// without consuming randomness.
	DuplicateProb(now time.Duration) float64
}

// SetFaultInjector attaches a fault injector to the medium; nil detaches
// it and restores nominal behaviour.
func (m *Medium) SetFaultInjector(fi FaultInjector) { m.faults = fi }

// Medium is the shared channel. It is driven entirely by the simulation
// scheduler and is not safe for concurrent use.
//
// Topology is append-only: nodes register once via AddNode and never
// move. Spatial queries run against a uniform-grid spatial hash with cell
// size CommRadius, so resolving the nodes near a point costs O(found)
// instead of a scan over the whole field.
type Medium struct {
	sched  *simtime.Scheduler
	params Params
	rng    *rand.Rand
	stats  *trace.Stats
	bus    *obs.Bus

	nodes map[NodeID]*nodeState
	order []NodeID // node ids, kept ascending by insertion-time merge
	// faults, when non-nil, overrides loss probability, severs partitioned
	// links, and duplicates frames (chaos harness). Nil in nominal runs.
	faults FaultInjector

	// cells is the spatial hash: nodes bucketed by grid cell of size
	// cellSize (= CommRadius, or 1 when CommRadius is unset). Entries
	// carry the position so range filtering never touches the nodes map,
	// and each bucket is kept id-sorted at insert so queries k-way merge
	// the candidate buckets instead of sorting per call.
	cells    map[cellKey][]cellEntry
	cellSize float64
	// neighbors caches Neighbors results per node. AddNode invalidates it
	// granularly: only entries of nodes within CommRadius of the new node
	// (the only lists the newcomer can appear in) are dropped.
	neighbors map[NodeID][]NodeID

	// Query scratch, reused across calls (the medium is single-threaded).
	queryBuckets [][]cellEntry
	queryCur     []int
	scratchIDs   []NodeID

	// Free lists pooling the per-frame records of the send path. Refills
	// come from run-local arenas, so a run's records occupy contiguous
	// blocks instead of scattered heap objects; each parallel sweep worker
	// owns its medium and therefore its arenas — nothing is shared.
	rxFree  *reception
	txFree  *transmission
	psFree  *pendingSend
	dbFree  *deliveryBatch
	rxArena arena.Arena[reception]
	txArena arena.Arena[transmission]
	psArena arena.Arena[pendingSend]
	dbArena arena.Arena[deliveryBatch]

	// Airtime memo for the handful of fixed frame sizes a run uses.
	airtimeBits [8]int
	airtimeDur  [8]time.Duration
	airtimeN    int

	// frameSeq numbers actual transmissions (Frame.ID). Stamped at
	// transmission commit in trySend — after CSMA deferral — so the
	// counter advances identically on the batched and per-receiver
	// delivery paths and ids are deterministic per run.
	frameSeq uint64

	// Spatial sharding (SetSharding). shardScheds routes each frame's
	// medium events — CSMA retries, delivery batches, receptions, tx-done
	// checks — onto the scheduler shard owning the sending node's region;
	// shardOfPos maps a position to its shard. shardMail is the k x k
	// per-pair mailbox accounting of boundary frames (target receptions
	// whose sender and receiver live in different shards), and
	// lookaheadViolations counts deliveries scheduled closer to the
	// sender's committed horizon than one packet time (airtime +
	// propagation) — the conservative-lookahead invariant; always zero
	// outside the shardmut mutation build.
	shardScheds         []*simtime.Scheduler
	shardOfPos          func(geom.Point) int32
	shardMail           []ShardMailbox
	lookaheadViolations uint64
}

// ShardMailbox accounts one ordered shard pair's boundary traffic.
type ShardMailbox struct {
	// Frames counts target receptions sent from the pair's first shard
	// to a receiver owned by its second.
	Frames uint64
	// MinSlack is the smallest (delivery time - transmission commit time)
	// over those receptions: the margin by which the earliest boundary
	// delivery cleared the sending shard's committed horizon. Meaningless
	// while Frames is 0.
	MinSlack time.Duration
}

// cellKey addresses one bucket of the spatial hash.
type cellKey struct{ x, y int }

// cellEntry is one node in a spatial-hash bucket.
type cellEntry struct {
	id  NodeID
	pos geom.Point
}

type nodeState struct {
	id   NodeID
	pos  geom.Point
	recv Receiver
	// shard is the scheduler shard owning this node's region (0 when the
	// medium is unsharded); resolved once at registration.
	shard int32
	// txBusyUntil serializes a node's own transmissions: a mote has one
	// radio and cannot transmit two frames at once.
	txBusyUntil time.Duration
	// rx tracks in-flight receptions for collision detection.
	rx []*reception
}

// reception is one frame occupying one receiver's channel. Records are
// pooled: a reception is recycled once it is out of the receiver's rx list
// (inList) and its delivery event, if any, has fired (hasEvent).
type reception struct {
	start     time.Duration
	end       time.Duration
	corrupted bool
	lost      bool // iid loss, drawn at schedule time
	inList    bool
	hasEvent  bool
	m         *Medium
	dst       *nodeState
	f         Frame
	tx        *transmission
	next      *reception
}

// transmission tracks whether any receiver got a copy, for the paper's
// "sent but never received on any other mote" loss metric. Pooled; the
// undelivered-check event fires after every delivery of the frame (same
// timestamp, later seq) and recycles the record.
type transmission struct {
	delivered int
	m         *Medium
	f         Frame
	pos       geom.Point
	next      *transmission
}

// pendingSend is a CSMA-deferred frame awaiting its backoff timer. Pooled.
type pendingSend struct {
	m       *Medium
	f       Frame
	attempt int
	next    *pendingSend
}

// deliveryBatch is one frame's batched fan-out: the target receptions of a
// transmission, delivered in ascending receiver-id order by a single
// scheduler event at arrival time (airtime is computed once and shared).
// The old path scheduled one event per receiver; the batch keeps the exact
// firing order those events had — they occupied a contiguous (at, seq)
// block — and folds the trailing undelivered check in at the end, so
// traces are byte-identical at O(receivers) fewer heap events. Pooled.
type deliveryBatch struct {
	m    *Medium
	tx   *transmission
	rxs  []*reception
	next *deliveryBatch
}

// New creates a medium on the given scheduler. rng must not be nil; stats
// may be nil to disable accounting.
func New(s *simtime.Scheduler, p Params, rng *rand.Rand, stats *trace.Stats) *Medium {
	p = p.withDefaults()
	cellSize := p.CommRadius
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Medium{
		sched:     s,
		params:    p,
		rng:       rng,
		stats:     stats,
		nodes:     make(map[NodeID]*nodeState),
		cells:     make(map[cellKey][]cellEntry),
		cellSize:  cellSize,
		neighbors: make(map[NodeID][]NodeID),
	}
}

// Params returns the medium configuration (with defaults applied).
func (m *Medium) Params() Params {
	return m.params
}

// SetObserver attaches the observability bus the medium emits frame
// events through. A nil bus disables emission.
func (m *Medium) SetObserver(bus *obs.Bus) { m.bus = bus }

// SetSharding attaches the medium to a spatially sharded scheduler: each
// frame's medium events are scheduled on the shard owning the sending
// node's region (shardOfPos resolves a position's shard, and scheds lists
// the shard schedulers in shard order). Target receptions whose receiver
// lives in a different shard than the sender are classified as boundary
// traffic and accounted in per-pair mailboxes, with their delivery slack
// checked against the conservative lookahead of one packet time. Nodes
// already registered are re-resolved. Passing nil scheds detaches
// sharding.
func (m *Medium) SetSharding(scheds []*simtime.Scheduler, shardOfPos func(geom.Point) int32) {
	if len(scheds) == 0 {
		m.shardScheds, m.shardOfPos, m.shardMail = nil, nil, nil
		m.lookaheadViolations = 0
		for _, n := range m.nodes {
			n.shard = 0
		}
		return
	}
	m.shardScheds = scheds
	m.shardOfPos = shardOfPos
	m.shardMail = make([]ShardMailbox, len(scheds)*len(scheds))
	m.lookaheadViolations = 0
	for _, n := range m.nodes {
		n.shard = shardOfPos(n.pos)
	}
}

// ShardCount returns the number of scheduler shards the medium routes to
// (1 when unsharded).
func (m *Medium) ShardCount() int {
	if len(m.shardScheds) == 0 {
		return 1
	}
	return len(m.shardScheds)
}

// NodeShard returns the shard owning a node's region (0 when unsharded
// or unknown).
func (m *Medium) NodeShard(id NodeID) int32 {
	if n, ok := m.nodes[id]; ok {
		return n.shard
	}
	return 0
}

// ShardMailboxStat returns the boundary-traffic accounting for the
// ordered shard pair (from, to).
func (m *Medium) ShardMailboxStat(from, to int) ShardMailbox {
	k := len(m.shardScheds)
	if k == 0 || from < 0 || to < 0 || from >= k || to >= k {
		return ShardMailbox{}
	}
	return m.shardMail[from*k+to]
}

// BoundaryFrames sums boundary target receptions over all shard pairs.
func (m *Medium) BoundaryFrames() uint64 {
	var total uint64
	for i := range m.shardMail {
		total += m.shardMail[i].Frames
	}
	return total
}

// LookaheadViolations counts boundary deliveries scheduled less than one
// packet time (the frame's airtime plus propagation delay) after the
// sending shard's committed horizon. The medium's physics make this
// impossible — a frame cannot arrive before it has been on the air — so
// the counter stays zero except under the shardmut mutation build, which
// deliberately shaves the bound to prove the differential suite notices.
func (m *Medium) LookaheadViolations() uint64 { return m.lookaheadViolations }

// noteBoundary accounts one boundary target reception from shard `from`
// to shard `to`, delivered at rxAt for a transmission committed at now;
// bound is the frame's conservative lookahead (airtime + propagation).
func (m *Medium) noteBoundary(from, to int32, rxAt, now, bound time.Duration) {
	st := &m.shardMail[int(from)*len(m.shardScheds)+int(to)]
	slack := rxAt - now
	if st.Frames == 0 || slack < st.MinSlack {
		st.MinSlack = slack
	}
	st.Frames++
	if slack < bound {
		m.lookaheadViolations++
	}
}

// AddNode registers a stationary node. It returns an error if the id is
// already present. Registration is the only topology mutation the medium
// supports (nodes never move or deregister), so it inserts the node into
// the spatial hash — keeping both the global order and its cell bucket
// sorted by id — and invalidates exactly the cached neighbor lists the
// newcomer joins: those of nodes within CommRadius of pos.
func (m *Medium) AddNode(id NodeID, pos geom.Point, recv Receiver) error {
	if _, ok := m.nodes[id]; ok {
		return fmt.Errorf("radio: node %d already registered", id)
	}
	n := &nodeState{id: id, pos: pos, recv: recv}
	if m.shardOfPos != nil {
		n.shard = m.shardOfPos(pos)
	}
	m.nodes[id] = n
	i, _ := slices.BinarySearch(m.order, id)
	m.order = slices.Insert(m.order, i, id)
	key := m.cellOf(pos)
	bucket := m.cells[key]
	j, _ := slices.BinarySearchFunc(bucket, id, func(e cellEntry, id NodeID) int {
		switch {
		case e.id < id:
			return -1
		case e.id > id:
			return 1
		default:
			return 0
		}
	})
	m.cells[key] = slices.Insert(bucket, j, cellEntry{id: id, pos: pos})
	m.scratchIDs = m.appendNodesWithin(m.scratchIDs[:0], pos, m.params.CommRadius)
	for _, nid := range m.scratchIDs {
		delete(m.neighbors, nid)
	}
	return nil
}

// cellOf maps a position to its spatial-hash bucket.
func (m *Medium) cellOf(p geom.Point) cellKey {
	return cellKey{
		x: int(math.Floor(p.X / m.cellSize)),
		y: int(math.Floor(p.Y / m.cellSize)),
	}
}

// appendNodesWithin appends all node ids within radius r of p (inclusive),
// in ascending id order, to dst and returns the extended slice. It scans
// only the spatial-hash cells intersecting the query disk; because buckets
// are id-sorted at insert and a node lives in exactly one bucket, the
// results come out of a k-way merge with no per-call sort. When the query
// radius is so large that the cell window exceeds the node count, it falls
// back to the linear scan over the (sorted) global order, bounding the
// cost at O(n).
func (m *Medium) appendNodesWithin(dst []NodeID, p geom.Point, r float64) []NodeID {
	if r < 0 {
		return dst
	}
	x0 := int(math.Floor((p.X - r) / m.cellSize))
	x1 := int(math.Floor((p.X + r) / m.cellSize))
	y0 := int(math.Floor((p.Y - r) / m.cellSize))
	y1 := int(math.Floor((p.Y + r) / m.cellSize))
	spanX, spanY := x1-x0+1, y1-y0+1
	if spanX > len(m.order) || spanY > len(m.order) || spanX*spanY > len(m.order) {
		for _, id := range m.order {
			if m.nodes[id].pos.Within(p, r) {
				dst = append(dst, id)
			}
		}
		return dst
	}
	buckets, cur := m.queryBuckets[:0], m.queryCur[:0]
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if c := m.cells[cellKey{x: x, y: y}]; len(c) > 0 {
				buckets = append(buckets, c)
				cur = append(cur, 0)
			}
		}
	}
	m.queryBuckets, m.queryCur = buckets, cur
	// Each cursor rests on its bucket's next in-range entry (or past the
	// end), so Within is evaluated exactly once per candidate.
	for i := range buckets {
		for cur[i] < len(buckets[i]) && !buckets[i][cur[i]].pos.Within(p, r) {
			cur[i]++
		}
	}
	for {
		best := -1
		for i := range buckets {
			if cur[i] < len(buckets[i]) &&
				(best < 0 || buckets[i][cur[i]].id < buckets[best][cur[best]].id) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, buckets[best][cur[best]].id)
		cur[best]++
		for cur[best] < len(buckets[best]) && !buckets[best][cur[best]].pos.Within(p, r) {
			cur[best]++
		}
	}
	// Drop the bucket references so retained scratch can't pin stale views
	// of buckets that later inserts reallocate.
	for i := range buckets {
		buckets[i] = nil
	}
	m.queryBuckets = buckets[:0]
	return dst
}

// Position returns a node's location.
func (m *Medium) Position(id NodeID) (geom.Point, bool) {
	n, ok := m.nodes[id]
	if !ok {
		return geom.Point{}, false
	}
	return n.pos, true
}

// NodeIDs returns all registered node ids in ascending order.
func (m *Medium) NodeIDs() []NodeID {
	out := make([]NodeID, len(m.order))
	copy(out, m.order)
	return out
}

// Neighbors returns the nodes within communication radius of id, in
// ascending id order. Results are cached; the cache stays correct because
// the topology only mutates at registration time (AddNode), which drops
// exactly the cached lists the new node appears in. Resolution goes
// through the spatial hash, so an uncached lookup costs O(neighbors), not
// O(total nodes). Callers must not mutate the returned slice.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	if nb, ok := m.neighbors[id]; ok {
		return nb
	}
	n, ok := m.nodes[id]
	if !ok {
		return nil
	}
	m.scratchIDs = m.appendNodesWithin(m.scratchIDs[:0], n.pos, m.params.CommRadius)
	count := 0
	for _, other := range m.scratchIDs {
		if other != id {
			count++
		}
	}
	var nb []NodeID
	if count > 0 {
		nb = make([]NodeID, 0, count)
		for _, other := range m.scratchIDs {
			if other != id {
				nb = append(nb, other)
			}
		}
	}
	m.neighbors[id] = nb
	return nb
}

// NodesNear returns node ids within radius r of point p, ascending, in a
// freshly allocated slice. It is served by the spatial hash: cost is
// proportional to the nodes found (plus the cell window), not the field
// size. Hot paths should prefer AppendNodesNear with reused scratch.
func (m *Medium) NodesNear(p geom.Point, r float64) []NodeID {
	return m.appendNodesWithin(nil, p, r)
}

// AppendNodesNear appends the node ids within radius r of p (inclusive,
// ascending) to dst and returns the extended slice, allocating only when
// dst lacks capacity. It is the scratch-slice variant of NodesNear for
// per-event callers: pass the previous call's slice re-sliced to [:0].
func (m *Medium) AppendNodesNear(dst []NodeID, p geom.Point, r float64) []NodeID {
	return m.appendNodesWithin(dst, p, r)
}

// InRange reports whether b is within communication radius of a.
func (m *Medium) InRange(a, b NodeID) bool {
	na, ok := m.nodes[a]
	if !ok {
		return false
	}
	nb, ok := m.nodes[b]
	if !ok {
		return false
	}
	return na.pos.Within(nb.pos, m.params.CommRadius)
}

// Airtime returns the channel occupancy of a frame of the given size.
// A run uses a handful of fixed frame sizes, so the division is memoized.
func (m *Medium) Airtime(bits int) time.Duration {
	if bits <= 0 {
		bits = DefaultFrameBits
	}
	for i := 0; i < m.airtimeN; i++ {
		if m.airtimeBits[i] == bits {
			return m.airtimeDur[i]
		}
	}
	d := time.Duration(float64(bits) / m.params.BitRate * float64(time.Second))
	if m.airtimeN < len(m.airtimeBits) {
		m.airtimeBits[m.airtimeN] = bits
		m.airtimeDur[m.airtimeN] = d
		m.airtimeN++
	}
	return d
}

// --- record pools ---

func (m *Medium) acquireRX() *reception {
	if rx := m.rxFree; rx != nil {
		m.rxFree = rx.next
		*rx = reception{m: m}
		return rx
	}
	rx := m.rxArena.New()
	rx.m = m
	return rx
}

func (m *Medium) recycleRX(rx *reception) {
	rx.dst = nil
	rx.f = Frame{}
	rx.tx = nil
	rx.next = m.rxFree
	m.rxFree = rx
}

// releaseFromList is called when a reception leaves its receiver's rx
// list; the record recycles once the delivery event (if any) has fired.
func (m *Medium) releaseFromList(rx *reception) {
	rx.inList = false
	if !rx.hasEvent {
		m.recycleRX(rx)
	}
}

func (m *Medium) acquireTX() *transmission {
	if tx := m.txFree; tx != nil {
		m.txFree = tx.next
		*tx = transmission{m: m}
		return tx
	}
	tx := m.txArena.New()
	tx.m = m
	return tx
}

func (m *Medium) recycleTX(tx *transmission) {
	tx.f = Frame{}
	tx.next = m.txFree
	m.txFree = tx
}

func (m *Medium) acquirePS() *pendingSend {
	if ps := m.psFree; ps != nil {
		m.psFree = ps.next
		ps.next = nil
		return ps
	}
	ps := m.psArena.New()
	ps.m = m
	return ps
}

func (m *Medium) recyclePS(ps *pendingSend) {
	ps.f = Frame{}
	ps.next = m.psFree
	m.psFree = ps
}

func (m *Medium) acquireBatch() *deliveryBatch {
	if b := m.dbFree; b != nil {
		m.dbFree = b.next
		b.next = nil
		return b
	}
	b := m.dbArena.New()
	b.m = m
	return b
}

func (m *Medium) recycleBatch(b *deliveryBatch) {
	b.tx = nil
	b.rxs = b.rxs[:0]
	b.next = m.dbFree
	m.dbFree = b
}

// Send transmits a frame from f.Src. The sender carrier-senses first:
// while the channel around it is busy (its own transmission or an audible
// reception in progress) the frame is deferred with random backoff, up to
// maxCSMAAttempts times. Delivery to in-range receivers happens after
// airtime plus propagation delay, subject to loss and collisions (hidden
// terminals still collide). Sending from an unregistered node is a no-op.
func (m *Medium) Send(f Frame) {
	m.trySend(f, 0)
	// Message-duplication fault: occasionally transmit a second copy of
	// the frame. The copy contends for the channel like any transmission
	// (it serializes behind the original via txBusyUntil). Randomness is
	// drawn only when the injector is live and returns a positive
	// probability, so nominal runs consume an unchanged RNG sequence.
	if m.faults != nil {
		if p := m.faults.DuplicateProb(m.sched.Now()); p > 0 && m.rng.Float64() < p {
			m.trySend(f, 0)
		}
	}
}

// channelBusyUntil returns when the medium around the node goes idle: the
// latest end among audible in-flight receptions and its own transmission.
func (m *Medium) channelBusyUntil(n *nodeState) time.Duration {
	now := m.sched.Now()
	busy := time.Duration(0)
	if n.txBusyUntil > now {
		busy = n.txBusyUntil
	}
	kept := n.rx[:0]
	for _, r := range n.rx {
		if r.end <= now {
			m.releaseFromList(r)
			continue
		}
		kept = append(kept, r)
		if r.start <= now && r.end > busy {
			busy = r.end
		}
	}
	for i := len(kept); i < len(n.rx); i++ {
		n.rx[i] = nil
	}
	n.rx = kept
	return busy
}

// pendingSendFire retries a CSMA-deferred frame when its backoff expires.
func pendingSendFire(arg any) {
	ps := arg.(*pendingSend)
	m, f, attempt := ps.m, ps.f, ps.attempt
	m.recyclePS(ps)
	m.trySend(f, attempt)
}

func (m *Medium) trySend(f Frame, attempt int) {
	src, ok := m.nodes[f.Src]
	if !ok {
		return
	}
	if f.Bits <= 0 {
		f.Bits = DefaultFrameBits
	}

	// Every medium event of this frame — CSMA retry, delivery batch,
	// receptions, tx-done — is scheduled on the shard owning the sender's
	// region, so the sending shard's heap carries its own traffic.
	sched := m.sched
	if len(m.shardScheds) > 0 {
		sched = m.shardScheds[src.shard]
	}

	now := m.sched.Now()
	if !m.params.DisableCSMA && attempt < maxCSMAAttempts {
		if busyUntil := m.channelBusyUntil(src); busyUntil > now {
			backoff := time.Duration(m.rng.Float64() * float64(m.params.CSMASlot) * float64(uint(1)<<uint(min(attempt, 4))))
			ps := m.acquirePS()
			ps.f = f
			ps.attempt = attempt + 1
			sched.AtEventOwned(busyUntil+backoff, simtime.OwnerRadio, pendingSendFire, ps)
			return
		}
	}

	// Transmission commit: the frame is definitely going on the air now,
	// so it gets its transmission id (deferred copies above carry ID 0
	// until they come back through here).
	m.frameSeq++
	f.ID = m.frameSeq

	start := now
	if src.txBusyUntil > start {
		start = src.txBusyUntil
	}
	airtime := m.Airtime(f.Bits)
	end := start + airtime
	src.txBusyUntil = end

	if m.stats != nil {
		m.stats.RecordSend(f.Kind, f.Bits)
	}
	if bus := m.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: start, Type: obs.EvFrameSent, Mote: int(f.Src), Peer: int(f.Dst),
			Pos: src.pos, Kind: f.Kind, Bits: f.Bits,
			Origin: int(f.Corr.Origin), Seq: uint64(f.Corr.Seq), Frame: f.ID,
		})
	}

	tx := m.acquireTX()
	var batch *deliveryBatch
	if !m.params.PerReceiverDelivery {
		batch = m.acquireBatch()
		batch.tx = tx
	}
	deliverAt := end + m.params.PropDelay
	// lookahead is the conservative bound boundary deliveries must clear:
	// one packet time. deliverAt - now ≥ airtime + PropDelay always holds
	// (start ≥ now), which is exactly what lets a free-running conservative
	// executor advance a shard to min(neighbor horizons) + lookahead.
	lookahead := airtime + m.params.PropDelay
	crossesShard := false
	intended := 0
	// Neighbors is exactly the in-range receiver set in ascending id
	// order — the same nodes the old full-field scan selected — and it is
	// cached, so the per-frame cost is O(receivers).
	for _, id := range m.Neighbors(f.Src) {
		if m.faults != nil && !m.faults.Linked(start, f.Src, id) {
			// Partition fault: the link is severed, so the frame neither
			// reaches this receiver nor occupies its channel.
			continue
		}
		dst := m.nodes[id]
		isTarget := f.Dst == Broadcast || f.Dst == id
		if isTarget {
			intended++
		}
		cross := len(m.shardScheds) > 0 && dst.shard != src.shard
		if isTarget && cross {
			m.noteBoundary(src.shard, dst.shard, deliverAt+shardMutSkew, now, lookahead)
			crossesShard = true
		}
		if rx := m.scheduleReception(dst, f, tx, batch, start, end, isTarget); rx != nil {
			// Per-receiver reference path: boundary receptions carry the
			// shardmut skew (zero in nominal builds).
			at := deliverAt
			if cross {
				at += shardMutSkew
			}
			sched.AtEventOwned(at, simtime.OwnerRadio, receptionDone, rx)
		}
	}
	if intended == 0 {
		// Nobody could ever receive it: record immediately. No target
		// reception references tx, so it recycles here.
		if m.stats != nil {
			m.stats.RecordUndelivered(f.Kind)
		}
		m.emitUndelivered(m.sched.Now(), f, src.pos)
		m.recycleTX(tx)
		if batch != nil {
			m.recycleBatch(batch)
		}
		return
	}
	tx.f = f
	tx.pos = src.pos
	if batch != nil {
		// One event delivers the whole batch in id order and then runs the
		// undelivered check — the same total order the per-receiver events
		// formed as a contiguous same-timestamp block. A batch with any
		// boundary reception carries the shardmut skew as a whole (zero in
		// nominal builds), mirroring the per-receiver path's divergence.
		at := deliverAt
		if crossesShard {
			at += shardMutSkew
		}
		sched.AtEventOwned(at, simtime.OwnerRadio, batchDeliver, batch)
		return
	}
	// After the last possible delivery, check whether anyone got it. The
	// deliveries share this timestamp but were scheduled first, so they
	// fire first and the check observes the final delivered count.
	sched.AtEventOwned(deliverAt, simtime.OwnerRadio, transmissionDone, tx)
}

// batchDeliver resolves every target reception of one frame in ascending
// receiver-id order, then the sender-side undelivered check. Each record's
// pool bookkeeping happens before its receiver callback runs (callbacks
// may send frames that reenter the medium and prune rx lists); the batch
// itself recycles only after the loop, so reentrant sends acquire distinct
// batch records.
func batchDeliver(arg any) {
	b := arg.(*deliveryBatch)
	m, tx := b.m, b.tx
	for i, rx := range b.rxs {
		b.rxs[i] = nil
		m.deliverReception(rx)
	}
	b.rxs = b.rxs[:0]
	if tx.delivered == 0 {
		if m.stats != nil {
			m.stats.RecordUndelivered(tx.f.Kind)
		}
		m.emitUndelivered(m.sched.Now(), tx.f, tx.pos)
	}
	m.recycleTX(tx)
	m.recycleBatch(b)
}

// transmissionDone runs the undelivered check after a frame's last
// possible delivery and returns the transmission record to the pool.
func transmissionDone(arg any) {
	tx := arg.(*transmission)
	m := tx.m
	if tx.delivered == 0 {
		if m.stats != nil {
			m.stats.RecordUndelivered(tx.f.Kind)
		}
		m.emitUndelivered(m.sched.Now(), tx.f, tx.pos)
	}
	m.recycleTX(tx)
}

// scheduleReception models the frame occupying the channel at the receiver
// during [start, end] and queues its delivery at end+PropDelay unless the
// receiver is not a target. On the batched path the reception joins the
// frame's delivery batch and nil is returned; on the per-receiver
// reference path the pending reception is returned for the caller to
// schedule (trySend routes it to the sending shard's scheduler).
// Non-target receivers still experience channel occupancy (their concurrent
// receptions collide) but do not receive or account the frame.
func (m *Medium) scheduleReception(dst *nodeState, f Frame, tx *transmission, batch *deliveryBatch, start, end time.Duration, isTarget bool) *reception {
	rx := m.acquireRX()
	rx.start, rx.end = start, end

	if !m.params.DisableCollisions {
		// Corrupt any overlapping in-flight receptions, and this one.
		kept := dst.rx[:0]
		for _, other := range dst.rx {
			if other.end > m.sched.Now() || other.end >= start {
				kept = append(kept, other)
			} else {
				m.releaseFromList(other)
			}
		}
		for i := len(kept); i < len(dst.rx); i++ {
			dst.rx[i] = nil
		}
		dst.rx = kept
		for _, other := range dst.rx {
			if other.start < end && start < other.end {
				other.corrupted = true
				rx.corrupted = true
			}
		}
	}
	rx.inList = true
	dst.rx = append(dst.rx, rx)

	if !isTarget {
		return nil
	}

	lossProb := m.params.LossProb
	if m.faults != nil {
		// The override changes only the threshold, never the draw count,
		// so runs with and without step/ramp loss faults stay comparable
		// draw-for-draw until the first divergent outcome.
		lossProb = m.faults.LossProb(start, lossProb)
	}
	// The loss draw stays here, at schedule time in ascending receiver-id
	// order, on both delivery paths — RNG draw order is part of the traces'
	// byte-identity contract. Chaos loss/partition/duplication faults are
	// likewise applied per receiver regardless of batching.
	rx.lost = m.rng.Float64() < lossProb
	rx.dst = dst
	rx.f = f
	rx.tx = tx
	rx.hasEvent = true
	if batch != nil {
		batch.rxs = append(batch.rxs, rx)
		return nil
	}
	return rx
}

// receptionDone resolves one target reception on the per-receiver
// reference path.
func receptionDone(arg any) {
	rx := arg.(*reception)
	rx.m.deliverReception(rx)
}

// deliverReception resolves one target reception at its arrival time:
// collision corruption, iid loss, or delivery to the receiver callback.
// Pool bookkeeping happens before the receiver callback runs, because the
// callback may send frames that reenter the medium and prune rx lists.
func (m *Medium) deliverReception(rx *reception) {
	dst, f, tx := rx.dst, rx.f, rx.tx
	corrupted, lost := rx.corrupted, rx.lost
	rx.hasEvent = false
	rx.dst = nil
	rx.f = Frame{}
	rx.tx = nil
	if !rx.inList {
		m.recycleRX(rx)
	}
	switch {
	case corrupted:
		if m.stats != nil {
			m.stats.RecordLoss(f.Kind, trace.LossCollision)
		}
		m.emitAtReceiver(obs.EvFrameLost, dst, f, "collision")
	case lost:
		if m.stats != nil {
			m.stats.RecordLoss(f.Kind, trace.LossRandom)
		}
		m.emitAtReceiver(obs.EvFrameLost, dst, f, "random")
	default:
		tx.delivered++
		if m.stats != nil {
			m.stats.RecordReceive(f.Kind)
		}
		m.emitAtReceiver(obs.EvFrameReceived, dst, f, "")
		if dst.recv != nil {
			dst.recv(f)
		}
	}
}

// emitAtReceiver publishes a reception-side frame event (received/lost)
// at the receiving node.
func (m *Medium) emitAtReceiver(t obs.EventType, dst *nodeState, f Frame, cause string) {
	if bus := m.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: m.sched.Now(), Type: t, Mote: int(dst.id), Peer: int(f.Src),
			Pos: dst.pos, Kind: f.Kind, Bits: f.Bits, Cause: cause,
			Origin: int(f.Corr.Origin), Seq: uint64(f.Corr.Seq), Frame: f.ID,
		})
	}
}

// emitUndelivered publishes a frame that reached no receiver.
func (m *Medium) emitUndelivered(at time.Duration, f Frame, pos geom.Point) {
	if bus := m.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: at, Type: obs.EvFrameUndelivered, Mote: int(f.Src), Peer: int(f.Dst),
			Pos: pos, Kind: f.Kind, Bits: f.Bits,
			Origin: int(f.Corr.Origin), Seq: uint64(f.Corr.Seq), Frame: f.ID,
		})
	}
}
