// Package radio simulates the shared wireless medium of a mote network: a
// disk-connectivity broadcast channel with finite bit rate (50 kb/s for MICA
// motes), propagation delay, iid channel loss, and receiver-side collision
// corruption. There is no MAC-layer reliability, matching the paper's
// observation that "no reliability is implemented in the MAC layer of the
// MICA motes"; collisions therefore grow with offered traffic.
//
// The send/receive path is the hottest code in the simulator (every frame
// fans out to O(neighbors) receptions), so it is allocation-free in steady
// state: reception, transmission, and CSMA-retry records are pooled on
// intrusive free lists, their completion events are scheduled through the
// scheduler's typed-payload API (no closure captures), spatial queries
// append into reusable scratch, and cell buckets are kept id-sorted at
// insert so range queries merge instead of sorting per call.
//
// Execution contexts: all mutable send-path state (RNG, stats, obs bus,
// record pools, airtime memo, frame sequence) lives in a shardCtx. The
// serial and deterministic-sharded engines use a single context (ctx0);
// the free-running parallel engine (EnableParallel) gives every shard its
// own, so shard goroutines never share a draw stream, a pool, or a
// counter. In parallel mode CSMA occupancy is shard-local: a cross-shard
// frame does not occupy or collide at remote receivers — its target
// receptions cross through per-pair outboxes drained at the window
// barrier (FlushBoundary), with loss drawn on the sender's stream at send
// time. That approximation is what the statistical-equivalence battery in
// internal/eval validates against the deterministic reference.
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"envirotrack/internal/arena"
	"envirotrack/internal/geom"
	"envirotrack/internal/obs"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// NodeID identifies a mote on the medium.
type NodeID int

// Broadcast is the destination address for frames intended for every node
// in communication range.
const Broadcast NodeID = -1

// DefaultBitRate is the MICA mote channel capacity in bits per second.
const DefaultBitRate = 50_000.0

// DefaultFrameBits approximates a small TinyOS active message (36-byte
// frame) on the air.
const DefaultFrameBits = 36 * 8

// Corr is the causal-correlation header of a logical message: the mote
// that originated it and an origin-scoped sequence number. The pair
// identifies one logical message end to end — across routing hops, CSMA
// retries, and chaos duplications — and is carried into every obs event
// the message's frames produce, which is what lets the SpanSink and
// ettrace reassemble per-report lifecycles. The label a message concerns
// travels on the span-opening report_sent event, not here: Corr rides in
// every Frame copied per receiver on broadcast, so it is kept to eight
// bytes. The zero Corr marks uncorrelated traffic (sequence numbers are
// 1-based) and costs nothing.
type Corr struct {
	Origin int32
	Seq    uint32
}

// Frame is one transmission. Payload is an opaque protocol message owned by
// the upper layers.
type Frame struct {
	Kind    trace.Kind
	Src     NodeID
	Dst     NodeID // Broadcast or a specific node
	Bits    int    // size on the air; DefaultFrameBits if zero
	Payload any
	// Corr is the correlation header of the logical message this frame
	// carries (zero for uncorrelated traffic).
	Corr Corr
	// ID is the medium-stamped transmission id, assigned when the frame
	// actually goes on the air (CSMA-deferred copies are stamped at
	// retransmission, chaos duplicates get distinct ids). 1-based; 0
	// means not yet transmitted. In parallel mode the shard index is
	// packed into the top 16 bits so ids stay unique across shard-local
	// counters.
	ID uint64
}

// Params configures the medium.
type Params struct {
	// CommRadius is the communication radius in grid units.
	CommRadius float64
	// BitRate is the channel capacity in bits/second (DefaultBitRate if 0).
	BitRate float64
	// PropDelay is the fixed propagation + modem turnaround delay added to
	// each frame's airtime.
	PropDelay time.Duration
	// LossProb is the iid per-receiver frame loss probability in [0,1].
	LossProb float64
	// DisableCollisions turns off the receiver-side collision model.
	DisableCollisions bool
	// DisableCSMA turns off carrier sensing: senders then transmit
	// immediately even when the channel around them is busy. The MICA
	// radio stack carrier-senses (it lacks MAC *reliability*, not CSMA),
	// so CSMA is on by default; hidden terminals still collide.
	DisableCSMA bool
	// CSMASlot is the carrier-sense backoff slot (default 1ms).
	CSMASlot time.Duration
	// PerReceiverDelivery schedules one scheduler event per target receiver
	// (the pre-batching reference path) instead of one pooled delivery
	// batch per frame. The two paths produce byte-identical traces — the
	// equivalence tests pin this — so the flag exists only as the reference
	// implementation for differential testing.
	PerReceiverDelivery bool
}

func (p Params) withDefaults() Params {
	if p.BitRate <= 0 {
		p.BitRate = DefaultBitRate
	}
	if p.CSMASlot <= 0 {
		p.CSMASlot = time.Millisecond
	}
	return p
}

// maxCSMAAttempts bounds carrier-sense deferrals; after that the frame is
// transmitted regardless (bounded latency, like a saturated CSMA MAC).
const maxCSMAAttempts = 6

// Receiver is the callback invoked on successful frame reception. It runs
// on the scheduler thread at the frame's arrival time.
type Receiver func(Frame)

// FaultInjector lets a fault-injection harness perturb the medium while a
// run executes. All methods are consulted on the scheduler thread. The
// contract that keeps nominal runs bit-identical: with no injector
// attached the medium draws exactly the same RNG sequence as before the
// hook existed, and an attached injector only adds draws when
// DuplicateProb returns > 0. In parallel mode the methods are called from
// concurrent shard goroutines, so implementations must be read-only over
// immutable schedule data (internal/chaos's injector is).
type FaultInjector interface {
	// LossProb returns the effective iid per-receiver loss probability at
	// sim time now, given the configured base probability.
	LossProb(now time.Duration, base float64) float64
	// Linked reports whether a frame from src can reach dst at sim time
	// now; false models a network partition severing the link.
	Linked(now time.Duration, src, dst NodeID) bool
	// DuplicateProb returns the probability that a frame transmission is
	// duplicated (sent twice) at sim time now. Zero disables duplication
	// without consuming randomness.
	DuplicateProb(now time.Duration) float64
}

// SetFaultInjector attaches a fault injector to the medium; nil detaches
// it and restores nominal behaviour.
func (m *Medium) SetFaultInjector(fi FaultInjector) { m.faults = fi }

// shardCtx is one execution context's mutable send-path state: the RNG
// stream, stats accumulator, obs bus, record pools and arenas, airtime
// memo, frame-id counter, and (parallel mode only) the cross-shard
// outboxes. The serial and deterministic-sharded engines run everything
// through the medium's embedded ctx0; the parallel engine owns one
// shardCtx per shard so nothing mutable is shared between shard
// goroutines.
type shardCtx struct {
	m     *Medium
	shard int32
	sched *simtime.Scheduler
	rng   *rand.Rand
	stats *trace.Stats
	bus   *obs.Bus

	// Free lists pooling the per-frame records of the send path. Refills
	// come from context-local arenas, so a run's records occupy contiguous
	// blocks instead of scattered heap objects.
	rxFree  *reception
	txFree  *transmission
	psFree  *pendingSend
	dbFree  *deliveryBatch
	ceFree  *crossEvent
	rxArena arena.Arena[reception]
	txArena arena.Arena[transmission]
	psArena arena.Arena[pendingSend]
	dbArena arena.Arena[deliveryBatch]
	ceArena arena.Arena[crossEvent]

	// Airtime memo for the handful of fixed frame sizes a run uses.
	airtimeBits [8]int
	airtimeDur  [8]time.Duration
	airtimeN    int

	// frameSeq numbers actual transmissions (Frame.ID). Stamped at
	// transmission commit in trySend — after CSMA deferral — so the
	// counter advances identically on the batched and per-receiver
	// delivery paths and ids are deterministic per run.
	frameSeq uint64

	// out[j] buffers this shard's cross-shard target receptions destined
	// for shard j during the current parallel window; FlushBoundary drains
	// it at the barrier. Nil outside parallel mode.
	out [][]crossRec
	// outDirty lists the destination shards whose outbox went non-empty
	// this window (outMark dedups), so FlushBoundary visits only the
	// (sender, receiver) pairs that actually buffered frames instead of
	// scanning all k^2 outboxes. Drained ascending to preserve the full
	// scan's deterministic order.
	outDirty []int32
	outMark  []bool

	// violations counts this shard's conservative-lookahead violations in
	// parallel mode (det mode accounts on the medium).
	violations uint64
}

// Medium is the shared channel. It is driven entirely by the simulation
// scheduler; outside parallel mode it is not safe for concurrent use.
//
// Topology is append-only: nodes register once via AddNode and never
// move. Spatial queries run against a uniform-grid spatial hash with cell
// size CommRadius, so resolving the nodes near a point costs O(found)
// instead of a scan over the whole field.
type Medium struct {
	sched  *simtime.Scheduler
	params Params

	nodes map[NodeID]*nodeState
	order []NodeID // node ids, kept ascending by insertion-time merge
	// faults, when non-nil, overrides loss probability, severs partitioned
	// links, and duplicates frames (chaos harness). Nil in nominal runs.
	faults FaultInjector

	// cells is the spatial hash: nodes bucketed by grid cell of size
	// cellSize (= CommRadius, or 1 when CommRadius is unset). Entries
	// carry the position so range filtering never touches the nodes map,
	// and each bucket is kept id-sorted at insert so queries k-way merge
	// the candidate buckets instead of sorting per call.
	cells    map[cellKey][]cellEntry
	cellSize float64
	// neighbors caches Neighbors results per node. AddNode invalidates it
	// granularly: only entries of nodes within CommRadius of the new node
	// (the only lists the newcomer can appear in) are dropped. A parallel
	// run pre-resolves every entry (PrebuildNeighbors) so the map is
	// read-only while shard goroutines execute.
	neighbors map[NodeID][]NodeID

	// Query scratch, reused across calls (spatial queries run on the
	// coordinator/setup path, never concurrently).
	queryBuckets [][]cellEntry
	queryCur     []int
	scratchIDs   []NodeID

	// ctx0 is the single execution context of the serial and
	// deterministic-sharded engines; parCtxs (nil outside parallel mode)
	// are the per-shard contexts of the free-running parallel engine.
	ctx0    shardCtx
	parCtxs []*shardCtx

	// Spatial sharding (SetSharding). shardScheds routes each frame's
	// medium events — CSMA retries, delivery batches, receptions, tx-done
	// checks — onto the scheduler shard owning the sending node's region;
	// shardOfPos maps a position to its shard. shardMail is the k x k
	// per-pair mailbox accounting of boundary frames (target receptions
	// whose sender and receiver live in different shards), and
	// lookaheadViolations counts deliveries scheduled closer to the
	// sender's committed horizon than one packet time (airtime +
	// propagation) — the conservative-lookahead invariant; always zero
	// outside the shardmut mutation build.
	shardScheds         []*simtime.Scheduler
	shardOfPos          func(geom.Point) int32
	shardMail           []ShardMailbox
	lookaheadViolations uint64
}

// ShardMailbox accounts one ordered shard pair's boundary traffic.
type ShardMailbox struct {
	// Frames counts target receptions sent from the pair's first shard
	// to a receiver owned by its second.
	Frames uint64
	// MinSlack is the smallest (delivery time - transmission commit time)
	// over those receptions: the margin by which the earliest boundary
	// delivery cleared the sending shard's committed horizon. Meaningless
	// while Frames is 0.
	MinSlack time.Duration
}

// cellKey addresses one bucket of the spatial hash.
type cellKey struct{ x, y int }

// cellEntry is one node in a spatial-hash bucket.
type cellEntry struct {
	id  NodeID
	pos geom.Point
}

type nodeState struct {
	id   NodeID
	pos  geom.Point
	recv Receiver
	// shard is the scheduler shard owning this node's region (0 when the
	// medium is unsharded); resolved once at registration.
	shard int32
	// txBusyUntil serializes a node's own transmissions: a mote has one
	// radio and cannot transmit two frames at once.
	txBusyUntil time.Duration
	// rx tracks in-flight receptions for collision detection.
	rx []*reception
}

// reception is one frame occupying one receiver's channel. Records are
// pooled: a reception is recycled once it is out of the receiver's rx list
// (inList) and its delivery event, if any, has fired (hasEvent).
type reception struct {
	start     time.Duration
	end       time.Duration
	corrupted bool
	lost      bool // iid loss, drawn at schedule time
	inList    bool
	hasEvent  bool
	sc        *shardCtx
	dst       *nodeState
	f         Frame
	tx        *transmission
	next      *reception
}

// transmission tracks whether any receiver got a copy, for the paper's
// "sent but never received on any other mote" loss metric. Pooled; the
// undelivered-check event fires after every delivery of the frame (same
// timestamp, later seq) and recycles the record.
type transmission struct {
	delivered int
	sc        *shardCtx
	f         Frame
	pos       geom.Point
	next      *transmission
}

// pendingSend is a CSMA-deferred frame awaiting its backoff timer. Pooled.
type pendingSend struct {
	sc      *shardCtx
	f       Frame
	attempt int
	next    *pendingSend
}

// deliveryBatch is one frame's batched fan-out: the target receptions of a
// transmission, delivered in ascending receiver-id order by a single
// scheduler event at arrival time (airtime is computed once and shared).
// The old path scheduled one event per receiver; the batch keeps the exact
// firing order those events had — they occupied a contiguous (at, seq)
// block — and folds the trailing undelivered check in at the end, so
// traces are byte-identical at O(receivers) fewer heap events. Pooled.
type deliveryBatch struct {
	sc   *shardCtx
	tx   *transmission
	rxs  []*reception
	next *deliveryBatch
}

// crossRec is one cross-shard target reception buffered in the sending
// shard's outbox during a parallel window: the loss outcome is already
// drawn (on the sender's stream, in ascending receiver-id order), so only
// the receiver-side occupancy, accounting, and callback remain to run on
// the receiving shard. start/end span the frame's airtime at the receiver
// so FlushBoundary can insert it into the receiver's channel-occupancy
// list for collision detection.
type crossRec struct {
	dst        *nodeState
	f          Frame
	start, end time.Duration
	at         time.Duration
	lost       bool
}

// crossEvent is the pooled receiver-shard form of a crossRec, scheduled
// by FlushBoundary onto the receiving shard's heap at the delivery time.
// rx is the frame's occupancy record in the receiver's in-flight list;
// its corrupted flag resolves at delivery.
type crossEvent struct {
	sc   *shardCtx
	dst  *nodeState
	f    Frame
	rx   *reception
	lost bool
	next *crossEvent
}

// New creates a medium on the given scheduler. rng must not be nil; stats
// may be nil to disable accounting.
func New(s *simtime.Scheduler, p Params, rng *rand.Rand, stats *trace.Stats) *Medium {
	p = p.withDefaults()
	cellSize := p.CommRadius
	if cellSize <= 0 {
		cellSize = 1
	}
	m := &Medium{
		sched:     s,
		params:    p,
		nodes:     make(map[NodeID]*nodeState),
		cells:     make(map[cellKey][]cellEntry),
		cellSize:  cellSize,
		neighbors: make(map[NodeID][]NodeID),
	}
	m.ctx0.m = m
	m.ctx0.sched = s
	m.ctx0.rng = rng
	m.ctx0.stats = stats
	return m
}

// Params returns the medium configuration (with defaults applied).
func (m *Medium) Params() Params {
	return m.params
}

// SetObserver attaches the observability bus the medium emits frame
// events through. A nil bus disables emission. In parallel mode the
// per-shard buses passed to EnableParallel take precedence.
func (m *Medium) SetObserver(bus *obs.Bus) { m.ctx0.bus = bus }

// SetSharding attaches the medium to a spatially sharded scheduler: each
// frame's medium events are scheduled on the shard owning the sending
// node's region (shardOfPos resolves a position's shard, and scheds lists
// the shard schedulers in shard order). Target receptions whose receiver
// lives in a different shard than the sender are classified as boundary
// traffic and accounted in per-pair mailboxes, with their delivery slack
// checked against the conservative lookahead of one packet time. Nodes
// already registered are re-resolved. Passing nil scheds detaches
// sharding.
func (m *Medium) SetSharding(scheds []*simtime.Scheduler, shardOfPos func(geom.Point) int32) {
	if len(scheds) == 0 {
		m.shardScheds, m.shardOfPos, m.shardMail = nil, nil, nil
		m.parCtxs = nil
		m.lookaheadViolations = 0
		for _, n := range m.nodes {
			n.shard = 0
		}
		return
	}
	m.shardScheds = scheds
	m.shardOfPos = shardOfPos
	m.shardMail = make([]ShardMailbox, len(scheds)*len(scheds))
	m.lookaheadViolations = 0
	for _, n := range m.nodes {
		n.shard = shardOfPos(n.pos)
	}
}

// ShardRuntime carries one shard's execution resources for a parallel
// (free-running) run: the shard's deterministic RNG stream (derived via
// simtime.ShardSeed), its private stats accumulator, and its buffered
// observability lane (nil when the run is unobserved).
type ShardRuntime struct {
	RNG   *rand.Rand
	Stats *trace.Stats
	Bus   *obs.Bus
}

// EnableParallel switches the medium into free-running parallel mode:
// every shard gets its own execution context — RNG stream, stats, obs
// lane, record pools, frame-id counter, and cross-shard outboxes — so
// shard goroutines share no mutable send-path state. SetSharding must
// have been called first, and rts must supply one runtime per shard.
// Before the shard workers start the owner must call PrebuildNeighbors
// (after the last AddNode) so spatial lookups are read-only during the
// run.
func (m *Medium) EnableParallel(rts []ShardRuntime) {
	k := len(m.shardScheds)
	if k == 0 || len(rts) != k {
		panic("radio: EnableParallel needs SetSharding and one ShardRuntime per shard")
	}
	m.parCtxs = make([]*shardCtx, k)
	for i := range rts {
		m.parCtxs[i] = &shardCtx{
			m:       m,
			shard:   int32(i),
			sched:   m.shardScheds[i],
			rng:     rts[i].RNG,
			stats:   rts[i].Stats,
			bus:     rts[i].Bus,
			out:     make([][]crossRec, k),
			outMark: make([]bool, k),
		}
	}
}

// Parallel reports whether the medium runs per-shard execution contexts
// (free-running parallel mode).
func (m *Medium) Parallel() bool { return m.parCtxs != nil }

// ctxOf resolves the execution context owning a shard: the shard's own
// context in parallel mode, the shared ctx0 otherwise.
func (m *Medium) ctxOf(shard int32) *shardCtx {
	if m.parCtxs != nil {
		return m.parCtxs[shard]
	}
	return &m.ctx0
}

// PrebuildNeighbors resolves and caches the neighbor list of every
// registered node. A parallel run calls it once before the shard workers
// start: afterwards Neighbors is a pure map read, safe from concurrent
// shard goroutines.
func (m *Medium) PrebuildNeighbors() {
	for _, id := range m.order {
		m.Neighbors(id)
	}
}

// ShardCount returns the number of scheduler shards the medium routes to
// (1 when unsharded).
func (m *Medium) ShardCount() int {
	if len(m.shardScheds) == 0 {
		return 1
	}
	return len(m.shardScheds)
}

// NodeShard returns the shard owning a node's region (0 when unsharded
// or unknown).
func (m *Medium) NodeShard(id NodeID) int32 {
	if n, ok := m.nodes[id]; ok {
		return n.shard
	}
	return 0
}

// ShardMailboxStat returns the boundary-traffic accounting for the
// ordered shard pair (from, to).
func (m *Medium) ShardMailboxStat(from, to int) ShardMailbox {
	k := len(m.shardScheds)
	if k == 0 || from < 0 || to < 0 || from >= k || to >= k {
		return ShardMailbox{}
	}
	return m.shardMail[from*k+to]
}

// BoundaryFrames sums boundary target receptions over all shard pairs.
func (m *Medium) BoundaryFrames() uint64 {
	var total uint64
	for i := range m.shardMail {
		total += m.shardMail[i].Frames
	}
	return total
}

// LookaheadViolations counts boundary deliveries scheduled less than one
// packet time (the frame's airtime plus propagation delay) after the
// sending shard's committed horizon. The medium's physics make this
// impossible — a frame cannot arrive before it has been on the air — so
// the counter stays zero except under the shardmut mutation build, which
// deliberately shaves the bound to prove the differential suite notices.
// A parallel run treats any violation as fatal (the lookahead bound is
// what licenses free-running); the network layer hard-fails the run.
func (m *Medium) LookaheadViolations() uint64 {
	total := m.lookaheadViolations
	for _, sc := range m.parCtxs {
		total += sc.violations
	}
	return total
}

// noteBoundary accounts one boundary target reception from shard `from`
// to shard `to`, delivered at rxAt for a transmission committed at now;
// bound is the frame's conservative lookahead (airtime + propagation).
// It reports whether the delivery violates the bound; the caller
// attributes the violation (medium-global in det mode, per-shard in
// parallel mode).
func (m *Medium) noteBoundary(from, to int32, rxAt, now, bound time.Duration) bool {
	st := &m.shardMail[int(from)*len(m.shardScheds)+int(to)]
	slack := rxAt - now
	if st.Frames == 0 || slack < st.MinSlack {
		st.MinSlack = slack
	}
	st.Frames++
	return slack < bound
}

// AddNode registers a stationary node. It returns an error if the id is
// already present. Registration is the only topology mutation the medium
// supports (nodes never move or deregister), so it inserts the node into
// the spatial hash — keeping both the global order and its cell bucket
// sorted by id — and invalidates exactly the cached neighbor lists the
// newcomer joins: those of nodes within CommRadius of pos.
func (m *Medium) AddNode(id NodeID, pos geom.Point, recv Receiver) error {
	if _, ok := m.nodes[id]; ok {
		return fmt.Errorf("radio: node %d already registered", id)
	}
	n := &nodeState{id: id, pos: pos, recv: recv}
	if m.shardOfPos != nil {
		n.shard = m.shardOfPos(pos)
	}
	m.nodes[id] = n
	i, _ := slices.BinarySearch(m.order, id)
	m.order = slices.Insert(m.order, i, id)
	key := m.cellOf(pos)
	bucket := m.cells[key]
	j, _ := slices.BinarySearchFunc(bucket, id, func(e cellEntry, id NodeID) int {
		switch {
		case e.id < id:
			return -1
		case e.id > id:
			return 1
		default:
			return 0
		}
	})
	m.cells[key] = slices.Insert(bucket, j, cellEntry{id: id, pos: pos})
	m.scratchIDs = m.appendNodesWithin(m.scratchIDs[:0], pos, m.params.CommRadius)
	for _, nid := range m.scratchIDs {
		delete(m.neighbors, nid)
	}
	return nil
}

// cellOf maps a position to its spatial-hash bucket.
func (m *Medium) cellOf(p geom.Point) cellKey {
	return cellKey{
		x: int(math.Floor(p.X / m.cellSize)),
		y: int(math.Floor(p.Y / m.cellSize)),
	}
}

// appendNodesWithin appends all node ids within radius r of p (inclusive),
// in ascending id order, to dst and returns the extended slice. It scans
// only the spatial-hash cells intersecting the query disk; because buckets
// are id-sorted at insert and a node lives in exactly one bucket, the
// results come out of a k-way merge with no per-call sort. When the query
// radius is so large that the cell window exceeds the node count, it falls
// back to the linear scan over the (sorted) global order, bounding the
// cost at O(n).
func (m *Medium) appendNodesWithin(dst []NodeID, p geom.Point, r float64) []NodeID {
	if r < 0 {
		return dst
	}
	x0 := int(math.Floor((p.X - r) / m.cellSize))
	x1 := int(math.Floor((p.X + r) / m.cellSize))
	y0 := int(math.Floor((p.Y - r) / m.cellSize))
	y1 := int(math.Floor((p.Y + r) / m.cellSize))
	spanX, spanY := x1-x0+1, y1-y0+1
	if spanX > len(m.order) || spanY > len(m.order) || spanX*spanY > len(m.order) {
		for _, id := range m.order {
			if m.nodes[id].pos.Within(p, r) {
				dst = append(dst, id)
			}
		}
		return dst
	}
	buckets, cur := m.queryBuckets[:0], m.queryCur[:0]
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if c := m.cells[cellKey{x: x, y: y}]; len(c) > 0 {
				buckets = append(buckets, c)
				cur = append(cur, 0)
			}
		}
	}
	m.queryBuckets, m.queryCur = buckets, cur
	// Each cursor rests on its bucket's next in-range entry (or past the
	// end), so Within is evaluated exactly once per candidate.
	for i := range buckets {
		for cur[i] < len(buckets[i]) && !buckets[i][cur[i]].pos.Within(p, r) {
			cur[i]++
		}
	}
	for {
		best := -1
		for i := range buckets {
			if cur[i] < len(buckets[i]) &&
				(best < 0 || buckets[i][cur[i]].id < buckets[best][cur[best]].id) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, buckets[best][cur[best]].id)
		cur[best]++
		for cur[best] < len(buckets[best]) && !buckets[best][cur[best]].pos.Within(p, r) {
			cur[best]++
		}
	}
	// Drop the bucket references so retained scratch can't pin stale views
	// of buckets that later inserts reallocate.
	for i := range buckets {
		buckets[i] = nil
	}
	m.queryBuckets = buckets[:0]
	return dst
}

// Position returns a node's location.
func (m *Medium) Position(id NodeID) (geom.Point, bool) {
	n, ok := m.nodes[id]
	if !ok {
		return geom.Point{}, false
	}
	return n.pos, true
}

// NodeIDs returns all registered node ids in ascending order.
func (m *Medium) NodeIDs() []NodeID {
	out := make([]NodeID, len(m.order))
	copy(out, m.order)
	return out
}

// Neighbors returns the nodes within communication radius of id, in
// ascending id order. Results are cached; the cache stays correct because
// the topology only mutates at registration time (AddNode), which drops
// exactly the cached lists the new node appears in. Resolution goes
// through the spatial hash, so an uncached lookup costs O(neighbors), not
// O(total nodes). Callers must not mutate the returned slice.
func (m *Medium) Neighbors(id NodeID) []NodeID {
	if nb, ok := m.neighbors[id]; ok {
		return nb
	}
	n, ok := m.nodes[id]
	if !ok {
		return nil
	}
	m.scratchIDs = m.appendNodesWithin(m.scratchIDs[:0], n.pos, m.params.CommRadius)
	count := 0
	for _, other := range m.scratchIDs {
		if other != id {
			count++
		}
	}
	var nb []NodeID
	if count > 0 {
		nb = make([]NodeID, 0, count)
		for _, other := range m.scratchIDs {
			if other != id {
				nb = append(nb, other)
			}
		}
	}
	m.neighbors[id] = nb
	return nb
}

// NodesNear returns node ids within radius r of point p, ascending, in a
// freshly allocated slice. It is served by the spatial hash: cost is
// proportional to the nodes found (plus the cell window), not the field
// size. Hot paths should prefer AppendNodesNear with reused scratch.
func (m *Medium) NodesNear(p geom.Point, r float64) []NodeID {
	return m.appendNodesWithin(nil, p, r)
}

// AppendNodesNear appends the node ids within radius r of p (inclusive,
// ascending) to dst and returns the extended slice, allocating only when
// dst lacks capacity. It is the scratch-slice variant of NodesNear for
// per-event callers: pass the previous call's slice re-sliced to [:0].
func (m *Medium) AppendNodesNear(dst []NodeID, p geom.Point, r float64) []NodeID {
	return m.appendNodesWithin(dst, p, r)
}

// InRange reports whether b is within communication radius of a.
func (m *Medium) InRange(a, b NodeID) bool {
	na, ok := m.nodes[a]
	if !ok {
		return false
	}
	nb, ok := m.nodes[b]
	if !ok {
		return false
	}
	return na.pos.Within(nb.pos, m.params.CommRadius)
}

// Airtime returns the channel occupancy of a frame of the given size.
// It is a pure computation (no memo) because protocol layers call it from
// shard goroutines in parallel mode; the send path memoizes per execution
// context instead.
func (m *Medium) Airtime(bits int) time.Duration {
	if bits <= 0 {
		bits = DefaultFrameBits
	}
	return time.Duration(float64(bits) / m.params.BitRate * float64(time.Second))
}

// airtime is the context-memoized airtime of the send path: a run uses a
// handful of fixed frame sizes, so the division is memoized per context.
func (sc *shardCtx) airtime(bits int) time.Duration {
	for i := 0; i < sc.airtimeN; i++ {
		if sc.airtimeBits[i] == bits {
			return sc.airtimeDur[i]
		}
	}
	d := time.Duration(float64(bits) / sc.m.params.BitRate * float64(time.Second))
	if sc.airtimeN < len(sc.airtimeBits) {
		sc.airtimeBits[sc.airtimeN] = bits
		sc.airtimeDur[sc.airtimeN] = d
		sc.airtimeN++
	}
	return d
}

// nextFrameID stamps one transmission commit. Serial and deterministic
// sharded runs use the raw per-run counter; parallel runs pack the shard
// index into the top bits so shard-local counters stay globally unique.
func (sc *shardCtx) nextFrameID() uint64 {
	sc.frameSeq++
	if sc.m.parCtxs != nil {
		return uint64(sc.shard)<<48 | sc.frameSeq
	}
	return sc.frameSeq
}

// lossProbAt resolves the effective iid loss probability at sim time at.
func (m *Medium) lossProbAt(at time.Duration) float64 {
	p := m.params.LossProb
	if m.faults != nil {
		// The override changes only the threshold, never the draw count,
		// so runs with and without step/ramp loss faults stay comparable
		// draw-for-draw until the first divergent outcome.
		p = m.faults.LossProb(at, p)
	}
	return p
}

// --- record pools ---

func (sc *shardCtx) acquireRX() *reception {
	if rx := sc.rxFree; rx != nil {
		sc.rxFree = rx.next
		*rx = reception{sc: sc}
		return rx
	}
	rx := sc.rxArena.New()
	rx.sc = sc
	return rx
}

func (sc *shardCtx) recycleRX(rx *reception) {
	rx.dst = nil
	rx.f = Frame{}
	rx.tx = nil
	rx.next = sc.rxFree
	sc.rxFree = rx
}

// releaseFromList is called when a reception leaves its receiver's rx
// list; the record recycles once the delivery event (if any) has fired.
func releaseFromList(rx *reception) {
	rx.inList = false
	if !rx.hasEvent {
		rx.sc.recycleRX(rx)
	}
}

func (sc *shardCtx) acquireTX() *transmission {
	if tx := sc.txFree; tx != nil {
		sc.txFree = tx.next
		*tx = transmission{sc: sc}
		return tx
	}
	tx := sc.txArena.New()
	tx.sc = sc
	return tx
}

func (sc *shardCtx) recycleTX(tx *transmission) {
	tx.f = Frame{}
	tx.next = sc.txFree
	sc.txFree = tx
}

func (sc *shardCtx) acquirePS() *pendingSend {
	if ps := sc.psFree; ps != nil {
		sc.psFree = ps.next
		ps.next = nil
		return ps
	}
	ps := sc.psArena.New()
	ps.sc = sc
	return ps
}

func (sc *shardCtx) recyclePS(ps *pendingSend) {
	ps.f = Frame{}
	ps.next = sc.psFree
	sc.psFree = ps
}

func (sc *shardCtx) acquireBatch() *deliveryBatch {
	if b := sc.dbFree; b != nil {
		sc.dbFree = b.next
		b.next = nil
		return b
	}
	b := sc.dbArena.New()
	b.sc = sc
	return b
}

func (sc *shardCtx) recycleBatch(b *deliveryBatch) {
	b.tx = nil
	b.rxs = b.rxs[:0]
	b.next = sc.dbFree
	sc.dbFree = b
}

func (sc *shardCtx) acquireCE() *crossEvent {
	if ce := sc.ceFree; ce != nil {
		sc.ceFree = ce.next
		ce.next = nil
		return ce
	}
	ce := sc.ceArena.New()
	ce.sc = sc
	return ce
}

func (sc *shardCtx) recycleCE(ce *crossEvent) {
	ce.dst = nil
	ce.f = Frame{}
	ce.next = sc.ceFree
	sc.ceFree = ce
}

// Send transmits a frame from f.Src. The sender carrier-senses first:
// while the channel around it is busy (its own transmission or an audible
// reception in progress) the frame is deferred with random backoff, up to
// maxCSMAAttempts times. Delivery to in-range receivers happens after
// airtime plus propagation delay, subject to loss and collisions (hidden
// terminals still collide). Sending from an unregistered node is a no-op.
func (m *Medium) Send(f Frame) {
	m.trySend(f, 0)
	// Message-duplication fault: occasionally transmit a second copy of
	// the frame. The copy contends for the channel like any transmission
	// (it serializes behind the original via txBusyUntil). Randomness is
	// drawn only when the injector is live and returns a positive
	// probability, so nominal runs consume an unchanged RNG sequence.
	if m.faults != nil {
		src, ok := m.nodes[f.Src]
		if !ok {
			return
		}
		sc := m.ctxOf(src.shard)
		if p := m.faults.DuplicateProb(sc.sched.Now()); p > 0 && sc.rng.Float64() < p {
			m.trySend(f, 0)
		}
	}
}

// channelBusyUntil returns when the medium around the node goes idle: the
// latest end among audible in-flight receptions and its own transmission.
func (m *Medium) channelBusyUntil(n *nodeState, now time.Duration) time.Duration {
	busy := time.Duration(0)
	if n.txBusyUntil > now {
		busy = n.txBusyUntil
	}
	kept := n.rx[:0]
	for _, r := range n.rx {
		if r.end <= now {
			releaseFromList(r)
			continue
		}
		kept = append(kept, r)
		if r.start <= now && r.end > busy {
			busy = r.end
		}
	}
	for i := len(kept); i < len(n.rx); i++ {
		n.rx[i] = nil
	}
	n.rx = kept
	return busy
}

// pendingSendFire retries a CSMA-deferred frame when its backoff expires.
func pendingSendFire(arg any) {
	ps := arg.(*pendingSend)
	sc, f, attempt := ps.sc, ps.f, ps.attempt
	sc.recyclePS(ps)
	sc.m.trySend(f, attempt)
}

func (m *Medium) trySend(f Frame, attempt int) {
	src, ok := m.nodes[f.Src]
	if !ok {
		return
	}
	if f.Bits <= 0 {
		f.Bits = DefaultFrameBits
	}

	// Every medium event of this frame — CSMA retry, delivery batch,
	// receptions, tx-done — is scheduled on the shard owning the sender's
	// region, so the sending shard's heap carries its own traffic. The
	// execution context supplies the RNG stream, stats, bus, and pools:
	// ctx0 for serial/det runs, the sender's shard context in parallel
	// mode.
	sc := m.ctxOf(src.shard)
	sched := m.sched
	if len(m.shardScheds) > 0 {
		sched = m.shardScheds[src.shard]
	}

	now := sched.Now()
	if !m.params.DisableCSMA && attempt < maxCSMAAttempts {
		if busyUntil := m.channelBusyUntil(src, now); busyUntil > now {
			backoff := time.Duration(sc.rng.Float64() * float64(m.params.CSMASlot) * float64(uint(1)<<uint(min(attempt, 4))))
			ps := sc.acquirePS()
			ps.f = f
			ps.attempt = attempt + 1
			sched.AtEventOwned(busyUntil+backoff, simtime.OwnerRadio, pendingSendFire, ps)
			return
		}
	}

	// Transmission commit: the frame is definitely going on the air now,
	// so it gets its transmission id (deferred copies above carry ID 0
	// until they come back through here).
	f.ID = sc.nextFrameID()

	start := now
	if src.txBusyUntil > start {
		start = src.txBusyUntil
	}
	airtime := sc.airtime(f.Bits)
	end := start + airtime
	src.txBusyUntil = end

	if sc.stats != nil {
		sc.stats.RecordSend(f.Kind, f.Bits)
	}
	if bus := sc.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: start, Type: obs.EvFrameSent, Mote: int(f.Src), Peer: int(f.Dst),
			Pos: src.pos, Kind: f.Kind, Bits: f.Bits,
			Origin: int(f.Corr.Origin), Seq: uint64(f.Corr.Seq), Frame: f.ID,
		})
	}

	tx := sc.acquireTX()
	var batch *deliveryBatch
	if !m.params.PerReceiverDelivery {
		batch = sc.acquireBatch()
		batch.tx = tx
	}
	deliverAt := end + m.params.PropDelay
	// lookahead is the conservative bound boundary deliveries must clear:
	// one packet time. deliverAt - now ≥ airtime + PropDelay always holds
	// (start ≥ now), which is exactly what lets the free-running
	// conservative executor advance a shard to the window edge.
	lookahead := airtime + m.params.PropDelay
	par := m.parCtxs != nil
	crossesShard := false
	intended := 0
	// Neighbors is exactly the in-range receiver set in ascending id
	// order — the same nodes the old full-field scan selected — and it is
	// cached, so the per-frame cost is O(receivers).
	for _, id := range m.Neighbors(f.Src) {
		if m.faults != nil && !m.faults.Linked(start, f.Src, id) {
			// Partition fault: the link is severed, so the frame neither
			// reaches this receiver nor occupies its channel.
			continue
		}
		dst := m.nodes[id]
		isTarget := f.Dst == Broadcast || f.Dst == id
		if isTarget {
			intended++
		}
		cross := len(m.shardScheds) > 0 && dst.shard != src.shard
		if par && cross {
			// Free-running parallel mode: CSMA occupancy is shard-local
			// during the window, so a cross-shard frame cannot be sensed or
			// collided with until the barrier. Target receptions cross at
			// the window barrier: loss is drawn on the sender's stream here
			// (still in ascending receiver-id order, so the draw sequence is
			// reproducible) and the delivery is buffered in the per-pair
			// outbox until FlushBoundary, which inserts the frame into the
			// receiver's occupancy list so it collides there like a local
			// frame. Non-target cross-shard receivers see no occupancy at
			// all — that residual approximation is what the statistical
			// equivalence battery validates.
			if !isTarget {
				continue
			}
			if m.noteBoundary(src.shard, dst.shard, deliverAt+shardMutSkew, now, lookahead) {
				sc.violations++
			}
			lost := sc.rng.Float64() < m.lossProbAt(start)
			if !lost {
				// The sender-side delivered count cannot see a collision
				// resolved later on the receiver's shard; a frame whose only
				// receptions were cross-shard collisions is therefore not
				// counted undelivered. Loss accounting at the receiver is
				// exact.
				tx.delivered++
			}
			if !sc.outMark[dst.shard] {
				sc.outMark[dst.shard] = true
				sc.outDirty = append(sc.outDirty, dst.shard)
			}
			sc.out[dst.shard] = append(sc.out[dst.shard], crossRec{
				dst: dst, f: f,
				start: start + shardMutSkew, end: end + shardMutSkew,
				at: deliverAt + shardMutSkew, lost: lost,
			})
			continue
		}
		if isTarget && cross {
			if m.noteBoundary(src.shard, dst.shard, deliverAt+shardMutSkew, now, lookahead) {
				m.lookaheadViolations++
			}
			crossesShard = true
		}
		if rx := m.scheduleReception(sc, dst, f, tx, batch, start, end, now, isTarget); rx != nil {
			// Per-receiver reference path: boundary receptions carry the
			// shardmut skew (zero in nominal builds).
			at := deliverAt
			if cross {
				at += shardMutSkew
			}
			sched.AtEventOwned(at, simtime.OwnerRadio, receptionDone, rx)
		}
	}
	if intended == 0 {
		// Nobody could ever receive it: record immediately. No target
		// reception references tx, so it recycles here.
		if sc.stats != nil {
			sc.stats.RecordUndelivered(f.Kind)
		}
		sc.emitUndelivered(now, f, src.pos)
		sc.recycleTX(tx)
		if batch != nil {
			sc.recycleBatch(batch)
		}
		return
	}
	tx.f = f
	tx.pos = src.pos
	if batch != nil {
		// One event delivers the whole batch in id order and then runs the
		// undelivered check — the same total order the per-receiver events
		// formed as a contiguous same-timestamp block. A batch with any
		// boundary reception carries the shardmut skew as a whole (zero in
		// nominal builds), mirroring the per-receiver path's divergence.
		at := deliverAt
		if crossesShard {
			at += shardMutSkew
		}
		sched.AtEventOwned(at, simtime.OwnerRadio, batchDeliver, batch)
		return
	}
	// After the last possible delivery, check whether anyone got it. The
	// deliveries share this timestamp but were scheduled first, so they
	// fire first and the check observes the final delivered count.
	sched.AtEventOwned(deliverAt, simtime.OwnerRadio, transmissionDone, tx)
}

// FlushBoundary drains every sending shard's cross-shard outboxes at a
// parallel window barrier: each buffered target reception is inserted
// into its receiver's channel-occupancy list (corrupting any overlapping
// in-flight reception — boundary frames collide like local ones) and
// scheduled as a crossEvent on the receiver's shard at its arrival time.
// It returns the number of deliveries that landed before the barrier
// time — conservative-lookahead violations, zero outside the shardmut
// mutation build. Coordinator-only: all shard workers must be parked at
// the barrier when it runs, which is also what makes touching the
// receiver shard's occupancy lists and record pools here race-free.
func (m *Medium) FlushBoundary(window time.Duration) uint64 {
	var violations uint64
	for _, sc := range m.parCtxs {
		if len(sc.outDirty) == 0 {
			continue
		}
		// Insertion-sort the dirty list ascending: it is short (bounded by
		// the shard's neighbor count), and ascending destination order
		// reproduces the full scan's drain order byte for byte.
		dirty := sc.outDirty
		for i := 1; i < len(dirty); i++ {
			for j := i; j > 0 && dirty[j] < dirty[j-1]; j-- {
				dirty[j], dirty[j-1] = dirty[j-1], dirty[j]
			}
		}
		for _, to := range dirty {
			box := sc.out[to]
			sc.outMark[to] = false
			dstCtx := m.parCtxs[to]
			for i := range box {
				r := &box[i]
				if r.at < window {
					violations++
				}
				rx := dstCtx.acquireRX()
				rx.start, rx.end = r.start, r.end
				rx.hasEvent = true
				m.occupyChannel(r.dst, rx, window)
				ce := dstCtx.acquireCE()
				ce.dst, ce.f, ce.rx, ce.lost = r.dst, r.f, rx, r.lost
				dstCtx.sched.AtEventOwned(r.at, simtime.OwnerRadio, crossDeliver, ce)
				*r = crossRec{}
			}
			sc.out[to] = box[:0]
		}
		sc.outDirty = dirty[:0]
	}
	m.lookaheadViolations += violations
	return violations
}

// crossDeliver resolves one cross-shard reception on the receiving shard:
// the iid loss outcome was drawn at send time on the sender's stream, and
// collision corruption was accumulated on the occupancy record inserted
// at the barrier, so only the resolution, receiver-side stats, emission,
// and the callback run here. Local receptions still in flight before the
// barrier may have delivered clean a window earlier than a serial run
// would allow — that one-window asymmetry is part of the approximation
// the statistical-equivalence battery validates.
func crossDeliver(arg any) {
	ce := arg.(*crossEvent)
	sc, dst, f, rx, lost := ce.sc, ce.dst, ce.f, ce.rx, ce.lost
	corrupted := rx.corrupted
	rx.hasEvent = false
	if !rx.inList {
		sc.recycleRX(rx)
	}
	sc.recycleCE(ce)
	switch {
	case corrupted:
		if sc.stats != nil {
			sc.stats.RecordLoss(f.Kind, trace.LossCollision)
		}
		sc.emitAtReceiver(obs.EvFrameLost, dst, f, "collision")
	case lost:
		if sc.stats != nil {
			sc.stats.RecordLoss(f.Kind, trace.LossRandom)
		}
		sc.emitAtReceiver(obs.EvFrameLost, dst, f, "random")
	default:
		if sc.stats != nil {
			sc.stats.RecordReceive(f.Kind)
		}
		sc.emitAtReceiver(obs.EvFrameReceived, dst, f, "")
		if dst.recv != nil {
			dst.recv(f)
		}
	}
}

// batchDeliver resolves every target reception of one frame in ascending
// receiver-id order, then the sender-side undelivered check. Each record's
// pool bookkeeping happens before its receiver callback runs (callbacks
// may send frames that reenter the medium and prune rx lists); the batch
// itself recycles only after the loop, so reentrant sends acquire distinct
// batch records.
func batchDeliver(arg any) {
	b := arg.(*deliveryBatch)
	sc, tx := b.sc, b.tx
	for i, rx := range b.rxs {
		b.rxs[i] = nil
		deliverReception(rx)
	}
	b.rxs = b.rxs[:0]
	if tx.delivered == 0 {
		if sc.stats != nil {
			sc.stats.RecordUndelivered(tx.f.Kind)
		}
		sc.emitUndelivered(sc.sched.Now(), tx.f, tx.pos)
	}
	sc.recycleTX(tx)
	sc.recycleBatch(b)
}

// transmissionDone runs the undelivered check after a frame's last
// possible delivery and returns the transmission record to the pool.
func transmissionDone(arg any) {
	tx := arg.(*transmission)
	sc := tx.sc
	if tx.delivered == 0 {
		if sc.stats != nil {
			sc.stats.RecordUndelivered(tx.f.Kind)
		}
		sc.emitUndelivered(sc.sched.Now(), tx.f, tx.pos)
	}
	sc.recycleTX(tx)
}

// scheduleReception models the frame occupying the channel at the receiver
// during [start, end] and queues its delivery at end+PropDelay unless the
// receiver is not a target. On the batched path the reception joins the
// frame's delivery batch and nil is returned; on the per-receiver
// reference path the pending reception is returned for the caller to
// schedule (trySend routes it to the sending shard's scheduler).
// Non-target receivers still experience channel occupancy (their concurrent
// receptions collide) but do not receive or account the frame.
func (m *Medium) scheduleReception(sc *shardCtx, dst *nodeState, f Frame, tx *transmission, batch *deliveryBatch, start, end, now time.Duration, isTarget bool) *reception {
	rx := sc.acquireRX()
	rx.start, rx.end = start, end
	m.occupyChannel(dst, rx, now)

	if !isTarget {
		return nil
	}

	// The loss draw stays here, at schedule time in ascending receiver-id
	// order, on both delivery paths — RNG draw order is part of the traces'
	// byte-identity contract. Chaos loss/partition/duplication faults are
	// likewise applied per receiver regardless of batching.
	rx.lost = sc.rng.Float64() < m.lossProbAt(start)
	rx.dst = dst
	rx.f = f
	rx.tx = tx
	rx.hasEvent = true
	if batch != nil {
		batch.rxs = append(batch.rxs, rx)
		return nil
	}
	return rx
}

// occupyChannel inserts rx (spanning [rx.start, rx.end]) into dst's
// in-flight reception list: entries that ended before now and before the
// new frame's start are pruned, and every overlapping pair is corrupted
// (the new frame and the in-flight one both lose). Callers set rx.start
// and rx.end first.
func (m *Medium) occupyChannel(dst *nodeState, rx *reception, now time.Duration) {
	if !m.params.DisableCollisions {
		kept := dst.rx[:0]
		for _, other := range dst.rx {
			if other.end > now || other.end >= rx.start {
				kept = append(kept, other)
			} else {
				releaseFromList(other)
			}
		}
		for i := len(kept); i < len(dst.rx); i++ {
			dst.rx[i] = nil
		}
		dst.rx = kept
		for _, other := range dst.rx {
			if other.start < rx.end && rx.start < other.end {
				other.corrupted = true
				rx.corrupted = true
			}
		}
	}
	rx.inList = true
	dst.rx = append(dst.rx, rx)
}

// receptionDone resolves one target reception on the per-receiver
// reference path.
func receptionDone(arg any) {
	deliverReception(arg.(*reception))
}

// deliverReception resolves one target reception at its arrival time:
// collision corruption, iid loss, or delivery to the receiver callback.
// Pool bookkeeping happens before the receiver callback runs, because the
// callback may send frames that reenter the medium and prune rx lists.
func deliverReception(rx *reception) {
	sc := rx.sc
	dst, f, tx := rx.dst, rx.f, rx.tx
	corrupted, lost := rx.corrupted, rx.lost
	rx.hasEvent = false
	rx.dst = nil
	rx.f = Frame{}
	rx.tx = nil
	if !rx.inList {
		sc.recycleRX(rx)
	}
	switch {
	case corrupted:
		if sc.stats != nil {
			sc.stats.RecordLoss(f.Kind, trace.LossCollision)
		}
		sc.emitAtReceiver(obs.EvFrameLost, dst, f, "collision")
	case lost:
		if sc.stats != nil {
			sc.stats.RecordLoss(f.Kind, trace.LossRandom)
		}
		sc.emitAtReceiver(obs.EvFrameLost, dst, f, "random")
	default:
		tx.delivered++
		if sc.stats != nil {
			sc.stats.RecordReceive(f.Kind)
		}
		sc.emitAtReceiver(obs.EvFrameReceived, dst, f, "")
		if dst.recv != nil {
			dst.recv(f)
		}
	}
}

// emitAtReceiver publishes a reception-side frame event (received/lost)
// at the receiving node.
func (sc *shardCtx) emitAtReceiver(t obs.EventType, dst *nodeState, f Frame, cause string) {
	if bus := sc.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: sc.sched.Now(), Type: t, Mote: int(dst.id), Peer: int(f.Src),
			Pos: dst.pos, Kind: f.Kind, Bits: f.Bits, Cause: cause,
			Origin: int(f.Corr.Origin), Seq: uint64(f.Corr.Seq), Frame: f.ID,
		})
	}
}

// emitUndelivered publishes a frame that reached no receiver.
func (sc *shardCtx) emitUndelivered(at time.Duration, f Frame, pos geom.Point) {
	if bus := sc.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: at, Type: obs.EvFrameUndelivered, Mote: int(f.Src), Peer: int(f.Dst),
			Pos: pos, Kind: f.Kind, Bits: f.Bits,
			Origin: int(f.Corr.Origin), Seq: uint64(f.Corr.Seq), Frame: f.ID,
		})
	}
}
