package radio

import (
	"math/rand"
	"testing"

	"envirotrack/internal/geom"
	"envirotrack/internal/simtime"
)

// bruteNeighbors is the reference O(n) scan the spatial hash replaced.
func bruteNeighbors(pos map[NodeID]geom.Point, self NodeID, r float64) []NodeID {
	var out []NodeID
	for id := NodeID(0); int(id) < len(pos); id++ {
		if id == self {
			continue
		}
		if pos[id].Within(pos[self], r) {
			out = append(out, id)
		}
	}
	return out
}

// bruteNear is the reference scan for NodesNear.
func bruteNear(pos map[NodeID]geom.Point, p geom.Point, r float64) []NodeID {
	var out []NodeID
	for id := NodeID(0); int(id) < len(pos); id++ {
		if pos[id].Within(p, r) {
			out = append(out, id)
		}
	}
	return out
}

func sameIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpatialHashMatchesBruteForce drops random node layouts onto media
// with random communication radii and checks that the spatial-hash
// Neighbors and NodesNear agree with the brute-force scan — including
// across incremental registration, which exercises the granular cache
// invalidation (queries are interleaved with AddNode).
func TestSpatialHashMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		radius := 0.25 + rng.Float64()*4
		m := New(simtime.NewScheduler(), Params{CommRadius: radius}, rng, nil)
		n := 3 + rng.Intn(120)
		pos := make(map[NodeID]geom.Point, n)
		for i := 0; i < n; i++ {
			id := NodeID(i)
			// Cluster around a few hotspots so cells are unevenly filled;
			// allow negative coordinates.
			p := geom.Pt(rng.Float64()*24-8, rng.Float64()*24-8)
			if err := m.AddNode(id, p, nil); err != nil {
				t.Fatal(err)
			}
			pos[id] = p
			// Query mid-registration: a stale cached list here means the
			// invalidation missed a node the newcomer is in range of.
			probe := NodeID(rng.Intn(i + 1))
			if !sameIDs(m.Neighbors(probe), bruteNeighbors(pos, probe, radius)) {
				t.Fatalf("trial %d: Neighbors(%d) diverged from brute force after %d registrations",
					trial, probe, i+1)
			}
		}
		for i := 0; i < n; i++ {
			id := NodeID(i)
			if got, want := m.Neighbors(id), bruteNeighbors(pos, id, radius); !sameIDs(got, want) {
				t.Fatalf("trial %d: Neighbors(%d) = %v, want %v", trial, id, got, want)
			}
		}
		for q := 0; q < 40; q++ {
			p := geom.Pt(rng.Float64()*30-12, rng.Float64()*30-12)
			r := rng.Float64() * 6
			if q == 0 {
				r = 1000 // exercise the large-radius linear fallback
			}
			if got, want := m.NodesNear(p, r), bruteNear(pos, p, r); !sameIDs(got, want) {
				t.Fatalf("trial %d: NodesNear(%v, %.2f) = %v, want %v", trial, p, r, got, want)
			}
		}
	}
}

// TestSpatialHashOutOfOrderRegistration registers ids in shuffled order,
// exercising the sorted-insert path of both the global order and the cell
// buckets (ascending registration only ever appends). Bucket sortedness is
// what lets queries merge instead of sorting per call, so it is asserted
// directly alongside the brute-force equivalence.
func TestSpatialHashOutOfOrderRegistration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		radius := 0.25 + rng.Float64()*4
		m := New(simtime.NewScheduler(), Params{CommRadius: radius}, rng, nil)
		n := 3 + rng.Intn(120)
		ids := rng.Perm(n)
		pos := make(map[NodeID]geom.Point, n)
		for _, i := range ids {
			id := NodeID(i)
			p := geom.Pt(rng.Float64()*24-8, rng.Float64()*24-8)
			if err := m.AddNode(id, p, nil); err != nil {
				t.Fatal(err)
			}
			pos[id] = p
		}
		for key, bucket := range m.cells {
			for i := 1; i < len(bucket); i++ {
				if bucket[i-1].id >= bucket[i].id {
					t.Fatalf("trial %d: bucket %v not id-sorted: %v then %v",
						trial, key, bucket[i-1].id, bucket[i].id)
				}
			}
		}
		for i := 1; i < len(m.order); i++ {
			if m.order[i-1] >= m.order[i] {
				t.Fatalf("trial %d: order not sorted at %d", trial, i)
			}
		}
		for id := NodeID(0); int(id) < n; id++ {
			if got, want := m.Neighbors(id), bruteNeighbors(pos, id, radius); !sameIDs(got, want) {
				t.Fatalf("trial %d: Neighbors(%d) = %v, want %v", trial, id, got, want)
			}
		}
	}
}

// TestAppendNodesNearReusesScratch checks the scratch-slice contract: the
// results match NodesNear, land after any existing dst contents, and a
// reused buffer with sufficient capacity is not reallocated.
func TestAppendNodesNearReusesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(simtime.NewScheduler(), Params{CommRadius: 2}, rng, nil)
	for i := 0; i < 40; i++ {
		if err := m.AddNode(NodeID(i), geom.Pt(float64(i%8), float64(i/8)), nil); err != nil {
			t.Fatal(err)
		}
	}
	probe := geom.Pt(3, 2)
	want := m.NodesNear(probe, 2.5)
	if len(want) == 0 {
		t.Fatal("probe found no nodes; bad test geometry")
	}

	prefixed := m.AppendNodesNear([]NodeID{99}, probe, 2.5)
	if prefixed[0] != 99 || !sameIDs(prefixed[1:], want) {
		t.Fatalf("AppendNodesNear kept %v, want [99]+%v", prefixed, want)
	}

	scratch := make([]NodeID, 0, len(want)+8)
	for rep := 0; rep < 5; rep++ {
		got := m.AppendNodesNear(scratch[:0], probe, 2.5)
		if !sameIDs(got, want) {
			t.Fatalf("rep %d: AppendNodesNear = %v, want %v", rep, got, want)
		}
		if &got[0] != &scratch[:1][0] {
			t.Fatalf("rep %d: scratch with capacity %d was reallocated", rep, cap(scratch))
		}
	}
}

// TestNeighborsUnknownNodeNotCached preserves the pre-index contract:
// querying an unregistered id returns nil and does not poison the cache.
func TestNeighborsUnknownNodeNotCached(t *testing.T) {
	m := New(simtime.NewScheduler(), Params{CommRadius: 2}, rand.New(rand.NewSource(1)), nil)
	if nb := m.Neighbors(7); nb != nil {
		t.Fatalf("Neighbors of unknown node = %v, want nil", nb)
	}
	if err := m.AddNode(7, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(8, geom.Pt(1, 0), nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Neighbors(7); !sameIDs(got, []NodeID{8}) {
		t.Fatalf("Neighbors(7) = %v, want [8]", got)
	}
}
