package radio

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/simtime"
)

// BenchmarkBroadcastFanout measures one broadcast fanning out to a dense
// neighborhood and all resulting receptions being resolved — the radio
// hot path. With pooled transmission/reception records and typed-payload
// events, steady state allocates nothing.
func BenchmarkBroadcastFanout(b *testing.B) {
	s := simtime.NewScheduler()
	rng := rand.New(rand.NewSource(1))
	m := New(s, Params{CommRadius: 10, PropDelay: time.Microsecond}, rng, nil)
	// 8x8 grid with spacing 2: every node hears every other (radius 10
	// covers the 14x14 diagonal partially; center sees most).
	for i := 0; i < 64; i++ {
		if err := m.AddNode(NodeID(i), geom.Pt(float64(i%8)*2, float64(i/8)*2), nil); err != nil {
			b.Fatal(err)
		}
	}
	src := NodeID(27) // interior node with a full neighborhood
	f := Frame{Src: src, Dst: Broadcast, Bits: 256}
	// Warm the neighbor cache and the record pools.
	m.Send(f)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(f)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendNodesNear measures the scratch-slice spatial query used
// by the broadcast fan-out and neighbor-cache misses.
func BenchmarkAppendNodesNear(b *testing.B) {
	s := simtime.NewScheduler()
	rng := rand.New(rand.NewSource(1))
	m := New(s, Params{CommRadius: 3}, rng, nil)
	for i := 0; i < 400; i++ {
		if err := m.AddNode(NodeID(i), geom.Pt(float64(i%20), float64(i/20)), nil); err != nil {
			b.Fatal(err)
		}
	}
	probe := geom.Pt(10, 10)
	var scratch []NodeID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = m.AppendNodesNear(scratch[:0], probe, 3)
	}
	if len(scratch) == 0 {
		b.Fatal("query found nothing")
	}
}
