package radio

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// newShardedMedium builds a medium on a k-shard group with the field
// [0,width)x[0,height) split into k vertical stripes.
func newShardedMedium(t *testing.T, k int, width float64, p Params, seed int64) (*simtime.ShardGroup, *Medium) {
	t.Helper()
	g := simtime.NewShardGroup(k)
	var stats trace.Stats
	m := New(g.Shard(0), p, rand.New(rand.NewSource(seed)), &stats)
	stripe := width / float64(k)
	m.SetSharding(g.Schedulers(), func(pt geom.Point) int32 {
		s := int32(pt.X / stripe)
		if s < 0 {
			s = 0
		}
		if s >= int32(k) {
			s = int32(k) - 1
		}
		return s
	})
	return g, m
}

// TestShardMutSkewIsZeroInNominalBuilds pins the mutation constant: the
// differential battery's byte-identity claims hold only because nominal
// builds add exactly zero skew to cross-shard deliveries.
func TestShardMutSkewIsZeroInNominalBuilds(t *testing.T) {
	if shardMutSkew != 0 {
		t.Fatalf("shardMutSkew = %v in a nominal build; run mutation tests with -tags shardmut only", time.Duration(shardMutSkew))
	}
}

// TestBoundaryClassification checks nodes resolve to the shard owning
// their region — both when registered after SetSharding and before it
// (backfill) — and that a frame crossing the stripe boundary is
// accounted as boundary traffic on the right (from, to) pair while
// same-shard traffic stays out of the mailboxes.
func TestBoundaryClassification(t *testing.T) {
	g, m := newShardedMedium(t, 2, 10, Params{CommRadius: 3}, 1)
	// 4.0 is in stripe [0,5) -> shard 0; 6.0 in [5,10) -> shard 1.
	if err := m.AddNode(1, geom.Pt(4, 0), func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(2, geom.Pt(6, 0), func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(3, geom.Pt(3, 0), func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if got := m.NodeShard(1); got != 0 {
		t.Fatalf("NodeShard(1) = %d, want 0", got)
	}
	if got := m.NodeShard(2); got != 1 {
		t.Fatalf("NodeShard(2) = %d, want 1", got)
	}

	m.Send(Frame{Kind: trace.KindHeartbeat, Src: 1, Dst: Broadcast})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	// Node 1's broadcast targets 2 (cross: shard 0 -> 1) and 3 (same
	// shard, unaccounted).
	if st := m.ShardMailboxStat(0, 1); st.Frames != 1 {
		t.Fatalf("ShardMailboxStat(0,1).Frames = %d, want 1", st.Frames)
	}
	if st := m.ShardMailboxStat(1, 0); st.Frames != 0 {
		t.Fatalf("ShardMailboxStat(1,0).Frames = %d, want 0", st.Frames)
	}
	if got := m.BoundaryFrames(); got != 1 {
		t.Fatalf("BoundaryFrames() = %d, want 1", got)
	}
	if v := m.LookaheadViolations(); v != 0 {
		t.Fatalf("LookaheadViolations() = %d, want 0", v)
	}
}

// TestConservativeLookaheadInvariant is the property test of the shard
// synchronization bound: across randomized fields, shard counts, frame
// sizes, and send schedules (CSMA deferrals, per-receiver and batched
// delivery, losses), no cross-shard frame is ever delivered at a
// timestamp earlier than the sending shard's committed horizon plus one
// packet time — every mailbox's MinSlack clears the smallest frame's
// airtime + propagation delay, and the violation counter stays zero.
func TestConservativeLookaheadInvariant(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		k := 2 + rng.Intn(7) // 2..8 shards
		width := 8 + rng.Float64()*24
		p := Params{
			CommRadius:          1.5 + rng.Float64()*4,
			PropDelay:           time.Duration(rng.Intn(3)) * time.Millisecond,
			LossProb:            rng.Float64() * 0.3,
			PerReceiverDelivery: trial%2 == 0,
		}
		g, m := newShardedMedium(t, k, width, p, int64(trial))

		nodes := 20 + rng.Intn(40)
		for id := 0; id < nodes; id++ {
			pos := geom.Pt(rng.Float64()*width, rng.Float64()*10)
			if err := m.AddNode(NodeID(id), pos, func(Frame) {}); err != nil {
				t.Fatal(err)
			}
		}
		minBits := DefaultFrameBits
		for i := 0; i < 150; i++ {
			src := NodeID(rng.Intn(nodes))
			dst := Broadcast
			if rng.Float64() < 0.4 {
				dst = NodeID(rng.Intn(nodes))
			}
			bits := 0
			if rng.Float64() < 0.3 {
				bits = 64 + rng.Intn(512)
				if bits < minBits {
					minBits = bits
				}
			}
			at := time.Duration(rng.Intn(2000)) * time.Millisecond
			f := Frame{Kind: trace.KindHeartbeat, Src: src, Dst: dst, Bits: bits}
			g.Shard(int(m.NodeShard(src))).AtEvent(at, func(arg any) {
				m.Send(arg.(Frame))
			}, f)
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}

		if v := m.LookaheadViolations(); v != 0 {
			t.Fatalf("trial %d: %d lookahead violations", trial, v)
		}
		bound := m.Airtime(minBits) + p.PropDelay
		for from := 0; from < k; from++ {
			for to := 0; to < k; to++ {
				st := m.ShardMailboxStat(from, to)
				if st.Frames > 0 && st.MinSlack < bound {
					t.Fatalf("trial %d: mailbox (%d,%d) MinSlack %v below one packet time %v",
						trial, from, to, st.MinSlack, bound)
				}
			}
		}
	}
}

// TestShardedDeliveryMatchesSerial checks the medium itself (no
// middleware above it) produces identical reception sequences serial and
// sharded, on both delivery paths: same receivers, same timestamps, same
// frame ids, same loss/collision accounting.
func TestShardedDeliveryMatchesSerial(t *testing.T) {
	type rcpt struct {
		dst NodeID
		src NodeID
		id  uint64
		at  time.Duration
	}
	run := func(k int, perReceiver bool) ([]rcpt, trace.KindStats) {
		p := Params{CommRadius: 2.5, PropDelay: time.Millisecond, LossProb: 0.15, PerReceiverDelivery: perReceiver}
		var sched *simtime.Scheduler
		var g *simtime.ShardGroup
		var stats trace.Stats
		var m *Medium
		if k > 1 {
			g = simtime.NewShardGroup(k)
			sched = g.Shard(0)
		} else {
			sched = simtime.NewScheduler()
		}
		m = New(sched, p, rand.New(rand.NewSource(7)), &stats)
		if k > 1 {
			m.SetSharding(g.Schedulers(), func(pt geom.Point) int32 {
				s := int32(pt.X / (12.0 / float64(k)))
				if s >= int32(k) {
					s = int32(k) - 1
				}
				return s
			})
		}
		var got []rcpt
		const nodes = 30
		rng := rand.New(rand.NewSource(99))
		for id := 0; id < nodes; id++ {
			dst := NodeID(id)
			pos := geom.Pt(rng.Float64()*12, rng.Float64()*4)
			if err := m.AddNode(dst, pos, func(f Frame) {
				got = append(got, rcpt{dst: dst, src: f.Src, id: f.ID, at: sched.Now()})
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			src := NodeID(rng.Intn(nodes))
			at := time.Duration(rng.Intn(1500)) * time.Millisecond
			srcSched := sched
			if k > 1 {
				srcSched = g.Shard(int(m.NodeShard(src)))
			}
			srcSched.AtEvent(at, func(arg any) { m.Send(arg.(Frame)) },
				Frame{Kind: trace.KindHeartbeat, Src: src, Dst: Broadcast})
		}
		if err := sched.Run(); err != nil {
			t.Fatal(err)
		}
		return got, stats.Kind(trace.KindHeartbeat)
	}

	for _, perReceiver := range []bool{false, true} {
		base, baseStats := run(1, perReceiver)
		for _, k := range []int{2, 4, 8} {
			got, gotStats := run(k, perReceiver)
			if len(got) != len(base) {
				t.Fatalf("perReceiver=%v k=%d: %d receptions, serial %d", perReceiver, k, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("perReceiver=%v k=%d: reception %d = %+v, serial %+v", perReceiver, k, i, got[i], base[i])
				}
			}
			if gotStats != baseStats {
				t.Fatalf("perReceiver=%v k=%d: stats diverge from serial", perReceiver, k)
			}
		}
	}
}
