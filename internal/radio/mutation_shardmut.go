//go:build shardmut

package radio

import "time"

// shardMutSkew, under the shardmut mutation build, delivers boundary
// (cross-shard) receptions one nanosecond early. That breaks the
// conservative-lookahead invariant — the delivery lands closer to the
// sending shard's committed horizon than one packet time, tripping the
// medium's LookaheadViolations counter — and perturbs the (at, seq)
// order of boundary deliveries, so sharded traces diverge from serial.
// The mutation tests in internal/eval prove the differential battery
// catches both symptoms; see mutation_noshardmut.go for the nominal
// constant.
const shardMutSkew = -time.Nanosecond
