package radio

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

func newTestMedium(t *testing.T, p Params) (*simtime.Scheduler, *Medium, *trace.Stats) {
	t.Helper()
	s := simtime.NewScheduler()
	var stats trace.Stats
	m := New(s, p, rand.New(rand.NewSource(42)), &stats)
	return s, m, &stats
}

func TestAddNodeDuplicate(t *testing.T) {
	_, m, _ := newTestMedium(t, Params{CommRadius: 1})
	if err := m.AddNode(1, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(1, 1), nil); err == nil {
		t.Fatal("expected error on duplicate node id")
	}
}

func TestBroadcastReachesOnlyNodesInRange(t *testing.T) {
	s, m, _ := newTestMedium(t, Params{CommRadius: 1.5})
	got := make(map[NodeID]int)
	mk := func(id NodeID) Receiver {
		return func(f Frame) { got[id]++ }
	}
	if err := m.AddNode(0, geom.Pt(0, 0), mk(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(1, 0), mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(2, geom.Pt(3, 0), mk(2)); err != nil {
		t.Fatal(err)
	}
	m.Send(Frame{Kind: trace.KindHeartbeat, Src: 0, Dst: Broadcast})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Errorf("in-range node received %d frames, want 1", got[1])
	}
	if got[2] != 0 {
		t.Errorf("out-of-range node received %d frames, want 0", got[2])
	}
	if got[0] != 0 {
		t.Errorf("sender received its own frame")
	}
}

func TestUnicastDeliversOnlyToDestination(t *testing.T) {
	s, m, _ := newTestMedium(t, Params{CommRadius: 5})
	got := make(map[NodeID]int)
	for i := NodeID(0); i < 3; i++ {
		i := i
		if err := m.AddNode(i, geom.Pt(float64(i), 0), func(f Frame) { got[i]++ }); err != nil {
			t.Fatal(err)
		}
	}
	m.Send(Frame{Kind: trace.KindTransport, Src: 0, Dst: 2})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got[2] != 1 || got[1] != 0 {
		t.Errorf("unicast deliveries = %v, want only node 2", got)
	}
}

func TestDeliveryDelayIsAirtimePlusPropagation(t *testing.T) {
	s, m, _ := newTestMedium(t, Params{CommRadius: 5, BitRate: 1000, PropDelay: time.Millisecond})
	var at time.Duration
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(1, 0), func(f Frame) { at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	m.Send(Frame{Kind: trace.KindReading, Src: 0, Dst: 1, Bits: 100})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 bits at 1000 b/s = 100 ms, plus 1 ms propagation.
	want := 101 * time.Millisecond
	if at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
}

func TestSenderSerializesTransmissions(t *testing.T) {
	s, m, _ := newTestMedium(t, Params{CommRadius: 5, BitRate: 1000})
	var arrivals []time.Duration
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(1, 0), func(f Frame) { arrivals = append(arrivals, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	// Two back-to-back 100-bit frames: second must start after the first
	// finishes, arriving at 200 ms rather than colliding.
	m.Send(Frame{Kind: trace.KindReading, Src: 0, Dst: 1, Bits: 100})
	m.Send(Frame{Kind: trace.KindReading, Src: 0, Dst: 1, Bits: 100})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v, want 2 deliveries", arrivals)
	}
	if arrivals[0] != 100*time.Millisecond {
		t.Errorf("first arrival = %v, want 100ms", arrivals[0])
	}
	// The second frame waits for the first to finish (plus CSMA backoff).
	if arrivals[1] < 200*time.Millisecond || arrivals[1] > 220*time.Millisecond {
		t.Errorf("second arrival = %v, want 200ms plus a small backoff", arrivals[1])
	}
}

func TestCollisionCorruptsOverlappingFrames(t *testing.T) {
	// Hidden-terminal topology: the two senders cannot hear each other
	// (distance 2 > radius 1.2) so carrier sensing cannot prevent their
	// frames overlapping at the receiver between them.
	s, m, stats := newTestMedium(t, Params{CommRadius: 1.2, BitRate: 1000})
	received := 0
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(2, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(2, geom.Pt(1, 0), func(f Frame) { received++ }); err != nil {
		t.Fatal(err)
	}
	m.Send(Frame{Kind: trace.KindReading, Src: 0, Dst: 2, Bits: 100})
	m.Send(Frame{Kind: trace.KindReading, Src: 1, Dst: 2, Bits: 100})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 0 {
		t.Errorf("received %d frames, want 0 (collision)", received)
	}
	ks := stats.Kind(trace.KindReading)
	if ks.LostCollision != 2 {
		t.Errorf("LostCollision = %d, want 2", ks.LostCollision)
	}
	if ks.Undelivered != 2 {
		t.Errorf("Undelivered = %d, want 2", ks.Undelivered)
	}
}

func TestCollisionsDisabled(t *testing.T) {
	s, m, _ := newTestMedium(t, Params{CommRadius: 1.2, BitRate: 1000, DisableCollisions: true})
	received := 0
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(2, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(2, geom.Pt(1, 0), func(f Frame) { received++ }); err != nil {
		t.Fatal(err)
	}
	m.Send(Frame{Kind: trace.KindReading, Src: 0, Dst: 2, Bits: 100})
	m.Send(Frame{Kind: trace.KindReading, Src: 1, Dst: 2, Bits: 100})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 2 {
		t.Errorf("received %d frames, want 2 with collisions disabled", received)
	}
}

func TestNonOverlappingFramesDoNotCollide(t *testing.T) {
	s, m, _ := newTestMedium(t, Params{CommRadius: 1.2, BitRate: 1000})
	received := 0
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(2, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(2, geom.Pt(1, 0), func(f Frame) { received++ }); err != nil {
		t.Fatal(err)
	}
	m.Send(Frame{Kind: trace.KindReading, Src: 0, Dst: 2, Bits: 100})
	s.After(150*time.Millisecond, func() {
		m.Send(Frame{Kind: trace.KindReading, Src: 1, Dst: 2, Bits: 100})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 2 {
		t.Errorf("received %d frames, want 2 (no overlap)", received)
	}
}

func TestRandomLoss(t *testing.T) {
	s, m, stats := newTestMedium(t, Params{CommRadius: 5, LossProb: 0.5})
	received := 0
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(1, 0), func(f Frame) { received++ }); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		s.At(time.Duration(i)*time.Second, func() {
			m.Send(Frame{Kind: trace.KindReading, Src: 0, Dst: 1})
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received < n*4/10 || received > n*6/10 {
		t.Errorf("received %d of %d at p=0.5, expected ~%d", received, n, n/2)
	}
	ks := stats.Kind(trace.KindReading)
	if ks.Received+ks.LostRandom != n {
		t.Errorf("accounting mismatch: recv=%d + lost=%d != %d", ks.Received, ks.LostRandom, n)
	}
}

func TestUndeliveredWhenNoReceiverInRange(t *testing.T) {
	s, m, stats := newTestMedium(t, Params{CommRadius: 1})
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(10, 10), nil); err != nil {
		t.Fatal(err)
	}
	m.Send(Frame{Kind: trace.KindHeartbeat, Src: 0, Dst: Broadcast})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := stats.Kind(trace.KindHeartbeat).Undelivered; got != 1 {
		t.Errorf("Undelivered = %d, want 1", got)
	}
}

func TestSendFromUnregisteredNodeIsNoop(t *testing.T) {
	s, m, stats := newTestMedium(t, Params{CommRadius: 1})
	m.Send(Frame{Kind: trace.KindHeartbeat, Src: 99, Dst: Broadcast})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Kind(trace.KindHeartbeat).Sent != 0 {
		t.Error("unregistered sender should not transmit")
	}
}

func TestNeighborsAndRangeQueries(t *testing.T) {
	_, m, _ := newTestMedium(t, Params{CommRadius: 1.5})
	for i := 0; i < 5; i++ {
		if err := m.AddNode(NodeID(i), geom.Pt(float64(i), 0), nil); err != nil {
			t.Fatal(err)
		}
	}
	nb := m.Neighbors(2)
	want := []NodeID{1, 3}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
	if !m.InRange(0, 1) || m.InRange(0, 2) {
		t.Error("InRange gave wrong answers")
	}
	near := m.NodesNear(geom.Pt(0.4, 0), 1)
	if len(near) != 2 || near[0] != 0 || near[1] != 1 {
		t.Errorf("NodesNear = %v, want [0 1]", near)
	}
	// Cached path returns the same answer.
	nb2 := m.Neighbors(2)
	if len(nb2) != 2 {
		t.Errorf("cached Neighbors(2) = %v", nb2)
	}
}

func TestNeighborsUnknownNode(t *testing.T) {
	_, m, _ := newTestMedium(t, Params{CommRadius: 1})
	if nb := m.Neighbors(42); nb != nil {
		t.Errorf("Neighbors of unknown node = %v, want nil", nb)
	}
	if _, ok := m.Position(42); ok {
		t.Error("Position of unknown node should report !ok")
	}
}

func TestAirtime(t *testing.T) {
	_, m, _ := newTestMedium(t, Params{CommRadius: 1, BitRate: 50000})
	if got := m.Airtime(50000); got != time.Second {
		t.Errorf("Airtime(50000) = %v, want 1s", got)
	}
	if got := m.Airtime(0); got != m.Airtime(DefaultFrameBits) {
		t.Errorf("Airtime(0) should use the default frame size")
	}
}

func TestLinkUtilizationAccounting(t *testing.T) {
	s, m, stats := newTestMedium(t, Params{CommRadius: 5})
	if err := m.AddNode(0, geom.Pt(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(1, geom.Pt(1, 0), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Duration(i)*time.Second, func() {
			m.Send(Frame{Kind: trace.KindHeartbeat, Src: 0, Dst: Broadcast, Bits: 500})
		})
	}
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 5000 bits over 10 s on a 50 kb/s link = 1%.
	got := stats.LinkUtilization(10*time.Second, DefaultBitRate)
	if got < 0.0099 || got > 0.0101 {
		t.Errorf("LinkUtilization = %v, want ~0.01", got)
	}
}

func TestNodeIDsSorted(t *testing.T) {
	_, m, _ := newTestMedium(t, Params{CommRadius: 1})
	for _, id := range []NodeID{5, 1, 3} {
		if err := m.AddNode(id, geom.Pt(float64(id), 0), nil); err != nil {
			t.Fatal(err)
		}
	}
	ids := m.NodeIDs()
	want := []NodeID{1, 3, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("NodeIDs = %v, want %v", ids, want)
		}
	}
}
