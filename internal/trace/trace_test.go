package trace

import (
	"math"
	"strings"
	"testing"
	"time"

	"envirotrack/internal/geom"
)

func TestStatsCounters(t *testing.T) {
	var s Stats
	s.RecordSend(KindHeartbeat, 100)
	s.RecordSend(KindHeartbeat, 100)
	s.RecordSend(KindReading, 200)
	s.RecordReceive(KindHeartbeat)
	s.RecordLoss(KindHeartbeat, LossRandom)
	s.RecordLoss(KindHeartbeat, LossCollision)
	s.RecordLoss(KindReading, LossOverload)
	s.RecordUndelivered(KindReading)

	hb := s.Kind(KindHeartbeat)
	if hb.Sent != 2 || hb.Received != 1 || hb.LostRandom != 1 || hb.LostCollision != 1 {
		t.Errorf("heartbeat stats = %+v", hb)
	}
	rd := s.Kind(KindReading)
	if rd.Sent != 1 || rd.LostOverload != 1 || rd.Undelivered != 1 {
		t.Errorf("reading stats = %+v", rd)
	}
	if s.BitsSent != 400 {
		t.Errorf("BitsSent = %d, want 400", s.BitsSent)
	}
}

func TestStatsLossFraction(t *testing.T) {
	var s Stats
	if got := s.LossFraction(KindHeartbeat); got != 0 {
		t.Errorf("empty LossFraction = %v, want 0", got)
	}
	s.RecordReceive(KindHeartbeat)
	s.RecordReceive(KindHeartbeat)
	s.RecordReceive(KindHeartbeat)
	s.RecordLoss(KindHeartbeat, LossCollision)
	if got := s.LossFraction(KindHeartbeat); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("LossFraction = %v, want 0.25", got)
	}
}

func TestStatsSendLossFraction(t *testing.T) {
	var s Stats
	if got := s.SendLossFraction(KindReading); got != 0 {
		t.Errorf("empty SendLossFraction = %v, want 0", got)
	}
	for i := 0; i < 10; i++ {
		s.RecordSend(KindReading, 10)
	}
	s.RecordUndelivered(KindReading)
	s.RecordUndelivered(KindReading)
	if got := s.SendLossFraction(KindReading); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("SendLossFraction = %v, want 0.2", got)
	}
}

func TestLinkUtilization(t *testing.T) {
	var s Stats
	s.RecordSend(KindHeartbeat, 50000) // 50 kbit over 2 seconds on a 50 kb/s link => 50%
	got := s.LinkUtilization(2*time.Second, 50000)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LinkUtilization = %v, want 0.5", got)
	}
	if s.LinkUtilization(0, 50000) != 0 {
		t.Error("zero runtime should give zero utilization")
	}
	if s.LinkUtilization(time.Second, 0) != 0 {
		t.Error("zero capacity should give zero utilization")
	}
}

func TestStatsKindsSorted(t *testing.T) {
	var s Stats
	s.RecordSend(KindTransport, 1)
	s.RecordSend(KindHeartbeat, 1)
	s.RecordSend(KindReading, 1)
	kinds := s.Kinds()
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Errorf("Kinds not sorted: %v", kinds)
		}
	}
}

func TestStatsSummaryContainsKinds(t *testing.T) {
	var s Stats
	s.RecordSend(KindHeartbeat, 64)
	s.RecordReceive(KindHeartbeat)
	sum := s.Summary()
	if !strings.Contains(sum, "heartbeat") || !strings.Contains(sum, "bits sent: 64") {
		t.Errorf("Summary missing expected content:\n%s", sum)
	}
}

func TestLossCauseString(t *testing.T) {
	tests := []struct {
		cause LossCause
		want  string
	}{
		{LossRandom, "random"},
		{LossCollision, "collision"},
		{LossOverload, "overload"},
		{LossCause(99), "LossCause(99)"},
	}
	for _, tt := range tests {
		if got := tt.cause.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.cause), got, tt.want)
		}
	}
}

func TestTrajectoryErrors(t *testing.T) {
	var tr Trajectory
	if tr.MeanError() != 0 || tr.MaxError() != 0 {
		t.Error("empty trajectory should have zero errors")
	}
	tr.Record(0, geom.Pt(0, 0), geom.Pt(0, 1))
	tr.Record(time.Second, geom.Pt(1, 0), geom.Pt(1, 3))
	if got := tr.MeanError(); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanError = %v, want 2", got)
	}
	if got := tr.MaxError(); math.Abs(got-3) > 1e-12 {
		t.Errorf("MaxError = %v, want 3", got)
	}
	if len(tr.Points) != 2 {
		t.Errorf("Points = %d, want 2", len(tr.Points))
	}
}

func TestLedgerSummarizeAllSuccess(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{At: 0, Type: LabelCreated, Label: "t1", CtxType: "tracker", Mote: 1})
	l.Record(LabelEvent{At: time.Second, Type: LabelRelinquish, Label: "t1", CtxType: "tracker", Mote: 2})
	l.Record(LabelEvent{At: 2 * time.Second, Type: LabelTakeover, Label: "t1", CtxType: "tracker", Mote: 3})
	s := l.Summarize("tracker")
	if s.Created != 1 || s.Takeovers != 1 || s.Relinquish != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Successful != 2 || s.Failed != 0 {
		t.Errorf("success/fail = %d/%d, want 2/0", s.Successful, s.Failed)
	}
	if s.SuccessRate() != 1 {
		t.Errorf("SuccessRate = %v, want 1", s.SuccessRate())
	}
	if s.CoherenceViolations() != 0 {
		t.Errorf("CoherenceViolations = %d, want 0", s.CoherenceViolations())
	}
}

func TestLedgerSummarizeSpuriousLabel(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelTakeover, Label: "t1", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "t2", CtxType: "tracker"}) // spurious
	s := l.Summarize("tracker")
	if s.Successful != 1 || s.Failed != 1 {
		t.Errorf("success/fail = %d/%d, want 1/1", s.Successful, s.Failed)
	}
	if got := s.SuccessRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SuccessRate = %v, want 0.5", got)
	}
	if s.CoherenceViolations() != 1 {
		t.Errorf("CoherenceViolations = %d, want 1", s.CoherenceViolations())
	}
}

func TestLedgerSummarizeSuppressedLabel(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "t2", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelDeleted, Label: "t2", CtxType: "tracker"}) // weight suppression recovered it
	s := l.Summarize("tracker")
	if s.Failed != 0 {
		t.Errorf("Failed = %d, want 0 after suppression", s.Failed)
	}
	if s.CoherenceViolations() != 0 {
		t.Errorf("CoherenceViolations = %d, want 0", s.CoherenceViolations())
	}
}

func TestLedgerIgnoresOtherContextTypes(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "f1", CtxType: "fire"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	s := l.Summarize("tracker")
	if s.Created != 1 {
		t.Errorf("Created = %d, want 1", s.Created)
	}
}

func TestLedgerNoHandoversIsPerfect(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	s := l.Summarize("tracker")
	if s.SuccessRate() != 1 {
		t.Errorf("SuccessRate with no handovers = %v, want 1", s.SuccessRate())
	}
}

func TestLedgerDistinctAndLiveLabels(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "a", CtxType: "x"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "b", CtxType: "x"})
	l.Record(LabelEvent{Type: LabelDeleted, Label: "a", CtxType: "x"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "c", CtxType: "y"})
	if got := l.DistinctLabels("x"); got != 2 {
		t.Errorf("DistinctLabels(x) = %d, want 2", got)
	}
	live := l.LiveLabels("x")
	if len(live) != 1 || live[0] != "b" {
		t.Errorf("LiveLabels(x) = %v, want [b]", live)
	}
}

func TestLabelEventTypeString(t *testing.T) {
	tests := []struct {
		ty   LabelEventType
		want string
	}{
		{LabelCreated, "created"},
		{LabelTakeover, "takeover"},
		{LabelRelinquish, "relinquish"},
		{LabelYield, "yield"},
		{LabelDeleted, "deleted"},
		{LabelEventType(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.ty.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
