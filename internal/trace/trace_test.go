package trace

import (
	"math"
	"strings"
	"testing"
	"time"

	"envirotrack/internal/geom"
)

func TestStatsCounters(t *testing.T) {
	var s Stats
	s.RecordSend(KindHeartbeat, 100)
	s.RecordSend(KindHeartbeat, 100)
	s.RecordSend(KindReading, 200)
	s.RecordReceive(KindHeartbeat)
	s.RecordLoss(KindHeartbeat, LossRandom)
	s.RecordLoss(KindHeartbeat, LossCollision)
	s.RecordLoss(KindReading, LossOverload)
	s.RecordUndelivered(KindReading)

	hb := s.Kind(KindHeartbeat)
	if hb.Sent != 2 || hb.Received != 1 || hb.LostRandom != 1 || hb.LostCollision != 1 {
		t.Errorf("heartbeat stats = %+v", hb)
	}
	rd := s.Kind(KindReading)
	if rd.Sent != 1 || rd.LostOverload != 1 || rd.Undelivered != 1 {
		t.Errorf("reading stats = %+v", rd)
	}
	if s.BitsSent != 400 {
		t.Errorf("BitsSent = %d, want 400", s.BitsSent)
	}
}

func TestStatsLossFraction(t *testing.T) {
	var s Stats
	if got := s.LossFraction(KindHeartbeat); got != 0 {
		t.Errorf("empty LossFraction = %v, want 0", got)
	}
	s.RecordReceive(KindHeartbeat)
	s.RecordReceive(KindHeartbeat)
	s.RecordReceive(KindHeartbeat)
	s.RecordLoss(KindHeartbeat, LossCollision)
	if got := s.LossFraction(KindHeartbeat); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("LossFraction = %v, want 0.25", got)
	}
}

func TestStatsSendLossFraction(t *testing.T) {
	var s Stats
	if got := s.SendLossFraction(KindReading); got != 0 {
		t.Errorf("empty SendLossFraction = %v, want 0", got)
	}
	for i := 0; i < 10; i++ {
		s.RecordSend(KindReading, 10)
	}
	s.RecordUndelivered(KindReading)
	s.RecordUndelivered(KindReading)
	if got := s.SendLossFraction(KindReading); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("SendLossFraction = %v, want 0.2", got)
	}
}

func TestLinkUtilization(t *testing.T) {
	var s Stats
	s.RecordSend(KindHeartbeat, 50000) // 50 kbit over 2 seconds on a 50 kb/s link => 50%
	got := s.LinkUtilization(2*time.Second, 50000)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LinkUtilization = %v, want 0.5", got)
	}
	if s.LinkUtilization(0, 50000) != 0 {
		t.Error("zero runtime should give zero utilization")
	}
	if s.LinkUtilization(time.Second, 0) != 0 {
		t.Error("zero capacity should give zero utilization")
	}
}

func TestStatsKindsSorted(t *testing.T) {
	var s Stats
	s.RecordSend(KindTransport, 1)
	s.RecordSend(KindHeartbeat, 1)
	s.RecordSend(KindReading, 1)
	kinds := s.Kinds()
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Errorf("Kinds not sorted: %v", kinds)
		}
	}
}

func TestStatsSummaryContainsKinds(t *testing.T) {
	var s Stats
	s.RecordSend(KindHeartbeat, 64)
	s.RecordReceive(KindHeartbeat)
	sum := s.Summary()
	if !strings.Contains(sum, "heartbeat") || !strings.Contains(sum, "bits sent: 64") {
		t.Errorf("Summary missing expected content:\n%s", sum)
	}
}

func TestLossCauseString(t *testing.T) {
	tests := []struct {
		cause LossCause
		want  string
	}{
		{LossRandom, "random"},
		{LossCollision, "collision"},
		{LossOverload, "overload"},
		{LossCause(99), "LossCause(99)"},
	}
	for _, tt := range tests {
		if got := tt.cause.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.cause), got, tt.want)
		}
	}
}

func TestTrajectoryErrors(t *testing.T) {
	var tr Trajectory
	if tr.MeanError() != 0 || tr.MaxError() != 0 {
		t.Error("empty trajectory should have zero errors")
	}
	tr.Record(0, geom.Pt(0, 0), geom.Pt(0, 1))
	tr.Record(time.Second, geom.Pt(1, 0), geom.Pt(1, 3))
	if got := tr.MeanError(); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanError = %v, want 2", got)
	}
	if got := tr.MaxError(); math.Abs(got-3) > 1e-12 {
		t.Errorf("MaxError = %v, want 3", got)
	}
	if len(tr.Points) != 2 {
		t.Errorf("Points = %d, want 2", len(tr.Points))
	}
}

func TestLedgerSummarizeAllSuccess(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{At: 0, Type: LabelCreated, Label: "t1", CtxType: "tracker", Mote: 1})
	l.Record(LabelEvent{At: time.Second, Type: LabelRelinquish, Label: "t1", CtxType: "tracker", Mote: 2})
	l.Record(LabelEvent{At: 2 * time.Second, Type: LabelTakeover, Label: "t1", CtxType: "tracker", Mote: 3})
	s := l.Summarize("tracker")
	if s.Created != 1 || s.Takeovers != 1 || s.Relinquish != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Successful != 2 || s.Failed != 0 {
		t.Errorf("success/fail = %d/%d, want 2/0", s.Successful, s.Failed)
	}
	if s.SuccessRate() != 1 {
		t.Errorf("SuccessRate = %v, want 1", s.SuccessRate())
	}
	if s.CoherenceViolations() != 0 {
		t.Errorf("CoherenceViolations = %d, want 0", s.CoherenceViolations())
	}
}

func TestLedgerSummarizeSpuriousLabel(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelTakeover, Label: "t1", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "t2", CtxType: "tracker"}) // spurious
	s := l.Summarize("tracker")
	if s.Successful != 1 || s.Failed != 1 {
		t.Errorf("success/fail = %d/%d, want 1/1", s.Successful, s.Failed)
	}
	if got := s.SuccessRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SuccessRate = %v, want 0.5", got)
	}
	if s.CoherenceViolations() != 1 {
		t.Errorf("CoherenceViolations = %d, want 1", s.CoherenceViolations())
	}
}

func TestLedgerSummarizeSuppressedLabel(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "t2", CtxType: "tracker"})
	l.Record(LabelEvent{Type: LabelDeleted, Label: "t2", CtxType: "tracker"}) // weight suppression recovered it
	s := l.Summarize("tracker")
	if s.Failed != 0 {
		t.Errorf("Failed = %d, want 0 after suppression", s.Failed)
	}
	if s.CoherenceViolations() != 0 {
		t.Errorf("CoherenceViolations = %d, want 0", s.CoherenceViolations())
	}
}

func TestLedgerIgnoresOtherContextTypes(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "f1", CtxType: "fire"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	s := l.Summarize("tracker")
	if s.Created != 1 {
		t.Errorf("Created = %d, want 1", s.Created)
	}
}

func TestLedgerNoHandoversIsPerfect(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "t1", CtxType: "tracker"})
	s := l.Summarize("tracker")
	if s.SuccessRate() != 1 {
		t.Errorf("SuccessRate with no handovers = %v, want 1", s.SuccessRate())
	}
}

func TestLedgerDistinctAndLiveLabels(t *testing.T) {
	var l Ledger
	l.Record(LabelEvent{Type: LabelCreated, Label: "a", CtxType: "x"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "b", CtxType: "x"})
	l.Record(LabelEvent{Type: LabelDeleted, Label: "a", CtxType: "x"})
	l.Record(LabelEvent{Type: LabelCreated, Label: "c", CtxType: "y"})
	if got := l.DistinctLabels("x"); got != 2 {
		t.Errorf("DistinctLabels(x) = %d, want 2", got)
	}
	live := l.LiveLabels("x")
	if len(live) != 1 || live[0] != "b" {
		t.Errorf("LiveLabels(x) = %v, want [b]", live)
	}
}

func TestLabelEventTypeString(t *testing.T) {
	tests := []struct {
		ty   LabelEventType
		want string
	}{
		{LabelCreated, "created"},
		{LabelTakeover, "takeover"},
		{LabelRelinquish, "relinquish"},
		{LabelYield, "yield"},
		{LabelDeleted, "deleted"},
		{LabelEventType(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.ty.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

// TestLedgerSummarizeDeletionsAndYieldsInterleaved covers the messy but
// realistic trace where spurious labels, suppressions, and yields overlap:
// three labels created, two suppressed by deletion, yields sprinkled
// between leadership changes. Deletions must offset the spurious-label
// failure count without ever driving it negative, and yields must count as
// neither success nor failure.
func TestLedgerSummarizeDeletionsAndYieldsInterleaved(t *testing.T) {
	var l Ledger
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	l.Record(LabelEvent{At: sec(0), Type: LabelCreated, Label: "t1", CtxType: "tracker", Mote: 1})
	l.Record(LabelEvent{At: sec(1), Type: LabelYield, Label: "t1", CtxType: "tracker", Mote: 2})
	l.Record(LabelEvent{At: sec(2), Type: LabelCreated, Label: "t2", CtxType: "tracker", Mote: 5})
	l.Record(LabelEvent{At: sec(3), Type: LabelTakeover, Label: "t1", CtxType: "tracker", Mote: 3})
	l.Record(LabelEvent{At: sec(4), Type: LabelDeleted, Label: "t2", CtxType: "tracker", Mote: 5})
	l.Record(LabelEvent{At: sec(5), Type: LabelCreated, Label: "t3", CtxType: "tracker", Mote: 7})
	l.Record(LabelEvent{At: sec(6), Type: LabelYield, Label: "t3", CtxType: "tracker", Mote: 8})
	l.Record(LabelEvent{At: sec(7), Type: LabelRelinquish, Label: "t1", CtxType: "tracker", Mote: 4})
	l.Record(LabelEvent{At: sec(8), Type: LabelDeleted, Label: "t3", CtxType: "tracker", Mote: 7})

	s := l.Summarize("tracker")
	if s.Created != 3 || s.Deleted != 2 || s.Yields != 2 {
		t.Fatalf("created/deleted/yields = %d/%d/%d, want 3/2/2", s.Created, s.Deleted, s.Yields)
	}
	if s.Takeovers != 1 || s.Relinquish != 1 {
		t.Fatalf("takeovers/relinquish = %d/%d, want 1/1", s.Takeovers, s.Relinquish)
	}
	// Both spurious labels were reabsorbed, so every attempted handover
	// (the takeover and the relinquish) succeeded.
	if s.Successful != 2 || s.Failed != 0 {
		t.Errorf("success/fail = %d/%d, want 2/0", s.Successful, s.Failed)
	}
	if s.CoherenceViolations() != 0 {
		t.Errorf("CoherenceViolations = %d, want 0", s.CoherenceViolations())
	}
	// Deletions beyond created-1 must clamp, not undercount failures.
	l.Record(LabelEvent{At: sec(9), Type: LabelDeleted, Label: "t1", CtxType: "tracker", Mote: 1})
	if s := l.Summarize("tracker"); s.Failed != 0 {
		t.Errorf("Failed = %d after extra deletion, want 0 (clamped)", s.Failed)
	}
	if live := l.LiveLabels("tracker"); len(live) != 0 {
		t.Errorf("LiveLabels = %v after all deletions, want none", live)
	}
	// StrictSuccessRate ignores the reabsorptions: 2 successes against 2
	// spurious creations.
	if got := l.Summarize("tracker").StrictSuccessRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("StrictSuccessRate = %v, want 0.5", got)
	}
}

// TestStrictSuccessRateZeroAttempts pins the no-attempt conventions: a run
// whose single label never changed leaders made zero handover attempts and
// must score a perfect 1, and an empty summary (no labels at all) must not
// divide by zero.
func TestStrictSuccessRateZeroAttempts(t *testing.T) {
	if got := (HandoverSummary{Created: 1}).StrictSuccessRate(); got != 1 {
		t.Errorf("StrictSuccessRate with one label, no handovers = %v, want 1", got)
	}
	if got := (HandoverSummary{}).StrictSuccessRate(); got != 1 {
		t.Errorf("StrictSuccessRate of empty summary = %v, want 1", got)
	}
	if got := (HandoverSummary{Created: 1}).SuccessRate(); got != 1 {
		t.Errorf("SuccessRate with no attempts = %v, want 1", got)
	}
}

// TestLinkUtilizationDegenerateInputs: zero or negative duration and zero
// or negative capacity must yield 0 utilization, not a division by zero.
func TestLinkUtilizationDegenerateInputs(t *testing.T) {
	var s Stats
	s.RecordSend(KindHeartbeat, 50_000)
	for _, tc := range []struct {
		name     string
		d        time.Duration
		capacity float64
	}{
		{"zero duration", 0, 50_000},
		{"negative duration", -time.Second, 50_000},
		{"zero capacity", time.Second, 0},
		{"negative capacity", time.Second, -1},
	} {
		if got := s.LinkUtilization(tc.d, tc.capacity); got != 0 {
			t.Errorf("%s: LinkUtilization = %v, want 0", tc.name, got)
		}
	}
	// Sanity: the same stats over a valid window are non-zero.
	if got := s.LinkUtilization(time.Second, 50_000); got != 1 {
		t.Errorf("valid window: LinkUtilization = %v, want 1", got)
	}
}

// TestSendLossFractionNoSends: a kind that never transmitted has no
// meaningful send-loss ratio; the convention is 0, including for kinds the
// stats map has never seen.
func TestSendLossFractionNoSends(t *testing.T) {
	var s Stats
	if got := s.SendLossFraction(KindReading); got != 0 {
		t.Errorf("SendLossFraction on empty stats = %v, want 0", got)
	}
	// Receives without sends (possible when only the peer's stats recorded
	// the transmission) still must not divide by zero.
	s.RecordReceive(KindReading)
	s.RecordUndelivered(KindReading)
	if got := s.SendLossFraction(KindReading); got != 0 {
		t.Errorf("SendLossFraction with zero sends = %v, want 0", got)
	}
	if got := s.LossFraction(KindRelinquish); got != 0 {
		t.Errorf("LossFraction on unseen kind = %v, want 0", got)
	}
}
