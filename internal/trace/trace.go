// Package trace collects run statistics for the simulator: radio message
// accounting (per-kind sent/lost counts, bits on air, link utilization), the
// context-label coherence ledger used for handover-success measurements
// (Figure 4), and trajectory recording (Figure 3).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"envirotrack/internal/geom"
)

// Kind identifies a protocol message class for accounting purposes.
type Kind string

// Message kinds accounted by the radio and protocol layers.
const (
	KindHeartbeat  Kind = "heartbeat"
	KindReading    Kind = "reading"
	KindRelinquish Kind = "relinquish"
	KindJoin       Kind = "join"
	KindReport     Kind = "report"
	KindDirectory  Kind = "directory"
	KindTransport  Kind = "transport"
	KindCross      Kind = "cross-traffic"
	// KindTrace is the passive-traces backend's gossip frame: deposited
	// trace records flooded one hop to the sensing neighborhood.
	KindTrace Kind = "trace"
)

// LossCause distinguishes why a transmitted frame failed to arrive.
type LossCause int

// Loss causes recorded by the radio medium and motes.
const (
	LossRandom    LossCause = iota + 1 // iid channel loss
	LossCollision                      // overlapping transmissions at the receiver
	LossOverload                       // receiver CPU queue full
)

// String implements fmt.Stringer.
func (c LossCause) String() string {
	switch c {
	case LossRandom:
		return "random"
	case LossCollision:
		return "collision"
	case LossOverload:
		return "overload"
	default:
		return fmt.Sprintf("LossCause(%d)", int(c))
	}
}

// KindStats aggregates counters for one message kind.
type KindStats struct {
	Sent          uint64 // transmissions initiated
	Received      uint64 // successful receptions (any receiver)
	Undelivered   uint64 // transmissions that reached no receiver at all
	LostRandom    uint64 // receptions dropped by channel loss
	LostCollision uint64
	LostOverload  uint64
}

// Stats accumulates radio accounting for a run. The zero value is ready to
// use. Stats is not safe for concurrent use; each simulation run owns one.
type Stats struct {
	kinds    map[Kind]*KindStats
	BitsSent uint64 // total bits put on the air
}

// kindStats returns (allocating if needed) the counters for k.
func (s *Stats) kindStats(k Kind) *KindStats {
	if s.kinds == nil {
		s.kinds = make(map[Kind]*KindStats)
	}
	ks, ok := s.kinds[k]
	if !ok {
		ks = &KindStats{}
		s.kinds[k] = ks
	}
	return ks
}

// RecordSend notes a transmission of the given kind and size.
func (s *Stats) RecordSend(k Kind, bits int) {
	s.kindStats(k).Sent++
	s.BitsSent += uint64(bits)
}

// RecordReceive notes one successful reception.
func (s *Stats) RecordReceive(k Kind) {
	s.kindStats(k).Received++
}

// RecordLoss notes one failed reception with its cause.
func (s *Stats) RecordLoss(k Kind, cause LossCause) {
	ks := s.kindStats(k)
	switch cause {
	case LossCollision:
		ks.LostCollision++
	case LossOverload:
		ks.LostOverload++
	default:
		ks.LostRandom++
	}
}

// RecordUndelivered notes a transmission that was received by nobody.
func (s *Stats) RecordUndelivered(k Kind) {
	s.kindStats(k).Undelivered++
}

// AddFrom folds another accumulator's counters into s. The free-running
// parallel engine gives each shard a private Stats and merges them here
// after the shards stop (counter sums are order-independent, so the
// merged totals are deterministic per configuration).
func (s *Stats) AddFrom(o *Stats) {
	s.BitsSent += o.BitsSent
	for k, oks := range o.kinds {
		ks := s.kindStats(k)
		ks.Sent += oks.Sent
		ks.Received += oks.Received
		ks.Undelivered += oks.Undelivered
		ks.LostRandom += oks.LostRandom
		ks.LostCollision += oks.LostCollision
		ks.LostOverload += oks.LostOverload
	}
}

// Kind returns a copy of the counters for k.
func (s *Stats) Kind(k Kind) KindStats {
	if s.kinds == nil {
		return KindStats{}
	}
	if ks, ok := s.kinds[k]; ok {
		return *ks
	}
	return KindStats{}
}

// Kinds returns the recorded kinds in sorted order.
func (s *Stats) Kinds() []Kind {
	out := make([]Kind, 0, len(s.kinds))
	for k := range s.kinds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LossFraction returns lost/(lost+received) receptions for kind k, in
// [0, 1]. It returns 0 when nothing was observed. This matches the paper's
// per-kind "% loss" metric (messages sent but never received).
func (s *Stats) LossFraction(k Kind) float64 {
	ks := s.Kind(k)
	lost := ks.LostRandom + ks.LostCollision + ks.LostOverload
	total := lost + ks.Received
	if total == 0 {
		return 0
	}
	return float64(lost) / float64(total)
}

// SendLossFraction returns the fraction of kind-k transmissions that were
// received by no mote at all — the paper's method of "counting the number
// of messages sent but never received on any other mote".
func (s *Stats) SendLossFraction(k Kind) float64 {
	ks := s.Kind(k)
	if ks.Sent == 0 {
		return 0
	}
	return float64(ks.Undelivered) / float64(ks.Sent)
}

// LinkUtilization returns bits-per-second on the air divided by the channel
// capacity, over the given run duration. This mirrors the paper's worst-case
// estimate: a broadcast model in which no two messages are concurrent.
func (s *Stats) LinkUtilization(runtime time.Duration, capacityBitsPerSec float64) float64 {
	if runtime <= 0 || capacityBitsPerSec <= 0 {
		return 0
	}
	bps := float64(s.BitsSent) / runtime.Seconds()
	return bps / capacityBitsPerSec
}

// Summary renders a human-readable multi-line summary of the statistics.
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bits sent: %d\n", s.BitsSent)
	for _, k := range s.Kinds() {
		ks := s.Kind(k)
		fmt.Fprintf(&b, "%-14s sent=%d recv=%d undeliv=%d lost(rand=%d coll=%d ovl=%d)\n",
			k, ks.Sent, ks.Received, ks.Undelivered, ks.LostRandom, ks.LostCollision, ks.LostOverload)
	}
	return b.String()
}

// TrajectoryPoint pairs a timestamped true target position with the
// position reported by the tracking application.
type TrajectoryPoint struct {
	At       time.Duration
	Actual   geom.Point
	Reported geom.Point
}

// Trajectory records the actual-vs-reported track of one target.
type Trajectory struct {
	Points []TrajectoryPoint
}

// Record appends a sample.
func (tr *Trajectory) Record(at time.Duration, actual, reported geom.Point) {
	tr.Points = append(tr.Points, TrajectoryPoint{At: at, Actual: actual, Reported: reported})
}

// MeanError returns the mean Euclidean distance between actual and reported
// positions, or 0 if no samples exist.
func (tr *Trajectory) MeanError() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range tr.Points {
		sum += p.Actual.Dist(p.Reported)
	}
	return sum / float64(len(tr.Points))
}

// MaxError returns the largest sample error.
func (tr *Trajectory) MaxError() float64 {
	var m float64
	for _, p := range tr.Points {
		if d := p.Actual.Dist(p.Reported); d > m {
			m = d
		}
	}
	return m
}
