package trace

import (
	"sort"
	"sync"
	"time"
)

// LabelEventType classifies an entry in the coherence Ledger.
type LabelEventType int

// Ledger event types.
const (
	LabelCreated LabelEventType = iota + 1
	LabelTakeover
	LabelRelinquish
	LabelYield
	LabelDeleted
)

// String implements fmt.Stringer.
func (t LabelEventType) String() string {
	switch t {
	case LabelCreated:
		return "created"
	case LabelTakeover:
		return "takeover"
	case LabelRelinquish:
		return "relinquish"
	case LabelYield:
		return "yield"
	case LabelDeleted:
		return "deleted"
	default:
		return "unknown"
	}
}

// LabelEvent records one group-management transition for a context label.
type LabelEvent struct {
	At      time.Duration
	Type    LabelEventType
	Label   string // label identity
	CtxType string
	Mote    int // mote involved (new leader for takeover/relinquish, creator for created)
}

// Ledger is the coherence monitor. The group-management layer reports label
// lifecycle events; experiments then derive the paper's handover-success
// metric: a *successful* handover is a leadership change within the same
// label (takeover or relinquish); an *unsuccessful* one is the creation of
// an additional label of the same context type while an earlier label for
// the tracked entity exists (the "spurious label" case of Section 5.2).
// In a free-running parallel run, group managers on different shard
// goroutines record concurrently, so Record takes a lock; the summary
// methods are read after the run but lock anyway for race cleanliness.
type Ledger struct {
	mu     sync.Mutex
	Events []LabelEvent
}

// Record appends an event.
func (l *Ledger) Record(ev LabelEvent) {
	l.mu.Lock()
	l.Events = append(l.Events, ev)
	l.mu.Unlock()
}

// SortDeterministic re-orders the ledger into the canonical (At, CtxType,
// Label, Type, Mote) order. A parallel run calls it once after the shards
// stop: the event *multiset* is deterministic per (seed, shard count) but
// the append interleaving is not, and sorting restores rerun
// byte-identity for order-sensitive readers (LiveLabels, trace dumps).
func (l *Ledger) SortDeterministic() {
	l.mu.Lock()
	sort.SliceStable(l.Events, func(i, j int) bool {
		a, b := &l.Events[i], &l.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.CtxType != b.CtxType {
			return a.CtxType < b.CtxType
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Mote < b.Mote
	})
	l.mu.Unlock()
}

// HandoverSummary is the outcome of a single-target run.
type HandoverSummary struct {
	Created    int // labels created for the context type
	Takeovers  int // receive-timer leadership takeovers
	Relinquish int // explicit leadership relinquishes
	Yields     int // leaders yielding to a same-label leader
	Deleted    int // labels deleted (weight-based suppression)
	// Successful and Failed partition handover attempts per the paper.
	Successful int
	Failed     int
}

// SuccessRate returns Successful/(Successful+Failed), or 1 when no handover
// was attempted (a run with a stationary or in-range target needs none).
func (h HandoverSummary) SuccessRate() float64 {
	total := h.Successful + h.Failed
	if total == 0 {
		return 1
	}
	return float64(h.Successful) / float64(total)
}

// StrictSuccessRate is the paper's Figure 4 metric: every label created
// beyond the first counts as a failed handover ("a new context label is
// spawned at the new tank's location"), even if weight-based suppression
// later reabsorbed it. Returns 1 when no handover was attempted.
func (h HandoverSummary) StrictSuccessRate() float64 {
	failed := h.Created - 1
	if failed < 0 {
		failed = 0
	}
	total := h.Successful + failed
	if total == 0 {
		return 1
	}
	return float64(h.Successful) / float64(total)
}

// CoherenceViolations counts the spurious-label creations: labels beyond
// the first that were never reabsorbed by deletion.
func (h HandoverSummary) CoherenceViolations() int {
	extra := h.Created - 1 - h.Deleted
	if extra < 0 {
		return 0
	}
	return extra
}

// Summarize derives the handover metrics for one context type from the
// ledger, assuming a single tracked entity (the experimental setup of
// Section 6.1). Leadership changes within a label count as successful
// handovers. Each label created after the first counts as a failed
// handover: the target was rediscovered as a "new" entity, violating
// context-label coherence. Labels deleted by weight-based suppression are
// removed from the failure count — the system recovered coherence.
func (l *Ledger) Summarize(ctxType string) HandoverSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s HandoverSummary
	for _, ev := range l.Events {
		if ev.CtxType != ctxType {
			continue
		}
		switch ev.Type {
		case LabelCreated:
			s.Created++
		case LabelTakeover:
			s.Takeovers++
		case LabelRelinquish:
			s.Relinquish++
		case LabelYield:
			s.Yields++
		case LabelDeleted:
			s.Deleted++
		}
	}
	s.Successful = s.Takeovers + s.Relinquish
	failed := s.Created - 1 - s.Deleted
	if failed < 0 {
		failed = 0
	}
	s.Failed = failed
	return s
}

// DistinctLabels returns how many distinct labels of the context type
// appear in the ledger.
func (l *Ledger) DistinctLabels(ctxType string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[string]struct{})
	for _, ev := range l.Events {
		if ev.CtxType == ctxType && ev.Type == LabelCreated {
			seen[ev.Label] = struct{}{}
		}
	}
	return len(seen)
}

// LiveLabels returns the labels of the context type that were created but
// never deleted, in creation order.
func (l *Ledger) LiveLabels(ctxType string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var order []string
	live := make(map[string]bool)
	for _, ev := range l.Events {
		if ev.CtxType != ctxType {
			continue
		}
		switch ev.Type {
		case LabelCreated:
			if !live[ev.Label] {
				live[ev.Label] = true
				order = append(order, ev.Label)
			}
		case LabelDeleted:
			live[ev.Label] = false
		}
	}
	var out []string
	for _, lb := range order {
		if live[lb] {
			out = append(out, lb)
		}
	}
	return out
}
