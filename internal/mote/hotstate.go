package mote

import "envirotrack/internal/geom"

// HotState is the struct-of-arrays mirror of the per-mote fields the
// simulation touches every sensing tick and every series sample: position,
// failure flag, CPU-queue depth, and per-context-type membership and
// sensing bit-words. A network owns one HotState and registers every mote
// into it, so the sensing sweep and the series probes walk dense,
// id-ordered slices instead of chasing a map of mote pointers. The mote and
// group structs remain the cold/API layer; their accessors read through to
// the hot slices, which are the single source of truth for the mirrored
// fields.
//
// Context types are interned into bit positions (up to 32); the membership
// word of a mote is nonzero exactly when some group manager on it holds a
// role, which turns the group_size series probe into a scan over one
// []uint32. Registering a 33rd context type sets the overflow flag and
// callers fall back to the pointer-walking path, so the cap is a fast path,
// not a limit.
type HotState struct {
	pos     []geom.Point
	failed  []bool
	queued  []int32
	member  []uint32
	sensing []uint32
	// shard is the scheduler shard owning each mote's region under sharded
	// execution (all zero in serial runs). The hot state stays one
	// id-indexed arena — shards own motes, not slices — so cross-shard
	// readers like the sweep and the series probes need no indirection.
	shard []int32

	ctxBits  map[string]uint32 // context type -> single-bit mask
	overflow bool
}

// NewHotState returns an empty hot-state arena.
func NewHotState() *HotState {
	return &HotState{ctxBits: make(map[string]uint32)}
}

// Register adds a mote at the given position and returns its dense index.
func (h *HotState) Register(pos geom.Point) int {
	idx := len(h.pos)
	h.pos = append(h.pos, pos)
	h.failed = append(h.failed, false)
	h.queued = append(h.queued, 0)
	h.member = append(h.member, 0)
	h.sensing = append(h.sensing, 0)
	h.shard = append(h.shard, 0)
	return idx
}

// SetShard records the scheduler shard owning the mote at index i.
func (h *HotState) SetShard(i int, shard int32) { h.shard[i] = shard }

// Shard returns the scheduler shard owning the mote at index i (0 in
// serial runs).
func (h *HotState) Shard(i int) int32 { return h.shard[i] }

// ShardPopulation counts registered motes per shard over k shards (motes
// whose shard is out of range are ignored).
func (h *HotState) ShardPopulation(k int) []int {
	out := make([]int, k)
	for _, s := range h.shard {
		if int(s) < k {
			out[s]++
		}
	}
	return out
}

// Len returns the number of registered motes.
func (h *HotState) Len() int { return len(h.pos) }

// Pos returns the registered position of a mote.
func (h *HotState) Pos(i int) geom.Point { return h.pos[i] }

// Failed reports whether the mote at index i is currently failed.
func (h *HotState) Failed(i int) bool { return h.failed[i] }

// Queued returns the CPU-queue depth of the mote at index i.
func (h *HotState) Queued(i int) int { return int(h.queued[i]) }

// QueuedTotal sums the CPU-queue depths of every registered mote (the
// cpu_queue series column).
func (h *HotState) QueuedTotal() int {
	total := 0
	for _, q := range h.queued {
		total += int(q)
	}
	return total
}

// CtxMask interns a context type and returns its single-bit mask. The
// second result is false when the 32-type intern table has overflowed, in
// which case the mask is 0 (and Set* calls with it are no-ops).
func (h *HotState) CtxMask(ctxType string) (uint32, bool) {
	if m, ok := h.ctxBits[ctxType]; ok {
		return m, true
	}
	if len(h.ctxBits) >= 32 {
		h.overflow = true
		return 0, false
	}
	m := uint32(1) << uint(len(h.ctxBits))
	h.ctxBits[ctxType] = m
	return m, true
}

// Overflowed reports whether more than 32 context types were interned;
// when true the member/sensing words no longer cover every type and
// aggregate readers must fall back to walking the cold structs.
func (h *HotState) Overflowed() bool { return h.overflow }

// SetMember sets or clears the mote's membership bit for a context type
// (set whenever its group manager holds any role).
func (h *HotState) SetMember(i int, ctxType string, on bool) {
	m, ok := h.CtxMask(ctxType)
	if !ok {
		return
	}
	if on {
		h.member[i] |= m
	} else {
		h.member[i] &^= m
	}
}

// SetSensing sets or clears the mote's sensing bit for a context type
// (the last sensee() evaluation its group manager was told about).
func (h *HotState) SetSensing(i int, ctxType string, on bool) {
	m, ok := h.CtxMask(ctxType)
	if !ok {
		return
	}
	if on {
		h.sensing[i] |= m
	} else {
		h.sensing[i] &^= m
	}
}

// MemberCountMask counts motes whose membership word intersects mask — the
// group_size series column, with mask the union of the attached context
// types' bits.
func (h *HotState) MemberCountMask(mask uint32) int {
	total := 0
	for _, w := range h.member {
		if w&mask != 0 {
			total++
		}
	}
	return total
}
