package mote

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

type harness struct {
	sched  *simtime.Scheduler
	medium *radio.Medium
	field  *phenomena.Field
	stats  *trace.Stats
	rng    *rand.Rand
}

func newHarness(t *testing.T, p radio.Params) *harness {
	t.Helper()
	sched := simtime.NewScheduler()
	var stats trace.Stats
	rng := rand.New(rand.NewSource(1))
	return &harness{
		sched:  sched,
		medium: radio.New(sched, p, rng, &stats),
		field:  phenomena.NewField(),
		stats:  &stats,
		rng:    rng,
	}
}

func (h *harness) mote(t *testing.T, id radio.NodeID, pos geom.Point, model *sensor.Model, cfg Config) *Mote {
	t.Helper()
	m, err := New(id, pos, h.sched, h.medium, h.field, model, cfg, h.rng, h.stats)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewDuplicateID(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	h.mote(t, 1, geom.Pt(0, 0), nil, Config{})
	if _, err := New(1, geom.Pt(1, 1), h.sched, h.medium, h.field, nil, Config{}, h.rng, h.stats); err == nil {
		t.Fatal("expected duplicate-id error")
	}
}

func TestConfigDefaults(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	m := h.mote(t, 1, geom.Pt(0, 0), nil, Config{})
	cfg := m.Config()
	if cfg.QueueCap != DefaultQueueCap {
		t.Errorf("QueueCap = %d, want default %d", cfg.QueueCap, DefaultQueueCap)
	}
	if cfg.SensePeriod != DefaultSensePeriod {
		t.Errorf("SensePeriod = %v, want default %v", cfg.SensePeriod, DefaultSensePeriod)
	}
}

func TestSendAndDispatch(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	a := h.mote(t, 1, geom.Pt(0, 0), nil, Config{})
	b := h.mote(t, 2, geom.Pt(1, 0), nil, Config{})
	var got []string
	b.AddFrameHandler(func(f radio.Frame) bool {
		if s, ok := f.Payload.(string); ok && s == "first" {
			got = append(got, "h1:"+s)
			return true
		}
		return false
	})
	b.AddFrameHandler(func(f radio.Frame) bool {
		got = append(got, "h2:"+f.Payload.(string))
		return true
	})
	a.Send(trace.KindReading, 2, 0, "first")
	a.Send(trace.KindReading, 2, 0, "second")
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "h1:first" || got[1] != "h2:second" {
		t.Errorf("dispatch order = %v", got)
	}
}

func TestBroadcastReachesNeighbors(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 1.5})
	a := h.mote(t, 1, geom.Pt(0, 0), nil, Config{})
	received := 0
	b := h.mote(t, 2, geom.Pt(1, 0), nil, Config{})
	b.AddFrameHandler(func(radio.Frame) bool { received++; return true })
	c := h.mote(t, 3, geom.Pt(5, 0), nil, Config{})
	c.AddFrameHandler(func(radio.Frame) bool { received += 100; return true })
	a.Broadcast(trace.KindHeartbeat, 0, "hb")
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Errorf("received = %d, want 1 (only in-range neighbor)", received)
	}
}

func TestCPUServiceDelaysDispatch(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2, BitRate: 1e9})
	a := h.mote(t, 1, geom.Pt(0, 0), nil, Config{})
	var at time.Duration
	b := h.mote(t, 2, geom.Pt(1, 0), nil, Config{ServiceTime: 10 * time.Millisecond})
	b.AddFrameHandler(func(radio.Frame) bool { at = h.sched.Now(); return true })
	a.Send(trace.KindReading, 2, 8, "x")
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 10*time.Millisecond {
		t.Errorf("dispatch at %v, want >= 10ms service delay", at)
	}
}

func TestCPUQueueSerializes(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2, BitRate: 1e9, DisableCollisions: true})
	a := h.mote(t, 1, geom.Pt(0, 0), nil, Config{})
	c := h.mote(t, 3, geom.Pt(0, 1), nil, Config{})
	var times []time.Duration
	b := h.mote(t, 2, geom.Pt(1, 0), nil, Config{ServiceTime: 10 * time.Millisecond, QueueCap: 10})
	b.AddFrameHandler(func(radio.Frame) bool { times = append(times, h.sched.Now()); return true })
	// Two frames from different senders arriving almost simultaneously: the
	// second is processed only after the first's service completes.
	a.Send(trace.KindReading, 2, 8, "x")
	c.Send(trace.KindReading, 2, 8, "y")
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("dispatched %d frames, want 2", len(times))
	}
	if times[1]-times[0] < 10*time.Millisecond-time.Microsecond {
		t.Errorf("second dispatch %v after first, want >= service time", times[1]-times[0])
	}
}

func TestCPUOverloadDropsFrames(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2, BitRate: 1e9, DisableCollisions: true})
	senders := make([]*Mote, 5)
	for i := range senders {
		senders[i] = h.mote(t, radio.NodeID(10+i), geom.Pt(0, float64(i)*0.1), nil, Config{})
	}
	processed := 0
	b := h.mote(t, 2, geom.Pt(1, 0), nil, Config{ServiceTime: 100 * time.Millisecond, QueueCap: 2})
	b.AddFrameHandler(func(radio.Frame) bool { processed++; return true })
	for _, s := range senders {
		s.Send(trace.KindReading, 2, 8, "x")
	}
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if processed > 2 {
		t.Errorf("processed = %d, want <= queue cap 2", processed)
	}
	if got := h.stats.Kind(trace.KindReading).LostOverload; got == 0 {
		t.Error("expected overload losses to be recorded")
	}
}

func TestFailedMoteDoesNotSendProcessOrSense(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	a := h.mote(t, 1, geom.Pt(0, 0), nil, Config{})
	received := 0
	b := h.mote(t, 2, geom.Pt(1, 0), nil, Config{})
	b.AddFrameHandler(func(radio.Frame) bool { received++; return true })

	a.Fail()
	if !a.Failed() {
		t.Error("Failed() = false after Fail")
	}
	a.Send(trace.KindReading, 2, 0, "x")
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 0 {
		t.Error("failed mote transmitted")
	}

	// Failed receiver drops frames.
	b.Fail()
	a.Restore()
	a.Send(trace.KindReading, 2, 0, "x")
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 0 {
		t.Error("failed mote processed a frame")
	}

	b.Restore()
	a.Send(trace.KindReading, 2, 0, "x")
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Error("restored mote did not process")
	}
}

func TestSensingScanInvokesListeners(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	h.field.Add(&phenomena.Target{
		Kind:            "vehicle",
		Traj:            phenomena.Stationary{At: geom.Pt(0, 0)},
		SignatureRadius: 1,
	})
	model := sensor.VehicleModel("vehicle")
	m := h.mote(t, 1, geom.Pt(0.5, 0), model, Config{SensePeriod: time.Second})
	var readings []sensor.Reading
	m.AddSenseListener(func(rd sensor.Reading) { readings = append(readings, rd) })
	m.Start()
	if err := h.sched.RunUntil(3500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(readings) != 3 {
		t.Fatalf("scans = %d, want 3", len(readings))
	}
	if v, _ := readings[0].Value("magnetic_detect"); v != 1 {
		t.Errorf("detection = %v, want 1", v)
	}
	m.Stop()
	before := len(readings)
	if err := h.sched.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(readings) != before {
		t.Error("scans continued after Stop")
	}
}

func TestFailedMoteSkipsScan(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	model := sensor.NewModel()
	model.SetChannel("x", sensor.ConstantChannel(1))
	m := h.mote(t, 1, geom.Pt(0, 0), model, Config{SensePeriod: time.Second})
	scans := 0
	m.AddSenseListener(func(sensor.Reading) { scans++ })
	m.Start()
	m.Fail()
	if err := h.sched.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if scans != 0 {
		t.Errorf("failed mote scanned %d times", scans)
	}
}

func TestSenseWithoutModel(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	m := h.mote(t, 7, geom.Pt(2, 3), nil, Config{})
	rd := m.Sense()
	if rd.MoteID != 7 || rd.Position != geom.Pt(2, 3) {
		t.Errorf("reading = %+v", rd)
	}
	if len(rd.Values) != 0 {
		t.Errorf("model-less reading has values: %v", rd.Values)
	}
	m.Start() // should not panic or schedule a ticker
	if err := h.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestStartIdempotent(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	model := sensor.NewModel()
	model.SetChannel("x", sensor.ConstantChannel(1))
	m := h.mote(t, 1, geom.Pt(0, 0), model, Config{SensePeriod: time.Second})
	scans := 0
	m.AddSenseListener(func(sensor.Reading) { scans++ })
	m.Start()
	m.Start()
	if err := h.sched.RunUntil(2500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if scans != 2 {
		t.Errorf("scans = %d, want 2 (double Start must not double-tick)", scans)
	}
}

func TestAccessors(t *testing.T) {
	h := newHarness(t, radio.Params{CommRadius: 2})
	m := h.mote(t, 9, geom.Pt(4, 5), nil, Config{})
	if m.ID() != 9 {
		t.Errorf("ID = %v", m.ID())
	}
	if m.Pos() != geom.Pt(4, 5) {
		t.Errorf("Pos = %v", m.Pos())
	}
	if m.Scheduler() != h.sched {
		t.Error("Scheduler mismatch")
	}
	if m.Rand() == nil {
		t.Error("Rand is nil")
	}
}
