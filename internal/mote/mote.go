// Package mote models a sensor node: a stationary device with a radio, a
// sensing suite sampled periodically, and a constrained CPU that processes
// received messages from a bounded queue. The CPU model is what produces
// the paper's Figure 5 breakdown — at very small heartbeat periods, message
// processing (not channel bandwidth) becomes the bottleneck and tracking
// performance declines.
package mote

import (
	"fmt"
	"math/rand"
	"time"

	"envirotrack/internal/arena"
	"envirotrack/internal/geom"
	"envirotrack/internal/obs"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// Config holds the per-mote resource parameters.
type Config struct {
	// ServiceTime is the CPU time consumed to process one received frame.
	// Zero models an infinitely fast CPU.
	ServiceTime time.Duration
	// QueueCap bounds the number of frames awaiting processing; arrivals
	// beyond it are dropped (accounted as overload loss). Zero means
	// DefaultQueueCap.
	QueueCap int
	// SensePeriod is the interval between sensor scans. Zero means
	// DefaultSensePeriod.
	SensePeriod time.Duration
}

// Default resource parameters. The service time approximates a few
// milliseconds of protocol processing on a 4 MHz MICA-class CPU; the queue
// capacity matches a small TinyOS task/message queue.
const (
	DefaultQueueCap    = 8
	DefaultSensePeriod = 100 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.SensePeriod <= 0 {
		c.SensePeriod = DefaultSensePeriod
	}
	return c
}

// FrameHandler consumes a received frame. It returns true when the frame
// was recognized; dispatch stops at the first handler that consumes it.
type FrameHandler func(radio.Frame) bool

// SenseListener observes each periodic sensor scan.
type SenseListener func(sensor.Reading)

// Mote is one simulated sensor node. It is driven by the simulation
// scheduler and is not safe for concurrent use.
type Mote struct {
	id     radio.NodeID
	pos    geom.Point
	sched  *simtime.Scheduler
	medium *radio.Medium
	field  *phenomena.Field
	model  *sensor.Model
	cfg    Config
	rng    *rand.Rand
	stats  *trace.Stats
	bus    *obs.Bus

	handlers  []FrameHandler
	listeners []SenseListener

	// hot is the struct-of-arrays home of the mote's failure flag and
	// CPU-queue depth (see HotState); hotIdx is this mote's row. A
	// standalone mote owns a private single-row HotState; BindHot moves the
	// mote into a network-owned shared one.
	hot    *HotState
	hotIdx int

	// CPU state.
	busyUntil time.Duration
	// taskFree pools the CPU-queue completion records (intrusive list);
	// refills come from the mote-local arena so a queue's records sit in
	// one block.
	taskFree  *cpuTask
	taskArena arena.Arena[cpuTask]

	// senseVals is the scratch buffer periodic scans sample into, reused
	// every tick so steady-state sensing allocates nothing.
	senseVals []float64

	senseTicker *simtime.Ticker
	started     bool

	// corrSeq numbers correlated messages originated by this mote. All
	// layers mint from this one counter, so (origin, seq) identifies a
	// message uniquely within a run regardless of kind or label.
	corrSeq uint32
}

// cpuTask is one queued frame awaiting its CPU service-time completion.
// Records are pooled per mote and recycled when the completion fires.
type cpuTask struct {
	m    *Mote
	f    radio.Frame
	next *cpuTask
}

// New registers a mote on the medium at the given position. The sensing
// model may be nil for a pure relay node.
func New(
	id radio.NodeID,
	pos geom.Point,
	sched *simtime.Scheduler,
	medium *radio.Medium,
	field *phenomena.Field,
	model *sensor.Model,
	cfg Config,
	rng *rand.Rand,
	stats *trace.Stats,
) (*Mote, error) {
	m := &Mote{
		id:     id,
		pos:    pos,
		sched:  sched,
		medium: medium,
		field:  field,
		model:  model,
		cfg:    cfg.withDefaults(),
		rng:    rng,
		stats:  stats,
	}
	m.hot = NewHotState()
	m.hotIdx = m.hot.Register(pos)
	if err := medium.AddNode(id, pos, m.onFrame); err != nil {
		return nil, fmt.Errorf("mote %d: %w", id, err)
	}
	return m, nil
}

// BindHot re-registers the mote into a shared (network-owned) HotState and
// returns its row index. It must be called before the simulation starts;
// the mote's hot fields start from their zero state in the new arena.
func (m *Mote) BindHot(h *HotState) int {
	m.hot = h
	m.hotIdx = h.Register(m.pos)
	return m.hotIdx
}

// Hot returns the mote's hot-state arena and its row index in it.
func (m *Mote) Hot() (*HotState, int) { return m.hot, m.hotIdx }

// ID returns the mote's node id.
func (m *Mote) ID() radio.NodeID { return m.id }

// Pos returns the mote's position.
func (m *Mote) Pos() geom.Point { return m.pos }

// Scheduler exposes the simulation scheduler for protocol timers.
func (m *Mote) Scheduler() *simtime.Scheduler { return m.sched }

// Rand returns the mote's deterministic random source (for jitter).
func (m *Mote) Rand() *rand.Rand { return m.rng }

// NextCorrSeq returns a fresh correlation sequence number (1-based) for a
// message originated by this mote. Relays and rebroadcasts must preserve
// the original radio.Corr rather than mint a new one.
func (m *Mote) NextCorrSeq() uint32 {
	m.corrSeq++
	return m.corrSeq
}

// Config returns the mote's resource configuration (defaults applied).
func (m *Mote) Config() Config { return m.cfg }

// SetObserver attaches the observability bus. A nil bus disables emission.
func (m *Mote) SetObserver(bus *obs.Bus) { m.bus = bus }

// Obs returns the mote's observability bus; protocol layers built on the
// mote (group, transport, directory) emit through it. May be nil.
func (m *Mote) Obs() *obs.Bus { return m.bus }

// Queued returns the number of frames waiting in the CPU queue (series
// probe for the cpu_queue column).
func (m *Mote) Queued() int { return m.hot.Queued(m.hotIdx) }

// HasModel reports whether the mote has a sensing model (pure relay nodes
// do not and are skipped by the network's sensing sweep).
func (m *Mote) HasModel() bool { return m.model != nil }

// AddFrameHandler appends a frame handler; handlers run in registration
// order until one consumes the frame.
func (m *Mote) AddFrameHandler(h FrameHandler) {
	m.handlers = append(m.handlers, h)
}

// AddSenseListener appends a listener invoked on every periodic scan.
func (m *Mote) AddSenseListener(l SenseListener) {
	m.listeners = append(m.listeners, l)
}

// Start begins the periodic sensing scan with a mote-owned ticker. It is
// idempotent. Networks use StartManaged plus a single shared sweep ticker
// instead; Start remains for standalone motes (tests, ad-hoc topologies).
func (m *Mote) Start() {
	if m.started || m.model == nil {
		m.started = true
		return
	}
	m.started = true
	m.senseTicker = simtime.NewTickerOwned(m.sched, m.cfg.SensePeriod, simtime.OwnerSense, m.scan)
}

// StartManaged marks the mote started without arming a sensing ticker; the
// owner drives scans through ScanOnce from a single consolidated sweep.
// All motes in a sweep share one scheduler event per sense period instead
// of one ticker re-arm each, and the sweep reads positions and failure
// flags from the shared HotState slices.
func (m *Mote) StartManaged() { m.started = true }

// ScanOnce runs one sensing scan on behalf of a managed sweep. It is a
// no-op before StartManaged/Start or after Stop.
func (m *Mote) ScanOnce() {
	if !m.started || m.model == nil {
		return
	}
	m.scan()
}

// Stop halts the sensing scan.
func (m *Mote) Stop() {
	if m.senseTicker != nil {
		m.senseTicker.Stop()
	}
	m.started = false
}

// Fail kills the mote: it stops sensing, processing, and transmitting until
// Restore is called. Used for fault injection (Figure 5's worst case).
func (m *Mote) Fail() {
	if m.hot.failed[m.hotIdx] {
		return
	}
	m.hot.failed[m.hotIdx] = true
	if bus := m.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: m.sched.Now(), Type: obs.EvMoteFailed, Mote: int(m.id), Pos: m.pos,
		})
	}
}

// Restore revives a failed mote.
func (m *Mote) Restore() {
	if !m.hot.failed[m.hotIdx] {
		return
	}
	m.hot.failed[m.hotIdx] = false
	if bus := m.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: m.sched.Now(), Type: obs.EvMoteRestored, Mote: int(m.id), Pos: m.pos,
		})
	}
}

// Failed reports whether the mote is currently failed.
func (m *Mote) Failed() bool { return m.hot.failed[m.hotIdx] }

// Sense samples the sensing model immediately and returns the reading.
// It returns a zero reading when the mote has no sensing model.
func (m *Mote) Sense() sensor.Reading {
	if m.model == nil {
		return sensor.Reading{At: m.sched.Now(), MoteID: int(m.id), Position: m.pos}
	}
	return m.model.Sample(m.field, int(m.id), m.pos, m.sched.Now())
}

// Send transmits a frame from this mote. Failed motes transmit nothing.
func (m *Mote) Send(kind trace.Kind, dst radio.NodeID, bits int, payload any) {
	m.SendTraced(kind, dst, bits, payload, radio.Corr{})
}

// SendTraced is Send with a causal-correlation header: every frame event
// the transmission produces carries corr's (origin, seq) key, so span
// sinks can tie the hop to its logical message.
func (m *Mote) SendTraced(kind trace.Kind, dst radio.NodeID, bits int, payload any, corr radio.Corr) {
	if m.hot.failed[m.hotIdx] {
		return
	}
	m.medium.Send(radio.Frame{Kind: kind, Src: m.id, Dst: dst, Bits: bits, Payload: payload, Corr: corr})
}

// Broadcast transmits a frame to every node in range.
func (m *Mote) Broadcast(kind trace.Kind, bits int, payload any) {
	m.Send(kind, radio.Broadcast, bits, payload)
}

// BroadcastTraced is Broadcast with a causal-correlation header.
func (m *Mote) BroadcastTraced(kind trace.Kind, bits int, payload any, corr radio.Corr) {
	m.SendTraced(kind, radio.Broadcast, bits, payload, corr)
}

// scan runs one sensing tick. It samples into the mote's reusable scratch
// buffer; the reading handed to listeners is therefore valid only for the
// duration of the callback (listeners extract values synchronously).
func (m *Mote) scan() {
	if m.hot.failed[m.hotIdx] {
		return
	}
	rd, buf := m.model.SampleInto(m.field, int(m.id), m.pos, m.sched.Now(), m.senseVals[:0])
	m.senseVals = buf
	for _, l := range m.listeners {
		l(rd)
	}
}

// onFrame is the radio reception callback: it feeds the CPU queue.
func (m *Mote) onFrame(f radio.Frame) {
	if m.hot.failed[m.hotIdx] {
		return
	}
	if m.cfg.ServiceTime <= 0 {
		m.dispatch(f)
		return
	}
	if m.hot.Queued(m.hotIdx) >= m.cfg.QueueCap {
		if m.stats != nil {
			m.stats.RecordLoss(f.Kind, trace.LossOverload)
		}
		if bus := m.bus; bus.Active() {
			bus.Emit(obs.Event{
				At: m.sched.Now(), Type: obs.EvCPUOverload, Mote: int(m.id),
				Peer: int(f.Src), Pos: m.pos, Kind: f.Kind, Bits: f.Bits,
				Origin: int(f.Corr.Origin), Seq: uint64(f.Corr.Seq), Frame: f.ID,
			})
		}
		return
	}
	m.hot.queued[m.hotIdx]++
	now := m.sched.Now()
	start := now
	if m.busyUntil > start {
		start = m.busyUntil
	}
	done := start + m.cfg.ServiceTime
	m.busyUntil = done
	t := m.acquireTask()
	t.f = f
	m.sched.AtEventOwned(done, simtime.OwnerMote, cpuTaskDone, t)
}

// cpuTaskDone completes one frame's CPU service: the record is recycled
// before dispatch, which may reenter the queue by sending frames.
func cpuTaskDone(arg any) {
	t := arg.(*cpuTask)
	m, f := t.m, t.f
	t.f = radio.Frame{}
	t.next = m.taskFree
	m.taskFree = t
	m.hot.queued[m.hotIdx]--
	if m.hot.failed[m.hotIdx] {
		return
	}
	m.dispatch(f)
}

func (m *Mote) acquireTask() *cpuTask {
	if t := m.taskFree; t != nil {
		m.taskFree = t.next
		t.next = nil
		return t
	}
	t := m.taskArena.New()
	t.m = m
	return t
}

func (m *Mote) dispatch(f radio.Frame) {
	for _, h := range m.handlers {
		if h(f) {
			return
		}
	}
}
