// Package mote models a sensor node: a stationary device with a radio, a
// sensing suite sampled periodically, and a constrained CPU that processes
// received messages from a bounded queue. The CPU model is what produces
// the paper's Figure 5 breakdown — at very small heartbeat periods, message
// processing (not channel bandwidth) becomes the bottleneck and tracking
// performance declines.
package mote

import (
	"fmt"
	"math/rand"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/obs"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/sensor"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// Config holds the per-mote resource parameters.
type Config struct {
	// ServiceTime is the CPU time consumed to process one received frame.
	// Zero models an infinitely fast CPU.
	ServiceTime time.Duration
	// QueueCap bounds the number of frames awaiting processing; arrivals
	// beyond it are dropped (accounted as overload loss). Zero means
	// DefaultQueueCap.
	QueueCap int
	// SensePeriod is the interval between sensor scans. Zero means
	// DefaultSensePeriod.
	SensePeriod time.Duration
}

// Default resource parameters. The service time approximates a few
// milliseconds of protocol processing on a 4 MHz MICA-class CPU; the queue
// capacity matches a small TinyOS task/message queue.
const (
	DefaultQueueCap    = 8
	DefaultSensePeriod = 100 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.SensePeriod <= 0 {
		c.SensePeriod = DefaultSensePeriod
	}
	return c
}

// FrameHandler consumes a received frame. It returns true when the frame
// was recognized; dispatch stops at the first handler that consumes it.
type FrameHandler func(radio.Frame) bool

// SenseListener observes each periodic sensor scan.
type SenseListener func(sensor.Reading)

// Mote is one simulated sensor node. It is driven by the simulation
// scheduler and is not safe for concurrent use.
type Mote struct {
	id     radio.NodeID
	pos    geom.Point
	sched  *simtime.Scheduler
	medium *radio.Medium
	field  *phenomena.Field
	model  *sensor.Model
	cfg    Config
	rng    *rand.Rand
	stats  *trace.Stats
	bus    *obs.Bus

	handlers  []FrameHandler
	listeners []SenseListener

	// CPU state.
	busyUntil time.Duration
	queued    int
	// taskFree pools the CPU-queue completion records (intrusive list).
	taskFree *cpuTask

	// senseVals is the scratch buffer periodic scans sample into, reused
	// every tick so steady-state sensing allocates nothing.
	senseVals []float64

	senseTicker *simtime.Ticker
	started     bool
	failed      bool
}

// cpuTask is one queued frame awaiting its CPU service-time completion.
// Records are pooled per mote and recycled when the completion fires.
type cpuTask struct {
	m    *Mote
	f    radio.Frame
	next *cpuTask
}

// New registers a mote on the medium at the given position. The sensing
// model may be nil for a pure relay node.
func New(
	id radio.NodeID,
	pos geom.Point,
	sched *simtime.Scheduler,
	medium *radio.Medium,
	field *phenomena.Field,
	model *sensor.Model,
	cfg Config,
	rng *rand.Rand,
	stats *trace.Stats,
) (*Mote, error) {
	m := &Mote{
		id:     id,
		pos:    pos,
		sched:  sched,
		medium: medium,
		field:  field,
		model:  model,
		cfg:    cfg.withDefaults(),
		rng:    rng,
		stats:  stats,
	}
	if err := medium.AddNode(id, pos, m.onFrame); err != nil {
		return nil, fmt.Errorf("mote %d: %w", id, err)
	}
	return m, nil
}

// ID returns the mote's node id.
func (m *Mote) ID() radio.NodeID { return m.id }

// Pos returns the mote's position.
func (m *Mote) Pos() geom.Point { return m.pos }

// Scheduler exposes the simulation scheduler for protocol timers.
func (m *Mote) Scheduler() *simtime.Scheduler { return m.sched }

// Rand returns the mote's deterministic random source (for jitter).
func (m *Mote) Rand() *rand.Rand { return m.rng }

// Config returns the mote's resource configuration (defaults applied).
func (m *Mote) Config() Config { return m.cfg }

// SetObserver attaches the observability bus. A nil bus disables emission.
func (m *Mote) SetObserver(bus *obs.Bus) { m.bus = bus }

// Obs returns the mote's observability bus; protocol layers built on the
// mote (group, transport, directory) emit through it. May be nil.
func (m *Mote) Obs() *obs.Bus { return m.bus }

// Queued returns the number of frames waiting in the CPU queue (series
// probe for the cpu_queue column).
func (m *Mote) Queued() int { return m.queued }

// AddFrameHandler appends a frame handler; handlers run in registration
// order until one consumes the frame.
func (m *Mote) AddFrameHandler(h FrameHandler) {
	m.handlers = append(m.handlers, h)
}

// AddSenseListener appends a listener invoked on every periodic scan.
func (m *Mote) AddSenseListener(l SenseListener) {
	m.listeners = append(m.listeners, l)
}

// Start begins the periodic sensing scan. It is idempotent.
func (m *Mote) Start() {
	if m.started || m.model == nil {
		m.started = true
		return
	}
	m.started = true
	m.senseTicker = simtime.NewTicker(m.sched, m.cfg.SensePeriod, m.scan)
}

// Stop halts the sensing scan.
func (m *Mote) Stop() {
	if m.senseTicker != nil {
		m.senseTicker.Stop()
	}
	m.started = false
}

// Fail kills the mote: it stops sensing, processing, and transmitting until
// Restore is called. Used for fault injection (Figure 5's worst case).
func (m *Mote) Fail() {
	if m.failed {
		return
	}
	m.failed = true
	if bus := m.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: m.sched.Now(), Type: obs.EvMoteFailed, Mote: int(m.id), Pos: m.pos,
		})
	}
}

// Restore revives a failed mote.
func (m *Mote) Restore() {
	if !m.failed {
		return
	}
	m.failed = false
	if bus := m.bus; bus.Active() {
		bus.Emit(obs.Event{
			At: m.sched.Now(), Type: obs.EvMoteRestored, Mote: int(m.id), Pos: m.pos,
		})
	}
}

// Failed reports whether the mote is currently failed.
func (m *Mote) Failed() bool { return m.failed }

// Sense samples the sensing model immediately and returns the reading.
// It returns a zero reading when the mote has no sensing model.
func (m *Mote) Sense() sensor.Reading {
	if m.model == nil {
		return sensor.Reading{At: m.sched.Now(), MoteID: int(m.id), Position: m.pos}
	}
	return m.model.Sample(m.field, int(m.id), m.pos, m.sched.Now())
}

// Send transmits a frame from this mote. Failed motes transmit nothing.
func (m *Mote) Send(kind trace.Kind, dst radio.NodeID, bits int, payload any) {
	if m.failed {
		return
	}
	m.medium.Send(radio.Frame{Kind: kind, Src: m.id, Dst: dst, Bits: bits, Payload: payload})
}

// Broadcast transmits a frame to every node in range.
func (m *Mote) Broadcast(kind trace.Kind, bits int, payload any) {
	m.Send(kind, radio.Broadcast, bits, payload)
}

// scan runs one sensing tick. It samples into the mote's reusable scratch
// buffer; the reading handed to listeners is therefore valid only for the
// duration of the callback (listeners extract values synchronously).
func (m *Mote) scan() {
	if m.failed {
		return
	}
	rd, buf := m.model.SampleInto(m.field, int(m.id), m.pos, m.sched.Now(), m.senseVals[:0])
	m.senseVals = buf
	for _, l := range m.listeners {
		l(rd)
	}
}

// onFrame is the radio reception callback: it feeds the CPU queue.
func (m *Mote) onFrame(f radio.Frame) {
	if m.failed {
		return
	}
	if m.cfg.ServiceTime <= 0 {
		m.dispatch(f)
		return
	}
	if m.queued >= m.cfg.QueueCap {
		if m.stats != nil {
			m.stats.RecordLoss(f.Kind, trace.LossOverload)
		}
		if bus := m.bus; bus.Active() {
			bus.Emit(obs.Event{
				At: m.sched.Now(), Type: obs.EvCPUOverload, Mote: int(m.id),
				Peer: int(f.Src), Pos: m.pos, Kind: f.Kind, Bits: f.Bits,
			})
		}
		return
	}
	m.queued++
	now := m.sched.Now()
	start := now
	if m.busyUntil > start {
		start = m.busyUntil
	}
	done := start + m.cfg.ServiceTime
	m.busyUntil = done
	t := m.acquireTask()
	t.f = f
	m.sched.AtEvent(done, cpuTaskDone, t)
}

// cpuTaskDone completes one frame's CPU service: the record is recycled
// before dispatch, which may reenter the queue by sending frames.
func cpuTaskDone(arg any) {
	t := arg.(*cpuTask)
	m, f := t.m, t.f
	t.f = radio.Frame{}
	t.next = m.taskFree
	m.taskFree = t
	m.queued--
	if m.failed {
		return
	}
	m.dispatch(f)
}

func (m *Mote) acquireTask() *cpuTask {
	if t := m.taskFree; t != nil {
		m.taskFree = t.next
		t.next = nil
		return t
	}
	return &cpuTask{m: m}
}

func (m *Mote) dispatch(f radio.Frame) {
	for _, h := range m.handlers {
		if h(f) {
			return
		}
	}
}
