package eval

import (
	"sync"
	"time"

	"envirotrack"
	"envirotrack/internal/obs"
)

// obsCfg is the package-level observability configuration applied to every
// Run. Like SetParallelism, it is process-wide so the CLI and benchmarks
// can switch tracing on without threading options through every harness.
// The sinks in this package's scope are all safe for concurrent use, so a
// parallel sweep can share one sink; each run's bus tags events with the
// scenario seed for post-hoc separation.
var obsCfg struct {
	mu          sync.Mutex
	sink        obs.Sink
	metrics     *obs.MetricsSink
	cadence     time.Duration
	series      []TaggedSeries
	runs        *obs.Counter // optional runs-completed counter
	perReceiver bool
	selfProfile *envirotrack.SelfProfile
	shardHealth *envirotrack.ShardHealth
	shards      int
	parallel    int
	backend     string
}

// SetBackend makes every subsequent Run use the named tracking backend
// for scenarios that don't pin one explicitly ("" restores the leader
// default). Like the other package-level knobs this is process-wide, so
// the CLI's -backend flag reaches every experiment harness.
func SetBackend(name string) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.backend = name
}

// defaultBackend reads the SetBackend configuration.
func defaultBackend() string {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	return obsCfg.backend
}

// SetShards makes every subsequent Run execute on a spatially sharded
// event engine with n scheduler shards (see envirotrack.WithShards);
// n < 2 restores the serial engine. Results and traces are byte-identical
// either way — the shard differential battery flips this to prove it.
func SetShards(n int) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.shards = n
}

// SetParallelShards makes every subsequent Run execute on the
// free-running parallel engine with k shard goroutines (see
// envirotrack.WithParallelShards); k < 2 restores the configuration
// chosen by SetShards. Unlike SetShards, parallel results are not
// byte-identical to serial — they are statistically equivalent, which
// the equivalence battery asserts — but they stay deterministic per
// (seed, shard count). Takes precedence over SetShards.
func SetParallelShards(k int) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.parallel = k
}

// SetPerReceiverDelivery makes every subsequent Run use the radio medium's
// per-receiver reference delivery path instead of batched fan-out. The two
// paths produce byte-identical traces; the equivalence tests flip this to
// prove it, including under parallel sweeps.
func SetPerReceiverDelivery(on bool) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.perReceiver = on
}

// SetEventSink attaches a sink to every subsequent Run's event bus; nil
// detaches it. The sink must be safe for concurrent use when sweeps run
// in parallel (every sink in internal/obs is).
func SetEventSink(s obs.Sink) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.sink = s
}

// SetMetricsRegistry derives protocol metrics (per-type event counts,
// handover-latency and leader-tenure histograms) from every subsequent
// Run into reg; nil disables. It also registers an eval_runs_total
// counter tracking completed runs.
func SetMetricsRegistry(reg *obs.Registry) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if reg == nil {
		obsCfg.metrics = nil
		obsCfg.runs = nil
		return
	}
	obsCfg.metrics = obs.NewMetricsSink(reg)
	obsCfg.runs = reg.Counter("eval_runs_total", "Simulation runs completed.")
}

// SetSelfProfile attaches a scheduler self-profile to every subsequent
// Run; nil disables. The profile's counters are atomic, so one profile
// aggregates a parallel sweep.
func SetSelfProfile(p *envirotrack.SelfProfile) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.selfProfile = p
}

// SetShardHealth attaches a boundary-health aggregator to every
// subsequent Run; nil disables. Each sharded run folds its boundary
// accounting (per-pair mailbox frames, minimum delivery slack, lookahead
// violations) into the aggregator when it finishes; serial runs
// contribute nothing.
func SetShardHealth(h *envirotrack.ShardHealth) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.shardHealth = h
}

// observeShardHealth folds one finished run into the configured
// boundary-health aggregator, if any.
func observeShardHealth(net *envirotrack.Network) {
	obsCfg.mu.Lock()
	h := obsCfg.shardHealth
	obsCfg.mu.Unlock()
	if h != nil {
		h.Observe(net)
	}
}

// SetSeriesCadence makes every subsequent Run sample a health time series
// on the given sim-time cadence, collected via DrainSeries; 0 disables.
func SetSeriesCadence(d time.Duration) {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.cadence = d
}

// TaggedSeries is one run's health series, tagged for identification
// within a sweep.
type TaggedSeries struct {
	Seed      int64
	SpeedHops float64
	Series    *envirotrack.Series
}

// DrainSeries returns the series collected since the last drain and
// clears the buffer.
func DrainSeries() []TaggedSeries {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	out := obsCfg.series
	obsCfg.series = nil
	return out
}

// observeRun resolves the configured observability for one scenario:
// extra network options and a completion hook (both possibly nil/empty).
// checker is the run's private invariant checker (nil when the scenario
// doesn't request invariant checking); unlike the package-level sink it
// is never shared across parallel runs.
func observeRun(sc Scenario, checker *envirotrack.InvariantChecker) (opts []envirotrack.Option, onNet func(*envirotrack.Network), done func()) {
	obsCfg.mu.Lock()
	sink, metrics, cadence, runs := obsCfg.sink, obsCfg.metrics, obsCfg.cadence, obsCfg.runs
	perReceiver, selfProfile := obsCfg.perReceiver, obsCfg.selfProfile
	shards, parallel := obsCfg.shards, obsCfg.parallel
	obsCfg.mu.Unlock()

	if perReceiver {
		opts = append(opts, envirotrack.WithPerReceiverDelivery())
	}
	if parallel > 1 {
		opts = append(opts, envirotrack.WithParallelShards(parallel))
	} else if shards > 1 {
		opts = append(opts, envirotrack.WithShards(shards))
	}
	if selfProfile != nil {
		opts = append(opts, envirotrack.WithSelfProfile(selfProfile))
	}
	var sinks []obs.Sink
	if sink != nil {
		sinks = append(sinks, sink)
	}
	if metrics != nil {
		sinks = append(sinks, metrics)
	}
	if checker != nil {
		sinks = append(sinks, checker)
	}
	if len(sinks) > 0 {
		bus := obs.NewBus(sinks...)
		tag := sc.Run
		if tag == 0 {
			tag = sc.Seed
		}
		bus.SetRun(tag)
		opts = append(opts, envirotrack.WithEventBus(bus))
	}
	if cadence > 0 {
		onNet = func(net *envirotrack.Network) {
			series := net.StartSeries(cadence)
			obsCfg.mu.Lock()
			obsCfg.series = append(obsCfg.series, TaggedSeries{
				Seed: sc.Seed, SpeedHops: sc.SpeedHops, Series: series,
			})
			obsCfg.mu.Unlock()
		}
	}
	if runs != nil {
		done = runs.Inc
	}
	return opts, onNet, done
}
