package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"envirotrack/internal/eval/runpar"
	"envirotrack/internal/obs"
)

// TestRunObservabilityHooks exercises the package-level observability
// configuration end to end: an event sink sees protocol traffic, a
// metrics registry derives event counts and the runs-completed counter,
// and the series cadence yields one tagged health series per run.
func TestRunObservabilityHooks(t *testing.T) {
	cs := obs.NewCounterSink()
	reg := obs.NewRegistry()
	SetEventSink(cs)
	SetMetricsRegistry(reg)
	SetSeriesCadence(5 * time.Second)
	defer func() {
		SetEventSink(nil)
		SetMetricsRegistry(nil)
		SetSeriesCadence(0)
		DrainSeries()
	}()

	if _, err := Run(Scenario{Seed: 3}); err != nil {
		t.Fatal(err)
	}

	if n := cs.Count(obs.EvHeartbeatSent); n == 0 {
		t.Error("event sink saw no heartbeats")
	}
	if n := cs.Count(obs.EvFrameSent); n == 0 {
		t.Error("event sink saw no radio frames")
	}
	snap := reg.Snapshot()
	if got := snap["eval_runs_total"]; got != uint64(1) {
		t.Errorf("eval_runs_total = %v, want 1", got)
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "envirotrack_events_total") {
		t.Error("registry exposition missing derived event counters")
	}

	series := DrainSeries()
	if len(series) != 1 {
		t.Fatalf("DrainSeries returned %d series, want 1", len(series))
	}
	ts := series[0]
	if ts.Seed != 3 {
		t.Errorf("series tagged with seed %d, want 3", ts.Seed)
	}
	if ts.Series.Len() < 2 {
		t.Errorf("series has %d samples, want >= 2", ts.Series.Len())
	}
	if again := DrainSeries(); len(again) != 0 {
		t.Errorf("second drain returned %d series, want 0", len(again))
	}
}

// TestSweepContextProgressFormat pins the progress line format using an
// injected clock: per-update carriage-return lines with rate and ETA, and
// a final newline when the sweep completes.
func TestSweepContextProgressFormat(t *testing.T) {
	progressCfg.mu.Lock()
	saved := progressCfg.now
	tick := 0
	progressCfg.now = func() time.Time {
		tick++
		return time.Unix(0, 0).Add(time.Duration(tick) * time.Second)
	}
	progressCfg.mu.Unlock()
	defer func() {
		progressCfg.mu.Lock()
		progressCfg.now = saved
		progressCfg.mu.Unlock()
	}()

	var buf bytes.Buffer
	SetProgressWriter(&buf)
	defer SetProgressWriter(nil)

	ctx := sweepContext("figX", "runs")
	if _, err := runpar.Map(ctx, 1, 3, func(_ context.Context, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	for _, want := range []string{"\rfigX: 1/3 runs", "\rfigX: 2/3 runs", "\rfigX: 3/3 runs", "ETA"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%q", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("progress output does not end with a newline after completion:\n%q", out)
	}
}

// TestSweepContextDisabled: with no writer configured, sweeps must not pay
// for progress plumbing at all.
func TestSweepContextDisabled(t *testing.T) {
	SetProgressWriter(nil)
	if ctx := sweepContext("figX", "runs"); ctx != context.Background() {
		t.Error("sweepContext without a writer should return the plain background context")
	}
}
