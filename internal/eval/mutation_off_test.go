//go:build !chaosmut

package eval

// protocolMutated lets nominal-protocol assertions skip under the
// -tags chaosmut mutation build (where invariant violations are the
// expected outcome).
const protocolMutated = false
