package eval

import (
	"bytes"
	"reflect"
	"testing"

	"envirotrack"
	"envirotrack/internal/obs"
)

// collectShardedRun executes one scenario on a sharded event engine
// (shards < 2 = the serial engine) and returns its result plus the
// byte-exact JSONL event stream.
func collectShardedRun(t *testing.T, sc Scenario, shards int) (RunResult, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	SetEventSink(sink)
	SetShards(shards)
	defer func() {
		SetEventSink(nil)
		SetShards(1)
	}()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// shardEquivCases are the differential battery's scenarios: nominal,
// lossy, and a run under the full chaos schedule (crash + loss burst +
// partition + duplication) with the invariant checker attached.
func shardEquivCases(t *testing.T) []struct {
	name string
	sc   Scenario
} {
	t.Helper()
	sched, err := envirotrack.ParseChaosSchedule(
		"crash:node=5,at=20s,for=5s;loss:at=10s,for=10s,p=0.4;partition:x=5,at=25s,for=5s;dup:at=30s,for=5s,p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"nominal", Scenario{Seed: 7}},
		{"lossy", Scenario{Seed: 11, LossProb: 0.2}},
	}
	chaotic := chaosBase(13)
	chaotic.Chaos = sched
	chaotic.CheckInvariants = true
	cases = append(cases, struct {
		name string
		sc   Scenario
	}{"chaos", chaotic})
	return cases
}

// TestShardedRunMatchesSerial is the sharding differential battery: for
// the same seed, a run executed on 2, 4, and 8 scheduler shards must
// produce a result deeply equal to the serial engine's and a JSONL trace
// byte-identical to it — across nominal, lossy, and chaos scenarios.
// This is the determinism contract of the deterministic shard merge: the
// partition of the event heap is invisible to everything above it.
func TestShardedRunMatchesSerial(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build diverges by design; see TestShardMutationTripsDifferentialBattery")
	}
	for _, tc := range shardEquivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			serialRes, serialTrace := collectShardedRun(t, tc.sc, 1)
			if len(serialTrace) == 0 {
				t.Fatal("serial run emitted no events")
			}
			for _, shards := range []int{2, 4, 8} {
				shardedRes, shardedTrace := collectShardedRun(t, tc.sc, shards)
				if !reflect.DeepEqual(shardedRes, serialRes) {
					t.Errorf("shards=%d: results diverge:\nsharded = %+v\nserial  = %+v", shards, shardedRes, serialRes)
				}
				if !bytes.Equal(shardedTrace, serialTrace) {
					t.Errorf("shards=%d: JSONL traces diverge (%d vs %d bytes)", shards, len(shardedTrace), len(serialTrace))
				}
				if len(shardedRes.Violations) != 0 {
					t.Errorf("shards=%d: sharded run violated invariants: %+v", shards, shardedRes.Violations)
				}
			}
		})
	}
}

// TestShardedChaosSuiteMatchesSerial repeats the differential check over
// the full 9-case chaos suite under the parallel sweep runner: every
// case's points and per-run JSONL streams must match the serial engine
// exactly, proving sharding composes with both the chaos faults and the
// sweep-level parallelism (each worker drives its own shard group).
func TestShardedChaosSuiteMatchesSerial(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build diverges by design; see TestShardMutationTripsDifferentialBattery")
	}
	if testing.Short() {
		t.Skip("chaos suite x2 is slow")
	}
	collect := func(shards int) ([]ChaosPoint, map[string][]string) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		SetEventSink(sink)
		SetShards(shards)
		defer func() {
			SetEventSink(nil)
			SetShards(1)
		}()
		var points []ChaosPoint
		withParallelism(t, 4, func() {
			var err error
			if points, err = RunChaosSuite(1); err != nil {
				t.Fatal(err)
			}
		})
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return points, bucketByRun(buf.String())
	}
	serialPoints, serialTraces := collect(1)
	if len(serialTraces) == 0 {
		t.Fatal("serial suite produced no traced runs")
	}
	shardedPoints, shardedTraces := collect(4)
	if !reflect.DeepEqual(shardedPoints, serialPoints) {
		t.Errorf("chaos suite points diverge:\nsharded = %+v\nserial  = %+v", shardedPoints, serialPoints)
	}
	if !reflect.DeepEqual(shardedTraces, serialTraces) {
		t.Errorf("per-run JSONL streams diverge between sharded and serial suites (%d vs %d runs)",
			len(shardedTraces), len(serialTraces))
	}
	for _, p := range shardedPoints {
		for _, v := range p.Violations {
			t.Errorf("sharded case %q seed %d: %s violation at %v: %s", p.Case, p.Seed, v.Invariant, v.At, v.Detail)
		}
	}
}
