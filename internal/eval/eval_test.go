package eval

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpeedConversions(t *testing.T) {
	// 50 km/h over 140 m hops is the paper's ~10 s/hop: ~0.0992 hops/s.
	hops := KmhToHops(50)
	if math.Abs(hops-0.0992) > 0.001 {
		t.Errorf("KmhToHops(50) = %v, want ~0.0992", hops)
	}
	// Round trip.
	if math.Abs(HopsToKmh(KmhToHops(33))-33) > 1e-9 {
		t.Error("KmhToHops/HopsToKmh round trip failed")
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{}.withDefaults()
	if sc.Cols != 11 || sc.Rows != 2 {
		t.Errorf("default grid = %dx%d", sc.Cols, sc.Rows)
	}
	if sc.CriticalMass != 2 || sc.Freshness != time.Second {
		t.Errorf("default QoS = %d/%v", sc.CriticalMass, sc.Freshness)
	}
	if sc.Seed == 0 {
		t.Error("default seed not set")
	}
}

func TestRunBasicScenario(t *testing.T) {
	res, err := Run(Scenario{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("no tracking reports")
	}
	if !res.TrackedOK {
		t.Error("tracking did not survive to the end")
	}
	if res.Handover.Created < 1 {
		t.Error("no label created")
	}
	if res.Duration <= 0 {
		t.Error("no duration recorded")
	}
}

func TestFigure3ErrorsBounded(t *testing.T) {
	r, err := RunFigure3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Run.Track.Points) < 8 {
		t.Fatalf("too few trajectory points: %d", len(r.Run.Track.Points))
	}
	// The paper's tracking error stays within roughly one grid unit; the
	// direction anomalies come from message loss.
	if r.MeanError > 1.0 {
		t.Errorf("mean tracking error = %v grid units, want <= 1", r.MeanError)
	}
	if r.MaxError > 2.0 {
		t.Errorf("max tracking error = %v grid units, want <= 2", r.MaxError)
	}
	// All reports carry one coherent label.
	if r.Run.Labels != 1 {
		t.Errorf("labels = %d, want 1", r.Run.Labels)
	}
	out := r.Render()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "mean error") {
		t.Error("Render output malformed")
	}
}

func TestFigure4Shape(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): nominal-shape assertions do not apply")
	}
	rows, err := RunFigure4(3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(h int, kmh float64) float64 {
		for _, r := range rows {
			if r.HopsPast == h && r.SpeedKmh == kmh {
				return r.SuccessPct
			}
		}
		t.Fatalf("missing row h=%d kmh=%v", h, kmh)
		return 0
	}
	// Paper shape: h=1 succeeds at both speeds; h=0 degrades, worse at
	// the higher speed.
	if get(1, 33) < 95 || get(1, 50) < 95 {
		t.Errorf("h=1 success = %.1f/%.1f, want ~100%%", get(1, 33), get(1, 50))
	}
	if get(0, 50) >= get(1, 50) {
		t.Errorf("h=0 at 50 km/h (%.1f) should be below h=1 (%.1f)", get(0, 50), get(1, 50))
	}
	if get(0, 33) < get(0, 50) {
		t.Errorf("h=0: 33 km/h (%.1f) should not be worse than 50 km/h (%.1f)",
			get(0, 33), get(0, 50))
	}
	out := RenderFigure4(rows)
	if !strings.Contains(out, "propagate heartbeat past sensing radius") {
		t.Error("RenderFigure4 output malformed")
	}
}

func TestTable1Shape(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): nominal-shape assertions do not apply")
	}
	rows, err := RunTable1(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		// The system operates in the presence of loss, and the protocol's
		// bandwidth needs are a small fraction of the 50 kb/s channel.
		if r.HBLossPct <= 0 {
			t.Errorf("%v km/h: HB loss = %v, want > 0", r.SpeedKmh, r.HBLossPct)
		}
		if r.LinkUtilPct > 15 {
			t.Errorf("%v km/h: link utilization = %.1f%%, want a small fraction", r.SpeedKmh, r.LinkUtilPct)
		}
	}
	// Heartbeat loss grows with target speed (collision effect).
	if rows[1].HBLossPct < rows[0].HBLossPct {
		t.Errorf("HB loss at 50 km/h (%.2f) below 33 km/h (%.2f)",
			rows[1].HBLossPct, rows[0].HBLossPct)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "% HB loss") {
		t.Error("RenderTable1 output malformed")
	}
}

// quickFig5 runs a reduced Figure 5 sweep suitable for the test suite.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 5 sweep is slow")
	}
	points, err := RunFigure5(Figure5Config{
		Heartbeats: []float64{0.0625, 0.5, 2},
		Radii:      []float64{1, 2},
		Seeds:      []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(hb, r float64) float64 {
		for _, p := range points {
			if p.Mode == "worst-case" && almostEqual(p.HeartbeatSec, hb, 1e-9) && almostEqual(p.SensingRadius, r, 1e-9) {
				return p.MaxSpeedHops
			}
		}
		t.Fatalf("missing point hb=%v r=%v", hb, r)
		return 0
	}
	// Faster heartbeats track faster targets (until overload).
	if get(0.5, 1) <= get(2, 1) {
		t.Errorf("hb=0.5 (%.2f) should beat hb=2 (%.2f) at r=1", get(0.5, 1), get(2, 1))
	}
	// Larger sensory signatures are trackable at higher speeds at slow
	// heartbeats.
	if get(2, 2) < get(2, 1) {
		t.Errorf("r=2 (%.2f) should not be below r=1 (%.2f) at hb=2", get(2, 2), get(2, 1))
	}
	// The overload collapse: the larger event breaks down at 1/16 s.
	if get(0.0625, 2) > get(0.5, 2) {
		t.Errorf("hb=1/16 at r=2 (%.2f) should collapse below hb=0.5 (%.2f)",
			get(0.0625, 2), get(0.5, 2))
	}
	out := RenderFigure5(points)
	if !strings.Contains(out, "Figure 5") {
		t.Error("RenderFigure5 output malformed")
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 6 sweep is slow")
	}
	points, err := RunFigure6(Figure6Config{
		Ratios: []float64{0.75, 1.5, 3},
		Radii:  []float64{1, 2},
		Seeds:  []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(ratio, r float64) float64 {
		for _, p := range points {
			if almostEqual(p.Ratio, ratio, 1e-9) && almostEqual(p.SensingRadius, r, 1e-9) {
				return p.MaxSpeedHops
			}
		}
		t.Fatalf("missing point ratio=%v r=%v", ratio, r)
		return 0
	}
	// Breakdown below CR:SR = 1.
	if get(0.75, 1) != 0 || get(0.75, 2) != 0 {
		t.Errorf("CR:SR=0.75 should break down, got %.2f/%.2f", get(0.75, 1), get(0.75, 2))
	}
	// Speed grows with the ratio.
	if get(3, 1) <= get(0.75, 1) {
		t.Error("speed should grow with CR:SR at r=1")
	}
	if get(3, 2) < get(1.5, 2) {
		t.Errorf("speed at ratio 3 (%.2f) below ratio 1.5 (%.2f) for r=2", get(3, 2), get(1.5, 2))
	}
	// Larger events trackable at higher speeds for a given ratio.
	if get(3, 2) < get(3, 1) {
		t.Errorf("r=2 (%.2f) below r=1 (%.2f) at ratio 3", get(3, 2), get(3, 1))
	}
	out := RenderFigure6(points)
	if !strings.Contains(out, "Figure 6") {
		t.Error("RenderFigure6 output malformed")
	}
}

func TestCrossTrafficDoesNotBreakTracking(t *testing.T) {
	sc := Scenario{Seed: 5, CrossTraffic: true}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TrackedOK {
		t.Error("tracking failed under cross traffic")
	}
}

func TestMaxTrackableSpeedZeroWhenImpossible(t *testing.T) {
	// CR:SR well below 1: tracking cannot work at any speed.
	sc := figure6Scenario(2, 0.5)
	speed, err := MaxTrackableSpeed(sc, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if speed != 0 {
		t.Errorf("max speed = %v, want 0 for CR:SR=0.5", speed)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a, err := Run(Scenario{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Scenario{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != len(b.Reports) {
		t.Errorf("report counts differ: %d vs %d", len(a.Reports), len(b.Reports))
	}
	if a.HBLoss != b.HBLoss || a.LinkUtil != b.LinkUtil {
		t.Error("stats differ between identical seeded runs")
	}
}
