// Package eval contains the experiment harnesses that regenerate every
// table and figure of the paper's evaluation (Section 6): the tracked-tank
// trajectory (Figure 3), handover success rates (Figure 4), communication
// performance (Table 1), and the maximum-trackable-speed stress tests
// (Figures 5 and 6). The harnesses drive the public envirotrack API, so
// they double as end-to-end exercises of the library.
package eval

import (
	"context"
	"fmt"
	"math"
	"time"

	"envirotrack"
	"envirotrack/internal/eval/runpar"
)

// Paper constants: grid spacing is one "hop" = 140 m, so speed conversions
// between km/h and hops/second use that scale.
const (
	// MetersPerHop is the paper's grid spacing.
	MetersPerHop = 140.0
	// PursuerID is the mote id of the base station in tracking scenarios.
	PursuerID envirotrack.NodeID = 100_000
)

// KmhToHops converts a physical speed to grid hops per second.
func KmhToHops(kmh float64) float64 {
	return kmh * 1000 / 3600 / MetersPerHop
}

// HopsToKmh converts grid hops per second to km/h.
func HopsToKmh(hops float64) float64 {
	return hops * MetersPerHop * 3600 / 1000
}

// Scenario describes one tracking run: a corridor of motes, a single
// target crossing it, and the Figure 2 tracker context.
type Scenario struct {
	// Cols and Rows size the mote grid (unit spacing).
	Cols, Rows int
	// CommRadius and SensingRadius are CR and SR in grid units.
	CommRadius    float64
	SensingRadius float64
	// SpeedHops is the target speed in hops (grid units) per second.
	SpeedHops float64
	// Heartbeat is the group-management heartbeat period.
	Heartbeat time.Duration
	// HopsPast is the heartbeat propagation budget h.
	HopsPast int
	// DisableRelinquish selects the Figure 5 "worst case": leadership
	// recovery by receive-timer takeover only.
	DisableRelinquish bool
	// ReportEvery is the tracking object's TIMER period (default 5s, as
	// in Figure 2).
	ReportEvery time.Duration
	// Freshness and CriticalMass are the aggregate QoS (default 1s / 2).
	Freshness    time.Duration
	CriticalMass int
	// LossProb is the iid channel loss probability.
	LossProb float64
	// CPUService and QueueCap model the constrained mote CPU; zero means
	// an infinitely fast CPU.
	CPUService time.Duration
	QueueCap   int
	// MarginHops trims the target path away from the field edges.
	MarginHops float64
	// Seed makes the run deterministic.
	Seed int64
	// Run tags the run's events on the observability bus (so a shared
	// sink can separate interleaved parallel runs); 0 uses Seed. Sweeps
	// whose cells reuse seeds must set distinct tags.
	Run int64
	// SensePeriod overrides the mote scan period.
	SensePeriod time.Duration
	// CrossTraffic enables background traffic between non-participating
	// motes (the Section 6.2 bottleneck experiment).
	CrossTraffic bool
	// DisableCSMA ablates carrier sensing at the MAC.
	DisableCSMA bool
	// FloodSuppressOff ablates the broadcast-storm suppression of
	// heartbeat relaying.
	FloodSuppressOff bool
	// Chaos is a fault schedule replayed during the run (crashes, loss
	// steps/ramps, partitions, duplication). Empty injects nothing.
	Chaos envirotrack.ChaosSchedule
	// CheckInvariants attaches a protocol invariant checker to the run;
	// proven violations land in RunResult.Violations.
	CheckInvariants bool
	// ParallelShards > 1 executes the run on the free-running parallel
	// engine with that many shard goroutines (statistically equivalent to
	// serial, not byte-identical; see RunEquivalence). It overrides the
	// package-level SetShards/SetParallelShards configuration.
	ParallelShards int
	// Backend selects the tracking backend ("leader" or "passive");
	// empty uses the package-level SetBackend default, then leader. The
	// invariant checker follows: leader runs get I1–I5, passive runs the
	// passive rule set.
	Backend string
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Cols == 0 {
		sc.Cols = 11
	}
	if sc.Rows == 0 {
		sc.Rows = 2
	}
	if sc.CommRadius == 0 {
		sc.CommRadius = 2
	}
	if sc.SensingRadius == 0 {
		sc.SensingRadius = 1.5
	}
	if sc.SpeedHops == 0 {
		sc.SpeedHops = 0.1
	}
	if sc.Heartbeat == 0 {
		sc.Heartbeat = 500 * time.Millisecond
	}
	if sc.ReportEvery == 0 {
		sc.ReportEvery = 5 * time.Second
	}
	if sc.Freshness == 0 {
		sc.Freshness = time.Second
	}
	if sc.CriticalMass == 0 {
		sc.CriticalMass = 2
	}
	if sc.MarginHops == 0 {
		sc.MarginHops = 0.5
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Backend == "" {
		sc.Backend = defaultBackend()
	}
	return sc
}

// TrackReport is what the tracking object sends to the pursuer.
type TrackReport struct {
	Label envirotrack.Label
	Loc   envirotrack.Point
	At    time.Duration
}

// RunResult collects everything an experiment needs from one run.
type RunResult struct {
	Scenario  Scenario
	Duration  time.Duration
	Reports   []TrackReport
	Track     envirotrack.TrackLog
	Handover  envirotrack.HandoverSummary
	HBLoss    float64 // fraction of heartbeat receptions lost (loss + collision)
	MsgLoss   float64 // fraction of member-reading receptions lost
	LinkUtil  float64 // worst-case utilization of the 50 kb/s channel
	TrackedOK bool    // target still covered by the surviving label at the end
	Labels    int     // distinct labels created
	// Violations holds the invariant breaches proven by the checker
	// (only populated with Scenario.CheckInvariants).
	Violations []envirotrack.InvariantViolation
	// CheckedEvents counts the events the invariant checker consumed
	// (zero means it never saw the run).
	CheckedEvents uint64
	// FramesSent totals radio transmissions across all message kinds
	// (the comparative harness normalizes it per target-second).
	FramesSent uint64
}

// Run executes one tracking scenario to the end of the target's path.
func Run(sc Scenario) (RunResult, error) {
	sc = sc.withDefaults()

	midY := float64(sc.Rows-1) / 2
	// The target enters from outside the field so that sensing begins at a
	// single corner mote and the group forms incrementally, as a real
	// vehicle approaching a deployment would.
	start := envirotrack.Pt(-sc.SensingRadius, midY)
	end := envirotrack.Pt(float64(sc.Cols-1)-sc.MarginHops, midY)
	traj, err := envirotrack.NewWaypoints([]envirotrack.Point{start, end}, sc.SpeedHops)
	if err != nil {
		return RunResult{}, fmt.Errorf("eval: %w", err)
	}
	duration := traj.EndTime()

	opts := []envirotrack.Option{
		envirotrack.WithGrid(sc.Cols, sc.Rows),
		envirotrack.WithCommRadius(sc.CommRadius),
		envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
		envirotrack.WithSeed(sc.Seed),
		envirotrack.WithLossProb(sc.LossProb),
	}
	if sc.CPUService > 0 {
		opts = append(opts, envirotrack.WithMoteCPU(sc.CPUService, sc.QueueCap))
	}
	if sc.DisableCSMA {
		opts = append(opts, envirotrack.WithoutCSMA())
	}
	if sc.SensePeriod > 0 {
		opts = append(opts, envirotrack.WithSensePeriod(sc.SensePeriod))
	}
	checker := checkerFor(sc)
	obsOpts, onNet, obsDone := observeRun(sc, checker)
	opts = append(opts, obsOpts...)
	if sc.ParallelShards > 1 {
		opts = append(opts, envirotrack.WithParallelShards(sc.ParallelShards))
	}
	net, err := envirotrack.New(opts...)
	if err != nil {
		return RunResult{}, err
	}
	if onNet != nil {
		onNet(net)
	}
	if err := net.InjectFaults(sc.Chaos); err != nil {
		return RunResult{}, err
	}

	target := &envirotrack.Target{
		Name:            "tank",
		Kind:            "vehicle",
		Traj:            traj,
		SignatureRadius: sc.SensingRadius,
	}
	net.AddTarget(target)

	var reports []TrackReport
	var track envirotrack.TrackLog
	spec := trackerSpec(sc)
	if err := net.AttachContextAll(spec); err != nil {
		return RunResult{}, err
	}

	pursuerPos := envirotrack.Pt(float64(sc.Cols-1), float64(sc.Rows))
	pursuer, err := net.AddMote(PursuerID, pursuerPos, nil)
	if err != nil {
		return RunResult{}, err
	}
	pursuer.OnMessage(func(nm envirotrack.NodeMessage) {
		tr, ok := nm.Payload.(TrackReport)
		if !ok {
			return
		}
		// Node-local time: under the free-running parallel engine the
		// callback runs on the pursuer's shard goroutine, whose clock leads
		// the committed global clock by up to one lookahead window.
		now := pursuer.Now()
		tr.At = now
		reports = append(reports, tr)
		track.Record(now, target.PositionAt(now), tr.Loc)
	})

	if sc.CrossTraffic {
		addCrossTraffic(net, sc)
	}

	// Let the group settle after the target reaches the end of its path
	// (it remains parked there) before judging coverage: a handover may be
	// in flight at the exact end time.
	settle := 5*sc.Heartbeat + 2*time.Second
	if err := net.Run(duration + settle); err != nil {
		return RunResult{}, err
	}
	observeShardHealth(net)

	res := RunResult{
		Scenario: sc,
		Duration: duration,
		Reports:  reports,
		Track:    track,
		Handover: net.Ledger().Summarize("tracker"),
		HBLoss:   net.Stats().LossFraction("heartbeat"),
		MsgLoss:  net.Stats().LossFraction("reading"),
		LinkUtil: net.Stats().LinkUtilization(net.Now(), 50_000),
		Labels:   net.Ledger().DistinctLabels("tracker"),
	}
	for _, k := range net.Stats().Kinds() {
		res.FramesSent += net.Stats().Kind(k).Sent
	}
	res.TrackedOK = coveredAtEnd(net, target, sc)
	if checker != nil {
		checker.Finish(net.Now())
		res.Violations = checker.Violations()
		res.CheckedEvents = checker.Events()
	}
	if obsDone != nil {
		obsDone()
	}
	return res, nil
}

// checkerFor builds the run's invariant checker (nil when disabled),
// configured with the scenario's actual protocol timing: the member
// report cadence is the stack's derived Pe = Le - d (freshness minus the
// default 100ms delay estimate), not the group-config default.
func checkerFor(sc Scenario) *envirotrack.InvariantChecker {
	if !sc.CheckInvariants {
		return nil
	}
	pe := sc.Freshness - 100*time.Millisecond
	if pe < 0 {
		pe = 0
	}
	var parts []envirotrack.InvariantPartition
	for _, p := range sc.Chaos.Partitions {
		w := envirotrack.InvariantPartition{X: p.X, At: p.At}
		if p.For > 0 {
			w.Until = p.At + p.For
		}
		parts = append(parts, w)
	}
	return envirotrack.NewInvariantChecker(envirotrack.InvariantConfig{
		Backend:      sc.Backend,
		Heartbeat:    sc.Heartbeat,
		ReportPeriod: pe,
		CommRadius:   sc.CommRadius,
		Partitions:   parts,
	})
}

// trackerSpec is the Figure 2 context declaration, parameterized by the
// scenario QoS.
func trackerSpec(sc Scenario) envirotrack.ContextType {
	return envirotrack.ContextType{
		Name:    "tracker",
		Backend: sc.Backend,
		Activation: func(rd envirotrack.Reading) bool {
			v, _ := rd.Value("magnetic_detect")
			return v > 0.5
		},
		Vars: []envirotrack.AggVar{{
			Name:         "location",
			Func:         envirotrack.Centroid,
			Input:        envirotrack.PositionInput,
			Freshness:    sc.Freshness,
			CriticalMass: sc.CriticalMass,
		}},
		Objects: []envirotrack.Object{{
			Name: "reporter",
			Methods: []envirotrack.Method{{
				Name:   "report_function",
				Period: sc.ReportEvery,
				Body: func(ctx *envirotrack.Ctx, _ envirotrack.Trigger) {
					if loc, ok := ctx.ReadPosition("location"); ok {
						ctx.SendNode(PursuerID, TrackReport{Label: ctx.Label(), Loc: loc})
					}
				},
			}},
		}},
		Group: envirotrack.GroupConfig{
			HeartbeatPeriod:   sc.Heartbeat,
			HopsPast:          sc.HopsPast,
			DisableRelinquish: sc.DisableRelinquish,
			FloodSuppress:     suppressThreshold(sc.FloodSuppressOff),
		},
	}
}

// coveredAtEnd reports whether, at the end of the run, the target is still
// covered by a live context label (some leader within SR+CR of it). A run
// where tracking died silently fails this check even with a clean ledger.
func coveredAtEnd(net *envirotrack.Network, target *envirotrack.Target, sc Scenario) bool {
	pos := target.PositionAt(net.Now())
	horizon := sc.SensingRadius + sc.CommRadius
	for _, id := range net.Nodes() {
		node, ok := net.Node(id)
		if !ok || id == PursuerID {
			continue
		}
		if node.Leading("tracker") && node.Pos().Dist(pos) <= horizon {
			return true
		}
	}
	return false
}

// Coherent is the Figure 5/6 success criterion: the single-group
// abstraction was maintained for the whole run — exactly one context label
// ever existed (a target "rediscovered independently at different points
// along its track" spawns more, even if weight suppression later merges
// them) — and tracking was still alive at the end.
func (r RunResult) Coherent() bool {
	return r.Handover.Created == 1 && r.TrackedOK
}

// addCrossTraffic wires periodic background frames between the first-row
// edge motes, which are outside the tracked corridor's center (Section
// 6.2's bottleneck identification experiment: cross traffic left the
// trackable-speed curve unchanged, implicating the CPU, not bandwidth).
func addCrossTraffic(net *envirotrack.Network, sc Scenario) {
	ids := net.Nodes()
	if len(ids) < 4 {
		return
	}
	period := sc.Heartbeat
	if period <= 0 {
		period = 500 * time.Millisecond
	}
	// Two streams in opposite directions between the grid corners.
	_ = net.AddCrossTraffic(ids[0], ids[1], period, 0)
	_ = net.AddCrossTraffic(ids[len(ids)-2], ids[len(ids)-3], period, 0)
}

// suppressThreshold returns the broadcast-storm suppression setting: the
// default (0) normally, or an effectively-infinite threshold for the
// ablation (no rebroadcast is ever suppressed).
func suppressThreshold(off bool) int {
	if off {
		return 1 << 20
	}
	return 0
}

// speedGrid is the ladder of candidate speeds (hops/s) used by the
// maximum-trackable-speed search.
var speedGrid = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 2.5, 3, 4}

// MaxTrackableSpeed finds the highest speed (hops/s) on the grid at which
// the scenario remains coherent in a majority of trial seeds. It scans
// from fast to slow and returns 0 when even the slowest speed fails. The
// per-seed trials of each speed fan across Parallelism() workers; the
// speed ladder itself stays sequential because each rung's majority vote
// decides whether the scan stops.
func MaxTrackableSpeed(base Scenario, seeds []int64) (float64, error) {
	return maxTrackableSpeed(context.Background(), base, seeds, Parallelism())
}

// maxTrackableSpeed is MaxTrackableSpeed with explicit context and worker
// count, so the Figure 5/6 sweeps can parallelize across sweep points and
// run each point's seed loop inline (workers == 1) without compounding
// concurrency.
func maxTrackableSpeed(ctx context.Context, base Scenario, seeds []int64, workers int) (float64, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	for i := len(speedGrid) - 1; i >= 0; i-- {
		speed := speedGrid[i]
		coherent, err := runpar.Map(ctx, workers, len(seeds),
			func(_ context.Context, k int) (bool, error) {
				sc := base
				sc.SpeedHops = speed
				sc.Seed = seeds[k]
				res, err := Run(sc)
				if err != nil {
					return false, err
				}
				return res.Coherent(), nil
			})
		if err != nil {
			return 0, err
		}
		ok := 0
		for _, c := range coherent {
			if c {
				ok++
			}
		}
		if ok*2 > len(seeds) {
			return speed, nil
		}
	}
	return 0, nil
}

// almostEqual helps experiment assertions.
func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
