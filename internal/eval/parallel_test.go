package eval

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"envirotrack/internal/obs"
)

// withParallelism runs fn under a fixed sweep width and restores the
// default afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	if err := SetParallelism(n); err != nil {
		t.Fatal(err)
	}
	defer SetParallelism(0)
	fn()
}

// TestParallelSweepsMatchSerial asserts the tentpole contract of the
// parallel sweep engine: because every Run is seeded and owns its
// scheduler, fanning the sweeps across workers must produce byte-identical
// rows/points to the serial loop — including the float accumulation order
// of the per-cell averages.
func TestParallelSweepsMatchSerial(t *testing.T) {
	const trials = 2 // >= 2 seeds per cell (trial seeds 1 and 2)

	// Run the whole comparison with a JSONL exporter attached: tracing is
	// observation-only, so it must not perturb the seeded runs on either
	// the serial or the parallel path.
	var traced bytes.Buffer
	sink := obs.NewJSONLSink(&traced)
	SetEventSink(sink)
	defer SetEventSink(nil)

	var serialF4, parallelF4 []Figure4Row
	var serialT1, parallelT1 []Table1Row
	withParallelism(t, 1, func() {
		var err error
		if serialF4, err = RunFigure4(trials); err != nil {
			t.Fatal(err)
		}
		if serialT1, err = RunTable1(trials); err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		if parallelF4, err = RunFigure4(trials); err != nil {
			t.Fatal(err)
		}
		if parallelT1, err = RunTable1(trials); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serialF4, parallelF4) {
		t.Errorf("Figure4 rows diverge:\nserial   = %+v\nparallel = %+v", serialF4, parallelF4)
	}
	if !reflect.DeepEqual(serialT1, parallelT1) {
		t.Errorf("Table1 rows diverge:\nserial   = %+v\nparallel = %+v", serialT1, parallelT1)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if traced.Len() == 0 {
		t.Error("JSONL sink saw no events during the sweeps")
	}
}

// TestParallelFigure5MatchesSerial covers the sweep-point fan-out of
// RunFigure5 (and, via MaxTrackableSpeed, the per-seed fan) on a reduced
// two-seed configuration.
func TestParallelFigure5MatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("speed scan is slow")
	}
	cfg := Figure5Config{
		Heartbeats:        []float64{0.5},
		Radii:             []float64{1},
		Seeds:             []int64{1, 2},
		IncludeRelinquish: true,
	}
	var serial, parallel []Figure5Point
	withParallelism(t, 1, func() {
		var err error
		if serial, err = RunFigure5(cfg); err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		if parallel, err = RunFigure5(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Figure5 points diverge:\nserial   = %+v\nparallel = %+v", serial, parallel)
	}
}

// TestRunFigure5EmptyHeartbeats pins the descriptive error for a config
// that bypasses withDefaults' backfill and would previously have panicked
// on the relinquish index.
func TestRunFigure5EmptyHeartbeats(t *testing.T) {
	fn := runFigure5NoDefaults
	_, err := fn(Figure5Config{Radii: []float64{1}, Seeds: []int64{1}, IncludeRelinquish: true})
	if err == nil {
		t.Fatal("expected error for empty heartbeat sweep")
	}
	if !strings.Contains(err.Error(), "Heartbeats") {
		t.Errorf("error %q does not name the empty field", err)
	}
}

func TestSetParallelismRejectsNegative(t *testing.T) {
	defer SetParallelism(0)
	if err := SetParallelism(2); err != nil {
		t.Fatalf("SetParallelism(2) = %v, want nil", err)
	}
	err := SetParallelism(-3)
	if err == nil {
		t.Fatal("SetParallelism(-3) = nil, want error")
	}
	if !strings.Contains(err.Error(), "-3") {
		t.Errorf("error %q does not name the bad value", err)
	}
	if Parallelism() != 2 {
		t.Errorf("Parallelism() = %d after rejected call, want 2 (unchanged)", Parallelism())
	}
	if err := SetParallelism(0); err != nil {
		t.Fatalf("SetParallelism(0) = %v, want nil", err)
	}
	if Parallelism() < 1 {
		t.Errorf("Parallelism() = %d with default width, want >= 1", Parallelism())
	}
}
