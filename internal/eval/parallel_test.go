package eval

import (
	"reflect"
	"strings"
	"testing"
)

// withParallelism runs fn under a fixed sweep width and restores the
// default afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	SetParallelism(n)
	defer SetParallelism(0)
	fn()
}

// TestParallelSweepsMatchSerial asserts the tentpole contract of the
// parallel sweep engine: because every Run is seeded and owns its
// scheduler, fanning the sweeps across workers must produce byte-identical
// rows/points to the serial loop — including the float accumulation order
// of the per-cell averages.
func TestParallelSweepsMatchSerial(t *testing.T) {
	const trials = 2 // >= 2 seeds per cell (trial seeds 1 and 2)

	var serialF4, parallelF4 []Figure4Row
	var serialT1, parallelT1 []Table1Row
	withParallelism(t, 1, func() {
		var err error
		if serialF4, err = RunFigure4(trials); err != nil {
			t.Fatal(err)
		}
		if serialT1, err = RunTable1(trials); err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		if parallelF4, err = RunFigure4(trials); err != nil {
			t.Fatal(err)
		}
		if parallelT1, err = RunTable1(trials); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serialF4, parallelF4) {
		t.Errorf("Figure4 rows diverge:\nserial   = %+v\nparallel = %+v", serialF4, parallelF4)
	}
	if !reflect.DeepEqual(serialT1, parallelT1) {
		t.Errorf("Table1 rows diverge:\nserial   = %+v\nparallel = %+v", serialT1, parallelT1)
	}
}

// TestParallelFigure5MatchesSerial covers the sweep-point fan-out of
// RunFigure5 (and, via MaxTrackableSpeed, the per-seed fan) on a reduced
// two-seed configuration.
func TestParallelFigure5MatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("speed scan is slow")
	}
	cfg := Figure5Config{
		Heartbeats:        []float64{0.5},
		Radii:             []float64{1},
		Seeds:             []int64{1, 2},
		IncludeRelinquish: true,
	}
	var serial, parallel []Figure5Point
	withParallelism(t, 1, func() {
		var err error
		if serial, err = RunFigure5(cfg); err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, 4, func() {
		var err error
		if parallel, err = RunFigure5(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Figure5 points diverge:\nserial   = %+v\nparallel = %+v", serial, parallel)
	}
}

// TestRunFigure5EmptyHeartbeats pins the descriptive error for a config
// that bypasses withDefaults' backfill and would previously have panicked
// on the relinquish index.
func TestRunFigure5EmptyHeartbeats(t *testing.T) {
	fn := runFigure5NoDefaults
	_, err := fn(Figure5Config{Radii: []float64{1}, Seeds: []int64{1}, IncludeRelinquish: true})
	if err == nil {
		t.Fatal("expected error for empty heartbeat sweep")
	}
	if !strings.Contains(err.Error(), "Heartbeats") {
		t.Errorf("error %q does not name the empty field", err)
	}
}

func TestSetParallelismClamps(t *testing.T) {
	SetParallelism(-3)
	defer SetParallelism(0)
	if Parallelism() < 1 {
		t.Errorf("Parallelism() = %d, want >= 1", Parallelism())
	}
	SetParallelism(2)
	if Parallelism() != 2 {
		t.Errorf("Parallelism() = %d, want 2", Parallelism())
	}
}
