package eval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"envirotrack/internal/eval/runpar"
)

// Statistical equivalence between the serial reference engine and the
// free-running parallel engine. The parallel executor reorders RNG draws
// (per-shard streams) and approximates boundary CSMA, so its runs are not
// byte-identical to serial; the contract is weaker and distributional:
// over an ensemble of seeds, every headline metric of the paper's
// evaluation must be drawn from the same distribution. The harness runs
// N-seed ensembles on both engines and applies a two-sample
// Kolmogorov-Smirnov test per metric.

// EquivMetric is one headline metric's two-sample comparison.
type EquivMetric struct {
	Name string
	// D is the two-sample KS statistic, Crit the rejection threshold at
	// the battery's alpha. KS-gated metrics are deemed equivalent when
	// D <= Crit.
	D, Crit float64
	// Tol, when nonzero, replaces the KS gate with an absolute tolerance
	// on the ensemble means: |SerialMean - ParallelMean| <= Tol. Used for
	// near-degenerate rates (heartbeat loss is a fraction of a percent in
	// nominal runs) where the KS statistic is hypersensitive to shifts far
	// below any physically meaningful divergence; D is still reported.
	Tol float64
	// SerialMean and ParallelMean summarize the two ensembles.
	SerialMean, ParallelMean float64
	Pass                     bool
}

// EquivReport is the outcome of one serial-vs-parallel ensemble battery.
type EquivReport struct {
	Shards  int
	Seeds   int
	Metrics []EquivMetric
	// SerialViolations / ParallelViolations count proven invariant
	// breaches across the ensembles (only populated when the scenario
	// enables CheckInvariants); any nonzero count fails the battery.
	SerialViolations, ParallelViolations int
}

// Pass reports whether every metric passed and no run violated an
// invariant.
func (r EquivReport) Pass() bool {
	for _, m := range r.Metrics {
		if !m.Pass {
			return false
		}
	}
	return r.SerialViolations == 0 && r.ParallelViolations == 0
}

// String renders a one-line-per-metric summary.
func (r EquivReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "equivalence serial vs %d-shard parallel, %d seeds:\n", r.Shards, r.Seeds)
	for _, m := range r.Metrics {
		verdict := "ok"
		if !m.Pass {
			verdict = "DIVERGED"
		}
		gate := fmt.Sprintf("crit=%.3f", m.Crit)
		if m.Tol > 0 {
			gate = fmt.Sprintf("tol=%.3f", m.Tol)
		}
		fmt.Fprintf(&b, "  %-16s D=%.3f %s serial=%.3f parallel=%.3f %s\n",
			m.Name, m.D, gate, m.SerialMean, m.ParallelMean, verdict)
	}
	if r.SerialViolations+r.ParallelViolations > 0 {
		fmt.Fprintf(&b, "  invariant violations: serial=%d parallel=%d\n",
			r.SerialViolations, r.ParallelViolations)
	}
	return b.String()
}

// equivSample is one run's headline metric vector.
type equivSample struct {
	reports    float64 // report count (cadence proxy over a fixed run length)
	cadence    float64 // mean inter-report gap, seconds
	meanErr    float64 // mean tracking error, hops (Figure 3)
	handovers  float64 // successful handovers (Figure 4 numerator)
	labels     float64 // distinct labels created (Figure 4 denominator side)
	hbLoss     float64 // heartbeat loss fraction (Table 1)
	violations int
}

// sampleRun reduces one RunResult to its metric vector.
func sampleRun(res RunResult) equivSample {
	s := equivSample{
		reports:    float64(len(res.Reports)),
		meanErr:    res.Track.MeanError(),
		handovers:  float64(res.Handover.Successful),
		labels:     float64(res.Labels),
		hbLoss:     res.HBLoss,
		violations: len(res.Violations),
	}
	if len(res.Reports) > 1 {
		first := res.Reports[0].At
		last := res.Reports[len(res.Reports)-1].At
		s.cadence = (last - first).Seconds() / float64(len(res.Reports)-1)
	}
	return s
}

// runEnsemble executes the scenario once per seed (sequentially when the
// parallel engine is on — each parallel run already owns Parallelism()
// worth of goroutines) and returns the metric vectors in seed order.
func runEnsemble(base Scenario, seeds []int64, parallelShards int) ([]equivSample, error) {
	workers := Parallelism()
	if parallelShards > 1 {
		workers = 1
	}
	return runpar.Map(context.Background(), workers, len(seeds),
		func(_ context.Context, i int) (equivSample, error) {
			sc := base
			sc.Seed = seeds[i]
			sc.ParallelShards = parallelShards
			res, err := Run(sc)
			if err != nil {
				return equivSample{}, err
			}
			return sampleRun(res), nil
		})
}

// ksStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum distance between the empirical CDFs of a and b.
func ksStatistic(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// ksCritical returns the large-sample rejection threshold for the
// two-sample KS test at significance alpha: c(alpha) * sqrt((n+m)/(n*m))
// with c(alpha) = sqrt(-ln(alpha/2)/2). The battery runs at a deliberately
// small alpha (1e-3): the null hypothesis is the *shipping* state, so the
// test is tuned to catch gross divergence (a broken boundary protocol
// shifts loss and handover distributions far past it) without flaking on
// ensemble noise.
func ksCritical(n, m int, alpha float64) float64 {
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}

// equivAlpha is the battery's KS significance level.
const equivAlpha = 1e-3

// mean returns the arithmetic mean (0 for an empty slice).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RunEquivalence executes the scenario over the seed ensemble on both the
// serial engine and the free-running parallel engine with the given shard
// count, and KS-tests every headline metric: report count and cadence
// (Figure 2's report_function), mean tracking error (Figure 3), successful
// handovers and labels created (Figure 4), and heartbeat loss (Table 1).
// When the scenario carries CheckInvariants, proven invariant violations
// on either engine fail the battery regardless of the KS outcomes.
func RunEquivalence(base Scenario, seeds []int64, shards int) (EquivReport, error) {
	if len(seeds) == 0 {
		for s := int64(1); s <= 20; s++ {
			seeds = append(seeds, s)
		}
	}
	if shards < 2 {
		shards = 2
	}
	serial, err := runEnsemble(base, seeds, 0)
	if err != nil {
		return EquivReport{}, fmt.Errorf("eval: serial ensemble: %w", err)
	}
	par, err := runEnsemble(base, seeds, shards)
	if err != nil {
		return EquivReport{}, fmt.Errorf("eval: parallel ensemble: %w", err)
	}

	rep := EquivReport{Shards: shards, Seeds: len(seeds)}
	crit := ksCritical(len(serial), len(par), equivAlpha)
	metric := func(name string, get func(equivSample) float64) {
		a := make([]float64, len(serial))
		b := make([]float64, len(par))
		for i := range serial {
			a[i] = get(serial[i])
		}
		for i := range par {
			b[i] = get(par[i])
		}
		d := ksStatistic(a, b)
		rep.Metrics = append(rep.Metrics, EquivMetric{
			Name: name, D: d, Crit: crit,
			SerialMean: mean(a), ParallelMean: mean(b),
			Pass: d <= crit,
		})
	}
	metricTol := func(name string, get func(equivSample) float64, tol float64) {
		metric(name, get)
		m := &rep.Metrics[len(rep.Metrics)-1]
		m.Tol = tol
		m.Pass = math.Abs(m.SerialMean-m.ParallelMean) <= tol
	}
	metric("reports", func(s equivSample) float64 { return s.reports })
	metric("report_cadence", func(s equivSample) float64 { return s.cadence })
	metric("mean_error", func(s equivSample) float64 { return s.meanErr })
	metric("handovers", func(s equivSample) float64 { return s.handovers })
	metric("labels", func(s equivSample) float64 { return s.labels })
	// Heartbeat loss is tolerance-gated, not KS-gated: in nominal runs the
	// only loss is collision loss at a fraction of a percent, and the
	// free-running executor's one-packet-time CSMA blindness across shard
	// boundaries (a boundary sender cannot sense a same-window transmission
	// from another shard until the barrier) shifts that rate by a few
	// tenths of a point — physically understood, far below protocol
	// relevance, yet fatal to a KS test on a distribution whose mass sits
	// at zero. A broken boundary protocol moves loss by tens of points and
	// still fails the 2-point gate.
	metricTol("hb_loss", func(s equivSample) float64 { return s.hbLoss }, 0.02)
	for _, s := range serial {
		rep.SerialViolations += s.violations
	}
	for _, s := range par {
		rep.ParallelViolations += s.violations
	}
	return rep, nil
}

// equivSeeds returns the 1..n seed ladder the batteries use.
func equivSeeds(n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}
