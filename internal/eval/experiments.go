package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"envirotrack"
	"envirotrack/internal/eval/runpar"
)

// --- Figure 3: tracked tank trajectory ---

// Figure3Result is the real-vs-reported trajectory of the Section 6.1
// case study (T-72 at 10 s/hop over a unit grid, tracker of Figure 2).
type Figure3Result struct {
	Run       RunResult
	MeanError float64
	MaxError  float64
}

// Figure3Scenario returns the Section 6.1 setup: an 11x2 grid, target on
// the horizontal line midway between the rows, 0.1 hops/s (50 km/h
// emulated), Ne=2, Le=1s, reports every 5 s.
func Figure3Scenario(seed int64) Scenario {
	return Scenario{
		Cols: 11, Rows: 2,
		CommRadius:    2.0,
		SensingRadius: 1.5,
		SpeedHops:     0.1,
		Heartbeat:     500 * time.Millisecond,
		HopsPast:      1,
		ReportEvery:   5 * time.Second,
		LossProb:      0.05,
		Seed:          seed,
	}
}

// RunFigure3 executes the trajectory experiment.
func RunFigure3(seed int64) (Figure3Result, error) {
	return RunFigure3Under(seed, envirotrack.ChaosSchedule{}, false)
}

// RunFigure3Under executes the trajectory experiment under a fault
// schedule, optionally with the protocol invariant checker attached
// (violations land in the result's Run.Violations).
func RunFigure3Under(seed int64, sched envirotrack.ChaosSchedule, check bool) (Figure3Result, error) {
	sc := Figure3Scenario(seed)
	sc.Chaos = sched
	sc.CheckInvariants = check
	res, err := Run(sc)
	if err != nil {
		return Figure3Result{}, err
	}
	return Figure3Result{
		Run:       res,
		MeanError: res.Track.MeanError(),
		MaxError:  res.Track.MaxError(),
	}, nil
}

// Render prints the trajectory as the paper's (x, y) series.
func (f Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: tracked tank trajectory (true path y = %.1f)\n", f.Run.Track.Points[0].Actual.Y)
	fmt.Fprintf(&b, "%8s %10s %10s %10s %10s\n", "t(s)", "x_true", "y_true", "x_est", "y_est")
	for _, p := range f.Run.Track.Points {
		fmt.Fprintf(&b, "%8.1f %10.3f %10.3f %10.3f %10.3f\n",
			p.At.Seconds(), p.Actual.X, p.Actual.Y, p.Reported.X, p.Reported.Y)
	}
	fmt.Fprintf(&b, "mean error = %.3f grid units, max error = %.3f grid units\n", f.MeanError, f.MaxError)
	return b.String()
}

// --- Figure 4: successful context-label handovers ---

// Figure4Row is one bar of Figure 4.
type Figure4Row struct {
	SpeedKmh   float64
	HopsPast   int
	SuccessPct float64
	Trials     int
}

// RunFigure4 measures handover success for the two emulated tank speeds
// (33 and 50 km/h) under the two heartbeat-propagation settings (h = 0:
// heartbeats stay within the radio radius; h = 1: propagated one hop past
// the sensing perimeter). Each cell averages `trials` seeded runs; the
// cell×trial cross product fans across Parallelism() workers, and the
// per-cell averages are folded in trial order, so the rows are identical
// to the serial sweep.
func RunFigure4(trials int) ([]Figure4Row, error) {
	if trials <= 0 {
		trials = 3
	}
	type cell struct {
		h   int
		kmh float64
	}
	cells := []cell{{1, 33}, {1, 50}, {0, 33}, {0, 50}}
	rates, err := runpar.Map(sweepContext("fig4", "runs"), Parallelism(), len(cells)*trials,
		func(_ context.Context, i int) (float64, error) {
			c := cells[i/trials]
			res, err := Run(figure4Scenario(c.kmh, c.h, int64(i%trials+1)))
			if err != nil {
				return 0, err
			}
			return res.Handover.StrictSuccessRate(), nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure4Row, 0, len(cells))
	for ci, c := range cells {
		var sum float64
		for trial := 0; trial < trials; trial++ {
			sum += rates[ci*trials+trial]
		}
		rows = append(rows, Figure4Row{
			SpeedKmh:   c.kmh,
			HopsPast:   c.h,
			SuccessPct: 100 * sum / float64(trials),
			Trials:     trials,
		})
	}
	return rows, nil
}

// figure4Scenario: the h=0 case must be marginal — communication radius
// only slightly above the sensing radius, so nodes that newly sense the
// target can be out of earshot of a lagging leader. Relinquish is off, as
// in the paper's first experiment where handover happens by leadership
// changeover along the path.
func figure4Scenario(kmh float64, hopsPast int, seed int64) Scenario {
	return Scenario{
		Cols: 16, Rows: 2,
		CommRadius:        2.0,
		SensingRadius:     1.5,
		SpeedHops:         KmhToHops(kmh),
		Heartbeat:         time.Second,
		HopsPast:          hopsPast,
		DisableRelinquish: true,
		ReportEvery:       5 * time.Second,
		LossProb:          0.12,
		Seed:              seed,
	}
}

// RenderFigure4 prints the histogram rows.
func RenderFigure4(rows []Figure4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4: successful context-label handovers (%)\n")
	fmt.Fprintf(&b, "%-44s %10s %10s\n", "group management setting", "33 km/hr", "50 km/hr")
	byH := map[int]map[float64]float64{}
	for _, r := range rows {
		if byH[r.HopsPast] == nil {
			byH[r.HopsPast] = map[float64]float64{}
		}
		byH[r.HopsPast][r.SpeedKmh] = r.SuccessPct
	}
	fmt.Fprintf(&b, "%-44s %9.1f%% %9.1f%%\n", "propagate heartbeat past sensing radius", byH[1][33], byH[1][50])
	fmt.Fprintf(&b, "%-44s %9.1f%% %9.1f%%\n", "heartbeats only within radius", byH[0][33], byH[0][50])
	return b.String()
}

// --- Table 1: communication performance data ---

// Table1Row is one row of Table 1.
type Table1Row struct {
	SpeedKmh    float64
	HBLossPct   float64
	MsgLossPct  float64
	LinkUtilPct float64
	Runs        int
}

// RunTable1 reproduces the communication performance table: per-speed
// heartbeat loss, member-reading loss, and worst-case link utilization,
// averaged over `runs` independent runs of the h=1 (correct) setting. The
// speed×run cross product fans across Parallelism() workers; per-speed
// sums are folded in run order, so the rows match the serial sweep
// exactly.
func RunTable1(runs int) ([]Table1Row, error) {
	if runs <= 0 {
		runs = 3
	}
	speeds := []float64{33, 50}
	type sample struct{ hb, msg, util float64 }
	samples, err := runpar.Map(sweepContext("table1", "runs"), Parallelism(), len(speeds)*runs,
		func(_ context.Context, i int) (sample, error) {
			res, err := Run(figure4Scenario(speeds[i/runs], 1, int64(100+i%runs)))
			if err != nil {
				return sample{}, err
			}
			return sample{hb: res.HBLoss, msg: res.MsgLoss, util: res.LinkUtil}, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(speeds))
	for si, kmh := range speeds {
		var hb, msg, util float64
		for r := 0; r < runs; r++ {
			s := samples[si*runs+r]
			hb += s.hb
			msg += s.msg
			util += s.util
		}
		rows = append(rows, Table1Row{
			SpeedKmh:    kmh,
			HBLossPct:   100 * hb / float64(runs),
			MsgLossPct:  100 * msg / float64(runs),
			LinkUtilPct: 100 * util / float64(runs),
			Runs:        runs,
		})
	}
	return rows, nil
}

// RenderTable1 prints the table in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: communication performance data\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "Speed", "% HB loss", "% Msg loss", "% Link Util")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.2f %10.2f %10.2f\n",
			fmt.Sprintf("%.0f km/hr", r.SpeedKmh), r.HBLossPct, r.MsgLossPct, r.LinkUtilPct)
	}
	return b.String()
}
