package eval

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"envirotrack"
)

// conformanceBackends is the pair every backend-conformance test runs
// against; a new backend earns its registration by joining this list.
var conformanceBackends = []string{envirotrack.BackendLeader, envirotrack.BackendPassive}

// conformanceScenario is one chaotic, invariant-checked scenario used by
// the determinism conformance checks: faults exercise the failure paths
// of whichever backend is under test.
func conformanceScenario(t *testing.T, backend string) Scenario {
	t.Helper()
	sched, err := envirotrack.ParseChaosSchedule(
		"crash:node=5,at=20s,for=5s;loss:at=10s,for=10s,p=0.3;dup:at=30s,for=5s,p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosBase(5)
	sc.Chaos = sched
	sc.Backend = backend
	return sc
}

// TestBackendRepeatSeedByteIdentical is the determinism half of the
// backend conformance contract: for every registered backend, rerunning
// the same seeded scenario (chaos faults included) must reproduce a
// deeply equal result and a byte-identical JSONL event stream.
func TestBackendRepeatSeedByteIdentical(t *testing.T) {
	for _, be := range conformanceBackends {
		t.Run(be, func(t *testing.T) {
			sc := conformanceScenario(t, be)
			res1, trace1 := collectRun(t, sc, false)
			res2, trace2 := collectRun(t, sc, false)
			if len(trace1) == 0 {
				t.Fatal("run emitted no events")
			}
			if !reflect.DeepEqual(res1, res2) {
				t.Errorf("repeat runs diverge:\nfirst  = %+v\nsecond = %+v", res1, res2)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Errorf("repeat JSONL traces diverge (%d vs %d bytes)", len(trace1), len(trace2))
			}
			if !protocolMutated && len(res1.Violations) != 0 {
				t.Errorf("run violated invariants: %+v", res1.Violations)
			}
		})
	}
}

// TestBackendShardedByteIdentical extends the sharded-engine differential
// battery across backends: the spatial partition of the event heap must
// stay invisible no matter which tracking protocol runs on top of it.
func TestBackendShardedByteIdentical(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build diverges by design; see TestShardMutationTripsDifferentialBattery")
	}
	for _, be := range conformanceBackends {
		t.Run(be, func(t *testing.T) {
			sc := conformanceScenario(t, be)
			serialRes, serialTrace := collectShardedRun(t, sc, 1)
			shardedRes, shardedTrace := collectShardedRun(t, sc, 4)
			if !reflect.DeepEqual(shardedRes, serialRes) {
				t.Errorf("results diverge:\nsharded = %+v\nserial  = %+v", shardedRes, serialRes)
			}
			if !bytes.Equal(shardedTrace, serialTrace) {
				t.Errorf("JSONL traces diverge (%d vs %d bytes)", len(shardedTrace), len(serialTrace))
			}
		})
	}
}

// TestBackendParallelShardsDeterministic checks the weaker contract of
// the free-running parallel engine per backend: not byte-identical to
// serial, but exactly reproducible for a fixed (seed, shard count).
func TestBackendParallelShardsDeterministic(t *testing.T) {
	for _, be := range conformanceBackends {
		t.Run(be, func(t *testing.T) {
			sc := conformanceScenario(t, be)
			sc.ParallelShards = 3
			res1, trace1 := collectRun(t, sc, false)
			res2, trace2 := collectRun(t, sc, false)
			if len(trace1) == 0 {
				t.Fatal("run emitted no events")
			}
			if !reflect.DeepEqual(res1, res2) {
				t.Errorf("parallel reruns diverge:\nfirst  = %+v\nsecond = %+v", res1, res2)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Errorf("parallel rerun JSONL traces diverge (%d vs %d bytes)", len(trace1), len(trace2))
			}
		})
	}
}

// TestBackendChaosSuiteClean runs the full 9-case fault matrix under each
// backend with its own invariant rule set attached: nominal seeds must
// produce zero proven violations and keep tracking alive in every cell.
// For the passive backend this is the acceptance gate for its invariant
// set (trace monotonicity, report-without-trace, estimate staleness).
func TestBackendChaosSuiteClean(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite x2 is slow")
	}
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): violations are the expected outcome")
	}
	for _, be := range conformanceBackends {
		t.Run(be, func(t *testing.T) {
			SetBackend(be)
			defer SetBackend("")
			points, err := RunChaosSuite(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(points) == 0 {
				t.Fatal("chaos suite produced no points")
			}
			for _, p := range points {
				if p.CheckedEvents == 0 {
					t.Errorf("case %q seed %d: invariant checker saw no events", p.Case, p.Seed)
				}
				if !p.TrackedOK {
					t.Errorf("case %q seed %d: tracking died", p.Case, p.Seed)
				}
				for _, v := range p.Violations {
					t.Errorf("case %q seed %d: %s violation at %v: %s", p.Case, p.Seed, v.Invariant, v.At, v.Detail)
				}
			}
		})
	}
}

// TestBackendDoubleAttachErrors checks attach idempotence at the public
// API: attaching the same context type twice must fail identically under
// every backend, leaving the first attachment working.
func TestBackendDoubleAttachErrors(t *testing.T) {
	for _, be := range conformanceBackends {
		t.Run(be, func(t *testing.T) {
			net, err := envirotrack.New(
				envirotrack.WithGrid(3, 2),
				envirotrack.WithSensing(envirotrack.VehicleSensing("vehicle")),
				envirotrack.WithSeed(1),
			)
			if err != nil {
				t.Fatal(err)
			}
			spec := trackerSpec(Scenario{Backend: be}.withDefaults())
			if err := net.AttachContextAll(spec); err != nil {
				t.Fatalf("first attach: %v", err)
			}
			if err := net.AttachContextAll(spec); err == nil {
				t.Error("second attach of the same context type succeeded, want error")
			}
			if err := net.Run(time.Second); err != nil {
				t.Errorf("network run after rejected re-attach: %v", err)
			}
		})
	}
}

// TestSummarizeComparison pins the comparative summary's aggregation on
// synthetic points: per-backend means, counts, and ordering.
func TestSummarizeComparison(t *testing.T) {
	points := []ComparePoint{
		{Case: "a", Seed: 1, Backends: []BackendMetrics{
			{Backend: "leader", Coherent: true, TrackedOK: true, MeanErr: 0.2, MeanGap: 4 * time.Second, FramesPerSec: 10, Handovers: 3, Gaps: 1},
			{Backend: "passive", Coherent: true, TrackedOK: false, MeanErr: 0.4, MeanGap: 6 * time.Second, FramesPerSec: 8, Handovers: 5, Violations: 1},
		}},
		{Case: "a", Seed: 2, Backends: []BackendMetrics{
			{Backend: "leader", Coherent: false, TrackedOK: true, MeanErr: 0.4, MeanGap: 8 * time.Second, FramesPerSec: 14, Handovers: 5, Gaps: 1},
			{Backend: "passive", Coherent: true, TrackedOK: true, MeanErr: 0.2, MeanGap: 2 * time.Second, FramesPerSec: 6, Handovers: 7},
		}},
	}
	sums := SummarizeComparison(points)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	leader, passive := sums[0], sums[1]
	if leader.Backend != "leader" || passive.Backend != "passive" {
		t.Fatalf("summary order = %q, %q; want leader, passive", leader.Backend, passive.Backend)
	}
	if leader.Cells != 2 || passive.Cells != 2 {
		t.Errorf("cells = %d, %d; want 2, 2", leader.Cells, passive.Cells)
	}
	if !almostEqual(leader.CoherentPct, 50, 1e-9) || !almostEqual(passive.TrackedPct, 50, 1e-9) {
		t.Errorf("percentages: leader coherent %.1f (want 50), passive tracked %.1f (want 50)",
			leader.CoherentPct, passive.TrackedPct)
	}
	if !almostEqual(leader.MeanErr, 0.3, 1e-9) || !almostEqual(leader.MeanGapSec, 6, 1e-9) {
		t.Errorf("leader means: err %.2f (want 0.3), gap %.1fs (want 6)", leader.MeanErr, leader.MeanGapSec)
	}
	if !almostEqual(leader.FramesPerSec, 12, 1e-9) || leader.Handovers != 8 || leader.Gaps != 2 {
		t.Errorf("leader totals: frames/s %.1f (want 12), handovers %d (want 8), gaps %d (want 2)",
			leader.FramesPerSec, leader.Handovers, leader.Gaps)
	}
	if passive.Violations != 1 {
		t.Errorf("passive violations = %d, want 1", passive.Violations)
	}
}
