// Package runpar is the parallel sweep engine behind the eval harnesses:
// a bounded worker pool that fans independent, deterministic simulation
// runs across CPUs. Each eval.Run owns its scheduler and seeded RNG, so
// runs may execute concurrently without sharing state; the pool only has
// to guarantee order-stable result collection and prompt cancellation on
// the first error, which keeps parallel sweeps bit-identical to serial
// ones.
package runpar

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// progressKey carries a completion callback through the context to Map.
type progressKey struct{}

// WithProgress returns a context that makes Map report completions:
// fn(done, total) runs after every successfully finished job, possibly
// from multiple goroutines at once, so fn must be safe for concurrent
// use. The callback applies only to the outermost Map call — Map strips
// it from the context it hands to jobs, so nested sweeps (a per-point
// speed scan inside a figure sweep) do not corrupt the outer totals.
func WithProgress(ctx context.Context, fn func(done, total int)) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFrom extracts the WithProgress callback, if any.
func progressFrom(ctx context.Context) func(done, total int) {
	fn, _ := ctx.Value(progressKey{}).(func(done, total int))
	return fn
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the n results in index order. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 runs inline on the calling
// goroutine, byte-for-byte the serial loop it replaces.
//
// The first error cancels the context handed to the remaining jobs and is
// returned; results computed by other workers before the failure are
// discarded. Jobs are claimed from a shared counter, so slow jobs do not
// stall the pool, and result placement depends only on the job index —
// never on scheduling order.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	progress := progressFrom(ctx)
	jobCtx := ctx
	if progress != nil {
		// Detach the callback from the jobs' context: a nested Map (e.g.
		// the per-point speed scan inside a figure sweep) must not report
		// its own completions against this call's total.
		jobCtx = WithProgress(ctx, nil)
	}
	var completed atomic.Int64
	report := func() {
		if progress != nil {
			progress(int(completed.Add(1)), n)
		}
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(jobCtx, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
			report()
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobCtx = ctx
	if progress != nil {
		jobCtx = WithProgress(ctx, nil)
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				r, err := fn(jobCtx, i)
				if err != nil {
					fail(err)
					return
				}
				results[i] = r
				report()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The parent context may have been cancelled while workers were
	// draining; do not hand back a partially filled result slice.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
