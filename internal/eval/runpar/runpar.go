// Package runpar is the parallel sweep engine behind the eval harnesses:
// a bounded worker pool that fans independent, deterministic simulation
// runs across CPUs. Each eval.Run owns its scheduler and seeded RNG, so
// runs may execute concurrently without sharing state; the pool only has
// to guarantee order-stable result collection and prompt cancellation on
// the first error, which keeps parallel sweeps bit-identical to serial
// ones.
package runpar

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the n results in index order. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 runs inline on the calling
// goroutine, byte-for-byte the serial loop it replaces.
//
// The first error cancels the context handed to the remaining jobs and is
// returned; results computed by other workers before the failure are
// discarded. Jobs are claimed from a shared counter, so slow jobs do not
// stall the pool, and result placement depends only on the job index —
// never on scheduling order.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				r, err := fn(ctx, i)
				if err != nil {
					fail(err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The parent context may have been cancelled while workers were
	// draining; do not hand back a partially filled result slice.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
