package runpar

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderStable(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("Map(n=0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int32
	_, err := Map(context.Background(), 4, 64, func(ctx context.Context, i int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("job %d: %w", i, boom)
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
		case <-time.After(20 * time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if cancelled.Load() == 0 {
		t.Error("no job observed cancellation after the first error")
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		calls++
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 4 {
		t.Errorf("serial path ran %d jobs after the error, want 4", calls)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 8, func(context.Context, int) (int, error) {
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapReportsProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var (
			calls    atomic.Int32
			maxDone  atomic.Int32
			badTotal atomic.Int32
		)
		ctx := WithProgress(context.Background(), func(done, total int) {
			calls.Add(1)
			if total != 12 {
				badTotal.Add(1)
			}
			for {
				cur := maxDone.Load()
				if int32(done) <= cur || maxDone.CompareAndSwap(cur, int32(done)) {
					break
				}
			}
		})
		_, err := Map(ctx, workers, 12, func(_ context.Context, i int) (int, error) {
			return i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != 12 {
			t.Errorf("workers=%d: %d progress calls, want 12", workers, calls.Load())
		}
		if maxDone.Load() != 12 {
			t.Errorf("workers=%d: max done = %d, want 12", workers, maxDone.Load())
		}
		if badTotal.Load() != 0 {
			t.Errorf("workers=%d: %d calls saw total != 12", workers, badTotal.Load())
		}
	}
}

// TestMapStripsProgressFromNestedCalls pins the guard that keeps a nested
// Map (the per-point speed scan inside a figure sweep) from reporting its
// own completions against the outer sweep's total.
func TestMapStripsProgressFromNestedCalls(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var calls atomic.Int32
		ctx := WithProgress(context.Background(), func(done, total int) {
			calls.Add(1)
			if total != 3 {
				t.Errorf("workers=%d: progress saw total %d, want outer total 3", workers, total)
			}
		})
		_, err := Map(ctx, workers, 3, func(inner context.Context, i int) (int, error) {
			// Each outer job runs a nested sweep; its completions must not
			// reach the outer callback.
			_, err := Map(inner, workers, 5, func(_ context.Context, j int) (int, error) {
				return j, nil
			})
			return i, err
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != 3 {
			t.Errorf("workers=%d: %d progress calls, want 3 (outer jobs only)", workers, calls.Load())
		}
	}
}

// TestMapNestedJobsObserveCancellation ensures stripping the progress
// callback does not detach jobs from the pool's cancellation: the context
// handed to fn must still be derived from the cancellable one.
func TestMapNestedJobsObserveCancellation(t *testing.T) {
	boom := errors.New("boom")
	var sawCancel atomic.Int32
	started := make(chan struct{}, 32)
	ctx := WithProgress(context.Background(), func(done, total int) {})
	_, err := Map(ctx, 4, 32, func(jobCtx context.Context, i int) (int, error) {
		if i == 0 {
			// Fail only once another job is parked in its select, so the
			// cancellation has a live observer.
			<-started
			return 0, boom
		}
		started <- struct{}{}
		select {
		case <-jobCtx.Done():
			sawCancel.Add(1)
		case <-time.After(time.Second):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if sawCancel.Load() == 0 {
		t.Error("no job observed cancellation through the progress-stripped context")
	}
}
