package runpar

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderStable(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("Map(n=0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int32
	_, err := Map(context.Background(), 4, 64, func(ctx context.Context, i int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("job %d: %w", i, boom)
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
		case <-time.After(20 * time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if cancelled.Load() == 0 {
		t.Error("no job observed cancellation after the first error")
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		calls++
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 4 {
		t.Errorf("serial path ran %d jobs after the error, want 4", calls)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 8, func(context.Context, int) (int, error) {
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
