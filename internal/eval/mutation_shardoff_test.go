//go:build !shardmut

package eval

// shardMutated lets the sharding differential battery's byte-identity
// assertions skip under the -tags shardmut mutation build (where trace
// divergence is the expected outcome, proven by the mutation tests).
const shardMutated = false
