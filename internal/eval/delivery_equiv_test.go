package eval

import (
	"bytes"
	"reflect"
	"testing"

	"envirotrack"
	"envirotrack/internal/obs"
)

// collectRun executes one scenario under the given delivery mode and
// returns its result plus the byte-exact JSONL event stream.
func collectRun(t *testing.T, sc Scenario, perReceiver bool) (RunResult, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	SetEventSink(sink)
	SetPerReceiverDelivery(perReceiver)
	defer func() {
		SetEventSink(nil)
		SetPerReceiverDelivery(false)
	}()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestBatchedDeliveryMatchesPerReceiver is the delivery-order equivalence
// property the batching rewrite rests on: for the same seed, the batched
// fan-out (one pooled delivery event per frame) and the per-receiver
// reference path (one event per target) produce identical run results and
// byte-identical JSONL traces. Chaos loss, duplication, and partition
// faults are included because they must keep applying per receiver inside
// a batch.
func TestBatchedDeliveryMatchesPerReceiver(t *testing.T) {
	sched, err := envirotrack.ParseChaosSchedule(
		"crash:node=5,at=20s,for=5s;loss:at=10s,for=10s,p=0.4;partition:x=5,at=25s,for=5s;dup:at=30s,for=5s,p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"nominal", Scenario{Seed: 7}},
		{"lossy", Scenario{Seed: 11, LossProb: 0.2}},
	}
	chaotic := chaosBase(13)
	chaotic.Chaos = sched
	chaotic.CheckInvariants = true
	cases = append(cases, struct {
		name string
		sc   Scenario
	}{"chaos", chaotic})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batchedRes, batchedTrace := collectRun(t, tc.sc, false)
			referenceRes, referenceTrace := collectRun(t, tc.sc, true)
			if !reflect.DeepEqual(batchedRes, referenceRes) {
				t.Errorf("results diverge:\nbatched   = %+v\nreference = %+v", batchedRes, referenceRes)
			}
			if !bytes.Equal(batchedTrace, referenceTrace) {
				t.Errorf("JSONL traces diverge (%d vs %d bytes)", len(batchedTrace), len(referenceTrace))
			}
			if len(batchedTrace) == 0 {
				t.Error("run emitted no events")
			}
			if len(batchedRes.Violations) != 0 {
				t.Errorf("batched run violated invariants: %+v", batchedRes.Violations)
			}
		})
	}
}

// TestBatchedDeliveryMatchesPerReceiverParallel repeats the equivalence
// check under the parallel sweep runner: the chaos suite fanned across
// workers with batched delivery must match the per-receiver reference
// point-for-point and trace-for-trace (compared per run tag). This also
// re-proves invariants I1–I5 hold with batching, since every suite case
// runs the checker.
func TestBatchedDeliveryMatchesPerReceiverParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite x2 is slow")
	}
	collect := func(perReceiver bool) ([]ChaosPoint, map[string][]string) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		SetEventSink(sink)
		SetPerReceiverDelivery(perReceiver)
		defer func() {
			SetEventSink(nil)
			SetPerReceiverDelivery(false)
		}()
		var points []ChaosPoint
		withParallelism(t, 4, func() {
			var err error
			if points, err = RunChaosSuite(1); err != nil {
				t.Fatal(err)
			}
		})
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return points, bucketByRun(buf.String())
	}
	batchedPoints, batchedTraces := collect(false)
	referencePoints, referenceTraces := collect(true)
	if !reflect.DeepEqual(batchedPoints, referencePoints) {
		t.Errorf("chaos suite points diverge:\nbatched   = %+v\nreference = %+v", batchedPoints, referencePoints)
	}
	if len(batchedTraces) == 0 {
		t.Fatal("batched suite produced no traced runs")
	}
	if !reflect.DeepEqual(batchedTraces, referenceTraces) {
		t.Errorf("per-run JSONL streams diverge between batched and per-receiver suites (%d vs %d runs)",
			len(batchedTraces), len(referenceTraces))
	}
	for _, p := range batchedPoints {
		for _, v := range p.Violations {
			t.Errorf("batched case %q seed %d: %s violation at %v: %s", p.Case, p.Seed, v.Invariant, v.At, v.Detail)
		}
	}
}
