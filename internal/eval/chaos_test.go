package eval

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"envirotrack"
	"envirotrack/internal/obs"
)

// TestChaosSuiteNominalHoldsInvariants is the suite's core promise: on
// the nominal (unmutated) protocol, every fault case of the matrix runs
// to completion with zero proven invariant violations — the checker's
// rules are sound under crashes, loss bursts, ramps, partitions, and
// duplication storms alike.
func TestChaosSuiteNominalHoldsInvariants(t *testing.T) {
	if protocolMutated {
		t.Skip("protocol mutated (-tags chaosmut): violations are the expected outcome")
	}
	trials := 2
	if testing.Short() {
		trials = 1
	}
	points, err := RunChaosSuite(trials)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ChaosCases) * trials; len(points) != want {
		t.Fatalf("suite returned %d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.CheckedEvents == 0 {
			t.Errorf("case %q seed %d: invariant checker saw no events", p.Case, p.Seed)
		}
		for _, v := range p.Violations {
			t.Errorf("case %q seed %d: %s violation at %v: %s", p.Case, p.Seed, v.Invariant, v.At, v.Detail)
		}
	}
}

// TestChaosRunDeterministic pins the tentpole determinism contract for
// fault injection: the same seed plus the same schedule produce an
// identical RunResult (stats, reports, violations) and a byte-identical
// JSONL event stream.
func TestChaosRunDeterministic(t *testing.T) {
	sched, err := envirotrack.ParseChaosSchedule(
		"crash:node=5,at=20s,for=5s;loss:at=10s,for=10s,p=0.4;dup:at=30s,for=5s,p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (RunResult, []byte) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		SetEventSink(sink)
		defer SetEventSink(nil)
		sc := chaosBase(7)
		sc.Chaos = sched
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	res1, trace1 := run()
	res2, trace2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("identical chaos runs diverge:\nfirst  = %+v\nsecond = %+v", res1, res2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("identical chaos runs produce different JSONL traces (%d vs %d bytes)",
			len(trace1), len(trace2))
	}
	if len(trace1) == 0 {
		t.Error("chaos run emitted no events")
	}
}

// TestChaosSuiteParallelMatchesSerial extends the parallel-sweep
// determinism regression to the chaos suite: fanning the (case, seed)
// grid across workers must yield results identical to the serial loop,
// including per-run JSONL event streams (compared per run tag, since a
// shared sink interleaves lines across concurrent runs).
func TestChaosSuiteParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite x2 is slow")
	}
	collect := func(width int) ([]ChaosPoint, map[string][]string) {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		SetEventSink(sink)
		defer SetEventSink(nil)
		var points []ChaosPoint
		withParallelism(t, width, func() {
			var err error
			if points, err = RunChaosSuite(1); err != nil {
				t.Fatal(err)
			}
		})
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return points, bucketByRun(buf.String())
	}
	serialPoints, serialTraces := collect(1)
	parallelPoints, parallelTraces := collect(4)
	if !reflect.DeepEqual(serialPoints, parallelPoints) {
		t.Errorf("chaos suite points diverge:\nserial   = %+v\nparallel = %+v", serialPoints, parallelPoints)
	}
	if len(serialTraces) == 0 {
		t.Fatal("serial suite produced no traced runs")
	}
	if !reflect.DeepEqual(serialTraces, parallelTraces) {
		t.Errorf("per-run JSONL streams diverge between serial and parallel suites (%d vs %d runs)",
			len(serialTraces), len(parallelTraces))
	}
}

// bucketByRun splits a shared JSONL stream into per-run line sequences
// keyed by the "run" tag, preserving within-run order.
func bucketByRun(stream string) map[string][]string {
	out := make(map[string][]string)
	for _, line := range strings.Split(stream, "\n") {
		if line == "" {
			continue
		}
		key := "0"
		if i := strings.Index(line, `"run":`); i >= 0 {
			rest := line[i+len(`"run":`):]
			if j := strings.IndexAny(rest, ",}"); j >= 0 {
				key = rest[:j]
			}
		}
		out[key] = append(out[key], line)
	}
	return out
}

// TestChaosScheduleRoundTrip pins the spec format: parsing a rendered
// schedule reproduces it.
func TestChaosScheduleRoundTrip(t *testing.T) {
	specs := []string{
		"crash:node=17,at=10s,for=5s",
		"loss:at=20s,for=10s,p=0.5",
		"ramp:from=0,to=0.6,start=10s,end=30s",
		"partition:x=5,at=15s,for=10s",
		"dup:at=5s,for=20s,p=0.3",
		"crash:node=1,at=1s;loss:at=2s,p=1",
	}
	for _, spec := range specs {
		s, err := envirotrack.ParseChaosSchedule(spec)
		if err != nil {
			t.Fatalf("ParseChaosSchedule(%q): %v", spec, err)
		}
		round, err := envirotrack.ParseChaosSchedule(s.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", s.String(), spec, err)
		}
		if !reflect.DeepEqual(s, round) {
			t.Errorf("round trip of %q diverges: %+v vs %+v", spec, s, round)
		}
	}
	for _, bad := range []string{
		"crash:at=1s", "loss:p=2", "ramp:from=0,to=1,start=5s,end=5s",
		"explode:at=1s", "crash:node=1,at=1s,bogus=2", "loss:p=0.5,p=0.5",
	} {
		if _, err := envirotrack.ParseChaosSchedule(bad); err == nil {
			t.Errorf("ParseChaosSchedule(%q) succeeded, want error", bad)
		}
	}
}

// TestInvariantCheckerConfigDerivation documents the Pe the eval wiring
// hands the checker: the stack derives ReportPeriod = Freshness - 100ms.
func TestInvariantCheckerConfigDerivation(t *testing.T) {
	sc := Scenario{CheckInvariants: true}.withDefaults()
	if got, want := sc.Freshness-100*time.Millisecond, 900*time.Millisecond; got != want {
		t.Fatalf("derived Pe = %v, want %v (default freshness %v)", got, want, sc.Freshness)
	}
	if checkerFor(sc) == nil {
		t.Fatal("checkerFor returned nil for CheckInvariants scenario")
	}
	if checkerFor(Scenario{}.withDefaults()) != nil {
		t.Fatal("checkerFor returned a checker without CheckInvariants")
	}
	_ = fmt.Sprintf // keep fmt imported alongside future debugging
}
