package eval

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"envirotrack/internal/eval/runpar"
)

// progressCfg holds the sweep progress destination (nil = disabled) and
// an overridable clock for tests.
var progressCfg = struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}{now: time.Now}

// SetProgressWriter makes every sweep harness (RunFigure4/5/6, RunTable1)
// report live progress — jobs completed/total, rate, ETA — to w,
// overwriting one line per update (pass os.Stderr for a terminal). nil
// disables reporting.
func SetProgressWriter(w io.Writer) {
	progressCfg.mu.Lock()
	defer progressCfg.mu.Unlock()
	progressCfg.w = w
}

// sweepContext returns the context a sweep harness should hand to
// runpar.Map: background, plus a live progress reporter when one is
// configured. name labels the sweep; unit is what one job is ("runs",
// "points").
func sweepContext(name, unit string) context.Context {
	progressCfg.mu.Lock()
	w, now := progressCfg.w, progressCfg.now
	progressCfg.mu.Unlock()
	if w == nil {
		return context.Background()
	}
	// The sweep starts as soon as the harness hands this context to
	// runpar.Map, so anchor the rate/ETA clock here — anchoring on the
	// first completion would make the first rate estimate meaningless.
	var mu sync.Mutex
	start := now()
	return runpar.WithProgress(context.Background(), func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		elapsed := now().Sub(start).Seconds()
		rate := float64(done) / elapsed
		line := fmt.Sprintf("\r%s: %d/%d %s", name, done, total, unit)
		if elapsed > 0 && rate > 0 {
			eta := float64(total-done) / rate
			line += fmt.Sprintf(" (%.1f %s/s, ETA %.0fs)", rate, unit, eta)
		}
		if done == total {
			line += " \n"
		}
		fmt.Fprint(w, line)
	})
}
