package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"envirotrack/internal/eval/runpar"
)

// --- Figure 5: effect of timers on maximum trackable speed ---

// Figure5Point is one point of the Figure 5 curves.
type Figure5Point struct {
	HeartbeatSec  float64
	SensingRadius float64
	// Mode is "worst-case" (leader failure, takeover-only recovery) or
	// "relinquish" (explicit handoff).
	Mode         string
	MaxSpeedHops float64
}

// Figure5Config bounds the sweep so callers can trade fidelity for time.
type Figure5Config struct {
	// Heartbeats to sweep (seconds).
	// Default {0.03125, 0.0625, 0.125, 0.25, 0.5, 1, 2, 4}.
	Heartbeats []float64
	// Radii to sweep (grid units). Default {1, 2}.
	Radii []float64
	// Seeds per point (majority vote). Default {1, 2}.
	Seeds []int64
	// IncludeRelinquish adds the flat "relinquish" reference line.
	IncludeRelinquish bool
}

func (c Figure5Config) withDefaults() Figure5Config {
	if len(c.Heartbeats) == 0 {
		c.Heartbeats = []float64{0.03125, 0.0625, 0.125, 0.25, 0.5, 1, 2, 4}
	}
	if len(c.Radii) == 0 {
		c.Radii = []float64{1, 2}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2}
	}
	return c
}

// figure5Scenario is the Section 6.2 stress setup: communication radius 6
// grids, variable sensing radius, constrained CPUs (the paper identified
// CPU processing, not bandwidth, as the breakdown resource at small
// heartbeat periods).
func figure5Scenario(hbSec, radius float64, worstCase bool) Scenario {
	rows := int(2*radius) + 1
	return Scenario{
		Cols: 24, Rows: rows,
		CommRadius:        6,
		SensingRadius:     radius,
		Heartbeat:         time.Duration(hbSec * float64(time.Second)),
		HopsPast:          1,
		DisableRelinquish: worstCase,
		ReportEvery:       5 * time.Second,
		Freshness:         2 * time.Second,
		CriticalMass:      1,
		LossProb:          0.05,
		CPUService:        8 * time.Millisecond,
		QueueCap:          6,
		MarginHops:        1,
	}
}

// RunFigure5 sweeps heartbeat period and sensing radius, measuring the
// maximum trackable speed in the worst case (takeover-only recovery) and
// optionally the relinquish reference. The sweep points fan across
// Parallelism() workers; each point's speed scan runs inline on its
// worker, so the point list is identical to the serial sweep.
func RunFigure5(cfg Figure5Config) ([]Figure5Point, error) {
	return runFigure5NoDefaults(cfg.withDefaults())
}

// runFigure5NoDefaults executes the sweep exactly as configured. The
// heartbeat guard lives here: withDefaults backfills an empty sweep, but
// the relinquish branch indexes into Heartbeats, so a caller reaching this
// with an empty slice must get an error, not a panic.
func runFigure5NoDefaults(cfg Figure5Config) ([]Figure5Point, error) {
	if len(cfg.Heartbeats) == 0 {
		return nil, fmt.Errorf("eval: RunFigure5: no heartbeat periods to sweep (Figure5Config.Heartbeats is empty)")
	}
	type job struct {
		hb, radius float64
		mode       string
	}
	var jobs []job
	for _, radius := range cfg.Radii {
		for _, hb := range cfg.Heartbeats {
			jobs = append(jobs, job{hb: hb, radius: radius, mode: "worst-case"})
		}
		if cfg.IncludeRelinquish {
			// The relinquish line is independent of the heartbeat period;
			// measure it once per radius at the middle heartbeat.
			mid := cfg.Heartbeats[len(cfg.Heartbeats)/2]
			jobs = append(jobs, job{hb: mid, radius: radius, mode: "relinquish"})
		}
	}
	return runpar.Map(sweepContext("fig5", "points"), Parallelism(), len(jobs),
		func(ctx context.Context, i int) (Figure5Point, error) {
			j := jobs[i]
			sc := figure5Scenario(j.hb, j.radius, j.mode == "worst-case")
			speed, err := maxTrackableSpeed(ctx, sc, cfg.Seeds, 1)
			if err != nil {
				return Figure5Point{}, err
			}
			return Figure5Point{
				HeartbeatSec:  j.hb,
				SensingRadius: j.radius,
				Mode:          j.mode,
				MaxSpeedHops:  speed,
			}, nil
		})
}

// RenderFigure5 prints the curves as a table.
func RenderFigure5(points []Figure5Point) string {
	var b strings.Builder
	b.WriteString("Figure 5: effect of timers on maximum trackable speed (hops/s)\n")
	fmt.Fprintf(&b, "%12s %14s %12s %14s\n", "heartbeat(s)", "sense radius", "mode", "max speed")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.3f %14.1f %12s %14.2f\n",
			p.HeartbeatSec, p.SensingRadius, p.Mode, p.MaxSpeedHops)
	}
	return b.String()
}

// --- Figure 6: effect of the CR:SR ratio on maximum trackable speed ---

// Figure6Point is one point of the Figure 6 curves.
type Figure6Point struct {
	Ratio         float64 // CR : SR
	SensingRadius float64
	MaxSpeedHops  float64
}

// Figure6Config bounds the sweep.
type Figure6Config struct {
	// Ratios to sweep. Default {0.75, 1, 1.5, 2, 3}.
	Ratios []float64
	// Radii to sweep. Default {1, 2, 3}.
	Radii []float64
	// Seeds per point. Default {1, 2, 3}.
	Seeds []int64
}

func (c Figure6Config) withDefaults() Figure6Config {
	if len(c.Ratios) == 0 {
		c.Ratios = []float64{0.75, 1, 1.5, 2, 3}
	}
	if len(c.Radii) == 0 {
		c.Radii = []float64{1, 2, 3}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	return c
}

// RunFigure6 sweeps the communication-to-sensing radius ratio with the
// leadership-relinquish optimization enabled (as in the paper). The
// architecture is expected to break down (speed 0) when CR:SR < 1, since
// nodes outside the leader's radio range sense the event and form
// spurious groups. Sweep points fan across Parallelism() workers, like
// RunFigure5.
func RunFigure6(cfg Figure6Config) ([]Figure6Point, error) {
	cfg = cfg.withDefaults()
	type job struct{ radius, ratio float64 }
	var jobs []job
	for _, radius := range cfg.Radii {
		for _, ratio := range cfg.Ratios {
			jobs = append(jobs, job{radius: radius, ratio: ratio})
		}
	}
	return runpar.Map(sweepContext("fig6", "points"), Parallelism(), len(jobs),
		func(ctx context.Context, i int) (Figure6Point, error) {
			j := jobs[i]
			speed, err := maxTrackableSpeed(ctx, figure6Scenario(j.radius, j.ratio), cfg.Seeds, 1)
			if err != nil {
				return Figure6Point{}, err
			}
			return Figure6Point{
				Ratio:         j.ratio,
				SensingRadius: j.radius,
				MaxSpeedHops:  speed,
			}, nil
		})
}

func figure6Scenario(radius, ratio float64) Scenario {
	rows := int(2*radius) + 1
	return Scenario{
		Cols: 24, Rows: rows,
		CommRadius:    radius * ratio,
		SensingRadius: radius,
		Heartbeat:     500 * time.Millisecond,
		HopsPast:      1,
		ReportEvery:   5 * time.Second,
		Freshness:     2 * time.Second,
		CriticalMass:  1,
		LossProb:      0.05,
		MarginHops:    1,
	}
}

// RenderFigure6 prints the curves as a table.
func RenderFigure6(points []Figure6Point) string {
	var b strings.Builder
	b.WriteString("Figure 6: effect of sensory radius on maximum trackable speed (hops/s)\n")
	fmt.Fprintf(&b, "%10s %14s %14s\n", "CR:SR", "sense radius", "max speed")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.2f %14.1f %14.2f\n", p.Ratio, p.SensingRadius, p.MaxSpeedHops)
	}
	return b.String()
}
