package eval

import (
	"fmt"
	"strings"
	"time"
)

// --- Figure 5: effect of timers on maximum trackable speed ---

// Figure5Point is one point of the Figure 5 curves.
type Figure5Point struct {
	HeartbeatSec  float64
	SensingRadius float64
	// Mode is "worst-case" (leader failure, takeover-only recovery) or
	// "relinquish" (explicit handoff).
	Mode         string
	MaxSpeedHops float64
}

// Figure5Config bounds the sweep so callers can trade fidelity for time.
type Figure5Config struct {
	// Heartbeats to sweep (seconds).
	// Default {0.03125, 0.0625, 0.125, 0.25, 0.5, 1, 2, 4}.
	Heartbeats []float64
	// Radii to sweep (grid units). Default {1, 2}.
	Radii []float64
	// Seeds per point (majority vote). Default {1, 2}.
	Seeds []int64
	// IncludeRelinquish adds the flat "relinquish" reference line.
	IncludeRelinquish bool
}

func (c Figure5Config) withDefaults() Figure5Config {
	if len(c.Heartbeats) == 0 {
		c.Heartbeats = []float64{0.03125, 0.0625, 0.125, 0.25, 0.5, 1, 2, 4}
	}
	if len(c.Radii) == 0 {
		c.Radii = []float64{1, 2}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2}
	}
	return c
}

// figure5Scenario is the Section 6.2 stress setup: communication radius 6
// grids, variable sensing radius, constrained CPUs (the paper identified
// CPU processing, not bandwidth, as the breakdown resource at small
// heartbeat periods).
func figure5Scenario(hbSec, radius float64, worstCase bool) Scenario {
	rows := int(2*radius) + 1
	return Scenario{
		Cols: 24, Rows: rows,
		CommRadius:        6,
		SensingRadius:     radius,
		Heartbeat:         time.Duration(hbSec * float64(time.Second)),
		HopsPast:          1,
		DisableRelinquish: worstCase,
		ReportEvery:       5 * time.Second,
		Freshness:         2 * time.Second,
		CriticalMass:      1,
		LossProb:          0.05,
		CPUService:        8 * time.Millisecond,
		QueueCap:          6,
		MarginHops:        1,
	}
}

// RunFigure5 sweeps heartbeat period and sensing radius, measuring the
// maximum trackable speed in the worst case (takeover-only recovery) and
// optionally the relinquish reference.
func RunFigure5(cfg Figure5Config) ([]Figure5Point, error) {
	cfg = cfg.withDefaults()
	var points []Figure5Point
	for _, radius := range cfg.Radii {
		for _, hb := range cfg.Heartbeats {
			speed, err := MaxTrackableSpeed(figure5Scenario(hb, radius, true), cfg.Seeds)
			if err != nil {
				return nil, err
			}
			points = append(points, Figure5Point{
				HeartbeatSec:  hb,
				SensingRadius: radius,
				Mode:          "worst-case",
				MaxSpeedHops:  speed,
			})
		}
		if cfg.IncludeRelinquish {
			// The relinquish line is independent of the heartbeat period;
			// measure it once per radius at the middle heartbeat.
			mid := cfg.Heartbeats[len(cfg.Heartbeats)/2]
			speed, err := MaxTrackableSpeed(figure5Scenario(mid, radius, false), cfg.Seeds)
			if err != nil {
				return nil, err
			}
			points = append(points, Figure5Point{
				HeartbeatSec:  mid,
				SensingRadius: radius,
				Mode:          "relinquish",
				MaxSpeedHops:  speed,
			})
		}
	}
	return points, nil
}

// RenderFigure5 prints the curves as a table.
func RenderFigure5(points []Figure5Point) string {
	var b strings.Builder
	b.WriteString("Figure 5: effect of timers on maximum trackable speed (hops/s)\n")
	fmt.Fprintf(&b, "%12s %14s %12s %14s\n", "heartbeat(s)", "sense radius", "mode", "max speed")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.3f %14.1f %12s %14.2f\n",
			p.HeartbeatSec, p.SensingRadius, p.Mode, p.MaxSpeedHops)
	}
	return b.String()
}

// --- Figure 6: effect of the CR:SR ratio on maximum trackable speed ---

// Figure6Point is one point of the Figure 6 curves.
type Figure6Point struct {
	Ratio         float64 // CR : SR
	SensingRadius float64
	MaxSpeedHops  float64
}

// Figure6Config bounds the sweep.
type Figure6Config struct {
	// Ratios to sweep. Default {0.75, 1, 1.5, 2, 3}.
	Ratios []float64
	// Radii to sweep. Default {1, 2, 3}.
	Radii []float64
	// Seeds per point. Default {1, 2, 3}.
	Seeds []int64
}

func (c Figure6Config) withDefaults() Figure6Config {
	if len(c.Ratios) == 0 {
		c.Ratios = []float64{0.75, 1, 1.5, 2, 3}
	}
	if len(c.Radii) == 0 {
		c.Radii = []float64{1, 2, 3}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	return c
}

// RunFigure6 sweeps the communication-to-sensing radius ratio with the
// leadership-relinquish optimization enabled (as in the paper). The
// architecture is expected to break down (speed 0) when CR:SR < 1, since
// nodes outside the leader's radio range sense the event and form
// spurious groups.
func RunFigure6(cfg Figure6Config) ([]Figure6Point, error) {
	cfg = cfg.withDefaults()
	var points []Figure6Point
	for _, radius := range cfg.Radii {
		for _, ratio := range cfg.Ratios {
			sc := figure6Scenario(radius, ratio)
			speed, err := MaxTrackableSpeed(sc, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			points = append(points, Figure6Point{
				Ratio:         ratio,
				SensingRadius: radius,
				MaxSpeedHops:  speed,
			})
		}
	}
	return points, nil
}

func figure6Scenario(radius, ratio float64) Scenario {
	rows := int(2*radius) + 1
	return Scenario{
		Cols: 24, Rows: rows,
		CommRadius:    radius * ratio,
		SensingRadius: radius,
		Heartbeat:     500 * time.Millisecond,
		HopsPast:      1,
		ReportEvery:   5 * time.Second,
		Freshness:     2 * time.Second,
		CriticalMass:  1,
		LossProb:      0.05,
		MarginHops:    1,
	}
}

// RenderFigure6 prints the curves as a table.
func RenderFigure6(points []Figure6Point) string {
	var b strings.Builder
	b.WriteString("Figure 6: effect of sensory radius on maximum trackable speed (hops/s)\n")
	fmt.Fprintf(&b, "%10s %14s %14s\n", "CR:SR", "sense radius", "max speed")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.2f %14.1f %14.2f\n", p.Ratio, p.SensingRadius, p.MaxSpeedHops)
	}
	return b.String()
}
