package eval

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// parallelism holds the configured sweep width; 0 means "one worker per
// CPU" (runtime.GOMAXPROCS). It is atomic so benchmarks and the etsim
// -parallel flag can flip it while sweeps from other goroutines observe a
// consistent value.
var parallelism atomic.Int32

// SetParallelism bounds how many simulation runs the sweep harnesses
// (RunFigure4/5/6, RunTable1, MaxTrackableSpeed) execute concurrently.
// n == 0 restores the default of one worker per CPU; n == 1 forces the
// serial path. Negative values are rejected — a negative width is always
// a caller bug (a bad -parallel flag), and silently treating it as "use
// every CPU" misconfigures the pool the caller meant to bound. Every run
// is seeded and owns its scheduler, so results are identical at any
// setting — only wall-clock time changes.
func SetParallelism(n int) error {
	if n < 0 {
		return fmt.Errorf("eval: parallelism must be >= 0 (got %d); 0 means one worker per CPU", n)
	}
	parallelism.Store(int32(n))
	return nil
}

// Parallelism returns the effective sweep width: the value configured via
// SetParallelism, or GOMAXPROCS when unset.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
