package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"envirotrack"
	"envirotrack/internal/eval/runpar"
)

// CompareBackends is the backend pair the comparative harness runs:
// the paper's leader protocol against the passive-traces protocol.
var CompareBackends = []string{envirotrack.BackendLeader, envirotrack.BackendPassive}

// BackendMetrics is one backend's side of a comparison cell: the same
// seeded scenario and chaos schedule, measured on the axes where the two
// protocols trade off — tracking accuracy, report continuity, and radio
// cost.
type BackendMetrics struct {
	Backend   string `json:"backend"`
	Coherent  bool   `json:"coherent"`
	TrackedOK bool   `json:"tracked_ok"`
	Labels    int    `json:"labels"`
	Reports   int    `json:"reports"`
	// MeanErr and MaxErr are the tracking error (grid hops) between the
	// target's true trajectory and the reported positions.
	MeanErr float64 `json:"mean_err"`
	MaxErr  float64 `json:"max_err"`
	// MeanGap and MaxGap are the intervals between successive pursuer
	// reports; Gaps counts intervals over twice the report period (a
	// report latency the pursuer would notice).
	MeanGap time.Duration `json:"mean_gap"`
	MaxGap  time.Duration `json:"max_gap"`
	Gaps    int           `json:"gaps"`
	// FramesPerSec is total radio transmissions per target-second.
	FramesPerSec float64 `json:"frames_per_sec"`
	// Handovers counts leadership/estimator moves (takeovers +
	// relinquishes); Violations counts proven invariant breaches under
	// the backend's own rule set.
	Handovers  int `json:"handovers"`
	Violations int `json:"violations"`
}

// ComparePoint is one (case, seed) cell of the comparative matrix, with
// every backend's metrics side by side (ordered as CompareBackends).
type ComparePoint struct {
	Case     string           `json:"case"`
	Seed     int64            `json:"seed"`
	Backends []BackendMetrics `json:"backends"`
}

// CompareSummary aggregates one backend's column of the matrix.
type CompareSummary struct {
	Backend      string  `json:"backend"`
	Cells        int     `json:"cells"`
	CoherentPct  float64 `json:"coherent_pct"`
	TrackedPct   float64 `json:"tracked_pct"`
	MeanErr      float64 `json:"mean_err"`
	MeanGapSec   float64 `json:"mean_gap_sec"`
	Gaps         int     `json:"gaps"`
	FramesPerSec float64 `json:"frames_per_sec"`
	Handovers    int     `json:"handovers"`
	Violations   int     `json:"violations"`
}

// RunComparative executes the chaos-suite matrix (ChaosCases x seeds
// 1..trials) once per backend, fanning every (case, seed, backend) cell
// across Parallelism() workers, with each backend checked against its
// own invariant rule set. Cells come back zipped per (case, seed) in
// matrix order.
func RunComparative(trials int) ([]ComparePoint, error) {
	if trials <= 0 {
		trials = 2
	}
	type cell struct {
		c       ChaosCase
		seed    int64
		backend string
	}
	var cells []cell
	for _, c := range ChaosCases {
		for s := int64(1); s <= int64(trials); s++ {
			for _, be := range CompareBackends {
				cells = append(cells, cell{c: c, seed: s, backend: be})
			}
		}
	}
	metrics, err := runpar.Map(sweepContext("compare", "runs"), Parallelism(), len(cells),
		func(_ context.Context, i int) (BackendMetrics, error) {
			cl := cells[i]
			sched, err := envirotrack.ParseChaosSchedule(cl.c.Spec)
			if err != nil {
				return BackendMetrics{}, fmt.Errorf("eval: compare case %q: %w", cl.c.Name, err)
			}
			sc := chaosBase(cl.seed)
			sc.Chaos = sched
			sc.Backend = cl.backend
			sc.Run = int64(i + 1) // unique bus tag: cells reuse seeds
			res, err := Run(sc)
			if err != nil {
				return BackendMetrics{}, fmt.Errorf("eval: compare case %q seed %d backend %s: %w",
					cl.c.Name, cl.seed, cl.backend, err)
			}
			return backendMetrics(cl.backend, res), nil
		})
	if err != nil {
		return nil, err
	}
	var points []ComparePoint
	per := len(CompareBackends)
	for i := 0; i < len(cells); i += per {
		points = append(points, ComparePoint{
			Case:     cells[i].c.Name,
			Seed:     cells[i].seed,
			Backends: metrics[i : i+per],
		})
	}
	return points, nil
}

// backendMetrics distills one run into its comparison column.
func backendMetrics(backend string, res RunResult) BackendMetrics {
	m := BackendMetrics{
		Backend:    backend,
		Coherent:   res.Coherent(),
		TrackedOK:  res.TrackedOK,
		Labels:     res.Labels,
		Reports:    len(res.Reports),
		MeanErr:    res.Track.MeanError(),
		MaxErr:     res.Track.MaxError(),
		Handovers:  res.Handover.Takeovers + res.Handover.Relinquish,
		Violations: len(res.Violations),
	}
	if res.Duration > 0 {
		m.FramesPerSec = float64(res.FramesSent) / res.Duration.Seconds()
	}
	noticeable := 2 * res.Scenario.ReportEvery
	var total time.Duration
	for i := 1; i < len(res.Reports); i++ {
		gap := res.Reports[i].At - res.Reports[i-1].At
		total += gap
		if gap > m.MaxGap {
			m.MaxGap = gap
		}
		if gap > noticeable {
			m.Gaps++
		}
	}
	if n := len(res.Reports) - 1; n > 0 {
		m.MeanGap = total / time.Duration(n)
	}
	return m
}

// SummarizeComparison folds the matrix into one row per backend.
func SummarizeComparison(points []ComparePoint) []CompareSummary {
	byBackend := make(map[string]*CompareSummary)
	var order []string
	var coherent, tracked map[string]int
	coherent, tracked = make(map[string]int), make(map[string]int)
	for _, p := range points {
		for _, m := range p.Backends {
			s, ok := byBackend[m.Backend]
			if !ok {
				s = &CompareSummary{Backend: m.Backend}
				byBackend[m.Backend] = s
				order = append(order, m.Backend)
			}
			s.Cells++
			if m.Coherent {
				coherent[m.Backend]++
			}
			if m.TrackedOK {
				tracked[m.Backend]++
			}
			s.MeanErr += m.MeanErr
			s.MeanGapSec += m.MeanGap.Seconds()
			s.Gaps += m.Gaps
			s.FramesPerSec += m.FramesPerSec
			s.Handovers += m.Handovers
			s.Violations += m.Violations
		}
	}
	sort.Strings(order)
	out := make([]CompareSummary, 0, len(order))
	for _, be := range order {
		s := byBackend[be]
		if s.Cells > 0 {
			n := float64(s.Cells)
			s.CoherentPct = 100 * float64(coherent[be]) / n
			s.TrackedPct = 100 * float64(tracked[be]) / n
			s.MeanErr /= n
			s.MeanGapSec /= n
			s.FramesPerSec /= n
		}
		out = append(out, *s)
	}
	return out
}

// RenderComparative prints the matrix cell by cell, then the per-backend
// summary rows.
func RenderComparative(points []ComparePoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Comparative evaluation: leader vs passive-traces tracking backends")
	fmt.Fprintf(&b, "%-16s %5s %-8s %8s %8s %8s %8s %9s %5s %10s %5s\n",
		"case", "seed", "backend", "tracked", "reports", "mean_err", "max_gap", "frames/s", "hand", "violations", "gaps")
	for _, p := range points {
		for _, m := range p.Backends {
			fmt.Fprintf(&b, "%-16s %5d %-8s %8t %8d %8.2f %8.1f %9.1f %5d %10d %5d\n",
				p.Case, p.Seed, m.Backend, m.TrackedOK, m.Reports, m.MeanErr,
				m.MaxGap.Seconds(), m.FramesPerSec, m.Handovers, m.Violations, m.Gaps)
		}
	}
	fmt.Fprintln(&b, "\nper-backend summary:")
	fmt.Fprintf(&b, "%-8s %6s %9s %8s %8s %9s %9s %5s %10s %5s\n",
		"backend", "cells", "coherent%", "tracked%", "mean_err", "mean_gap", "frames/s", "hand", "violations", "gaps")
	for _, s := range SummarizeComparison(points) {
		fmt.Fprintf(&b, "%-8s %6d %9.0f %8.0f %8.2f %8.1fs %9.1f %5d %10d %5d\n",
			s.Backend, s.Cells, s.CoherentPct, s.TrackedPct, s.MeanErr,
			s.MeanGapSec, s.FramesPerSec, s.Handovers, s.Violations, s.Gaps)
	}
	return b.String()
}
