//go:build chaosmut

package eval

import "testing"

const protocolMutated = true

// TestMutationTripsDualLeader is the checker's self-test: built with
// -tags chaosmut, the group manager's same-label yield rule is disabled
// (mutationSuppressYield in internal/group), so concurrent leaders that
// would normally merge within a couple of heartbeats persist instead.
// The chaos suite must prove at least one dual-leader violation — if it
// cannot see this seeded bug, the invariant checker is vacuous.
func TestMutationTripsDualLeader(t *testing.T) {
	points, err := RunChaosSuite(2)
	if err != nil {
		t.Fatal(err)
	}
	dual := 0
	for _, p := range points {
		for _, v := range p.Violations {
			if v.Invariant == "dual-leader" {
				dual++
				t.Logf("case %q seed %d: %s at %v: %s", p.Case, p.Seed, v.Invariant, v.At, v.Detail)
			}
		}
	}
	if dual == 0 {
		t.Fatal("yield-suppressed build produced no dual-leader violations: the checker cannot detect its target bug")
	}
}
