//go:build shardmut

package eval

import (
	"bytes"
	"testing"
	"time"

	"envirotrack"
)

const shardMutated = true

// TestShardMutationTripsDifferentialBattery is the sharding battery's
// self-test: built with -tags shardmut, cross-shard radio deliveries
// land one nanosecond early (shardMutSkew in internal/radio), violating
// the conservative-lookahead bound. The differential suite must see the
// sharded trace diverge from serial — if shaving the lookahead by a
// single tick is invisible to it, the byte-identity battery is vacuous.
func TestShardMutationTripsDifferentialBattery(t *testing.T) {
	sc := Scenario{Seed: 7}
	serialRes, serialTrace := collectShardedRun(t, sc, 1)
	shardedRes, shardedTrace := collectShardedRun(t, sc, 4)
	if len(serialTrace) == 0 || len(shardedTrace) == 0 {
		t.Fatal("mutation runs emitted no events")
	}
	if bytes.Equal(shardedTrace, serialTrace) {
		t.Error("mutated sharded trace is byte-identical to serial: the differential battery cannot detect a one-tick lookahead violation")
	}
	_ = serialRes
	_ = shardedRes
}

// TestShardMutationTripsLookaheadCounter proves the medium's invariant
// counter sees the same seeded bug: boundary frames delivered under the
// skew land closer to the sending shard's horizon than one packet time,
// so LookaheadViolations must go positive on a sharded run with
// cross-boundary traffic (and the sharded run must report boundary
// frames at all, or the check is vacuous).
func TestShardMutationTripsLookaheadCounter(t *testing.T) {
	net, err := envirotrack.New(
		envirotrack.WithGrid(10, 10),
		envirotrack.WithSeed(3),
		envirotrack.WithShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Motes 44 (4,4) and 45 (5,4) straddle the 2x2 shard split of the
	// 10x10 field, one hop apart: every frame between them is boundary
	// traffic.
	if err := net.AddCrossTraffic(44, 45, 100*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if bf := net.BoundaryFrames(); bf == 0 {
		t.Fatal("no boundary frames crossed shards; the violation check is vacuous")
	}
	if v := net.LookaheadViolations(); v == 0 {
		t.Error("skewed build produced no lookahead violations: the counter cannot detect its target bug")
	}
}

// TestShardMutationHardFailsParallelRun proves the free-running parallel
// engine refuses to deliver a result built on a broken lookahead: under
// the shardmut skew, boundary deliveries land before the window barrier,
// and Scenario.Run must surface that as an error rather than return
// statistics from a run whose conservative-execution premise was
// violated.
func TestShardMutationHardFailsParallelRun(t *testing.T) {
	_, err := Run(Scenario{Seed: 7, ParallelShards: 4})
	if err == nil {
		t.Fatal("parallel run with skewed boundary deliveries returned no error: lookahead violations must hard-fail the run")
	}
}
