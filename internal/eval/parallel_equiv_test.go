package eval

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"envirotrack/internal/obs"
)

// collectParallelRun executes one scenario on the free-running parallel
// engine with k shard goroutines and returns its result plus the JSONL
// event stream.
func collectParallelRun(t *testing.T, sc Scenario, k int) (RunResult, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	SetEventSink(sink)
	defer SetEventSink(nil)
	sc.ParallelShards = k
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestParallelRunDeterministicRerun pins the parallel engine's
// reproducibility contract: the free-running executor is not
// byte-identical to serial, but for a fixed (seed, shard count) it is a
// deterministic function — rerunning must reproduce the result deeply
// and the JSONL event stream byte-for-byte. Everything order-dependent
// in the engine (per-shard RNG streams, barrier-merged observability
// lanes, canonical ledger sort) exists to make this hold.
func TestParallelRunDeterministicRerun(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build hard-fails parallel runs by design")
	}
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"nominal", Scenario{Seed: 7, CheckInvariants: true}},
		{"lossy", Scenario{Seed: 11, LossProb: 0.2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res1, trace1 := collectParallelRun(t, tc.sc, 4)
			res2, trace2 := collectParallelRun(t, tc.sc, 4)
			if len(trace1) == 0 {
				t.Fatal("parallel run emitted no events")
			}
			if !reflect.DeepEqual(res1, res2) {
				t.Errorf("parallel reruns diverge:\nfirst  = %+v\nsecond = %+v", res1, res2)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Errorf("parallel rerun JSONL traces diverge (%d vs %d bytes)", len(trace1), len(trace2))
			}
			if len(res1.Reports) == 0 {
				t.Error("parallel run produced no track reports")
			}
			if len(res1.Violations) != 0 {
				t.Errorf("parallel run violated invariants: %+v", res1.Violations)
			}
		})
	}
}

// TestParallelWorkerPathMatchesInline pins that the executor's two
// window-execution strategies — shard worker goroutines (GOMAXPROCS > 1)
// and the single-CPU inline degrade — are byte-identical: within a
// window the shards are independent, so the interleaving must not
// matter. Forcing GOMAXPROCS to 2 and then 1 exercises both paths on
// any host, including the single-core machines where every other test
// in this file takes the inline path.
func TestParallelWorkerPathMatchesInline(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build hard-fails parallel runs by design")
	}
	sc := Scenario{Seed: 7, CheckInvariants: true}
	prev := runtime.GOMAXPROCS(2)
	resWorkers, traceWorkers := collectParallelRun(t, sc, 4)
	runtime.GOMAXPROCS(1)
	resInline, traceInline := collectParallelRun(t, sc, 4)
	runtime.GOMAXPROCS(prev)
	if len(traceWorkers) == 0 {
		t.Fatal("parallel run emitted no events")
	}
	if !reflect.DeepEqual(resWorkers, resInline) {
		t.Errorf("worker and inline window execution diverge:\nworkers = %+v\ninline  = %+v", resWorkers, resInline)
	}
	if !bytes.Equal(traceWorkers, traceInline) {
		t.Errorf("worker and inline JSONL traces diverge (%d vs %d bytes)", len(traceWorkers), len(traceInline))
	}
}

// TestParallelRunBasicHealth asserts a parallel run actually tracks: the
// 4-shard corridor run must produce reports, stay coherent enough to
// cover the target, and exchange boundary frames (otherwise the engine
// silently degenerated into disconnected islands and every cross-shard
// check in this file is vacuous).
func TestParallelRunBasicHealth(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build hard-fails parallel runs by design")
	}
	res, _ := collectParallelRun(t, Scenario{Seed: 3}, 4)
	if len(res.Reports) == 0 {
		t.Error("no track reports reached the pursuer")
	}
	if !res.TrackedOK {
		t.Error("target not covered at end of run")
	}
}

// TestParallelEquivalenceSmoke is the always-on slice of the statistical
// battery: a small ensemble at 2 shards must pass every KS comparison.
func TestParallelEquivalenceSmoke(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build hard-fails parallel runs by design")
	}
	rep, err := RunEquivalence(Scenario{}, equivSeeds(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Errorf("equivalence battery failed:\n%s", rep)
	}
	for _, m := range rep.Metrics {
		if m.Name == "reports" && m.SerialMean == 0 {
			t.Error("serial ensemble produced no reports; the battery is vacuous")
		}
	}
}

// TestParallelEquivalenceBattery is the full statistical-equivalence
// battery: 20-seed ensembles, serial vs parallel at 2, 4, and 8 shards,
// across a nominal and a lossy scenario, with the invariant checker
// attached — KS agreement on every headline metric (report count and
// cadence, mean tracking error, handovers, labels, heartbeat loss) plus
// zero proven invariant violations on either engine.
func TestParallelEquivalenceBattery(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build hard-fails parallel runs by design")
	}
	if testing.Short() {
		t.Skip("multi-shard ensembles are slow")
	}
	scenarios := []struct {
		name string
		sc   Scenario
	}{
		{"nominal", Scenario{CheckInvariants: true}},
		{"lossy", Scenario{LossProb: 0.2}},
	}
	for _, tc := range scenarios {
		for _, shards := range []int{2, 4, 8} {
			t.Run(tc.name, func(t *testing.T) {
				rep, err := RunEquivalence(tc.sc, equivSeeds(20), shards)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Pass() {
					t.Errorf("shards=%d: equivalence battery failed:\n%s", shards, rep)
				}
			})
		}
	}
}

// TestParallelChaosSuiteInvariants runs the full 9-case chaos suite on
// the free-running parallel engine: faults may cost coherence, but every
// protocol invariant (I1-I5) must hold on every (case, seed) cell, and
// the checker must actually have consumed events.
func TestParallelChaosSuiteInvariants(t *testing.T) {
	if shardMutated {
		t.Skip("shardmut build hard-fails parallel runs by design")
	}
	if testing.Short() {
		t.Skip("chaos suite is slow")
	}
	SetParallelShards(4)
	defer SetParallelShards(0)
	var points []ChaosPoint
	withParallelism(t, 2, func() {
		var err error
		if points, err = RunChaosSuite(2); err != nil {
			t.Fatal(err)
		}
	})
	if len(points) == 0 {
		t.Fatal("chaos suite produced no points")
	}
	for _, p := range points {
		if p.CheckedEvents == 0 {
			t.Errorf("case %q seed %d: invariant checker saw no events", p.Case, p.Seed)
		}
		for _, v := range p.Violations {
			t.Errorf("case %q seed %d: %s violation at %v: %s", p.Case, p.Seed, v.Invariant, v.At, v.Detail)
		}
	}
}

// TestKSStatistic pins the KS machinery on known distributions.
func TestKSStatistic(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if d := ksStatistic(same, same); d != 0 {
		t.Errorf("identical samples: D = %v, want 0", d)
	}
	disjoint := []float64{10, 11, 12, 13, 14}
	if d := ksStatistic(same, disjoint); d != 1 {
		t.Errorf("disjoint samples: D = %v, want 1", d)
	}
	if c := ksCritical(20, 20, equivAlpha); c <= 0 || c >= 1 {
		t.Errorf("ksCritical(20, 20) = %v, want in (0, 1)", c)
	}
	// Bigger ensembles tighten the threshold.
	if ksCritical(100, 100, equivAlpha) >= ksCritical(10, 10, equivAlpha) {
		t.Error("ksCritical must shrink with sample size")
	}
}
