package eval

import (
	"context"
	"fmt"
	"strings"

	"envirotrack"
	"envirotrack/internal/eval/runpar"
)

// ChaosCase is one named fault scenario of the chaos suite: a tracking
// scenario plus a fault schedule in the textual chaos spec format.
type ChaosCase struct {
	Name string
	Spec string
}

// chaosBase is the tracking scenario every suite case perturbs: the
// default Figure 3 corridor at a slightly faster crossing (a ~60s run)
// so fault windows in the specs land mid-track.
func chaosBase(seed int64) Scenario {
	return Scenario{
		SpeedHops:       0.2,
		HopsPast:        1,
		Seed:            seed,
		CheckInvariants: true,
	}
}

// ChaosCases is the suite matrix. The fault windows are positioned
// around t=30s, when the target (0.2 hops/s from x=-1.5) crosses the
// middle of the 11-column corridor. Every case must hold all protocol
// invariants: faults may cost coherence or tracking accuracy, but a
// proven invariant violation under this matrix is a bug.
var ChaosCases = []ChaosCase{
	{Name: "baseline", Spec: ""},
	{Name: "crash-restore", Spec: "crash:node=5,at=28s,for=8s"},
	{Name: "crash-pair", Spec: "crash:node=5,at=26s,for=10s;crash:node=16,at=30s,for=10s"},
	{Name: "crash-permanent", Spec: "crash:node=4,at=20s"},
	{Name: "loss-burst", Spec: "loss:at=25s,for=10s,p=0.5"},
	{Name: "loss-ramp", Spec: "ramp:from=0,to=0.6,start=10s,end=40s"},
	{Name: "partition-heal", Spec: "partition:x=5,at=25s,for=10s"},
	{Name: "dup-storm", Spec: "dup:at=10s,for=30s,p=0.3"},
	{Name: "kitchen-sink", Spec: "crash:node=5,at=28s,for=8s;loss:at=20s,for=8s,p=0.4;dup:at=35s,for=10s,p=0.2"},
}

// ChaosPoint is one (case, seed) cell of the chaos suite.
type ChaosPoint struct {
	Case          string
	Seed          int64
	Coherent      bool
	TrackedOK     bool
	Labels        int
	HBLoss        float64
	CheckedEvents uint64
	Violations    []envirotrack.InvariantViolation
}

// RunChaosSuite executes every ChaosCases entry under trials seeds each
// (seeds 1..trials), fanning the (case, seed) grid across Parallelism()
// workers, with the invariant checker attached to every run. Results
// come back in matrix order regardless of worker count.
func RunChaosSuite(trials int) ([]ChaosPoint, error) {
	if trials <= 0 {
		trials = 2
	}
	type cell struct {
		c    ChaosCase
		seed int64
	}
	var cells []cell
	for _, c := range ChaosCases {
		for s := int64(1); s <= int64(trials); s++ {
			cells = append(cells, cell{c: c, seed: s})
		}
	}
	points, err := runpar.Map(sweepContext("chaos", "runs"), Parallelism(), len(cells),
		func(_ context.Context, i int) (ChaosPoint, error) {
			cl := cells[i]
			sched, err := envirotrack.ParseChaosSchedule(cl.c.Spec)
			if err != nil {
				return ChaosPoint{}, fmt.Errorf("eval: chaos case %q: %w", cl.c.Name, err)
			}
			sc := chaosBase(cl.seed)
			sc.Chaos = sched
			sc.Run = int64(i + 1) // unique bus tag: cells reuse seeds across cases
			res, err := Run(sc)
			if err != nil {
				return ChaosPoint{}, fmt.Errorf("eval: chaos case %q seed %d: %w", cl.c.Name, cl.seed, err)
			}
			return ChaosPoint{
				Case:          cl.c.Name,
				Seed:          cl.seed,
				Coherent:      res.Coherent(),
				TrackedOK:     res.TrackedOK,
				Labels:        res.Labels,
				HBLoss:        res.HBLoss,
				CheckedEvents: res.CheckedEvents,
				Violations:    res.Violations,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// TotalViolations sums the violations across a suite result.
func TotalViolations(points []ChaosPoint) int {
	total := 0
	for _, p := range points {
		total += len(p.Violations)
	}
	return total
}

// RenderChaos prints the suite as a per-cell table followed by any
// proven violations.
func RenderChaos(points []ChaosPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Chaos suite: tracking under injected faults (invariant-checked)")
	fmt.Fprintf(&b, "%-16s %5s %9s %8s %7s %9s %8s %11s\n",
		"case", "seed", "coherent", "tracked", "labels", "hb_loss%", "events", "violations")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s %5d %9t %8t %7d %9.1f %8d %11d\n",
			p.Case, p.Seed, p.Coherent, p.TrackedOK, p.Labels, 100*p.HBLoss,
			p.CheckedEvents, len(p.Violations))
	}
	if n := TotalViolations(points); n > 0 {
		fmt.Fprintf(&b, "%d invariant violation(s):\n", n)
		for _, p := range points {
			for _, v := range p.Violations {
				fmt.Fprintf(&b, "  case %s seed %d: [%s] at %v: %s\n",
					p.Case, p.Seed, v.Invariant, v.At, v.Detail)
			}
		}
	} else {
		fmt.Fprintln(&b, "all protocol invariants held")
	}
	return b.String()
}
