// Package arena provides run-local chunked block allocation for pooled
// simulation records. The simulator's hot-path pools (radio receptions,
// transmissions, CSMA retries, delivery batches, mote CPU tasks) recycle
// records through intrusive free lists; an Arena backs the pool *refills*,
// so the records of one run are laid out in a handful of contiguous blocks
// instead of scattered one-object heap allocations. That keeps free-list
// walks and record access cache-dense and cuts allocator pressure during a
// run's warm-up, when pools are still growing to their working size.
//
// Ownership rules: an Arena belongs to exactly one owner — one radio
// Medium, one mote — and is therefore confined to that owner's run.
// Parallel sweep workers each build their own simulation (scheduler,
// medium, motes), so each worker's arenas are private; nothing is shared
// and nothing is locked. Records allocated from an Arena are never freed
// individually: they cycle through the owner's free list and die with the
// run. Old blocks stay reachable through the records handed out, so a
// block is reclaimed by the GC only when the whole run is.
package arena

// Block growth bounds: the first refill allocates minBlock records and
// each subsequent block doubles, capping at maxBlock — small runs stay
// small, large runs amortize to one allocation per thousand records.
const (
	minBlock = 8
	maxBlock = 1024
)

// Arena is a chunked allocator for records of type T. The zero value is
// ready to use. Not safe for concurrent use; see the package comment for
// the single-owner confinement that makes that a non-issue.
type Arena[T any] struct {
	block []T
	used  int
	next  int
	total int
}

// New returns a pointer to a zero T carved from the current block,
// growing the arena by a fresh block when the current one is exhausted.
func (a *Arena[T]) New() *T {
	if a.used == len(a.block) {
		size := a.next
		if size < minBlock {
			size = minBlock
		}
		a.block = make([]T, size)
		a.used = 0
		if size < maxBlock {
			a.next = size * 2
		}
	}
	p := &a.block[a.used]
	a.used++
	a.total++
	return p
}

// Allocated returns the number of records handed out over the arena's
// lifetime (a pool-growth diagnostic, not a live count — arena records are
// never individually freed).
func (a *Arena[T]) Allocated() int { return a.total }
