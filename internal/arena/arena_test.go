package arena

import (
	"testing"
	"unsafe"
)

type rec struct {
	id   int
	next *rec
}

func unsafePtr(p *rec) unsafe.Pointer { return unsafe.Pointer(p) }
func unsafeSize() uintptr             { return unsafe.Sizeof(rec{}) }

// TestArenaDistinctStable checks that every allocation is a distinct,
// stable, zeroed record: earlier pointers stay valid and keep their values
// as later blocks are carved.
func TestArenaDistinctStable(t *testing.T) {
	var a Arena[rec]
	const n = 5000 // spans several block doublings and the maxBlock cap
	ptrs := make([]*rec, n)
	seen := make(map[*rec]bool, n)
	for i := 0; i < n; i++ {
		p := a.New()
		if p.id != 0 || p.next != nil {
			t.Fatalf("allocation %d not zeroed: %+v", i, *p)
		}
		if seen[p] {
			t.Fatalf("allocation %d aliases an earlier record", i)
		}
		seen[p] = true
		p.id = i
		ptrs[i] = p
	}
	for i, p := range ptrs {
		if p.id != i {
			t.Fatalf("record %d corrupted: got id %d", i, p.id)
		}
	}
	if got := a.Allocated(); got != n {
		t.Fatalf("Allocated() = %d, want %d", got, n)
	}
}

// TestArenaBlockGrowth checks the doubling-with-cap refill policy by
// counting contiguity runs: consecutive allocations within one block are
// adjacent in memory.
func TestArenaBlockGrowth(t *testing.T) {
	var a Arena[rec]
	prev := a.New()
	blockLens := []int{1}
	for i := 1; i < 3000; i++ {
		p := a.New()
		if uintptr(unsafePtr(p))-uintptr(unsafePtr(prev)) == unsafeSize() {
			blockLens[len(blockLens)-1]++
		} else {
			blockLens = append(blockLens, 1)
		}
		prev = p
	}
	want := []int{8, 16, 32, 64, 128, 256, 512, 1024, 960}
	if len(blockLens) != len(want) {
		t.Fatalf("block lengths %v, want %v", blockLens, want)
	}
	for i := range want {
		if blockLens[i] != want[i] {
			t.Fatalf("block %d has %d records, want %d (all: %v)", i, blockLens[i], want[i], blockLens)
		}
	}
}

func BenchmarkArenaAlloc(b *testing.B) {
	var a Arena[rec]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.New()
	}
}
