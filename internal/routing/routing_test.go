package routing

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/mote"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

type net struct {
	sched   *simtime.Scheduler
	medium  *radio.Medium
	routers map[radio.NodeID]*Router
	rng     *rand.Rand
}

func newNet(t *testing.T, commRadius float64) *net {
	t.Helper()
	sched := simtime.NewScheduler()
	var stats trace.Stats
	rng := rand.New(rand.NewSource(3))
	return &net{
		sched:   sched,
		medium:  radio.New(sched, radio.Params{CommRadius: commRadius}, rng, &stats),
		routers: make(map[radio.NodeID]*Router),
		rng:     rng,
	}
}

func (n *net) add(t *testing.T, id radio.NodeID, pos geom.Point) *Router {
	t.Helper()
	m, err := mote.New(id, pos, n.sched, n.medium, phenomena.NewField(), nil, mote.Config{}, n.rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(m, n.medium)
	n.routers[id] = r
	return r
}

// grid builds a cols x rows unit grid with ids cols*y + x.
func (n *net) grid(t *testing.T, cols, rows int) {
	t.Helper()
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			n.add(t, radio.NodeID(y*cols+x), geom.Pt(float64(x), float64(y)))
		}
	}
}

func TestMultiHopUnicastToSpecificNode(t *testing.T) {
	n := newNet(t, 1.2)
	n.grid(t, 6, 1) // a line: 0..5
	var got []any
	n.routers[5].SetDeliver(func(m Message) { got = append(got, m.Payload) })
	n.routers[0].Send(Message{Dest: geom.Pt(5, 0), DestNode: 5, Payload: "hello"})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("delivered = %v, want [hello]", got)
	}
}

func TestAnycastDeliversAtNearestNode(t *testing.T) {
	n := newNet(t, 1.5)
	n.grid(t, 5, 5)
	delivered := make(map[radio.NodeID]int)
	for id, r := range n.routers {
		id := id
		r.SetDeliver(func(Message) { delivered[id]++ })
	}
	// Coordinate (3.2, 2.1): nearest node is (3,2) = id 2*5+3 = 13.
	n.routers[0].Send(Message{Dest: geom.Pt(3.2, 2.1), DestNode: AnyNode, Payload: 1})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 1 || delivered[13] != 1 {
		t.Fatalf("delivered = %v, want only node 13", delivered)
	}
}

func TestSelfDelivery(t *testing.T) {
	n := newNet(t, 1.2)
	n.grid(t, 3, 1)
	got := 0
	n.routers[1].SetDeliver(func(Message) { got++ })
	n.routers[1].Send(Message{Dest: geom.Pt(1, 0), DestNode: 1, Payload: "self"})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("self delivery count = %d, want 1", got)
	}
}

func TestAnycastSelfWhenAlreadyNearest(t *testing.T) {
	n := newNet(t, 1.2)
	n.grid(t, 3, 1)
	got := 0
	n.routers[2].SetDeliver(func(Message) { got++ })
	n.routers[2].Send(Message{Dest: geom.Pt(2.1, 0), DestNode: AnyNode})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("anycast self delivery = %d, want 1", got)
	}
}

func TestDirectNeighborShortcut(t *testing.T) {
	// Destination node is a neighbor but geographically *farther* from the
	// message coordinate than the sender: direct send must still work.
	n := newNet(t, 2)
	n.add(t, 0, geom.Pt(0, 0))
	n.add(t, 1, geom.Pt(1.5, 0))
	got := 0
	n.routers[1].SetDeliver(func(Message) { got++ })
	// Dest coordinate equals sender's position; DestNode is node 1.
	n.routers[0].Send(Message{Dest: geom.Pt(0, 0), DestNode: 1})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("neighbor shortcut delivery = %d, want 1", got)
	}
}

func TestDeadEndDropsTowardSpecificNode(t *testing.T) {
	// Two disconnected islands: message toward a node on the other island
	// is dropped, not delivered.
	n := newNet(t, 1.2)
	n.add(t, 0, geom.Pt(0, 0))
	n.add(t, 1, geom.Pt(1, 0))
	n.add(t, 9, geom.Pt(10, 0))
	got := 0
	n.routers[9].SetDeliver(func(Message) { got++ })
	n.routers[0].Send(Message{Dest: geom.Pt(10, 0), DestNode: 9})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("message crossed a partition")
	}
	if n.routers[1].Drops == 0 && n.routers[0].Drops == 0 {
		t.Error("no drop recorded at the dead end")
	}
}

func TestTTLExhaustionDrops(t *testing.T) {
	n := newNet(t, 1.2)
	n.grid(t, 10, 1)
	got := 0
	n.routers[9].SetDeliver(func(Message) { got++ })
	n.routers[0].Send(Message{Dest: geom.Pt(9, 0), DestNode: 9, TTL: 3})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("message exceeded its TTL yet was delivered")
	}
}

func TestGreedyPathLengthIsReasonable(t *testing.T) {
	n := newNet(t, 1.5)
	n.grid(t, 8, 8)
	done := false
	n.routers[63].SetDeliver(func(Message) { done = true })
	n.routers[0].Send(Message{Dest: geom.Pt(7, 7), DestNode: 63})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("not delivered")
	}
	var totalForwards uint64
	for _, r := range n.routers {
		totalForwards += r.Forwards
	}
	// Straight-line distance ~9.9, comm radius 1.5 (diagonal steps are in
	// range): expect on the order of 7 hops, certainly <= 14.
	if totalForwards > 14 {
		t.Errorf("path used %d forwards, want <= 14", totalForwards)
	}
}

func TestUnrelatedFramesIgnored(t *testing.T) {
	n := newNet(t, 2)
	n.add(t, 0, geom.Pt(0, 0))
	m, err := mote.New(1, geom.Pt(1, 0), n.sched, n.medium, phenomena.NewField(), nil, mote.Config{}, n.rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(m, n.medium)
	got := 0
	r.SetDeliver(func(Message) { got++ })
	// A non-envelope frame must pass through untouched.
	consumed := false
	m.AddFrameHandler(func(radio.Frame) bool { consumed = true; return true })
	n.routers[0].m.Send(trace.KindCross, 1, 0, "raw")
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("router delivered a non-envelope frame")
	}
	if !consumed {
		t.Error("non-envelope frame was not passed to later handlers")
	}
}

func TestRouteDelayPositive(t *testing.T) {
	n := newNet(t, 2)
	if d := RouteDelay(n.medium, geom.Pt(0, 0), geom.Pt(10, 0), 100); d <= 0 {
		t.Errorf("RouteDelay = %v, want > 0", d)
	}
	short := RouteDelay(n.medium, geom.Pt(0, 0), geom.Pt(1, 0), 100)
	long := RouteDelay(n.medium, geom.Pt(0, 0), geom.Pt(20, 0), 100)
	if long <= short {
		t.Errorf("RouteDelay not increasing with distance: %v vs %v", short, long)
	}
}

func TestDeliveryIsAsynchronousForSelfSend(t *testing.T) {
	n := newNet(t, 1.2)
	n.grid(t, 2, 1)
	delivered := false
	n.routers[0].SetDeliver(func(Message) { delivered = true })
	n.routers[0].Send(Message{Dest: geom.Pt(0, 0), DestNode: 0})
	if delivered {
		t.Error("self delivery happened synchronously inside Send")
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Error("self delivery never happened")
	}
}

// Property-like sweep: from every node in a connected grid, an anycast to a
// random coordinate terminates at the node nearest that coordinate.
func TestAnycastAlwaysTerminatesAtNearest(t *testing.T) {
	n := newNet(t, 1.5)
	n.grid(t, 6, 6)
	deliveredAt := radio.NodeID(-1)
	for id, r := range n.routers {
		id := id
		r.SetDeliver(func(Message) { deliveredAt = id })
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		deliveredAt = -1
		src := radio.NodeID(rng.Intn(36))
		dest := geom.Pt(rng.Float64()*5, rng.Float64()*5)

		// Find expected nearest node.
		wantNearest := radio.NodeID(-1)
		bestD := 1e18
		for _, id := range n.medium.NodeIDs() {
			pos, _ := n.medium.Position(id)
			if d := pos.Dist2(dest); d < bestD {
				bestD = d
				wantNearest = id
			}
		}

		n.routers[src].Send(Message{Dest: dest, DestNode: AnyNode})
		if err := n.sched.RunUntil(n.sched.Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
		if deliveredAt != wantNearest {
			t.Fatalf("trial %d: src=%d dest=%v delivered at %d, want %d",
				trial, src, dest, deliveredAt, wantNearest)
		}
	}
}
