// Package routing implements the location-aware, multi-hop unicast layer
// the paper assumes ("we assume that network nodes and routing are
// location-aware"): greedy geographic forwarding. Each message carries a
// destination coordinate (and optionally a specific destination node); every
// hop forwards to the neighbor strictly closest to the destination. A node
// that is a local minimum — no neighbor closer than itself — is "within one
// hop of the coordinate" and delivers the message locally, which is exactly
// the anycast the directory service needs.
package routing

import (
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
)

// AnyNode addresses a message to whichever node is nearest the destination
// coordinate (geographic anycast).
const AnyNode radio.NodeID = -1

// DefaultTTL bounds the hop count of a routed message.
const DefaultTTL = 64

// Message is a routed payload.
type Message struct {
	Kind trace.Kind
	// Dest is the destination coordinate.
	Dest geom.Point
	// DestNode restricts delivery to a specific node; AnyNode delivers at
	// the node nearest Dest.
	DestNode radio.NodeID
	// TTL bounds hops; DefaultTTL if zero.
	TTL  int
	Bits int
	// Payload is the upper-layer message.
	Payload any
	// Corr, when non-zero, correlates every frame and lifecycle event
	// the message produces under one (origin, seq) span key. The router
	// emits report_sent / route_forward / route_delivered / route_dropped
	// events only for correlated messages.
	Corr radio.Corr
	// CorrLabel is the label (or context type) the correlated message
	// concerns, carried on the lifecycle events the router emits. It
	// lives here rather than in radio.Corr so the per-receiver Frame
	// copies on the broadcast fan-out path stay string-free.
	CorrLabel string
}

// envelope is the on-air representation.
type envelope struct {
	Msg  Message
	Hops int
}

// DeliverFunc receives messages that terminate at this node.
type DeliverFunc func(Message)

// Handler consumes a delivered message; it returns true when the message
// was recognized, stopping the handler chain.
type Handler func(Message) bool

// Router provides greedy geographic forwarding on one mote.
type Router struct {
	m        *mote.Mote
	medium   *radio.Medium
	handlers []Handler
	// Drops counts messages this node discarded (TTL exhausted or a
	// dead-end toward a specific node).
	Drops uint64
	// Forwards counts messages this node relayed.
	Forwards uint64
	// ldFree pools local-delivery records (intrusive list).
	ldFree *localDelivery
}

// localDelivery carries a self-addressed message through its zero-delay
// scheduler hop. Records are pooled per router.
type localDelivery struct {
	r    *Router
	msg  Message
	next *localDelivery
}

// localDeliveryFire completes a self-addressed Send. The record recycles
// before delivery, which may send (and self-deliver) further messages.
func localDeliveryFire(arg any) {
	ld := arg.(*localDelivery)
	r, msg := ld.r, ld.msg
	ld.msg = Message{}
	ld.next = r.ldFree
	r.ldFree = ld
	r.deliverLocal(msg)
}

// NewRouter attaches a router to the mote. Delivery consumers are added
// with AddHandler or SetDeliver.
func NewRouter(m *mote.Mote, medium *radio.Medium) *Router {
	r := &Router{m: m, medium: medium}
	m.AddFrameHandler(r.handleFrame)
	return r
}

// AddHandler appends a delivery handler; handlers run in registration
// order until one consumes the message.
func (r *Router) AddHandler(h Handler) {
	r.handlers = append(r.handlers, h)
}

// SetDeliver installs a catch-all delivery callback (a handler that
// consumes every message).
func (r *Router) SetDeliver(fn DeliverFunc) {
	r.AddHandler(func(m Message) bool {
		fn(m)
		return true
	})
}

// Send routes a message from this node. If this node is itself the
// destination the message is delivered locally (after a zero-delay hop
// through the scheduler to keep delivery asynchronous).
func (r *Router) Send(msg Message) {
	if msg.TTL <= 0 {
		msg.TTL = DefaultTTL
	}
	// Origination of a correlated message: the span-opening event. Chain
	// forwarders (MTP) re-enter Send at intermediate nodes with the same
	// corr; only the true origin opens the span.
	if msg.Corr.Seq != 0 && radio.NodeID(msg.Corr.Origin) == r.m.ID() {
		r.emit(obs.EvReportSent, msg.DestNode, msg, "")
	}
	env := envelope{Msg: msg}
	if r.isDestination(msg) {
		ld := r.ldFree
		if ld != nil {
			r.ldFree = ld.next
			ld.next = nil
		} else {
			ld = &localDelivery{r: r}
		}
		ld.msg = msg
		r.m.Scheduler().AfterEventOwned(0, simtime.OwnerRouting, localDeliveryFire, ld)
		return
	}
	r.forward(env)
}

// isDestination reports whether this node terminates the message.
func (r *Router) isDestination(msg Message) bool {
	if msg.DestNode != AnyNode {
		return msg.DestNode == r.m.ID()
	}
	// Anycast: terminate when no neighbor is closer to the coordinate.
	_, ok := r.nextHop(msg)
	return !ok
}

// nextHop picks the neighbor strictly closest to the destination (closer
// than this node), breaking ties by id.
func (r *Router) nextHop(msg Message) (radio.NodeID, bool) {
	self := r.m.Pos().Dist2(msg.Dest)
	best := radio.NodeID(-1)
	bestD := self
	for _, nb := range r.medium.Neighbors(r.m.ID()) {
		pos, ok := r.medium.Position(nb)
		if !ok {
			continue
		}
		d := pos.Dist2(msg.Dest)
		if d < bestD || (d == bestD && best >= 0 && nb < best) {
			if d < self {
				best, bestD = nb, d
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func (r *Router) forward(env envelope) {
	msg := env.Msg
	// A specific destination that happens to be a direct neighbor is sent
	// to directly, even if it is not geographically closer.
	if msg.DestNode != AnyNode && r.medium.InRange(r.m.ID(), msg.DestNode) {
		r.transmit(msg.DestNode, env)
		return
	}
	next, ok := r.nextHop(msg)
	if !ok {
		r.Drops++
		if msg.Corr.Seq != 0 {
			r.emit(obs.EvRouteDropped, msg.DestNode, msg, "dead_end")
		}
		return
	}
	r.transmit(next, env)
}

func (r *Router) transmit(to radio.NodeID, env envelope) {
	env.Hops++
	r.Forwards++
	kind := env.Msg.Kind
	if kind == "" {
		kind = trace.KindTransport
	}
	if env.Msg.Corr.Seq != 0 && env.Hops > 1 {
		// Relays after the first transmission; the origination hop is
		// already marked by report_sent.
		r.emit(obs.EvRouteForward, to, env.Msg, "")
	}
	r.m.SendTraced(kind, to, env.Msg.Bits, env, env.Msg.Corr)
}

func (r *Router) handleFrame(f radio.Frame) bool {
	env, ok := f.Payload.(envelope)
	if !ok {
		return false
	}
	msg := env.Msg
	if r.isDestination(msg) {
		r.deliverLocal(msg)
		return true
	}
	if env.Hops >= msg.TTL {
		r.Drops++
		if msg.Corr.Seq != 0 {
			r.emit(obs.EvRouteDropped, msg.DestNode, msg, "ttl")
		}
		return true
	}
	r.forward(env)
	return true
}

func (r *Router) deliverLocal(msg Message) {
	if msg.Corr.Seq != 0 {
		r.emit(obs.EvRouteDelivered, radio.NodeID(msg.Corr.Origin), msg, "")
	}
	for _, h := range r.handlers {
		if h(msg) {
			return
		}
	}
}

// emit publishes one routed-lifecycle event carrying the message's
// correlation key. Mote is this node; Peer is the event-specific other
// party (intended destination, next hop, or origin for deliveries).
func (r *Router) emit(t obs.EventType, peer radio.NodeID, msg Message, cause string) {
	bus := r.m.Obs()
	if !bus.Active() {
		return
	}
	kind := msg.Kind
	if kind == "" {
		kind = trace.KindTransport
	}
	bus.Emit(obs.Event{
		At: r.m.Scheduler().Now(), Type: t, Mote: int(r.m.ID()), Peer: int(peer),
		Pos: r.m.Pos(), Kind: kind, Cause: cause,
		Label: msg.CorrLabel, Origin: int(msg.Corr.Origin), Seq: uint64(msg.Corr.Seq),
	})
}

// RouteDelay estimates the time for a message to traverse the distance
// between two points given the medium parameters; used by tests and for
// coarse planning. It assumes one airtime per communication radius hop.
func RouteDelay(m *radio.Medium, from, to geom.Point, bits int) time.Duration {
	hops := int(from.Dist(to)/m.Params().CommRadius) + 1
	return time.Duration(hops) * (m.Airtime(bits) + m.Params().PropDelay)
}
