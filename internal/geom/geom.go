// Package geom provides the planar geometry primitives used throughout the
// simulator: points, vectors, segments, and grid helpers. Coordinates are in
// abstract "grid units"; one grid unit corresponds to the inter-mote spacing
// of the deployment (140 m in the paper's T-72 scenario).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D sensor field, in grid units.
type Point struct {
	X float64
	Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point {
	return Point{X: x, Y: y}
}

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point {
	return Point{X: p.X + v.DX, Y: p.Y + v.DY}
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector {
	return Vector{DX: p.X - q.X, DY: p.Y - q.Y}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as neighbor scans.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Within reports whether q lies within radius r of p (inclusive).
func (p Point) Within(q Point, r float64) bool {
	return p.Dist2(q) <= r*r
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{
		X: p.X + (q.X-p.X)*t,
		Y: p.Y + (q.Y-p.Y)*t,
	}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// Vector is a displacement in the plane.
type Vector struct {
	DX float64
	DY float64
}

// Vec is shorthand for constructing a Vector.
func Vec(dx, dy float64) Vector {
	return Vector{DX: dx, DY: dy}
}

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 {
	return math.Hypot(v.DX, v.DY)
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector {
	return Vector{DX: v.DX * k, DY: v.DY * k}
}

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vector) Unit() Vector {
	l := v.Len()
	if l == 0 {
		return Vector{}
	}
	return Vector{DX: v.DX / l, DY: v.DY / l}
}

// Add returns the component-wise sum of v and w.
func (v Vector) Add(w Vector) Vector {
	return Vector{DX: v.DX + w.DX, DY: v.DY + w.DY}
}

// Dot returns the dot product of v and w.
func (v Vector) Dot(w Vector) float64 {
	return v.DX*w.DX + v.DY*w.DY
}

// Centroid returns the arithmetic mean of the given points. It returns the
// zero Point when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{X: sx / n, Y: sy / n}
}

// Rect is an axis-aligned rectangle described by its min and max corners.
type Rect struct {
	Min Point
	Max Point
}

// Contains reports whether p lies inside r (inclusive of all edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Grid describes a rectangular deployment of motes with unit spacing: motes
// sit at integer coordinates (0,0) .. (Cols-1, Rows-1).
type Grid struct {
	Cols int
	Rows int
}

// Points enumerates all grid positions in row-major order.
func (g Grid) Points() []Point {
	pts := make([]Point, 0, g.Cols*g.Rows)
	for y := 0; y < g.Rows; y++ {
		for x := 0; x < g.Cols; x++ {
			pts = append(pts, Point{X: float64(x), Y: float64(y)})
		}
	}
	return pts
}

// Bounds returns the rectangle spanned by the grid points.
func (g Grid) Bounds() Rect {
	return Rect{
		Min: Point{},
		Max: Point{X: float64(g.Cols - 1), Y: float64(g.Rows - 1)},
	}
}

// Size returns the number of grid positions.
func (g Grid) Size() int {
	return g.Cols * g.Rows
}
