// Package aggregate implements EnviroTrack's approximate aggregate state
// (Section 3.2.3): a library of aggregation functions (average, sum, min,
// max, count, centroid / center of gravity) and the sliding-window
// bookkeeping that enforces the two QoS parameters of environmental
// tracking — the freshness horizon Le and the critical mass Ne. A read of
// an aggregate state variable succeeds only when at least Ne distinct
// sensors reported within the last Le time units.
package aggregate

import (
	"fmt"
	"math"
	"sort"
	"time"

	"envirotrack/internal/geom"
)

// Sample is one sensor contribution to an aggregate variable: a scalar
// measurement and the reporting mote's position (used by position-valued
// aggregates such as the centroid).
type Sample struct {
	MoteID int
	At     time.Duration
	Scalar float64
	Pos    geom.Point
}

// Value is an aggregation result: either a scalar or a position.
type Value struct {
	Scalar float64
	Pos    geom.Point
	IsPos  bool
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.IsPos {
		return v.Pos.String()
	}
	return fmt.Sprintf("%.4f", v.Scalar)
}

// Func is a named aggregation function over a set of samples. Apply is
// never called with an empty sample set.
type Func struct {
	Name string
	// PosInput indicates the function aggregates reporter positions rather
	// than scalar measurements (the "avg(position)" of Figure 2).
	PosInput bool
	Apply    func([]Sample) Value
}

// Builtin aggregation functions.
var (
	// Avg is the arithmetic mean of scalar measurements.
	Avg = Func{Name: "avg", Apply: func(ss []Sample) Value {
		var sum float64
		for _, s := range ss {
			sum += s.Scalar
		}
		return Value{Scalar: sum / float64(len(ss))}
	}}
	// Sum totals scalar measurements.
	Sum = Func{Name: "sum", Apply: func(ss []Sample) Value {
		var sum float64
		for _, s := range ss {
			sum += s.Scalar
		}
		return Value{Scalar: sum}
	}}
	// Min returns the smallest measurement.
	Min = Func{Name: "min", Apply: func(ss []Sample) Value {
		m := math.Inf(1)
		for _, s := range ss {
			m = math.Min(m, s.Scalar)
		}
		return Value{Scalar: m}
	}}
	// Max returns the largest measurement.
	Max = Func{Name: "max", Apply: func(ss []Sample) Value {
		m := math.Inf(-1)
		for _, s := range ss {
			m = math.Max(m, s.Scalar)
		}
		return Value{Scalar: m}
	}}
	// Count returns the number of contributing sensors.
	Count = Func{Name: "count", Apply: func(ss []Sample) Value {
		return Value{Scalar: float64(len(ss))}
	}}
	// Centroid averages reporter positions (unweighted center of gravity).
	Centroid = Func{Name: "centroid", PosInput: true, Apply: func(ss []Sample) Value {
		pts := make([]geom.Point, len(ss))
		for i, s := range ss {
			pts[i] = s.Pos
		}
		return Value{Pos: geom.Centroid(pts), IsPos: true}
	}}
	// WeightedCentroid averages reporter positions weighted by the scalar
	// measurement (e.g. magnetic intensity), improving position estimates
	// when sensors report signal strength. Zero or negative total weight
	// falls back to the unweighted centroid.
	WeightedCentroid = Func{Name: "wcentroid", PosInput: true, Apply: func(ss []Sample) Value {
		var wx, wy, wsum float64
		for _, s := range ss {
			if s.Scalar > 0 {
				wx += s.Pos.X * s.Scalar
				wy += s.Pos.Y * s.Scalar
				wsum += s.Scalar
			}
		}
		if wsum <= 0 {
			return Centroid.Apply(ss)
		}
		return Value{Pos: geom.Pt(wx/wsum, wy/wsum), IsPos: true}
	}}
)

// Registry resolves aggregation-function names from EnviroTrack
// declarations. Construct with NewRegistry.
type Registry struct {
	funcs map[string]Func
}

// NewRegistry returns a registry holding the builtin functions. Note that
// "avg" applied to the special input "position" is resolved to Centroid by
// the language layer.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]Func)}
	for _, f := range []Func{Avg, Sum, Min, Max, Count, Centroid, WeightedCentroid} {
		r.funcs[f.Name] = f
	}
	return r
}

// Register adds a custom aggregation function; the name must be unused.
func (r *Registry) Register(f Func) error {
	if f.Name == "" {
		return fmt.Errorf("aggregate: empty function name")
	}
	if f.Apply == nil {
		return fmt.Errorf("aggregate: nil Apply for %q", f.Name)
	}
	if _, ok := r.funcs[f.Name]; ok {
		return fmt.Errorf("aggregate: function %q already registered", f.Name)
	}
	r.funcs[f.Name] = f
	return nil
}

// Lookup returns the named function.
func (r *Registry) Lookup(name string) (Func, bool) {
	f, ok := r.funcs[name]
	return f, ok
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Window maintains one aggregate state variable at the group leader. It
// keeps the most recent sample from each reporting mote and evaluates the
// aggregation function over the samples that satisfy the freshness horizon,
// marking the result valid only when the critical mass is met.
type Window struct {
	fn           Func
	freshness    time.Duration
	criticalMass int
	latest       map[int]Sample // most recent sample per mote
}

// NewWindow creates a window for one aggregate variable. freshness must be
// positive; criticalMass below 1 is treated as 1.
func NewWindow(fn Func, freshness time.Duration, criticalMass int) (*Window, error) {
	if fn.Apply == nil {
		return nil, fmt.Errorf("aggregate: window needs a function")
	}
	if freshness <= 0 {
		return nil, fmt.Errorf("aggregate: freshness must be positive, got %v", freshness)
	}
	if criticalMass < 1 {
		criticalMass = 1
	}
	return &Window{
		fn:           fn,
		freshness:    freshness,
		criticalMass: criticalMass,
		latest:       make(map[int]Sample),
	}, nil
}

// Freshness returns the window's freshness horizon Le.
func (w *Window) Freshness() time.Duration { return w.freshness }

// CriticalMass returns the window's critical mass Ne.
func (w *Window) CriticalMass() int { return w.criticalMass }

// Func returns the window's aggregation function.
func (w *Window) Func() Func { return w.fn }

// Add records a sample, superseding any earlier sample from the same mote
// (stale or out-of-order samples never replace fresher ones).
func (w *Window) Add(s Sample) {
	if prev, ok := w.latest[s.MoteID]; ok && prev.At > s.At {
		return
	}
	w.latest[s.MoteID] = s
}

// fresh returns the samples within the freshness horizon at the given time,
// in deterministic (mote id) order, pruning expired entries as it goes.
func (w *Window) fresh(now time.Duration) []Sample {
	cutoff := now - w.freshness
	ids := make([]int, 0, len(w.latest))
	for id, s := range w.latest {
		if s.At < cutoff {
			delete(w.latest, id)
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Sample, 0, len(ids))
	for _, id := range ids {
		out = append(out, w.latest[id])
	}
	return out
}

// FreshCount returns the number of distinct motes with a fresh sample.
func (w *Window) FreshCount(now time.Duration) int {
	return len(w.fresh(now))
}

// Read evaluates the aggregate at the given time. The boolean result is the
// valid flag of Section 3.2.3: false (a "null" read) when fewer than Ne
// distinct sensors reported within Le.
func (w *Window) Read(now time.Duration) (Value, bool) {
	ss := w.fresh(now)
	if len(ss) < w.criticalMass {
		return Value{}, false
	}
	return w.fn.Apply(ss), true
}

// Reset discards all samples (used when leadership moves without state
// transfer).
func (w *Window) Reset() {
	w.latest = make(map[int]Sample)
}

// Merge copies the samples of another window into this one (used when a
// relinquishing leader hands its collected state to its successor).
func (w *Window) Merge(other *Window) {
	if other == nil {
		return
	}
	for _, s := range other.latest {
		w.Add(s)
	}
}
