package aggregate

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"envirotrack/internal/geom"
)

func samplesOf(vals ...float64) []Sample {
	ss := make([]Sample, len(vals))
	for i, v := range vals {
		ss[i] = Sample{MoteID: i, Scalar: v}
	}
	return ss
}

func TestBuiltinScalarFuncs(t *testing.T) {
	tests := []struct {
		name string
		fn   Func
		in   []float64
		want float64
	}{
		{name: "avg", fn: Avg, in: []float64{1, 2, 3}, want: 2},
		{name: "avg single", fn: Avg, in: []float64{5}, want: 5},
		{name: "sum", fn: Sum, in: []float64{1, 2, 3}, want: 6},
		{name: "min", fn: Min, in: []float64{3, -1, 2}, want: -1},
		{name: "max", fn: Max, in: []float64{3, -1, 2}, want: 3},
		{name: "count", fn: Count, in: []float64{9, 9, 9, 9}, want: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.fn.Apply(samplesOf(tt.in...))
			if got.IsPos {
				t.Fatalf("%s returned a position", tt.name)
			}
			if math.Abs(got.Scalar-tt.want) > 1e-9 {
				t.Errorf("%s(%v) = %v, want %v", tt.name, tt.in, got.Scalar, tt.want)
			}
		})
	}
}

func TestCentroid(t *testing.T) {
	ss := []Sample{
		{MoteID: 1, Pos: geom.Pt(0, 0)},
		{MoteID: 2, Pos: geom.Pt(2, 0)},
		{MoteID: 3, Pos: geom.Pt(1, 3)},
	}
	got := Centroid.Apply(ss)
	if !got.IsPos {
		t.Fatal("centroid should return a position")
	}
	if math.Abs(got.Pos.X-1) > 1e-9 || math.Abs(got.Pos.Y-1) > 1e-9 {
		t.Errorf("centroid = %v, want (1,1)", got.Pos)
	}
	if !Centroid.PosInput {
		t.Error("Centroid should declare PosInput")
	}
}

func TestWeightedCentroid(t *testing.T) {
	ss := []Sample{
		{MoteID: 1, Pos: geom.Pt(0, 0), Scalar: 3},
		{MoteID: 2, Pos: geom.Pt(4, 0), Scalar: 1},
	}
	got := WeightedCentroid.Apply(ss)
	if math.Abs(got.Pos.X-1) > 1e-9 || math.Abs(got.Pos.Y) > 1e-9 {
		t.Errorf("weighted centroid = %v, want (1,0)", got.Pos)
	}
}

func TestWeightedCentroidZeroWeightFallsBack(t *testing.T) {
	ss := []Sample{
		{MoteID: 1, Pos: geom.Pt(0, 0), Scalar: 0},
		{MoteID: 2, Pos: geom.Pt(4, 0), Scalar: 0},
	}
	got := WeightedCentroid.Apply(ss)
	if math.Abs(got.Pos.X-2) > 1e-9 {
		t.Errorf("zero-weight centroid = %v, want unweighted (2,0)", got.Pos)
	}
}

func TestValueString(t *testing.T) {
	if got := (Value{Scalar: 1.5}).String(); got != "1.5000" {
		t.Errorf("scalar String = %q", got)
	}
	if got := (Value{Pos: geom.Pt(1, 2), IsPos: true}).String(); got != "(1.000, 2.000)" {
		t.Errorf("position String = %q", got)
	}
}

func TestRegistryBuiltinsAndCustom(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"avg", "sum", "min", "max", "count", "centroid", "wcentroid"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("builtin %q missing", name)
		}
	}
	custom := Func{Name: "median", Apply: func(ss []Sample) Value { return Value{} }}
	if err := r.Register(custom); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(custom); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register(Func{Name: "", Apply: custom.Apply}); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.Register(Func{Name: "x"}); err == nil {
		t.Error("nil Apply should fail")
	}
	names := r.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(Func{}, time.Second, 1); err == nil {
		t.Error("expected error for missing Apply")
	}
	if _, err := NewWindow(Avg, 0, 1); err == nil {
		t.Error("expected error for zero freshness")
	}
	w, err := NewWindow(Avg, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.CriticalMass() != 1 {
		t.Errorf("critical mass below 1 should clamp to 1, got %d", w.CriticalMass())
	}
	if w.Freshness() != time.Second {
		t.Errorf("Freshness = %v", w.Freshness())
	}
	if w.Func().Name != "avg" {
		t.Errorf("Func = %v", w.Func().Name)
	}
}

func TestWindowCriticalMass(t *testing.T) {
	w, err := NewWindow(Avg, time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Read(0); ok {
		t.Error("empty window read should be invalid")
	}
	w.Add(Sample{MoteID: 1, At: 0, Scalar: 10})
	if _, ok := w.Read(0); ok {
		t.Error("read with 1 of 2 sensors should be invalid (null flag)")
	}
	w.Add(Sample{MoteID: 2, At: 0, Scalar: 20})
	v, ok := w.Read(0)
	if !ok {
		t.Fatal("read with critical mass met should be valid")
	}
	if v.Scalar != 15 {
		t.Errorf("avg = %v, want 15", v.Scalar)
	}
}

func TestWindowFreshnessExpiry(t *testing.T) {
	w, err := NewWindow(Avg, time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(Sample{MoteID: 1, At: 0, Scalar: 10})
	w.Add(Sample{MoteID: 2, At: 0, Scalar: 20})
	if _, ok := w.Read(time.Second); !ok {
		t.Error("samples exactly at the freshness boundary should still count")
	}
	if _, ok := w.Read(1100 * time.Millisecond); ok {
		t.Error("stale samples should not satisfy critical mass")
	}
	if got := w.FreshCount(1100 * time.Millisecond); got != 0 {
		t.Errorf("FreshCount after expiry = %d, want 0", got)
	}
}

func TestWindowDistinctSenders(t *testing.T) {
	w, err := NewWindow(Avg, time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Many samples from the same mote must not satisfy a critical mass of 2.
	for i := 0; i < 10; i++ {
		w.Add(Sample{MoteID: 1, At: time.Duration(i) * time.Millisecond, Scalar: 10})
	}
	if _, ok := w.Read(10 * time.Millisecond); ok {
		t.Error("one sensor must not satisfy critical mass 2, however many samples it sends")
	}
}

func TestWindowLatestSampleWins(t *testing.T) {
	w, err := NewWindow(Avg, 10*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(Sample{MoteID: 1, At: time.Second, Scalar: 10})
	w.Add(Sample{MoteID: 1, At: 2 * time.Second, Scalar: 30})
	v, ok := w.Read(2 * time.Second)
	if !ok || v.Scalar != 30 {
		t.Errorf("read = %v, %v; want latest sample 30", v, ok)
	}
	// Out-of-order older sample must not replace a newer one.
	w.Add(Sample{MoteID: 1, At: 500 * time.Millisecond, Scalar: 99})
	v, _ = w.Read(2 * time.Second)
	if v.Scalar != 30 {
		t.Errorf("out-of-order sample replaced newer one: %v", v)
	}
}

func TestWindowResetAndMerge(t *testing.T) {
	w, err := NewWindow(Avg, 10*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(Sample{MoteID: 1, At: 0, Scalar: 10})
	w.Reset()
	if _, ok := w.Read(0); ok {
		t.Error("read after Reset should be invalid")
	}

	other, err := NewWindow(Avg, 10*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	other.Add(Sample{MoteID: 2, At: time.Second, Scalar: 42})
	w.Merge(other)
	v, ok := w.Read(time.Second)
	if !ok || v.Scalar != 42 {
		t.Errorf("read after Merge = %v, %v", v, ok)
	}
	w.Merge(nil) // must not panic
}

// Property (the Section 3.2.3 guarantee): whenever Read reports valid, the
// number of distinct fresh senders is at least the critical mass, and the
// value equals the aggregation function applied to only-fresh samples.
func TestWindowQoSProperty(t *testing.T) {
	type op struct {
		MoteID uint8
		AtMs   uint16
		Val    int8
	}
	f := func(ops []op, readAtMs uint16, ne uint8) bool {
		cm := int(ne%5) + 1
		w, err := NewWindow(Sum, time.Second, cm)
		if err != nil {
			return false
		}
		for _, o := range ops {
			w.Add(Sample{MoteID: int(o.MoteID % 16), At: time.Duration(o.AtMs) * time.Millisecond, Scalar: float64(o.Val)})
		}
		now := time.Duration(readAtMs) * time.Millisecond
		v, ok := w.Read(now)

		// Recompute the expectation independently.
		latest := make(map[int]Sample)
		for _, o := range ops {
			s := Sample{MoteID: int(o.MoteID % 16), At: time.Duration(o.AtMs) * time.Millisecond, Scalar: float64(o.Val)}
			if prev, seen := latest[s.MoteID]; !seen || s.At >= prev.At {
				latest[s.MoteID] = s
			}
		}
		var want float64
		fresh := 0
		for _, s := range latest {
			if s.At >= now-time.Second {
				fresh++
				want += s.Scalar
			}
		}
		if fresh >= cm {
			return ok && math.Abs(v.Scalar-want) < 1e-9
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a valid average always lies within [min, max] of the inputs.
func TestAvgBoundedProperty(t *testing.T) {
	f := func(vals []int8) bool {
		if len(vals) == 0 {
			return true
		}
		ss := make([]Sample, len(vals))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			ss[i] = Sample{MoteID: i, Scalar: float64(v)}
			lo = math.Min(lo, float64(v))
			hi = math.Max(hi, float64(v))
		}
		got := Avg.Apply(ss).Scalar
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
