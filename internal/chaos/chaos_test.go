package chaos

import (
	"strings"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
)

func mustParse(t *testing.T, spec string) Schedule {
	t.Helper()
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", spec, err)
	}
	return s
}

func TestParseScheduleClauses(t *testing.T) {
	s := mustParse(t, "crash:node=17,at=10s,for=5s;loss:at=20s,for=10s,p=0.5;ramp:from=0.1,to=0.6,start=10s,end=40s;partition:x=5,at=15s;dup:at=5s,p=0.3")
	if len(s.Crashes) != 1 || s.Crashes[0] != (Crash{Node: 17, At: 10 * time.Second, For: 5 * time.Second}) {
		t.Errorf("crashes = %+v", s.Crashes)
	}
	if len(s.Losses) != 1 || s.Losses[0] != (LossStep{At: 20 * time.Second, For: 10 * time.Second, P: 0.5}) {
		t.Errorf("losses = %+v", s.Losses)
	}
	if len(s.Ramps) != 1 || s.Ramps[0] != (LossRamp{From: 0.1, To: 0.6, Start: 10 * time.Second, End: 40 * time.Second}) {
		t.Errorf("ramps = %+v", s.Ramps)
	}
	if len(s.Partitions) != 1 || s.Partitions[0] != (Partition{X: 5, At: 15 * time.Second}) {
		t.Errorf("partitions = %+v", s.Partitions)
	}
	if len(s.Dups) != 1 || s.Dups[0] != (Duplication{At: 5 * time.Second, P: 0.3}) {
		t.Errorf("dups = %+v", s.Dups)
	}
	if s.Empty() {
		t.Error("schedule with five faults reports Empty")
	}
	if empty := mustParse(t, ""); !empty.Empty() {
		t.Error("blank spec is not Empty")
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"boom:at=1s", "unknown fault"},
		{"crash:at=1s", "node"},
		{"crash:node=1,at=1s,node=2", "duplicate"},
		{"crash:node=1,at=1s,extra=3", "unknown field"},
		{"crash:node=x,at=1s", "node"},
		{"loss:at=1s,p=1.5", "p"},
		{"loss:at=1s,p=-0.1", "p"},
		{"loss:at=1s", "p"},
		{"ramp:from=0,to=1,start=5s,end=5s", "window"},
		{"ramp:from=0,to=2,start=1s,end=2s", "endpoints"},
		{"partition:at=1s", "x"},
		{"dup:at=-1s,p=0.5", "at"},
		{"crash", "clause"},
	}
	for _, tc := range cases {
		_, err := ParseSchedule(tc.spec)
		if err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error mentioning %q", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSchedule(%q) error %q does not mention %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestInjectorCrashCallbacks(t *testing.T) {
	sched := simtime.NewScheduler()
	var events []string
	hooks := Hooks{
		Fail:    func(n int) { events = append(events, "fail") },
		Restore: func(n int) { events = append(events, "restore") },
	}
	sc := mustParse(t, "crash:node=3,at=2s,for=3s;crash:node=4,at=10s")
	if _, err := NewInjector(sched, sc, hooks); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// node 3 fails at 2s, restores at 5s; node 4 fails permanently at 10s.
	want := []string{"fail", "restore", "fail"}
	if len(events) != len(want) {
		t.Fatalf("crash callbacks = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("crash callbacks = %v, want %v", events, want)
		}
	}
}

func TestInjectorRequiresHooks(t *testing.T) {
	sched := simtime.NewScheduler()
	if _, err := NewInjector(sched, mustParse(t, "crash:node=1,at=1s"), Hooks{}); err == nil {
		t.Error("crash schedule without Fail/Restore hooks accepted")
	}
	if _, err := NewInjector(sched, mustParse(t, "partition:x=5,at=1s"), Hooks{}); err == nil {
		t.Error("partition schedule without Position hook accepted")
	}
}

func TestInjectorLossWindows(t *testing.T) {
	sched := simtime.NewScheduler()
	sc := mustParse(t, "loss:at=10s,for=10s,p=0.5;loss:at=15s,for=2s,p=0.9")
	in, err := NewInjector(sched, sc, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		now  time.Duration
		want float64
	}{
		{5 * time.Second, 0.05},  // before any window: base passes through
		{10 * time.Second, 0.5},  // step onset is inclusive
		{16 * time.Second, 0.9},  // overlapping later clause wins
		{18 * time.Second, 0.5},  // later clause expired, first still active
		{20 * time.Second, 0.05}, // window end is exclusive
	} {
		if got := in.LossProb(tc.now, 0.05); got != tc.want {
			t.Errorf("LossProb(%v) = %v, want %v", tc.now, got, tc.want)
		}
	}
}

func TestInjectorRampInterpolates(t *testing.T) {
	sched := simtime.NewScheduler()
	in, err := NewInjector(sched, mustParse(t, "ramp:from=0.2,to=0.6,start=10s,end=20s"), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.LossProb(10*time.Second, 0); got != 0.2 {
		t.Errorf("ramp start = %v, want 0.2", got)
	}
	if got := in.LossProb(15*time.Second, 0); got < 0.399 || got > 0.401 {
		t.Errorf("ramp midpoint = %v, want 0.4", got)
	}
	if got := in.LossProb(20*time.Second, 0); got != 0 {
		t.Errorf("after ramp end = %v, want base 0", got)
	}
}

func TestInjectorPartitionSeversAcrossLine(t *testing.T) {
	sched := simtime.NewScheduler()
	pos := map[radio.NodeID]geom.Point{
		1: geom.Pt(2, 0),
		2: geom.Pt(8, 0),
		3: geom.Pt(3, 5),
	}
	hooks := Hooks{Position: func(n radio.NodeID) (geom.Point, bool) {
		p, ok := pos[n]
		return p, ok
	}}
	in, err := NewInjector(sched, mustParse(t, "partition:x=5,at=10s,for=10s"), hooks)
	if err != nil {
		t.Fatal(err)
	}
	if in.Linked(5*time.Second, 1, 2) != true {
		t.Error("link severed before partition onset")
	}
	if in.Linked(15*time.Second, 1, 2) != false {
		t.Error("cross-partition link alive during partition")
	}
	if in.Linked(15*time.Second, 1, 3) != true {
		t.Error("same-side link severed during partition")
	}
	if in.Linked(15*time.Second, 1, 99) != true {
		t.Error("link with unknown-position node severed")
	}
	if in.Linked(20*time.Second, 1, 2) != true {
		t.Error("link still severed after partition heals")
	}
}

func TestInjectorDuplicateWindows(t *testing.T) {
	sched := simtime.NewScheduler()
	in, err := NewInjector(sched, mustParse(t, "dup:at=10s,for=5s,p=0.3"), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.DuplicateProb(5 * time.Second); got != 0 {
		t.Errorf("before window: %v, want 0", got)
	}
	if got := in.DuplicateProb(12 * time.Second); got != 0.3 {
		t.Errorf("inside window: %v, want 0.3", got)
	}
	if got := in.DuplicateProb(15 * time.Second); got != 0 {
		t.Errorf("after window: %v, want 0", got)
	}
}
