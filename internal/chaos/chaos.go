// Package chaos is the deterministic fault-injection harness for the
// simulator. A declarative Schedule describes node crashes, step and ramp
// packet-loss overrides, spatial partitions, and message-duplication
// faults; an Injector replays the schedule on the simulation scheduler,
// so the same seed plus the same schedule always produces the same run.
//
// Schedules have a compact textual spec (the etsim -chaos flag):
//
//	crash:node=17,at=10s,for=5s;loss:at=20s,for=10s,p=0.5;
//	ramp:from=0,to=0.6,start=10s,end=30s;partition:x=5,at=15s,for=10s;
//	dup:at=5s,for=20s,p=0.3
//
// Clauses are ';'-separated, fields ','-separated key=value pairs.
// Durations use Go syntax (10s, 500ms); omitting for= makes a fault
// permanent from its onset. When overlapping loss clauses are active the
// later-declared clause wins.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Crash takes a node down at At and, when For > 0, restores it at At+For.
type Crash struct {
	Node int
	At   time.Duration
	For  time.Duration // 0 = never restored
}

// LossStep overrides the medium's iid loss probability with P while
// active.
type LossStep struct {
	At  time.Duration
	For time.Duration // 0 = until the end of the run
	P   float64
}

// LossRamp linearly interpolates the loss probability from From at Start
// to To at End; outside [Start, End) it does not apply.
type LossRamp struct {
	From, To   float64
	Start, End time.Duration
}

// Partition severs every radio link crossing the vertical line x = X
// while active, splitting the field into two isolated halves.
type Partition struct {
	X   float64
	At  time.Duration
	For time.Duration // 0 = until the end of the run
}

// Duplication transmits a second copy of each frame with probability P
// while active (stale-message stress: duplicated heartbeats, join
// requests, reports).
type Duplication struct {
	At  time.Duration
	For time.Duration // 0 = until the end of the run
	P   float64
}

// Schedule is a declarative fault plan. The zero value injects nothing.
type Schedule struct {
	Crashes    []Crash
	Losses     []LossStep
	Ramps      []LossRamp
	Partitions []Partition
	Dups       []Duplication
}

// Empty reports whether the schedule injects any fault at all.
func (s Schedule) Empty() bool {
	return len(s.Crashes) == 0 && len(s.Losses) == 0 && len(s.Ramps) == 0 &&
		len(s.Partitions) == 0 && len(s.Dups) == 0
}

// Validate checks field ranges; the injector refuses invalid schedules.
func (s Schedule) Validate() error {
	for _, c := range s.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("chaos: crash node %d is negative", c.Node)
		}
		if c.At < 0 || c.For < 0 {
			return fmt.Errorf("chaos: crash of node %d has negative time", c.Node)
		}
	}
	for _, l := range s.Losses {
		if l.P < 0 || l.P > 1 {
			return fmt.Errorf("chaos: loss p=%g outside [0,1]", l.P)
		}
		if l.At < 0 || l.For < 0 {
			return fmt.Errorf("chaos: loss step has negative time")
		}
	}
	for _, r := range s.Ramps {
		if r.From < 0 || r.From > 1 || r.To < 0 || r.To > 1 {
			return fmt.Errorf("chaos: ramp endpoints (%g, %g) outside [0,1]", r.From, r.To)
		}
		if r.Start < 0 || r.End <= r.Start {
			return fmt.Errorf("chaos: ramp window [%v, %v) is empty or negative", r.Start, r.End)
		}
	}
	for _, p := range s.Partitions {
		if p.At < 0 || p.For < 0 {
			return fmt.Errorf("chaos: partition has negative time")
		}
	}
	for _, d := range s.Dups {
		if d.P < 0 || d.P > 1 {
			return fmt.Errorf("chaos: dup p=%g outside [0,1]", d.P)
		}
		if d.At < 0 || d.For < 0 {
			return fmt.Errorf("chaos: dup has negative time")
		}
	}
	return nil
}

// String renders the schedule in the textual spec format; ParseSchedule
// of the result reproduces the schedule.
func (s Schedule) String() string {
	var clauses []string
	for _, c := range s.Crashes {
		cl := fmt.Sprintf("crash:node=%d,at=%s", c.Node, c.At)
		if c.For > 0 {
			cl += ",for=" + c.For.String()
		}
		clauses = append(clauses, cl)
	}
	for _, l := range s.Losses {
		cl := fmt.Sprintf("loss:at=%s", l.At)
		if l.For > 0 {
			cl += ",for=" + l.For.String()
		}
		cl += ",p=" + strconv.FormatFloat(l.P, 'g', -1, 64)
		clauses = append(clauses, cl)
	}
	for _, r := range s.Ramps {
		clauses = append(clauses, fmt.Sprintf("ramp:from=%s,to=%s,start=%s,end=%s",
			strconv.FormatFloat(r.From, 'g', -1, 64),
			strconv.FormatFloat(r.To, 'g', -1, 64), r.Start, r.End))
	}
	for _, p := range s.Partitions {
		cl := fmt.Sprintf("partition:x=%s,at=%s",
			strconv.FormatFloat(p.X, 'g', -1, 64), p.At)
		if p.For > 0 {
			cl += ",for=" + p.For.String()
		}
		clauses = append(clauses, cl)
	}
	for _, d := range s.Dups {
		cl := fmt.Sprintf("dup:at=%s", d.At)
		if d.For > 0 {
			cl += ",for=" + d.For.String()
		}
		cl += ",p=" + strconv.FormatFloat(d.P, 'g', -1, 64)
		clauses = append(clauses, cl)
	}
	return strings.Join(clauses, ";")
}

// ParseSchedule parses the textual spec format described in the package
// comment. An empty spec yields an empty schedule.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return Schedule{}, fmt.Errorf("chaos: clause %q has no kind (want kind:key=value,...)", clause)
		}
		fields, err := parseFields(rest)
		if err != nil {
			return Schedule{}, fmt.Errorf("chaos: clause %q: %w", clause, err)
		}
		switch kind {
		case "crash":
			c := Crash{
				Node: int(fields.num("node", -1)),
				At:   fields.dur("at", 0),
				For:  fields.dur("for", 0),
			}
			if err := fields.check("node", "at", "for"); err != nil {
				return Schedule{}, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			if !fields.has("node") {
				return Schedule{}, fmt.Errorf("chaos: clause %q: crash needs node=", clause)
			}
			s.Crashes = append(s.Crashes, c)
		case "loss":
			l := LossStep{
				At:  fields.dur("at", 0),
				For: fields.dur("for", 0),
				P:   fields.num("p", -1),
			}
			if err := fields.check("at", "for", "p"); err != nil {
				return Schedule{}, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			if !fields.has("p") {
				return Schedule{}, fmt.Errorf("chaos: clause %q: loss needs p=", clause)
			}
			s.Losses = append(s.Losses, l)
		case "ramp":
			r := LossRamp{
				From:  fields.num("from", 0),
				To:    fields.num("to", 0),
				Start: fields.dur("start", 0),
				End:   fields.dur("end", 0),
			}
			if err := fields.check("from", "to", "start", "end"); err != nil {
				return Schedule{}, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			if !fields.has("to") || !fields.has("end") {
				return Schedule{}, fmt.Errorf("chaos: clause %q: ramp needs to= and end=", clause)
			}
			s.Ramps = append(s.Ramps, r)
		case "partition":
			p := Partition{
				X:   fields.num("x", 0),
				At:  fields.dur("at", 0),
				For: fields.dur("for", 0),
			}
			if err := fields.check("x", "at", "for"); err != nil {
				return Schedule{}, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			if !fields.has("x") {
				return Schedule{}, fmt.Errorf("chaos: clause %q: partition needs x=", clause)
			}
			s.Partitions = append(s.Partitions, p)
		case "dup":
			d := Duplication{
				At:  fields.dur("at", 0),
				For: fields.dur("for", 0),
				P:   fields.num("p", -1),
			}
			if err := fields.check("at", "for", "p"); err != nil {
				return Schedule{}, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			if !fields.has("p") {
				return Schedule{}, fmt.Errorf("chaos: clause %q: dup needs p=", clause)
			}
			s.Dups = append(s.Dups, d)
		default:
			return Schedule{}, fmt.Errorf("chaos: unknown fault kind %q (want crash/loss/ramp/partition/dup)", kind)
		}
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// fieldSet is one parsed clause body, tracking parse errors and which
// keys were consumed so unknown keys are rejected.
type fieldSet struct {
	kv   map[string]string
	used map[string]bool
	err  error
}

func parseFields(rest string) (*fieldSet, error) {
	fs := &fieldSet{kv: map[string]string{}, used: map[string]bool{}}
	for _, pair := range strings.Split(rest, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("field %q is not key=value", pair)
		}
		if _, dup := fs.kv[k]; dup {
			return nil, fmt.Errorf("duplicate field %q", k)
		}
		fs.kv[k] = v
	}
	return fs, nil
}

func (fs *fieldSet) has(key string) bool {
	_, ok := fs.kv[key]
	return ok
}

// num parses a float field, returning def when absent.
func (fs *fieldSet) num(key string, def float64) float64 {
	v, ok := fs.kv[key]
	if !ok {
		return def
	}
	fs.used[key] = true
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && fs.err == nil {
		fs.err = fmt.Errorf("field %s=%q is not a number", key, v)
	}
	return f
}

// dur parses a duration field, returning def when absent.
func (fs *fieldSet) dur(key string, def time.Duration) time.Duration {
	v, ok := fs.kv[key]
	if !ok {
		return def
	}
	fs.used[key] = true
	d, err := time.ParseDuration(v)
	if err != nil && fs.err == nil {
		fs.err = fmt.Errorf("field %s=%q is not a duration", key, v)
	}
	return d
}

// check surfaces a deferred parse error or an unrecognized key.
func (fs *fieldSet) check(allowed ...string) error {
	if fs.err != nil {
		return fs.err
	}
	var unknown []string
	for k := range fs.kv {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown field(s) %s", strings.Join(unknown, ", "))
	}
	return nil
}
