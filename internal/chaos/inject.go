package chaos

import (
	"fmt"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
)

// Hooks connects the injector to the network under test: Fail/Restore
// crash and revive a node (the existing Mote.Fail/Restore), Position
// resolves a node's location for partition-side tests.
type Hooks struct {
	Fail     func(node int)
	Restore  func(node int)
	Position func(node radio.NodeID) (geom.Point, bool)
}

// Injector replays a Schedule on a simulation scheduler. Crash faults
// become scheduler callbacks at their onset/restore instants; loss, ramp,
// partition, and duplication faults are evaluated lazily against sim time
// through the radio.FaultInjector interface, so the injector never draws
// randomness and cannot perturb a run's RNG stream by itself.
type Injector struct {
	sc    Schedule
	hooks Hooks
}

// NewInjector validates the schedule and registers its crash/restore
// events on the scheduler. The returned injector should be attached to
// the medium with radio.Medium.SetFaultInjector when the schedule carries
// loss, ramp, partition, or duplication faults (attaching it always is
// harmless).
func NewInjector(sched *simtime.Scheduler, sc Schedule, hooks Hooks) (*Injector, error) {
	return NewInjectorRouted(func(int) *simtime.Scheduler { return sched }, sc, hooks)
}

// NewInjectorRouted is NewInjector with per-victim event routing: each
// crash/restore callback is registered on the scheduler schedFor returns
// for the victim node. A sharded network routes a victim's faults onto
// the shard owning the victim, so in a free-running parallel run the
// callback executes on the goroutine that owns the mote's state. Routing
// happens at setup time (before any event fires), so in deterministic
// mode it does not change the global (at, seq) firing order.
func NewInjectorRouted(schedFor func(node int) *simtime.Scheduler, sc Schedule, hooks Hooks) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(sc.Crashes) > 0 && (hooks.Fail == nil || hooks.Restore == nil) {
		return nil, fmt.Errorf("chaos: schedule has crash faults but no Fail/Restore hooks")
	}
	if len(sc.Partitions) > 0 && hooks.Position == nil {
		return nil, fmt.Errorf("chaos: schedule has partition faults but no Position hook")
	}
	in := &Injector{sc: sc, hooks: hooks}
	for _, c := range sc.Crashes {
		c := c
		sched := schedFor(c.Node)
		sched.AtOwned(c.At, simtime.OwnerChaos, func() { in.hooks.Fail(c.Node) })
		if c.For > 0 {
			sched.AtOwned(c.At+c.For, simtime.OwnerChaos, func() { in.hooks.Restore(c.Node) })
		}
	}
	return in, nil
}

// active reports whether a fault window [at, at+for) covers now, with
// for == 0 meaning "until the end of the run".
func active(at, dur, now time.Duration) bool {
	return now >= at && (dur <= 0 || now < at+dur)
}

// LossProb implements radio.FaultInjector: the last-declared active step
// or ramp wins; without one the base probability passes through.
func (in *Injector) LossProb(now time.Duration, base float64) float64 {
	p := base
	for _, l := range in.sc.Losses {
		if active(l.At, l.For, now) {
			p = l.P
		}
	}
	for _, r := range in.sc.Ramps {
		if now >= r.Start && now < r.End {
			frac := float64(now-r.Start) / float64(r.End-r.Start)
			p = r.From + (r.To-r.From)*frac
		}
	}
	return p
}

// Linked implements radio.FaultInjector: a link is severed while any
// active partition line runs between its endpoints. Nodes with unknown
// positions are treated as unpartitioned.
func (in *Injector) Linked(now time.Duration, src, dst radio.NodeID) bool {
	for _, part := range in.sc.Partitions {
		if !active(part.At, part.For, now) {
			continue
		}
		a, okA := in.hooks.Position(src)
		b, okB := in.hooks.Position(dst)
		if !okA || !okB {
			continue
		}
		if (a.X < part.X) != (b.X < part.X) {
			return false
		}
	}
	return true
}

// DuplicateProb implements radio.FaultInjector: the last-declared active
// duplication clause wins; zero when none is active.
func (in *Injector) DuplicateProb(now time.Duration) float64 {
	p := 0.0
	for _, d := range in.sc.Dups {
		if active(d.At, d.For, now) {
			p = d.P
		}
	}
	return p
}
