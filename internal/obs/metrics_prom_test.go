package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// unescapeHelp inverts the HELP-text escaping of the exposition format.
func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// unescapeLabel inverts label-value escaping.
func unescapeLabel(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// TestPromExpositionEscapingRoundTrip feeds hostile HELP text and label
// values through WriteProm and recovers them by parsing the scrape
// output with the format's escaping rules.
func TestPromExpositionEscapingRoundTrip(t *testing.T) {
	help := "Path C:\\tmp with \"quotes\"\nand a second line."
	label := `ctx "A"` + "\n" + `B\C`

	reg := NewRegistry()
	reg.Counter("weird_total", help).Add(7)
	reg.CounterVec("vec_total", help, "type").With(label).Add(3)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// No raw newline may survive inside a HELP line or a label value:
	// every output line must be a comment, a sample, or blank.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case line == "", strings.HasPrefix(line, "# "):
		default:
			if !strings.Contains(line, " ") {
				t.Errorf("malformed sample line %q", line)
			}
		}
	}

	// Round-trip the HELP text.
	var gotHelp string
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP weird_total "); ok {
			gotHelp = unescapeHelp(rest)
		}
	}
	if gotHelp != help {
		t.Errorf("HELP round trip:\n got %q\nwant %q", gotHelp, help)
	}

	// Round-trip the label value from the sample line.
	start := strings.Index(out, `vec_total{type="`)
	if start < 0 {
		t.Fatalf("vec sample missing from exposition:\n%s", out)
	}
	rest := out[start+len(`vec_total{type="`):]
	end := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == '\\' {
			i++
			continue
		}
		if rest[i] == '"' {
			end = i
			break
		}
	}
	if end < 0 {
		t.Fatalf("unterminated label value in %q", rest)
	}
	if got := unescapeLabel(rest[:end]); got != label {
		t.Errorf("label round trip:\n got %q\nwant %q", got, label)
	}
	if !strings.HasSuffix(strings.TrimSpace(rest[end:]), `"} 3`) {
		t.Errorf("sample value malformed after label: %q", rest[end:])
	}
}

// TestRegistryCollectorRunsAtScrape: collectors registered with
// AddCollector run on WriteProm and Snapshot, and may themselves touch
// the registry (gauge refresh) without deadlocking.
func TestRegistryCollectorRunsAtScrape(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("fresh", "Refreshed at scrape.")
	calls := 0
	reg.AddCollector(func() {
		calls++
		g.Set(float64(calls))
	})

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fresh 1") {
		t.Errorf("collector did not refresh gauge before scrape:\n%s", buf.String())
	}
	snap := reg.Snapshot()
	if calls != 2 {
		t.Fatalf("collector calls = %d, want 2 (WriteProm + Snapshot)", calls)
	}
	if snap["fresh"] != 2.0 {
		t.Errorf("snapshot gauge = %v, want 2", snap["fresh"])
	}
}

// TestRuntimeGaugesReportLiveProcess: the runtime gauges produce sane,
// scrape-time values for this very test process.
func TestRuntimeGaugesReportLiveProcess(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeGauges(reg)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		vals[name] = f
	}
	if vals["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", vals["go_goroutines"])
	}
	if vals["go_heap_objects_bytes"] <= 0 {
		t.Errorf("go_heap_objects_bytes = %v, want > 0", vals["go_heap_objects_bytes"])
	}
	for _, name := range []string{"go_gc_pause_p99_seconds", "go_sched_latency_p99_seconds"} {
		if v, ok := vals[name]; !ok || v < 0 {
			t.Errorf("%s = %v (present=%v), want >= 0", name, v, ok)
		}
	}
}

// --- MetricsSink edge cases ---

func at(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }

// TestMetricsSinkLeaderCrashMidTenure: a crashed leader emits no
// step-down; the tenure stays open until the takeover closes it, and the
// handover gap runs from the last heartbeat (not the crash).
func TestMetricsSinkLeaderCrashMidTenure(t *testing.T) {
	s := NewMetricsSink(NewRegistry())
	s.Emit(Event{Type: EvLabelCreated, Label: "L", Mote: 2, At: at(0)})
	s.Emit(Event{Type: EvHeartbeatSent, Label: "L", Mote: 2, At: at(3)})
	s.Emit(Event{Type: EvMoteFailed, Label: "L", Mote: 2, At: at(3.5)})
	s.Emit(Event{Type: EvLabelTakeover, Label: "L", Mote: 5, At: at(5)})
	if got := s.HandoverLatency().Sum(); got != 2 {
		t.Errorf("handover gap = %v, want 2 (last heartbeat to takeover)", got)
	}
	if got := s.LeaderTenure().Sum(); got != 5 {
		t.Errorf("tenure = %v, want 5 (creation to takeover)", got)
	}
	if got := s.LeaderTenure().Count(); got != 1 {
		t.Errorf("tenure count = %d, want 1", got)
	}
}

// TestMetricsSinkRestartAfterRestore: deletion clears a label's state, so
// a mote_restored followed by re-creation starts fresh — the dead period
// must not leak into the new tenure or a phantom handover.
func TestMetricsSinkRestartAfterRestore(t *testing.T) {
	s := NewMetricsSink(NewRegistry())
	s.Emit(Event{Type: EvLabelCreated, Label: "L", Mote: 2, At: at(0)})
	s.Emit(Event{Type: EvHeartbeatSent, Label: "L", Mote: 2, At: at(1)})
	s.Emit(Event{Type: EvMoteFailed, Label: "L", Mote: 2, At: at(1.5)})
	s.Emit(Event{Type: EvLabelDeleted, Label: "L", Mote: 2, At: at(2)})
	s.Emit(Event{Type: EvMoteRestored, Mote: 2, At: at(60)})
	s.Emit(Event{Type: EvLabelCreated, Label: "L", Mote: 2, At: at(61)})
	s.Emit(Event{Type: EvLabelYield, Label: "L", Mote: 2, At: at(64)})
	if got := s.HandoverLatency().Count(); got != 0 {
		t.Errorf("handovers = %d, want 0 (restart is not a takeover)", got)
	}
	if got, want := s.LeaderTenure().Sum(), 2.0+3.0; got != want {
		t.Errorf("tenure sum = %v, want %v (2s first life + 3s second)", got, want)
	}
}

// TestMetricsSinkInterleavedLabelsAcrossRuns: one sink shared by a
// parallel sweep keys state by (run, label), so interleaved event
// streams from different runs and labels never cross-contaminate.
func TestMetricsSinkInterleavedLabelsAcrossRuns(t *testing.T) {
	s := NewMetricsSink(NewRegistry())
	emit := func(run int64, label string, typ EventType, mote int, sec float64) {
		s.Emit(Event{Type: typ, Label: label, Mote: mote, Run: run, At: at(sec)})
	}
	// Three streams interleaved in arrival order, as a parallel sweep
	// would produce: (run 1, A), (run 1, B), (run 2, A).
	emit(1, "A", EvLabelCreated, 1, 0)
	emit(2, "A", EvLabelCreated, 9, 10)
	emit(1, "B", EvLabelCreated, 4, 2)
	emit(1, "A", EvHeartbeatSent, 1, 1)
	emit(2, "A", EvHeartbeatSent, 9, 12)
	emit(1, "B", EvHeartbeatSent, 4, 3)
	emit(1, "A", EvLabelTakeover, 2, 4)   // gap 3, tenure 4
	emit(2, "A", EvLabelTakeover, 8, 13)  // gap 1, tenure 3
	emit(1, "B", EvLabelTakeover, 5, 3.5) // gap 0.5, tenure 1.5

	if got := s.HandoverLatency().Count(); got != 3 {
		t.Fatalf("handover count = %d, want 3", got)
	}
	if got, want := s.HandoverLatency().Sum(), 3.0+1.0+0.5; got != want {
		t.Errorf("handover gaps sum = %v, want %v", got, want)
	}
	if got, want := s.LeaderTenure().Sum(), 4.0+3.0+1.5; got != want {
		t.Errorf("tenure sum = %v, want %v", got, want)
	}
}
