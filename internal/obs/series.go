package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Probe is one named health signal sampled on the series cadence. Sample
// is called from the simulation goroutine at sample time, so it may read
// live protocol state without locking but must not mutate it.
type Probe struct {
	Name   string
	Sample func() float64
}

// Series is a columnar time series: one time column plus one float column
// per probe, all the same length. It renders as an aligned table or
// marshals to JSON for external plotting.
type Series struct {
	mu    sync.Mutex
	names []string
	times []time.Duration
	cols  [][]float64
}

// Sampler snapshots a fixed probe set into a Series. The owner (the
// Network) drives it from a scheduler ticker so cadence is sim time, not
// wall time.
type Sampler struct {
	probes []Probe
	series *Series
}

// NewSampler builds a sampler over the given probes.
func NewSampler(probes ...Probe) *Sampler {
	names := make([]string, len(probes))
	for i, p := range probes {
		names[i] = p.Name
	}
	return &Sampler{
		probes: probes,
		series: &Series{names: names, cols: make([][]float64, len(probes))},
	}
}

// Sample appends one row at sim time now.
func (sm *Sampler) Sample(now time.Duration) {
	row := make([]float64, len(sm.probes))
	for i, p := range sm.probes {
		row[i] = p.Sample()
	}
	s := sm.series
	s.mu.Lock()
	s.times = append(s.times, now)
	for i, v := range row {
		s.cols[i] = append(s.cols[i], v)
	}
	s.mu.Unlock()
}

// Series returns the accumulating series.
func (sm *Sampler) Series() *Series { return sm.series }

// Len returns the number of samples taken.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.times)
}

// Columns returns the probe names in declaration order.
func (s *Series) Columns() []string {
	return append([]string(nil), s.names...)
}

// Times returns a copy of the time column.
func (s *Series) Times() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.times...)
}

// Column returns a copy of one named column, or nil if absent.
func (s *Series) Column(name string) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range s.names {
		if n == name {
			return append([]float64(nil), s.cols[i]...)
		}
	}
	return nil
}

// Render formats the series as an aligned text table:
//
//	t_s      live_labels  group_size  ...
//	0.0      0            0
//	5.0      1            4
func (s *Series) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "t_s")
	for _, n := range s.names {
		fmt.Fprintf(&b, "  %12s", n)
	}
	b.WriteByte('\n')
	for r := range s.times {
		fmt.Fprintf(&b, "%-10.1f", s.times[r].Seconds())
		for c := range s.names {
			fmt.Fprintf(&b, "  %12s", trimFloat(s.cols[c][r]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// trimFloat formats with at most 4 decimals, dropping trailing zeros.
func trimFloat(v float64) string {
	out := strconv.FormatFloat(v, 'f', 4, 64)
	out = strings.TrimRight(out, "0")
	out = strings.TrimSuffix(out, ".")
	return out
}

// MarshalJSON renders {"t":[...],"cols":{"name":[...],...}} with columns
// in declaration order (hand-built so order is stable).
func (s *Series) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b []byte
	b = append(b, `{"t":[`...)
	for i, t := range s.times {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendFloat(b, t.Seconds(), 'f', -1, 64)
	}
	b = append(b, `],"cols":{`...)
	for c, n := range s.names {
		if c > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, n)
		b = append(b, ':', '[')
		for i, v := range s.cols[c] {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, v)
		}
		b = append(b, ']')
	}
	b = append(b, '}', '}')
	return b, nil
}

// appendJSONFloat emits NaN/Inf (invalid JSON numbers) as null.
func appendJSONFloat(b []byte, v float64) []byte {
	if v != v || v > 1e308 || v < -1e308 {
		return append(b, `null`...)
	}
	return strconv.AppendFloat(b, v, 'f', -1, 64)
}
