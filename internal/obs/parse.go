package obs

import (
	"fmt"
	"math"
	"time"

	"encoding/json"

	"envirotrack/internal/geom"
	"envirotrack/internal/trace"
)

// eventTypeByName inverts eventNames once, for the JSONL decoder.
var eventTypeByName = func() map[string]EventType {
	m := make(map[string]EventType, len(eventNames))
	for t, n := range eventNames {
		if n != "" {
			m[n] = EventType(t)
		}
	}
	return m
}()

// EventTypeByName resolves a stable wire name ("frame_sent") back to its
// EventType.
func EventTypeByName(name string) (EventType, bool) {
	t, ok := eventTypeByName[name]
	return t, ok
}

// eventJSON mirrors the field set appendEventJSON writes. Omitted sparse
// fields decode as their zero values, which is exactly how they were
// encoded.
type eventJSON struct {
	T      float64 `json:"t"`
	Ev     string  `json:"ev"`
	Mote   int     `json:"mote"`
	Peer   int     `json:"peer"`
	Label  string  `json:"label"`
	Ctx    string  `json:"ctx"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Kind   string  `json:"kind"`
	Seq    uint64  `json:"seq"`
	Origin int     `json:"origin"`
	Frame  uint64  `json:"frame"`
	Bits   int     `json:"bits"`
	Cause  string  `json:"cause"`
	Run    int64   `json:"run"`
}

// ParseEvent decodes one JSONL trace line (as written by JSONLSink) back
// into an Event. Timestamps are encoded at microsecond precision, so the
// decoded At is the encoded instant rounded to the nearest microsecond;
// every other field round-trips exactly. Unknown event names are an
// error so corrupted or foreign traces fail loudly.
func ParseEvent(line []byte) (Event, error) {
	var raw eventJSON
	if err := json.Unmarshal(line, &raw); err != nil {
		return Event{}, fmt.Errorf("obs: bad trace line: %w", err)
	}
	t, ok := eventTypeByName[raw.Ev]
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event type %q", raw.Ev)
	}
	return Event{
		At:      time.Duration(math.Round(raw.T*1e6)) * time.Microsecond,
		Type:    t,
		Mote:    raw.Mote,
		Peer:    raw.Peer,
		Label:   raw.Label,
		CtxType: raw.Ctx,
		Pos:     geom.Point{X: raw.X, Y: raw.Y},
		Kind:    trace.Kind(raw.Kind),
		Seq:     raw.Seq,
		Origin:  raw.Origin,
		Frame:   raw.Frame,
		Bits:    raw.Bits,
		Cause:   raw.Cause,
		Run:     raw.Run,
	}, nil
}
