// Package obs is the simulator's observability layer: a typed event bus
// the protocol layers (group, mote, radio, transport, directory) publish
// structured events to, pluggable sinks that consume them (JSONL export,
// bounded ring buffer, counters, metrics), a metrics registry with
// Prometheus text-format and expvar exposition, and a time-series sampler
// that snapshots simulation health on a sim-time cadence.
//
// The bus is designed so that a disabled observer is free on the hot
// path: every emission site guards with Bus.Active(), which on a nil bus
// is a single nil check, and event construction is skipped entirely.
// Sinks only observe — they never draw from the simulation RNG or touch
// the scheduler — so attaching any sink cannot perturb a seeded run.
package obs

import (
	"strconv"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/trace"
)

// EventType classifies a structured event.
type EventType uint8

// Event taxonomy. Grouped by the emitting layer.
const (
	// group management
	EvHeartbeatSent       EventType = iota + 1 // leader heartbeat broadcast
	EvHeartbeatForwarded                       // member rebroadcast (h-hop flood)
	EvHeartbeatSuppressed                      // rebroadcast cancelled by storm suppression
	EvReceiveTimerFired                        // member receive timer expired
	EvWaitTimerArmed                           // non-member remembered a nearby label
	EvLabelCreated                             // new context label spawned
	EvLabelJoined                              // mote became a member of a label
	EvLabelTakeover                            // receive-timer leadership takeover
	EvLabelRelinquish                          // explicit relinquish accepted by successor
	EvLabelYield                               // leader yielded to a same-label leader
	EvLabelDeleted                             // label suppressed as spurious
	EvLeaderStepDown                           // leader stopped sensing and stepped down
	// radio medium
	EvFrameSent        // transmission put on the air
	EvFrameReceived    // successful reception at a target
	EvFrameLost        // reception failed (cause: random/collision)
	EvFrameUndelivered // transmission received by nobody
	// mote CPU
	EvCPUOverload // frame dropped: CPU queue full
	// transport (MTP)
	EvTransportHop       // datagram forwarded along the past-leader chain
	EvTransportDelivered // datagram handed to a port handler
	EvTransportNoRoute   // datagram dropped: no leader known
	// directory
	EvDirectoryUpdated // directory replica applied a register/unregister
	EvDirectoryQuery   // directory node answered a query
	// fault injection
	EvMoteFailed   // mote crashed (chaos schedule or manual Fail)
	EvMoteRestored // mote revived after a crash
	// report lifecycle (causal tracing; emitted only for correlated
	// messages, i.e. those carrying an (origin, seq) header)
	EvReportSent     // correlated message originated at its source mote
	EvRouteForward   // routed message relayed one hop toward its destination
	EvRouteDelivered // routed message terminated at its destination node
	EvRouteDropped   // routed message discarded (cause: ttl/dead_end)
)

// eventNames maps types to their stable wire names (used in JSONL export
// and metric label values). Indexed by EventType: the JSONL sink calls
// String() per event, so the lookup is a bounds-checked array load rather
// than a map probe.
var eventNames = [...]string{
	EvHeartbeatSent:       "heartbeat_sent",
	EvHeartbeatForwarded:  "heartbeat_forwarded",
	EvHeartbeatSuppressed: "heartbeat_suppressed",
	EvReceiveTimerFired:   "receive_timer_fired",
	EvWaitTimerArmed:      "wait_timer_armed",
	EvLabelCreated:        "label_created",
	EvLabelJoined:         "label_joined",
	EvLabelTakeover:       "label_takeover",
	EvLabelRelinquish:     "label_relinquish",
	EvLabelYield:          "label_yield",
	EvLabelDeleted:        "label_deleted",
	EvLeaderStepDown:      "leader_step_down",
	EvFrameSent:           "frame_sent",
	EvFrameReceived:       "frame_received",
	EvFrameLost:           "frame_lost",
	EvFrameUndelivered:    "frame_undelivered",
	EvCPUOverload:         "cpu_overload",
	EvTransportHop:        "transport_hop",
	EvTransportDelivered:  "transport_delivered",
	EvTransportNoRoute:    "transport_no_route",
	EvDirectoryUpdated:    "directory_updated",
	EvDirectoryQuery:      "directory_query",
	EvMoteFailed:          "mote_failed",
	EvMoteRestored:        "mote_restored",
	EvReportSent:          "report_sent",
	EvRouteForward:        "route_forward",
	EvRouteDelivered:      "route_delivered",
	EvRouteDropped:        "route_dropped",
}

// String implements fmt.Stringer.
func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return "EventType(" + strconv.Itoa(int(t)) + ")"
}

// EventTypes returns every defined event type in declaration order.
func EventTypes() []EventType {
	out := make([]EventType, 0, int(EvRouteDropped))
	for t := EvHeartbeatSent; t <= EvRouteDropped; t++ {
		out = append(out, t)
	}
	return out
}

// Event is one structured observation. The common fields (sim time,
// emitting mote, its position, label, context type) are always set where
// meaningful; the remainder carry per-type detail: Peer is the other mote
// involved (successor, frame destination, past leader), Kind the radio
// message class, Seq a heartbeat sequence or chain depth, Bits the frame
// size on the air, and Cause a loss cause or detail string.
//
// Correlated messages additionally carry the causal span key the
// SpanSink and ettrace reassemble lifecycles from: (Label, Origin, Seq)
// identifies one logical message end to end (the same keying the
// invariant checker uses for heartbeat dedup), and Frame ties frame-
// level events (sent/received/lost/overload) to one physical
// transmission, distinguishing retransmissions and duplicates of the
// same logical message.
type Event struct {
	At      time.Duration
	Type    EventType
	Mote    int
	Peer    int
	Label   string
	CtxType string
	Pos     geom.Point
	Kind    trace.Kind
	Seq     uint64
	Bits    int
	Cause   string
	// Origin is the mote that originated the correlated message this
	// event belongs to. A non-empty Label marks the event as correlated;
	// Origin and Seq are only meaningful then (mote 0 as an origin
	// round-trips through the omit-zero JSONL encoding unambiguously
	// because span keys always include the label).
	Origin int
	// Frame is the medium-stamped transmission id (1-based; 0 = none).
	Frame uint64
	// Run tags the event with the run it came from (the scenario seed, in
	// the eval harnesses); stamped by the bus so sinks shared across a
	// parallel sweep can attribute interleaved events.
	Run int64
}

// Sink consumes events. Implementations in this package are safe for
// concurrent use, so a single sink can be shared by parallel runs.
type Sink interface {
	Emit(Event)
}

// Bus fans events out to its sinks. A nil *Bus is a valid, disabled bus:
// Active() is false and Emit is a no-op, so protocol layers hold a *Bus
// unconditionally and pay one nil check when observability is off.
type Bus struct {
	sinks []Sink
	run   int64
}

// NewBus builds a bus over the given sinks. Nil sinks are dropped; a bus
// with no sinks is inactive.
func NewBus(sinks ...Sink) *Bus {
	b := &Bus{}
	for _, s := range sinks {
		if s != nil {
			b.sinks = append(b.sinks, s)
		}
	}
	return b
}

// SetRun sets the run tag stamped into every event emitted through this
// bus (the eval harnesses use the scenario seed).
func (b *Bus) SetRun(run int64) {
	if b != nil {
		b.run = run
	}
}

// Active reports whether emitting through this bus can observe anything.
// Emission sites guard event construction with it:
//
//	if bus := m.Obs(); bus.Active() {
//	    bus.Emit(obs.Event{...})
//	}
func (b *Bus) Active() bool {
	return b != nil && len(b.sinks) > 0
}

// Emit stamps the run tag and delivers ev to every sink, in order.
func (b *Bus) Emit(ev Event) {
	if b == nil || len(b.sinks) == 0 {
		return
	}
	ev.Run = b.run
	for _, s := range b.sinks {
		s.Emit(ev)
	}
}
