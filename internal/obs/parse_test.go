package obs

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/trace"
)

// TestParseEventRoundTrip: every field the JSONL exporter writes decodes
// back exactly (timestamps at the exporter's microsecond precision).
func TestParseEventRoundTrip(t *testing.T) {
	events := []Event{
		{
			At: 1234567 * time.Microsecond, Type: EvFrameReceived,
			Mote: 8, Peer: 7, Label: "tracker/0.1", CtxType: "tracker",
			Pos: geom.Point{X: 1.5, Y: -2.25}, Kind: trace.KindReading,
			Seq: 42, Origin: 7, Frame: 9001, Bits: 192, Cause: "",
			Run: 3,
		},
		{At: 0, Type: EvHeartbeatSent, Mote: 1},                            // sparse fields all zero
		{At: time.Hour, Type: EvFrameLost, Mote: 2, Cause: "collision"},    // cause only
		{At: 5 * time.Second, Type: EvRouteDropped, Mote: 4, Cause: "ttl"}, // new taxonomy
		{At: time.Millisecond, Type: EvReportSent, Mote: 3, Origin: 3, Seq: 1, Label: "L"},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, ev := range events {
		sink.Emit(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines for %d events", len(lines), len(events))
	}
	for i, line := range lines {
		got, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		want := events[i]
		want.At = want.At.Round(time.Microsecond)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("event %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestParseEventRejectsGarbage(t *testing.T) {
	if _, err := ParseEvent([]byte(`{"t":1,"ev":"no_such_event"}`)); err == nil {
		t.Error("unknown event name not rejected")
	}
	if _, err := ParseEvent([]byte(`{"t":1,"ev":`)); err == nil {
		t.Error("truncated JSON not rejected")
	}
}
