package obs

import "sort"

// LaneSet buffers per-shard observability lanes for a free-running
// parallel run. Each shard emits through its own lane Bus — an
// unsynchronized append into a shard-exclusive buffer — and the
// coordinator calls Flush at every window barrier to merge the buffers
// into the real bus in timestamp order. Downstream sinks (the invariant
// checker, JSONL writers, metrics) therefore still observe one
// time-ordered stream per run, exactly as in serial mode, without any
// locking on the emission hot path.
//
// The merge is a stable sort keyed on the event timestamp: events with
// equal timestamps drain in (shard, emission) order, so a parallel run at
// a fixed seed and shard count produces a byte-identical stream on every
// rerun — the determinism-within-configuration contract the eval battery
// pins.
type LaneSet struct {
	real    *Bus
	lanes   []laneBuf
	scratch []Event
}

// laneBuf is one shard's buffered lane, padded so adjacent lanes don't
// share cache lines while shard goroutines append concurrently.
type laneBuf struct {
	bus *Bus
	evs []Event
	_   [64]byte
}

// laneSink appends emitted events into its lane's buffer.
type laneSink struct {
	buf *laneBuf
}

func (s laneSink) Emit(ev Event) { s.buf.evs = append(s.buf.evs, ev) }

// NewLaneSet builds k lanes feeding the given real bus at Flush time.
// Returns nil if the real bus is inactive (no sinks), so callers can gate
// lane plumbing on observation being on at all.
func NewLaneSet(real *Bus, k int) *LaneSet {
	if !real.Active() || k < 1 {
		return nil
	}
	ls := &LaneSet{real: real, lanes: make([]laneBuf, k)}
	for i := range ls.lanes {
		ls.lanes[i].bus = NewBus(laneSink{buf: &ls.lanes[i]})
	}
	return ls
}

// Bus returns shard i's lane bus. Everything owned by shard i — its
// motes, its medium context — emits through it; only shard i's goroutine
// may use it.
func (ls *LaneSet) Bus(i int) *Bus { return ls.lanes[i].bus }

// Flush merges all buffered lane events into the real bus in stable
// timestamp order and resets the lanes. Coordinator-only: every shard
// worker must be parked (window barrier) when it runs. The real bus
// stamps its own run tag on the way through.
func (ls *LaneSet) Flush() {
	total := 0
	for i := range ls.lanes {
		total += len(ls.lanes[i].evs)
	}
	if total == 0 {
		return
	}
	buf := ls.scratch[:0]
	for i := range ls.lanes {
		buf = append(buf, ls.lanes[i].evs...)
		ls.lanes[i].evs = ls.lanes[i].evs[:0]
	}
	sort.SliceStable(buf, func(a, b int) bool { return buf[a].At < buf[b].At })
	for i := range buf {
		ls.real.Emit(buf[i])
		buf[i] = Event{}
	}
	ls.scratch = buf[:0]
}
