package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/trace"
)

func TestNilBusIsInactiveAndSafe(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	b.Emit(Event{Type: EvHeartbeatSent}) // must not panic
	b.SetRun(7)                          // must not panic
	if NewBus().Active() {
		t.Fatal("empty bus reports active")
	}
	if NewBus(nil, nil).Active() {
		t.Fatal("bus of nil sinks reports active")
	}
}

func TestBusStampsRunAndFansOut(t *testing.T) {
	a, b := NewCounterSink(), NewRingSink(4)
	bus := NewBus(a, b)
	bus.SetRun(42)
	bus.Emit(Event{Type: EvLabelCreated, Mote: 3})
	if got := a.Count(EvLabelCreated); got != 1 {
		t.Fatalf("counter sink got %d events, want 1", got)
	}
	evs := b.Events()
	if len(evs) != 1 || evs[0].Run != 42 {
		t.Fatalf("ring sink got %+v, want one event with Run=42", evs)
	}
}

func TestEventTypeNamesUniqueAndComplete(t *testing.T) {
	seen := map[string]EventType{}
	for _, et := range EventTypes() {
		name := et.String()
		if strings.HasPrefix(name, "EventType(") {
			t.Fatalf("event type %d has no wire name", et)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("duplicate wire name %q for %d and %d", name, prev, et)
		}
		seen[name] = et
	}
	named := 0
	for _, n := range eventNames {
		if n != "" {
			named++
		}
	}
	if len(seen) != named {
		t.Fatalf("EventTypes() covers %d names, table has %d", len(seen), named)
	}
}

func TestJSONLSinkEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	bus := NewBus(s)
	bus.SetRun(9)
	bus.Emit(Event{
		At: 1500 * time.Millisecond, Type: EvFrameSent, Mote: 2, Peer: 5,
		Label: "L7", CtxType: "car", Pos: geom.Point{X: 1.25, Y: -3},
		Kind: trace.KindHeartbeat, Seq: 11, Bits: 256, Cause: "collision",
	})
	bus.Emit(Event{At: 2 * time.Second, Type: EvCPUOverload, Mote: 0})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	first := lines[0]
	for k, want := range map[string]any{
		"t": 1.5, "ev": "frame_sent", "mote": 2.0, "peer": 5.0, "label": "L7",
		"ctx": "car", "x": 1.25, "y": -3.0, "kind": string(trace.KindHeartbeat),
		"seq": 11.0, "bits": 256.0, "cause": "collision", "run": 9.0,
	} {
		if got := first[k]; got != want {
			t.Errorf("field %q = %v, want %v", k, got, want)
		}
	}
	// Zero-valued sparse fields are omitted.
	second := lines[1]
	for _, k := range []string{"label", "ctx", "kind", "seq", "bits", "cause"} {
		if _, ok := second[k]; ok {
			t.Errorf("sparse field %q present on zero event", k)
		}
	}
}

func TestRingSinkWrapsAndDumps(t *testing.T) {
	s := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		s.Emit(Event{Type: EvHeartbeatSent, Mote: i})
	}
	if s.Total() != 5 {
		t.Fatalf("Total = %d, want 5", s.Total())
	}
	evs := s.Events()
	if len(evs) != 3 || evs[0].Mote != 3 || evs[2].Mote != 5 {
		t.Fatalf("ring retained %+v, want motes 3,4,5 oldest-first", evs)
	}
	if n := strings.Count(s.Dump(), "\n"); n != 3 {
		t.Fatalf("Dump has %d lines, want 3", n)
	}
}

func TestStatsSinkRebuildsCounters(t *testing.T) {
	var st trace.Stats
	s := NewStatsSink(&st)
	s.Emit(Event{Type: EvFrameSent, Kind: trace.KindHeartbeat, Bits: 100})
	s.Emit(Event{Type: EvFrameSent, Kind: trace.KindReading, Bits: 300})
	s.Emit(Event{Type: EvFrameReceived, Kind: trace.KindHeartbeat})
	s.Emit(Event{Type: EvFrameLost, Kind: trace.KindReading, Cause: "collision"})
	s.Emit(Event{Type: EvFrameUndelivered, Kind: trace.KindReading})
	s.Emit(Event{Type: EvCPUOverload, Kind: trace.KindHeartbeat})
	hb, data := st.Kind(trace.KindHeartbeat), st.Kind(trace.KindReading)
	if hb.Sent != 1 {
		t.Errorf("heartbeat sends = %d, want 1", hb.Sent)
	}
	if st.BitsSent != 400 {
		t.Errorf("BitsSent = %d, want 400", st.BitsSent)
	}
	if hb.Received != 1 {
		t.Errorf("heartbeat receives = %d, want 1", hb.Received)
	}
	if data.LostCollision != 1 {
		t.Errorf("reading collision losses = %d, want 1", data.LostCollision)
	}
	if data.Undelivered != 1 {
		t.Errorf("reading undelivered = %d, want 1", data.Undelivered)
	}
	if hb.LostOverload != 1 {
		t.Errorf("heartbeat overload losses = %d, want 1", hb.LostOverload)
	}
}

func TestRegistryPromExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("runs_total", "Completed runs.")
	c.Add(3)
	g := reg.Gauge("live_labels", "Labels alive now.")
	g.Set(2.5)
	h := reg.Histogram("latency_seconds", "Latency.", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(10)
	v := reg.CounterVec("events_total", "Events by type.", "type")
	v.With("b").Inc()
	v.With("a").Add(2)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP runs_total Completed runs.\n# TYPE runs_total counter\nruns_total 3\n",
		"# TYPE live_labels gauge\nlive_labels 2.5\n",
		"# TYPE latency_seconds histogram\n",
		"latency_seconds_bucket{le=\"1\"} 1\n",
		"latency_seconds_bucket{le=\"5\"} 2\n",
		"latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"latency_seconds_sum 13.5\n",
		"latency_seconds_count 3\n",
		"events_total{type=\"a\"} 2\n",
		"events_total{type=\"b\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Registration order is preserved.
	if strings.Index(out, "runs_total") > strings.Index(out, "events_total") {
		t.Error("metrics not in registration order")
	}
	// Get-or-create returns the same instance; wrong type panics.
	if reg.Counter("runs_total", "") != c {
		t.Error("Counter did not return existing instance")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering counter as gauge did not panic")
			}
		}()
		reg.Gauge("runs_total", "")
	}()
}

func TestRegistrySnapshotShapes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "").Add(2)
	reg.Gauge("g", "").Set(1.5)
	reg.Histogram("h", "", []float64{1}).Observe(0.5)
	reg.CounterVec("v", "", "k").With("x").Inc()
	snap := reg.Snapshot()
	if snap["c"] != uint64(2) || snap["g"] != 1.5 {
		t.Fatalf("scalar snapshot wrong: %+v", snap)
	}
	h := snap["h"].(map[string]any)
	if h["count"] != uint64(1) || h["sum"] != 0.5 {
		t.Fatalf("histogram snapshot wrong: %+v", h)
	}
	if snap["v"].(map[string]uint64)["x"] != 1 {
		t.Fatalf("vec snapshot wrong: %+v", snap["v"])
	}
	// Snapshot must be JSON-marshalable (expvar path).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestMetricsSinkHandoverAndTenure(t *testing.T) {
	reg := NewRegistry()
	s := NewMetricsSink(reg)
	at := func(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }
	// Label born at t=0, heartbeats until t=4, leader dies; takeover at t=5.5.
	s.Emit(Event{Type: EvLabelCreated, Label: "L1", At: at(0)})
	s.Emit(Event{Type: EvHeartbeatSent, Label: "L1", At: at(2)})
	s.Emit(Event{Type: EvHeartbeatSent, Label: "L1", At: at(4)})
	s.Emit(Event{Type: EvLabelTakeover, Label: "L1", At: at(5.5)})
	if got := s.HandoverLatency().Count(); got != 1 {
		t.Fatalf("handover count = %d, want 1", got)
	}
	if got := s.HandoverLatency().Sum(); got != 1.5 {
		t.Fatalf("handover latency = %vs, want 1.5", got)
	}
	if got := s.LeaderTenure().Sum(); got != 5.5 {
		t.Fatalf("first tenure = %vs, want 5.5", got)
	}
	// Deletion ends the second span at t=8.
	s.Emit(Event{Type: EvLabelDeleted, Label: "L1", At: at(8)})
	if got, want := s.LeaderTenure().Sum(), 5.5+2.5; got != want {
		t.Fatalf("tenure sum = %v, want %v", got, want)
	}
	if got := s.LeaderTenure().Count(); got != 2 {
		t.Fatalf("tenure count = %d, want 2", got)
	}
	// Per-type counter vector sees every event.
	if got := s.Events().Value("heartbeat_sent"); got != 2 {
		t.Fatalf("events_total{heartbeat_sent} = %d, want 2", got)
	}
	// Same label in a different run is independent state.
	s.Emit(Event{Type: EvLabelCreated, Label: "L1", Run: 1, At: at(100)})
	s.Emit(Event{Type: EvLabelYield, Label: "L1", Run: 1, At: at(101)})
	if got, want := s.LeaderTenure().Sum(), 5.5+2.5+1.0; got != want {
		t.Fatalf("tenure sum after run-1 yield = %v, want %v", got, want)
	}
}

func TestSamplerSeriesRenderAndJSON(t *testing.T) {
	vals := map[string]float64{"a": 0, "b": 10}
	sm := NewSampler(
		Probe{Name: "a", Sample: func() float64 { return vals["a"] }},
		Probe{Name: "b", Sample: func() float64 { return vals["b"] }},
	)
	sm.Sample(0)
	vals["a"], vals["b"] = 1.5, 20
	sm.Sample(5 * time.Second)
	s := sm.Series()
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Column("a"); len(got) != 2 || got[1] != 1.5 {
		t.Fatalf("column a = %v", got)
	}
	if s.Column("missing") != nil {
		t.Fatal("missing column not nil")
	}
	out := s.Render()
	if !strings.Contains(out, "t_s") || !strings.Contains(out, "1.5") || !strings.Contains(out, "20") {
		t.Fatalf("render missing values:\n%s", out)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		T    []float64            `json:"t"`
		Cols map[string][]float64 `json:"cols"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("series JSON invalid: %v\n%s", err, raw)
	}
	if len(decoded.T) != 2 || decoded.T[1] != 5 {
		t.Fatalf("time column = %v", decoded.T)
	}
	if decoded.Cols["b"][1] != 20 {
		t.Fatalf("cols = %v", decoded.Cols)
	}
}
