package obs

import (
	"math"
	"runtime/metrics"
)

// runtimeSamples are the runtime/metrics readings behind the gauges. The
// histogram-valued metrics are summarized as p99 at scrape time.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RegisterRuntimeGauges adds Go runtime health gauges (goroutine count,
// live heap bytes, p99 GC pause, p99 scheduler latency) to the registry.
// The values refresh at scrape time via the registry's collector hook, so
// a -metrics-out dump or a /metrics scrape reports the simulator process's
// state at that instant.
func RegisterRuntimeGauges(reg *Registry) {
	goroutines := reg.Gauge("go_goroutines",
		"Number of live goroutines.")
	heap := reg.Gauge("go_heap_objects_bytes",
		"Bytes of memory occupied by live heap objects.")
	gcPause := reg.Gauge("go_gc_pause_p99_seconds",
		"99th percentile of recent GC stop-the-world pause durations.")
	schedLat := reg.Gauge("go_sched_latency_p99_seconds",
		"99th percentile of time goroutines spent runnable before running.")

	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	reg.AddCollector(func() {
		metrics.Read(samples)
		if v := samples[0].Value; v.Kind() == metrics.KindUint64 {
			goroutines.Set(float64(v.Uint64()))
		}
		if v := samples[1].Value; v.Kind() == metrics.KindUint64 {
			heap.Set(float64(v.Uint64()))
		}
		if v := samples[2].Value; v.Kind() == metrics.KindFloat64Histogram {
			gcPause.Set(histQuantile(v.Float64Histogram(), 0.99))
		}
		if v := samples[3].Value; v.Kind() == metrics.KindFloat64Histogram {
			schedLat.Set(histQuantile(v.Float64Histogram(), 0.99))
		}
	})
}

// histQuantile estimates a quantile from a runtime/metrics histogram: the
// upper edge of the bucket containing the q-th observation (the lower edge
// for the open-ended last bucket). Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Buckets has len(Counts)+1 boundaries; bucket i spans
			// [Buckets[i], Buckets[i+1]).
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
