package obs

import (
	"testing"
	"time"

	"envirotrack/internal/trace"
)

// span-test shorthand: a correlated event at second t.
func sev(t float64, typ EventType, mote int) Event {
	return Event{
		At: time.Duration(t * float64(time.Second)), Type: typ, Mote: mote,
		Label: "L1", Origin: 7, Seq: 1, Kind: trace.KindReading,
	}
}

func withPeer(ev Event, peer int) Event     { ev.Peer = peer; return ev }
func withFrame(ev Event, f uint64) Event    { ev.Frame = f; return ev }
func withCause(ev Event, c string) Event    { ev.Cause = c; return ev }
func withKind(ev Event, k trace.Kind) Event { ev.Kind = k; return ev }

// oneSpan runs events through a fresh sink and returns the single
// resulting report span.
func oneSpan(t *testing.T, events ...Event) ReportSpan {
	t.Helper()
	s := NewSpanSink()
	for _, ev := range events {
		s.Emit(ev)
	}
	got := s.Reports()
	if len(got) != 1 {
		t.Fatalf("got %d spans, want 1: %+v", len(got), got)
	}
	return got[0]
}

func TestSpanSinkDeliveredMultiHop(t *testing.T) {
	sp := oneSpan(t,
		withPeer(sev(1.0, EvReportSent, 7), 9),
		withFrame(sev(1.0, EvFrameSent, 7), 100),
		withFrame(withPeer(sev(1.1, EvFrameReceived, 8), 7), 100),
		sev(1.1, EvRouteForward, 8),
		withFrame(sev(1.1, EvFrameSent, 8), 101),
		withFrame(withPeer(sev(1.2, EvFrameReceived, 9), 8), 101),
		withPeer(sev(1.2, EvRouteDelivered, 9), 7),
	)
	if !sp.Delivered {
		t.Fatalf("span not delivered: %+v", sp)
	}
	if sp.DeliveredTo != 9 || sp.Latency != 200*time.Millisecond {
		t.Errorf("delivered_to=%d latency=%v, want 9, 200ms", sp.DeliveredTo, sp.Latency)
	}
	if sp.Src != 7 || sp.Dst != 9 || sp.Forwards != 1 {
		t.Errorf("src=%d dst=%d forwards=%d, want 7, 9, 1", sp.Src, sp.Dst, sp.Forwards)
	}
	if len(sp.Hops) != 2 {
		t.Fatalf("hops = %+v, want 2", sp.Hops)
	}
	for i, h := range sp.Hops {
		if h.Outcome != "received" {
			t.Errorf("hop %d outcome %q, want received", i, h.Outcome)
		}
	}
	if sp.Hops[1].From != 8 || sp.Hops[1].To != 9 {
		t.Errorf("hop 1 = %+v, want 8 -> 9", sp.Hops[1])
	}
}

// TestSpanSinkRootCauses drives one undelivered span per attribution
// class and checks the resolved root cause.
func TestSpanSinkRootCauses(t *testing.T) {
	sent := withPeer(sev(1.0, EvReportSent, 7), 9)
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"explicit ttl drop", []Event{sent, withCause(sev(1.2, EvRouteDropped, 8), "ttl")}, "ttl"},
		{"dead end is no_route", []Event{sent, withCause(sev(1.2, EvRouteDropped, 8), "dead_end")}, "no_route"},
		{"stale leader reject", []Event{sent, withCause(sev(1.2, EvRouteDropped, 9), "stale_leader")}, "stale_leader"},
		{"transport no route", []Event{sent, sev(1.2, EvTransportNoRoute, 7)}, "no_route"},
		{"cpu overload", []Event{sent,
			withFrame(sev(1.0, EvFrameSent, 7), 100),
			withFrame(withPeer(sev(1.1, EvFrameReceived, 8), 7), 100),
			sev(1.1, EvCPUOverload, 8)}, "cpu_overload"},
		{"collision on last hop", []Event{sent,
			withFrame(sev(1.0, EvFrameSent, 7), 100),
			withCause(withFrame(withPeer(sev(1.1, EvFrameLost, 9), 7), 100), "collision")}, "collision"},
		{"random loss on last hop", []Event{sent,
			withFrame(sev(1.0, EvFrameSent, 7), 100),
			withCause(withFrame(withPeer(sev(1.1, EvFrameLost, 9), 7), 100), "random")}, "random"},
		{"nobody in range", []Event{sent,
			withFrame(sev(1.0, EvFrameSent, 7), 100),
			withFrame(withPeer(sev(1.1, EvFrameUndelivered, 7), 9), 100)}, "no_route"},
		{"receiver crashed", []Event{sent,
			{At: 500 * time.Millisecond, Type: EvMoteFailed, Mote: 8, Label: "L1"},
			withFrame(sev(1.0, EvFrameSent, 7), 100),
			withFrame(withPeer(sev(1.1, EvFrameReceived, 8), 7), 100)}, "crashed_mote"},
		{"cut off in flight", []Event{sent,
			withFrame(sev(1.0, EvFrameSent, 7), 100)}, "in_flight"},
		{"never reached the air", []Event{sent}, "in_flight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := oneSpan(t, tc.events...)
			if sp.Delivered {
				t.Fatalf("span unexpectedly delivered: %+v", sp)
			}
			if sp.RootCause != tc.want {
				t.Errorf("root cause = %q, want %q", sp.RootCause, tc.want)
			}
		})
	}
}

// TestSpanSinkRestoredMoteIsNotCrashed pins the failure-window logic: a
// reception after the receiver was restored is live, not crashed.
func TestSpanSinkRestoredMoteIsNotCrashed(t *testing.T) {
	sp := oneSpan(t,
		Event{At: 100 * time.Millisecond, Type: EvMoteFailed, Mote: 8, Label: "L1"},
		Event{At: 900 * time.Millisecond, Type: EvMoteRestored, Mote: 8},
		withPeer(sev(1.0, EvReportSent, 7), 9),
		withFrame(sev(1.0, EvFrameSent, 7), 100),
		withFrame(withPeer(sev(1.1, EvFrameReceived, 8), 7), 100),
	)
	if sp.RootCause != "in_flight" {
		t.Errorf("root cause = %q, want in_flight (receiver was restored)", sp.RootCause)
	}
}

// TestSpanSinkTransportDeliveryRule pins the layer rule: an MTP datagram
// span is complete only at transport_delivered; a route_delivered merely
// marks a stop on the past-leader chain.
func TestSpanSinkTransportDeliveryRule(t *testing.T) {
	mk := func(extra ...Event) []Event {
		evs := []Event{
			withKind(withPeer(sev(1.0, EvReportSent, 7), 9), trace.KindTransport),
			withKind(withPeer(sev(1.2, EvRouteDelivered, 8), 7), trace.KindTransport),
		}
		return append(evs, extra...)
	}
	sp := oneSpan(t, mk()...)
	if sp.Delivered {
		t.Fatalf("transport span delivered on route_delivered alone: %+v", sp)
	}
	if sp.RootCause != "in_flight" {
		t.Errorf("root cause = %q, want in_flight", sp.RootCause)
	}

	sp = oneSpan(t, mk(
		withKind(sev(1.2, EvTransportHop, 8), trace.KindTransport),
		withKind(sev(1.4, EvTransportDelivered, 9), trace.KindTransport),
	)...)
	if !sp.Delivered || sp.DeliveredTo != 9 || sp.ChainHops != 1 {
		t.Fatalf("transport span = %+v, want delivered to 9 with 1 chain hop", sp)
	}
	if sp.Latency != 400*time.Millisecond {
		t.Errorf("latency = %v, want 400ms", sp.Latency)
	}
}

// TestSpanSinkRedundantSendsFold pins that sender-side repeats of one
// logical message (directory unregister triple-send) stay one span.
func TestSpanSinkRedundantSendsFold(t *testing.T) {
	s := NewSpanSink()
	for i := 0; i < 3; i++ {
		s.Emit(withPeer(sev(1.0+float64(i), EvReportSent, 7), 9))
	}
	s.Emit(withPeer(sev(4.0, EvRouteDelivered, 9), 7))
	got := s.Reports()
	if len(got) != 1 {
		t.Fatalf("got %d spans, want 1", len(got))
	}
	if got[0].SentAt != time.Second || !got[0].Delivered {
		t.Errorf("span = %+v, want sent at 1s and delivered", got[0])
	}
	if got[0].Events != 4 {
		t.Errorf("events folded = %d, want 4", got[0].Events)
	}
}

// TestSpanSinkUncorrelatedTrafficIgnored: correlated frames with no
// opening report_sent (heartbeat floods) must not create spans.
func TestSpanSinkUncorrelatedTrafficIgnored(t *testing.T) {
	s := NewSpanSink()
	s.Emit(withFrame(sev(1.0, EvFrameSent, 7), 100))
	s.Emit(withFrame(withPeer(sev(1.1, EvFrameReceived, 8), 7), 100))
	if got := s.Reports(); len(got) != 0 {
		t.Fatalf("uncorrelated traffic produced %d spans: %+v", len(got), got)
	}
}

func TestSpanSinkHandover(t *testing.T) {
	s := NewSpanSink()
	hb := func(t float64, mote int) Event { return sev(t, EvHeartbeatSent, mote) }
	s.Emit(Event{At: 0, Type: EvLabelCreated, Mote: 2, Label: "L1"})
	s.Emit(hb(1, 2))
	s.Emit(hb(2, 2))
	s.Emit(Event{At: 2500 * time.Millisecond, Type: EvMoteFailed, Mote: 2, Label: "L1"})
	s.Emit(sev(4, EvReceiveTimerFired, 5))
	s.Emit(sev(4, EvLabelTakeover, 5))
	s.Emit(hb(5, 5))
	s.Emit(sev(7, EvLabelTakeover, 6))

	hs := s.Handovers()
	if len(hs) != 2 {
		t.Fatalf("got %d handovers, want 2: %+v", len(hs), hs)
	}
	h := hs[0]
	if h.OldLeader != 2 || h.NewLeader != 5 {
		t.Errorf("handover leaders %d -> %d, want 2 -> 5", h.OldLeader, h.NewLeader)
	}
	if h.Gap != 2*time.Second || h.LastOldLeaderAt != 2*time.Second {
		t.Errorf("gap = %v (last hb %v), want 2s after 2s", h.Gap, h.LastOldLeaderAt)
	}
	// The causal chain includes the crash and the timer expiry.
	var sawCrash, sawTimer bool
	for _, c := range h.Chain {
		sawCrash = sawCrash || c.Type == EvMoteFailed
		sawTimer = sawTimer || c.Type == EvReceiveTimerFired
	}
	if !sawCrash || !sawTimer {
		t.Errorf("chain missing crash/timer evidence: %+v", h.Chain)
	}
	// The second takeover sees the first takeover's winner as old leader.
	if hs[1].OldLeader != 5 || hs[1].NewLeader != 6 {
		t.Errorf("second handover %d -> %d, want 5 -> 6", hs[1].OldLeader, hs[1].NewLeader)
	}
}

// TestSpanSinkSeparatesRuns: identical correlation keys in different
// runs are distinct spans (the parallel-sweep sharing contract).
func TestSpanSinkSeparatesRuns(t *testing.T) {
	s := NewSpanSink()
	for run := int64(1); run <= 2; run++ {
		ev := withPeer(sev(1.0, EvReportSent, 7), 9)
		ev.Run = run
		s.Emit(ev)
	}
	del := withPeer(sev(1.5, EvRouteDelivered, 9), 7)
	del.Run = 2
	s.Emit(del)
	got := s.Reports()
	if len(got) != 2 {
		t.Fatalf("got %d spans, want 2", len(got))
	}
	if got[0].Run != 1 || got[0].Delivered {
		t.Errorf("run-1 span = %+v, want undelivered", got[0])
	}
	if got[1].Run != 2 || !got[1].Delivered {
		t.Errorf("run-2 span = %+v, want delivered", got[1])
	}
}
