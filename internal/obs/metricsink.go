package obs

import (
	"sync"
	"time"
)

// Default histogram bounds (seconds). Handover latency is bounded below
// by the receive-timer timeout (~2 heartbeat periods, 1s at defaults);
// leader tenure runs from sub-second yields to whole-run leadership.
var (
	HandoverLatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2, 5, 10}
	LeaderTenureBuckets    = []float64{1, 2, 5, 10, 30, 60, 120}
)

// MetricsSink derives protocol-level metrics from the event stream and
// feeds them into a Registry: a per-type event counter vector, a
// handover-latency histogram (gap between the last sign of life from the
// old leader — heartbeat or step-down — and the moment a new leader takes
// over), and a leader-tenure histogram (how long each leadership span
// lasted). State is keyed by (run, label) so one sink can be shared
// across a parallel sweep.
type MetricsSink struct {
	mu       sync.Mutex
	events   *CounterVec
	handover *Histogram
	tenure   *Histogram
	last     map[runLabel]time.Duration // last activity per label
	since    map[runLabel]time.Duration // current leadership start per label
}

type runLabel struct {
	run   int64
	label string
}

// NewMetricsSink registers the protocol metrics on reg and returns the
// sink feeding them.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{
		events: reg.CounterVec("envirotrack_events_total",
			"Structured protocol events by type.", "type"),
		handover: reg.Histogram("envirotrack_handover_latency_seconds",
			"Gap between the old leader's last activity and the new leader taking over.",
			HandoverLatencyBuckets),
		tenure: reg.Histogram("envirotrack_leader_tenure_seconds",
			"Duration of each leadership span, ended by takeover, yield, step-down, or deletion.",
			LeaderTenureBuckets),
		last:  make(map[runLabel]time.Duration),
		since: make(map[runLabel]time.Duration),
	}
}

// Emit implements Sink.
func (s *MetricsSink) Emit(ev Event) {
	s.events.With(ev.Type.String()).Inc()
	switch ev.Type {
	case EvHeartbeatSent, EvLabelCreated, EvLabelTakeover, EvLabelRelinquish,
		EvLabelYield, EvLabelDeleted, EvLeaderStepDown:
	default:
		return
	}
	k := runLabel{ev.Run, ev.Label}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Type {
	case EvHeartbeatSent:
		s.last[k] = ev.At
	case EvLabelCreated:
		s.since[k] = ev.At
		s.last[k] = ev.At
	case EvLabelTakeover, EvLabelRelinquish:
		if last, ok := s.last[k]; ok && ev.At >= last {
			s.handover.ObserveDuration(ev.At - last)
		}
		s.endTenure(k, ev.At)
		s.since[k] = ev.At
		s.last[k] = ev.At
	case EvLabelYield, EvLeaderStepDown:
		s.endTenure(k, ev.At)
		s.last[k] = ev.At
	case EvLabelDeleted:
		s.endTenure(k, ev.At)
		delete(s.last, k)
	}
}

// endTenure closes an open leadership span, if any. Caller holds s.mu.
func (s *MetricsSink) endTenure(k runLabel, at time.Duration) {
	if since, ok := s.since[k]; ok {
		if at >= since {
			s.tenure.ObserveDuration(at - since)
		}
		delete(s.since, k)
	}
}

// HandoverLatency returns the underlying handover-latency histogram.
func (s *MetricsSink) HandoverLatency() *Histogram { return s.handover }

// LeaderTenure returns the underlying leader-tenure histogram.
func (s *MetricsSink) LeaderTenure() *Histogram { return s.tenure }

// Events returns the per-type event counter vector.
func (s *MetricsSink) Events() *CounterVec { return s.events }
