package obs

import (
	"sort"
	"sync"
	"time"

	"envirotrack/internal/trace"
)

// SpanSink assembles causal report-lifecycle spans from the event stream.
//
// A *report span* is the end-to-end life of one correlated message,
// keyed by (run, origin, seq) — every layer mints sequence numbers from
// one per-mote counter, so the pair is unique within a run and frame
// events need not carry the label. The report_sent event opens the span
// (and contributes its label); frame_sent/frame_received pairs (grouped
// by their medium-stamped transmission id) become its per-hop waterfall,
// and it closes on the layer-appropriate delivery event — transport_delivered for MTP
// datagrams, route_delivered for everything else. A span that never
// closes is attributed a root cause from the causal evidence it
// accumulated: an explicit drop event, a CPU-overload drop, the loss
// cause of its last on-air frame, a crashed receiver, or in_flight for
// messages the run's end cut off.
//
// A *handover span* captures one leadership takeover of a label: the old
// leader's last heartbeat, the takeover instant, and the bounded chain of
// causal events (heartbeats, crashes, receive-timer expiry) in between.
//
// The sink is safe for concurrent use and keys everything by run, so one
// sink may observe a parallel sweep. It works identically live (attached
// to a bus) and offline (fed ParseEvent output); cmd/ettrace is the
// latter.
type SpanSink struct {
	mu        sync.Mutex
	reports   map[spanKey]*ReportSpan
	handovers []HandoverSpan
	labels    map[labelKey]*labelState
	fails     map[runMote][]failInterval
	finalized bool
}

type spanKey struct {
	run    int64
	origin int
	seq    uint64
}

type labelKey struct {
	run   int64
	label string
}

type runMote struct {
	run  int64
	mote int
}

// failInterval is one [from, to) mote-failure window; to < 0 means still
// failed.
type failInterval struct {
	from, to time.Duration
}

// Hop is one radio transmission of a span's message.
type Hop struct {
	Frame   uint64        // medium transmission id
	From    int           // transmitting mote
	To      int           // resolving mote (receiver); -1 while pending
	SentAt  time.Duration // transmission start
	EndAt   time.Duration // reception resolution; zero while pending
	Outcome string        // received | collision | random | undelivered | pending
	Kind    trace.Kind
}

// ReportSpan is the assembled end-to-end life of one correlated message.
type ReportSpan struct {
	Run    int64
	Label  string
	Origin int
	Seq    uint64
	Kind   trace.Kind

	Src    int // originating mote
	Dst    int // intended destination (report_sent peer)
	SentAt time.Duration

	Delivered   bool
	DeliveredAt time.Duration
	DeliveredTo int
	// Latency is DeliveredAt - SentAt for delivered spans.
	Latency time.Duration

	// RootCause attributes an undelivered span: no_route | ttl |
	// stale_leader | cpu_overload | collision | random | crashed_mote |
	// in_flight. Empty for delivered spans.
	RootCause string

	Hops      []Hop
	Forwards  int // route_forward relays
	ChainHops int // transport chain forwards
	Events    int // correlated events folded into the span

	// internal evidence for root-cause resolution
	dropCause    string
	overloadAt   time.Duration
	hasOverload  bool
	routeDelAt   time.Duration
	hasRouteDel  bool
	transpDelAt  time.Duration
	hasTranspDel bool
	transpDelTo  int
	routeDelTo   int
}

// SpanEvent is one entry of a handover span's causal chain.
type SpanEvent struct {
	At   time.Duration
	Type EventType
	Mote int
}

// HandoverSpan is one leadership takeover with its causal context.
type HandoverSpan struct {
	Run       int64
	Label     string
	OldLeader int
	NewLeader int
	// LastOldLeaderAt is the old leader's last observed heartbeat (zero
	// when the label had no prior heartbeat).
	LastOldLeaderAt time.Duration
	TakeoverAt      time.Duration
	// Gap is TakeoverAt - LastOldLeaderAt (the leadership silence the
	// takeover ended); zero when no prior heartbeat was seen.
	Gap time.Duration
	// Chain is the bounded tail of causal events leading to the takeover.
	Chain []SpanEvent
}

// handoverChainCap bounds the causal chain retained per label.
const handoverChainCap = 32

// labelState is the per-(run, label) handover bookkeeping.
type labelState struct {
	leader   int // current leader; -1 unknown
	lastHBAt time.Duration
	hasHB    bool
	chain    []SpanEvent // ring, oldest first after unwrap
	next     int
}

// NewSpanSink returns an empty span assembler.
func NewSpanSink() *SpanSink {
	return &SpanSink{
		reports: make(map[spanKey]*ReportSpan),
		labels:  make(map[labelKey]*labelState),
		fails:   make(map[runMote][]failInterval),
	}
}

// Emit implements Sink.
func (s *SpanSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()

	switch ev.Type {
	case EvMoteFailed:
		k := runMote{ev.Run, ev.Mote}
		s.fails[k] = append(s.fails[k], failInterval{from: ev.At, to: -1})
		s.chainNote(ev)
		return
	case EvMoteRestored:
		k := runMote{ev.Run, ev.Mote}
		if iv := s.fails[k]; len(iv) > 0 && iv[len(iv)-1].to < 0 {
			iv[len(iv)-1].to = ev.At
		}
		return
	case EvHeartbeatSent, EvReceiveTimerFired, EvLabelCreated, EvLabelRelinquish,
		EvLeaderStepDown, EvLabelYield, EvLabelDeleted:
		s.chainNote(ev)
		return
	case EvLabelTakeover:
		s.takeover(ev)
		return
	}

	// Only report-lifecycle event types participate in span assembly;
	// other correlated traffic (heartbeat frames match the frame cases
	// above, but e.g. heartbeat_forwarded carries a protocol sequence in
	// Seq that is not a correlation key).
	switch ev.Type {
	case EvReportSent, EvFrameSent, EvFrameReceived, EvFrameLost, EvFrameUndelivered,
		EvRouteForward, EvTransportHop, EvRouteDelivered, EvTransportDelivered,
		EvRouteDropped, EvTransportNoRoute, EvCPUOverload:
	default:
		return
	}
	if ev.Seq == 0 {
		return // uncorrelated traffic (correlation sequences are 1-based)
	}
	key := spanKey{ev.Run, ev.Origin, ev.Seq}

	if ev.Type == EvReportSent {
		if sp, ok := s.reports[key]; ok {
			sp.Events++ // redundant re-send of the same message (e.g. unregister repeats)
			return
		}
		s.reports[key] = &ReportSpan{
			Run: ev.Run, Label: ev.Label, Origin: ev.Origin, Seq: ev.Seq,
			Kind: ev.Kind, Src: ev.Mote, Dst: ev.Peer, SentAt: ev.At,
			Events: 1,
		}
		return
	}

	sp, ok := s.reports[key]
	if !ok {
		return // correlated but span-less traffic (heartbeat floods)
	}
	sp.Events++

	switch ev.Type {
	case EvFrameSent:
		sp.Hops = append(sp.Hops, Hop{
			Frame: ev.Frame, From: ev.Mote, To: -1,
			SentAt: ev.At, Outcome: "pending", Kind: ev.Kind,
		})
	case EvFrameReceived:
		sp.resolveHop(ev, "received")
	case EvFrameLost:
		sp.resolveHop(ev, ev.Cause) // collision | random
	case EvFrameUndelivered:
		sp.resolveHop(ev, "undelivered")
	case EvRouteForward:
		sp.Forwards++
	case EvTransportHop:
		sp.ChainHops++
	case EvRouteDelivered:
		if !sp.hasRouteDel {
			sp.hasRouteDel = true
			sp.routeDelAt = ev.At
			sp.routeDelTo = ev.Mote
		}
	case EvTransportDelivered:
		if !sp.hasTranspDel {
			sp.hasTranspDel = true
			sp.transpDelAt = ev.At
			sp.transpDelTo = ev.Mote
		}
	case EvRouteDropped:
		if sp.dropCause == "" {
			sp.dropCause = ev.Cause // dead_end | ttl | stale_leader
		}
	case EvTransportNoRoute:
		if sp.dropCause == "" {
			sp.dropCause = "no_route"
		}
	case EvCPUOverload:
		sp.hasOverload = true
		sp.overloadAt = ev.At
	}
}

// resolveHop closes the pending hop with ev's transmission id. Undelivered
// frames resolve at the sender, so To stays -1 for them.
func (sp *ReportSpan) resolveHop(ev Event, outcome string) {
	for i := len(sp.Hops) - 1; i >= 0; i-- {
		h := &sp.Hops[i]
		if h.Frame == ev.Frame && h.Outcome == "pending" {
			h.EndAt = ev.At
			h.Outcome = outcome
			if outcome != "undelivered" {
				h.To = ev.Mote
			}
			return
		}
	}
	// A resolution without a visible send (trace cut at the front):
	// synthesize the hop so the evidence is not dropped.
	to := -1
	if outcome != "undelivered" {
		to = ev.Mote
	}
	sp.Hops = append(sp.Hops, Hop{
		Frame: ev.Frame, From: ev.Peer, To: to,
		SentAt: ev.At, EndAt: ev.At, Outcome: outcome, Kind: ev.Kind,
	})
}

// chainNote records a causal event into the label's handover chain.
func (s *SpanSink) chainNote(ev Event) {
	if ev.Label == "" {
		return
	}
	st := s.labelState(ev.Run, ev.Label)
	if ev.Type == EvHeartbeatSent {
		st.leader = ev.Mote
		st.lastHBAt = ev.At
		st.hasHB = true
	}
	st.push(SpanEvent{At: ev.At, Type: ev.Type, Mote: ev.Mote})
}

func (s *SpanSink) labelState(run int64, label string) *labelState {
	k := labelKey{run, label}
	st, ok := s.labels[k]
	if !ok {
		st = &labelState{leader: -1}
		s.labels[k] = st
	}
	return st
}

func (st *labelState) push(ev SpanEvent) {
	if len(st.chain) < handoverChainCap {
		st.chain = append(st.chain, ev)
		return
	}
	st.chain[st.next] = ev
	st.next = (st.next + 1) % handoverChainCap
}

// unwrap returns the chain oldest-first.
func (st *labelState) unwrap() []SpanEvent {
	out := make([]SpanEvent, 0, len(st.chain))
	out = append(out, st.chain[st.next:]...)
	out = append(out, st.chain[:st.next]...)
	return out
}

func (s *SpanSink) takeover(ev Event) {
	st := s.labelState(ev.Run, ev.Label)
	st.push(SpanEvent{At: ev.At, Type: ev.Type, Mote: ev.Mote})
	h := HandoverSpan{
		Run:        ev.Run,
		Label:      ev.Label,
		OldLeader:  st.leader,
		NewLeader:  ev.Mote,
		TakeoverAt: ev.At,
		Chain:      st.unwrap(),
	}
	if st.hasHB {
		h.LastOldLeaderAt = st.lastHBAt
		h.Gap = ev.At - st.lastHBAt
	}
	s.handovers = append(s.handovers, h)
	st.leader = ev.Mote
}

// failedAt reports whether the mote was inside a failure window at t.
func (s *SpanSink) failedAt(run int64, mote int, t time.Duration) bool {
	for _, iv := range s.fails[runMote{run, mote}] {
		if t >= iv.from && (iv.to < 0 || t < iv.to) {
			return true
		}
	}
	return false
}

// Finalize computes delivery status and root causes for every span. Call
// it once after the run (or trace) ends; Reports and Handovers call it
// implicitly.
func (s *SpanSink) Finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finalize()
}

func (s *SpanSink) finalize() {
	if s.finalized {
		return
	}
	s.finalized = true
	for _, sp := range s.reports {
		s.resolve(sp)
	}
}

// resolve decides a span's outcome from its accumulated evidence.
func (s *SpanSink) resolve(sp *ReportSpan) {
	// Delivery: MTP datagrams complete at the transport layer (a
	// route_delivered merely marks a chain stop); everything else
	// completes at routing (or the group layer, for member readings).
	if sp.Kind == trace.KindTransport {
		if sp.hasTranspDel {
			sp.Delivered = true
			sp.DeliveredAt = sp.transpDelAt
			sp.DeliveredTo = sp.transpDelTo
		}
	} else if sp.hasRouteDel {
		sp.Delivered = true
		sp.DeliveredAt = sp.routeDelAt
		sp.DeliveredTo = sp.routeDelTo
	}
	if sp.Delivered {
		sp.Latency = sp.DeliveredAt - sp.SentAt
		return
	}

	// Root cause, in decreasing order of evidence strength.
	if sp.dropCause != "" {
		switch sp.dropCause {
		case "dead_end":
			sp.RootCause = "no_route"
		default:
			sp.RootCause = sp.dropCause // ttl | stale_leader | no_route
		}
		return
	}
	if sp.hasOverload {
		sp.RootCause = "cpu_overload"
		return
	}
	// The last resolved transmission tells the last-mile story.
	var last *Hop
	pending := false
	for i := range sp.Hops {
		h := &sp.Hops[i]
		if h.Outcome == "pending" {
			pending = true
			continue
		}
		if last == nil || h.EndAt >= last.EndAt {
			last = h
		}
	}
	switch {
	case last == nil:
		// No transmission resolved: cut off by the end of the run (or the
		// message never reached the air before its sender crashed).
		sp.RootCause = "in_flight"
	case last.Outcome == "collision":
		sp.RootCause = "collision"
	case last.Outcome == "random":
		sp.RootCause = "random"
	case last.Outcome == "undelivered":
		sp.RootCause = "no_route"
	case last.Outcome == "received":
		if s.failedAt(sp.Run, last.To, last.EndAt) {
			sp.RootCause = "crashed_mote"
		} else if pending {
			sp.RootCause = "in_flight"
		} else {
			// Received by a live mote with no further trace: the message
			// sat in a queue (or handler) when the run ended.
			sp.RootCause = "in_flight"
		}
	default:
		sp.RootCause = "in_flight"
	}
}

// Reports returns every report span, ordered by (Run, SentAt, Origin,
// Seq). It finalizes the sink.
func (s *SpanSink) Reports() []ReportSpan {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finalize()
	out := make([]ReportSpan, 0, len(s.reports))
	for _, sp := range s.reports {
		cp := *sp
		cp.Hops = append([]Hop(nil), sp.Hops...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.SentAt != b.SentAt {
			return a.SentAt < b.SentAt
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
	return out
}

// Handovers returns every handover span in observation order (finalizing
// the sink).
func (s *SpanSink) Handovers() []HandoverSpan {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finalize()
	out := make([]HandoverSpan, len(s.handovers))
	copy(out, s.handovers)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].TakeoverAt < out[j].TakeoverAt
	})
	return out
}
